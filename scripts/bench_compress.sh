#!/bin/sh
# Regenerates BENCH_COMPRESS.json: the gradient-compression frontier for
# SASGD p=8 T=1 on the simulated CIFAR-10 platform — dense baseline vs
# error-feedback top-k at k ∈ {1%, 5%, 10%} (plus 5% with the adaptive
# controller) vs int8 quantization, every row through the
# backward-overlapped bucketed path. Words on the wire, the reduction
# factor vs dense, simulated epoch seconds and final test accuracy per
# row. Acceptance: the fixed k=5% row must land at least 5x below dense
# on the wire (the root re-sparsifies the merged aggregate back to k, so
# disjoint learner supports cannot widen the broadcast past 2k words per
# bucket).
#
#   scripts/bench_compress.sh             # default epoch budget
#   EPOCHS=4 scripts/bench_compress.sh    # longer runs
set -eu
cd "$(dirname "$0")/.."

out="BENCH_COMPRESS.json"
dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

go run ./cmd/experiments -only compress -epochs "${EPOCHS:-0}" -json "$dir"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "gomaxprocs": %s,\n' "$(nproc)"
    printf '  "note": "Words are float64-equivalent wire volume per full run (Stats charges sparse index+value pairs and packed-int8/int16 lanes at their true width); Reduction is the dense row words divided by this row words. EpochSecs is simulated (netsim) time: at this scale the overlap already hides most of the wire behind backward compute, so the words column carries the compression win and the time column shows compression does not slow the schedule down. The topk rows shrink the wire superlinearly at small k because the root caps the merged broadcast at 2k words per bucket.",\n'
    printf '  "result": '
    sed 's/^/  /' "$dir/compress.json" | sed '1s/^ *//'
    printf '\n}\n'
} > "$out"
echo "wrote $out"
