#!/bin/sh
# Compares two BENCH_*.json baselines (as written by bench_obs.sh /
# bench_metrics.sh / bench_gemm.sh) and fails when any benchmark shared
# by both files regressed by more than THRESHOLD percent. Benchmarks
# present in only one file are reported but never fail the gate, so the
# diff stays usable across baselines that gained or lost legs.
#
#   scripts/bench_diff.sh OLD.json NEW.json
#   THRESHOLD=25 scripts/bench_diff.sh BENCH_METRICS.json.base BENCH_METRICS.json
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.json NEW.json" >&2
    exit 2
fi
old="$1"
new="$2"
threshold="${THRESHOLD:-10}"

awk -v threshold="$threshold" '
# Each results line looks like:  "Name": {"ns_per_op": 123.4},
/"ns_per_op"/ {
    line = $0
    gsub(/[",{}:]/, " ", line)
    split(line, f, /[ \t]+/)
    # After stripping punctuation the fields are: Name ns_per_op value
    name = ""; val = ""
    for (i = 1; i <= length(f); i++) {
        if (f[i] == "ns_per_op") { val = f[i+1]; break }
        if (f[i] != "") name = f[i]
    }
    if (name == "" || val == "") next
    if (NR == FNR) oldns[name] = val + 0
    else newns[name] = val + 0
}
END {
    fail = 0
    printf "%-28s %12s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
    for (name in oldns) {
        if (!(name in newns)) {
            printf "%-28s %12.2f %12s %9s\n", name, oldns[name], "-", "gone"
            continue
        }
        delta = 100 * (newns[name] - oldns[name]) / oldns[name]
        mark = ""
        if (delta > threshold) { mark = "  FAIL"; fail = 1 }
        printf "%-28s %12.2f %12.2f %+8.1f%%%s\n", name, oldns[name], newns[name], delta, mark
    }
    for (name in newns)
        if (!(name in oldns))
            printf "%-28s %12s %12.2f %9s\n", name, "-", newns[name], "new"
    if (fail) {
        printf "FAIL: regression above %s%%\n", threshold
        exit 1
    }
    printf "OK: no benchmark regressed more than %s%%\n", threshold
}' "$old" "$new"
