#!/bin/sh
# Regenerates BENCH_TRANSPORT.json: allreduce throughput (words/sec) and
# per-frame latency percentiles on the in-process channel fabric versus
# TCP loopback — the wire tax of real sockets, length-prefixed framing
# and CRC at identical algorithm schedules.
#
#   scripts/bench_transport.sh                 # 300ms/bench
#   BENCHTIME=1s scripts/bench_transport.sh
set -eu
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-300ms}"
out="BENCH_TRANSPORT.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkTransport' \
    -benchtime "$benchtime" ./internal/comm | tee "$raw"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "gomaxprocs": %s,\n' "$(nproc)"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "note": "allreduce rows: ns per 4-learner AllreduceTree round and words/sec (m words per learner). frame_latency rows: one-way p50/p99 ns for a 1-word frame ping-ponged across a single link (ns_per_op is the full round trip). The chan/tcp gap is the cost of real loopback sockets, framing and CRC-32C versus an in-process channel hop; results are bitwise identical across the two (pinned by TestCrossTransportAllreduceEquivalence), so this file is the price list, not a correctness trade.",\n'
    printf '  "results": {\n'
    awk '/^BenchmarkTransportAllreduce/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        sub(/^BenchmarkTransportAllreduce\//, "allreduce\/", name)
        ns = $3
        m = name
        sub(/^.*\/m/, "", m)
        wps = (ns > 0) ? m * 1e9 / ns : 0
        lines[n++] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"words_per_sec\": %.0f}", name, ns, wps)
    }
    /^BenchmarkTransportFrameLatency/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        sub(/^BenchmarkTransportFrameLatency\//, "frame_latency\/", name)
        ns = $3
        p50 = p99 = 0
        for (i = 4; i < NF; i++) {
            if ($(i+1) == "p50-ns") p50 = $i
            if ($(i+1) == "p99-ns") p99 = $i
        }
        lines[n++] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"p50_ns\": %s, \"p99_ns\": %s}", name, ns, p50, p99)
    }
    END {
        for (i = 0; i < n; i++)
            printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    }' "$raw"
    printf '  }\n'
    printf '}\n'
} > "$out"

echo "wrote $out"
