#!/bin/sh
# CI gate: vet + build + race-clean internal test suite.
#
#   scripts/check.sh        # fast local gate (race leg runs -short)
#   FULL=1 scripts/check.sh # CI mode: full race suite, no -short
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

short="-short"
if [ "${FULL:-0}" = "1" ]; then
    short=""
fi
echo "==> go test -race ${short} ./internal/..."
# shellcheck disable=SC2086
go test -race ${short} ./internal/...

# The pipelined collectives' concurrency bugs are schedule-dependent, so
# give the race detector extra rounds over the stress/equivalence tests
# specifically (cheap: the comm package has no heavy kernels).
echo "==> go test -race -count=2 comm stress/equivalence"
go test -race -count=2 -run 'Stress|Equivalent|Pipelines' ./internal/comm/

# Same treatment for the backward-overlapped bucketed aggregation: the
# async handle lifecycle and the learner/comm-worker handoff are the
# schedule-sensitive surfaces, so run their equivalence and stress tests
# twice under the race detector at both layers.
echo "==> go test -race -count=2 bucketed/overlap equivalence + stress"
go test -race -count=2 -run 'Bucketed|Overlap' ./internal/comm/
go test -race -count=2 -run 'Overlap' ./internal/core/

# Steady-state allocation pins (the race detector's instrumentation
# allocates, so these only check out in a plain build): bucketed
# allreduce rounds must stay zero-alloc on the pooled buffers.
echo "==> go test bucketed zero-alloc pin"
go test -run 'SteadyStateAllocs' ./internal/comm/

echo "OK"
