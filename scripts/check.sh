#!/bin/sh
# CI gate: vet + build + race-clean internal test suite.
#
#   scripts/check.sh        # fast local gate (race leg runs -short)
#   FULL=1 scripts/check.sh # CI mode: full race suite, no -short
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

short="-short"
if [ "${FULL:-0}" = "1" ]; then
    short=""
fi
echo "==> go test -race ${short} ./internal/..."
# shellcheck disable=SC2086
go test -race ${short} ./internal/...

# The pipelined collectives' concurrency bugs are schedule-dependent, so
# give the race detector extra rounds over the stress/equivalence tests
# specifically (cheap: the comm package has no heavy kernels).
echo "==> go test -race -count=2 comm stress/equivalence"
go test -race -count=2 -run 'Stress|Equivalent|Pipelines' ./internal/comm/

# Same treatment for the backward-overlapped bucketed aggregation: the
# async handle lifecycle and the learner/comm-worker handoff are the
# schedule-sensitive surfaces, so run their equivalence and stress tests
# twice under the race detector at both layers.
echo "==> go test -race -count=2 bucketed/overlap equivalence + stress"
go test -race -count=2 -run 'Bucketed|Overlap' ./internal/comm/
go test -race -count=2 -run 'Overlap' ./internal/core/

# The compression engine's schedule-sensitive surface is the per-bucket
# codec collectives riding the same async worker handoff: run the codec
# unit/equivalence tests and the core-level compressed-overlap sweep
# twice under the race detector.
echo "==> go test -race -count=2 compression engine"
go test -race -count=2 -run 'Compress|Codec|TopK|QInt8|Selector|Quickselect|Sparsity' ./internal/comm/
go test -race -count=2 -run 'Compress|FaultyCompressed|Adaptive' ./internal/core/

# The communication-scheduling layer rides the same async worker
# handoff with its own schedule-sensitive surfaces — the one-round
# delayed-application handle lifecycle, the hierarchical subset
# collectives sharing the group's mailboxes with in-flight worker ops,
# and the adaptive-T drift allreduce spliced between them — so run its
# equivalence, determinism and chaos legs twice under the race detector.
echo "==> go test -race -count=2 comm-schedule layer"
go test -race -count=2 -run 'Hier|DeferSync' ./internal/comm/
go test -race -count=2 -run 'Sched|Delayed|Decay|AdaptiveT|ChaosHier' ./internal/core/

# The wire-transport cut is the newest schedule-sensitive surface: per
# connection-endpoint writer/reader goroutines, pooled frame buffers
# crossing the socket boundary, idempotent group/transport teardown
# racing in-flight sends, and the cross-transport equivalence matrix
# that pins channel and TCP-loopback backends bitwise identical. Run
# those legs twice under the race detector at both layers.
echo "==> go test -race -count=2 wire transport (channel vs TCP loopback)"
go test -race -count=2 -run 'CrossTransport|GroupClose|TCP|Wire|MultiProcess' ./internal/comm/
go test -race -count=2 -run 'TrainTCP|MultiEndpoint' ./internal/core/

# The tracing subsystem's whole design is lock-free concurrent recording
# (per-track ring buffers, atomic counters), so give its concurrency
# tests the same extra race-detector rounds.
echo "==> go test -race -count=2 obs concurrent tracing"
go test -race -count=2 -run 'Concurrent' ./internal/obs/

# The metrics registry makes the same promise one layer up: lock-free
# counters/gauges/histograms/rings written concurrently by p learners
# while exporters snapshot them, so its concurrency test gets the same
# extra rounds.
echo "==> go test -race -count=2 metrics registry concurrent writes"
go test -race -count=2 -run 'Concurrent' ./internal/obs/metrics/

# The chaos suite is the failure-handling gate: seeded fault plans
# (stragglers, drops, crashes at scheduled boundaries) with bitwise
# survivor-equivalence assertions. Membership changes move virtual rank
# 0 across goroutines, so run it twice under the race detector.
echo "==> go test -race -count=2 chaos suite"
go test -race -count=2 ./internal/chaos/

# Native fuzzing smoke legs: a short randomized walk over the allreduce
# equivalence and bucket-plan invariants beyond the checked-in corpus.
echo "==> go fuzz smoke (10s per target)"
go test -fuzz 'FuzzAllreduceEquivalence' -fuzztime 10s -run 'Fuzz' ./internal/comm/
go test -fuzz 'FuzzPlanBuckets' -fuzztime 10s -run 'Fuzz' ./internal/core/
go test -fuzz 'FuzzFrameDecode' -fuzztime 10s -run 'Fuzz' ./internal/comm/wire/
go test -fuzz 'FuzzFrameRoundTrip' -fuzztime 10s -run 'Fuzz' ./internal/comm/wire/

# The packed GEMM engine's whole contract is bitwise-identical results
# at any worker count (plus fused-epilogue equivalence to the unfused
# layers), and its parallelism runs through the aligned sharding
# helpers, so give those determinism tests extra race-detector rounds.
echo "==> go test -race -count=2 packed GEMM determinism + fusion"
go test -race -count=2 -run 'Bitwise|FastKernels|LinearForward|ConvGemm' ./internal/tensor/
go test -race -count=2 -run 'Fused' ./internal/nn/
go test -race -count=2 -run 'Aligned' ./internal/parallel/

# Steady-state allocation pins (the race detector's instrumentation
# allocates, so these only check out in a plain build): bucketed
# allreduce rounds and full compressed rounds (top-k selection included)
# must stay zero-alloc on the pooled buffers and codec scratch, the
# disabled tracing path must stay nil-check-only free (the obs pin also
# covers the enabled record fast path), and the packed GEMM entry points
# must run allocation-free off the pooled pack scratch.
echo "==> go test bucketed + hier zero-alloc pins"
go test -run 'SteadyStateAllocs' ./internal/comm/
echo "==> go test wire-codec zero-alloc pin"
go test -run 'SteadyStateAllocs' ./internal/comm/wire/
echo "==> go test obs disabled-path zero-alloc pin"
go test -run 'NilTrackIsSafeAndFree|EnabledRecordIsAllocFree' ./internal/obs/
echo "==> go test metrics disabled-path zero-alloc pin"
go test -run 'NilRegistryIsSafeAndFree|EnabledRecordIsAllocFree' ./internal/obs/metrics/
echo "==> go test tensor GEMM zero-alloc pin"
go test -run 'GemmSteadyStateAllocs' ./internal/tensor/

# Bounds-check-elimination gate: the GEMM microkernels are written in
# the len-conditioned slice-advance idiom precisely so the compiler can
# prove every index in bounds; a regression shows up as a check_bce
# diagnostic pointing into gemm_micro.go. The -a forces a real compile
# (a cache hit would emit no diagnostics and pass vacuously).
echo "==> bounds-check-elimination gate (gemm_micro.go)"
bce_out="$(go build -a -o /dev/null \
    -gcflags='sasgd/internal/tensor=-d=ssa/check_bce/debug=1' \
    ./internal/tensor/ 2>&1)"
if printf '%s\n' "$bce_out" | grep -q 'gemm_micro\.go'; then
    printf '%s\n' "$bce_out" | grep 'gemm_micro\.go'
    echo "FAIL: bounds checks in gemm_micro.go microkernels"
    exit 1
fi

echo "OK"
