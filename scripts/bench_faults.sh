#!/bin/sh
# Regenerates BENCH_FAULTS.json: the graceful-degradation figures for
# SASGD p=8 T=8 on the simulated CIFAR-10 platform — fault-free
# baseline vs one learner slowed 4× vs one learner crashing at the
# second aggregation boundary (detected, evicted, survivors re-form
# with γp rescaled and finish on 7 ranks). Simulated epoch seconds,
# final test accuracy, live learner count and fault counters per row.
#
#   scripts/bench_faults.sh             # default epoch budget
#   EPOCHS=4 scripts/bench_faults.sh    # longer runs
set -eu
cd "$(dirname "$0")/.."

out="BENCH_FAULTS.json"
dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

go run ./cmd/experiments -only faults -epochs "${EPOCHS:-0}" -json "$dir"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "gomaxprocs": %s,\n' "$(nproc)"
    printf '  "note": "Simulated (netsim) epoch seconds, so rows are machine-independent and comparable: the straggler stretches every epoch by roughly its slowdown (bulk-synchronous barriers wait for the slowest rank) while the crash costs one eviction timeout and then runs faster per epoch than the straggler run — degradation tracks the slowest survivor, not the membership size. FinalTest for the crash row differs slightly from the baseline because the survivors train on 7 shards with gamma_p rescaled by 8/7.",\n'
    printf '  "result": '
    sed 's/^/  /' "$dir/faults.json" | sed '1s/^ *//'
    printf '\n}\n'
} > "$out"
echo "wrote $out"
