#!/bin/sh
# Regenerates BENCH_METRICS.json: the metrics registry's overhead pins.
# BenchmarkMetricsDisabledProbe pins the nil-registry fast path (the
# cost every probe pays in a run without -metrics — must stay at a few
# ns of nil checks); BenchmarkMetricsEnabled{Counter,Gauge,Histogram,
# Ring} pin the lock-free hot-path recording costs; BenchmarkFleetIngest
# pins the boundary-cadence fleet frame decode + anomaly pass on rank 0.
#
#   scripts/bench_metrics.sh                 # 300ms/bench
#   BENCHTIME=1s scripts/bench_metrics.sh
#
# Compare against a previous baseline with:
#   scripts/bench_diff.sh BENCH_METRICS.json.old BENCH_METRICS.json
set -eu
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-300ms}"
out="BENCH_METRICS.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkMetrics|BenchmarkFleetIngest' \
    -benchtime "$benchtime" ./internal/obs/metrics | tee "$raw"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "gomaxprocs": %s,\n' "$(nproc)"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "frame_words_per_rank": 12,\n'
    printf '  "frame_traffic_words_p8": %s,\n' "$((2 * 7 * 8 * 12))"
    printf '  "note": "MetricsDisabledProbe: ns per counter+gauge+histogram probe on a nil registry — the cost a run without -metrics pays at every instrumentation point, pinned alloc-free by TestNilRegistryIsSafeAndFree in scripts/check.sh. MetricsEnabled{Counter,Gauge,Histogram,Ring}: ns per lock-free hot-path record on a live registry. FleetIngest: ns per boundary-cadence fleet frame ingest (decode p=8 ranks + leave-one-out anomaly pass) on rank 0 — off the training hot path entirely. frame_traffic_words_p8 is the exact extra allreduce traffic per boundary at p=8: 2(p-1) tree hops x p ranks x 12 frame words, pinned by TestMetricsFrameTrafficPinned.",\n'
    printf '  "results": {\n'
    awk '/^Benchmark(Metrics|FleetIngest)/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        sub(/^Benchmark/, "", name)
        lines[n++] = sprintf("    \"%s\": {\"ns_per_op\": %s}", name, $3)
    }
    END {
        for (i = 0; i < n; i++)
            printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    }' "$raw"
    printf '  }\n'
    printf '}\n'
} > "$out"

echo "wrote $out"
