#!/bin/sh
# Regenerates BENCH_OVERLAP.json: full T=1 SASGD training iterations with
# serial aggregation vs bucketed backward-overlapped aggregation
# (1/4/per-layer buckets) across p ∈ {2,4,8} on the reduced CIFAR family —
# the wall-clock companion to the simulated-seconds deltas recorded in
# EXPERIMENTS.md.
#
#   scripts/bench_overlap.sh                 # 300ms/bench
#   BENCHTIME=1s scripts/bench_overlap.sh
set -eu
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-300ms}"
out="BENCH_OVERLAP.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkOverlapAggregation' \
    -benchtime "$benchtime" ./internal/core | tee "$raw"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "gomaxprocs": %s,\n' "$(nproc)"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "note": "ns per full T=1 SASGD run (1 epoch, reduced CIFAR net) per variant. Single-core caveat as in BENCH_COMM/BENCH_KERNELS: with gomaxprocs 1 compute and communication share one core, so overlapping them cannot reduce wall-clock time — on such a host these figures measure the bucketing overhead (handle submission, per-bucket collectives), and any serial-vs-overlap delta is pure bookkeeping cost. The latency win the overlap exists for is pinned on the simulated paper fabric by TestOverlapSimFasterAtT1 and recorded in EXPERIMENTS.md; regenerate here on a multi-core box for a real wall-clock comparison.",\n'
    printf '  "results": {\n'
    awk '/^BenchmarkOverlapAggregation/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        sub(/^BenchmarkOverlapAggregation\//, "", name)
        lines[n++] = sprintf("    \"%s\": {\"ns_per_op\": %s}", name, $3)
    }
    END {
        for (i = 0; i < n; i++)
            printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    }' "$raw"
    printf '  }\n'
    printf '}\n'
} > "$out"

echo "wrote $out"
