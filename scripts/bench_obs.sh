#!/bin/sh
# Regenerates BENCH_OBS.json: the tracing subsystem's overhead pins.
# BenchmarkTraceOverhead runs a full T=1 overlapped SASGD training epoch
# with tracing off (the nil-check-only disabled path) vs on (ring-buffer
# recording); BenchmarkDisabledProbe/BenchmarkEnabledRecord pin the
# per-probe costs in isolation. The disabled path must be free — the
# off/on end-to-end delta is the tracer's whole-run cost.
#
#   scripts/bench_obs.sh                 # 300ms/bench
#   BENCHTIME=1s scripts/bench_obs.sh
set -eu
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-300ms}"
out="BENCH_OBS.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkTraceOverhead' \
    -benchtime "$benchtime" ./internal/core | tee "$raw"
go test -run '^$' -bench 'BenchmarkDisabledProbe|BenchmarkEnabledRecord' \
    -benchtime "$benchtime" ./internal/obs | tee -a "$raw"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "gomaxprocs": %s,\n' "$(nproc)"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "note": "TraceOverhead/{off,on}: ns per full T=1 overlapped SASGD run (1 epoch, reduced CIFAR net) without and with a tracer attached. The off leg is the disabled nil-check-only path — identical to a build without obs. The on leg pays per-probe ring recording (~EnabledRecord ns each) plus one ring allocation per track at tracer setup; the benchmark model is deliberately tiny, so that fixed cost is a visible fraction here and vanishes at realistic model sizes where compute dominates. DisabledProbe/EnabledRecord: ns per individual span probe on a nil and a live track. The disabled path is additionally pinned alloc-free by TestNilTrackIsSafeAndFree (AllocsPerRun) in scripts/check.sh.",\n'
    printf '  "results": {\n'
    awk '/^Benchmark(TraceOverhead|DisabledProbe|EnabledRecord)/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        sub(/^Benchmark/, "", name)
        lines[n++] = sprintf("    \"%s\": {\"ns_per_op\": %s}", name, $3)
    }
    END {
        for (i = 0; i < n; i++)
            printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    }' "$raw"
    printf '  }\n'
    printf '}\n'
} > "$out"

echo "wrote $out"
