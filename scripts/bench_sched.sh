#!/bin/sh
# Regenerates BENCH_SCHED.json: the communication-scheduling frontier
# for SASGD p=8 on the simulated CIFAR-10 platform. Part one sweeps the
# composable policies — T-scheduler (static / decay / adaptive), flat vs
# two-level island aggregation, eager vs delayed global application — on
# an uplink-constrained fabric (cross-island bandwidth = peer/4, islands
# of two ranks) and records words on the wire, cross-island words per
# local step, simulated epoch seconds and final test accuracy per row.
# Part two reruns the communication-bound T=1 ptree column with delayed
# application on the standard fabric. Acceptance: the hierarchical rows
# must cut cross-island words per step by at least 2x vs flat eager at
# the same inner period, and the delayed T=1 run must beat the PR-3/4
# overlap baseline on epoch time while hiding a larger fraction of the
# serial schedule's communication seconds (hidden(sim) = 1 -
# SimComm/serial SimComm; the wall-trace fraction is also recorded but
# undercounts on hosts whose core count serializes the learners).
#
#   scripts/bench_sched.sh             # default epoch budget
#   EPOCHS=4 scripts/bench_sched.sh    # longer runs
set -eu
cd "$(dirname "$0")/.."

out="BENCH_SCHED.json"
dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

go run ./cmd/experiments -only sched -epochs "${EPOCHS:-0}" -json "$dir"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "gomaxprocs": %s,\n' "$(nproc)"
    printf '  "note": "CrossPerStep is cross-island (uplink) words per local step per learner; CrossReduction is the flat-eager static row divided by this row. The hierarchical rows aggregate inside each island every boundary and cross the uplink once every TOuter=4 boundaries, so their uplink traffic drops ~4x at identical inner period (the adaptive row widens T further and drops more). HiddenSimFraction is 1 - delayed.SimComm/serial.SimComm: the simulator charges comm seconds only when an arrival Syncs a learner clock forward, so this counts exactly the transfer time that surfaced on the critical path; OverlapHiddenSimFraction is the same metric for the PR-4 backward-overlap baseline. HiddenTraceFraction (wall-clock span intersection) is reported for completeness but undercounts when the host serializes the learners onto few cores.",\n'
    printf '  "result": '
    sed 's/^/  /' "$dir/sched.json" | sed '1s/^ *//'
    printf '\n}\n'
} > "$out"
echo "wrote $out"
