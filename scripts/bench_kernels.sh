#!/bin/sh
# Regenerates BENCH_KERNELS.json: the worker-sweep baseline for the two
# kernels the parallel layer is judged on (GEMM and Conv2D forward) plus
# the AXPY update loop.
#
#   scripts/bench_kernels.sh              # 1,2,4,8 workers, 300ms/bench
#   WORKERS=1,4 BENCHTIME=1s scripts/bench_kernels.sh
set -eu
cd "$(dirname "$0")/.."

workers="${WORKERS:-1,2,4,8}"
benchtime="${BENCHTIME:-300ms}"
out="BENCH_KERNELS.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# The package path must precede -workers: go test stops reading package
# arguments at the first flag it does not recognise itself.
go test -run '^$' -bench 'KernelMatMul|KernelConvForward' \
    -benchtime "$benchtime" . -workers "$workers" | tee "$raw"
go test -run '^$' -bench 'Conv2DForward' \
    -benchtime "$benchtime" ./internal/nn -workers "$workers" | tee -a "$raw"
go test -run '^$' -bench 'KernelMatMulWorkers|AxpyWorkers' \
    -benchtime "$benchtime" ./internal/tensor -workers "$workers" | tee -a "$raw"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "gomaxprocs": %s,\n' "$(nproc)"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "note": "ns/op per benchmark. Worker sweeps (…/wN) run the same bitwise-identical kernels at different parallel.SetWorkers budgets; on a single-core machine (gomaxprocs 1) the caller drains every shard itself, so ratios stay ~1 and the multi-worker entries measure dispatch overhead, not speedup. Regenerate on a multi-core box with scripts/bench_kernels.sh to see scaling.",\n'
    printf '  "results_ns_per_op": {\n'
    awk '/^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        sub(/^Benchmark/, "", name)
        lines[n++] = sprintf("    \"%s\": %s", name, $3)
    }
    END {
        for (i = 0; i < n; i++)
            printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    }' "$raw"
    printf '  }\n'
    printf '}\n'
} > "$out"

echo "wrote $out"
