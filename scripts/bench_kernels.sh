#!/bin/sh
# Regenerates BENCH_KERNELS.json: the worker-sweep baseline for the
# kernels the parallel layer is judged on (GEMM — square, transposed and
# odd shapes — the fused im2col+GEMM Conv2D forward) plus the AXPY
# update loop and the small-tier zero-skip pin.
#
#   scripts/bench_kernels.sh              # 1,2,4,8 workers, 300ms/bench
#   WORKERS=1,4 BENCHTIME=1s COUNT=3 scripts/bench_kernels.sh
#
# COUNT > 1 runs every benchmark that many times and records the
# minimum ns/op: on a noisy shared box the run-to-run spread is ±20%,
# and the fastest run is the least-contended estimate of what the
# kernel actually costs.
set -eu
cd "$(dirname "$0")/.."

workers="${WORKERS:-1,2,4,8}"
benchtime="${BENCHTIME:-300ms}"
count="${COUNT:-1}"
out="BENCH_KERNELS.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# The package path must precede -workers: go test stops reading package
# arguments at the first flag it does not recognise itself.
go test -run '^$' -bench 'KernelMatMul|KernelConvForward' \
    -benchtime "$benchtime" -count "$count" . -workers "$workers" | tee "$raw"
go test -run '^$' -bench 'Conv2DForward' \
    -benchtime "$benchtime" -count "$count" ./internal/nn -workers "$workers" | tee -a "$raw"
go test -run '^$' -bench 'KernelMatMul|KernelConvFused|AxpyWorkers|MatMulZeroSkip' \
    -benchtime "$benchtime" -count "$count" ./internal/tensor -workers "$workers" | tee -a "$raw"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "gomaxprocs": %s,\n' "$(nproc)"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "count": %s,\n' "$count"
    printf '  "note": "ns/op per benchmark (min over COUNT runs). Worker sweeps (…/wN) run the same bitwise-identical kernels at different parallel.SetWorkers budgets; on a single-core machine (gomaxprocs 1) the caller drains every shard itself, so ratios stay ~1 and the multi-worker entries measure dispatch overhead, not speedup. Regenerate on a multi-core box with scripts/bench_kernels.sh to see scaling.",\n'
    printf '  "results_ns_per_op": {\n'
    awk '/^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        sub(/^Benchmark/, "", name)
        if (!(name in best)) { order[n++] = name; best[name] = $3 + 0 }
        else if ($3 + 0 < best[name]) { best[name] = $3 + 0 }
    }
    END {
        for (i = 0; i < n; i++)
            printf "    \"%s\": %d%s\n", order[i], best[order[i]], (i < n-1 ? "," : "")
    }' "$raw"
    printf '  }\n'
    printf '}\n'
} > "$out"

echo "wrote $out"
