#!/bin/sh
# Regenerates BENCH_COMM.json: allreduce throughput (words/sec) for every
# collective — tree, ring, chunked pipelined tree, recursive halving/
# doubling — across group sizes p ∈ {2,4,8} and message lengths
# m ∈ {1e4,1e6}, the before/after figure for the pooled, pipelined
# collectives.
#
#   scripts/bench_comm.sh                 # 300ms/bench
#   BENCHTIME=1s scripts/bench_comm.sh
set -eu
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-300ms}"
out="BENCH_COMM.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkCommAllreduce' \
    -benchtime "$benchtime" ./internal/comm | tee "$raw"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "gomaxprocs": %s,\n' "$(nproc)"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "note": "Per-benchmark ns per allreduce round and words/sec (m words summed across p learners per round). All p learner goroutines share the cores, so on a single-core machine (gomaxprocs 1) the figures measure per-word software overhead and the algorithm ratios are flattened: tree/ring/ptree/rhd move different wire volumes but the same core executes every copy, so bandwidth-optimal algorithms cannot show their p-fold advantage. Regenerate on a multi-core box with scripts/bench_comm.sh for meaningful cross-algorithm ratios; the words/sec deltas between monolithic tree and ptree on one core still show the pooling/pipelining overhead reduction.",\n'
    printf '  "results": {\n'
    awk '/^BenchmarkCommAllreduce/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        sub(/^BenchmarkCommAllreduce\//, "", name)
        ns = $3
        m = name
        sub(/^.*\/m/, "", m)
        wps = (ns > 0) ? m * 1e9 / ns : 0
        lines[n++] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"words_per_sec\": %.0f}", name, ns, wps)
    }
    END {
        for (i = 0; i < n; i++)
            printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    }' "$raw"
    printf '  }\n'
    printf '}\n'
} > "$out"

echo "wrote $out"
