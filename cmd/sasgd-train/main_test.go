package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestTwoProcessTCPMatchesChannel is the end-to-end acceptance run for
// the wire transport: two real OS processes, one learner rank each,
// meet over a TCP mesh on loopback and must train to final parameters
// bitwise identical to a single-process channel-fabric run of the same
// configuration. Real processes — not goroutines — so the per-process
// worker budget, env defaults and flag plumbing are exercised exactly
// as a user would hit them.
func TestTwoProcessTCPMatchesChannel(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and trains three runs; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sasgd-train")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	common := []string{"-p", "2", "-T", "2", "-epochs", "1", "-batch", "8", "-seed", "7"}
	run := func(extra ...string) []byte {
		cmd := exec.Command(bin, append(append([]string{}, common...), extra...)...)
		cmd.Env = os.Environ()
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%v: %v\n%s", cmd.Args, err, out)
		}
		return out
	}

	chanOut := filepath.Join(dir, "chan.bin")
	run("-params-out", chanOut)

	peers := fmt.Sprintf("127.0.0.1:%d,127.0.0.1:%d", freePort(t), freePort(t))
	tcpOut := filepath.Join(dir, "tcp.bin")
	cmd1 := exec.Command(bin, append(append([]string{}, common...),
		"-transport", "tcp", "-rank", "1", "-peers", peers)...)
	cmd1.Env = os.Environ()
	var out1 bytes.Buffer
	cmd1.Stdout, cmd1.Stderr = &out1, &out1
	if err := cmd1.Start(); err != nil {
		t.Fatal(err)
	}
	done1 := make(chan error, 1)
	go func() { done1 <- cmd1.Wait() }()

	run("-transport", "tcp", "-rank", "0", "-peers", peers, "-params-out", tcpOut)
	select {
	case err := <-done1:
		if err != nil {
			t.Fatalf("rank-1 process: %v\n%s", err, out1.String())
		}
	case <-time.After(2 * time.Minute):
		cmd1.Process.Kill()
		t.Fatalf("rank-1 process did not exit\n%s", out1.String())
	}

	want, err := os.ReadFile(chanOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tcpOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || !bytes.Equal(got, want) {
		t.Fatalf("two-process TCP final parameters differ from the channel-fabric run (%d vs %d bytes)", len(got), len(want))
	}
}

// freePort claims an ephemeral loopback port and releases it for a
// subprocess to re-bind.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}
