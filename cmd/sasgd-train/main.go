// Command sasgd-train trains one of the two paper workloads with any of
// the implemented distributed algorithms and prints the accuracy curve,
// the paper's Table-III hyperparameters exposed as flags.
//
//	go run ./cmd/sasgd-train -algo sasgd -workload cifar -p 8 -T 50
//	go run ./cmd/sasgd-train -algo downpour -workload nlcf -p 16 -epochs 40
//	go run ./cmd/sasgd-train -algo sasgd -p 8 -T 1 -sim   # simulated fabric timing
package main

import (
	"flag"
	"fmt"
	"os"

	"sasgd/internal/core"
	"sasgd/internal/experiments"
	"sasgd/internal/metrics"
)

func main() {
	algo := flag.String("algo", "sasgd", "training algorithm: sgd, sasgd, downpour, eamsgd, hogwild")
	workload := flag.String("workload", "cifar", "workload: cifar (Table I) or nlcf (Table II)")
	scale := flag.String("scale", "small", "small (reduced, default) or paper (exact published sizes; very slow in pure Go)")
	p := flag.Int("p", 4, "number of learners")
	t := flag.Int("T", 50, "gradient-aggregation interval (local updates between syncs)")
	gamma := flag.Float64("gamma", 0, "local learning rate γ (0 = workload default)")
	gammaP := flag.Float64("gammap", 0, "SASGD global rate γp (0 = γ/p, i.e. model averaging)")
	batch := flag.Int("batch", 0, "minibatch size M (0 = workload default)")
	epochs := flag.Int("epochs", 0, "epochs (0 = workload default)")
	seed := flag.Int64("seed", 1, "random seed")
	allreduce := flag.String("allreduce", "tree", "SASGD collective: tree, ring, ptree (chunked pipelined tree) or rhd (recursive halving/doubling)")
	commChunk := flag.Int("comm-chunk", 0, "ptree chunk size in float64 words (0 = SASGD_COMM_CHUNK env or 8192)")
	overlap := flag.Bool("overlap", false, "overlap SASGD aggregation with backprop (bucketed allreduce; default also via SASGD_OVERLAP=1)")
	buckets := flag.Int("buckets", 0, "gradient bucket count for -overlap (0 = one per parameterized layer)")
	momentum := flag.Float64("momentum", 0, "EAMSGD local momentum (0 = default, negative = none)")
	topk := flag.Float64("topk", 0, "SASGD top-k compression fraction in (0,1); 0 = dense aggregation")
	workers := flag.Int("workers", 0, "per-learner kernel workers (0 = split SASGD_WORKERS/GOMAXPROCS across learners)")
	sim := flag.Bool("sim", false, "attach the fabric simulator and report simulated epoch time")
	vtime := flag.Bool("vtime", false, "deterministic virtual-time scheduling for the asynchronous algorithms")
	flag.Parse()

	sc := experiments.ScaleSmall
	switch *scale {
	case "small":
	case "paper":
		sc = experiments.ScalePaper
		fmt.Fprintln(os.Stderr, "sasgd-train: paper scale selected; a full run takes CPU-days in pure Go")
	default:
		fmt.Fprintf(os.Stderr, "sasgd-train: unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}
	var w *experiments.Workload
	switch *workload {
	case "cifar":
		w = experiments.ImageWorkloadAt(sc)
	case "nlcf":
		w = experiments.TextWorkloadAt(sc)
	default:
		fmt.Fprintf(os.Stderr, "sasgd-train: unknown workload %q (want cifar or nlcf)\n", *workload)
		os.Exit(2)
	}

	cfg := core.Config{
		Algo:         core.Algorithm(*algo),
		Learners:     *p,
		Interval:     *t,
		Gamma:        w.Gamma,
		GammaP:       *gammaP,
		Batch:        w.Batch,
		Epochs:       w.Epochs,
		Seed:         *seed,
		Momentum:     *momentum,
		Allreduce:    core.AllreduceAlgo(*allreduce),
		CommChunk:    *commChunk,
		OverlapComm:  *overlap,
		CommBuckets:  *buckets,
		CompressTopK: *topk,
		VirtualTime:  *vtime,
		Workers:      *workers,
	}
	if *gamma > 0 {
		cfg.Gamma = *gamma
	}
	if *batch > 0 {
		cfg.Batch = *batch
	}
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}
	switch cfg.Algo {
	case core.AlgoSGD, core.AlgoSASGD, core.AlgoDownpour, core.AlgoEAMSGD, core.AlgoHogwild:
	default:
		fmt.Fprintf(os.Stderr, "sasgd-train: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	if *sim {
		simCfg := w.SimConfig(cfg.Learners)
		cfg.Sim = simCfg
		cfg.FlopsPerSample = w.PaperCost.TrainFlopsPerSample
	}

	fmt.Printf("training %s on %s: p=%d T=%d M=%d γ=%g epochs=%d\n",
		cfg.Algo, w.Name, cfg.Learners, cfg.Interval, cfg.Batch, cfg.Gamma, cfg.Epochs)
	res := core.Train(cfg, w.Problem)

	tab := metrics.Table{Header: []string{"epoch", "train", "test", "loss"}}
	for _, pt := range res.Curve {
		tab.AddRow(fmt.Sprint(pt.Epoch), metrics.Pct(pt.Train), metrics.Pct(pt.Test), fmt.Sprintf("%.4f", pt.Loss))
	}
	fmt.Print(tab.String())
	fmt.Printf("final: train %s test %s (%d samples, wall %s)\n",
		metrics.Pct(res.FinalTrain), metrics.Pct(res.FinalTest), res.Samples, res.Wall.Round(1e6))
	if res.StalenessMax > 0 {
		fmt.Printf("gradient staleness: mean %.2f, max %d\n", res.StalenessMean, res.StalenessMax)
	}
	if *sim {
		fmt.Printf("simulated: %.3fs total, %.3fs/epoch (compute %.3fs, communication %.3fs per learner)\n",
			res.SimTime, res.EpochTime(), res.SimCompute, res.SimComm)
	}
}
