// Command sasgd-train trains one of the two paper workloads with any of
// the implemented distributed algorithms and prints the accuracy curve,
// the paper's Table-III hyperparameters exposed as flags.
//
//	go run ./cmd/sasgd-train -algo sasgd -workload cifar -p 8 -T 50
//	go run ./cmd/sasgd-train -algo downpour -workload nlcf -p 16 -epochs 40
//	go run ./cmd/sasgd-train -algo sasgd -p 8 -T 1 -sim   # simulated fabric timing
//	go run ./cmd/sasgd-train -p 8 -T 1 -overlap -trace out.json  # Perfetto timeline + phase profile
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"sasgd/internal/comm"
	"sasgd/internal/core"
	"sasgd/internal/experiments"
	"sasgd/internal/metrics"
	"sasgd/internal/obs"
	obsmetrics "sasgd/internal/obs/metrics"
)

func main() {
	algo := flag.String("algo", "sasgd", "training algorithm: sgd, sasgd, downpour, eamsgd, hogwild")
	workload := flag.String("workload", "cifar", "workload: cifar (Table I) or nlcf (Table II)")
	scale := flag.String("scale", "small", "small (reduced, default) or paper (exact published sizes; very slow in pure Go)")
	p := flag.Int("p", 4, "number of learners")
	t := flag.Int("T", 50, "gradient-aggregation interval (local updates between syncs)")
	gamma := flag.Float64("gamma", 0, "local learning rate γ (0 = workload default)")
	gammaP := flag.Float64("gammap", 0, "SASGD global rate γp (0 = γ/p, i.e. model averaging)")
	batch := flag.Int("batch", 0, "minibatch size M (0 = workload default)")
	epochs := flag.Int("epochs", 0, "epochs (0 = workload default)")
	seed := flag.Int64("seed", 1, "random seed")
	allreduce := flag.String("allreduce", "tree", "SASGD collective: tree, ring, ptree (chunked pipelined tree) or rhd (recursive halving/doubling)")
	commChunk := flag.Int("comm-chunk", 0, "ptree chunk size in float64 words (0 = SASGD_COMM_CHUNK env or 8192)")
	overlap := flag.Bool("overlap", false, "overlap SASGD aggregation with backprop (bucketed allreduce; default also via SASGD_OVERLAP=1)")
	buckets := flag.Int("buckets", 0, "gradient bucket count for -overlap (0 = one per parameterized layer)")
	momentum := flag.Float64("momentum", 0, "EAMSGD local momentum (0 = default, negative = none)")
	tSched := flag.String("t-sched", "", "SASGD aggregation-period scheduler: static, decay (start at T=1, double toward -T) or adaptive (drift-controlled; default also via SASGD_TSCHED)")
	hierGroups := flag.Int("hier-groups", 0, "two-level SASGD aggregation: partition the learners into this many islands, aggregate intra-island every boundary and cross-island every -t-outer boundaries (<2 = flat; default also via SASGD_HIER_GROUPS)")
	tOuter := flag.Int("t-outer", 0, "inner boundaries per cross-island exchange with -hier-groups (0 = 4)")
	delayed := flag.Bool("delayed", false, "delay the global application of each boundary's aggregate by one round so the transfer hides behind the next interval's compute (default also via SASGD_DELAYED=1)")
	compress := flag.String("compress", "", "SASGD gradient compression codec: topk (error-feedback top-k), qint8 (int8 quantization) or none (default also via SASGD_COMPRESS, e.g. SASGD_COMPRESS=topk:0.05)")
	compressK := flag.Float64("compress-k", 0, "top-k fraction in (0,1] for -compress topk (0 = 0.05; 1 = dense)")
	compressAdapt := flag.Bool("compress-adapt", false, "adapt the top-k fraction to the captured gradient-mass fraction (topk only)")
	topk := flag.Float64("topk", 0, "deprecated alias for -compress topk -compress-k <f>: top-k fraction in (0,1); 0 = dense aggregation")
	workers := flag.Int("workers", 0, "per-learner kernel workers (0 = split SASGD_WORKERS/GOMAXPROCS across learners)")
	fastKernels := flag.Bool("fast-kernels", false, "use reordered-summation tensor kernels: faster dot products, value-equal to the default kernels within 1e-12 but not bit-identical (default also via SASGD_FAST_KERNELS=1)")
	sim := flag.Bool("sim", false, "attach the fabric simulator and report simulated epoch time")
	vtime := flag.Bool("vtime", false, "deterministic virtual-time scheduling for the asynchronous algorithms")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON timeline of the run to this file (default also via SASGD_TRACE=1 or SASGD_TRACE=path; load in ui.perfetto.dev)")
	transport := flag.String("transport", "", "wire transport: chan (in-process fabric, the default) or tcp (length-prefixed framed sockets; default also via SASGD_TRANSPORT)")
	rank := flag.Int("rank", -1, "with -transport tcp: the single learner rank this process hosts, meeting its peers over -peers (-1 = host every rank over TCP loopback; default also via SASGD_RANK)")
	peers := flag.String("peers", "", "with -transport tcp -rank N: comma-separated host:port for every rank in order, e.g. 127.0.0.1:7000,127.0.0.1:7001 (default also via SASGD_PEERS)")
	paramsOut := flag.String("params-out", "", "write the final parameters to this file as little-endian float64 words (rank-0 process only)")
	faults := flag.String("faults", "", "SASGD fault-injection plan, e.g. seed=1,drop=0.05,slow=2:4,crash=3@10,evict=500ms (default also via SASGD_FAULTS)")
	ckpt := flag.String("ckpt", "", "SASGD checkpoint path written at aggregation boundaries; a %d in the path keeps one file per boundary")
	ckptEvery := flag.Int("ckpt-every", 1, "checkpoint every Nth aggregation boundary (with -ckpt)")
	resume := flag.String("resume", "", "resume SASGD training from this checkpoint file")
	resumeRanks := flag.String("resume-ranks", "", "comma-separated original ranks the resumed learners play, e.g. 0,1,3 after rank 2 died (default: all of them)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars and /debug/obs live snapshots on this address during the run (e.g. localhost:6060)")
	metricsOn := flag.Bool("metrics", false, "attach the fleet metrics registry: per-boundary drift/T/compression telemetry, straggler detection, and an end-of-run fleet health summary (SASGD only; default also via SASGD_METRICS=1)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text on /debug/metrics and the JSON snapshot on /debug/obs at this address during the run (implies -metrics; same mux as -debug-addr)")
	metricsEvents := flag.String("metrics-events", "", "append boundary/T-change/membership/fault/anomaly events to this NDJSON file during the run (implies -metrics)")
	flag.Parse()

	sc := experiments.ScaleSmall
	switch *scale {
	case "small":
	case "paper":
		sc = experiments.ScalePaper
		fmt.Fprintln(os.Stderr, "sasgd-train: paper scale selected; a full run takes CPU-days in pure Go")
	default:
		fmt.Fprintf(os.Stderr, "sasgd-train: unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}
	var w *experiments.Workload
	switch *workload {
	case "cifar":
		w = experiments.ImageWorkloadAt(sc)
	case "nlcf":
		w = experiments.TextWorkloadAt(sc)
	default:
		fmt.Fprintf(os.Stderr, "sasgd-train: unknown workload %q (want cifar or nlcf)\n", *workload)
		os.Exit(2)
	}

	cfg := core.Config{
		Algo:          core.Algorithm(*algo),
		Learners:      *p,
		Interval:      *t,
		Gamma:         w.Gamma,
		GammaP:        *gammaP,
		Batch:         w.Batch,
		Epochs:        w.Epochs,
		Seed:          *seed,
		Momentum:      *momentum,
		Allreduce:     core.AllreduceAlgo(*allreduce),
		CommChunk:     *commChunk,
		OverlapComm:   *overlap,
		CommBuckets:   *buckets,
		TSched:        *tSched,
		HierGroups:    *hierGroups,
		TOuter:        *tOuter,
		DelayedApply:  *delayed,
		CompressTopK:  *topk,
		Compress:      *compress,
		CompressK:     *compressK,
		CompressAdapt: *compressAdapt,
		VirtualTime:   *vtime,
		Workers:       *workers,
		FastKernels:   *fastKernels,
	}
	switch *compress {
	case "", "none", core.CodecTopK, core.CodecQInt8:
	default:
		fmt.Fprintf(os.Stderr, "sasgd-train: unknown compression codec %q (want topk, qint8 or none)\n", *compress)
		os.Exit(2)
	}
	switch *tSched {
	case "", core.TSchedStatic, core.TSchedDecay, core.TSchedAdaptive:
	default:
		fmt.Fprintf(os.Stderr, "sasgd-train: unknown T-scheduler %q (want static, decay or adaptive)\n", *tSched)
		os.Exit(2)
	}
	if *compressK < 0 || *compressK > 1 {
		fmt.Fprintf(os.Stderr, "sasgd-train: -compress-k %g out of range (0,1]\n", *compressK)
		os.Exit(2)
	}
	if *gamma > 0 {
		cfg.Gamma = *gamma
	}
	if *batch > 0 {
		cfg.Batch = *batch
	}
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}
	switch cfg.Algo {
	case core.AlgoSGD, core.AlgoSASGD, core.AlgoDownpour, core.AlgoEAMSGD, core.AlgoHogwild:
	default:
		fmt.Fprintf(os.Stderr, "sasgd-train: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	if *sim {
		simCfg := w.SimConfig(cfg.Learners)
		cfg.Sim = simCfg
		cfg.FlopsPerSample = w.PaperCost.TrainFlopsPerSample
	}

	// Fault injection and checkpoint-restart: the flag wins, the
	// SASGD_FAULTS env supplies the default (same precedence as -trace).
	faultSpec := *faults
	if faultSpec == "" {
		faultSpec = core.DefaultFaultSpec()
	}
	if faultSpec != "" {
		plan, err := comm.ParseFaultPlan(faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sasgd-train: -faults: %v\n", err)
			os.Exit(2)
		}
		cfg.Faults = plan
	}
	cfg.CheckpointPath = *ckpt
	cfg.CheckpointEvery = *ckptEvery
	cfg.ResumeFrom = *resume
	if *resumeRanks != "" {
		for _, s := range strings.Split(*resumeRanks, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "sasgd-train: -resume-ranks: %v\n", err)
				os.Exit(2)
			}
			cfg.ResumeRanks = append(cfg.ResumeRanks, r)
		}
	}
	if (cfg.Faults != nil || cfg.CheckpointPath != "" || cfg.ResumeFrom != "") && cfg.Algo != core.AlgoSASGD {
		fmt.Fprintf(os.Stderr, "sasgd-train: -faults/-ckpt/-resume require -algo sasgd (crash tolerance is built on its aggregation boundaries)\n")
		os.Exit(2)
	}

	// Wire transport: the flags win, the SASGD_TRANSPORT / SASGD_RANK /
	// SASGD_PEERS envs supply defaults (same precedence as -trace).
	trMode, trRank, trPeers := *transport, *rank, *peers
	envT, envR, envP := core.DefaultTransport()
	if trMode == "" {
		trMode = envT
	}
	if trRank < 0 {
		trRank = envR
	}
	if trPeers == "" {
		trPeers = envP
	}
	switch trMode {
	case "", "chan":
	case "tcp":
		if cfg.Algo != core.AlgoSASGD {
			fmt.Fprintf(os.Stderr, "sasgd-train: -transport tcp requires -algo sasgd\n")
			os.Exit(2)
		}
		var tr *comm.TCPTransport
		var err error
		if trRank < 0 {
			tr, err = comm.NewTCPLoopback(cfg.Learners)
		} else {
			if *sim || cfg.Faults != nil || cfg.CheckpointPath != "" || cfg.ResumeFrom != "" {
				fmt.Fprintf(os.Stderr, "sasgd-train: -rank (multi-process) composes with neither -sim nor -faults/-ckpt/-resume\n")
				os.Exit(2)
			}
			addrs := strings.Split(trPeers, ",")
			for i := range addrs {
				addrs[i] = strings.TrimSpace(addrs[i])
			}
			if len(addrs) != cfg.Learners || addrs[0] == "" {
				fmt.Fprintf(os.Stderr, "sasgd-train: -peers needs exactly %d comma-separated host:port entries, got %q\n", cfg.Learners, trPeers)
				os.Exit(2)
			}
			fmt.Printf("tcp mesh: rank %d of %d, waiting for peers %v\n", trRank, cfg.Learners, addrs)
			tr, err = comm.NewTCPTransport(comm.TCPConfig{Addrs: addrs, Local: []int{trRank}})
			cfg.LocalRanks = []int{trRank}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sasgd-train: tcp transport: %v\n", err)
			os.Exit(1)
		}
		defer tr.Close()
		cfg.Transport = tr
	default:
		fmt.Fprintf(os.Stderr, "sasgd-train: unknown transport %q (want chan or tcp)\n", trMode)
		os.Exit(2)
	}

	// Tracing: the flag wins, the SASGD_TRACE env supplies the default
	// (same precedence as -overlap/SASGD_OVERLAP). The debug endpoint
	// needs a tracer too, so it implies one even without a trace file.
	tracePath := *trace
	if tracePath == "" {
		tracePath = core.DefaultTracePath()
	}
	var tracer *obs.Tracer
	if tracePath != "" || *debugAddr != "" || *metricsAddr != "" {
		tracer = obs.NewTracer(0)
		cfg.Tracer = tracer
	}

	// Metrics: the flag wins, the SASGD_METRICS env supplies the default,
	// and either export flag implies collection. The registry only feeds
	// from SASGD's aggregation boundaries; attaching it to another
	// algorithm is harmless but yields no fleet view.
	var reg *obsmetrics.Registry
	if *metricsOn || *metricsAddr != "" || *metricsEvents != "" || core.DefaultMetrics() {
		reg = obsmetrics.New()
		cfg.Metrics = reg
		// Train attaches the registry to the tracer too; doing it here as
		// well makes /debug/metrics live before the first boundary.
		tracer.SetMetrics(reg)
		if *metricsEvents != "" {
			f, err := os.Create(*metricsEvents)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sasgd-train: -metrics-events: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			reg.SetEvents(obsmetrics.NewEventLog(f))
		}
	}

	if *debugAddr != "" {
		addr, err := tracer.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sasgd-train: debug endpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("debug endpoint: http://%s/debug/obs\n", addr)
	}
	if *metricsAddr != "" && *metricsAddr != *debugAddr {
		addr, err := tracer.ServeDebug(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sasgd-train: metrics endpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics endpoint: http://%s/debug/metrics\n", addr)
	}

	fmt.Printf("training %s on %s: p=%d T=%d M=%d γ=%g epochs=%d\n",
		cfg.Algo, w.Name, cfg.Learners, cfg.Interval, cfg.Batch, cfg.Gamma, cfg.Epochs)
	res := core.Train(cfg, w.Problem)

	tab := metrics.Table{Header: []string{"epoch", "train", "test", "loss"}}
	for _, pt := range res.Curve {
		tab.AddRow(fmt.Sprint(pt.Epoch), metrics.Pct(pt.Train), metrics.Pct(pt.Test), fmt.Sprintf("%.4f", pt.Loss))
	}
	fmt.Print(tab.String())
	fmt.Printf("final: train %s test %s (%d samples, wall %s)\n",
		metrics.Pct(res.FinalTrain), metrics.Pct(res.FinalTest), res.Samples, res.Wall.Round(1e6))
	if *paramsOut != "" {
		if len(res.FinalParams) == 0 {
			fmt.Fprintln(os.Stderr, "sasgd-train: -params-out: this process does not host rank 0, so it has no final parameters to write")
		} else {
			buf := make([]byte, 8*len(res.FinalParams))
			for i, v := range res.FinalParams {
				binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
			}
			if err := os.WriteFile(*paramsOut, buf, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "sasgd-train: -params-out: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("final parameters: %d words written to %s\n", len(res.FinalParams), *paramsOut)
		}
	}
	if res.StalenessMax > 0 {
		fmt.Printf("gradient staleness: mean %.2f, max %d\n", res.StalenessMean, res.StalenessMax)
	}
	if res.CompressK > 0 {
		fmt.Printf("compression: final top-k fraction %.4g (%d words on the wire)\n", res.CompressK, res.WordsMoved)
	}
	if f := res.Comm.Faults; f.Active() {
		fmt.Printf("faults: %d drops, %d retries, %d timeouts, %d crashes, %d evictions, %d re-forms (%d/%d learners live)\n",
			f.Drops, f.Retries, f.Timeouts, f.Crashes, f.Evictions, f.Reforms, res.LiveP, res.P)
	}
	if *sim {
		fmt.Printf("simulated: %.3fs total, %.3fs/epoch (compute %.3fs, communication %.3fs per learner)\n",
			res.SimTime, res.EpochTime(), res.SimCompute, res.SimComm)
	}
	if tracer != nil {
		if tracePath != "" {
			if err := tracer.WriteTraceFile(tracePath); err != nil {
				fmt.Fprintf(os.Stderr, "sasgd-train: writing trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("trace written to %s (load in ui.perfetto.dev or chrome://tracing)\n", tracePath)
		}
		fmt.Print(tracer.ProfileTable("phase latency profile"))
		if ov, total := tracer.OverlapFraction(); total > 0 {
			fmt.Printf("allreduce overlap: %.1f%% of %v hidden behind backward\n",
				100*float64(ov)/float64(total), total.Round(time.Microsecond))
		}
		if hid, total := tracer.HiddenFraction(); total > 0 {
			fmt.Printf("allreduce hidden: %.1f%% of %v inside compute (forward+backward+step)\n",
				100*float64(hid)/float64(total), total.Round(time.Microsecond))
		}
		if res.Comm.Words > 0 {
			fmt.Print(res.Comm.String())
		}
	}
	if snap := reg.Fleet().Snapshot(); snap != nil && snap.Boundaries > 0 {
		ftab := metrics.Table{
			Title:  "fleet health",
			Header: []string{"rank", "live", "compute(ms)", "wall(ms)", "sim-comp(s)", "sim-comm(s)", "z", "flagged"},
		}
		for _, r := range snap.Ranks {
			live := "yes"
			if !r.Live {
				live = "no"
			}
			flagged := ""
			if r.Flagged {
				flagged = "STRAGGLER"
			}
			ftab.AddRow(fmt.Sprint(r.Rank), live,
				fmt.Sprintf("%.1f", r.TotComputeNs/1e6),
				fmt.Sprintf("%.1f", r.TotWallNs/1e6),
				fmt.Sprintf("%.3f", r.TotSimCompute),
				fmt.Sprintf("%.3f", r.TotSimComm),
				fmt.Sprintf("%.2f", r.Z), flagged)
		}
		fmt.Print(ftab.String())
		fmt.Printf("fleet: %d boundaries, %d/%d live, T=%d, drift RMS %.4g, %d frame words on the wire\n",
			snap.Boundaries, snap.Live, len(snap.Ranks), snap.T, snap.DriftRMS,
			int64(snap.Boundaries)*obsmetrics.FrameTrafficWords(len(snap.Ranks)))
		if len(snap.Anomalies) > 0 {
			fmt.Printf("anomalies: ranks %v flagged as stragglers (leave-one-out z ≥ %g for %d+ boundaries)\n",
				snap.Anomalies, obsmetrics.DefaultZ, obsmetrics.DefaultStreak)
		}
	}
}
