// Command experiments regenerates every table and figure in the paper's
// evaluation at reduced scale (see DESIGN.md §6), printing the same rows
// and series the paper reports. With no flags it runs the full suite in
// paper order; -only selects specific items.
//
//	go run ./cmd/experiments                  # everything (several minutes)
//	go run ./cmd/experiments -only fig9,fig10 # just the headline comparison
//	go run ./cmd/experiments -epochs 10       # shrink every epoch budget
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sasgd/internal/core"
	"sasgd/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated subset: tables, theorem1, fig1..fig10, averaging, trace, faults, compress, sched (default: all)")
	epochs := flag.Int("epochs", 0, "override every figure's epoch budget (0 = per-figure default)")
	seed := flag.Int64("seed", 0, "seed offset for replication runs")
	replicas := flag.Int("replicas", 3, "seeds averaged per convergence curve (1 = single run)")
	jsonDir := flag.String("json", "", "also write each item's structured result as JSON into this directory")
	trace := flag.String("trace", "", "Chrome-trace output file for the trace item (default also via SASGD_TRACE=1 or SASGD_TRACE=path)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars and /debug/obs on this address during traced runs")
	metricsOn := flag.Bool("metrics", false, "attach the fleet metrics registry to the metrics-aware items (trace): per-rank sim splits, drift RMS and straggler verdicts (default also via SASGD_METRICS=1)")
	flag.Parse()

	tracePath := *trace
	if tracePath == "" {
		tracePath = core.DefaultTracePath()
	}
	opt := experiments.Opt{Out: os.Stdout, Epochs: *epochs, Seed: *seed, Replicas: *replicas,
		TracePath: tracePath, DebugAddr: *debugAddr,
		Metrics: *metricsOn || core.DefaultMetrics()}
	all := []struct {
		name string
		run  func() interface{}
	}{
		{"tables", func() interface{} {
			return map[string]interface{}{"tableI": experiments.TableI(opt), "tableII": experiments.TableII(opt)}
		}},
		{"theorem1", func() interface{} { return experiments.Theorem1(opt) }},
		{"fig1", func() interface{} { return experiments.Fig1(opt) }},
		{"fig2", func() interface{} { return experiments.Fig2(opt) }},
		{"rate", func() interface{} { return experiments.DerivedRate(opt) }},
		{"fig3", func() interface{} { return experiments.Fig3(opt) }},
		{"fig4", func() interface{} { return experiments.Fig4(opt) }},
		{"fig5", func() interface{} { return experiments.Fig5(opt) }},
		{"fig6", func() interface{} { return experiments.Fig6(opt) }},
		{"fig7", func() interface{} { return experiments.Fig7(opt) }},
		{"fig8", func() interface{} { return experiments.Fig8(opt) }},
		{"fig9", func() interface{} { return experiments.Fig9(opt) }},
		{"fig10", func() interface{} { return experiments.Fig10(opt) }},
		{"averaging", func() interface{} { return experiments.AveragingVariants(opt) }},
		{"trace", func() interface{} { return experiments.TracedOverlap(opt) }},
		{"faults", func() interface{} { return experiments.DegradedRuns(opt) }},
		{"compress", func() interface{} { return experiments.CompressionFrontier(opt) }},
		{"sched", func() interface{} { return experiments.CommScheduleFrontier(opt) }},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
		for name := range want {
			found := false
			for _, item := range all {
				if item.name == name {
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "experiments: unknown item %q\n", name)
				os.Exit(2)
			}
		}
	}

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	start := time.Now()
	for _, item := range all {
		if len(want) > 0 && !want[item.name] {
			continue
		}
		t0 := time.Now()
		result := item.run()
		fmt.Printf("[%s done in %s]\n\n", item.name, time.Since(t0).Round(time.Millisecond))
		if *jsonDir != "" {
			raw, err := json.MarshalIndent(result, "", "  ")
			if err == nil {
				err = os.WriteFile(filepath.Join(*jsonDir, item.name+".json"), raw, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing %s.json: %v\n", item.name, err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))
}
