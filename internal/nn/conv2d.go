package nn

import (
	"fmt"
	"math/rand"

	"sasgd/internal/tensor"
)

// Conv2D is a 2-D convolution over (N, C, H, W) inputs, implemented by
// im2col lowering followed by a matrix multiplication, the same strategy
// Torch's SpatialConvolutionMM (the paper's substrate) uses. The weight
// tensor has shape (K, C, KH, KW) and the bias shape (K).
type Conv2D struct {
	InC, OutC int
	Geom      tensor.ConvGeom
	w, b      *Param

	// retained between Forward and Backward
	x    *tensor.Tensor
	cols []*tensor.Tensor // per-sample column matrices
}

// NewConv2D returns a convolution with nkern output feature maps over
// nfeat input maps, a kh×kw kernel, stride 1 and no padding — the
// configuration of every convolutional layer in Tables I and II.
func NewConv2D(rng *rand.Rand, nfeat, nkern, kh, kw int) *Conv2D {
	return NewConv2DGeom(rng, nfeat, nkern, tensor.ConvGeom{KH: kh, KW: kw, SH: 1, SW: 1})
}

// NewConv2DGeom returns a convolution with explicit geometry.
func NewConv2DGeom(rng *rand.Rand, nfeat, nkern int, g tensor.ConvGeom) *Conv2D {
	if nfeat <= 0 || nkern <= 0 {
		panic(fmt.Sprintf("nn: NewConv2D(%d, %d): channel counts must be positive", nfeat, nkern))
	}
	c := &Conv2D{
		InC:  nfeat,
		OutC: nkern,
		Geom: g,
		w:    newParam(fmt.Sprintf("conv%dx%dx%dx%d.w", nfeat, nkern, g.KH, g.KW), nkern, nfeat, g.KH, g.KW),
		b:    newParam(fmt.Sprintf("conv%dx%dx%dx%d.b", nfeat, nkern, g.KH, g.KW), nkern),
	}
	fanIn := nfeat * g.KH * g.KW
	initFanIn(rng, c.w.Value, fanIn)
	initFanIn(rng, c.b.Value, fanIn)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D (%d,%d,%d,%d)", c.InC, c.OutC, c.Geom.KH, c.Geom.KW)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("nn: %s applied to per-sample shape %v", c.Name(), in))
	}
	oh, ow := c.Geom.OutSize(in[1], in[2])
	return []int{c.OutC, oh, ow}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s forward input shape %v", c.Name(), x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.Geom.OutSize(h, w)
	kr := c.InC * c.Geom.KH * c.Geom.KW
	out := tensor.New(n, c.OutC, oh, ow)
	c.x = x
	if cap(c.cols) < n {
		c.cols = make([]*tensor.Tensor, n)
	}
	c.cols = c.cols[:n]
	wmat := c.w.Value.Reshape(c.OutC, kr)
	perSample := c.InC * h * w
	outPer := c.OutC * oh * ow
	for i := 0; i < n; i++ {
		img := tensor.FromSlice(x.Data[i*perSample:(i+1)*perSample], c.InC, h, w)
		if c.cols[i] == nil || c.cols[i].Dim(0) != kr || c.cols[i].Dim(1) != oh*ow {
			c.cols[i] = tensor.New(kr, oh*ow)
		}
		tensor.Im2Col(c.cols[i], img, c.Geom)
		dst := tensor.FromSlice(out.Data[i*outPer:(i+1)*outPer], c.OutC, oh*ow)
		tensor.MatMul(dst, wmat, c.cols[i])
		// add bias per output channel
		for k := 0; k < c.OutC; k++ {
			bv := c.b.Value.Data[k]
			row := dst.Data[k*oh*ow : (k+1)*oh*ow]
			for j := range row {
				row[j] += bv
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.x == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	x := c.x
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.Geom.OutSize(h, w)
	if gradOut.Dims() != 4 || gradOut.Dim(0) != n || gradOut.Dim(1) != c.OutC || gradOut.Dim(2) != oh || gradOut.Dim(3) != ow {
		panic(fmt.Sprintf("nn: %s backward gradient shape %v", c.Name(), gradOut.Shape()))
	}
	kr := c.InC * c.Geom.KH * c.Geom.KW
	perSample := c.InC * h * w
	outPer := c.OutC * oh * ow

	wmat := c.w.Value.Reshape(c.OutC, kr)
	dwmat := c.w.Grad.Reshape(c.OutC, kr)
	c.w.Grad.Zero()
	c.b.Grad.Zero()
	gradIn := tensor.New(n, c.InC, h, w)
	colGrad := tensor.New(kr, oh*ow)
	for i := 0; i < n; i++ {
		gout := tensor.FromSlice(gradOut.Data[i*outPer:(i+1)*outPer], c.OutC, oh*ow)
		// dW += gout (K×P) · colsᵀ (P×kr)  — accumulate across the batch.
		tensor.MatMulAccTransB(dwmat, gout, c.cols[i])
		// db += row sums of gout
		for k := 0; k < c.OutC; k++ {
			s := 0.0
			row := gout.Data[k*oh*ow : (k+1)*oh*ow]
			for _, g := range row {
				s += g
			}
			c.b.Grad.Data[k] += s
		}
		// dcols = Wᵀ (kr×K) · gout (K×P)
		tensor.MatMulTransA(colGrad, wmat, gout)
		gin := tensor.FromSlice(gradIn.Data[i*perSample:(i+1)*perSample], c.InC, h, w)
		tensor.Col2Im(gin, colGrad, c.Geom)
	}
	c.x = nil
	return gradIn
}
