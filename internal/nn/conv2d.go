package nn

import (
	"fmt"
	"math/rand"
	"sync"

	"sasgd/internal/parallel"
	"sasgd/internal/tensor"
)

// Conv2D is a 2-D convolution over (N, C, H, W) inputs, implemented by
// im2col lowering followed by a matrix multiplication, the same strategy
// Torch's SpatialConvolutionMM (the paper's substrate) uses — except the
// forward pass fuses the lowering into the packed GEMM (the kernel packs
// its B panels straight from the image), so the column matrix is only
// ever materialized by Backward. The weight tensor has shape
// (K, C, KH, KW) and the bias shape (K).
//
// Both passes are batch-parallel: samples are sharded across the worker
// pool (each shard using the serial slice kernels on disjoint slices of
// the batch), and the cross-sample weight-gradient reduction is sharded
// over output channels with samples accumulated in index order, so the
// results are bitwise identical to the serial loops at any worker count.
// At batch size 1 there is no sample parallelism and the layer instead
// leans on the row-parallel tensor kernels.
type Conv2D struct {
	InC, OutC int
	Geom      tensor.ConvGeom
	w, b      *Param

	// retained between Forward and Backward
	x *tensor.Tensor
	// cols holds one im2col column matrix (kr × OH·OW, flattened) per
	// sample, recomputed by Backward for the weight-gradient reduction
	// (the fused forward never materializes it). The backing buffers are
	// grown once and reused across batches, so steady-state passes do no
	// per-sample allocation.
	cols [][]float64
}

// colScratch recycles column-gradient buffers across Backward calls (and
// across layers); each worker shard checks one out for the duration of
// its samples.
var colScratch sync.Pool

func getColBuf(size int) []float64 {
	if v := colScratch.Get(); v != nil {
		if buf := *(v.(*[]float64)); cap(buf) >= size {
			return buf[:size]
		}
	}
	return make([]float64, size)
}

func putColBuf(buf []float64) {
	colScratch.Put(&buf)
}

// NewConv2D returns a convolution with nkern output feature maps over
// nfeat input maps, a kh×kw kernel, stride 1 and no padding — the
// configuration of every convolutional layer in Tables I and II.
func NewConv2D(rng *rand.Rand, nfeat, nkern, kh, kw int) *Conv2D {
	return NewConv2DGeom(rng, nfeat, nkern, tensor.ConvGeom{KH: kh, KW: kw, SH: 1, SW: 1})
}

// NewConv2DGeom returns a convolution with explicit geometry.
func NewConv2DGeom(rng *rand.Rand, nfeat, nkern int, g tensor.ConvGeom) *Conv2D {
	if nfeat <= 0 || nkern <= 0 {
		panic(fmt.Sprintf("nn: NewConv2D(%d, %d): channel counts must be positive", nfeat, nkern))
	}
	c := &Conv2D{
		InC:  nfeat,
		OutC: nkern,
		Geom: g,
		w:    newParam(fmt.Sprintf("conv%dx%dx%dx%d.w", nfeat, nkern, g.KH, g.KW), nkern, nfeat, g.KH, g.KW),
		b:    newParam(fmt.Sprintf("conv%dx%dx%dx%d.b", nfeat, nkern, g.KH, g.KW), nkern),
	}
	fanIn := nfeat * g.KH * g.KW
	initFanIn(rng, c.w.Value, fanIn)
	initFanIn(rng, c.b.Value, fanIn)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D (%d,%d,%d,%d)", c.InC, c.OutC, c.Geom.KH, c.Geom.KW)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("nn: %s applied to per-sample shape %v", c.Name(), in))
	}
	oh, ow := c.Geom.OutSize(in[1], in[2])
	return []int{c.OutC, oh, ow}
}

// ensureCols sizes the retained per-sample column buffers for a batch of
// n samples of kr*p columns each, reusing existing backing arrays. It
// runs before the parallel section so shards never allocate.
func (c *Conv2D) ensureCols(n, size int) {
	if cap(c.cols) < n {
		grown := make([][]float64, n)
		copy(grown, c.cols)
		c.cols = grown
	}
	c.cols = c.cols[:n]
	for i := range c.cols {
		if cap(c.cols[i]) < size {
			c.cols[i] = make([]float64, size)
		} else {
			c.cols[i] = c.cols[i][:size]
		}
	}
}

// sampleGrain groups samples into shards carrying enough multiply-adds
// to amortize dispatch, mirroring the tensor kernels' threshold.
func sampleGrain(flopsPerSample int) int {
	const minShardFlops = 1 << 15
	if flopsPerSample <= 0 {
		return 1
	}
	g := minShardFlops / flopsPerSample
	if g < 1 {
		g = 1
	}
	return g
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return c.forward(x, tensor.ActNone)
}

// ForwardFused implements fusable: Forward with the following activation
// layer folded into the GEMM epilogue. Bitwise identical to Forward
// followed by the activation.
func (c *Conv2D) ForwardFused(x *tensor.Tensor, train bool, act tensor.EpilogueAct) *tensor.Tensor {
	return c.forward(x, act)
}

// forward runs the fused im2col-GEMM convolution: the fused kernels pack
// B panels straight out of the input image, so the column matrices are
// never materialized on the forward path (Backward recomputes the ones
// it needs). Bias and activation ride along in the GEMM epilogue.
func (c *Conv2D) forward(x *tensor.Tensor, act tensor.EpilogueAct) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s forward input shape %v", c.Name(), x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.Geom.OutSize(h, w)
	kr := c.InC * c.Geom.KH * c.Geom.KW
	p := oh * ow
	out := tensor.New(n, c.OutC, oh, ow)
	c.x = x
	wm := c.w.Value.Data
	bias := c.b.Value.Data
	perSample := c.InC * h * w
	outPer := c.OutC * p

	if n < parallel.Workers() {
		// Too few samples to occupy the pool: run samples in order and let
		// the column-parallel fused kernel split each per-sample GEMM over
		// output pixels. Column shards never change any element's
		// accumulation order, so both branches produce bitwise identical
		// output.
		for i := 0; i < n; i++ {
			tensor.ConvGemmBiasAct(out.Data[i*outPer:(i+1)*outPer], wm,
				x.Data[i*perSample:(i+1)*perSample], c.InC, h, w, c.Geom, c.OutC, bias, act)
		}
		return out
	}

	parallel.For(n, sampleGrain(c.OutC*p*kr), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tensor.ConvGemmBiasActInto(out.Data[i*outPer:(i+1)*outPer], wm,
				x.Data[i*perSample:(i+1)*perSample], c.InC, h, w, c.Geom, c.OutC, bias, act)
		}
	})
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.x == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	x := c.x
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.Geom.OutSize(h, w)
	if gradOut.Dims() != 4 || gradOut.Dim(0) != n || gradOut.Dim(1) != c.OutC || gradOut.Dim(2) != oh || gradOut.Dim(3) != ow {
		panic(fmt.Sprintf("nn: %s backward gradient shape %v", c.Name(), gradOut.Shape()))
	}
	kr := c.InC * c.Geom.KH * c.Geom.KW
	p := oh * ow
	perSample := c.InC * h * w
	outPer := c.OutC * p

	wm := c.w.Value.Data
	dw := c.w.Grad.Data
	db := c.b.Grad.Data
	c.w.Grad.Zero()
	c.b.Grad.Zero()
	gradIn := tensor.New(n, c.InC, h, w)
	c.ensureCols(n, kr*p)

	// Input gradients: per-sample dcols = Wᵀ·gout scattered back through
	// col2im. Samples are independent, so shard the batch; each shard
	// reuses one pooled column-gradient buffer for all its samples. The
	// same pass recomputes each sample's im2col column matrix (the fused
	// forward never materializes it) for the weight-gradient reduction
	// below.
	if n < parallel.Workers() {
		wmat := c.w.Value.Reshape(c.OutC, kr)
		cg := getColBuf(kr * p)
		colGrad := tensor.FromSlice(cg, kr, p)
		for i := 0; i < n; i++ {
			tensor.Im2ColInto(c.cols[i], x.Data[i*perSample:(i+1)*perSample], c.InC, h, w, c.Geom)
			gout := tensor.FromSlice(gradOut.Data[i*outPer:(i+1)*outPer], c.OutC, p)
			tensor.MatMulTransA(colGrad, wmat, gout)
			gin := tensor.FromSlice(gradIn.Data[i*perSample:(i+1)*perSample], c.InC, h, w)
			tensor.Col2Im(gin, colGrad, c.Geom)
		}
		putColBuf(cg)
	} else {
		parallel.For(n, sampleGrain(c.OutC*p*kr), func(lo, hi int) {
			cg := getColBuf(kr * p)
			for i := lo; i < hi; i++ {
				tensor.Im2ColInto(c.cols[i], x.Data[i*perSample:(i+1)*perSample], c.InC, h, w, c.Geom)
				tensor.MatMulTransAInto(cg, wm, gradOut.Data[i*outPer:(i+1)*outPer], c.OutC, kr, p)
				tensor.Col2ImInto(gradIn.Data[i*perSample:(i+1)*perSample], cg, c.InC, h, w, c.Geom)
			}
			putColBuf(cg)
		})
	}

	// Weight and bias gradients: dW += gout·colsᵀ and db += row sums,
	// accumulated across the batch. The reduction is sharded over output
	// channels — each shard owns rows [lo, hi) of dW and db — with the
	// sample loop kept in index order inside the shard, so every element
	// accumulates in exactly the serial order.
	parallel.For(c.OutC, sampleGrain(n*kr*p), func(lo, hi int) {
		for i := 0; i < n; i++ {
			gout := gradOut.Data[i*outPer : (i+1)*outPer]
			cols := c.cols[i]
			for r := lo; r < hi; r++ {
				gr := gout[r*p : (r+1)*p]
				s := 0.0
				for _, g := range gr {
					s += g
				}
				db[r] += s
				dwr := dw[r*kr : (r+1)*kr]
				for ci := 0; ci < kr; ci++ {
					dwr[ci] += tensor.Dot(gr, cols[ci*p:(ci+1)*p])
				}
			}
		}
	})
	c.x = nil
	return gradIn
}
