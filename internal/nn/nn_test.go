package nn

import (
	"math"
	"math/rand"
	"testing"

	"sasgd/internal/tensor"
)

func TestReLUForwardValues(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2, -3}, 1, 4)
	out := r.Forward(x, true)
	want := []float64{0, 0, 2, 0}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("ReLU forward = %v, want %v", out.Data, want)
		}
	}
}

func TestTanhMatchesMath(t *testing.T) {
	l := NewTanh()
	x := tensor.FromSlice([]float64{-25, -2, -0.5, 0, 0.5, 2, 25}, 1, 7)
	out := l.Forward(x, true)
	for i, v := range x.Data {
		want := math.Tanh(v)
		if math.Abs(out.Data[i]-want) > 1e-12 {
			t.Errorf("tanh(%g) = %g, want %g", v, out.Data[i], want)
		}
	}
}

func TestDropoutInferenceIsIdentity(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(1)), 0.5)
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 4)
	out := d.Forward(x, false)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatal("Dropout inference changed values")
		}
	}
}

func TestDropoutTrainingStatistics(t *testing.T) {
	p := 0.5
	d := NewDropout(rand.New(rand.NewSource(2)), p)
	x := tensor.Full(1, 1, 20000)
	out := d.Forward(x, true)
	zeros := 0
	sum := 0.0
	for _, v := range out.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-1/(1-p)) > 1e-12 {
			t.Fatalf("survivor scaled to %g, want %g", v, 1/(1-p))
		}
		sum += v
	}
	frac := float64(zeros) / float64(x.Size())
	if math.Abs(frac-p) > 0.02 {
		t.Errorf("dropped fraction %g, want ≈%g", frac, p)
	}
	// Inverted dropout preserves expectation.
	if mean := sum / float64(x.Size()); math.Abs(mean-1) > 0.05 {
		t.Errorf("post-dropout mean %g, want ≈1", mean)
	}
}

func TestDropoutBackwardUsesMask(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(3)), 0.5)
	x := tensor.Full(1, 1, 100)
	out := d.Forward(x, true)
	g := tensor.Full(1, 1, 100)
	gin := d.Backward(g)
	for i := range out.Data {
		if (out.Data[i] == 0) != (gin.Data[i] == 0) {
			t.Fatal("backward mask does not match forward mask")
		}
	}
}

func TestDropoutBadProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDropout(1.0) did not panic")
		}
	}()
	NewDropout(rand.New(rand.NewSource(4)), 1.0)
}

func TestMaxPool2DForwardValues(t *testing.T) {
	p := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float64{
		1, 2, 5, 3,
		4, 8, 6, 7,
		0, 1, 2, 3,
		9, 0, 1, 2,
	}, 1, 1, 4, 4)
	out := p.Forward(x, true)
	want := []float64{8, 7, 9, 3}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("MaxPool2D forward = %v, want %v", out.Data, want)
		}
	}
}

func TestMaxPool2DClampDegeneratesToIdentity(t *testing.T) {
	// 1×1 input with a 2×2 window: the Table-I final pool stage.
	p := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float64{3.5, -1}, 2, 1, 1, 1)
	out := p.Forward(x, true)
	if out.Dim(2) != 1 || out.Dim(3) != 1 {
		t.Fatalf("clamped pool output shape %v", out.Shape())
	}
	if out.Data[0] != 3.5 || out.Data[1] != -1 {
		t.Errorf("clamped pool values %v", out.Data)
	}
}

func TestTemporalMaxPoolForward(t *testing.T) {
	p := NewTemporalMaxPool(2)
	// (1, 2, 3): two frames of width 3.
	x := tensor.FromSlice([]float64{
		1, 5, 2,
		4, 3, 9,
	}, 1, 2, 3)
	out := p.Forward(x, true)
	want := []float64{4, 5, 9}
	if out.Dim(1) != 1 {
		t.Fatalf("TemporalMaxPool output shape %v", out.Shape())
	}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("TemporalMaxPool forward = %v, want %v", out.Data, want)
		}
	}
}

func TestLinearKnownValues(t *testing.T) {
	l := NewLinear(rand.New(rand.NewSource(5)), 2, 2)
	copy(l.Params()[0].Value.Data, []float64{1, 2, 3, 4}) // W rows: [1 2], [3 4]
	copy(l.Params()[1].Value.Data, []float64{0.5, -0.5})
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	out := l.Forward(x, true)
	if out.Data[0] != 3.5 || out.Data[1] != 6.5 {
		t.Errorf("Linear forward = %v, want [3.5 6.5]", out.Data)
	}
}

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	crit := NewSoftmaxCrossEntropy()
	logits := tensor.FromSlice([]float64{0, 0, 0}, 1, 3)
	loss := crit.Loss(logits, []int{1})
	if math.Abs(loss-math.Log(3)) > 1e-12 {
		t.Errorf("uniform-logit loss = %g, want ln 3 = %g", loss, math.Log(3))
	}
	probs := crit.Probs()
	for _, p := range probs.Data {
		if math.Abs(p-1.0/3) > 1e-12 {
			t.Errorf("uniform softmax prob = %g", p)
		}
	}
}

func TestSoftmaxCrossEntropyNumericalStability(t *testing.T) {
	crit := NewSoftmaxCrossEntropy()
	logits := tensor.FromSlice([]float64{1000, 0, -1000}, 1, 3)
	loss := crit.Loss(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %g with extreme logits", loss)
	}
	if loss > 1e-9 {
		t.Errorf("confident correct prediction loss = %g, want ≈0", loss)
	}
}

func TestSoftmaxCrossEntropyLabelOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label did not panic")
		}
	}()
	NewSoftmaxCrossEntropy().Loss(tensor.New(1, 3), []int{3})
}

func TestNetworkBindFlatParams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork([]int{4},
		NewLinear(rng, 4, 3),
		NewTanh(),
		NewLinear(rng, 3, 2),
	)
	wantParams := 4*3 + 3 + 3*2 + 2
	if net.NumParams() != wantParams {
		t.Fatalf("NumParams = %d, want %d", net.NumParams(), wantParams)
	}
	// Mutating the flat vector must mutate the layer views.
	net.ParamData()[0] = 123
	if net.Params()[0].Value.Data[0] != 123 {
		t.Error("flat parameter buffer is not aliased by layer views")
	}
	// SetParamData replaces everything.
	v := make([]float64, wantParams)
	for i := range v {
		v[i] = float64(i)
	}
	net.SetParamData(v)
	if net.Params()[0].Value.Data[1] != 1 {
		t.Error("SetParamData did not propagate to layer views")
	}
}

func TestNetworkGradAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork([]int{3}, NewLinear(rng, 3, 2))
	x := tensor.New(2, 3)
	x.FillRandn(rng, 0, 1)
	net.Step(x, []int{0, 1})
	// The layer's Grad view and the flat GradData must alias.
	sum := 0.0
	for _, g := range net.GradData() {
		sum += math.Abs(g)
	}
	if sum == 0 {
		t.Fatal("GradData all zero after Step")
	}
	net.GradData()[0] = 99
	if net.Params()[0].Grad.Data[0] != 99 {
		t.Error("flat gradient buffer is not aliased by layer views")
	}
}

func TestNetworkShapeValidationPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	defer func() {
		if recover() == nil {
			t.Fatal("mis-chained network did not panic at construction")
		}
	}()
	NewNetwork([]int{4},
		NewLinear(rng, 5, 3), // wrong input width
	)
}

func TestNetworkPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewNetwork([]int{2}, NewLinear(rng, 2, 3))
	// Force deterministic weights: class = argmax of W·x.
	copy(net.ParamData(), []float64{
		1, 0, // class 0 likes x[0]
		0, 1, // class 1 likes x[1]
		-1, -1, // class 2 likes neither
		0, 0, 0, // biases
	})
	x := tensor.FromSlice([]float64{5, 1, 1, 5, -5, -5}, 3, 2)
	pred := net.Predict(x)
	want := []int{0, 1, 2}
	for i, w := range want {
		if pred[i] != w {
			t.Errorf("Predict[%d] = %d, want %d", i, pred[i], w)
		}
	}
}

func TestNetworkSummaryMentionsLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewNetwork([]int{3}, NewLinear(rng, 3, 2))
	s := net.Summary()
	if s == "" || !contains(s, "Linear") || !contains(s, "Parameters") {
		t.Errorf("Summary missing content:\n%s", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// TestTrainingReducesLoss is the package-level smoke test: a small dense
// network fit to a separable problem must reduce its loss with plain SGD.
func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewNetwork([]int{2},
		NewLinear(rng, 2, 8),
		NewTanh(),
		NewLinear(rng, 8, 2),
	)
	x := tensor.New(16, 2)
	labels := make([]int, 16)
	for i := 0; i < 16; i++ {
		if i%2 == 0 {
			x.Set(1, i, 0)
			labels[i] = 0
		} else {
			x.Set(1, i, 1)
			labels[i] = 1
		}
	}
	first := net.Step(x, labels)
	for it := 0; it < 200; it++ {
		net.Step(x, labels)
		tensor.Axpy(-0.5, net.GradData(), net.ParamData())
	}
	last := net.Loss(net.Forward(x, false), labels)
	if last > first/5 {
		t.Errorf("loss did not drop: first %g, last %g", first, last)
	}
}

func TestSigmoidKnownValues(t *testing.T) {
	s := NewSigmoid()
	x := tensor.FromSlice([]float64{0, 100, -100}, 1, 3)
	out := s.Forward(x, true)
	if math.Abs(out.Data[0]-0.5) > 1e-12 || out.Data[1] < 0.999 || out.Data[2] > 0.001 {
		t.Errorf("Sigmoid values = %v", out.Data)
	}
}

func TestAvgPool2DForwardValues(t *testing.T) {
	p := NewAvgPool2D(2, 2)
	x := tensor.FromSlice([]float64{
		1, 3, 5, 7,
		1, 3, 5, 7,
		2, 2, 8, 8,
		2, 2, 8, 8,
	}, 1, 1, 4, 4)
	out := p.Forward(x, true)
	want := []float64{2, 6, 2, 8}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("AvgPool2D forward = %v, want %v", out.Data, want)
		}
	}
}
