package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func checkpointNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork([]int{5},
		NewLinear(rng, 5, 7),
		NewTanh(),
		NewLinear(rng, 7, 3),
	)
}

func TestCheckpointRoundTrip(t *testing.T) {
	src := checkpointNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	dst := checkpointNet(2) // different initialization
	if err := dst.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	for i := range src.ParamData() {
		if src.ParamData()[i] != dst.ParamData()[i] {
			t.Fatal("round trip did not restore parameters exactly")
		}
	}
}

func TestCheckpointWrongArchitecture(t *testing.T) {
	src := checkpointNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	other := NewNetwork([]int{5}, NewLinear(rng, 5, 4))
	if err := other.Load(&buf); err == nil || !strings.Contains(err.Error(), "parameters") {
		t.Errorf("mismatched architecture load: err = %v", err)
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	net := checkpointNet(1)
	if err := net.Load(bytes.NewReader([]byte("not a checkpoint at all"))); err == nil {
		t.Error("garbage accepted as checkpoint")
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	src := checkpointNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[20] ^= 0xFF // flip a parameter byte
	dst := checkpointNet(1)
	if err := dst.Load(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted checkpoint: err = %v", err)
	}
}

func TestCheckpointTruncated(t *testing.T) {
	src := checkpointNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()/2]
	dst := checkpointNet(1)
	if err := dst.Load(bytes.NewReader(raw)); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}

func TestCheckpointLoadFailureLeavesParamsIntact(t *testing.T) {
	dst := checkpointNet(4)
	before := append([]float64(nil), dst.ParamData()...)
	src := checkpointNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[20] ^= 0xFF
	if err := dst.Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("corruption not detected")
	}
	for i := range before {
		if dst.ParamData()[i] != before[i] {
			t.Fatal("failed Load mutated the network")
		}
	}
}
