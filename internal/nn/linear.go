package nn

import (
	"fmt"
	"math/rand"

	"sasgd/internal/tensor"
)

// Linear is a fully connected layer computing y = x·Wᵀ + b for inputs of
// shape (N, in) and outputs of shape (N, out). W has shape (out, in) and
// b shape (out), matching Torch's nn.Linear layout that the paper's
// networks were defined in.
type Linear struct {
	In, Out int
	w, b    *Param
	x       *tensor.Tensor
}

// NewLinear returns a fully connected layer with fan-in-scaled uniform
// initialization drawn from rng.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: NewLinear(%d, %d): dimensions must be positive", in, out))
	}
	l := &Linear{
		In:  in,
		Out: out,
		w:   newParam(fmt.Sprintf("linear%dx%d.w", in, out), out, in),
		b:   newParam(fmt.Sprintf("linear%dx%d.b", in, out), out),
	}
	initFanIn(rng, l.w.Value, in)
	initFanIn(rng, l.b.Value, in)
	return l
}

// Name implements Layer.
func (l *Linear) Name() string { return fmt.Sprintf("Linear %d→%d", l.In, l.Out) }

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.w, l.b} }

// OutShape implements Layer.
func (l *Linear) OutShape(in []int) []int {
	if len(in) != 1 || in[0] != l.In {
		panic(fmt.Sprintf("nn: %s applied to per-sample shape %v", l.Name(), in))
	}
	return []int{l.Out}
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return l.forward(x, tensor.ActNone)
}

// ForwardFused implements fusable: Forward with the following activation
// layer folded into the GEMM epilogue. Bitwise identical to Forward
// followed by the activation.
func (l *Linear) ForwardFused(x *tensor.Tensor, train bool, act tensor.EpilogueAct) *tensor.Tensor {
	return l.forward(x, act)
}

// forward computes y = x·Wᵀ + b with bias and activation applied in the
// GEMM epilogue while output rows are cache-hot.
func (l *Linear) forward(x *tensor.Tensor, act tensor.EpilogueAct) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: %s forward input shape %v", l.Name(), x.Shape()))
	}
	l.x = x
	n := x.Dim(0)
	out := tensor.New(n, l.Out)
	tensor.LinearForward(out, x, l.w.Value, l.b.Value.Data, act)
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	n := l.x.Dim(0)
	if gradOut.Dims() != 2 || gradOut.Dim(0) != n || gradOut.Dim(1) != l.Out {
		panic(fmt.Sprintf("nn: %s backward gradient shape %v", l.Name(), gradOut.Shape()))
	}
	// dW = gradOutᵀ (out×n) · x (n×in)
	tensor.MatMulTransA(l.w.Grad, gradOut, l.x)
	// db = column sums of gradOut
	l.b.Grad.Zero()
	for i := 0; i < n; i++ {
		row := gradOut.Data[i*l.Out : (i+1)*l.Out]
		for j, g := range row {
			l.b.Grad.Data[j] += g
		}
	}
	// dx = gradOut (n×out) · W (out×in)
	gradIn := tensor.New(n, l.In)
	tensor.MatMul(gradIn, gradOut, l.w.Value)
	l.x = nil
	return gradIn
}
