package nn

import (
	"fmt"
	"math"

	"sasgd/internal/tensor"
)

// SoftmaxCrossEntropy combines a softmax over class logits with the
// cross-entropy error the paper's networks train against. Loss reports
// the mean negative log-likelihood over the minibatch, and Backward
// returns the gradient with respect to the logits — (softmax − onehot)/N
// — already averaged over the batch so the optimizers see the standard
// minibatch gradient.
type SoftmaxCrossEntropy struct {
	probs  *tensor.Tensor
	labels []int
}

// NewSoftmaxCrossEntropy returns a softmax cross-entropy criterion.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy { return &SoftmaxCrossEntropy{} }

// Loss computes the mean cross-entropy of logits (N, C) against integer
// labels (len N) and retains the softmax probabilities for Backward.
func (s *SoftmaxCrossEntropy) Loss(logits *tensor.Tensor, labels []int) float64 {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy needs (N,C) logits, got %v", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy got %d labels for batch of %d", len(labels), n))
	}
	if s.probs == nil || s.probs.Dim(0) != n || s.probs.Dim(1) != c {
		s.probs = tensor.New(n, c)
	}
	s.labels = append(s.labels[:0], labels...)
	loss := 0.0
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range for %d classes", y, c))
		}
		row := logits.Data[i*c : (i+1)*c]
		prow := s.probs.Data[i*c : (i+1)*c]
		// numerically stable log-sum-exp
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - m)
			prow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range prow {
			prow[j] *= inv
		}
		loss += -(row[y] - m - math.Log(sum))
	}
	return loss / float64(n)
}

// Backward returns dLoss/dLogits for the most recent Loss call.
func (s *SoftmaxCrossEntropy) Backward() *tensor.Tensor {
	if s.probs == nil {
		panic("nn: SoftmaxCrossEntropy.Backward before Loss")
	}
	n, c := s.probs.Dim(0), s.probs.Dim(1)
	grad := s.probs.Clone()
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := grad.Data[i*c : (i+1)*c]
		row[s.labels[i]] -= 1
		for j := range row {
			row[j] *= inv
		}
	}
	return grad
}

// Probs returns the softmax probabilities from the most recent Loss call
// (nil before the first call). The returned tensor is owned by the
// criterion and is overwritten by the next Loss call.
func (s *SoftmaxCrossEntropy) Probs() *tensor.Tensor { return s.probs }
