package nn

import (
	"fmt"
	"math/rand"

	"sasgd/internal/tensor"
)

// Dropout implements inverted dropout: during training each activation is
// zeroed independently with probability P and the survivors are scaled by
// 1/(1-P) so that inference (train=false) is the identity, as in the
// regularization used by the Table-I network (Srivastava et al., cited by
// the paper).
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask []float64
}

// NewDropout returns a dropout layer with drop probability p drawing its
// masks from rng. p must lie in [0, 1).
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: NewDropout(%g): probability must be in [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("Dropout p=%g", d.P) }

// Params implements Layer.
func (*Dropout) Params() []*Param { return nil }

// OutShape implements Layer.
func (*Dropout) OutShape(in []int) []int { return in }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		// Inference: identity. Record an empty mask so a stray Backward
		// after an inference Forward fails loudly instead of reusing a
		// stale training mask.
		d.mask = d.mask[:0]
		return x
	}
	out := tensor.New(x.Shape()...)
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float64, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
		} else {
			d.mask[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(d.mask) != len(gradOut.Data) {
		panic("nn: Dropout.Backward without a matching training Forward")
	}
	in := tensor.New(gradOut.Shape()...)
	for i, g := range gradOut.Data {
		in.Data[i] = g * d.mask[i]
	}
	return in
}
