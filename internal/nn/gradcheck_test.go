package nn

import (
	"math"
	"math/rand"
	"testing"

	"sasgd/internal/tensor"
)

// gradCheckLayer verifies a layer's analytic gradients (input and
// parameters) against central finite differences of a scalar objective
// L = sum(w ⊙ forward(x)) with random weights w.
func gradCheckLayer(t *testing.T, mk func() Layer, inShape []int, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	l := mk()

	x := tensor.New(inShape...)
	x.FillRandn(rng, 0, 1)

	out := l.Forward(x, true)
	w := tensor.New(out.Shape()...)
	w.FillRandn(rng, 0, 1)

	// Analytic gradients.
	gradIn := l.Backward(w.Clone())

	objective := func(lc Layer, xc *tensor.Tensor) float64 {
		o := lc.Forward(xc, true)
		return o.Dot(w)
	}

	const eps = 1e-5
	// Input gradient. Layers may be stateful across Forward calls, so
	// rebuild a fresh layer with the same seed for every probe — mk must
	// be deterministic.
	for probe := 0; probe < 12; probe++ {
		i := rng.Intn(x.Size())
		xp := x.Clone()
		xp.Data[i] += eps
		xm := x.Clone()
		xm.Data[i] -= eps
		lp := mk()
		fp := objective(lp, xp)
		lm := mk()
		fm := objective(lm, xm)
		num := (fp - fm) / (2 * eps)
		if diff := math.Abs(num - gradIn.Data[i]); diff > tol*(1+math.Abs(num)) {
			t.Errorf("%s: dL/dx[%d] analytic %g vs numeric %g", l.Name(), i, gradIn.Data[i], num)
		}
	}

	// Parameter gradients.
	params := l.Params()
	for pi, p := range params {
		for probe := 0; probe < 8; probe++ {
			if p.Value.Size() == 0 {
				continue
			}
			i := rng.Intn(p.Value.Size())
			lp := mk()
			lp.Params()[pi].Value.Data[i] += eps
			fp := objective(lp, x.Clone())
			lm := mk()
			lm.Params()[pi].Value.Data[i] -= eps
			fm := objective(lm, x.Clone())
			num := (fp - fm) / (2 * eps)
			if diff := math.Abs(num - p.Grad.Data[i]); diff > tol*(1+math.Abs(num)) {
				t.Errorf("%s: dL/d%s[%d] analytic %g vs numeric %g", l.Name(), p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	gradCheckLayer(t, func() Layer {
		return NewLinear(rand.New(rand.NewSource(5)), 7, 4)
	}, []int{3, 7}, 1e-6)
}

func TestConv2DGradients(t *testing.T) {
	gradCheckLayer(t, func() Layer {
		return NewConv2D(rand.New(rand.NewSource(6)), 2, 3, 3, 3)
	}, []int{2, 2, 5, 5}, 1e-6)
}

func TestConv2DStridedGradients(t *testing.T) {
	gradCheckLayer(t, func() Layer {
		return NewConv2DGeom(rand.New(rand.NewSource(7)), 2, 2, tensor.ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2})
	}, []int{2, 2, 6, 6}, 1e-6)
}

func TestConv2DPaddedGradients(t *testing.T) {
	gradCheckLayer(t, func() Layer {
		return NewConv2DGeom(rand.New(rand.NewSource(8)), 1, 2, tensor.ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1})
	}, []int{2, 1, 4, 4}, 1e-6)
}

func TestTemporalConvGradients(t *testing.T) {
	gradCheckLayer(t, func() Layer {
		return NewTemporalConv(rand.New(rand.NewSource(9)), 5, 4, 2)
	}, []int{3, 4, 5}, 1e-6)
}

func TestTemporalConvWindow1Gradients(t *testing.T) {
	// Window 1 is the per-word fully connected layer of the NLC-F net.
	gradCheckLayer(t, func() Layer {
		return NewTemporalConv(rand.New(rand.NewSource(10)), 6, 3, 1)
	}, []int{2, 3, 6}, 1e-6)
}

func TestReLUGradients(t *testing.T) {
	gradCheckLayer(t, func() Layer { return NewReLU() }, []int{4, 6}, 1e-5)
}

func TestTanhGradients(t *testing.T) {
	gradCheckLayer(t, func() Layer { return NewTanh() }, []int{4, 6}, 1e-5)
}

func TestMaxPool2DGradients(t *testing.T) {
	gradCheckLayer(t, func() Layer { return NewMaxPool2D(2, 2) }, []int{2, 2, 4, 4}, 1e-5)
}

func TestTemporalMaxPoolGradients(t *testing.T) {
	gradCheckLayer(t, func() Layer { return NewTemporalMaxPool(2) }, []int{2, 4, 3}, 1e-5)
}

func TestFlattenGradients(t *testing.T) {
	gradCheckLayer(t, func() Layer { return NewFlatten() }, []int{2, 3, 2, 2}, 1e-8)
}

// TestSoftmaxCrossEntropyGradient verifies the loss gradient against
// finite differences.
func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := tensor.New(4, 5)
	logits.FillRandn(rng, 0, 1)
	labels := []int{0, 3, 2, 4}

	crit := NewSoftmaxCrossEntropy()
	crit.Loss(logits, labels)
	grad := crit.Backward()

	const eps = 1e-6
	for probe := 0; probe < 15; probe++ {
		i := rng.Intn(logits.Size())
		lp := logits.Clone()
		lp.Data[i] += eps
		lm := logits.Clone()
		lm.Data[i] -= eps
		fp := NewSoftmaxCrossEntropy().Loss(lp, labels)
		fm := NewSoftmaxCrossEntropy().Loss(lm, labels)
		num := (fp - fm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("loss grad[%d]: analytic %g vs numeric %g", i, grad.Data[i], num)
		}
	}
}

// TestNetworkEndToEndGradient verifies backprop through a full stack of
// every layer type against finite differences of the real loss.
func TestNetworkEndToEndGradient(t *testing.T) {
	mk := func() *Network {
		rng := rand.New(rand.NewSource(12))
		return NewNetwork([]int{2, 6, 6},
			NewConv2D(rng, 2, 3, 3, 3),
			NewReLU(),
			NewMaxPool2D(2, 2),
			NewFlatten(),
			NewLinear(rng, 3*2*2, 4),
		)
	}
	rng := rand.New(rand.NewSource(13))
	x := tensor.New(3, 2, 6, 6)
	x.FillRandn(rng, 0, 1)
	labels := []int{1, 0, 3}

	net := mk()
	net.Step(x, labels)
	grads := append([]float64(nil), net.GradData()...)

	const eps = 1e-5
	for probe := 0; probe < 25; probe++ {
		i := rng.Intn(net.NumParams())
		np := mk()
		np.ParamData()[i] += eps
		fp := np.Loss(np.Forward(x, false), labels) // false: net has no dropout; must match train path
		nm := mk()
		nm.ParamData()[i] -= eps
		fm := nm.Loss(nm.Forward(x, false), labels)
		num := (fp - fm) / (2 * eps)
		if math.Abs(num-grads[i]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("network grad[%d]: analytic %g vs numeric %g", i, grads[i], num)
		}
	}
}

func TestSigmoidGradients(t *testing.T) {
	gradCheckLayer(t, func() Layer { return NewSigmoid() }, []int{4, 6}, 1e-5)
}

func TestAvgPool2DGradients(t *testing.T) {
	gradCheckLayer(t, func() Layer { return NewAvgPool2D(2, 2) }, []int{2, 2, 4, 4}, 1e-6)
}

func TestAvgPool2DClampedGradients(t *testing.T) {
	// 3×3 input with a 2×2 window exercises the border clamp.
	gradCheckLayer(t, func() Layer { return NewAvgPool2D(2, 2) }, []int{1, 1, 3, 3}, 1e-6)
}
