package nn

import (
	"fmt"
	"strings"

	"sasgd/internal/obs"
	"sasgd/internal/obs/metrics"
	"sasgd/internal/tensor"
)

// Network is a sequential stack of layers with its parameters and
// gradients relocated into two flat, contiguous buffers. The flat layout
// is what makes the distributed algorithms cheap to express: SASGD's
// gradient accumulation (gs += g), the allreduce payload, Downpour's
// push/pull, and EAMSGD's elastic term are all single-slice operations
// over ParamData/GradData.
type Network struct {
	layers   []Layer
	params   []*Param
	flatP    []float64
	flatG    []float64
	inShape  []int // per-sample input shape
	criteria *SoftmaxCrossEntropy
	track    *obs.Track // owning learner's trace track; nil = untraced
	mFwd     *metrics.Histogram
	mBwd     *metrics.Histogram // phase-latency histograms; nil = unmetered
}

// NewNetwork builds a network from layers, validates that the per-sample
// shapes chain correctly starting from inShape, and binds all parameters
// into flat storage.
func NewNetwork(inShape []int, layers ...Layer) *Network {
	n := &Network{
		layers:   layers,
		inShape:  append([]int(nil), inShape...),
		criteria: NewSoftmaxCrossEntropy(),
	}
	// Shape-check the stack once at construction so misconfigured
	// architectures fail at build time, not mid-experiment.
	shape := append([]int(nil), inShape...)
	for _, l := range layers {
		shape = l.OutShape(shape)
	}
	if len(shape) != 1 {
		panic(fmt.Sprintf("nn: network output per-sample shape %v, want a class-logit vector", shape))
	}
	for _, l := range layers {
		n.params = append(n.params, l.Params()...)
	}
	n.bind()
	return n
}

// bind relocates every parameter's value and gradient into contiguous
// flat buffers, preserving current values.
func (n *Network) bind() {
	total := 0
	for _, p := range n.params {
		total += p.Value.Size()
	}
	n.flatP = make([]float64, total)
	n.flatG = make([]float64, total)
	off := 0
	for _, p := range n.params {
		sz := p.Value.Size()
		copy(n.flatP[off:off+sz], p.Value.Data)
		copy(n.flatG[off:off+sz], p.Grad.Data)
		p.Value.Data = n.flatP[off : off+sz : off+sz]
		p.Grad.Data = n.flatG[off : off+sz : off+sz]
		off += sz
	}
}

// InShape returns the per-sample input shape the network was built for.
func (n *Network) InShape() []int { return n.inShape }

// Layers returns the network's layers in order.
func (n *Network) Layers() []Layer { return n.layers }

// Params returns all learnable parameters in layer order.
func (n *Network) Params() []*Param { return n.params }

// NumParams returns the total learnable parameter count.
func (n *Network) NumParams() int { return len(n.flatP) }

// ParamData returns the flat parameter vector. Mutating it mutates the
// model; collectives and optimizers rely on this.
func (n *Network) ParamData() []float64 { return n.flatP }

// GradData returns the flat gradient vector filled by the most recent
// Backward call.
func (n *Network) GradData() []float64 { return n.flatG }

// SetParamData overwrites the model parameters from a flat vector of the
// same length (e.g. a broadcast from learner 0).
func (n *Network) SetParamData(v []float64) {
	if len(v) != len(n.flatP) {
		panic(fmt.Sprintf("nn: SetParamData length %d, want %d", len(v), len(n.flatP)))
	}
	copy(n.flatP, v)
}

// ParamSegment is one layer's contiguous range of the flat parameter and
// gradient buffers: ParamData()[Off:Off+Len] (and the same slice of
// GradData()) holds every parameter of Layers()[Layer]. Segments are what
// the bucketed, backward-overlapped aggregation in internal/core ships:
// because layers finalize their gradients in reverse order during
// Backward, the segments near the end of the flat buffer are reducible
// while the early layers are still backpropagating.
type ParamSegment struct {
	Layer int // index into Layers()
	Off   int // offset into ParamData()/GradData()
	Len   int // words
}

// ParamSegments returns the per-layer segments of the flat buffers in
// flat-buffer (= forward layer) order. Parameterless layers contribute no
// segment; the segments of a network with parameters are non-empty,
// back-to-back, and cover [0, NumParams()) exactly, because bind lays
// parameters out in layer order.
func (n *Network) ParamSegments() []ParamSegment {
	var segs []ParamSegment
	off := 0
	for li, l := range n.layers {
		sz := 0
		for _, p := range l.Params() {
			sz += p.Value.Size()
		}
		if sz > 0 {
			segs = append(segs, ParamSegment{Layer: li, Off: off, Len: sz})
			off += sz
		}
	}
	return segs
}

// Forward runs the full stack on a minibatch and returns the logits.
// A GEMM-backed layer directly followed by an activation layer runs as
// one fused call: the activation is applied in the GEMM epilogue and the
// activation layer adopts the fused output to rebuild its backward
// state, so Backward and the layer list are oblivious to the fusion.
// Fused and unfused execution are bitwise identical.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x
	for i := 0; i < len(n.layers); i++ {
		l := n.layers[i]
		if f, ok := l.(fusable); ok && i+1 < len(n.layers) {
			if a, ok := n.layers[i+1].(epilogueAct); ok {
				out = f.ForwardFused(out, train, a.fuseKind())
				a.adopt(out)
				i++
				continue
			}
		}
		out = l.Forward(out, train)
	}
	return out
}

// Loss computes the softmax cross-entropy of logits against labels.
func (n *Network) Loss(logits *tensor.Tensor, labels []int) float64 {
	return n.criteria.Loss(logits, labels)
}

// Backward backpropagates from the most recent Loss call through every
// layer, leaving dLoss/dθ in GradData.
func (n *Network) Backward() { n.BackwardEach(nil) }

// BackwardEach is Backward with a per-layer finalization hook: onFinal(i)
// is invoked immediately after layer i's Backward returns, i.e. the
// moment Layers()[i]'s parameter gradients (its ParamSegments slice of
// GradData) are final and will not be written again this pass. Layers are
// visited in reverse order, so the hook fires for the last layer first —
// the window the bucketed aggregation in internal/core uses to start
// reducing late layers' gradients while early layers still backpropagate.
// The hook also fires for parameterless layers (with nothing newly
// final); a nil onFinal is Backward exactly.
func (n *Network) BackwardEach(onFinal func(layer int)) {
	grad := n.criteria.Backward()
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
		if onFinal != nil {
			onFinal(i)
		}
	}
}

// Step computes loss and gradient for one minibatch: a Forward in
// training mode, a Loss, and a Backward. It returns the minibatch loss.
// The caller decides what to do with GradData (apply locally, accumulate
// into gs, push to a server, ...), which is exactly the split between the
// algorithms in the paper.
func (n *Network) Step(x *tensor.Tensor, labels []int) float64 {
	return n.StepEach(x, labels, nil)
}

// StepEach is Step with BackwardEach's per-layer finalization hook
// threaded through, so a caller can overlap work (gradient accumulation,
// communication) with the remainder of the backward pass. With a track
// attached (SetTrack) the forward+loss and backward halves are recorded
// as spans; bucket launches made from onFinal then nest inside the
// backward span on the timeline.
func (n *Network) StepEach(x *tensor.Tensor, labels []int, onFinal func(layer int)) float64 {
	s := n.track.Begin()
	ms := n.mFwd.Begin()
	logits := n.Forward(x, true)
	loss := n.Loss(logits, labels)
	n.mFwd.EndNs(ms)
	n.track.End(obs.PhaseForward, s)
	s = n.track.Begin()
	ms = n.mBwd.Begin()
	n.BackwardEach(onFinal)
	n.mBwd.EndNs(ms)
	n.track.End(obs.PhaseBackward, s)
	return loss
}

// SetTrack attaches the owning learner's trace track (nil detaches;
// the untraced path is a nil check per Step half). The network is used
// by one goroutine, so the field is unsynchronized by design.
func (n *Network) SetTrack(t *obs.Track) { n.track = t }

// SetMetrics attaches per-phase latency histograms for the forward+loss
// and backward halves of each step (nil detaches; the unmetered path is
// one nil check per half, same contract as SetTrack).
func (n *Network) SetMetrics(fwd, bwd *metrics.Histogram) { n.mFwd, n.mBwd = fwd, bwd }

// Predict returns the argmax class for each sample in x, running the
// network in inference mode.
func (n *Network) Predict(x *tensor.Tensor) []int {
	logits := n.Forward(x, false)
	nb, c := logits.Dim(0), logits.Dim(1)
	out := make([]int, nb)
	for i := 0; i < nb; i++ {
		row := logits.Data[i*c : (i+1)*c]
		best, bi := row[0], 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// Summary renders the architecture in the style of the paper's Tables I
// and II: one line per layer plus the parameter count.
func (n *Network) Summary() string {
	var b strings.Builder
	shape := append([]int(nil), n.inShape...)
	fmt.Fprintf(&b, "Input: per-sample shape %v\n", shape)
	for _, l := range n.layers {
		shape = l.OutShape(shape)
		fmt.Fprintf(&b, "  %-32s -> %v\n", l.Name(), shape)
	}
	fmt.Fprintf(&b, "Cross-entropy error\n")
	fmt.Fprintf(&b, "Parameters: %d\n", n.NumParams())
	return b.String()
}
