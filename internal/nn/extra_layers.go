package nn

import (
	"fmt"

	"sasgd/internal/tensor"
)

// The paper's two networks only need ReLU/Tanh and max pooling, but a
// training library is expected to carry the rest of the Torch-era
// standard kit; Sigmoid and AvgPool2D round out the activation and
// pooling families and are gradient-checked like every other layer.

// Sigmoid is the logistic activation 1/(1+e^{-x}).
type Sigmoid struct {
	out []float64
}

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Name implements Layer.
func (*Sigmoid) Name() string { return "Sigmoid" }

// Params implements Layer.
func (*Sigmoid) Params() []*Param { return nil }

// OutShape implements Layer.
func (*Sigmoid) OutShape(in []int) []int { return in }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	for i, v := range x.Data {
		out.Data[i] = tensor.ScalarSigmoid(v)
	}
	s.out = append(s.out[:0], out.Data...)
	return out
}

func (*Sigmoid) fuseKind() tensor.EpilogueAct { return tensor.ActSigmoid }

// adopt retains a fused forward's output for the y(1-y) backward term,
// the same state Forward saves.
func (s *Sigmoid) adopt(out *tensor.Tensor) { s.out = append(s.out[:0], out.Data...) }

// Backward implements Layer.
func (s *Sigmoid) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(gradOut.Data) != len(s.out) {
		panic("nn: Sigmoid.Backward called with mismatched gradient size")
	}
	in := tensor.New(gradOut.Shape()...)
	for i, g := range gradOut.Data {
		y := s.out[i]
		in.Data[i] = g * y * (1 - y)
	}
	return in
}

// AvgPool2D averages over kh×kw windows of (N, C, H, W) inputs with
// stride equal to the window, clamping the window at the borders the
// same way MaxPool2D does.
type AvgPool2D struct {
	KH, KW   int
	inShape  []int
	ekh, ekw int // effective (clamped) window of the last forward
}

// NewAvgPool2D returns an average pooling layer with a kh×kw window and
// stride equal to the window.
func NewAvgPool2D(kh, kw int) *AvgPool2D {
	if kh <= 0 || kw <= 0 {
		panic(fmt.Sprintf("nn: NewAvgPool2D(%d, %d): window must be positive", kh, kw))
	}
	return &AvgPool2D{KH: kh, KW: kw}
}

// Name implements Layer.
func (p *AvgPool2D) Name() string { return fmt.Sprintf("AvgPool2D (%d,%d)", p.KH, p.KW) }

// Params implements Layer.
func (*AvgPool2D) Params() []*Param { return nil }

func (p *AvgPool2D) clamped(h, w int) (kh, kw int) {
	kh, kw = p.KH, p.KW
	if kh > h {
		kh = h
	}
	if kw > w {
		kw = w
	}
	return kh, kw
}

// OutShape implements Layer.
func (p *AvgPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s applied to per-sample shape %v", p.Name(), in))
	}
	kh, kw := p.clamped(in[1], in[2])
	return []int{in[0], (in[1]-kh)/kh + 1, (in[2]-kw)/kw + 1}
}

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s forward input shape %v", p.Name(), x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	kh, kw := p.clamped(h, w)
	oh, ow := (h-kh)/kh+1, (w-kw)/kw+1
	p.inShape = append(p.inShape[:0], n, c, h, w)
	p.ekh, p.ekw = kh, kw
	out := tensor.New(n, c, oh, ow)
	inv := 1 / float64(kh*kw)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for dy := 0; dy < kh; dy++ {
						row := base + (oy*kh+dy)*w + ox*kw
						for dx := 0; dx < kw; dx++ {
							s += x.Data[row+dx]
						}
					}
					out.Data[oi] = s * inv
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(p.inShape) == 0 {
		panic("nn: AvgPool2D.Backward before Forward")
	}
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	kh, kw := p.ekh, p.ekw
	oh, ow := (h-kh)/kh+1, (w-kw)/kw+1
	if gradOut.Size() != n*c*oh*ow {
		panic(fmt.Sprintf("nn: %s backward gradient size %d, want %d", p.Name(), gradOut.Size(), n*c*oh*ow))
	}
	in := tensor.New(p.inShape...)
	inv := 1 / float64(kh*kw)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gradOut.Data[oi] * inv
					oi++
					for dy := 0; dy < kh; dy++ {
						row := base + (oy*kh+dy)*w + ox*kw
						for dx := 0; dx < kw; dx++ {
							in.Data[row+dx] += g
						}
					}
				}
			}
		}
	}
	return in
}
