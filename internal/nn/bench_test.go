package nn

import (
	"flag"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"sasgd/internal/parallel"
	"sasgd/internal/tensor"
)

// benchWorkers selects the worker counts the convolution sweep runs at,
// e.g. go test -bench Conv2DForward ./internal/nn -workers 1,2,4,8
// (the package path must precede -workers: go test stops reading
// package arguments at the first flag it does not recognise itself).
var benchWorkers = flag.String("workers", "1,2,4,8", "comma-separated worker counts for kernel benchmark sweeps")

func workerCounts(b *testing.B) []int {
	b.Helper()
	var ws []int
	for _, f := range strings.Split(*benchWorkers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			b.Fatalf("bad -workers entry %q", f)
		}
		ws = append(ws, w)
	}
	return ws
}

func benchInput(shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	x.FillRandn(rand.New(rand.NewSource(7)), 0, 1)
	return x
}

// BenchmarkConv2DForward sweeps the Table-I first conv layer across
// batch sizes (batch 1 exercises the row-parallel GEMM path, batch 8 the
// sample-sharded path) and worker counts.
func BenchmarkConv2DForward(b *testing.B) {
	for _, batch := range []int{1, 8} {
		l := NewConv2D(rand.New(rand.NewSource(1)), 3, 64, 5, 5)
		x := benchInput(batch, 3, 32, 32)
		for _, w := range workerCounts(b) {
			b.Run(fmt.Sprintf("b%d/w%d", batch, w), func(b *testing.B) {
				defer parallel.SetWorkers(parallel.SetWorkers(w))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					l.Forward(x, true)
				}
			})
		}
	}
}

// TestConv2DForwardSteadyStateAllocs pins the per-batch allocation
// behaviour: after the first call sizes the retained column buffers, a
// Forward pass allocates only the output tensor and the worker-pool call
// frame, regardless of batch size.
func TestConv2DForwardSteadyStateAllocs(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(4))
	l := NewConv2D(rand.New(rand.NewSource(1)), 3, 16, 5, 5)
	x := benchInput(8, 3, 16, 16)
	l.Forward(x, true) // size the retained per-sample column buffers
	allocs := testing.AllocsPerRun(20, func() { l.Forward(x, true) })
	if allocs > 16 {
		t.Errorf("steady-state Conv2D.Forward allocates %.0f objects/op, want <= 16 (column scratch must be reused)", allocs)
	}
}

// TestConv2DBackwardSteadyStateAllocs asserts Backward reuses pooled
// column-gradient scratch rather than allocating one per sample.
func TestConv2DBackwardSteadyStateAllocs(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(4))
	l := NewConv2D(rand.New(rand.NewSource(1)), 3, 16, 5, 5)
	x := benchInput(8, 3, 16, 16)
	g := benchInput(l.Forward(x, true).Shape()...)
	l.Backward(g)
	allocs := testing.AllocsPerRun(20, func() {
		l.Forward(x, true)
		l.Backward(g)
	})
	if allocs > 40 {
		t.Errorf("steady-state Conv2D step allocates %.0f objects/op, want <= 40", allocs)
	}
}

func BenchmarkConv2DBackward(b *testing.B) {
	l := NewConv2D(rand.New(rand.NewSource(1)), 3, 64, 5, 5)
	x := benchInput(1, 3, 32, 32)
	out := l.Forward(x, true)
	g := benchInput(out.Shape()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
		l.Backward(g)
	}
}

func BenchmarkLinearForward(b *testing.B) {
	l := NewLinear(rand.New(rand.NewSource(1)), 1000, 1000)
	x := benchInput(16, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
	}
}

func BenchmarkTemporalConvForward(b *testing.B) {
	l := NewTemporalConv(rand.New(rand.NewSource(1)), 200, 1000, 2)
	x := benchInput(1, 3, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
	}
}

func BenchmarkSoftmaxCrossEntropy(b *testing.B) {
	crit := NewSoftmaxCrossEntropy()
	logits := benchInput(64, 311)
	labels := make([]int, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crit.Loss(logits, labels)
		crit.Backward()
	}
}

func BenchmarkDropoutForward(b *testing.B) {
	l := NewDropout(rand.New(rand.NewSource(1)), 0.5)
	x := benchInput(64, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
	}
}
