package nn

import (
	"math/rand"
	"testing"

	"sasgd/internal/tensor"
)

func benchInput(shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	x.FillRandn(rand.New(rand.NewSource(7)), 0, 1)
	return x
}

func BenchmarkConv2DForward(b *testing.B) {
	l := NewConv2D(rand.New(rand.NewSource(1)), 3, 64, 5, 5)
	x := benchInput(1, 3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
	}
}

func BenchmarkConv2DBackward(b *testing.B) {
	l := NewConv2D(rand.New(rand.NewSource(1)), 3, 64, 5, 5)
	x := benchInput(1, 3, 32, 32)
	out := l.Forward(x, true)
	g := benchInput(out.Shape()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
		l.Backward(g)
	}
}

func BenchmarkLinearForward(b *testing.B) {
	l := NewLinear(rand.New(rand.NewSource(1)), 1000, 1000)
	x := benchInput(16, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
	}
}

func BenchmarkTemporalConvForward(b *testing.B) {
	l := NewTemporalConv(rand.New(rand.NewSource(1)), 200, 1000, 2)
	x := benchInput(1, 3, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
	}
}

func BenchmarkSoftmaxCrossEntropy(b *testing.B) {
	crit := NewSoftmaxCrossEntropy()
	logits := benchInput(64, 311)
	labels := make([]int, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crit.Loss(logits, labels)
		crit.Backward()
	}
}

func BenchmarkDropoutForward(b *testing.B) {
	l := NewDropout(rand.New(rand.NewSource(1)), 0.5)
	x := benchInput(64, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
	}
}
