package nn

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Checkpointing: a network's learnable state is its flat parameter
// vector, so checkpoints are a small framed binary format — magic,
// version, parameter count, raw float64 parameters, CRC — rather than a
// reflection-based encoding. A checkpoint written by any replica of a
// model restores into any other replica of the same architecture (the
// architectures themselves are code, as in the model zoo).

const (
	checkpointMagic   = 0x5a534753 // "SGSZ"
	checkpointVersion = 1
)

// WriteParams writes a flat parameter vector to w in the checkpoint
// format. Exposed as a package function so core's training-state
// checkpoints can embed parameter frames (and arbitrary float64 state
// vectors) with the same framing, versioning and integrity check.
func WriteParams(w io.Writer, params []float64) error {
	header := []uint32{checkpointMagic, checkpointVersion, uint32(len(params))}
	for _, h := range header {
		if err := binary.Write(w, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("nn: writing checkpoint header: %w", err)
		}
	}
	crc := crc32.NewIEEE()
	buf := make([]byte, 8)
	for _, v := range params {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("nn: writing checkpoint parameters: %w", err)
		}
		crc.Write(buf)
	}
	if err := binary.Write(w, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("nn: writing checkpoint checksum: %w", err)
	}
	return nil
}

// ReadParams reads one parameter frame previously written by
// WriteParams, verifying magic, version and checksum.
func ReadParams(r io.Reader) ([]float64, error) {
	var magic, version, count uint32
	for _, dst := range []*uint32{&magic, &version, &count} {
		if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("nn: reading checkpoint header: %w", err)
		}
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("nn: not a checkpoint (magic %#x)", magic)
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("nn: unsupported checkpoint version %d", version)
	}
	crc := crc32.NewIEEE()
	buf := make([]byte, 8)
	tmp := make([]float64, count)
	for i := range tmp {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("nn: reading checkpoint parameters: %w", err)
		}
		crc.Write(buf)
		tmp[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	var sum uint32
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return nil, fmt.Errorf("nn: reading checkpoint checksum: %w", err)
	}
	if sum != crc.Sum32() {
		return nil, fmt.Errorf("nn: checkpoint checksum mismatch")
	}
	return tmp, nil
}

// Save writes the network's parameters to w in the checkpoint format.
func (n *Network) Save(w io.Writer) error {
	return WriteParams(w, n.flatP)
}

// Load restores parameters previously written by Save. The checkpoint's
// parameter count must match this network's architecture exactly.
func (n *Network) Load(r io.Reader) error {
	tmp, err := ReadParams(r)
	if err != nil {
		return err
	}
	if len(tmp) != len(n.flatP) {
		return fmt.Errorf("nn: checkpoint has %d parameters, network has %d", len(tmp), len(n.flatP))
	}
	copy(n.flatP, tmp)
	return nil
}
