// Package nn implements the neural-network substrate the paper's
// experiments run on: the layers of the CIFAR-10 convolutional network
// (Table I) and the NLC-F temporal-convolution network (Table II), a
// sequential container with manual backpropagation, a softmax
// cross-entropy loss, and parameter flattening so that distributed
// optimizers and collectives can treat a model as a single contiguous
// vector of parameters and a matching vector of gradients.
//
// Conventions: the leading tensor dimension is always the minibatch.
// Images are (N, C, H, W); vectors are (N, D); sequences are (N, L, D).
// Layers own their parameters; Network.Bind relocates all parameter and
// gradient storage into two flat []float64 buffers (views are rebound,
// values preserved) so that a whole model's parameters can be broadcast,
// allreduced, or pushed to a parameter server with a single slice
// operation and no copying.
package nn

import (
	"fmt"
	"math/rand"

	"sasgd/internal/parallel"
	"sasgd/internal/tensor"
)

// activationGrain is the minimum number of elements per worker shard for
// the elementwise activation kernels. ReLU's compare-and-copy is nearly
// free per element, so only whole-minibatch activations are worth
// splitting; Tanh's exp is costly enough to split sooner.
const (
	reluGrain = 1 << 14
	tanhGrain = 1 << 10
)

// Param is one learnable tensor together with the gradient accumulated
// for it by the most recent backward pass.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// Layer is one differentiable stage of a network.
//
// Forward consumes the previous layer's output and returns this layer's
// output; when train is false, stochastic layers (Dropout) run in
// inference mode. Backward consumes dL/d(output) and returns dL/d(input),
// accumulating dL/d(param) into the layer's Param.Grad tensors (layers
// overwrite, not accumulate, their gradients: one backward pass per
// forward pass). Layers may retain references to the tensors passed to
// Forward until the matching Backward completes.
type Layer interface {
	// Name returns a short human-readable identifier used in the
	// architecture tables and error messages.
	Name() string
	// Forward runs the layer on a minibatch.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates the output gradient to the input gradient and
	// fills in parameter gradients.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable parameters (possibly empty).
	Params() []*Param
	// OutShape returns the per-sample output shape for a given per-sample
	// input shape; used for architecture validation and FLOP counting.
	OutShape(in []int) []int
}

// fusable is implemented by layers (Conv2D, Linear) whose forward pass
// can fold a directly-following activation layer into its GEMM epilogue,
// applying the activation while output tiles are still cache-hot.
// ForwardFused must be bitwise identical to Forward followed by the
// activation's Forward.
type fusable interface {
	ForwardFused(x *tensor.Tensor, train bool, act tensor.EpilogueAct) *tensor.Tensor
}

// epilogueAct is implemented by activation layers that can ride in a
// fusable layer's epilogue: fuseKind names the activation for the tensor
// kernels, and adopt rebuilds the layer's backward state from the fused
// output (which the activation's own Forward never saw).
type epilogueAct interface {
	fuseKind() tensor.EpilogueAct
	adopt(out *tensor.Tensor)
}

// ReLU is the rectified-linear activation max(0, x).
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (*ReLU) Name() string { return "ReLU" }

// Params implements Layer.
func (*ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (*ReLU) OutShape(in []int) []int { return in }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	src, dst, mask := x.Data, out.Data, r.mask
	parallel.For(len(src), reluGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := src[i]; v > 0 {
				dst[i] = v
				mask[i] = true
			} else {
				mask[i] = false
			}
		}
	})
	return out
}

func (*ReLU) fuseKind() tensor.EpilogueAct { return tensor.ActReLU }

// adopt rebuilds the backward mask from a fused forward's output: the
// epilogue's max(0, x) is positive exactly where x was, so the mask read
// off the output equals the mask Forward would have built from the input.
func (r *ReLU) adopt(out *tensor.Tensor) {
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	src, mask := out.Data, r.mask
	parallel.For(len(src), reluGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mask[i] = src[i] > 0
		}
	})
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(gradOut.Data) != len(r.mask) {
		panic("nn: ReLU.Backward called with mismatched gradient size")
	}
	in := tensor.New(gradOut.Shape()...)
	src, dst, mask := gradOut.Data, in.Data, r.mask
	parallel.For(len(src), reluGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if mask[i] {
				dst[i] = src[i]
			}
		}
	})
	return in
}

// Tanh is the hyperbolic-tangent activation used by the NLC-F network.
type Tanh struct {
	out []float64
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (*Tanh) Name() string { return "Tanh" }

// Params implements Layer.
func (*Tanh) Params() []*Param { return nil }

// OutShape implements Layer.
func (*Tanh) OutShape(in []int) []int { return in }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	src, dst := x.Data, out.Data
	parallel.For(len(src), tanhGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = tanh(src[i])
		}
	})
	t.out = append(t.out[:0], out.Data...)
	return out
}

func (*Tanh) fuseKind() tensor.EpilogueAct { return tensor.ActTanh }

// adopt retains a fused forward's output for the y² backward term, the
// same state Forward saves.
func (t *Tanh) adopt(out *tensor.Tensor) { t.out = append(t.out[:0], out.Data...) }

// Backward implements Layer.
func (t *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(gradOut.Data) != len(t.out) {
		panic("nn: Tanh.Backward called with mismatched gradient size")
	}
	in := tensor.New(gradOut.Shape()...)
	src, dst, outs := gradOut.Data, in.Data, t.out
	parallel.For(len(src), tanhGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y := outs[i]
			dst[i] = src[i] * (1 - y*y)
		}
	})
	return in
}

func tanh(v float64) float64 {
	// The clamped exponential formulation lives in the tensor package so
	// the fused GEMM epilogue computes the exact same bits; math.Tanh is
	// accurate but comparatively slow, and training spends a measurable
	// fraction of time here for the Table-II network.
	return tensor.ScalarTanh(v)
}

// Flatten reshapes (N, ...) to (N, prod(...)); it is a pure view change
// with an identity backward.
type Flatten struct {
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (*Flatten) Name() string { return "Flatten" }

// Params implements Layer.
func (*Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (*Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape()...)
	n := x.Dim(0)
	return x.Reshape(n, x.Size()/max(n, 1))
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.Reshape(f.inShape...)
}

// initFanIn fills w with the scaled-uniform initialization Torch's
// nn.Linear and nn.SpatialConvolution use: U(-s, s) with s = 1/sqrt(fanIn).
func initFanIn(rng *rand.Rand, w *tensor.Tensor, fanIn int) {
	if fanIn <= 0 {
		panic(fmt.Sprintf("nn: invalid fan-in %d", fanIn))
	}
	s := 1.0 / sqrtFloat(float64(fanIn))
	w.FillUniform(rng, -s, s)
}
