package nn

import (
	"fmt"
	"math/rand"
	"testing"

	"sasgd/internal/parallel"
	"sasgd/internal/tensor"
)

// convAtWorkers runs one Forward+Backward of a fresh, identically-seeded
// Conv2D at the given worker budget and returns the four outputs that
// must be bitwise-stable: forward activations, input gradient, weight
// gradient, and bias gradient.
func convAtWorkers(t *testing.T, workers, batch, inC, outC, size, kernel int) (out, gin, dw, db []float64) {
	t.Helper()
	defer parallel.SetWorkers(parallel.SetWorkers(workers))
	l := NewConv2D(rand.New(rand.NewSource(42)), inC, outC, kernel, kernel)
	x := tensor.New(batch, inC, size, size)
	x.FillRandn(rand.New(rand.NewSource(43)), 0, 1)
	y := l.Forward(x, true)
	g := tensor.New(y.Shape()...)
	g.FillRandn(rand.New(rand.NewSource(44)), 0, 1)
	in := l.Backward(g)
	cp := func(v *tensor.Tensor) []float64 { return append([]float64(nil), v.Data...) }
	return cp(y), cp(in), cp(l.w.Grad), cp(l.b.Grad)
}

func TestConv2DBitwiseAcrossWorkers(t *testing.T) {
	// Batch 1 exercises the row-parallel GEMM path, larger batches the
	// sample-sharded path; odd batch sizes leave uneven shards.
	cases := []struct{ batch, inC, outC, size, kernel int }{
		{1, 3, 8, 12, 5},
		{2, 3, 8, 12, 5},
		{3, 2, 5, 9, 3},
		{7, 3, 4, 8, 3},
		{8, 1, 1, 6, 3},
	}
	for _, c := range cases {
		label := fmt.Sprintf("batch=%d %dx%d k=%d", c.batch, c.inC, c.outC, c.kernel)
		refOut, refGin, refDw, refDb := convAtWorkers(t, 1, c.batch, c.inC, c.outC, c.size, c.kernel)
		for w := 2; w <= 8; w++ {
			out, gin, dw, db := convAtWorkers(t, w, c.batch, c.inC, c.outC, c.size, c.kernel)
			for name, pair := range map[string][2][]float64{
				"forward": {refOut, out},
				"gradIn":  {refGin, gin},
				"dW":      {refDw, dw},
				"db":      {refDb, db},
			} {
				for i := range pair[0] {
					if pair[0][i] != pair[1][i] {
						t.Fatalf("%s workers=%d: %s differs at %d: %x vs %x",
							label, w, name, i, pair[1][i], pair[0][i])
					}
				}
			}
		}
	}
}

func TestActivationsBitwiseAcrossWorkers(t *testing.T) {
	x := tensor.New(4, 3000)
	x.FillRandn(rand.New(rand.NewSource(9)), 0, 2)
	g := tensor.New(4, 3000)
	g.FillRandn(rand.New(rand.NewSource(10)), 0, 1)
	run := func(layer Layer, workers int) ([]float64, []float64) {
		defer parallel.SetWorkers(parallel.SetWorkers(workers))
		y := layer.Forward(x, true)
		in := layer.Backward(g)
		return append([]float64(nil), y.Data...), append([]float64(nil), in.Data...)
	}
	for _, mk := range []func() Layer{
		func() Layer { return NewReLU() },
		func() Layer { return NewTanh() },
	} {
		name := mk().Name()
		refY, refIn := run(mk(), 1)
		for w := 2; w <= 8; w++ {
			y, in := run(mk(), w)
			for i := range refY {
				if y[i] != refY[i] || in[i] != refIn[i] {
					t.Fatalf("%s workers=%d differs at %d", name, w, i)
				}
			}
		}
	}
}

// TestConv2DParallelMatchesSeedSerial pins the parallel layer to an
// independent, straightforward serial reference (direct convolution), so
// the bitwise tests above cannot all drift together.
func TestConv2DParallelMatchesSeedSerial(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(4))
	l := NewConv2D(rand.New(rand.NewSource(3)), 2, 3, 3, 3)
	batch, size := 4, 7
	x := tensor.New(batch, 2, size, size)
	x.FillRandn(rand.New(rand.NewSource(4)), 0, 1)
	y := l.Forward(x, true)
	oh := size - 2
	for i := 0; i < batch; i++ {
		for k := 0; k < 3; k++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < oh; ox++ {
					want := l.b.Value.Data[k]
					for c := 0; c < 2; c++ {
						for ky := 0; ky < 3; ky++ {
							for kx := 0; kx < 3; kx++ {
								want += l.w.Value.At(k, c, ky, kx) * x.At(i, c, oy+ky, ox+kx)
							}
						}
					}
					got := y.At(i, k, oy, ox)
					if diff := got - want; diff > 1e-9 || diff < -1e-9 {
						t.Fatalf("direct conv mismatch at (%d,%d,%d,%d): %g vs %g", i, k, oy, ox, got, want)
					}
				}
			}
		}
	}
}
