package nn

import "math"

// Thin wrappers over math so the rest of the package reads without the
// math qualifier in hot paths and tests can reference the exact functions
// the layers use.

func expFloat(v float64) float64  { return math.Exp(v) }
func sqrtFloat(v float64) float64 { return math.Sqrt(v) }
func logFloat(v float64) float64  { return math.Log(v) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
