package nn

import (
	"fmt"

	"sasgd/internal/tensor"
)

// MaxPool2D is a max pooling layer over (N, C, H, W) inputs with a
// kh×kw window and matching stride (the paper's networks always pool
// with stride equal to the window). When the remaining spatial extent is
// smaller than the window — which happens at the last stage of the
// Table-I network where the feature map has shrunk to 1×1 — the window is
// clamped to the input so the layer degenerates to identity rather than
// failing, mirroring how the published architecture table is to be read.
type MaxPool2D struct {
	KH, KW  int
	argmax  []int
	inShape []int
}

// NewMaxPool2D returns a max pooling layer with a kh×kw window and
// stride equal to the window.
func NewMaxPool2D(kh, kw int) *MaxPool2D {
	if kh <= 0 || kw <= 0 {
		panic(fmt.Sprintf("nn: NewMaxPool2D(%d, %d): window must be positive", kh, kw))
	}
	return &MaxPool2D{KH: kh, KW: kw}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("MaxPool2D (%d,%d)", p.KH, p.KW) }

// Params implements Layer.
func (*MaxPool2D) Params() []*Param { return nil }

func (p *MaxPool2D) outHW(h, w int) (oh, ow int) {
	kh, kw := p.KH, p.KW
	if kh > h {
		kh = h
	}
	if kw > w {
		kw = w
	}
	return (h-kh)/kh + 1, (w-kw)/kw + 1
}

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("nn: %s applied to per-sample shape %v", p.Name(), in))
	}
	oh, ow := p.outHW(in[1], in[2])
	return []int{in[0], oh, ow}
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s forward input shape %v", p.Name(), x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	kh, kw := p.KH, p.KW
	if kh > h {
		kh = h
	}
	if kw > w {
		kw = w
	}
	oh, ow := p.outHW(h, w)
	out := tensor.New(n, c, oh, ow)
	p.inShape = append(p.inShape[:0], n, c, h, w)
	if cap(p.argmax) < out.Size() {
		p.argmax = make([]int, out.Size())
	}
	p.argmax = p.argmax[:out.Size()]
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := base + (oy*kh)*w + ox*kw
					best := x.Data[bestIdx]
					for dy := 0; dy < kh; dy++ {
						row := base + (oy*kh+dy)*w + ox*kw
						for dx := 0; dx < kw; dx++ {
							if v := x.Data[row+dx]; v > best {
								best, bestIdx = v, row+dx
							}
						}
					}
					out.Data[oi] = best
					p.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(p.inShape) == 0 {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	if gradOut.Size() != len(p.argmax) {
		panic(fmt.Sprintf("nn: %s backward gradient size %d, want %d", p.Name(), gradOut.Size(), len(p.argmax)))
	}
	in := tensor.New(p.inShape...)
	for i, g := range gradOut.Data {
		in.Data[p.argmax[i]] += g
	}
	return in
}

// TemporalMaxPool pools over the time axis of (N, L, D) inputs with a
// window of kt frames and stride kt, clamping the window when L < kt
// (same convention as MaxPool2D). It implements the "Max-Pooling
// (height, width) = (2, 1)" stage of the Table-II network, where pooling
// runs over time and is identity across the feature dimension.
type TemporalMaxPool struct {
	KT      int
	argmax  []int
	inShape []int
}

// NewTemporalMaxPool returns a temporal max pooling layer with window kt.
func NewTemporalMaxPool(kt int) *TemporalMaxPool {
	if kt <= 0 {
		panic(fmt.Sprintf("nn: NewTemporalMaxPool(%d): window must be positive", kt))
	}
	return &TemporalMaxPool{KT: kt}
}

// Name implements Layer.
func (p *TemporalMaxPool) Name() string { return fmt.Sprintf("TemporalMaxPool (%d,1)", p.KT) }

// Params implements Layer.
func (*TemporalMaxPool) Params() []*Param { return nil }

// OutShape implements Layer.
func (p *TemporalMaxPool) OutShape(in []int) []int {
	if len(in) != 2 {
		panic(fmt.Sprintf("nn: %s applied to per-sample shape %v", p.Name(), in))
	}
	kt := p.KT
	if kt > in[0] {
		kt = in[0]
	}
	return []int{(in[0]-kt)/kt + 1, in[1]}
}

// Forward implements Layer.
func (p *TemporalMaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: %s forward input shape %v", p.Name(), x.Shape()))
	}
	n, l, d := x.Dim(0), x.Dim(1), x.Dim(2)
	kt := p.KT
	if kt > l {
		kt = l
	}
	ol := (l-kt)/kt + 1
	out := tensor.New(n, ol, d)
	p.inShape = append(p.inShape[:0], n, l, d)
	if cap(p.argmax) < out.Size() {
		p.argmax = make([]int, out.Size())
	}
	p.argmax = p.argmax[:out.Size()]
	oi := 0
	for i := 0; i < n; i++ {
		for ot := 0; ot < ol; ot++ {
			for j := 0; j < d; j++ {
				bestIdx := (i*l+ot*kt)*d + j
				best := x.Data[bestIdx]
				for dt := 1; dt < kt; dt++ {
					idx := (i*l+ot*kt+dt)*d + j
					if v := x.Data[idx]; v > best {
						best, bestIdx = v, idx
					}
				}
				out.Data[oi] = best
				p.argmax[oi] = bestIdx
				oi++
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *TemporalMaxPool) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(p.inShape) == 0 {
		panic("nn: TemporalMaxPool.Backward before Forward")
	}
	if gradOut.Size() != len(p.argmax) {
		panic(fmt.Sprintf("nn: %s backward gradient size %d, want %d", p.Name(), gradOut.Size(), len(p.argmax)))
	}
	in := tensor.New(p.inShape...)
	for i, g := range gradOut.Data {
		in.Data[p.argmax[i]] += g
	}
	return in
}
