package nn

import (
	"fmt"
	"math/rand"

	"sasgd/internal/tensor"
)

// TemporalConv is a 1-D convolution over the time axis of (N, L, D)
// sequence inputs, the "Temporal Convolution" stage of the Table-II
// NLC-F network (Abdel-Hamid et al., cited by the paper). For a window of
// w frames it maps each span x[t..t+w-1] (a w·D vector) through a (K, w·D)
// weight matrix, producing (N, L-w+1, K).
type TemporalConv struct {
	InD, OutK, Window int
	w, b              *Param

	x    *tensor.Tensor
	cols *tensor.Tensor // (N*(L-w+1), w*D) unfolded input
}

// NewTemporalConv returns a temporal convolution with nkern kernels over
// a window of win frames of ind-dimensional input.
func NewTemporalConv(rng *rand.Rand, ind, nkern, win int) *TemporalConv {
	if ind <= 0 || nkern <= 0 || win <= 0 {
		panic(fmt.Sprintf("nn: NewTemporalConv(%d, %d, %d): all dimensions must be positive", ind, nkern, win))
	}
	t := &TemporalConv{
		InD:    ind,
		OutK:   nkern,
		Window: win,
		w:      newParam(fmt.Sprintf("tconv%dx%dx%d.w", ind, nkern, win), nkern, win*ind),
		b:      newParam(fmt.Sprintf("tconv%dx%dx%d.b", ind, nkern, win), nkern),
	}
	initFanIn(rng, t.w.Value, win*ind)
	initFanIn(rng, t.b.Value, win*ind)
	return t
}

// Name implements Layer.
func (t *TemporalConv) Name() string {
	return fmt.Sprintf("TemporalConv (%d,%d) win=%d", t.InD, t.OutK, t.Window)
}

// Params implements Layer.
func (t *TemporalConv) Params() []*Param { return []*Param{t.w, t.b} }

// OutShape implements Layer.
func (t *TemporalConv) OutShape(in []int) []int {
	if len(in) != 2 || in[1] != t.InD {
		panic(fmt.Sprintf("nn: %s applied to per-sample shape %v", t.Name(), in))
	}
	ol := in[0] - t.Window + 1
	if ol <= 0 {
		panic(fmt.Sprintf("nn: %s window does not fit sequence length %d", t.Name(), in[0]))
	}
	return []int{ol, t.OutK}
}

// Forward implements Layer.
func (t *TemporalConv) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 3 || x.Dim(2) != t.InD {
		panic(fmt.Sprintf("nn: %s forward input shape %v", t.Name(), x.Shape()))
	}
	n, l, d := x.Dim(0), x.Dim(1), x.Dim(2)
	ol := l - t.Window + 1
	if ol <= 0 {
		panic(fmt.Sprintf("nn: %s window does not fit sequence length %d", t.Name(), l))
	}
	t.x = x
	wd := t.Window * d
	rows := n * ol
	if t.cols == nil || t.cols.Dim(0) != rows || t.cols.Dim(1) != wd {
		t.cols = tensor.New(rows, wd)
	}
	// Unfold: row (i*ol+ot) holds x[i, ot:ot+window, :] flattened. Because
	// the layout is row-major over (L, D), each row is a contiguous copy.
	for i := 0; i < n; i++ {
		for ot := 0; ot < ol; ot++ {
			src := x.Data[(i*l+ot)*d : (i*l+ot)*d+wd]
			dst := t.cols.Data[(i*ol+ot)*wd : (i*ol+ot+1)*wd]
			copy(dst, src)
		}
	}
	// out (rows × K) = cols (rows × wd) · Wᵀ (wd × K)
	out2 := tensor.New(rows, t.OutK)
	tensor.MatMulTransB(out2, t.cols, t.w.Value)
	for r := 0; r < rows; r++ {
		row := out2.Data[r*t.OutK : (r+1)*t.OutK]
		for j, bv := range t.b.Value.Data {
			row[j] += bv
		}
	}
	return out2.Reshape(n, ol, t.OutK)
}

// Backward implements Layer.
func (t *TemporalConv) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if t.x == nil {
		panic("nn: TemporalConv.Backward before Forward")
	}
	n, l, d := t.x.Dim(0), t.x.Dim(1), t.x.Dim(2)
	ol := l - t.Window + 1
	if gradOut.Dims() != 3 || gradOut.Dim(0) != n || gradOut.Dim(1) != ol || gradOut.Dim(2) != t.OutK {
		panic(fmt.Sprintf("nn: %s backward gradient shape %v", t.Name(), gradOut.Shape()))
	}
	rows := n * ol
	wd := t.Window * d
	g2 := gradOut.Reshape(rows, t.OutK)
	// dW = g2ᵀ (K×rows) · cols (rows×wd)
	tensor.MatMulTransA(t.w.Grad, g2, t.cols)
	// db = column sums of g2
	t.b.Grad.Zero()
	for r := 0; r < rows; r++ {
		row := g2.Data[r*t.OutK : (r+1)*t.OutK]
		for j, g := range row {
			t.b.Grad.Data[j] += g
		}
	}
	// dcols = g2 (rows×K) · W (K×wd), then fold overlapping windows back.
	dcols := tensor.New(rows, wd)
	tensor.MatMul(dcols, g2, t.w.Value)
	gradIn := tensor.New(n, l, d)
	for i := 0; i < n; i++ {
		for ot := 0; ot < ol; ot++ {
			src := dcols.Data[(i*ol+ot)*wd : (i*ol+ot+1)*wd]
			dst := gradIn.Data[(i*l+ot)*d : (i*l+ot)*d+wd]
			for j, g := range src {
				dst[j] += g
			}
		}
	}
	t.x = nil
	return gradIn
}
