package nn

import (
	"math"
	"math/rand"
	"testing"

	"sasgd/internal/tensor"
)

// Network.Forward fuses GEMM-backed layers with a following activation
// layer into one call. These tests pin the two halves of that contract:
// the fused stack is bitwise identical to running each layer's own
// Forward, and backprop through a fused forward still matches finite
// differences (i.e. the activation layers correctly adopt the fused
// output as their backward state).

// forwardUnfused runs the stack layer by layer, bypassing the fusion
// dispatch in Network.Forward.
func forwardUnfused(net *Network, x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x
	for _, l := range net.Layers() {
		out = l.Forward(out, train)
	}
	return out
}

func fusedTestNet() *Network {
	rng := rand.New(rand.NewSource(21))
	return NewNetwork([]int{2, 6, 6},
		NewConv2D(rng, 2, 4, 3, 3),
		NewTanh(),
		NewFlatten(),
		NewLinear(rng, 4*4*4, 9),
		NewSigmoid(),
		NewFlatten(),
		NewLinear(rng, 9, 4),
		NewReLU(),
	)
}

// TestFusedForwardMatchesUnfusedBitwise runs the same input through the
// fused Network.Forward and through per-layer Forward calls on an
// identically seeded replica, and requires bit-identical logits and —
// after a shared loss — bit-identical parameter gradients (proving the
// activations' adopted backward state equals the state their own Forward
// would have built).
func TestFusedForwardMatchesUnfusedBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := tensor.New(3, 2, 6, 6)
	x.FillRandn(rng, 0, 1)
	labels := []int{1, 0, 3}

	fusedNet := fusedTestNet()
	plainNet := fusedTestNet()

	fusedOut := fusedNet.Forward(x, true)
	plainOut := forwardUnfused(plainNet, x, true)
	if len(fusedOut.Data) != len(plainOut.Data) {
		t.Fatalf("output sizes differ: %d vs %d", len(fusedOut.Data), len(plainOut.Data))
	}
	for i := range fusedOut.Data {
		if fusedOut.Data[i] != plainOut.Data[i] {
			t.Fatalf("fused forward differs from unfused at %d: %x vs %x",
				i, fusedOut.Data[i], plainOut.Data[i])
		}
	}

	fusedNet.Loss(fusedOut, labels)
	fusedNet.Backward()
	plainNet.Loss(plainOut, labels)
	plainNet.Backward()
	fg, pg := fusedNet.GradData(), plainNet.GradData()
	for i := range fg {
		if fg[i] != pg[i] {
			t.Fatalf("fused backward gradient differs from unfused at %d: %x vs %x",
				i, fg[i], pg[i])
		}
	}
}

// TestFusedNetworkGradient gradchecks a network whose every GEMM layer
// is fused with a Tanh, Sigmoid, or ReLU epilogue, against finite
// differences of the real loss.
func TestFusedNetworkGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := tensor.New(3, 2, 6, 6)
	x.FillRandn(rng, 0, 1)
	labels := []int{2, 0, 1}

	net := fusedTestNet()
	net.Step(x, labels)
	grads := append([]float64(nil), net.GradData()...)

	const eps = 1e-5
	for probe := 0; probe < 30; probe++ {
		i := rng.Intn(net.NumParams())
		np := fusedTestNet()
		np.ParamData()[i] += eps
		fp := np.Loss(np.Forward(x, false), labels)
		nm := fusedTestNet()
		nm.ParamData()[i] -= eps
		fm := nm.Loss(nm.Forward(x, false), labels)
		num := (fp - fm) / (2 * eps)
		if math.Abs(num-grads[i]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("fused network grad[%d]: analytic %g vs numeric %g", i, grads[i], num)
		}
	}
}
