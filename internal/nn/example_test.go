package nn_test

import (
	"bytes"
	"fmt"
	"math/rand"

	"sasgd/internal/nn"
	"sasgd/internal/tensor"
)

// Build a small classifier, run one training step, and apply the
// gradient — the inner loop every algorithm in internal/core is built
// from.
func ExampleNetwork() {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewNetwork([]int{4},
		nn.NewLinear(rng, 4, 8),
		nn.NewTanh(),
		nn.NewLinear(rng, 8, 2),
	)
	x := tensor.New(2, 4)
	x.FillRandn(rng, 0, 1)
	before := net.Step(x, []int{0, 1})
	tensor.Axpy(-0.5, net.GradData(), net.ParamData())
	after := net.Loss(net.Forward(x, false), []int{0, 1})
	fmt.Printf("loss decreased: %v\n", after < before)
	// Output:
	// loss decreased: true
}

// Checkpoints restore a model's parameters exactly into any replica of
// the same architecture.
func ExampleNetwork_Save() {
	mk := func(seed int64) *nn.Network {
		rng := rand.New(rand.NewSource(seed))
		return nn.NewNetwork([]int{3}, nn.NewLinear(rng, 3, 2))
	}
	src, dst := mk(1), mk(2)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		panic(err)
	}
	if err := dst.Load(&buf); err != nil {
		panic(err)
	}
	fmt.Println(src.ParamData()[0] == dst.ParamData()[0])
	// Output:
	// true
}
