package nn

import (
	"math/rand"
	"testing"

	"sasgd/internal/tensor"
)

// segNet builds a small mixed stack — parameterless layers interleaved
// with parameterized ones — for the segment and callback tests.
func segNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork([]int{1, 8, 8},
		NewConv2D(rng, 1, 3, 3, 3),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewLinear(rng, 3*3*3, 10),
		NewTanh(),
		NewLinear(rng, 10, 4),
	)
}

func segBatch(seed int64) (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(5, 1, 8, 8)
	x.FillUniform(rng, -1, 1)
	y := make([]int, 5)
	for i := range y {
		y[i] = rng.Intn(4)
	}
	return x, y
}

// TestParamSegmentsCoverFlatBuffer: segments are ordered, back-to-back,
// cover [0, NumParams()) exactly, and each one's length equals the sum of
// its layer's parameter sizes.
func TestParamSegmentsCoverFlatBuffer(t *testing.T) {
	net := segNet(1)
	segs := net.ParamSegments()
	if len(segs) != 3 { // conv, linear, linear
		t.Fatalf("got %d segments, want 3: %+v", len(segs), segs)
	}
	off := 0
	lastLayer := -1
	for _, s := range segs {
		if s.Off != off {
			t.Fatalf("segment %+v not back-to-back: want offset %d", s, off)
		}
		if s.Layer <= lastLayer {
			t.Fatalf("segment layers not strictly increasing: %+v", segs)
		}
		want := 0
		for _, p := range net.Layers()[s.Layer].Params() {
			want += p.Value.Size()
		}
		if s.Len != want {
			t.Fatalf("segment %+v length != layer param size %d", s, want)
		}
		off += s.Len
		lastLayer = s.Layer
	}
	if off != net.NumParams() {
		t.Fatalf("segments cover %d words, want NumParams %d", off, net.NumParams())
	}
}

// TestParamSegmentsAliasFlatStorage: writing through a segment's slice of
// ParamData must be visible to the layer's own Param tensors (the
// segments are views, not copies).
func TestParamSegmentsAliasFlatStorage(t *testing.T) {
	net := segNet(2)
	segs := net.ParamSegments()
	s := segs[len(segs)-1]
	net.ParamData()[s.Off] = 42.5
	last := net.Layers()[s.Layer].Params()[0]
	if last.Value.Data[0] != 42.5 {
		t.Fatal("ParamSegments do not alias the layer's parameter storage")
	}
}

// TestBackwardEachFiresInReverseWithFinalGradients runs one training step
// with the hook and asserts (a) the hook sees every layer exactly once in
// reverse order, and (b) at the moment a layer's hook fires, that layer's
// gradient segment already holds its final value — pinned by snapshotting
// the segment at hook time and comparing with the gradient after the full
// pass, bit for bit.
func TestBackwardEachFiresInReverseWithFinalGradients(t *testing.T) {
	net := segNet(3)
	x, y := segBatch(4)
	segByLayer := map[int]ParamSegment{}
	for _, s := range net.ParamSegments() {
		segByLayer[s.Layer] = s
	}

	var order []int
	snaps := map[int][]float64{}
	net.StepEach(x, y, func(layer int) {
		order = append(order, layer)
		if s, ok := segByLayer[layer]; ok {
			snaps[layer] = append([]float64(nil), net.GradData()[s.Off:s.Off+s.Len]...)
		}
	})

	nl := len(net.Layers())
	if len(order) != nl {
		t.Fatalf("hook fired %d times, want %d", len(order), nl)
	}
	for i, l := range order {
		if l != nl-1-i {
			t.Fatalf("hook order %v, want reverse layer order", order)
		}
	}
	for layer, snap := range snaps {
		s := segByLayer[layer]
		final := net.GradData()[s.Off : s.Off+s.Len]
		for i := range snap {
			if snap[i] != final[i] {
				t.Fatalf("layer %d gradient changed after its hook fired (index %d: %g vs %g)",
					layer, i, snap[i], final[i])
			}
		}
	}
}

// TestStepEachMatchesStepBitwise: the hook must not perturb the pass —
// identical replicas stepping with and without it produce bitwise equal
// losses, gradients, and (after an update) parameters.
func TestStepEachMatchesStepBitwise(t *testing.T) {
	a, b := segNet(5), segNet(5)
	x, y := segBatch(6)
	la := a.Step(x, y)
	lb := b.StepEach(x, y, func(int) {})
	if la != lb {
		t.Fatalf("loss differs: %g vs %g", la, lb)
	}
	for i := range a.GradData() {
		if a.GradData()[i] != b.GradData()[i] {
			t.Fatalf("gradient differs at %d", i)
		}
	}
}
