package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildGoldenTracer records a small deterministic trace on a fake
// clock: one learner whose backward span encloses two bucket_begin
// spans, and the matching comm worker running queue_dwell → allreduce
// for each bucket. This is the shape an overlapped run produces.
func buildGoldenTracer() *Tracer {
	tr := NewTracer(64)
	t := int64(0)
	tr.nowFn = func() int64 { return t }
	learner := tr.Learner(0)
	worker := tr.CommWorker(0)

	at := func(ns int64) { t = ns }

	at(0)
	s := learner.Begin()
	at(100)
	learner.End(PhaseForward, s)

	// backward [100, 1000] with bucket begins [200,250] and [500,560].
	at(100)
	back := learner.Begin()
	at(200)
	b0 := learner.Begin()
	at(250)
	learner.EndArg(PhaseBucketBegin, 1, b0)
	at(500)
	b1 := learner.Begin()
	at(560)
	learner.EndArg(PhaseBucketBegin, 0, b1)
	at(1000)
	learner.End(PhaseBackward, back)

	// comm worker: bucket 1 dwells [250, 300], runs [300, 700]; bucket 0
	// dwells [560, 700], runs [700, 1100] — overlapping backward.
	worker.Span(PhaseQueueDwell, 1, 250, 300)
	worker.Span(PhaseAllreduce, 1, 300, 700)
	worker.Span(PhaseQueueDwell, 0, 560, 700)
	worker.Span(PhaseAllreduce, 0, 700, 1100)

	// learner waits for the interval's buckets, then applies.
	at(1000)
	w := learner.Begin()
	at(1100)
	learner.End(PhaseAggWait, w)
	a := learner.Begin()
	at(1150)
	learner.End(PhaseAggApply, a)
	return tr
}

// TestTraceGolden pins the exported Chrome-trace JSON byte for byte.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/obs -run TraceGolden.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenTracer().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_trace.json")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON drifted from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTraceSchemaValid validates the golden trace's structure: parseable
// JSON, only known event kinds, matched begin/end pairs, per-track
// monotonic timestamps.
func TestTraceSchemaValid(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenTracer().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// 6 learner spans + 4 comm-worker spans.
	if spans != 10 {
		t.Errorf("validated %d spans, want 10", spans)
	}
}

func TestValidateTraceRejectsCorruptTraces(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"traceEvents": [`,
		"no events array": `{"displayTimeUnit":"ms"}`,
		"unknown ph":      `{"traceEvents":[{"name":"x","ph":"Q","pid":1,"tid":0,"ts":1}]}`,
		"unmatched E":     `{"traceEvents":[{"name":"x","ph":"E","pid":1,"tid":0,"ts":1}]}`,
		"unclosed B":      `{"traceEvents":[{"name":"x","ph":"B","pid":1,"tid":0,"ts":1}]}`,
		"name mismatch": `{"traceEvents":[
			{"name":"a","ph":"B","pid":1,"tid":0,"ts":1},
			{"name":"b","ph":"E","pid":1,"tid":0,"ts":2}]}`,
		"time reversal": `{"traceEvents":[
			{"name":"a","ph":"B","pid":1,"tid":0,"ts":5},
			{"name":"a","ph":"E","pid":1,"tid":0,"ts":1}]}`,
		"async without id": `{"traceEvents":[{"name":"q","ph":"b","pid":2,"tid":0,"ts":1}]}`,
		"async unmatched e": `{"traceEvents":[
			{"name":"q","cat":"queue","ph":"e","pid":2,"tid":0,"id":"0.1","ts":1}]}`,
		"async reopened": `{"traceEvents":[
			{"name":"q","cat":"queue","ph":"b","pid":2,"tid":0,"id":"0.1","ts":1},
			{"name":"q","cat":"queue","ph":"b","pid":2,"tid":0,"id":"0.1","ts":2}]}`,
		"async unclosed": `{"traceEvents":[
			{"name":"q","cat":"queue","ph":"b","pid":2,"tid":0,"id":"0.1","ts":1}]}`,
	}
	for name, data := range cases {
		if _, err := ValidateTrace([]byte(data)); err == nil {
			t.Errorf("%s: ValidateTrace accepted a corrupt trace", name)
		}
	}
	// Async dwell intervals legally overlap duration events on the same
	// timeline (that is why they are async): B allreduce, b dwell for the
	// next bucket, E allreduce, e dwell.
	okAsync := `{"traceEvents":[
		{"name":"allreduce","ph":"B","pid":2,"tid":0,"ts":1},
		{"name":"queue_dwell","cat":"queue","ph":"b","pid":2,"tid":0,"id":"0.1","ts":2},
		{"name":"allreduce","ph":"E","pid":2,"tid":0,"ts":3},
		{"name":"queue_dwell","cat":"queue","ph":"e","pid":2,"tid":0,"id":"0.1","ts":4}]}`
	if spans, err := ValidateTrace([]byte(okAsync)); err != nil || spans != 2 {
		t.Errorf("overlapping async dwell rejected: spans=%d err=%v", spans, err)
	}
	// Interleaving across tracks is legal: only same-track pairs nest.
	ok := `{"traceEvents":[
		{"name":"a","ph":"B","pid":1,"tid":0,"ts":1},
		{"name":"b","ph":"B","pid":2,"tid":0,"ts":2},
		{"name":"a","ph":"E","pid":1,"tid":0,"ts":3},
		{"name":"b","ph":"E","pid":2,"tid":0,"ts":4}]}`
	if spans, err := ValidateTrace([]byte(ok)); err != nil || spans != 2 {
		t.Errorf("cross-track interleaving rejected: spans=%d err=%v", spans, err)
	}
}
