package obs

import (
	"strings"
	"testing"
	"time"
)

func TestProfilePercentiles(t *testing.T) {
	tr := NewTracer(256)
	tn := int64(0)
	tr.nowFn = func() int64 { return tn }
	tk := tr.Learner(0)
	// 100 forward spans of durations 1..100 µs.
	for i := 1; i <= 100; i++ {
		tn = 0
		s := tk.Begin()
		tn = int64(i) * 1000
		tk.End(PhaseForward, s)
	}
	prof := tr.Profile()
	if len(prof) != 1 {
		t.Fatalf("profile has %d rows, want 1", len(prof))
	}
	p := prof[0]
	if p.Track != "learner 0" || p.Phase != PhaseForward || p.Count != 100 {
		t.Fatalf("unexpected row %+v", p)
	}
	if p.P50 != 50*time.Microsecond || p.P95 != 95*time.Microsecond || p.P99 != 99*time.Microsecond {
		t.Errorf("p50/p95/p99 = %v/%v/%v, want 50µs/95µs/99µs", p.P50, p.P95, p.P99)
	}
	if want := time.Duration(5050) * time.Microsecond; p.Total != want {
		t.Errorf("total = %v, want %v", p.Total, want)
	}
}

func TestProfileTableRendersEveryPhase(t *testing.T) {
	tr := buildGoldenTracer()
	out := tr.ProfileTable("phase profile")
	for _, want := range []string{"phase profile", "track", "p50", "p95", "p99",
		"forward", "backward", "bucket_begin", "agg_wait", "agg_apply",
		"queue_dwell", "allreduce", "learner 0", "comm worker 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile table missing %q:\n%s", want, out)
		}
	}
}

func TestOverlapFraction(t *testing.T) {
	// Golden shape: backward [100,1000]; allreduces [300,700] (fully
	// inside) and [700,1100] (300 of 400 inside). Overlapped = 400+300,
	// total = 800.
	tr := buildGoldenTracer()
	overlapped, total := tr.OverlapFraction()
	if total != 800 {
		t.Fatalf("total allreduce = %v, want 800ns", total)
	}
	if overlapped != 700 {
		t.Errorf("overlapped = %v, want 700ns", overlapped)
	}
}

func TestOverlapFractionIgnoresOtherRanks(t *testing.T) {
	tr := NewTracer(16)
	tn := int64(0)
	tr.nowFn = func() int64 { return tn }
	l0 := tr.Learner(0)
	w1 := tr.CommWorker(1) // different rank: no learner-0 overlap credit
	tn = 0
	s := l0.Begin()
	tn = 1000
	l0.End(PhaseBackward, s)
	w1.Span(PhaseAllreduce, 0, 0, 500)
	overlapped, total := tr.OverlapFraction()
	if total != 500 || overlapped != 0 {
		t.Errorf("overlapped/total = %v/%v, want 0/500 (rank mismatch)", overlapped, total)
	}
}
