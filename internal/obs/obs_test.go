package obs

import (
	"testing"
	"time"
)

// fakeClock returns a nowFn handing out strictly increasing timestamps
// in steps of the given nanoseconds.
func fakeClock(step int64) func() int64 {
	t := int64(0)
	return func() int64 {
		t += step
		return t
	}
}

func newTestTracer(capSpans int, step int64) *Tracer {
	tr := NewTracer(capSpans)
	tr.nowFn = fakeClock(step)
	return tr
}

func TestNilTrackIsSafeAndFree(t *testing.T) {
	var tk *Track // the disabled path: no tracer anywhere
	s := tk.Begin()
	tk.End(PhaseForward, s)
	tk.EndArg(PhaseAllreduce, 3, s)
	tk.Span(PhaseQueueDwell, NoArg, 0, 0)
	if tk.Now() != 0 || tk.Len() != 0 || tk.Cap() != 0 || tk.Dropped() != 0 {
		t.Error("nil track reported non-zero state")
	}
	var tr *Tracer
	if tr.Learner(0) != nil || tr.CommWorker(1) != nil || tr.Tracks() != nil {
		t.Error("nil tracer handed out a non-nil track")
	}
	tr.SetStats(func() interface{} { return nil }) // must not panic
	if got := tr.Stats(); got != nil {
		t.Errorf("nil tracer Stats() = %v", got)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		s := tk.Begin()
		tk.End(PhaseForward, s)
	}); allocs != 0 {
		t.Errorf("disabled Begin/End allocated %.1f per op, want 0", allocs)
	}
}

func TestEnabledRecordIsAllocFree(t *testing.T) {
	tr := newTestTracer(64, 10)
	tk := tr.Learner(0)
	if allocs := testing.AllocsPerRun(100, func() {
		s := tk.Begin()
		tk.End(PhaseForward, s)
	}); allocs != 0 {
		t.Errorf("enabled Begin/End allocated %.1f per op, want 0", allocs)
	}
}

func TestRingWrapKeepsMostRecent(t *testing.T) {
	tr := newTestTracer(4, 10)
	tk := tr.Learner(0)
	for i := 0; i < 10; i++ {
		s := tk.Begin()
		tk.EndArg(PhaseForward, int32(i), s)
	}
	if tk.Len() != 10 || tk.Cap() != 4 || tk.Dropped() != 6 {
		t.Fatalf("Len/Cap/Dropped = %d/%d/%d, want 10/4/6", tk.Len(), tk.Cap(), tk.Dropped())
	}
	got := tk.retained()
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := int32(6 + i); s.arg != want {
			t.Errorf("retained[%d].arg = %d, want %d (oldest-first order)", i, s.arg, want)
		}
	}
}

func TestTrackStampsMonotonic(t *testing.T) {
	tr := NewTracer(16) // real clock
	tk := tr.Learner(0)
	s := tk.Begin()
	time.Sleep(time.Millisecond)
	tk.End(PhaseForward, s)
	sp := tk.retained()[0]
	if sp.dur <= 0 {
		t.Errorf("span duration = %dns, want > 0", sp.dur)
	}
}

func TestSnapshotAggregates(t *testing.T) {
	tr := newTestTracer(16, 10)
	tk := tr.Learner(2)
	for i := 0; i < 3; i++ {
		tk.End(PhaseBackward, tk.Begin())
	}
	tk.End(PhaseForward, tk.Begin())
	tr.SetStats(func() interface{} { return map[string]int{"words": 42} })
	snap := tr.Snapshot()
	if len(snap.Tracks) != 1 {
		t.Fatalf("snapshot has %d tracks, want 1", len(snap.Tracks))
	}
	lt := snap.Tracks[0]
	if lt.Name != "learner 2" || lt.Spans != 4 {
		t.Errorf("track %q spans %d, want learner 2 / 4", lt.Name, lt.Spans)
	}
	byPhase := map[string]LivePhase{}
	for _, p := range lt.Phases {
		byPhase[p.Phase] = p
	}
	if byPhase["backward"].Count != 3 || byPhase["forward"].Count != 1 {
		t.Errorf("phase counts = %+v", byPhase)
	}
	// Each fake-clock span lasts exactly one step (10ns).
	if byPhase["backward"].TotalNs != 30 || byPhase["backward"].MeanNs != 10 {
		t.Errorf("backward total/mean = %d/%.1f, want 30/10", byPhase["backward"].TotalNs, byPhase["backward"].MeanNs)
	}
	if snap.Stats == nil {
		t.Error("snapshot dropped the stats source")
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for ph := Phase(0); ph < NumPhases; ph++ {
		name := ph.String()
		if name == "" || name == "unknown" {
			t.Errorf("phase %d has no name", ph)
		}
		if seen[name] {
			t.Errorf("duplicate phase name %q", name)
		}
		seen[name] = true
	}
	if Phase(200).String() != "unknown" {
		t.Error("out-of-range phase should stringify as unknown")
	}
}
