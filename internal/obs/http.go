package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sync"

	"sasgd/internal/obs/metrics"
)

// Live debug endpoint (-debug-addr): a plain net/http server exposing
//
//	/debug/vars  — standard expvar (plus the "sasgd" var below)
//	/debug/obs   — JSON snapshot: per-track per-phase live aggregates
//	               (count, total ns, mean ns) and the registered comm
//	               stats source
//
// The snapshot reads only the tracks' atomic aggregates and the stats
// source's own atomics, so it is safe while the run is in flight; span
// rings (percentiles, trace export) remain end-of-run artifacts.

// LiveSnapshot is the JSON shape served at /debug/obs.
type LiveSnapshot struct {
	Tracks []LiveTrack `json:"tracks"`
	Stats  interface{} `json:"stats,omitempty"`
	// Metrics is the attached metrics registry's snapshot (SetMetrics):
	// counters, gauges, histograms, sample series and the fleet health
	// view — including each rank's simulated compute/communication
	// split, the live view of the SimComm numbers the hidden-fraction
	// analysis in internal/experiments is computed from. Omitted when no
	// registry is attached.
	Metrics *metrics.Snap `json:"metrics,omitempty"`
}

// LiveTrack is one track's live aggregate view.
type LiveTrack struct {
	Name    string      `json:"name"`
	Process string      `json:"process"`
	Spans   int         `json:"spans"`
	Dropped int         `json:"dropped"`
	Phases  []LivePhase `json:"phases"`
}

// LivePhase is one phase's live aggregate on a track.
type LivePhase struct {
	Phase   string  `json:"phase"`
	Count   int64   `json:"count"`
	TotalNs int64   `json:"total_ns"`
	MeanNs  float64 `json:"mean_ns"`
}

// Snapshot returns the live aggregate view (safe mid-run).
func (tr *Tracer) Snapshot() LiveSnapshot {
	snap := LiveSnapshot{Tracks: []LiveTrack{}}
	if tr == nil {
		return snap
	}
	for _, t := range tr.Tracks() {
		lt := LiveTrack{Name: t.name, Process: t.process, Spans: t.Len(), Dropped: t.Dropped()}
		for ph := Phase(0); ph < NumPhases; ph++ {
			c := t.agg[ph].count.Load()
			if c == 0 {
				continue
			}
			ns := t.agg[ph].ns.Load()
			lt.Phases = append(lt.Phases, LivePhase{
				Phase: ph.String(), Count: c, TotalNs: ns, MeanNs: float64(ns) / float64(c),
			})
		}
		snap.Tracks = append(snap.Tracks, lt)
	}
	snap.Stats = tr.Stats()
	snap.Metrics = tr.Metrics().Snapshot()
	return snap
}

var (
	expvarOnce sync.Once
	expvarTr   *Tracer
	expvarMu   sync.Mutex
)

// publishExpvar registers the "sasgd" expvar exactly once (expvar
// panics on duplicate names); the variable always reads the most
// recently served tracer.
func publishExpvar(tr *Tracer) {
	expvarMu.Lock()
	expvarTr = tr
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("sasgd", expvar.Func(func() interface{} {
			expvarMu.Lock()
			t := expvarTr
			expvarMu.Unlock()
			return t.Snapshot()
		}))
	})
}

// Handler returns the debug mux for the tracer (also usable under a
// caller's own server).
func (tr *Tracer) Handler() http.Handler {
	publishExpvar(tr)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(tr.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := tr.Metrics()
		if reg == nil {
			http.Error(w, "no metrics registry attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// ServeDebug starts the debug HTTP server on addr in a background
// goroutine and returns the bound address (useful with ":0"). The
// server lives for the remainder of the process; training commands use
// it for live inspection of long runs.
func (tr *Tracer) ServeDebug(addr string) (string, error) {
	if tr == nil {
		return "", fmt.Errorf("obs: ServeDebug on nil tracer")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: tr.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
