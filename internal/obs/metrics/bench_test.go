package metrics

import "testing"

// The overhead budget, in obs/bench_test.go's mold: the disabled probe
// (a nil check, paid by every instrumented hot path in every run) must
// stay at tracer parity (≈2 ns), the enabled record is a handful of
// atomics paid only under -metrics.

func BenchmarkMetricsDisabledProbe(b *testing.B) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(1)
		h.Observe(1)
	}
}

func BenchmarkMetricsEnabledCounter(b *testing.B) {
	r := New()
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkMetricsEnabledGauge(b *testing.B) {
	r := New()
	g := r.Gauge("g")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkMetricsEnabledHistogram(b *testing.B) {
	r := New()
	h := r.Histogram("h", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e6)
	}
}

func BenchmarkMetricsEnabledRing(b *testing.B) {
	r := New()
	s := r.Ring("s", 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.RecordAt(int64(i), float64(i))
	}
}

func BenchmarkFleetIngest(b *testing.B) {
	r := New()
	const p = 8
	f := NewFleet(r, p)
	buf := FrameBuf(p)
	for rank := 0; rank < p; rank++ {
		Frame{Rank: rank, Live: true, T: 4, SimCompute: 0.1}.Encode(buf)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Ingest(int64(i), buf)
	}
}
