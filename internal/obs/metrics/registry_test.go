package metrics

import (
	"strings"
	"sync"
	"testing"
)

// The disabled path is the contract every instrumented hot path relies
// on: every method of every instrument must be a safe no-op on nil,
// with zero allocations (the AllocsPerRun pin scripts/check.sh runs).
func TestNilRegistryIsSafeAndFree(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	ring := r.Ring("s", 0)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.Inc()
		g.Set(1)
		g.SetInt(2)
		h.Observe(3)
		h.EndNs(h.Begin())
		ring.Record(4)
		ring.RecordAt(0, 5)
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics path allocates %.1f per round, want 0", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || ring.Len() != 0 {
		t.Fatal("nil instruments reported non-zero state")
	}
	if _, _, ok := ring.Last(); ok {
		t.Fatal("nil ring reported a sample")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry returned a snapshot")
	}
	r.Emit(Event{Type: EventBoundary})
	var f *Fleet
	f.Ingest(0, nil)
	if f.Snapshot() != nil || f.Anomalies() != nil || f.Detector() != nil {
		t.Fatal("nil fleet returned state")
	}
}

// The enabled record path must also stay alloc-free: counters, gauges
// and histograms are plain atomics, the ring writes preallocated slots.
func TestEnabledRecordIsAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	ring := r.Ring("s", 64)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(2.5)
		h.Observe(1e6)
		ring.Record(1)
	})
	if allocs != 0 {
		t.Fatalf("enabled metrics record allocates %.1f per round, want 0", allocs)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("reqs", "rank", "3")
	c.Add(41)
	c.Inc()
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	if c2 := r.Counter("reqs", "rank", "3"); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	if c3 := r.Counter("reqs", "rank", "4"); c3 == c {
		t.Fatal("different labels returned the same counter")
	}
	g := r.Gauge("temp")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("gauge = %g, want 3.5", g.Value())
	}
	g.SetInt(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %g, want 7", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 5565 {
		t.Fatalf("sum = %g, want 5565", h.Sum())
	}
	want := []int64{2, 1, 1, 1} // ≤10: {5,10}; ≤100: {50}; ≤1000: {500}; +Inf: {5000}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestSampleRingStampsAndWrap(t *testing.T) {
	r := New()
	now := int64(0)
	r.nowFn = func() int64 { now += 10; return now }
	ring := r.Ring("drift", 4)
	for i := 0; i < 6; i++ {
		ring.Record(float64(i))
	}
	if ring.Len() != 6 {
		t.Fatalf("len = %d, want 6", ring.Len())
	}
	stamps, vals := ring.Samples()
	if len(vals) != 4 {
		t.Fatalf("retained %d samples, want 4", len(vals))
	}
	// Oldest-first after the wrap: samples 2..5 at stamps 30..60.
	for i := range vals {
		if vals[i] != float64(i+2) || stamps[i] != int64(30+10*i) {
			t.Fatalf("sample %d = (%d, %g), want (%d, %g)", i, stamps[i], vals[i], 30+10*i, float64(i+2))
		}
		if i > 0 && stamps[i] <= stamps[i-1] {
			t.Fatalf("stamps not monotonic: %v", stamps)
		}
	}
	if st, v, ok := ring.Last(); !ok || v != 5 || st != 60 {
		t.Fatalf("last = (%d, %g, %v), want (60, 5, true)", st, v, ok)
	}
}

// Concurrent registration and recording from many goroutines: the
// race-detector leg in scripts/check.sh runs this with -race. Every
// goroutine must get the same instrument for the same name and no
// update may be lost.
func TestConcurrentRegistryWrites(t *testing.T) {
	r := New()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("shared_total")
			own := r.Counter("rank_total", "rank", string(rune('0'+g)))
			h := r.Histogram("shared_hist", nil)
			gauge := r.Gauge("shared_gauge")
			for i := 0; i < perG; i++ {
				c.Inc()
				own.Inc()
				h.Observe(float64(i))
				gauge.Set(float64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != goroutines*perG {
		t.Fatalf("shared counter = %d, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		if got := r.Counter("rank_total", "rank", string(rune('0'+g))).Value(); got != perG {
			t.Fatalf("rank %d counter = %d, want %d", g, got, perG)
		}
	}
	if got := r.Histogram("shared_hist", nil).Count(); got != goroutines*perG {
		t.Fatalf("hist count = %d, want %d", got, goroutines*perG)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("sasgd_boundaries_total").Add(3)
	r.Gauge("sasgd_drift_rms", "rank", "0").Set(0.25)
	h := r.Histogram("sasgd_fwd_ns", []float64{100, 200})
	h.Observe(50)
	h.Observe(150)
	h.Observe(500)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sasgd_boundaries_total counter\n",
		"sasgd_boundaries_total 3\n",
		"# TYPE sasgd_drift_rms gauge\n",
		`sasgd_drift_rms{rank="0"} 0.25` + "\n",
		"# TYPE sasgd_fwd_ns histogram\n",
		`sasgd_fwd_ns_bucket{le="100"} 1` + "\n",
		`sasgd_fwd_ns_bucket{le="200"} 2` + "\n",
		`sasgd_fwd_ns_bucket{le="+Inf"} 3` + "\n",
		"sasgd_fwd_ns_sum 700\n",
		"sasgd_fwd_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotShape(t *testing.T) {
	r := New()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(1.5)
	r.Ring("s", 8).Record(9)
	s := r.Snapshot()
	if s.Counters["c"] != 2 || s.Gauges["g"] != 1.5 {
		t.Fatalf("snapshot = %+v", s)
	}
	ss, ok := s.Series["s"]
	if !ok || ss.Len != 1 || len(ss.Values) != 1 || ss.Values[0] != 9 {
		t.Fatalf("series snapshot = %+v", ss)
	}
}
