package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Exporters: the Prometheus text exposition (version 0.0.4 — what a
// scrape of /debug/metrics returns) and the JSON snapshot embedded in
// the /debug/obs live view. Both read only atomics (plus the fleet
// mutex), so they are safe while the run is in flight. Output is
// sorted by series name, so scrapes and snapshots are deterministic.

// WritePrometheus writes every instrument in the text exposition
// format. Nil-safe: a nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	cs, gs, hs, _ := r.snapshotLists()
	var b strings.Builder
	lastType := ""
	typeLine := func(name, kind string) {
		if name != lastType {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
			lastType = name
		}
	}
	for _, c := range cs {
		typeLine(c.name, "counter")
		fmt.Fprintf(&b, "%s %d\n", c.full, c.Value())
	}
	for _, g := range gs {
		typeLine(g.name, "gauge")
		fmt.Fprintf(&b, "%s %s\n", g.full, formatFloat(g.Value()))
	}
	for _, h := range hs {
		typeLine(h.name, "histogram")
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			fmt.Fprintf(&b, "%s %d\n",
				withLabel(h.name, h.labels, "le", formatFloat(bound)), cum)
		}
		cum += h.buckets[len(h.bounds)].Load()
		fmt.Fprintf(&b, "%s %d\n", withLabel(h.name, h.labels, "le", "+Inf"), cum)
		fmt.Fprintf(&b, "%s %s\n", fullName(h.name+"_sum", h.labels), formatFloat(h.Sum()))
		fmt.Fprintf(&b, "%s %d\n", fullName(h.name+"_count", h.labels), h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// withLabel renders name{labels...,k="v"} with one extra label pair
// (the histogram bucket's le).
func withLabel(name string, kv []string, k, v string) string {
	all := make([]string, 0, len(kv)+2)
	all = append(all, kv...)
	if len(all)%2 == 1 {
		all = all[:len(all)-1]
	}
	all = append(all, k, v)
	return fmt.Sprintf("%s_bucket%s", name, fullName("", all))
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snap is the registry's JSON snapshot shape (served inside the
// /debug/obs live view and by the fleet summary printers).
type Snap struct {
	Counters   map[string]int64      `json:"counters,omitempty"`
	Gauges     map[string]float64    `json:"gauges,omitempty"`
	Histograms map[string]HistSnap   `json:"histograms,omitempty"`
	Series     map[string]SeriesSnap `json:"series,omitempty"`
	Fleet      *FleetSnap            `json:"fleet,omitempty"`
	Events     int64                 `json:"events,omitempty"`
}

// HistSnap is one histogram's snapshot.
type HistSnap struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // per-bucket (not cumulative); last is +Inf overflow
}

// SeriesSnap is one sample ring's snapshot: the retained window.
type SeriesSnap struct {
	Len    int       `json:"len"` // samples ever recorded
	Stamps []int64   `json:"stamps"`
	Values []float64 `json:"values"`
}

// Snapshot returns the live JSON view (nil on a nil registry).
func (r *Registry) Snapshot() *Snap {
	if r == nil {
		return nil
	}
	cs, gs, hs, rs := r.snapshotLists()
	s := &Snap{}
	if len(cs) > 0 {
		s.Counters = make(map[string]int64, len(cs))
		for _, c := range cs {
			s.Counters[c.full] = c.Value()
		}
	}
	if len(gs) > 0 {
		s.Gauges = make(map[string]float64, len(gs))
		for _, g := range gs {
			s.Gauges[g.full] = g.Value()
		}
	}
	if len(hs) > 0 {
		s.Histograms = make(map[string]HistSnap, len(hs))
		for _, h := range hs {
			hb := HistSnap{
				Count:  h.Count(),
				Sum:    h.Sum(),
				Bounds: append([]float64(nil), h.bounds...),
			}
			hb.Buckets = make([]int64, len(h.buckets))
			for i := range h.buckets {
				hb.Buckets[i] = h.buckets[i].Load()
			}
			s.Histograms[h.full] = hb
		}
	}
	if len(rs) > 0 {
		s.Series = make(map[string]SeriesSnap, len(rs))
		for _, ring := range rs {
			stamps, vals := ring.Samples()
			s.Series[ring.full] = SeriesSnap{Len: ring.Len(), Stamps: stamps, Values: vals}
		}
	}
	s.Fleet = r.Fleet().Snapshot()
	s.Events = r.Events().Count()
	return s
}
