package metrics

import "math"

// The straggler/anomaly detector: a leave-one-out z-score band over the
// fleet's per-rank compute signal. At each boundary, rank i's signal is
// compared against the mean and standard deviation of its LIVE peers
// (everyone but i): z_i = (v_i − mean_peers) / max(std_peers, floor).
// Leaving i out matters at small fleets — with p = 8 and one 4×
// straggler, a plain z-score dilutes the mean and inflates the std with
// the outlier itself and never clears z = 3; the leave-one-out form
// compares the straggler against its seven healthy peers directly.
//
// The std floor guards the degenerate (and, under the deterministic
// fabric simulator, common) case of identical peers: std 0 would make
// any difference infinitely significant, so the floor is EpsFrac of the
// peer mean — a rank must run at least ~Z·EpsFrac slower than its peers
// to score, i.e. ~15% at the defaults. A rank is flagged only after
// Streak consecutive out-of-band boundaries, so one slow GC pause or
// page fault does not page anyone; the flag is sticky for the run (the
// signal a transport backend or serving fleet would page on).

// Detector defaults.
const (
	// DefaultZ is the z-score band: |z| beyond it is out of band.
	DefaultZ = 3.0
	// DefaultStreak is how many consecutive out-of-band boundaries flag
	// a rank.
	DefaultStreak = 3
	// DefaultEpsFrac floors the peer std at this fraction of the peer
	// mean.
	DefaultEpsFrac = 0.05
)

// Detector holds the per-rank streaks and flags. Not concurrency-safe;
// the Fleet drives it under its own mutex.
type Detector struct {
	z       float64
	streakN int
	epsFrac float64

	streak  []int
	flagged []bool
	zs      []float64
}

// NewDetector builds a detector for p ranks. Zero thresholds select the
// defaults.
func NewDetector(p int, z float64, streak int, epsFrac float64) *Detector {
	if z <= 0 {
		z = DefaultZ
	}
	if streak <= 0 {
		streak = DefaultStreak
	}
	if epsFrac <= 0 {
		epsFrac = DefaultEpsFrac
	}
	return &Detector{
		z: z, streakN: streak, epsFrac: epsFrac,
		streak:  make([]int, p),
		flagged: make([]bool, p),
		zs:      make([]float64, p),
	}
}

// SetBand overrides the thresholds (zero keeps the current value).
func (d *Detector) SetBand(z float64, streak int, epsFrac float64) {
	if d == nil {
		return
	}
	if z > 0 {
		d.z = z
	}
	if streak > 0 {
		d.streakN = streak
	}
	if epsFrac > 0 {
		d.epsFrac = epsFrac
	}
}

// Observe scores one boundary's per-rank signal (vals[r] compared among
// ranks with live[r] true) and returns the ranks newly flagged this
// boundary, ascending. Dead ranks keep their flags but stop
// accumulating streaks.
func (d *Detector) Observe(vals []float64, live []bool) (newlyFlagged []int) {
	if d == nil {
		return nil
	}
	n := len(d.streak)
	// Totals over the live set, so each rank's peer stats are one
	// subtraction away (leave-one-out without a second pass).
	liveN := 0
	sum, sum2 := 0.0, 0.0
	for r := 0; r < n && r < len(vals); r++ {
		if r < len(live) && live[r] {
			liveN++
			sum += vals[r]
			sum2 += vals[r] * vals[r]
		}
	}
	for r := 0; r < n && r < len(vals); r++ {
		d.zs[r] = 0
		if r >= len(live) || !live[r] {
			d.streak[r] = 0
			continue
		}
		peers := liveN - 1
		if peers < 2 {
			// One or two live ranks: no peer distribution to test against.
			d.streak[r] = 0
			continue
		}
		v := vals[r]
		pm := (sum - v) / float64(peers)
		pvar := (sum2-v*v)/float64(peers) - pm*pm
		if pvar < 0 {
			pvar = 0
		}
		std := math.Sqrt(pvar)
		if floor := d.epsFrac * math.Abs(pm); std < floor {
			std = floor
		}
		if std == 0 {
			// All-zero peers (e.g. wall probes disabled): nothing to score.
			d.streak[r] = 0
			continue
		}
		z := (v - pm) / std
		d.zs[r] = z
		if math.Abs(z) > d.z {
			d.streak[r]++
			if d.streak[r] >= d.streakN && !d.flagged[r] {
				d.flagged[r] = true
				newlyFlagged = append(newlyFlagged, r)
			}
		} else {
			d.streak[r] = 0
		}
	}
	return newlyFlagged
}

// Z returns rank r's latest z-score (0 on nil or out of range).
func (d *Detector) Z(r int) float64 {
	if d == nil || r < 0 || r >= len(d.zs) {
		return 0
	}
	return d.zs[r]
}

// Flagged reports whether rank r is flagged (false on nil / range).
func (d *Detector) Flagged(r int) bool {
	if d == nil || r < 0 || r >= len(d.flagged) {
		return false
	}
	return d.flagged[r]
}

// FlaggedRanks returns every flagged rank, ascending.
func (d *Detector) FlaggedRanks() []int {
	if d == nil {
		return nil
	}
	var out []int
	for r, f := range d.flagged {
		if f {
			out = append(out, r)
		}
	}
	return out
}
