package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// The NDJSON structured event log: one JSON object per line for the
// run's discrete state changes — aggregation boundaries, T-scheduler
// moves, membership changes, fault-counter movement, and anomaly flags
// — the stream a log pipeline tails while the gauges above carry the
// continuous signals. Events are emitted at boundary cadence by the
// boundary's virtual rank 0 only, so the mutex below never sits on a
// hot path.

// Event types.
const (
	EventBoundary   = "boundary"   // an aggregation boundary completed
	EventTChange    = "t_change"   // the effective communication period moved
	EventMembership = "membership" // the live rank set changed
	EventFault      = "fault"      // fault counters moved (drops/retries/evictions/crashes)
	EventAnomaly    = "anomaly"    // the straggler detector flagged a rank
)

// Event is one NDJSON record. TNs is ns on the registry's monotonic
// clock (Registry.Emit stamps it when zero).
type Event struct {
	TNs      int64   `json:"t_ns"`
	Type     string  `json:"type"`
	Rank     int     `json:"rank,omitempty"`
	Boundary int     `json:"boundary,omitempty"`
	T        int     `json:"t,omitempty"`
	Live     int     `json:"live,omitempty"`
	Value    float64 `json:"value,omitempty"`
	Note     string  `json:"note,omitempty"`
}

// EventLog writes events as NDJSON to a writer. All methods are
// nil-safe; writes are serialized by a mutex (boundary cadence only).
type EventLog struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   atomic.Int64
	err atomic.Pointer[error]
}

// NewEventLog returns an event log writing NDJSON to w.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{enc: json.NewEncoder(w)}
}

// Emit writes one event line (no-op on nil). The first write error is
// retained (Err) and later emits are dropped.
func (l *EventLog) Emit(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err.Load() != nil {
		return
	}
	if err := l.enc.Encode(ev); err != nil {
		l.err.Store(&err)
		return
	}
	l.n.Add(1)
}

// Count returns the number of events written (0 on nil).
func (l *EventLog) Count() int64 {
	if l == nil {
		return 0
	}
	return l.n.Load()
}

// Err returns the first write error, if any (nil on nil).
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	if p := l.err.Load(); p != nil {
		return *p
	}
	return nil
}
