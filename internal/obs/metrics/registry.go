// Package metrics is the run-time telemetry plane: a lock-free,
// zero-alloc-on-hot-path time-series registry that core, comm and nn
// record live signals into — counters, gauges, fixed-bucket histograms
// and ring-buffered samples with monotonic stamps — plus the fleet
// aggregation (frame.go), the straggler/anomaly detector (anomaly.go),
// and the exporters (Prometheus text + JSON snapshot in export.go, the
// NDJSON structured event log in events.go).
//
// The package follows the obs tracer's design contract exactly:
//
//  1. The disabled path is provably free. Every recording method is
//     defined on a nil-able pointer and begins with a nil check, so an
//     instrumented hot path with metrics off (the default) pays one
//     predicted branch per probe and zero allocations. A nil *Registry
//     hands out nil instruments, so call sites wire probes
//     unconditionally.
//  2. The enabled path stays off the heap and off shared locks.
//     Registration is mutexed (it happens once at run setup, possibly
//     concurrently from the learner goroutines — registration is
//     idempotent by full name, every rank gets the same instrument);
//     recording is plain atomics on preallocated state. SampleRing
//     additionally follows the Track ring discipline: a single writer,
//     with the count published atomically after the slot write so the
//     live endpoint can read a consistent prefix mid-run.
//  3. Snapshots are safe at any time (atomics only) and exact once the
//     writers have quiesced.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry owns a run's instruments and the shared monotonic epoch.
// The zero value is not usable; call New. A nil *Registry is the
// disabled telemetry plane: every method is a nil-check no-op and every
// instrument it hands out is nil (itself a no-op recorder).
type Registry struct {
	epoch time.Time
	nowFn func() int64 // test hook; nil = monotonic clock

	mu       sync.Mutex
	byKey    map[string]interface{} // full name -> instrument (idempotent registration)
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	rings    []*SampleRing

	events atomic.Pointer[EventLog]
	fleet  atomic.Pointer[Fleet]
}

// New returns an enabled registry with its epoch at now.
func New() *Registry {
	return &Registry{epoch: time.Now(), byKey: make(map[string]interface{})}
}

// Enabled reports whether the registry records anything (false on nil).
func (r *Registry) Enabled() bool { return r != nil }

// Now reads the registry's monotonic clock in ns since its epoch (0 on
// nil): the stamp base for SampleRing entries and duration probes.
func (r *Registry) Now() int64 {
	if r == nil {
		return 0
	}
	return r.now()
}

func (r *Registry) now() int64 {
	if r.nowFn != nil {
		return r.nowFn()
	}
	return int64(time.Since(r.epoch))
}

// fullName renders a Prometheus-style series name: name{k="v",...}.
// kv is alternating key, value; an odd tail is ignored.
func fullName(name string, kv []string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// register interns an instrument under its full name. make is called
// under the registry lock only when the name is new; an existing entry
// of a different kind panics (a metric name identifies one kind).
func register[T any](r *Registry, key string, make func() *T, keep func(*T)) *T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.byKey[key]; ok {
		t, ok := got.(*T)
		if !ok {
			panic(fmt.Sprintf("metrics: %q re-registered as a different kind", key))
		}
		return t
	}
	t := make()
	r.byKey[key] = t
	keep(t)
	return t
}

// ---------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing count. All methods are nil-safe
// single atomics.
type Counter struct {
	v      atomic.Int64
	name   string
	labels []string
	full   string
}

// Counter registers (or returns the existing) counter under name with
// the given alternating label key/value pairs. Nil-safe: a nil registry
// returns a nil counter.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	key := fullName(name, kv)
	return register(r, key, func() *Counter {
		return &Counter{name: name, labels: kv, full: key}
	}, func(c *Counter) { r.counters = append(r.counters, c) })
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// ---------------------------------------------------------------------
// Gauge

// Gauge is a last-value-wins float64, stored as bits in a uint64 so
// reads and writes are single atomics.
type Gauge struct {
	bits   atomic.Uint64
	name   string
	labels []string
	full   string
}

// Gauge registers (or returns the existing) gauge. Nil-safe.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := fullName(name, kv)
	return register(r, key, func() *Gauge {
		return &Gauge{name: name, labels: kv, full: key}
	}, func(g *Gauge) { r.gauges = append(r.gauges, g) })
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value (no-op on nil).
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// ---------------------------------------------------------------------
// Histogram

// Histogram is a fixed-bound bucket histogram (Prometheus classic
// style: counts are per-bucket here and cumulated at export). Bounds
// are set at registration and never change, so Observe is a linear
// scan over a handful of bounds plus three atomics — no locks, no
// allocation. The sum is float64 bits updated by CAS; boundary-cadence
// and per-step recording never contend enough for the loop to matter.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last = +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64
	reg     *Registry
	name    string
	labels  []string
	full    string
}

// DurationBounds are the default histogram bounds for ns-scale phase
// timings: 1µs to ~10s in decade-and-a-half steps.
var DurationBounds = []float64{
	1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10,
}

// Histogram registers (or returns the existing) histogram with the
// given ascending bucket bounds (nil selects DurationBounds). Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	key := fullName(name, kv)
	return register(r, key, func() *Histogram {
		return &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
			reg:     r, name: name, labels: kv, full: key,
		}
	}, func(h *Histogram) { r.hists = append(r.hists, h) })
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Begin reads the registry clock for a duration observation (0 on nil).
func (h *Histogram) Begin() int64 {
	if h == nil {
		return 0
	}
	return h.reg.now()
}

// EndNs observes the ns elapsed since a Begin stamp (no-op on nil).
func (h *Histogram) EndNs(begin int64) {
	if h == nil {
		return
	}
	h.Observe(float64(h.reg.now() - begin))
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ---------------------------------------------------------------------
// SampleRing

// SampleRing is a single-writer time series: a preallocated ring of
// (monotonic stamp, value) samples whose count is published atomically
// after each slot write, exactly the Track ring discipline. Snapshots
// taken mid-run see a consistent prefix; the full ring is exact once
// the writer has quiesced.
type SampleRing struct {
	stamps []int64
	vals   []float64
	n      atomic.Int64
	reg    *Registry
	name   string
	labels []string
	full   string
}

// DefaultRingSamples is the default SampleRing capacity.
const DefaultRingSamples = 1024

// Ring registers (or returns the existing) sample ring with the given
// capacity (≤ 0 selects DefaultRingSamples). Nil-safe.
func (r *Registry) Ring(name string, capacity int, kv ...string) *SampleRing {
	if r == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = DefaultRingSamples
	}
	key := fullName(name, kv)
	return register(r, key, func() *SampleRing {
		return &SampleRing{
			stamps: make([]int64, capacity),
			vals:   make([]float64, capacity),
			reg:    r, name: name, labels: kv, full: key,
		}
	}, func(s *SampleRing) { r.rings = append(r.rings, s) })
}

// Record appends a sample stamped with the registry clock (no-op on
// nil). Single writer only, like Track.record.
func (s *SampleRing) Record(v float64) {
	if s == nil {
		return
	}
	s.RecordAt(s.reg.now(), v)
}

// RecordAt appends a sample with an explicit stamp (no-op on nil).
func (s *SampleRing) RecordAt(stamp int64, v float64) {
	if s == nil {
		return
	}
	i := s.n.Load()
	slot := i % int64(len(s.vals))
	s.stamps[slot] = stamp
	s.vals[slot] = v
	// Publish after the slot write so concurrent snapshot readers never
	// observe slot i half-written.
	s.n.Store(i + 1)
}

// Len returns the number of samples ever recorded (0 on nil).
func (s *SampleRing) Len() int {
	if s == nil {
		return 0
	}
	return int(s.n.Load())
}

// Last returns the most recent sample (zero, false when empty or nil).
func (s *SampleRing) Last() (stamp int64, v float64, ok bool) {
	if s == nil {
		return 0, 0, false
	}
	n := s.n.Load()
	if n == 0 {
		return 0, 0, false
	}
	slot := (n - 1) % int64(len(s.vals))
	return s.stamps[slot], s.vals[slot], true
}

// Samples returns the retained samples oldest-first. Mid-run it returns
// the published prefix; exact once the writer has quiesced.
func (s *SampleRing) Samples() (stamps []int64, vals []float64) {
	if s == nil {
		return nil, nil
	}
	n := s.n.Load()
	c := int64(len(s.vals))
	if n <= c {
		return append([]int64(nil), s.stamps[:n]...), append([]float64(nil), s.vals[:n]...)
	}
	head := n % c
	stamps = make([]int64, c)
	vals = make([]float64, c)
	copy(stamps, s.stamps[head:])
	copy(stamps[c-head:], s.stamps[:head])
	copy(vals, s.vals[head:])
	copy(vals[c-head:], s.vals[:head])
	return stamps, vals
}

// snapshotLists returns stable copies of the instrument lists, sorted
// by full name so exports are deterministic.
func (r *Registry) snapshotLists() (cs []*Counter, gs []*Gauge, hs []*Histogram, rs []*SampleRing) {
	r.mu.Lock()
	cs = append(cs, r.counters...)
	gs = append(gs, r.gauges...)
	hs = append(hs, r.hists...)
	rs = append(rs, r.rings...)
	r.mu.Unlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].full < cs[j].full })
	sort.Slice(gs, func(i, j int) bool { return gs[i].full < gs[j].full })
	sort.Slice(hs, func(i, j int) bool { return hs[i].full < hs[j].full })
	sort.Slice(rs, func(i, j int) bool { return rs[i].full < rs[j].full })
	return
}

// SetEvents attaches an NDJSON event sink (nil detaches). Nil-safe.
func (r *Registry) SetEvents(l *EventLog) {
	if r == nil {
		return
	}
	if l == nil {
		r.events.Store(nil)
		return
	}
	r.events.Store(l)
}

// Events returns the attached event sink (nil when none or on nil).
func (r *Registry) Events() *EventLog {
	if r == nil {
		return nil
	}
	return r.events.Load()
}

// Emit stamps ev with the registry clock (when TNs is zero) and writes
// it to the attached event sink. No-op on nil or without a sink.
func (r *Registry) Emit(ev Event) {
	if r == nil {
		return
	}
	l := r.events.Load()
	if l == nil {
		return
	}
	if ev.TNs == 0 {
		ev.TNs = r.now()
	}
	l.Emit(ev)
}

// SetFleet attaches the fleet view (frame.go). Nil-safe.
func (r *Registry) SetFleet(f *Fleet) {
	if r == nil || f == nil {
		return
	}
	r.fleet.Store(f)
}

// Fleet returns the attached fleet view (nil when none or on nil).
func (r *Registry) Fleet() *Fleet {
	if r == nil {
		return nil
	}
	return r.fleet.Load()
}
