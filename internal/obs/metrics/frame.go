package metrics

import (
	"math"
	"sync"
)

// The fleet metrics frame: a fixed FrameWords-word-per-rank float64
// block that piggybacks on the training run's aggregation boundaries.
// Each rank zeroes a p×FrameWords buffer, writes its own slot, and the
// group sums the buffer with the same tree allreduce the gradients use
// — summing disjoint slots is concatenation, so after the collective
// every rank holds the whole fleet's latest health block and the
// current virtual rank 0 ingests it into the shared Fleet view. The
// exchange rides the existing Group (pooled buffers, fault-aware
// membership), adds a fixed, traffic-pinned word count per boundary,
// and never touches gradient values, so enabling metrics leaves
// training bitwise identical.
//
// A dead or evicted rank simply stops contributing: its slot stays
// zero, its Live word reads 0, and the fleet view carries it as
// not-live — no sentinel protocol needed.

// Frame field offsets within one rank's slot.
const (
	frameRank       = iota // run-physical rank id
	frameLive              // 1 when the rank filled its slot this boundary
	frameBoundary          // boundaries this rank has completed
	frameT                 // communication period in effect after this boundary
	frameDriftSq           // ‖x_i − ref‖² over the interval (pre-reset)
	frameComputeNs         // wall ns spent in local compute this interval
	frameWallNs            // wall ns of the whole interval
	frameSimCompute        // simulated compute seconds this interval
	frameSimComm           // simulated communication seconds this interval
	frameRatio             // working top-k fraction (0 when not compressing)
	frameSent2             // cumulative codec ‖sent‖² (error-feedback ledger)
	frameResid2            // cumulative codec ‖residual‖²

	// FrameWords is the per-rank frame width in float64 words.
	FrameWords
)

// FrameBuf returns a zeroed fleet buffer for p ranks.
func FrameBuf(p int) []float64 { return make([]float64, p*FrameWords) }

// FrameTrafficWords returns the words a binomial-tree allreduce of the
// fleet buffer moves per boundary at live learner count p: the reduce
// leg and the broadcast leg each carry p−1 messages of p·FrameWords
// words. This is the whole wire cost of the telemetry plane, pinned by
// the traffic tests.
func FrameTrafficWords(p int) int64 {
	return int64(2*(p-1)) * int64(p) * FrameWords
}

// Frame is one rank's decoded health block.
type Frame struct {
	Rank       int     `json:"rank"`
	Live       bool    `json:"live"`
	Boundary   int     `json:"boundary"`
	T          int     `json:"t"`
	DriftSq    float64 `json:"drift_sq"`
	ComputeNs  float64 `json:"compute_ns"`
	WallNs     float64 `json:"wall_ns"`
	SimCompute float64 `json:"sim_compute_s"`
	SimComm    float64 `json:"sim_comm_s"`
	Ratio      float64 `json:"ratio"`
	Sent2      float64 `json:"sent2"`
	Resid2     float64 `json:"resid2"`
}

// Encode writes f into its slot of a fleet buffer.
func (f Frame) Encode(buf []float64) {
	s := buf[f.Rank*FrameWords : (f.Rank+1)*FrameWords]
	s[frameRank] = float64(f.Rank)
	s[frameLive] = 0
	if f.Live {
		s[frameLive] = 1
	}
	s[frameBoundary] = float64(f.Boundary)
	s[frameT] = float64(f.T)
	s[frameDriftSq] = f.DriftSq
	s[frameComputeNs] = f.ComputeNs
	s[frameWallNs] = f.WallNs
	s[frameSimCompute] = f.SimCompute
	s[frameSimComm] = f.SimComm
	s[frameRatio] = f.Ratio
	s[frameSent2] = f.Sent2
	s[frameResid2] = f.Resid2
}

// DecodeFrame reads rank r's slot out of a fleet buffer.
func DecodeFrame(buf []float64, r int) Frame {
	s := buf[r*FrameWords : (r+1)*FrameWords]
	return Frame{
		Rank:       r,
		Live:       s[frameLive] != 0,
		Boundary:   int(s[frameBoundary]),
		T:          int(s[frameT]),
		DriftSq:    s[frameDriftSq],
		ComputeNs:  s[frameComputeNs],
		WallNs:     s[frameWallNs],
		SimCompute: s[frameSimCompute],
		SimComm:    s[frameSimComm],
		Ratio:      s[frameRatio],
		Sent2:      s[frameSent2],
		Resid2:     s[frameResid2],
	}
}

// RankHealth is the fleet view's per-rank state: the latest frame plus
// cumulative totals and the anomaly detector's verdict.
type RankHealth struct {
	Frame
	TotComputeNs  float64 `json:"tot_compute_ns"`
	TotWallNs     float64 `json:"tot_wall_ns"`
	TotSimCompute float64 `json:"tot_sim_compute_s"`
	TotSimComm    float64 `json:"tot_sim_comm_s"`
	Z             float64 `json:"z"`       // latest leave-one-out z-score of the compute signal
	Flagged       bool    `json:"flagged"` // straggler/anomaly verdict (sticky)
}

// Fleet is the cross-rank health view rank 0 maintains: the latest
// decoded frame per rank, cumulative per-rank totals, fleet-level
// gauges in the registry, and the straggler detector. Ingest runs at
// boundary cadence under a mutex — the hot path never touches it.
type Fleet struct {
	reg *Registry
	p   int
	det *Detector

	gLive     *Gauge
	gT        *Gauge
	gDrift    *Gauge
	gBoundary *Gauge
	gRatio    *Gauge
	gCaptured *Gauge
	cAnomaly  *Counter
	rDrift    *SampleRing

	mu         sync.Mutex
	boundaries int64
	lastLive   int
	lastT      int
	ranks      []RankHealth
	sig        []float64 // detector scratch: per-rank compute signal
	liveMask   []bool
}

// NewFleet builds the fleet view for p ranks, registers its gauges on
// reg, and attaches itself as reg's fleet. Nil-safe: a nil registry
// returns a nil fleet, whose methods are no-ops.
func NewFleet(reg *Registry, p int) *Fleet {
	if reg == nil {
		return nil
	}
	f := &Fleet{
		reg: reg,
		p:   p,
		det: NewDetector(p, 0, 0, 0),

		gLive:     reg.Gauge("sasgd_fleet_live_ranks"),
		gT:        reg.Gauge("sasgd_fleet_effective_t"),
		gDrift:    reg.Gauge("sasgd_fleet_drift_rms"),
		gBoundary: reg.Gauge("sasgd_fleet_boundaries"),
		gRatio:    reg.Gauge("sasgd_fleet_compress_ratio"),
		gCaptured: reg.Gauge("sasgd_fleet_captured_mass"),
		cAnomaly:  reg.Counter("sasgd_fleet_anomalies_total"),
		rDrift:    reg.Ring("sasgd_fleet_drift_rms_series", 0),

		ranks:    make([]RankHealth, p),
		sig:      make([]float64, p),
		liveMask: make([]bool, p),
	}
	for r := range f.ranks {
		f.ranks[r].Rank = r
	}
	reg.SetFleet(f)
	return f
}

// Detector returns the fleet's straggler detector (nil on nil fleet),
// so callers can tune thresholds before the run starts.
func (f *Fleet) Detector() *Detector {
	if f == nil {
		return nil
	}
	return f.det
}

// Ingest decodes one boundary's summed fleet buffer, updates the
// per-rank view, the fleet gauges and the drift series, runs the
// straggler detector, and emits boundary / t_change / membership /
// anomaly events. Called by the boundary's virtual rank 0 only.
func (f *Fleet) Ingest(stamp int64, buf []float64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.boundaries++

	live, t := 0, 0
	driftSq, refBoundary := 0.0, 0
	ratio, sent2, resid2 := 0.0, 0.0, 0.0
	for r := 0; r < f.p && (r+1)*FrameWords <= len(buf); r++ {
		fr := DecodeFrame(buf, r)
		h := &f.ranks[r]
		h.Frame = fr
		f.liveMask[r] = fr.Live
		f.sig[r] = 0
		if !fr.Live {
			continue
		}
		live++
		h.TotComputeNs += fr.ComputeNs
		h.TotWallNs += fr.WallNs
		h.TotSimCompute += fr.SimCompute
		h.TotSimComm += fr.SimComm
		driftSq += fr.DriftSq
		if fr.T > t {
			t = fr.T
		}
		if fr.Boundary > refBoundary {
			refBoundary = fr.Boundary
		}
		if fr.Ratio > ratio {
			ratio = fr.Ratio
		}
		sent2 += fr.Sent2
		resid2 += fr.Resid2
		// The straggler signal: simulated compute when the fabric
		// simulator priced the interval (deterministic, straggler
		// slowdowns included), wall compute otherwise.
		if fr.SimCompute > 0 {
			f.sig[r] = fr.SimCompute
		} else {
			f.sig[r] = fr.ComputeNs
		}
	}
	drift := 0.0
	if live > 0 {
		drift = math.Sqrt(driftSq / float64(live))
	}

	f.gLive.SetInt(int64(live))
	f.gT.SetInt(int64(t))
	f.gDrift.Set(drift)
	f.gBoundary.SetInt(f.boundaries)
	f.gRatio.Set(ratio)
	if tot := sent2 + resid2; tot > 0 {
		f.gCaptured.Set(sent2 / tot)
	}
	f.rDrift.RecordAt(stamp, drift)

	f.reg.Emit(Event{TNs: stamp, Type: EventBoundary, Boundary: refBoundary,
		Live: live, T: t, Value: drift})
	if f.boundaries > 1 && t != f.lastT {
		f.reg.Emit(Event{TNs: stamp, Type: EventTChange, Boundary: refBoundary,
			Live: live, T: t, Note: "adaptive/decay period moved"})
	}
	if f.boundaries > 1 && live != f.lastLive {
		f.reg.Emit(Event{TNs: stamp, Type: EventMembership, Boundary: refBoundary,
			Live: live, T: t, Note: "live set changed"})
	}
	f.lastT, f.lastLive = t, live

	newly := f.det.Observe(f.sig, f.liveMask)
	for r := range f.ranks {
		f.ranks[r].Z = f.det.Z(r)
		f.ranks[r].Flagged = f.det.Flagged(r)
	}
	for _, r := range newly {
		f.cAnomaly.Inc()
		f.reg.Emit(Event{TNs: stamp, Type: EventAnomaly, Rank: r,
			Boundary: refBoundary, Live: live, T: t,
			Value: f.det.Z(r), Note: "phase timing outside peer z-band"})
	}
}

// FleetSnap is the fleet view's JSON shape.
type FleetSnap struct {
	Boundaries int64        `json:"boundaries"`
	Live       int          `json:"live"`
	T          int          `json:"t"`
	DriftRMS   float64      `json:"drift_rms"`
	Ranks      []RankHealth `json:"ranks"`
	Anomalies  []int        `json:"anomalies"` // flagged ranks, ascending
}

// Snapshot returns the current fleet view (nil on nil fleet). Safe at
// any time — Ingest holds the same mutex.
func (f *Fleet) Snapshot() *FleetSnap {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := &FleetSnap{
		Boundaries: f.boundaries,
		Live:       f.lastLive,
		T:          f.lastT,
		DriftRMS:   f.gDrift.Value(),
		Ranks:      append([]RankHealth(nil), f.ranks...),
		Anomalies:  []int{},
	}
	for r := range f.ranks {
		if f.ranks[r].Flagged {
			s.Anomalies = append(s.Anomalies, r)
		}
	}
	return s
}

// Anomalies returns the currently flagged ranks, ascending (nil-safe).
func (f *Fleet) Anomalies() []int {
	s := f.Snapshot()
	if s == nil {
		return nil
	}
	return s.Anomalies
}
