package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestFrameEncodeDecodeRoundTrip(t *testing.T) {
	buf := FrameBuf(4)
	f := Frame{
		Rank: 2, Live: true, Boundary: 7, T: 8,
		DriftSq: 0.5, ComputeNs: 1e6, WallNs: 2e6,
		SimCompute: 0.25, SimComm: 0.125,
		Ratio: 0.05, Sent2: 3, Resid2: 1,
	}
	f.Encode(buf)
	got := DecodeFrame(buf, 2)
	if got != f {
		t.Fatalf("round trip: got %+v, want %+v", got, f)
	}
	// Other slots stay zero/not-live.
	for _, r := range []int{0, 1, 3} {
		if DecodeFrame(buf, r).Live {
			t.Fatalf("rank %d decoded live from an empty slot", r)
		}
	}
}

// Summing per-rank buffers with disjoint filled slots must equal
// concatenation — the property that lets the fleet frame ride a plain
// sum-allreduce.
func TestFrameSumIsConcatenation(t *testing.T) {
	const p = 3
	sum := FrameBuf(p)
	for r := 0; r < p; r++ {
		own := FrameBuf(p)
		Frame{Rank: r, Live: true, Boundary: 1, T: 2, DriftSq: float64(r) + 0.5}.Encode(own)
		for i := range sum {
			sum[i] += own[i]
		}
	}
	for r := 0; r < p; r++ {
		f := DecodeFrame(sum, r)
		if !f.Live || f.Rank != r || f.DriftSq != float64(r)+0.5 {
			t.Fatalf("rank %d after sum: %+v", r, f)
		}
	}
}

func TestFrameTrafficWords(t *testing.T) {
	// Tree allreduce: (p−1) reduce messages + (p−1) broadcast messages,
	// each p·FrameWords long.
	if got, want := FrameTrafficWords(8), int64(2*7*8*FrameWords); got != want {
		t.Fatalf("FrameTrafficWords(8) = %d, want %d", got, want)
	}
	if FrameTrafficWords(1) != 0 {
		t.Fatal("single rank should move no frame words")
	}
}

func TestFleetIngestAndSnapshot(t *testing.T) {
	r := New()
	var events bytes.Buffer
	r.SetEvents(NewEventLog(&events))
	const p = 4
	f := NewFleet(r, p)
	if r.Fleet() != f {
		t.Fatal("fleet not attached to registry")
	}

	buf := FrameBuf(p)
	for rank := 0; rank < p; rank++ {
		Frame{Rank: rank, Live: true, Boundary: 0, T: 4, DriftSq: 0.01,
			SimCompute: 0.1, SimComm: 0.02}.Encode(buf)
	}
	f.Ingest(100, buf)

	snap := f.Snapshot()
	if snap.Live != p || snap.T != 4 || snap.Boundaries != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	wantDrift := math.Sqrt(4 * 0.01 / 4)
	if math.Abs(snap.DriftRMS-wantDrift) > 1e-15 {
		t.Fatalf("drift rms = %g, want %g", snap.DriftRMS, wantDrift)
	}
	if len(snap.Anomalies) != 0 {
		t.Fatalf("anomalies = %v, want none", snap.Anomalies)
	}
	if got := r.Gauge("sasgd_fleet_live_ranks").Value(); got != p {
		t.Fatalf("live gauge = %g, want %d", got, p)
	}
	if got := r.Ring("sasgd_fleet_drift_rms_series", 0).Len(); got != 1 {
		t.Fatalf("drift series has %d samples, want 1", got)
	}

	// Rank 3 dies: its slot stays zero. The view loses it and a
	// membership event is emitted.
	buf2 := FrameBuf(p)
	for rank := 0; rank < p-1; rank++ {
		Frame{Rank: rank, Live: true, Boundary: 1, T: 8, DriftSq: 0.01,
			SimCompute: 0.1, SimComm: 0.02}.Encode(buf2)
	}
	f.Ingest(200, buf2)
	snap = f.Snapshot()
	if snap.Live != p-1 || snap.T != 8 {
		t.Fatalf("post-death snapshot = %+v", snap)
	}
	if snap.Ranks[3].Live {
		t.Fatal("dead rank still live in the view")
	}
	if snap.Ranks[0].TotSimCompute != 0.2 {
		t.Fatalf("cumulative sim compute = %g, want 0.2", snap.Ranks[0].TotSimCompute)
	}

	out := events.String()
	for _, want := range []string{
		`"type":"boundary"`, `"type":"t_change"`, `"type":"membership"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("event log missing %s:\n%s", want, out)
		}
	}
	// Every line must be valid JSON (the NDJSON contract).
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
	}
}

// A persistent straggler — one rank whose compute signal sits 4× above
// identical peers — must be flagged after DefaultStreak boundaries,
// with an anomaly event and counter movement; healthy peers must not.
func TestFleetFlagsStraggler(t *testing.T) {
	r := New()
	var events bytes.Buffer
	r.SetEvents(NewEventLog(&events))
	const p, slow = 8, 2
	f := NewFleet(r, p)

	for b := 0; b < DefaultStreak+1; b++ {
		buf := FrameBuf(p)
		for rank := 0; rank < p; rank++ {
			comp := 0.1
			if rank == slow {
				comp = 0.4
			}
			Frame{Rank: rank, Live: true, Boundary: b, T: 4, SimCompute: comp}.Encode(buf)
		}
		f.Ingest(int64(b), buf)
	}
	snap := f.Snapshot()
	if len(snap.Anomalies) != 1 || snap.Anomalies[0] != slow {
		t.Fatalf("anomalies = %v, want [%d]", snap.Anomalies, slow)
	}
	if !snap.Ranks[slow].Flagged || snap.Ranks[slow].Z < DefaultZ {
		t.Fatalf("straggler rank health = %+v", snap.Ranks[slow])
	}
	for rank := 0; rank < p; rank++ {
		if rank != slow && snap.Ranks[rank].Flagged {
			t.Fatalf("healthy rank %d flagged", rank)
		}
	}
	if got := r.Counter("sasgd_fleet_anomalies_total").Value(); got != 1 {
		t.Fatalf("anomaly counter = %d, want 1", got)
	}
	if !strings.Contains(events.String(), `"type":"anomaly"`) {
		t.Fatalf("no anomaly event:\n%s", events.String())
	}
}

func TestDetectorLeaveOneOut(t *testing.T) {
	d := NewDetector(8, 0, 1, 0) // flag on the first out-of-band boundary
	vals := []float64{1, 1, 1, 1, 4, 1, 1, 1}
	live := []bool{true, true, true, true, true, true, true, true}
	newly := d.Observe(vals, live)
	if len(newly) != 1 || newly[0] != 4 {
		t.Fatalf("newly flagged = %v, want [4]", newly)
	}
	// Identical peers: the straggler's z comes from the eps·mean floor,
	// (4−1)/(0.05·1) = 60.
	if z := d.Z(4); math.Abs(z-60) > 1e-9 {
		t.Fatalf("straggler z = %g, want 60", z)
	}
	// A healthy rank's peers include the straggler; its score must stay
	// inside the band.
	if z := d.Z(0); math.Abs(z) > DefaultZ {
		t.Fatalf("healthy rank z = %g, want |z| ≤ %g", z, DefaultZ)
	}
	if got := d.FlaggedRanks(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("flagged = %v, want [4]", got)
	}
}

func TestDetectorStreakResets(t *testing.T) {
	d := NewDetector(4, 0, 3, 0)
	live := []bool{true, true, true, true}
	out := []float64{1, 1, 1, 4}
	in := []float64{1, 1, 1, 1}
	d.Observe(out, live)
	d.Observe(out, live)
	d.Observe(in, live) // back in band: streak resets
	if newly := d.Observe(out, live); len(newly) != 0 {
		t.Fatalf("flagged after reset: %v", newly)
	}
	d.Observe(out, live)
	if newly := d.Observe(out, live); len(newly) != 1 || newly[0] != 3 {
		t.Fatalf("three consecutive out-of-band boundaries: newly = %v, want [3]", newly)
	}
	// Sticky: observing in-band again does not unflag.
	d.Observe(in, live)
	if !d.Flagged(3) {
		t.Fatal("flag not sticky")
	}
}

func TestDetectorIgnoresDeadAndTinyFleets(t *testing.T) {
	d := NewDetector(3, 0, 1, 0)
	// Two live ranks: no peer distribution, nobody flagged however far
	// apart they sit.
	if newly := d.Observe([]float64{1, 100, 0}, []bool{true, true, false}); newly != nil {
		t.Fatalf("flagged with one peer: %v", newly)
	}
	// Dead rank's huge value must not be scored or skew peers.
	d2 := NewDetector(4, 0, 1, 0)
	if newly := d2.Observe([]float64{1, 1, 1, 1e9}, []bool{true, true, true, false}); newly != nil {
		t.Fatalf("dead rank scored: %v", newly)
	}
}
