package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestConcurrentTracksNeverCorrupt exercises the concurrency contract:
// many tracks written simultaneously by their owning goroutines, with a
// snapshot reader polling live aggregates throughout (the debug
// endpoint's access pattern), then a post-quiesce export. Run under
// -race in scripts/check.sh; the export must still validate with every
// span intact.
func TestConcurrentTracksNeverCorrupt(t *testing.T) {
	const p, spansEach = 8, 500
	tr := NewTracer(2 * spansEach)
	learners := make([]*Track, p)
	workers := make([]*Track, p)
	for r := 0; r < p; r++ {
		learners[r] = tr.Learner(r)
		workers[r] = tr.CommWorker(r)
	}
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Snapshot()
			}
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(2)
		go func(tk *Track) {
			defer wg.Done()
			for i := 0; i < spansEach; i++ {
				s := tk.Begin()
				tk.End(PhaseForward, s)
			}
		}(learners[r])
		go func(tk *Track) {
			defer wg.Done()
			for i := 0; i < spansEach; i++ {
				s := tk.Begin()
				tk.EndArg(PhaseAllreduce, int32(i), s)
			}
		}(workers[r])
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("concurrently recorded trace is corrupt: %v", err)
	}
	if want := 2 * p * spansEach; spans != want {
		t.Errorf("trace has %d spans, want %d", spans, want)
	}
	for _, tk := range append(learners, workers...) {
		if tk.Len() != spansEach || tk.Dropped() != 0 {
			t.Errorf("track %s: len %d dropped %d, want %d/0", tk.name, tk.Len(), tk.Dropped(), spansEach)
		}
	}
}
