package obs

import "testing"

// The two numbers that matter for the overhead budget: the disabled
// probe (a nil check, paid by every instrumented hot path in every
// run) and the enabled record (clock read + ring write + two atomic
// adds, paid only under -trace).

func BenchmarkDisabledProbe(b *testing.B) {
	var tk *Track
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tk.Begin()
		tk.End(PhaseForward, s)
	}
}

func BenchmarkEnabledRecord(b *testing.B) {
	tr := NewTracer(1 << 10)
	tk := tr.Learner(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tk.Begin()
		tk.End(PhaseForward, s)
	}
}
