// Package obs is the per-learner tracing and counters subsystem: a
// low-overhead span recorder that core, comm and nn emit phase timings
// into, plus exporters that turn a recorded run into a Chrome
// trace-event (Perfetto) JSON timeline, a plain-text phase-latency
// profile (p50/p95/p99 per phase per track), and a live HTTP debug
// snapshot.
//
// Design constraints, in priority order:
//
//  1. The disabled path must be provably free. Every recording method is
//     defined on a nil-able *Track and begins with a nil check; with
//     tracing off (the default) the instrumented hot paths pay one
//     predicted branch per probe and zero allocations (pinned by
//     AllocsPerRun tests here and in internal/comm).
//  2. The enabled path must stay off the heap and off shared locks.
//     Each Track is a preallocated ring of spans written by exactly one
//     goroutine (its learner, or its rank's comm worker); timestamps
//     come from the monotonic clock (time.Since of the tracer's epoch);
//     the only cross-goroutine traffic is the atomic publish of the
//     span count, which is what lets the debug endpoint read live
//     aggregates without stopping the run.
//  3. Exported timelines must be faithful: spans on one track are
//     emitted as properly nested begin/end pairs in timestamp order, so
//     an overlapped run visibly shows bucket allreduces flowing on the
//     comm-worker track while the learner track is still inside its
//     backward span.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sasgd/internal/obs/metrics"
)

// Phase identifies one instrumented span type. The set covers the SASGD
// hot path end to end: the three compute phases of a local step, the
// aggregation phases of the T-th minibatch (both the serial and the
// backward-overlapped path), and the comm-worker phases of the bucketed
// allreduce.
type Phase uint8

// The instrumented phases.
const (
	PhaseForward     Phase = iota // model forward + loss
	PhaseBackward                 // backprop (bucket begins nest inside it)
	PhaseLocalStep                // local update x ← x − γ·g and gs += g
	PhaseBucketBegin              // overlap path: bucket submit (incl. queue backpressure)
	PhaseAggWait                  // blocking wait for the interval's allreduce(s)
	PhaseAggApply                 // apply γp·gs to x′, reset replica, clear gs
	PhaseQueueDwell               // comm worker: bucket wait in the FIFO queue
	PhaseAllreduce                // comm worker: bucket collective execution
	PhaseBcast                    // initial parameter broadcast
	PhaseRetry                    // fault fabric: ack-timeout window that forced a retransmission
	PhaseDrop                     // fault fabric: an injected message drop
	PhaseHeartbeat                // membership: a rank's wait at a sync point
	PhaseEvict                    // membership: a dead rank's eviction
	PhaseReform                   // membership: survivor group re-formation
	PhaseCrash                    // membership: a scheduled learner crash
	PhaseCompress                 // compression codec: residual fold + select/quantize + encode
	NumPhases                     // number of phases (array sizing)
)

var phaseNames = [NumPhases]string{
	"forward", "backward", "local_step", "bucket_begin",
	"agg_wait", "agg_apply", "queue_dwell", "allreduce", "bcast",
	"retry", "drop", "heartbeat", "evict", "reform", "crash",
	"compress",
}

// String returns the phase's snake_case name (also the span name in the
// exported trace).
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// NoArg marks a span that carries no argument.
const NoArg int32 = -1

// span is one recorded interval. 32 bytes so the default ring stays
// cache- and memory-friendly.
type span struct {
	start int64 // ns since the tracer's epoch
	dur   int64 // ns
	phase Phase
	arg   int32 // bucket index etc., NoArg when none
}

// phaseAgg is a track's live per-phase aggregate, readable while the
// run is in flight (debug endpoint).
type phaseAgg struct {
	count atomic.Int64
	ns    atomic.Int64
}

// Track is one timeline of spans — a learner, or a rank's comm worker.
// All recording methods are single-writer (the owning goroutine) and
// nil-safe: calling them on a nil *Track is the disabled fast path and
// does nothing beyond the nil check.
type Track struct {
	tr      *Tracer
	process string // trace process group ("learner", "comm")
	name    string // thread name within the group
	pid     int
	tid     int

	spans []span       // ring, preallocated at NewTrack
	n     atomic.Int64 // spans ever recorded; ring slot is n % len(spans)
	agg   [NumPhases]phaseAgg
}

// Stamp is a moment on the tracer's monotonic clock, produced by Begin
// and consumed by End.
type Stamp int64

// Begin reads the clock for a span that End will close. On a nil track
// it returns 0 without touching the clock.
func (t *Track) Begin() Stamp {
	if t == nil {
		return 0
	}
	return Stamp(t.tr.now())
}

// End records a span of the given phase from s to now. No-op on a nil
// track. The write path touches only the track's preallocated ring and
// its own atomics — no locks, no allocation.
func (t *Track) End(ph Phase, s Stamp) {
	if t == nil {
		return
	}
	t.record(ph, NoArg, int64(s), t.tr.now())
}

// EndArg is End carrying a span argument (e.g. the bucket index).
func (t *Track) EndArg(ph Phase, arg int32, s Stamp) {
	if t == nil {
		return
	}
	t.record(ph, arg, int64(s), t.tr.now())
}

// Span records an interval with explicit stamps, for spans measured on
// one goroutine and recorded on another (the comm worker records queue
// dwell from the submitter's Begin stamp).
func (t *Track) Span(ph Phase, arg int32, begin, end Stamp) {
	if t == nil {
		return
	}
	t.record(ph, arg, int64(begin), int64(end))
}

// Now reads the tracer's clock (0 on a nil track); used to stamp
// cross-goroutine spans recorded later via Span.
func (t *Track) Now() Stamp {
	if t == nil {
		return 0
	}
	return Stamp(t.tr.now())
}

func (t *Track) record(ph Phase, arg int32, start, end int64) {
	i := t.n.Load()
	t.spans[i%int64(len(t.spans))] = span{start: start, dur: end - start, phase: ph, arg: arg}
	// Publish after the slot write so concurrent aggregate readers never
	// see slot i; the ring contents themselves are only read after the
	// writers have quiesced (export/profile) — see Tracer doc.
	t.n.Store(i + 1)
	t.agg[ph].count.Add(1)
	t.agg[ph].ns.Add(end - start)
}

// Len returns the number of spans ever recorded (recorded, not
// retained: the ring keeps the most recent Cap()).
func (t *Track) Len() int {
	if t == nil {
		return 0
	}
	return int(t.n.Load())
}

// Cap returns the ring capacity in spans.
func (t *Track) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Dropped returns how many early spans the ring has overwritten.
func (t *Track) Dropped() int {
	if d := t.Len() - t.Cap(); d > 0 {
		return d
	}
	return 0
}

// retained returns the retained spans oldest-first. Only valid once the
// writing goroutine has quiesced.
func (t *Track) retained() []span {
	n := t.n.Load()
	c := int64(len(t.spans))
	if n <= c {
		return t.spans[:n]
	}
	// Ring wrapped: unfold oldest-first.
	out := make([]span, c)
	head := n % c
	copy(out, t.spans[head:])
	copy(out[c-head:], t.spans[:head])
	return out
}

// DefaultTrackSpans is the default ring capacity per track: 16384 spans
// (512 KiB). A reduced-scale traced run records a few thousand spans
// per track; longer runs keep the most recent window.
const DefaultTrackSpans = 1 << 14

// Tracer owns a run's tracks and the shared monotonic epoch. Track
// creation is locked (it happens once per learner at run setup); span
// recording is per-track and lock-free. Export and profiles read the
// rings and must run after the recording goroutines have finished (end
// of run); the live aggregates and the stats source are safe at any
// time.
type Tracer struct {
	epoch    time.Time
	trackCap int
	nowFn    func() int64 // test hook; nil = monotonic clock
	mu       sync.Mutex
	tracks   []*Track
	statsFn  atomic.Value // func() interface{} — live comm-stats source
	metrics  atomic.Pointer[metrics.Registry]
}

// NewTracer returns a tracer whose tracks hold trackSpans spans each
// (≤ 0 selects DefaultTrackSpans).
func NewTracer(trackSpans int) *Tracer {
	if trackSpans <= 0 {
		trackSpans = DefaultTrackSpans
	}
	return &Tracer{epoch: time.Now(), trackCap: trackSpans}
}

func (tr *Tracer) now() int64 {
	if tr.nowFn != nil {
		return tr.nowFn()
	}
	return int64(time.Since(tr.epoch))
}

// Trace process ids of the standard track groups.
const (
	pidLearner = 1
	pidComm    = 2
	pidFabric  = 3
)

// NewTrack registers a new track under the given process group name and
// thread name/ids. Nil-safe: returns nil (the disabled track) on a nil
// tracer, so call sites wire tracks unconditionally.
func (tr *Tracer) NewTrack(process, name string, pid, tid int) *Track {
	return tr.NewSizedTrack(process, name, pid, tid, 0)
}

// NewSizedTrack is NewTrack with an explicit ring capacity in spans
// (≤ 0 selects the tracer's default). Short-lived or sparse event
// sources — the fault fabric's per-link retry tracks — use small rings
// so a faulty run with many links does not multiply the tracer's
// footprint by the default 16k-span capacity.
func (tr *Tracer) NewSizedTrack(process, name string, pid, tid, spans int) *Track {
	if tr == nil {
		return nil
	}
	if spans <= 0 {
		spans = tr.trackCap
	}
	t := &Track{tr: tr, process: process, name: name, pid: pid, tid: tid,
		spans: make([]span, spans)}
	tr.mu.Lock()
	tr.tracks = append(tr.tracks, t)
	tr.mu.Unlock()
	return t
}

// FabricTrack returns a new small track on the fault-fabric process
// group — retry/drop events of one link daemon, or the membership
// ledger's eviction/re-form events (nil on a nil tracer). Each fabric
// track has a single writer: the link's daemon goroutine, or — for the
// membership track — whichever goroutine holds the ledger mutex.
func (tr *Tracer) FabricTrack(name string, tid int) *Track {
	if tr == nil {
		return nil
	}
	return tr.NewSizedTrack("fabric", name, pidFabric, tid, 1024)
}

// Learner returns a new track on the learner process group for the
// given rank (nil on a nil tracer).
func (tr *Tracer) Learner(rank int) *Track {
	if tr == nil {
		return nil
	}
	return tr.NewTrack("learner", fmt.Sprintf("learner %d", rank), pidLearner, rank)
}

// CommWorker returns a new track on the comm-worker process group for
// the given rank (nil on a nil tracer).
func (tr *Tracer) CommWorker(rank int) *Track {
	if tr == nil {
		return nil
	}
	return tr.NewTrack("comm", fmt.Sprintf("comm worker %d", rank), pidComm, rank)
}

// Tracks returns the registered tracks in creation order.
func (tr *Tracer) Tracks() []*Track {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]*Track(nil), tr.tracks...)
}

// SetStats registers a live statistics source (typically the comm
// group's Stats closure) that the debug endpoint serves alongside the
// phase aggregates. Nil-safe.
func (tr *Tracer) SetStats(f func() interface{}) {
	if tr == nil || f == nil {
		return
	}
	tr.statsFn.Store(f)
}

// Stats invokes the registered live source (nil when none).
func (tr *Tracer) Stats() interface{} {
	if tr == nil {
		return nil
	}
	if f, ok := tr.statsFn.Load().(func() interface{}); ok && f != nil {
		return f()
	}
	return nil
}

// SetMetrics attaches a metrics registry to the debug plane: the live
// snapshot embeds its JSON view and the debug mux gains the
// /debug/metrics Prometheus exposition. Nil-safe both ways.
func (tr *Tracer) SetMetrics(reg *metrics.Registry) {
	if tr == nil || reg == nil {
		return
	}
	tr.metrics.Store(reg)
}

// Metrics returns the attached registry (nil when none).
func (tr *Tracer) Metrics() *metrics.Registry {
	if tr == nil {
		return nil
	}
	return tr.metrics.Load()
}
