package obs

import (
	"fmt"
	"sort"
	"time"

	"sasgd/internal/metrics"
)

// Phase-latency profiles: the post-run summary of a traced run, one row
// per (track, phase) with count, percentile latencies and the phase's
// total time, rendered in the internal/metrics table style the
// experiment drivers already print.

// PhaseProfile summarizes one phase on one track.
type PhaseProfile struct {
	Track   string
	Phase   Phase
	Count   int
	P50     time.Duration
	P95     time.Duration
	P99     time.Duration
	Total   time.Duration
	Dropped int // ring overwrites on the track (spread across phases)
}

// Profile computes per-phase latency percentiles for every track from
// the retained spans. Must run after the recording goroutines have
// quiesced. Percentiles use the nearest-rank method on the retained
// window (the ring keeps the most recent Cap() spans).
func (tr *Tracer) Profile() []PhaseProfile {
	if tr == nil {
		return nil
	}
	var out []PhaseProfile
	for _, t := range tr.Tracks() {
		durs := make(map[Phase][]int64)
		var total [NumPhases]int64
		for _, s := range t.retained() {
			durs[s.phase] = append(durs[s.phase], s.dur)
			total[s.phase] += s.dur
		}
		phases := make([]Phase, 0, len(durs))
		for ph := range durs {
			phases = append(phases, ph)
		}
		sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
		for _, ph := range phases {
			d := durs[ph]
			sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
			out = append(out, PhaseProfile{
				Track:   t.name,
				Phase:   ph,
				Count:   len(d),
				P50:     time.Duration(pct(d, 50)),
				P95:     time.Duration(pct(d, 95)),
				P99:     time.Duration(pct(d, 99)),
				Total:   time.Duration(total[ph]),
				Dropped: t.Dropped(),
			})
		}
	}
	return out
}

// pct returns the nearest-rank q-th percentile of sorted ns durations.
func pct(sorted []int64, q int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (q*len(sorted) + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// ProfileTable renders the profile as an aligned text table.
func (tr *Tracer) ProfileTable(title string) string {
	tab := metrics.Table{
		Title:  title,
		Header: []string{"track", "phase", "count", "p50", "p95", "p99", "total"},
	}
	for _, p := range tr.Profile() {
		tab.AddRow(p.Track, p.Phase.String(), fmt.Sprint(p.Count),
			fmtDur(p.P50), fmtDur(p.P95), fmtDur(p.P99), fmtDur(p.Total))
	}
	return tab.String()
}

// fmtDur formats a duration with three significant figure-ish units so
// columns of mixed µs/ms/s magnitudes stay readable.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	}
}

// OverlapFraction measures, from the recorded spans, the fraction of
// comm-worker allreduce time that ran while the same rank's learner
// track was inside a backward span — the quantity the paper's §V cost
// model says the backward-overlapped aggregation should maximize. It
// returns the overlapped and total allreduce durations (wall clock;
// quiesced tracks only).
func (tr *Tracer) OverlapFraction() (overlapped, total time.Duration) {
	return tr.commComputeOverlap(PhaseBackward)
}

// HiddenFraction generalizes OverlapFraction to the delayed-application
// schedule: the fraction of comm-worker allreduce time that ran while
// the same rank's learner was computing at all — inside a forward,
// backward, or local-step span. Backward-overlap can hide a transfer
// only behind the tail of one backward pass; delayed application hides
// it behind the entire next communication round, and this is the
// fraction that measures it.
func (tr *Tracer) HiddenFraction() (hidden, total time.Duration) {
	return tr.commComputeOverlap(PhaseForward, PhaseBackward, PhaseLocalStep)
}

// commComputeOverlap intersects each rank's comm-worker allreduce spans
// with the union of the given learner-track phases on the same rank,
// returning the intersected and total allreduce durations (wall clock;
// quiesced tracks only). The listed phases never overlap each other on
// a learner track — they are sequential stages of one goroutine — so
// summing per-window intersections does not double-count.
func (tr *Tracer) commComputeOverlap(phases ...Phase) (overlapped, total time.Duration) {
	if tr == nil {
		return 0, 0
	}
	var want [NumPhases]bool
	for _, ph := range phases {
		want[ph] = true
	}
	// Compute windows per learner tid.
	type window struct{ start, end int64 }
	backward := map[int][]window{}
	for _, t := range tr.Tracks() {
		if t.pid != pidLearner {
			continue
		}
		for _, s := range t.retained() {
			if want[s.phase] {
				backward[t.tid] = append(backward[t.tid], window{s.start, s.start + s.dur})
			}
		}
	}
	for _, ws := range backward {
		sort.Slice(ws, func(i, j int) bool { return ws[i].start < ws[j].start })
	}
	for _, t := range tr.Tracks() {
		if t.pid != pidComm {
			continue
		}
		ws := backward[t.tid]
		for _, s := range t.retained() {
			if s.phase != PhaseAllreduce {
				continue
			}
			lo, hi := s.start, s.start+s.dur
			total += time.Duration(hi - lo)
			// Sum the intersection with this rank's backward windows.
			i := sort.Search(len(ws), func(i int) bool { return ws[i].end > lo })
			for ; i < len(ws) && ws[i].start < hi; i++ {
				a, b := ws[i].start, ws[i].end
				if a < lo {
					a = lo
				}
				if b > hi {
					b = hi
				}
				if b > a {
					overlapped += time.Duration(b - a)
				}
			}
		}
	}
	return overlapped, total
}
