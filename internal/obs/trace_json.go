package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Chrome trace-event export. The JSON-object format ("traceEvents" plus
// metadata) loads in Perfetto (ui.perfetto.dev) and chrome://tracing:
// each Track becomes one thread timeline inside its process group, so a
// traced overlapped run shows the comm-worker tracks' bucket allreduce
// spans running while the learner tracks are still inside backward.
//
// Most spans are emitted as matched "B"/"E" duration events rather than
// "X" complete events so nesting is explicit in the file and the golden
// schema test can verify begin/end pairing directly. Duration events on
// one track must be sequential or strictly nested; the emission order
// reconstructs that from timestamps (see evLess).
//
// Queue dwell is the exception: a bucket is submitted while the worker
// is still executing the previous bucket's collective, so dwell spans
// genuinely overlap the worker's execution spans and cannot live on its
// synchronous B/E stack. They are emitted as legacy async events
// ("b"/"e" with a per-(worker, bucket) id), which Perfetto renders as
// async lanes under the comm process.

// asyncPhase reports whether the phase's spans may overlap other spans
// on the same track and must therefore export as async events.
func asyncPhase(p Phase) bool { return p == PhaseQueueDwell }

// asyncCat is the category grouping the async lanes in Perfetto.
const asyncCat = "queue"

// traceEvent is one exported trace-event record.
type traceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	ID   string                 `json:"id,omitempty"`
	Ts   float64                `json:"ts,omitempty"` // microseconds
	Args map[string]interface{} `json:"args,omitempty"`
}

// traceFile is the exported JSON object.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// event is the pre-serialization form carrying the sort keys.
type event struct {
	ts    int64 // ns
	begin bool
	async bool
	// start/end of the owning span, for nesting-correct tie-breaks.
	spanStart, spanEnd int64
	seq                int // span record order, pairs zero-length ties
	phase              Phase
	arg                int32
	pid, tid           int
}

// evLess orders one track's events for emission. Primary key is the
// timestamp; ties are broken so that the B/E stack stays well formed:
// ends of spans that started earlier come first (inner spans closing
// before outer ones), then zero-length spans as adjacent B,E pairs in
// record order, then begins of spans extending past the instant (outer,
// longer spans opening first).
func evLess(a, b event) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	ra, rb := a.tieRank(), b.tieRank()
	if ra != rb {
		return ra < rb
	}
	switch ra {
	case 0: // two ends: the inner (later-started) span closes first
		return a.spanStart > b.spanStart
	case 2: // two begins: the enclosing (longer) span opens first
		return a.spanEnd > b.spanEnd
	default: // zero-length spans: record order, each B just before its E
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.begin
	}
}

func (e event) tieRank() int {
	if e.spanStart == e.spanEnd {
		return 1
	}
	if e.begin {
		return 2
	}
	return 0
}

// WriteTrace serializes every track's retained spans as Chrome
// trace-event JSON. It must be called after the recording goroutines
// have quiesced (end of run).
func (tr *Tracer) WriteTrace(w io.Writer) error {
	if tr == nil {
		return fmt.Errorf("obs: WriteTrace on nil tracer")
	}
	f := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}

	// Metadata: name the process groups and threads, once each.
	seenProc := map[int]bool{}
	tracks := tr.Tracks()
	for _, t := range tracks {
		if !seenProc[t.pid] {
			seenProc[t.pid] = true
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "process_name", Ph: "M", Pid: t.pid,
				Args: map[string]interface{}{"name": t.process},
			})
		}
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: t.pid, Tid: t.tid,
			Args: map[string]interface{}{"name": t.name},
		})
	}

	for _, t := range tracks {
		spans := t.retained()
		evs := make([]event, 0, 2*len(spans))
		for seq, s := range spans {
			end := s.start + s.dur
			async := asyncPhase(s.phase)
			evs = append(evs,
				event{ts: s.start, begin: true, async: async, spanStart: s.start,
					spanEnd: end, seq: seq, phase: s.phase, arg: s.arg, pid: t.pid, tid: t.tid},
				event{ts: end, begin: false, async: async, spanStart: s.start,
					spanEnd: end, seq: seq, phase: s.phase, arg: s.arg, pid: t.pid, tid: t.tid})
		}
		sort.SliceStable(evs, func(i, j int) bool { return evLess(evs[i], evs[j]) })
		for _, e := range evs {
			te := traceEvent{
				Name: e.phase.String(),
				Ph:   "B",
				Pid:  e.pid,
				Tid:  e.tid,
				Ts:   float64(e.ts) / 1e3,
			}
			if !e.begin {
				te.Ph = "E"
			}
			if e.async {
				te.Cat = asyncCat
				te.ID = fmt.Sprintf("%d.%d", e.tid, e.arg)
				if e.begin {
					te.Ph = "b"
				} else {
					te.Ph = "e"
				}
			}
			if e.begin && e.arg != NoArg {
				te.Args = map[string]interface{}{"bucket": e.arg}
			}
			f.TraceEvents = append(f.TraceEvents, te)
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&f)
}

// WriteTraceFile writes the trace to the given path.
func (tr *Tracer) WriteTraceFile(path string) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteTrace(fd); err != nil {
		fd.Close()
		return err
	}
	return fd.Close()
}

// ValidateTrace checks an exported trace for the invariants the tooling
// relies on: the file is a JSON object with a traceEvents array; every
// event carries a known phase kind; on every (pid, tid) timeline the
// duration events form properly nested, matched begin/end pairs with
// non-decreasing timestamps; and async events form matched begin/end
// pairs per (pid, id, name) with no double-open. It returns the number
// of matched spans on success.
func ValidateTrace(data []byte) (spans int, err error) {
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return 0, fmt.Errorf("obs: trace has no traceEvents array")
	}
	type key struct{ pid, tid int }
	type akey struct {
		pid      int
		id, name string
	}
	stacks := map[key][]traceEvent{}
	lastTs := map[key]float64{}
	open := map[akey]bool{}
	for i, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			continue
		case "B", "E", "b", "e":
		default:
			return 0, fmt.Errorf("obs: event %d has unsupported ph %q", i, e.Ph)
		}
		k := key{e.Pid, e.Tid}
		if e.Ts < lastTs[k] {
			return 0, fmt.Errorf("obs: event %d (%s %s) goes backwards in time on pid %d tid %d",
				i, e.Ph, e.Name, e.Pid, e.Tid)
		}
		lastTs[k] = e.Ts
		switch e.Ph {
		case "b", "e":
			if e.ID == "" {
				return 0, fmt.Errorf("obs: event %d: async %s %q has no id", i, e.Ph, e.Name)
			}
			ak := akey{e.Pid, e.ID, e.Name}
			if e.Ph == "b" {
				if open[ak] {
					return 0, fmt.Errorf("obs: event %d: async b %q id %s reopened while open on pid %d",
						i, e.Name, e.ID, e.Pid)
				}
				open[ak] = true
				continue
			}
			if !open[ak] {
				return 0, fmt.Errorf("obs: event %d: async e %q id %s without matching b on pid %d",
					i, e.Name, e.ID, e.Pid)
			}
			delete(open, ak)
			spans++
		case "B":
			stacks[k] = append(stacks[k], e)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				return 0, fmt.Errorf("obs: event %d: E %q without matching B on pid %d tid %d",
					i, e.Name, e.Pid, e.Tid)
			}
			top := st[len(st)-1]
			if top.Name != e.Name {
				return 0, fmt.Errorf("obs: event %d: E %q closes B %q on pid %d tid %d",
					i, e.Name, top.Name, e.Pid, e.Tid)
			}
			stacks[k] = st[:len(st)-1]
			spans++
		}
	}
	for k, st := range stacks {
		if len(st) != 0 {
			return 0, fmt.Errorf("obs: %d unclosed B events on pid %d tid %d (first %q)",
				len(st), k.pid, k.tid, st[0].Name)
		}
	}
	for ak := range open {
		return 0, fmt.Errorf("obs: unclosed async b %q id %s on pid %d", ak.name, ak.id, ak.pid)
	}
	return spans, nil
}
