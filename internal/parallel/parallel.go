// Package parallel provides the shared worker pool that the tensor and
// nn kernels use to spread per-minibatch compute across cores. The paper's
// learners each drive a GPU, so per-minibatch compute is fast relative to
// aggregation; this package plays the same role for the pure-Go
// reproduction by squeezing the available cores, so that the timing
// figures measure communication behaviour rather than serial compute.
//
// The central primitive is For(n, grain, fn), which partitions the index
// range [0, n) into at most Workers() contiguous shards of at least grain
// items each and runs fn on every shard. Shard boundaries are a pure
// function of (n, shard count): they never depend on scheduling, so a
// kernel whose shards write disjoint output ranges (and whose per-element
// accumulation order is unchanged from the serial loop) produces bitwise
// identical results at every worker count, including 1. Below the grain
// threshold For degenerates to a plain serial call with no dispatch
// overhead.
//
// Execution uses a small pool of persistent worker goroutines (one per
// GOMAXPROCS at first use) plus the calling goroutine. Work is claimed
// from an atomic counter, and the caller always participates in draining
// its own call, so For never deadlocks even when invoked from inside a
// worker (nested parallelism degrades to inline execution instead of
// blocking).
//
// The effective worker budget is a process-wide setting: it defaults to
// the SASGD_WORKERS environment variable, falling back to GOMAXPROCS, and
// can be adjusted at runtime with SetWorkers. The training drivers in
// internal/core lower it to ⌈GOMAXPROCS/p⌉ while p learner goroutines are
// running so that p learners × w workers never oversubscribe the machine.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// forCall is one For invocation: a fixed shard plan plus an atomic cursor
// that the caller and any helping workers claim shards from.
type forCall struct {
	n      int
	shards int
	fn     func(shard, lo, hi int)
	next   atomic.Int32
	wg     sync.WaitGroup
}

// run claims and executes shards until none remain. It is invoked by the
// calling goroutine and by any pool worker that picks the call up; which
// goroutine runs a shard never affects the shard's output.
func (c *forCall) run() {
	for {
		s := int(c.next.Add(1)) - 1
		if s >= c.shards {
			return
		}
		lo, hi := shardRange(c.n, c.shards, s)
		c.fn(s, lo, hi)
		c.wg.Done()
	}
}

// shardRange returns the half-open index range of shard s when [0, n) is
// split into the given number of contiguous shards. The first n%shards
// shards are one element longer, so the partition is a pure function of
// (n, shards).
func shardRange(n, shards, s int) (lo, hi int) {
	base, rem := n/shards, n%shards
	lo = s * base
	if s < rem {
		lo += s
	} else {
		lo += rem
	}
	hi = lo + base
	if s < rem {
		hi++
	}
	return lo, hi
}

var (
	poolOnce sync.Once
	calls    chan *forCall
	// budget is the per-call shard cap (the "worker count" SetWorkers
	// controls). It may exceed the number of pool goroutines — extra
	// shards are simply drained by the caller — which keeps worker-count
	// sweeps meaningful on small machines.
	budget atomic.Int32
)

func init() {
	budget.Store(int32(defaultWorkers()))
}

// defaultWorkers returns the initial worker budget: SASGD_WORKERS when
// set to a positive integer, otherwise GOMAXPROCS.
func defaultWorkers() int {
	if s := os.Getenv("SASGD_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// startPool lazily launches the persistent worker goroutines. The pool is
// sized to GOMAXPROCS once; SetWorkers changes only the per-call shard
// budget, never the goroutine count, so raising and lowering the budget
// is free.
func startPool() {
	n := runtime.GOMAXPROCS(0)
	calls = make(chan *forCall, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for c := range calls {
				c.run()
			}
		}()
	}
}

// Workers returns the current worker budget: the maximum number of shards
// a single For call is split into.
func Workers() int { return int(budget.Load()) }

// SetWorkers sets the worker budget and returns the previous value.
// Values below 1 are clamped to 1 (fully serial execution). It is safe to
// call concurrently; in-flight For calls keep the plan they started with.
func SetWorkers(n int) (prev int) {
	if n < 1 {
		n = 1
	}
	return int(budget.Swap(int32(n)))
}

// For runs fn over the index range [0, n), split into at most Workers()
// contiguous shards of at least grain items each. fn receives half-open
// [lo, hi) bounds and must only write state that is disjoint between
// shards. When the range is too small to split (or the budget is 1), fn
// runs once, inline, with the full range — the exact serial path.
func For(n, grain int, fn func(lo, hi int)) {
	ForShards(n, grain, func(_, lo, hi int) { fn(lo, hi) })
}

// Shards returns the number of shards a For/ForShards call with these
// parameters would use under the current worker budget. A result ≤ 1
// means the call runs inline on the caller's goroutine.
//
// Hot, allocation-sensitive loops use this to branch to a hand-written
// serial loop instead of calling For: the parallel dispatch path stores
// fn in a heap-allocated call record, so escape analysis makes every
// closure handed to For heap-allocated — even when the call would run
// inline. Branching in the caller keeps the closure literal on the cold
// path, so the serial path touches no heap at all (the comm collectives'
// steady-state zero-alloc guarantee depends on this).
func Shards(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	shards := n / grain
	if w := int(budget.Load()); shards > w {
		shards = w
	}
	return shards
}

// ForAligned is For with shard boundaries constrained to multiples of
// align (except hi of the last shard, which is n): it shards the
// ⌈n/align⌉ aligned blocks instead of the raw indices, so fn always
// receives [lo, hi) with lo ≡ 0 (mod align). Tiled kernels use it to
// hand every shard whole microkernel tiles — tile ownership is then
// per-shard, with no partial tiles shared across goroutines. grain is
// still expressed in items; it is rounded up to whole blocks.
func ForAligned(n, align, grain int, fn func(lo, hi int)) {
	if align < 1 {
		align = 1
	}
	blocks := (n + align - 1) / align
	bGrain := (grain + align - 1) / align
	For(blocks, bGrain, func(blo, bhi int) {
		lo, hi := blo*align, bhi*align
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// ShardsAligned returns the shard count a ForAligned call with these
// parameters would use — the aligned analogue of Shards, for the same
// serial-branch purpose.
func ShardsAligned(n, align, grain int) int {
	if align < 1 {
		align = 1
	}
	return Shards((n+align-1)/align, (grain+align-1)/align)
}

// ForShards is For with the shard index exposed, so callers can maintain
// per-shard scratch buffers. The shard count (its return value) is a pure
// function of (n, grain, Workers()), making scratch reuse across repeated
// identically-shaped calls allocation-free. Shard 0 always covers the
// full range when the call is serial.
func ForShards(n, grain int, fn func(shard, lo, hi int)) (shards int) {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	shards = n / grain
	if w := int(budget.Load()); shards > w {
		shards = w
	}
	if shards <= 1 {
		fn(0, 0, n)
		return 1
	}
	poolOnce.Do(startPool)
	c := &forCall{n: n, shards: shards, fn: fn}
	c.wg.Add(shards)
	// Offer the call to up to shards-1 idle workers; if the queue is full
	// the caller drains the remainder itself, so submission never blocks.
submit:
	for i := 1; i < shards; i++ {
		select {
		case calls <- c:
		default:
			break submit
		}
	}
	c.run()
	c.wg.Wait()
	return shards
}
