package parallel

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestShardRangeCoversExactly(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 100, 101, 1023} {
		for shards := 1; shards <= 9; shards++ {
			if shards > n {
				continue
			}
			prev := 0
			for s := 0; s < shards; s++ {
				lo, hi := shardRange(n, shards, s)
				if lo != prev {
					t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", n, shards, s, lo, prev)
				}
				if hi <= lo {
					t.Fatalf("n=%d shards=%d: empty shard %d [%d,%d)", n, shards, s, lo, hi)
				}
				if hi-lo < n/shards || hi-lo > n/shards+1 {
					t.Fatalf("n=%d shards=%d: shard %d has %d items, want %d or %d", n, shards, s, hi-lo, n/shards, n/shards+1)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d shards=%d: shards end at %d", n, shards, prev)
			}
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	for _, n := range []int{0, 1, 2, 5, 17, 1000, 4097} {
		counts := make([]int32, n)
		For(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForSerialBelowGrain(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	calls := 0
	For(100, 64, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("serial fallback got [%d,%d), want [0,100)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial fallback ran %d shards", calls)
	}
}

type shardBound struct{ shard, lo, hi int }

// collectPlan runs ForShards and returns the observed shard bounds in
// shard order.
func collectPlan(n, grain int) []shardBound {
	var mu sync.Mutex
	var v []shardBound
	ForShards(n, grain, func(s, lo, hi int) {
		mu.Lock()
		v = append(v, shardBound{s, lo, hi})
		mu.Unlock()
	})
	sort.Slice(v, func(i, j int) bool { return v[i].shard < v[j].shard })
	return v
}

func TestForShardsDeterministicPlan(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	a, b := collectPlan(103, 8), collectPlan(103, 8)
	if len(a) != len(b) {
		t.Fatalf("plan sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Every shard must hold at least grain items.
	for _, s := range a {
		if s.hi-s.lo < 8 {
			t.Errorf("shard %d holds %d items, want >= grain 8", s.shard, s.hi-s.lo)
		}
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	var total atomic.Int64
	For(16, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(64, 1, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if total.Load() != 16*64 {
		t.Fatalf("nested total = %d, want %d", total.Load(), 16*64)
	}
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	if prev := SetWorkers(3); prev != orig {
		t.Errorf("SetWorkers returned %d, want %d", prev, orig)
	}
	if Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(0)
	if Workers() != 1 {
		t.Errorf("Workers() after SetWorkers(0) = %d, want 1", Workers())
	}
}

func TestConcurrentForCallers(t *testing.T) {
	// Simulates p learners each issuing parallel kernels: the pool must
	// keep every call's shards isolated.
	defer SetWorkers(SetWorkers(4))
	const callers, n = 8, 513
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out := make([]int, n)
			for iter := 0; iter < 50; iter++ {
				For(n, 16, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						out[i] = c*n + i
					}
				})
				for i, v := range out {
					if v != c*n+i {
						errs <- "corrupted shard write"
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestForAlignedBoundariesAndCoverage(t *testing.T) {
	for _, w := range []int{1, 2, 3, 7, 8} {
		func() {
			defer SetWorkers(SetWorkers(w))
			for _, tc := range []struct{ n, align, grain int }{
				{1, 2, 1}, {2, 2, 1}, {7, 2, 1}, {64, 2, 8},
				{65, 2, 8}, {100, 4, 4}, {101, 4, 12}, {5, 8, 1},
			} {
				var mu sync.Mutex
				seen := make([]int, tc.n)
				shards := 0
				ForAligned(tc.n, tc.align, tc.grain, func(lo, hi int) {
					if lo%tc.align != 0 {
						t.Errorf("w=%d n=%d align=%d: shard lo=%d not aligned", w, tc.n, tc.align, lo)
					}
					if hi != tc.n && hi%tc.align != 0 {
						t.Errorf("w=%d n=%d align=%d: shard hi=%d not aligned", w, tc.n, tc.align, hi)
					}
					mu.Lock()
					shards++
					for i := lo; i < hi; i++ {
						seen[i]++
					}
					mu.Unlock()
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("w=%d n=%d align=%d grain=%d: index %d visited %d times",
							w, tc.n, tc.align, tc.grain, i, c)
					}
				}
				if want := ShardsAligned(tc.n, tc.align, tc.grain); want > 1 && shards != want {
					t.Errorf("w=%d n=%d align=%d grain=%d: ran %d shards, ShardsAligned says %d",
						w, tc.n, tc.align, tc.grain, shards, want)
				}
			}
		}()
	}
}

func TestShardsAlignedSerialPrediction(t *testing.T) {
	defer SetWorkers(SetWorkers(1))
	if s := ShardsAligned(1000, 2, 4); s > 1 {
		t.Errorf("ShardsAligned at workers=1 = %d, want <= 1", s)
	}
	defer SetWorkers(SetWorkers(8))
	// Below one grain of blocks the call must be serial.
	if s := ShardsAligned(6, 2, 8); s > 1 {
		t.Errorf("ShardsAligned(6, 2, 8) = %d, want <= 1", s)
	}
}
