// Package model builds the two network architectures the paper evaluates
// on — the CIFAR-10 convolutional network of Table I and the NLC-F
// temporal-convolution network of Table II — plus structurally identical
// reduced-scale variants used by the fast experiment suite, and the
// parameter/FLOP accounting the fabric simulator charges compute time
// from.
package model

import (
	"fmt"
	"math/rand"

	"sasgd/internal/nn"
)

// CIFARConfig parameterizes the Table-I convolutional network. Each stage
// is Conv→ReLU→MaxPool(2,2)→Dropout, followed by Flatten and a fully
// connected classifier, exactly the published stack; only the sizes vary
// between the paper-scale and reduced-scale instantiations.
type CIFARConfig struct {
	ImageSize int     // square input side (paper: 32)
	InC       int     // input channels (paper: 3, RGB)
	Channels  []int   // output feature maps per conv stage (paper: 64,128,256,128)
	Kernels   []int   // square kernel size per conv stage (paper: 5,3,3,2)
	Dropout   float64 // drop probability after each pool (paper: 0.5)
	Classes   int     // output labels (paper: 10)
}

// PaperCIFARConfig returns the exact Table-I configuration
// (~0.5M parameters).
func PaperCIFARConfig() CIFARConfig {
	return CIFARConfig{
		ImageSize: 32,
		InC:       3,
		Channels:  []int{64, 128, 256, 128},
		Kernels:   []int{5, 3, 3, 2},
		Dropout:   0.5,
		Classes:   10,
	}
}

// SmallCIFARConfig returns a reduced-scale network with the same stage
// structure as Table I, sized so that the distributed-training
// experiments finish in seconds on a CPU while preserving the
// convergence phenomena the figures are about.
func SmallCIFARConfig() CIFARConfig {
	return CIFARConfig{
		ImageSize: 8,
		InC:       3,
		Channels:  []int{8, 12},
		Kernels:   []int{3, 2},
		Dropout:   0.1,
		Classes:   10,
	}
}

// NewCIFARNet builds the Table-I network (or a scaled variant) with
// parameters initialized from rng.
func NewCIFARNet(rng *rand.Rand, cfg CIFARConfig) *nn.Network {
	if len(cfg.Channels) != len(cfg.Kernels) {
		panic(fmt.Sprintf("model: CIFARConfig has %d channel entries but %d kernel entries", len(cfg.Channels), len(cfg.Kernels)))
	}
	var layers []nn.Layer
	inC := cfg.InC
	size := cfg.ImageSize
	for i, outC := range cfg.Channels {
		k := cfg.Kernels[i]
		layers = append(layers,
			nn.NewConv2D(rng, inC, outC, k, k),
			nn.NewReLU(),
			nn.NewMaxPool2D(2, 2),
		)
		if cfg.Dropout > 0 {
			layers = append(layers, nn.NewDropout(rng, cfg.Dropout))
		}
		size = size - k + 1 // conv, stride 1, no padding
		if size >= 2 {
			size /= 2 // pool
		}
		inC = outC
	}
	layers = append(layers,
		nn.NewFlatten(),
		nn.NewLinear(rng, inC*size*size, cfg.Classes),
	)
	return nn.NewNetwork([]int{cfg.InC, cfg.ImageSize, cfg.ImageSize}, layers...)
}

// NLCFConfig parameterizes the Table-II network. The per-word fully
// connected layer is a window-1 temporal convolution; pooling collapses
// the time axis; two fully connected layers classify.
type NLCFConfig struct {
	SeqLen   int // words per sentence (fixed-length synthetic sentences)
	EmbedDim int // word2vec embedding width (paper: 100)
	Hidden1  int // per-word projection (paper: 200)
	Kernels  int // temporal-conv kernels (paper: 1000)
	Window   int // temporal-conv window (paper: 2)
	Hidden2  int // classifier hidden width (paper: 1000)
	Classes  int // output labels (paper: 311)
}

// PaperNLCFConfig returns the exact Table-II configuration
// (~1.7M parameters, "about 2 million" per the paper). SeqLen is 3 so
// that the published Max-Pooling (2,1) stage collapses the time axis to
// a single frame, making the 1000×1000 fully connected layer that
// follows shape-consistent.
func PaperNLCFConfig() NLCFConfig {
	return NLCFConfig{
		SeqLen:   3,
		EmbedDim: 100,
		Hidden1:  200,
		Kernels:  1000,
		Window:   2,
		Hidden2:  1000,
		Classes:  311,
	}
}

// SmallNLCFConfig returns a reduced-scale Table-II network for the fast
// experiment suite.
func SmallNLCFConfig() NLCFConfig {
	return NLCFConfig{
		SeqLen:   3,
		EmbedDim: 16,
		Hidden1:  24,
		Kernels:  32,
		Window:   2,
		Hidden2:  32,
		Classes:  12,
	}
}

// NewNLCFNet builds the Table-II network (or a scaled variant) with
// parameters initialized from rng.
func NewNLCFNet(rng *rand.Rand, cfg NLCFConfig) *nn.Network {
	if cfg.SeqLen < cfg.Window {
		panic(fmt.Sprintf("model: NLCF sequence length %d shorter than conv window %d", cfg.SeqLen, cfg.Window))
	}
	convOut := cfg.SeqLen - cfg.Window + 1
	layers := []nn.Layer{
		// "Fully connected layer: 100 × 200" applied per word: a
		// window-1 temporal convolution is exactly a shared per-frame
		// fully connected layer.
		nn.NewTemporalConv(rng, cfg.EmbedDim, cfg.Hidden1, 1),
		nn.NewTanh(),
		// "Temporal Convolution: (nkern, window size) = (1000, 2)".
		nn.NewTemporalConv(rng, cfg.Hidden1, cfg.Kernels, cfg.Window),
		// "Max-Pooling: (height, width) = (2, 1)": pool over time,
		// collapsing the remaining frames to one.
		nn.NewTemporalMaxPool(convOut),
		nn.NewTanh(),
		nn.NewFlatten(),
		// "Fully connected layer: 1000 × 1000".
		nn.NewLinear(rng, cfg.Kernels, cfg.Hidden2),
		nn.NewTanh(),
		// "Fully connected layer: 1000 × 311".
		nn.NewLinear(rng, cfg.Hidden2, cfg.Classes),
	}
	return nn.NewNetwork([]int{cfg.SeqLen, cfg.EmbedDim}, layers...)
}
