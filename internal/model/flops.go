package model

import (
	"sasgd/internal/nn"
)

// Cost summarizes the computational footprint of a network, used by the
// fabric simulator to charge compute time and by the experiment drivers
// to report model sizes the way the paper does ("about 0.5 million
// parameters", "about 2 million parameters").
type Cost struct {
	Params                int     // learnable parameter count
	ForwardFlopsPerSample float64 // multiply-accumulate-dominated forward cost
	TrainFlopsPerSample   float64 // forward + backward (≈3× forward for conv/linear stacks)
}

// NetworkCost walks a network's layers and accumulates parameter and
// FLOP counts. FLOPs are counted as 2 per multiply-accumulate. The
// backward pass of a convolution or linear layer costs roughly twice its
// forward pass (one GEMM for the input gradient, one for the weight
// gradient), which is the standard 3× training-to-inference ratio.
func NetworkCost(net *nn.Network) Cost {
	var c Cost
	c.Params = net.NumParams()
	shape := append([]int(nil), net.InShape()...)
	for _, l := range net.Layers() {
		out := l.OutShape(shape)
		c.ForwardFlopsPerSample += layerForwardFlops(l, shape, out)
		shape = out
	}
	c.TrainFlopsPerSample = 3 * c.ForwardFlopsPerSample
	return c
}

func layerForwardFlops(l nn.Layer, in, out []int) float64 {
	switch v := l.(type) {
	case *nn.Conv2D:
		// 2 · K · C · KH · KW · OH · OW
		oh, ow := out[1], out[2]
		return 2 * float64(v.OutC) * float64(v.InC) * float64(v.Geom.KH) * float64(v.Geom.KW) * float64(oh) * float64(ow)
	case *nn.Linear:
		return 2 * float64(v.In) * float64(v.Out)
	case *nn.TemporalConv:
		ol := out[0]
		return 2 * float64(v.OutK) * float64(v.Window) * float64(v.InD) * float64(ol)
	default:
		// Activations, pooling, dropout, flatten: linear in element count,
		// negligible next to the GEMMs but counted for completeness.
		n := 1.0
		for _, d := range out {
			n *= float64(d)
		}
		return n
	}
}
