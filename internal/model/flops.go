package model

import (
	"sasgd/internal/nn"
)

// Cost summarizes the computational footprint of a network, used by the
// fabric simulator to charge compute time and by the experiment drivers
// to report model sizes the way the paper does ("about 0.5 million
// parameters", "about 2 million parameters").
type Cost struct {
	Params                int     // learnable parameter count
	ForwardFlopsPerSample float64 // multiply-accumulate-dominated forward cost
	TrainFlopsPerSample   float64 // forward + backward (≈3× forward for conv/linear stacks)
}

// NetworkCost walks a network's layers and accumulates parameter and
// FLOP counts. FLOPs are counted as 2 per multiply-accumulate. The
// backward pass of a convolution or linear layer costs roughly twice its
// forward pass (one GEMM for the input gradient, one for the weight
// gradient), which is the standard 3× training-to-inference ratio.
func NetworkCost(net *nn.Network) Cost {
	var c Cost
	c.Params = net.NumParams()
	shape := append([]int(nil), net.InShape()...)
	for _, l := range net.Layers() {
		out := l.OutShape(shape)
		c.ForwardFlopsPerSample += layerForwardFlops(l, shape, out)
		shape = out
	}
	c.TrainFlopsPerSample = 3 * c.ForwardFlopsPerSample
	return c
}

// BackwardDoneFractions returns, per layer, the fraction of a training
// minibatch's total simulated time that has elapsed when that layer's
// backward pass completes (and its parameter gradients are final). The
// batch is modeled as the forward pass (⅓ of train FLOPs) followed by the
// backward pass visiting layers in reverse, each layer's backward costing
// twice its forward FLOPs — so fractions[len-1] (the first layer to
// finalize) is the smallest and fractions[0] is 1. The bucketed
// aggregation stamps bucket sends with start + dt·fractions[minLayer].
func BackwardDoneFractions(net *nn.Network) []float64 {
	layers := net.Layers()
	fwd := make([]float64, len(layers))
	shape := append([]int(nil), net.InShape()...)
	total := 0.0
	for i, l := range layers {
		out := l.OutShape(shape)
		fwd[i] = layerForwardFlops(l, shape, out)
		total += fwd[i]
		shape = out
	}
	fracs := make([]float64, len(layers))
	if total == 0 {
		for i := range fracs {
			fracs[i] = 1
		}
		return fracs
	}
	// Forward ends at total; backward walks layers in reverse, charging
	// 2·fwd[i] each. Train total = 3·total (NetworkCost's ratio).
	elapsed := total
	for i := len(layers) - 1; i >= 0; i-- {
		elapsed += 2 * fwd[i]
		fracs[i] = elapsed / (3 * total)
	}
	return fracs
}

func layerForwardFlops(l nn.Layer, in, out []int) float64 {
	switch v := l.(type) {
	case *nn.Conv2D:
		// 2 · K · C · KH · KW · OH · OW
		oh, ow := out[1], out[2]
		return 2 * float64(v.OutC) * float64(v.InC) * float64(v.Geom.KH) * float64(v.Geom.KW) * float64(oh) * float64(ow)
	case *nn.Linear:
		return 2 * float64(v.In) * float64(v.Out)
	case *nn.TemporalConv:
		ol := out[0]
		return 2 * float64(v.OutK) * float64(v.Window) * float64(v.InD) * float64(ol)
	default:
		// Activations, pooling, dropout, flatten: linear in element count,
		// negligible next to the GEMMs but counted for completeness.
		n := 1.0
		for _, d := range out {
			n *= float64(d)
		}
		return n
	}
}
