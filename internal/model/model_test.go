package model

import (
	"math"
	"math/rand"
	"testing"

	"sasgd/internal/tensor"
)

func TestPaperCIFARNetMatchesTableI(t *testing.T) {
	net := NewCIFARNet(rand.New(rand.NewSource(1)), PaperCIFARConfig())
	// The paper: "The number of parameters is about 0.5 million in the
	// CIFAR-10 network". Exact count from Table I:
	// conv1 3·64·5·5+64, conv2 64·128·3·3+128, conv3 128·256·3·3+256,
	// conv4 256·128·2·2+128, fc 128·10+10.
	want := 3*64*25 + 64 + 64*128*9 + 128 + 128*256*9 + 256 + 256*128*4 + 128 + 128*10 + 10
	if net.NumParams() != want {
		t.Errorf("Table I parameters = %d, want %d", net.NumParams(), want)
	}
	if net.NumParams() < 450_000 || net.NumParams() > 550_000 {
		t.Errorf("Table I network not 'about 0.5 million' parameters: %d", net.NumParams())
	}
}

func TestPaperNLCFNetMatchesTableII(t *testing.T) {
	net := NewNLCFNet(rand.New(rand.NewSource(1)), PaperNLCFConfig())
	// Table II: per-word FC 100·200+200, temporal conv 1000·(2·200)+1000,
	// fc 1000·1000+1000, fc 1000·311+311.
	want := 100*200 + 200 + 1000*400 + 1000 + 1000*1000 + 1000 + 1000*311 + 311
	if net.NumParams() != want {
		t.Errorf("Table II parameters = %d, want %d", net.NumParams(), want)
	}
	// "about 2 million" per the paper.
	if net.NumParams() < 1_500_000 || net.NumParams() > 2_500_000 {
		t.Errorf("Table II network not 'about 2 million' parameters: %d", net.NumParams())
	}
}

func TestCIFARNetForwardBackward(t *testing.T) {
	for _, cfg := range []CIFARConfig{PaperCIFARConfig(), SmallCIFARConfig()} {
		net := NewCIFARNet(rand.New(rand.NewSource(2)), cfg)
		n := 2
		x := tensor.New(n, cfg.InC, cfg.ImageSize, cfg.ImageSize)
		x.FillRandn(rand.New(rand.NewSource(3)), 0, 1)
		labels := make([]int, n)
		loss := net.Step(x, labels)
		if loss <= 0 {
			t.Errorf("ImageSize=%d: non-positive initial loss %g", cfg.ImageSize, loss)
		}
		nonzero := 0
		for _, g := range net.GradData() {
			if g != 0 {
				nonzero++
			}
		}
		if nonzero == 0 {
			t.Errorf("ImageSize=%d: no gradient flow", cfg.ImageSize)
		}
	}
}

func TestNLCFNetForwardBackward(t *testing.T) {
	for _, cfg := range []NLCFConfig{PaperNLCFConfig(), SmallNLCFConfig()} {
		net := NewNLCFNet(rand.New(rand.NewSource(4)), cfg)
		n := 3
		x := tensor.New(n, cfg.SeqLen, cfg.EmbedDim)
		x.FillRandn(rand.New(rand.NewSource(5)), 0, 1)
		labels := []int{0, 1, 2}
		loss := net.Step(x, labels)
		if loss <= 0 {
			t.Errorf("EmbedDim=%d: non-positive initial loss %g", cfg.EmbedDim, loss)
		}
		sum := 0.0
		for _, g := range net.GradData() {
			if g > 0 || g < 0 {
				sum++
			}
		}
		if sum == 0 {
			t.Errorf("EmbedDim=%d: no gradient flow", cfg.EmbedDim)
		}
	}
}

func TestCIFARConfigMismatchPanics(t *testing.T) {
	cfg := SmallCIFARConfig()
	cfg.Kernels = cfg.Kernels[:1]
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched channels/kernels did not panic")
		}
	}()
	NewCIFARNet(rand.New(rand.NewSource(6)), cfg)
}

func TestNLCFWindowTooLargePanics(t *testing.T) {
	cfg := SmallNLCFConfig()
	cfg.Window = cfg.SeqLen + 1
	defer func() {
		if recover() == nil {
			t.Fatal("window larger than sequence did not panic")
		}
	}()
	NewNLCFNet(rand.New(rand.NewSource(7)), cfg)
}

func TestNetworkCostPaperScale(t *testing.T) {
	cifar := NetworkCost(NewCIFARNet(rand.New(rand.NewSource(8)), PaperCIFARConfig()))
	nlcf := NetworkCost(NewNLCFNet(rand.New(rand.NewSource(9)), PaperNLCFConfig()))
	if cifar.Params != 506378 {
		t.Errorf("CIFAR cost params = %d", cifar.Params)
	}
	// Dominant CIFAR term: conv2 2·128·64·9·12·12 ≈ 21.2 MFLOPs; total
	// forward should be tens of MFLOPs per sample.
	if cifar.ForwardFlopsPerSample < 20e6 || cifar.ForwardFlopsPerSample > 100e6 {
		t.Errorf("CIFAR forward FLOPs/sample = %g", cifar.ForwardFlopsPerSample)
	}
	if cifar.TrainFlopsPerSample != 3*cifar.ForwardFlopsPerSample {
		t.Error("train FLOPs not 3× forward")
	}
	// NLC-F: dominated by the 1000·400 temporal conv and 1000·1000 FC —
	// single-digit MFLOPs per sample.
	if nlcf.ForwardFlopsPerSample < 2e6 || nlcf.ForwardFlopsPerSample > 20e6 {
		t.Errorf("NLC-F forward FLOPs/sample = %g", nlcf.ForwardFlopsPerSample)
	}
	// The models' compute-per-sample ordering drives Figures 4/5: CIFAR
	// compute-heavy, NLC-F communication-heavy.
	if cifar.ForwardFlopsPerSample <= nlcf.ForwardFlopsPerSample {
		t.Error("CIFAR per-sample compute should exceed NLC-F's")
	}
}

// TestBackwardDoneFractions checks the per-layer backward-completion
// timeline used to stamp overlapped bucket sends: strictly within (⅓, 1],
// monotonically decreasing with layer index (later layers finalize
// earlier), ending at exactly 1 for layer 0, and consistent with
// NetworkCost's forward-total (fractions start just above the forward
// third of the batch).
func TestBackwardDoneFractions(t *testing.T) {
	check := func(t *testing.T, fracs []float64) {
		t.Helper()
		if math.Abs(fracs[0]-1) > 1e-12 {
			t.Errorf("layer 0 fraction = %g, want 1", fracs[0])
		}
		for i := range fracs {
			if fracs[i] <= 1.0/3 || fracs[i] > 1+1e-12 {
				t.Errorf("fraction[%d] = %g outside (1/3, 1]", i, fracs[i])
			}
			if i > 0 && fracs[i] >= fracs[i-1] {
				t.Errorf("fractions not strictly decreasing at %d: %g >= %g", i, fracs[i], fracs[i-1])
			}
		}
	}
	cifar := NewCIFARNet(rand.New(rand.NewSource(20)), SmallCIFARConfig())
	check(t, BackwardDoneFractions(cifar))
	nlcf := NewNLCFNet(rand.New(rand.NewSource(21)), SmallNLCFConfig())
	check(t, BackwardDoneFractions(nlcf))
}

func TestSmallConfigsAreSmall(t *testing.T) {
	small := NewCIFARNet(rand.New(rand.NewSource(10)), SmallCIFARConfig())
	paper := NewCIFARNet(rand.New(rand.NewSource(10)), PaperCIFARConfig())
	if small.NumParams()*10 > paper.NumParams() {
		t.Errorf("small CIFAR net (%d params) not ≪ paper net (%d)", small.NumParams(), paper.NumParams())
	}
	smallN := NewNLCFNet(rand.New(rand.NewSource(11)), SmallNLCFConfig())
	paperN := NewNLCFNet(rand.New(rand.NewSource(11)), PaperNLCFConfig())
	if smallN.NumParams()*10 > paperN.NumParams() {
		t.Errorf("small NLC-F net (%d params) not ≪ paper net (%d)", smallN.NumParams(), paperN.NumParams())
	}
}

func TestDeterministicInitialization(t *testing.T) {
	a := NewCIFARNet(rand.New(rand.NewSource(12)), SmallCIFARConfig())
	b := NewCIFARNet(rand.New(rand.NewSource(12)), SmallCIFARConfig())
	for i := range a.ParamData() {
		if a.ParamData()[i] != b.ParamData()[i] {
			t.Fatal("same seed produced different initialization")
		}
	}
}
