// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver runs the real training algorithms (and,
// for the timing figures, the fabric simulator) at the reduced scale
// described in DESIGN.md §6, returns a structured result, and can print
// the same rows/series the paper reports. The drivers are shared by
// cmd/experiments (the full reproduction binary), the examples, the
// test suite, and the top-level benchmark harness.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"sasgd/internal/core"
	"sasgd/internal/data"
	"sasgd/internal/model"
	"sasgd/internal/netsim"
	"sasgd/internal/nn"
)

// Workload bundles one of the paper's two applications at reduced scale
// together with the paper-scale cost profile the simulator charges.
type Workload struct {
	Name string
	// Problem is the reduced-scale training problem actually executed.
	Problem *core.Problem
	// PaperCost is the computational footprint of the paper-scale model
	// (Table I / Table II), used by the fabric simulator.
	PaperCost model.Cost
	// SmallParams is the executed model's parameter count; the ratio
	// PaperCost.Params/SmallParams rescales simulated message sizes.
	SmallParams int
	// Batch is the minibatch size M used by the convergence experiments
	// (reduced-scale stand-in for the paper's 64 on CIFAR-10; 1 for
	// NLC-F as in the paper).
	Batch int
	// TimingBatch is the minibatch size the timing figures run with —
	// the paper's exact M, since simulated time is charged at paper
	// scale (0 selects Batch).
	TimingBatch int
	// Gamma is the calibrated practical learning rate standing in for
	// the paper's γ = 0.1 at this scale.
	Gamma float64
	// Epochs is the default figure epoch budget at reduced scale
	// (standing in for the paper's 100 / 200).
	Epochs int
}

// Scale selects reduced-scale (the default everywhere; minutes on a
// laptop) or paper-scale (the exact published sizes; CPU-days in pure
// Go — provided for completeness and spot checks) workloads.
type Scale int

// The available scales.
const (
	ScaleSmall Scale = iota // reduced-scale (DESIGN.md §6)
	ScalePaper              // the paper's exact dataset and model sizes
)

// ImageWorkload builds the CIFAR-10-like workload (Table I network) at
// reduced scale.
func ImageWorkload() *Workload { return ImageWorkloadAt(ScaleSmall) }

// ImageWorkloadAt builds the CIFAR-10-like workload at the given scale.
func ImageWorkloadAt(scale Scale) *Workload {
	imgCfg := data.SmallImageConfig()
	netCfg := model.SmallCIFARConfig()
	batch, epochs := 16, 20
	if scale == ScalePaper {
		imgCfg = data.PaperImageConfig()
		netCfg = model.PaperCIFARConfig()
		batch, epochs = 64, 100
	}
	train, test := data.GenImages(imgCfg)
	smallCfg := netCfg
	prob := &core.Problem{
		Name: "cifar10-synth",
		Model: func(seed int64) *nn.Network {
			return model.NewCIFARNet(rand.New(rand.NewSource(seed)), smallCfg)
		},
		Train: train,
		Test:  test,
	}
	paper := model.NewCIFARNet(rand.New(rand.NewSource(1)), model.PaperCIFARConfig())
	small := prob.Model(1)
	return &Workload{
		Name:        "CIFAR-10",
		Problem:     prob,
		PaperCost:   model.NetworkCost(paper),
		SmallParams: small.NumParams(),
		Batch:       batch, // reduced scale stands in for the paper's M = 64
		TimingBatch: 64,    // the paper's M, used by the simulated-timing runs
		Gamma:       0.1,   // the paper's practical rate
		Epochs:      epochs,
	}
}

// TextWorkload builds the NLC-F-like workload (Table II network) at
// reduced scale.
func TextWorkload() *Workload { return TextWorkloadAt(ScaleSmall) }

// TextWorkloadAt builds the NLC-F-like workload at the given scale.
func TextWorkloadAt(scale Scale) *Workload {
	txtCfg := data.SmallTextConfig()
	netCfg := model.SmallNLCFConfig()
	gamma, epochs := 0.06, 40
	if scale == ScalePaper {
		txtCfg = data.PaperTextConfig()
		netCfg = model.PaperNLCFConfig()
		gamma, epochs = 0.1, 200
	}
	train, test := data.GenText(txtCfg)
	smallCfg := netCfg
	prob := &core.Problem{
		Name: "nlcf-synth",
		Model: func(seed int64) *nn.Network {
			return model.NewNLCFNet(rand.New(rand.NewSource(seed)), smallCfg)
		},
		Train: train,
		Test:  test,
	}
	paper := model.NewNLCFNet(rand.New(rand.NewSource(1)), model.PaperNLCFConfig())
	small := prob.Model(1)
	return &Workload{
		Name:        "NLC-F",
		Problem:     prob,
		PaperCost:   model.NetworkCost(paper),
		SmallParams: small.NumParams(),
		Batch:       1,     // the paper's M = 1 for NLC-F
		Gamma:       gamma, // reduced scale stands in for the paper's 0.1
		Epochs:      epochs,
	}
}

// Opt carries cross-cutting driver options. The zero value selects each
// figure's defaults.
type Opt struct {
	// Epochs overrides the figure's epoch budget (0 = figure default).
	Epochs int
	// Ps overrides the learner counts swept (nil = figure default).
	Ps []int
	// Ts overrides the aggregation intervals swept (nil = figure
	// default).
	Ts []int
	// Seed offsets all run seeds for replication studies.
	Seed int64
	// Replicas averages each convergence run over this many seeds
	// (default 1). The asynchronous baselines are nondeterministic and
	// the reduced-scale curves are noisy; the paper's full-scale curves
	// are intrinsically smoother.
	Replicas int
	// Out receives the rendered table/series (nil = no printing).
	Out io.Writer
	// TracePath, when non-empty, makes the tracing-aware drivers
	// (TracedOverlap) export their Chrome trace-event JSON there.
	TracePath string
	// DebugAddr, when non-empty, serves the live /debug/obs endpoint on
	// this address for the duration of the traced runs.
	DebugAddr string
	// Metrics attaches a fleet metrics registry to the metrics-aware
	// drivers (TracedOverlap): per-boundary drift/T telemetry and the
	// per-rank simulated compute/communication split are collected and
	// printed, and served live on /debug/obs with DebugAddr.
	Metrics bool
}

func (o Opt) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

func (o Opt) epochs(def int) int {
	if o.Epochs > 0 {
		return o.Epochs
	}
	return def
}

func (o Opt) ps(def []int) []int {
	if len(o.Ps) > 0 {
		return o.Ps
	}
	return def
}

func (o Opt) replicas() int {
	if o.Replicas > 0 {
		return o.Replicas
	}
	return 1
}

func (o Opt) ts(def []int) []int {
	if len(o.Ts) > 0 {
		return o.Ts
	}
	return def
}

// SimConfig builds a per-run fabric simulation for p learners charging
// paper-scale costs for this workload (message sizes are rescaled by the
// paper-to-executed parameter ratio).
func (w *Workload) SimConfig(p int) *netsim.Sim {
	cfg := netsim.DefaultConfig()
	cfg.WordFactor = float64(w.PaperCost.Params) / float64(w.SmallParams)
	return netsim.New(p, cfg)
}

// newSim builds a per-run fabric simulation charging paper-scale costs
// for the given workload.
func newSim(w *Workload, p int) *netsim.Sim {
	return w.SimConfig(p)
}

// trainCfg assembles a core.Config for one run of this workload.
func (w *Workload) trainCfg(algo core.Algorithm, p, t, epochs int, opt Opt) core.Config {
	return core.Config{
		Algo:     algo,
		Learners: p,
		Interval: t,
		Batch:    w.Batch,
		Gamma:    w.Gamma,
		Epochs:   epochs,
		Seed:     1 + opt.Seed,
	}
}

// simCfg is trainCfg plus an attached fabric simulation; it runs at the
// paper's minibatch size so the simulated schedule matches the paper's.
func (w *Workload) simCfg(algo core.Algorithm, p, t, epochs int, opt Opt) core.Config {
	cfg := w.trainCfg(algo, p, t, epochs, opt)
	if w.TimingBatch > 0 {
		cfg.Batch = w.TimingBatch
	}
	cfg.Sim = newSim(w, p)
	cfg.FlopsPerSample = w.PaperCost.TrainFlopsPerSample
	return cfg
}

func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
