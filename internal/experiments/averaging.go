package experiments

import (
	"sasgd/internal/core"
	"sasgd/internal/metrics"
)

// AveragingRow is one line of the model-averaging comparison.
type AveragingRow struct {
	Name      string
	T         int
	FinalTest float64
	EpochSecs float64 // simulated epoch time for the same configuration
}

// AveragingVariants reproduces the paper's Section III argument for why
// SASGD parameterizes the aggregation interval instead of adopting
// either existing model-averaging heuristic:
//
//   - averaging once at the end of learning (Zinkevich et al.) "results
//     in very poor training and test accuracies";
//   - averaging after every minibatch (Li et al.) "incurs high
//     communication overhead".
//
// Both are expressible as SASGD corner cases (T = all batches with
// γp = γ/p, and T = 1), so the comparison runs the real algorithm at
// three interval settings on the image workload and reports both final
// accuracy and the simulated epoch time.
func AveragingVariants(opt Opt) []AveragingRow {
	w := ImageWorkload()
	const p = 8
	epochs := opt.epochs(12)
	batchesPerLearner := (w.Problem.Train.Len()/p + w.Batch - 1) / w.Batch

	cases := []struct {
		name string
		t    int
	}{
		{"average-at-end (Zinkevich)", epochs * batchesPerLearner},
		{"average-every-minibatch (Li)", 1},
		{"SASGD T=50", 50},
	}
	var rows []AveragingRow
	tab := metrics.Table{
		Title:  "Model-averaging variants vs SASGD (p=8, image workload)",
		Header: []string{"variant", "T", "test acc", "sim epoch(s)"},
	}
	for _, c := range cases {
		acc := core.Train(core.Config{
			Algo: core.AlgoSASGD, Learners: p, Interval: c.t,
			Gamma: w.Gamma, Batch: w.Batch, Epochs: epochs, Seed: 1 + opt.Seed,
			EvalEvery: epochs,
		}, w.Problem)

		timingCfg := w.simCfg(core.AlgoSASGD, p, c.t, timingEpochs, opt)
		timingCfg.EvalEvery = timingEpochs
		// The end-averaging variant's interval must still cover the
		// timing run's batch count so it aggregates (at most) once.
		if c.t > 1 && c.t != 50 {
			timingCfg.Interval = timingEpochs * (w.Problem.Train.Len()/p + timingCfg.Batch - 1) / timingCfg.Batch
		}
		timing := core.Train(timingCfg, w.Problem)

		row := AveragingRow{Name: c.name, T: c.t, FinalTest: acc.FinalTest, EpochSecs: timing.EpochTime()}
		rows = append(rows, row)
		tab.AddRow(c.name, itoa(c.t), metrics.Pct(row.FinalTest), ftoa3(row.EpochSecs))
	}
	fprintf(opt.out(), "%s\n", tab.String())
	return rows
}
