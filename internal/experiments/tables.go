package experiments

import (
	"math/rand"

	"sasgd/internal/metrics"
	"sasgd/internal/model"
	"sasgd/internal/theory"
)

// TableIResult captures the Table I reproduction: the CIFAR-10 network
// architecture and its parameter count ("about 0.5 million" per the
// paper).
type TableIResult struct {
	Summary string
	Params  int
}

// TableI builds the exact Table-I convolutional network and reports its
// architecture and size.
func TableI(opt Opt) TableIResult {
	net := model.NewCIFARNet(rand.New(rand.NewSource(1)), model.PaperCIFARConfig())
	r := TableIResult{Summary: net.Summary(), Params: net.NumParams()}
	fprintf(opt.out(), "Table I: Convolutional Neural Network for CIFAR-10\n%s\n", r.Summary)
	return r
}

// TableIIResult captures the Table II reproduction: the NLC-F network
// and its parameter count ("about 2 million" per the paper).
type TableIIResult struct {
	Summary string
	Params  int
}

// TableII builds the exact Table-II network and reports its architecture
// and size.
func TableII(opt Opt) TableIIResult {
	net := model.NewNLCFNet(rand.New(rand.NewSource(1)), model.PaperNLCFConfig())
	r := TableIIResult{Summary: net.Summary(), Params: net.NumParams()}
	fprintf(opt.out(), "Table II: Neural Network for NLC-F\n%s\n", r.Summary)
	return r
}

// Theorem1Row is one line of the Theorem 1 reproduction: the optimal
// normalized learning rates and the resulting guarantee gap between 1
// and p learners.
type Theorem1Row struct {
	P       int
	Alpha   float64
	C1, CP  float64
	Gap     float64 // measured guarantee ratio
	PredGap float64 // Theorem 1's p/α prediction
}

// Theorem1 evaluates the Theorem 1 analysis across learner counts at the
// paper's example α values, printing the optimal-c solutions of the
// Equation 7 cubic and the guarantee gap ≈ p/α.
func Theorem1(opt Opt) []Theorem1Row {
	var rows []Theorem1Row
	tab := metrics.Table{
		Title:  "Theorem 1: ASGD guarantee gap between 1 and p learners (16 ≤ α ≤ p)",
		Header: []string{"p", "alpha", "c*(1)", "c*(p)", "gap", "p/alpha"},
	}
	for _, cfg := range []struct {
		p     int
		alpha float64
	}{
		{16, 16}, {32, 16}, {32, 32}, {64, 16}, {64, 32}, {64, 64}, {128, 16},
	} {
		row := Theorem1Row{
			P:       cfg.p,
			Alpha:   cfg.alpha,
			C1:      theory.OptimalC(1, cfg.alpha),
			CP:      theory.OptimalC(cfg.p, cfg.alpha),
			Gap:     theory.GapFactor(cfg.p, cfg.alpha),
			PredGap: float64(cfg.p) / cfg.alpha,
		}
		rows = append(rows, row)
		tab.AddRow(
			itoa(row.P), ftoa(row.Alpha), ftoa3(row.C1), ftoa3(row.CP),
			ftoa3(row.Gap), ftoa3(row.PredGap),
		)
	}
	fprintf(opt.out(), "%s\n", tab.String())
	return rows
}
