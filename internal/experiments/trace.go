package experiments

import (
	"fmt"
	"time"

	"sasgd/internal/comm"
	"sasgd/internal/core"
	"sasgd/internal/metrics"
	"sasgd/internal/obs"
	obsmetrics "sasgd/internal/obs/metrics"
)

// TracedOverlap is the observability companion to Figure 4's T=1
// column: the communication-bound CIFAR-10 configuration (T=1, p=8,
// chunked pipelined tree) run with serial aggregation and again with
// backward-overlapped bucketed aggregation, the overlapped run traced.
// It reports the simulated epoch times of both runs — the 0.738 s →
// 0.639 s delta recorded in EXPERIMENTS.md — next to the *measured*
// fraction of wall-clock allreduce time the overlapped schedule hid
// behind backprop, taken from the recorded timeline rather than the
// cost model, plus the run's phase-latency profile and unified comm
// stats. With Opt.TracePath set, the Chrome trace is exported there;
// with Opt.DebugAddr set, the live endpoint serves the traced run.
type TracedOverlapResult struct {
	Workload    string
	T, P        int
	SerialSecs  float64 // simulated epoch time, serial aggregation
	OverlapSecs float64 // simulated epoch time, overlapped aggregation

	// Timeline measurements from the overlapped run's trace.
	AllreduceTotal  time.Duration // wall-clock comm-worker allreduce time
	AllreduceHidden time.Duration // portion inside the same rank's backward spans
	HiddenFraction  float64       // AllreduceHidden / AllreduceTotal

	// HiddenSimFraction is the cost-model view of the same quantity:
	// 1 − overlap.SimComm/serial.SimComm, the share of the serial run's
	// exposed communication seconds that the overlapped schedule removed
	// from the simulated critical path. It usually disagrees with the
	// wall-trace HiddenFraction, and the wall number should be trusted
	// less: the test host runs p learner goroutines plus p comm workers
	// on shared cores, so wall-clock backward spans are inflated by core
	// starvation and the trace "hides" more allreduce time than a
	// dedicated-core deployment would. The simulated fraction charges
	// compute and wire time from the calibrated cost model instead and is
	// immune to host load. Per-rank live values of the simulated split
	// are served on /debug/obs (metrics.fleet ranks' tot_sim_compute /
	// tot_sim_comm) when a metrics registry is attached.
	HiddenSimFraction float64
	SerialSimComm     float64 // serial run's simulated communication seconds
	OverlapSimComm    float64 // overlapped run's simulated communication seconds

	CommStats comm.Stats // overlapped run's unified comm stats
	TracePath string     // where the trace was written ("" = not exported)

	// Fleet is the overlapped run's fleet health view (nil unless
	// Opt.Metrics): per-rank cumulative simulated compute/communication
	// split, drift RMS, and any straggler verdicts.
	Fleet *obsmetrics.FleetSnap
}

// TracedOverlap runs the traced Figure-4-style comparison. See
// TracedOverlapResult.
func TracedOverlap(opt Opt) *TracedOverlapResult {
	w := ImageWorkload()
	const p, t = 8, 1
	res := &TracedOverlapResult{Workload: w.Name, T: t, P: p}

	serial := w.simCfg(core.AlgoSASGD, p, t, timingEpochs, opt)
	serial.EvalEvery = timingEpochs
	serial.Allreduce = core.AllreducePTree
	serialRun := core.Train(serial, w.Problem)
	res.SerialSecs = serialRun.EpochTime()
	res.SerialSimComm = serialRun.SimComm

	tracer := obs.NewTracer(0)
	if opt.DebugAddr != "" {
		if addr, err := tracer.ServeDebug(opt.DebugAddr); err == nil {
			fprintf(opt.out(), "debug endpoint: http://%s/debug/obs\n", addr)
		} else {
			fprintf(opt.out(), "debug endpoint unavailable: %v\n", err)
		}
	}
	// Fresh config (and, crucially, a fresh fabric simulation — simCfg's
	// clocks are single-use) for the overlapped run.
	overlap := w.simCfg(core.AlgoSASGD, p, t, timingEpochs, opt)
	overlap.EvalEvery = timingEpochs
	overlap.Allreduce = core.AllreducePTree
	overlap.OverlapComm = true
	overlap.Tracer = tracer
	var reg *obsmetrics.Registry
	if opt.Metrics {
		reg = obsmetrics.New()
		overlap.Metrics = reg
	}
	run := core.Train(overlap, w.Problem)
	res.OverlapSecs = run.EpochTime()
	res.CommStats = run.Comm

	hidden, total := tracer.OverlapFraction()
	res.AllreduceHidden, res.AllreduceTotal = hidden, total
	if total > 0 {
		res.HiddenFraction = float64(hidden) / float64(total)
	}
	res.OverlapSimComm = run.SimComm
	if res.SerialSimComm > 0 {
		res.HiddenSimFraction = 1 - res.OverlapSimComm/res.SerialSimComm
	}

	tab := metrics.Table{
		Title:  "Traced overlap: SASGD T=1 p=8 (ptree), CIFAR-10",
		Header: []string{"schedule", "epoch(s)", "allreduce", "hidden", "hidden%", "sim-hidden%"},
	}
	tab.AddRow("serial", ftoa3(res.SerialSecs), "-", "-", "-", "-")
	tab.AddRow("overlap", ftoa3(res.OverlapSecs), total.Round(time.Microsecond).String(),
		hidden.Round(time.Microsecond).String(), ftoa3(100*res.HiddenFraction),
		ftoa3(100*res.HiddenSimFraction))
	fprintf(opt.out(), "%s\n", tab.String())
	fprintf(opt.out(), "sim comm: serial %ss, overlap %ss (wall hidden%% overstates on a core-starved host; see TracedOverlapResult.HiddenSimFraction)\n",
		ftoa3(res.SerialSimComm), ftoa3(res.OverlapSimComm))
	fprintf(opt.out(), "%s", tracer.ProfileTable("phase latency profile (overlapped run)"))
	fprintf(opt.out(), "%s\n", run.Comm.String())

	if snap := reg.Fleet().Snapshot(); snap != nil && snap.Boundaries > 0 {
		res.Fleet = snap
		ftab := metrics.Table{
			Title:  "fleet view (overlapped run)",
			Header: []string{"rank", "sim-comp(s)", "sim-comm(s)", "z"},
		}
		for _, r := range snap.Ranks {
			ftab.AddRow(fmt.Sprint(r.Rank), ftoa3(r.TotSimCompute), ftoa3(r.TotSimComm),
				fmt.Sprintf("%.2f", r.Z))
		}
		fprintf(opt.out(), "%s", ftab.String())
		fprintf(opt.out(), "fleet: %d boundaries, drift RMS %.4g, anomalies %v\n",
			snap.Boundaries, snap.DriftRMS, snap.Anomalies)
	}

	if opt.TracePath != "" {
		if err := tracer.WriteTraceFile(opt.TracePath); err != nil {
			fprintf(opt.out(), "trace export failed: %v\n", err)
		} else {
			res.TracePath = opt.TracePath
			fprintf(opt.out(), "trace written to %s (load in ui.perfetto.dev)\n", opt.TracePath)
		}
	}
	return res
}
