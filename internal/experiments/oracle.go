package experiments

import (
	"math/rand"

	"sasgd/internal/data"
	"sasgd/internal/metrics"
	"sasgd/internal/tensor"
	"sasgd/internal/theory"
)

// Oracle adapts a workload to theory.GradientOracle so the paper's
// constant-estimation procedure (Section II-B: estimate L and σ², bound
// Df by f(x₁)) runs against the actual model and dataset. Full-batch
// quantities are computed over the training set in chunks.
func (w *Workload) Oracle(seed int64) *theory.GradientOracle {
	net := w.Problem.Model(seed)
	ds := w.Problem.Train
	dim := net.NumParams()
	rng := rand.New(rand.NewSource(seed + 99))
	sampler := data.NewUniformSampler(ds.Len(), w.Batch, seed+7)

	const chunk = 256
	fullPass := func(x []float64, accumGrad []float64) float64 {
		net.SetParamData(x)
		total := 0.0
		n := ds.Len()
		idx := make([]int, 0, chunk)
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			idx = idx[:0]
			for i := lo; i < hi; i++ {
				idx = append(idx, i)
			}
			bx, by := ds.Batch(idx)
			if accumGrad != nil {
				loss := net.Step(bx, by)
				total += loss * float64(hi-lo)
				// Step's gradient is the chunk mean; re-weight so the
				// accumulated result is the full-batch mean gradient.
				tensor.Axpy(float64(hi-lo)/float64(n), net.GradData(), accumGrad)
			} else {
				logits := net.Forward(bx, false)
				total += net.Loss(logits, by) * float64(hi-lo)
			}
		}
		return total / float64(n)
	}

	return &theory.GradientOracle{
		Dim: dim,
		Loss: func(x []float64) float64 {
			return fullPass(x, nil)
		},
		FullGrad: func(x, out []float64) {
			for i := range out {
				out[i] = 0
			}
			fullPass(x, out)
		},
		SampleGrad: func(x, out []float64) {
			net.SetParamData(x)
			bx, by := ds.Batch(sampler.Next())
			net.Step(bx, by)
			copy(out, net.GradData())
		},
		Init: func() []float64 {
			init := w.Problem.Model(seed)
			return append([]float64(nil), init.ParamData()...)
		},
		Perturb: func() []float64 {
			u := make([]float64, dim)
			for i := range u {
				u[i] = rng.NormFloat64()
			}
			return u
		},
	}
}

// DerivedRateResult is the outcome of the paper's Figure-3 learning-rate
// derivation on a workload.
type DerivedRateResult struct {
	Constants theory.Constants
	K         int     // updates in the epoch budget used for the derivation
	Rate      float64 // γ = sqrt(Df/(M·K·L·σ²))
}

// DerivedRate reproduces the paper's Section II-B procedure on the image
// workload: estimate Df, L and σ² at the initialization, set K to the
// update count of the figure's epoch budget (the paper uses
// M·K = 500,000), and evaluate the theory-prescribed learning rate. The
// paper obtains ≈0.005 versus the practical 0.1; at our scale the same
// procedure also lands one-to-two orders of magnitude below the
// practical rate.
func DerivedRate(opt Opt) DerivedRateResult {
	w := ImageWorkload()
	o := w.Oracle(1 + opt.Seed)
	consts := theory.EstimateConstants(o, w.Batch, theory.EstimateOptions{
		VarianceSamples: 12,
		LipschitzProbes: 6,
	})
	epochs := opt.epochs(w.Epochs)
	k := epochs * (w.Problem.Train.Len() / w.Batch)
	if k < 1 {
		k = 1
	}
	res := DerivedRateResult{Constants: consts, K: k, Rate: theory.TheoryLearningRate(consts, k)}

	tab := metrics.Table{
		Title:  "Figure 3 derivation: constants estimated on the workload (paper §II-B)",
		Header: []string{"Df=f(x1)", "L (est.)", "sigma^2 (est.)", "M", "K", "gamma_theory"},
	}
	tab.AddRow(ftoa(consts.Df), ftoa(consts.L), ftoa(consts.Sigma2),
		itoa(consts.M), itoa(k), ftoa(res.Rate))
	fprintf(opt.out(), "%s\n", tab.String())
	return res
}
