package experiments

import (
	"sasgd/internal/core"
	"sasgd/internal/metrics"
)

// timingEpochs is the number of epochs a timing measurement runs: the
// simulated clock is deterministic up to scheduling jitter, so a short
// run suffices and the figure reports simulated seconds per epoch.
const timingEpochs = 2

// Fig1Row is one bar of Figure 1: the breakdown of a Downpour learner's
// epoch time into computation and communication (percent).
type Fig1Row struct {
	Workload   string
	P          int
	ComputePct float64
	CommPct    float64
	EpochSecs  float64
}

// Fig1 reproduces Figure 1: Downpour's epoch-time breakdown for 1, 2, 4
// and 8 learners on both workloads. The paper's observations: for NLC-F,
// communication dominates (>60%) at every p; for CIFAR-10 it is ≈20%
// with 1 learner rising to ≈30% with 8.
func Fig1(opt Opt) []Fig1Row {
	var rows []Fig1Row
	tab := metrics.Table{
		Title:  "Figure 1: Downpour epoch-time breakdown (computation vs communication)",
		Header: []string{"workload", "p", "compute%", "comm%", "epoch(s)"},
	}
	for _, w := range []*Workload{TextWorkload(), ImageWorkload()} {
		for _, p := range opt.ps([]int{1, 2, 4, 8}) {
			cfg := w.simCfg(core.AlgoDownpour, p, 1, timingEpochs, opt)
			cfg.EvalEvery = timingEpochs
			res := core.Train(cfg, w.Problem)
			total := res.SimCompute + res.SimComm
			row := Fig1Row{Workload: w.Name, P: p, EpochSecs: res.EpochTime()}
			if total > 0 {
				row.ComputePct = 100 * res.SimCompute / total
				row.CommPct = 100 * res.SimComm / total
			}
			rows = append(rows, row)
			tab.AddRow(w.Name, itoa(p), ftoa3(row.ComputePct), ftoa3(row.CommPct), ftoa3(row.EpochSecs))
		}
	}
	fprintf(opt.out(), "%s\n", tab.String())
	return rows
}

// EpochTimeRow is one point of Figures 4/5: SASGD's simulated epoch time
// at a given (T, p).
type EpochTimeRow struct {
	T         int
	P         int
	EpochSecs float64
}

// EpochTimeResult carries a Figure 4/5 reproduction: SASGD epoch times
// for T = 1 and T = 50 across learner counts, plus the sequential-SGD
// reference time (the figures' horizontal line).
type EpochTimeResult struct {
	Workload string
	SeqSecs  float64
	Rows     []EpochTimeRow
}

// SpeedupAt returns the speedup of (T, p) over the sequential run.
func (r *EpochTimeResult) SpeedupAt(t, p int) float64 {
	for _, row := range r.Rows {
		if row.T == t && row.P == p && row.EpochSecs > 0 {
			return r.SeqSecs / row.EpochSecs
		}
	}
	return 0
}

// EpochSecsAt returns the epoch time at (T, p), or 0 if absent.
func (r *EpochTimeResult) EpochSecsAt(t, p int) float64 {
	for _, row := range r.Rows {
		if row.T == t && row.P == p {
			return row.EpochSecs
		}
	}
	return 0
}

// Fig4 reproduces Figure 4: the impact of T on SASGD epoch time for the
// CIFAR-10 workload. Paper shape: T = 50 is ≈1.3× faster than T = 1 at
// p = 8; the p = 8 speedup over sequential is ≈4.45.
func Fig4(opt Opt) *EpochTimeResult {
	return epochTimeFigure("Figure 4", ImageWorkload(), opt)
}

// Fig5 reproduces Figure 5: the same sweep for NLC-F. Paper shape:
// T = 50 is ≈9.7× faster than T = 1 at p = 8; the p = 8 speedup over
// sequential is ≈5.35.
func Fig5(opt Opt) *EpochTimeResult {
	return epochTimeFigure("Figure 5", TextWorkload(), opt)
}

func epochTimeFigure(figure string, w *Workload, opt Opt) *EpochTimeResult {
	res := &EpochTimeResult{Workload: w.Name}

	seqCfg := w.simCfg(core.AlgoSGD, 1, 1, timingEpochs, opt)
	seqCfg.EvalEvery = timingEpochs
	res.SeqSecs = core.Train(seqCfg, w.Problem).EpochTime()

	tab := metrics.Table{
		Title:  figure + ": impact of T on SASGD epoch time, " + w.Name + " (sequential line at " + ftoa3(res.SeqSecs) + "s)",
		Header: []string{"T", "p", "epoch(s)", "speedup-vs-seq"},
	}
	for _, t := range opt.ts([]int{1, 50}) {
		for _, p := range opt.ps([]int{1, 2, 4, 8}) {
			cfg := w.simCfg(core.AlgoSASGD, p, t, timingEpochs, opt)
			cfg.EvalEvery = timingEpochs
			run := core.Train(cfg, w.Problem)
			row := EpochTimeRow{T: t, P: p, EpochSecs: run.EpochTime()}
			res.Rows = append(res.Rows, row)
			sp := 0.0
			if row.EpochSecs > 0 {
				sp = res.SeqSecs / row.EpochSecs
			}
			tab.AddRow(itoa(t), itoa(p), ftoa3(row.EpochSecs), ftoa3(sp))
		}
	}
	fprintf(opt.out(), "%s\n", tab.String())
	return res
}

// Fig6Row is one bar of Figure 6: an algorithm's simulated epoch time at
// p = 8 for a given T and workload.
type Fig6Row struct {
	Workload  string
	Algo      core.Algorithm
	T         int
	EpochSecs float64
}

// Fig6 reproduces Figure 6: epoch time of Downpour, EAMSGD and SASGD
// with 8 learners at T = 1 and T = 50 on both workloads. Paper shape:
// at T = 1 SASGD is much faster than both server-based baselines thanks
// to its lower communication complexity; at T = 50 communication is
// amortized and all three are similar.
func Fig6(opt Opt) []Fig6Row {
	const p = 8
	var rows []Fig6Row
	tab := metrics.Table{
		Title:  "Figure 6: epoch time at p=8 for Downpour, EAMSGD and SASGD",
		Header: []string{"workload", "T", "algo", "epoch(s)"},
	}
	for _, w := range []*Workload{ImageWorkload(), TextWorkload()} {
		for _, t := range opt.ts([]int{1, 50}) {
			for _, algo := range []core.Algorithm{core.AlgoDownpour, core.AlgoEAMSGD, core.AlgoSASGD} {
				cfg := w.simCfg(algo, p, t, timingEpochs, opt)
				cfg.EvalEvery = timingEpochs
				run := core.Train(cfg, w.Problem)
				row := Fig6Row{Workload: w.Name, Algo: algo, T: t, EpochSecs: run.EpochTime()}
				rows = append(rows, row)
				tab.AddRow(w.Name, itoa(t), string(algo), ftoa3(row.EpochSecs))
			}
		}
	}
	fprintf(opt.out(), "%s\n", tab.String())
	return rows
}
