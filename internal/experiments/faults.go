package experiments

import (
	"sasgd/internal/comm"
	"sasgd/internal/core"
	"sasgd/internal/metrics"
	"sasgd/internal/obs"
)

// DegradedRow is one fault scenario's measured outcome.
type DegradedRow struct {
	Scenario  string
	Spec      string  // comm.ParseFaultPlan grammar ("" = fault-free)
	EpochSecs float64 // simulated seconds per epoch
	FinalTest float64 // last recorded test accuracy
	LiveP     int     // learners still live at the end
	Faults    comm.FaultStats
}

// DegradedResult is the graceful-degradation table: SASGD p=8 on the
// simulated paper platform, fault-free vs one straggler slowed 4× vs
// one mid-run crash.
type DegradedResult struct {
	Workload  string
	P, T      int
	Rows      []DegradedRow
	TracePath string // degraded-run Chrome trace ("" = not exported)
}

// DegradedRuns measures how SASGD degrades under injected faults on the
// simulated paper platform: the fault-free baseline, a run where one
// learner computes 4× slower (with a trickle of message drops so the
// retry machinery shows up in the counters), and a run where one
// learner fail-stops mid-training and the survivors evict it, re-form,
// and finish with γp rescaled. The straggler stretches every epoch
// (bulk-synchronous barriers wait for the slowest rank); the crash
// costs one detection timeout and then runs *faster* per epoch on 7
// learners than the straggler run did on 8 — the paper's
// bulk-synchronous design degrades with the slowest survivor, not with
// the membership size. With Opt.TracePath set, the crash run's timeline
// (including retry/evict/re-form spans) is exported as a Chrome trace.
func DegradedRuns(opt Opt) *DegradedResult {
	w := ImageWorkload()
	const p, t = 8, 8
	epochs := opt.epochs(timingEpochs)
	res := &DegradedResult{Workload: w.Name, P: p, T: t}

	scenarios := []struct {
		name string
		spec string
	}{
		{"fault-free", ""},
		{"straggler 4x", "seed=2,slow=3:4,drop=0.01,timeout=5ms,evict=5s"},
		{"crash @2", "seed=2,crash=5@2,evict=500ms"},
	}
	for _, sc := range scenarios {
		cfg := w.simCfg(core.AlgoSASGD, p, t, epochs, opt)
		cfg.EvalEvery = epochs
		if sc.spec != "" {
			plan, err := comm.ParseFaultPlan(sc.spec)
			if err != nil {
				panic(err)
			}
			cfg.Faults = plan
		}
		var tracer *obs.Tracer
		if opt.TracePath != "" && sc.name == "crash @2" {
			tracer = obs.NewTracer(0)
			cfg.Tracer = tracer
		}
		run := core.Train(cfg, w.Problem)
		res.Rows = append(res.Rows, DegradedRow{
			Scenario:  sc.name,
			Spec:      sc.spec,
			EpochSecs: run.EpochTime(),
			FinalTest: run.FinalTest,
			LiveP:     run.LiveP,
			Faults:    run.Comm.Faults,
		})
		if tracer != nil {
			if err := tracer.WriteTraceFile(opt.TracePath); err != nil {
				fprintf(opt.out(), "trace export failed: %v\n", err)
			} else {
				res.TracePath = opt.TracePath
				fprintf(opt.out(), "degraded-run trace written to %s (load in ui.perfetto.dev)\n", opt.TracePath)
			}
		}
	}

	tab := metrics.Table{
		Title:  "Graceful degradation: SASGD p=8 T=8, CIFAR-10 (simulated platform)",
		Header: []string{"scenario", "epoch(s)", "test", "live", "retries", "evictions"},
	}
	for _, r := range res.Rows {
		tab.AddRow(r.Scenario, ftoa3(r.EpochSecs), metrics.Pct(r.FinalTest),
			itoa(r.LiveP), itoa64(r.Faults.Retries), itoa64(r.Faults.Evictions))
	}
	fprintf(opt.out(), "%s\n", tab.String())
	return res
}
