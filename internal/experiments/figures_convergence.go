package experiments

import (
	"fmt"

	"sasgd/internal/core"
	"sasgd/internal/metrics"
)

// trainReplicated runs one configuration opt.replicas() times with
// distinct seeds and returns the first run's result with its curve
// replaced by the pointwise mean — the reduced-scale analogue of the
// paper's smoother full-scale curves.
func trainReplicated(cfg core.Config, prob *core.Problem, n int) *core.Result {
	base := core.Train(cfg, prob)
	if n <= 1 {
		return base
	}
	curves := []metrics.Curve{base.Curve}
	for i := 1; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(1000*i)
		curves = append(curves, core.Train(c, prob).Curve)
	}
	base.Curve = meanCurves(curves)
	if len(base.Curve) > 0 {
		last := base.Curve[len(base.Curve)-1]
		base.FinalTrain, base.FinalTest = last.Train, last.Test
	}
	return base
}

// meanCurves averages curves pointwise; all inputs share the same eval
// schedule by construction.
func meanCurves(curves []metrics.Curve) metrics.Curve {
	out := append(metrics.Curve(nil), curves[0]...)
	for i := range out {
		tr, te, lo := 0.0, 0.0, 0.0
		n := 0
		for _, c := range curves {
			if i < len(c) {
				tr += c[i].Train
				te += c[i].Test
				lo += c[i].Loss
				n++
			}
		}
		out[i].Train = tr / float64(n)
		out[i].Test = te / float64(n)
		out[i].Loss = lo / float64(n)
	}
	return out
}

// ConvergenceResult carries accuracy-vs-epoch series for one figure
// panel.
type ConvergenceResult struct {
	Workload string
	Title    string
	Series   []metrics.Series
	Runs     []*core.Result
}

// Fig2 reproduces Figure 2: Downpour (T = 1) test accuracy versus epochs
// at the practical learning rate for p = 1, 2, 8, 16 on the CIFAR-10
// workload. Paper shape: with the same number of epochs, the accuracy
// gap between p > 1 and p = 1 grows with p — no linear convergence
// speedup at practical rates. The paper runs γ = 0.1 at M = 64; the
// reduced-scale calibration uses γ = 0.15 at M = 16 (same
// gradient-noise regime, see EXPERIMENTS.md).
func Fig2(opt Opt) *ConvergenceResult {
	w := ImageWorkload()
	return downpourSweep("Figure 2", w, 0.15, opt)
}

// Fig3 reproduces Figure 3: the same sweep at the small learning rate
// the ASGD convergence analysis prescribes. Paper shape: the curves for
// all p overlap almost perfectly (linear convergence speedup), but the
// rate is clearly sub-optimal — accuracy after the epoch budget is far
// below the practical-rate result.
func Fig3(opt Opt) *ConvergenceResult {
	w := ImageWorkload()
	return downpourSweep("Figure 3", w, 0.001, opt)
}

func downpourSweep(figure string, w *Workload, gamma float64, opt Opt) *ConvergenceResult {
	res := &ConvergenceResult{
		Workload: w.Name,
		Title:    fmt.Sprintf("%s: Downpour convergence for %s with γ=%g", figure, w.Name, gamma),
	}
	epochs := opt.epochs(w.Epochs)
	for _, p := range opt.ps([]int{1, 2, 8, 16}) {
		cfg := w.trainCfg(core.AlgoDownpour, p, 1, epochs, opt)
		cfg.Gamma = gamma
		cfg.EvalEvery = evalStride(epochs)
		run := trainReplicated(cfg, w.Problem, opt.replicas())
		res.Runs = append(res.Runs, run)
		res.Series = append(res.Series, metrics.Series{Label: fmt.Sprintf("p=%d", p), Curve: run.Curve})
	}
	fprintf(opt.out(), "%s\n", metrics.FormatFigure(res.Title, res.Series))
	return res
}

// TImpactResult carries one panel of Figures 7/8: SASGD accuracy for a
// fixed learner count across aggregation intervals.
type TImpactResult struct {
	Workload string
	P        int
	Series   []metrics.Series
	Runs     []*core.Result
}

// FinalTestAt returns the final test accuracy of the run with the given
// T (0 if absent).
func (r *TImpactResult) FinalTestAt(t int) float64 {
	for _, run := range r.Runs {
		if run.T == t {
			return run.FinalTest
		}
	}
	return 0
}

// Fig7 reproduces Figure 7: SASGD test accuracy with T ∈ {1, 5, 25, 50}
// for p ∈ {2, 4, 8, 16} on CIFAR-10. Paper shape: accuracy at the end of
// the budget degrades slightly as T grows, and the degradation widens
// with p (≈1.3% at p = 2, ≈3.2% at p = 16).
func Fig7(opt Opt) []TImpactResult {
	return tImpactFigure("Figure 7", ImageWorkload(), opt)
}

// Fig8 reproduces Figure 8: the same sweep for NLC-F. Paper shape: the
// degradation with T is much less pronounced than on CIFAR-10; at p = 16
// the best accuracy is achieved with large T.
func Fig8(opt Opt) []TImpactResult {
	return tImpactFigure("Figure 8", TextWorkload(), opt)
}

func tImpactFigure(figure string, w *Workload, opt Opt) []TImpactResult {
	var out []TImpactResult
	epochs := opt.epochs(w.Epochs)
	for _, p := range opt.ps([]int{2, 4, 8, 16}) {
		panel := TImpactResult{Workload: w.Name, P: p}
		for _, t := range opt.ts([]int{1, 5, 25, 50}) {
			cfg := w.trainCfg(core.AlgoSASGD, p, t, epochs, opt)
			cfg.EvalEvery = evalStride(epochs)
			run := trainReplicated(cfg, w.Problem, opt.replicas())
			panel.Runs = append(panel.Runs, run)
			panel.Series = append(panel.Series, metrics.Series{Label: fmt.Sprintf("T=%d", t), Curve: run.Curve})
		}
		out = append(out, panel)
		fprintf(opt.out(), "%s\n", metrics.FormatFigure(
			fmt.Sprintf("%s: SASGD test accuracy, %s, p=%d", figure, w.Name, p), panel.Series))
	}
	return out
}

// ThreeWayResult carries one panel of Figures 9/10: Downpour vs EAMSGD
// vs SASGD at T = 50 for a fixed learner count, with training and test
// curves.
type ThreeWayResult struct {
	Workload string
	P        int
	Runs     map[core.Algorithm]*core.Result
}

// Fig9 reproduces Figure 9: training and test accuracy of the three
// algorithms at T = 50 on CIFAR-10 for p ∈ {2, 4, 8, 16}. Paper shape:
// SASGD best throughout; EAMSGD second; Downpour erratic from p = 4 and
// near random guess at p = 8, 16; the SASGD–EAMSGD gap grows with p.
func Fig9(opt Opt) []ThreeWayResult {
	return threeWayFigure("Figure 9", ImageWorkload(), opt)
}

// Fig10 reproduces Figure 10: the same comparison on NLC-F. Paper shape:
// SASGD holds the sequential ceiling (≈60% test) at every p with ≈100%
// training accuracy, while Downpour and EAMSGD degrade as p grows.
func Fig10(opt Opt) []ThreeWayResult {
	return threeWayFigure("Figure 10", TextWorkload(), opt)
}

func threeWayFigure(figure string, w *Workload, opt Opt) []ThreeWayResult {
	var out []ThreeWayResult
	epochs := opt.epochs(w.Epochs)
	algos := []core.Algorithm{core.AlgoDownpour, core.AlgoEAMSGD, core.AlgoSASGD}
	for _, p := range opt.ps([]int{2, 4, 8, 16}) {
		panel := ThreeWayResult{Workload: w.Name, P: p, Runs: map[core.Algorithm]*core.Result{}}
		var trainSeries, testSeries []metrics.Series
		for _, algo := range algos {
			cfg := w.trainCfg(algo, p, 50, epochs, opt)
			cfg.EvalEvery = evalStride(epochs)
			run := trainReplicated(cfg, w.Problem, opt.replicas())
			panel.Runs[algo] = run
			trainSeries = append(trainSeries, metrics.Series{Label: string(algo), Curve: run.Curve})
			testSeries = append(testSeries, metrics.Series{Label: string(algo), Curve: run.Curve})
		}
		out = append(out, panel)
		fprintf(opt.out(), "%s\n", metrics.FormatTrainFigure(
			fmt.Sprintf("%s (training): %s, T=50, p=%d", figure, w.Name, p), trainSeries))
		fprintf(opt.out(), "%s\n", metrics.FormatFigure(
			fmt.Sprintf("%s (test): %s, T=50, p=%d", figure, w.Name, p), testSeries))
	}
	return out
}

// evalStride spaces accuracy evaluations so a run records ≈10 points.
func evalStride(epochs int) int {
	s := epochs / 10
	if s < 1 {
		s = 1
	}
	return s
}
