package experiments

import "strconv"

// Small formatting helpers shared by the drivers.

func itoa(v int) string { return strconv.Itoa(v) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

func ftoa1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

func ftoa3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

func itoa64(v int64) string { return strconv.FormatInt(v, 10) }
