package experiments

import (
	"sasgd/internal/core"
	"sasgd/internal/metrics"
)

// CompressRow is one point on the compression frontier: a codec setting
// and its measured wire volume, simulated epoch time, and accuracy.
type CompressRow struct {
	Codec     string  // "dense", "topk", "qint8"
	K         float64 // configured top-k fraction (0 = not applicable)
	Adapt     bool    // adaptive-sparsity controller on
	FinalK    float64 // final working fraction (equal to K unless Adapt)
	EpochSecs float64 // simulated seconds per epoch
	FinalTest float64 // last recorded test accuracy
	Words     int64   // float64-equivalent words on the wire
	Reduction float64 // dense words ÷ this row's words
}

// CompressResult is the gradient-compression frontier: SASGD p=8 T=1 on
// the simulated paper platform, dense vs error-feedback top-k at several
// sparsity levels (fixed and adaptive) vs int8 quantization, all through
// the backward-overlapped bucketed path.
type CompressResult struct {
	Workload string
	P, T     int
	Rows     []CompressRow
}

// CompressionFrontier measures what gradient compression buys on the
// communication-heavy end of the SASGD trade-off (T = 1: every local
// step aggregates, so the wire dominates). Each row is one overlapped
// run on the simulated paper platform; the dense row anchors the
// reduction column. Top-k at 5% must land at least 5× below dense on
// the wire — the root re-sparsifies the merged aggregate back to k (the
// dropped mass goes to its residual), so the broadcast never widens
// past 2k words per bucket no matter how disjoint the learners'
// supports are.
func CompressionFrontier(opt Opt) *CompressResult {
	w := ImageWorkload()
	const p, t = 8, 1
	epochs := opt.epochs(timingEpochs)
	res := &CompressResult{Workload: w.Name, P: p, T: t}

	settings := []struct {
		codec string
		k     float64
		adapt bool
	}{
		{"dense", 0, false},
		{core.CodecTopK, 0.01, false},
		{core.CodecTopK, 0.05, false},
		{core.CodecTopK, 0.10, false},
		{core.CodecTopK, 0.05, true},
		{core.CodecQInt8, 0, false},
	}
	for _, sc := range settings {
		cfg := w.simCfg(core.AlgoSASGD, p, t, epochs, opt)
		cfg.EvalEvery = epochs
		cfg.OverlapComm = true
		if sc.codec != "dense" {
			cfg.Compress = sc.codec
			cfg.CompressK = sc.k
			cfg.CompressAdapt = sc.adapt
		}
		run := core.Train(cfg, w.Problem)
		row := CompressRow{
			Codec:     sc.codec,
			K:         sc.k,
			Adapt:     sc.adapt,
			FinalK:    run.CompressK,
			EpochSecs: run.EpochTime(),
			FinalTest: run.FinalTest,
			Words:     run.WordsMoved,
		}
		if len(res.Rows) > 0 && row.Words > 0 {
			row.Reduction = float64(res.Rows[0].Words) / float64(row.Words)
		}
		res.Rows = append(res.Rows, row)
	}

	tab := metrics.Table{
		Title:  "Compression frontier: SASGD p=8 T=1, CIFAR-10 (simulated platform, overlapped)",
		Header: []string{"codec", "k", "epoch(s)", "test", "words", "vs dense"},
	}
	for _, r := range res.Rows {
		k := "-"
		if r.K > 0 {
			k = ftoa3(r.K)
			if r.Adapt {
				k += "→" + ftoa3(r.FinalK)
			}
		}
		red := "1.0×"
		if r.Reduction > 0 {
			red = ftoa1(r.Reduction) + "×"
		}
		tab.AddRow(r.Codec, k, ftoa3(r.EpochSecs), metrics.Pct(r.FinalTest), itoa64(r.Words), red)
	}
	fprintf(opt.out(), "%s\n", tab.String())
	return res
}
