package experiments

import (
	"bytes"
	"strings"
	"testing"

	"sasgd/internal/core"
	"sasgd/internal/data"
)

func TestTableIMatchesPaper(t *testing.T) {
	r := TableI(Opt{})
	if r.Params != 506378 {
		t.Errorf("Table I parameters = %d, want 506378 (≈0.5M)", r.Params)
	}
	for _, want := range []string{"Conv2D (3,64,5,5)", "Conv2D (64,128,3,3)", "Conv2D (128,256,3,3)", "Conv2D (256,128,2,2)", "Linear 128→10", "Dropout"} {
		if !strings.Contains(r.Summary, want) {
			t.Errorf("Table I summary missing %q:\n%s", want, r.Summary)
		}
	}
}

func TestTableIIMatchesPaper(t *testing.T) {
	r := TableII(Opt{})
	want := 100*200 + 200 + 1000*400 + 1000 + 1000*1000 + 1000 + 1000*311 + 311
	if r.Params != want {
		t.Errorf("Table II parameters = %d, want %d (≈2M)", r.Params, want)
	}
	for _, s := range []string{"TemporalConv (100,200)", "TemporalConv (200,1000)", "Linear 1000→1000", "Linear 1000→311"} {
		if !strings.Contains(r.Summary, s) {
			t.Errorf("Table II summary missing %q:\n%s", s, r.Summary)
		}
	}
}

func TestTheorem1RowsMatchPrediction(t *testing.T) {
	rows := Theorem1(Opt{})
	if len(rows) == 0 {
		t.Fatal("no Theorem 1 rows")
	}
	for _, r := range rows {
		if r.Gap < r.PredGap*0.6 || r.Gap > r.PredGap*1.6 {
			t.Errorf("p=%d α=%g: gap %.3f not ≈ p/α = %.3f", r.P, r.Alpha, r.Gap, r.PredGap)
		}
	}
	// The paper's example: p=32, α=16 → gap ≈ 2.
	for _, r := range rows {
		if r.P == 32 && r.Alpha == 16 {
			if r.Gap < 1.5 || r.Gap > 2.7 {
				t.Errorf("paper example gap = %.3f, want ≈2", r.Gap)
			}
		}
	}
}

func TestFig1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing figure: skipped in -short")
	}
	var buf bytes.Buffer
	rows := Fig1(Opt{Out: &buf, Ps: []int{1, 8}})
	if len(rows) != 4 {
		t.Fatalf("Fig1 rows = %d, want 4", len(rows))
	}
	byKey := map[string]Fig1Row{}
	for _, r := range rows {
		byKey[r.Workload+itoa(r.P)] = r
	}
	// Paper: NLC-F communication share > 60% at every p.
	for _, p := range []int{1, 8} {
		if r := byKey["NLC-F"+itoa(p)]; r.CommPct < 60 {
			t.Errorf("NLC-F p=%d comm%% = %.1f, want > 60", p, r.CommPct)
		}
	}
	// Paper: CIFAR-10 ≈20% at p=1 rising to ≈30% at p=8.
	c1, c8 := byKey["CIFAR-10"+itoa(1)], byKey["CIFAR-10"+itoa(8)]
	if c1.CommPct < 10 || c1.CommPct > 30 {
		t.Errorf("CIFAR-10 p=1 comm%% = %.1f, want ≈20", c1.CommPct)
	}
	if c8.CommPct <= c1.CommPct {
		t.Errorf("CIFAR-10 comm%% did not grow with p: %.1f -> %.1f", c1.CommPct, c8.CommPct)
	}
	if c8.CommPct > 55 {
		t.Errorf("CIFAR-10 p=8 comm%% = %.1f, want ≈30", c8.CommPct)
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Error("Fig1 printed no table")
	}
}

func TestFig4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing figure: skipped in -short")
	}
	r := Fig4(Opt{Ps: []int{1, 8}})
	if r.SeqSecs <= 0 {
		t.Fatal("no sequential reference time")
	}
	// Paper: T=50 ≈1.3× faster than T=1 at p=8.
	ratio := r.EpochSecsAt(1, 8) / r.EpochSecsAt(50, 8)
	if ratio < 1.1 || ratio > 1.7 {
		t.Errorf("CIFAR T=1/T=50 epoch-time ratio at p=8 = %.2f, want ≈1.3", ratio)
	}
	// Speedup over sequential at p=8, T=50 is substantial but sublinear.
	sp := r.SpeedupAt(50, 8)
	if sp < 3 || sp > 8 {
		t.Errorf("CIFAR speedup at (T=50, p=8) = %.2f, want sublinear in (3, 8)", sp)
	}
}

func TestFig5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing figure: skipped in -short")
	}
	r := Fig5(Opt{Ps: []int{1, 8}})
	// Paper: T=50 ≈9.7× faster than T=1 at p=8 for NLC-F.
	ratio := r.EpochSecsAt(1, 8) / r.EpochSecsAt(50, 8)
	if ratio < 6 || ratio > 13 {
		t.Errorf("NLC-F T=1/T=50 epoch-time ratio at p=8 = %.2f, want ≈9.7", ratio)
	}
	sp := r.SpeedupAt(50, 8)
	if sp < 3.5 || sp > 8 {
		t.Errorf("NLC-F speedup at (T=50, p=8) = %.2f, want ≈5.35", sp)
	}
}

func TestFig6Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing figure: skipped in -short")
	}
	rows := Fig6(Opt{})
	get := func(w string, algo core.Algorithm, T int) float64 {
		for _, r := range rows {
			if r.Workload == w && r.Algo == algo && r.T == T {
				return r.EpochSecs
			}
		}
		t.Fatalf("missing row %s/%s/T=%d", w, algo, T)
		return 0
	}
	for _, w := range []string{"CIFAR-10", "NLC-F"} {
		// Paper: at T=1 SASGD beats the parameter-server baselines.
		if get(w, core.AlgoSASGD, 1) >= get(w, core.AlgoDownpour, 1) {
			t.Errorf("%s: SASGD not faster than Downpour at T=1", w)
		}
		// Paper: at T=50 all three are similar (within 15%).
		s, d := get(w, core.AlgoSASGD, 50), get(w, core.AlgoDownpour, 50)
		if d/s > 1.15 || s/d > 1.15 {
			t.Errorf("%s: T=50 epoch times not similar (sasgd %.3f vs downpour %.3f)", w, s, d)
		}
	}
	// Paper: the NLC-F T=1 training-time reduction is large ("up to 50%").
	red := 1 - get("NLC-F", core.AlgoSASGD, 1)/get("NLC-F", core.AlgoDownpour, 1)
	if red < 0.25 {
		t.Errorf("NLC-F T=1 SASGD time reduction = %.0f%%, want substantial", 100*red)
	}
}

func TestFig2GapGrowsWithP(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence figure: skipped in -short")
	}
	r := Fig2(Opt{Epochs: 8, Ps: []int{1, 16}})
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	// Over the whole (short) budget, p=16 must lag p=1 at the practical
	// rate: compare mean test accuracy across the recorded epochs, with a
	// small tolerance because the asynchronous run is nondeterministic.
	p1 := r.Runs[0].Curve.AUC()
	p16 := r.Runs[1].Curve.AUC()
	if p16 >= p1+0.02 {
		t.Errorf("Downpour p=16 (AUC %.3f) not behind p=1 (AUC %.3f) at γ=0.15", p16, p1)
	}
}

func TestFig3SmallRateOverlapsAndUnderperforms(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence figure: skipped in -short")
	}
	small := Fig3(Opt{Epochs: 8, Ps: []int{1, 16}})
	big := Fig2(Opt{Epochs: 8, Ps: []int{1}})
	s1 := small.Runs[0].FinalTest
	s16 := small.Runs[1].FinalTest
	// Overlap: the small-rate curves for p=1 and p=16 end close together.
	if diff := s16 - s1; diff < -0.12 || diff > 0.2 {
		t.Errorf("small-rate curves do not overlap: p=1 %.3f vs p=16 %.3f", s1, s16)
	}
	// Sub-optimality: far below the practical-rate p=1 accuracy.
	if s1 >= big.Runs[0].FinalTest {
		t.Errorf("theory rate (%.3f) not below practical rate (%.3f) at equal epochs", s1, big.Runs[0].FinalTest)
	}
}

func TestFig7SASGDDegradesWithT(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence figure: skipped in -short")
	}
	panels := Fig7(Opt{Epochs: 8, Ps: []int{16}, Ts: []int{1, 50}})
	if len(panels) != 1 {
		t.Fatalf("panels = %d", len(panels))
	}
	p := panels[0]
	t1, t50 := p.FinalTestAt(1), p.FinalTestAt(50)
	if t50 >= t1 {
		t.Errorf("SASGD p=16: T=50 accuracy (%.3f) not below T=1 (%.3f) at a short budget", t50, t1)
	}
}

func TestFig9SASGDBeatsBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence figure: skipped in -short")
	}
	panels := Fig9(Opt{Epochs: 8, Ps: []int{8}})
	runs := panels[0].Runs
	sasgd := runs[core.AlgoSASGD].FinalTest
	downpour := runs[core.AlgoDownpour].FinalTest
	if sasgd <= downpour {
		t.Errorf("SASGD (%.3f) did not beat Downpour (%.3f) at T=50, p=8", sasgd, downpour)
	}
	// Paper: Downpour degenerates toward random guess (10%) on CIFAR at
	// p ≥ 8 with T=50.
	if downpour > 0.45 {
		t.Errorf("Downpour at T=50, p=8 = %.3f; expected severe degradation", downpour)
	}
	if sasgd < 0.6 {
		t.Errorf("SASGD at T=50, p=8 = %.3f; expected stable convergence", sasgd)
	}
}

func TestFig10SASGDHoldsCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence figure: skipped in -short")
	}
	panels := Fig10(Opt{Epochs: 12, Ps: []int{16}})
	runs := panels[0].Runs
	sasgd := runs[core.AlgoSASGD]
	if sasgd.FinalTest < 0.5 {
		t.Errorf("SASGD NLC-F test accuracy %.3f, want ≈ the ≈57%% ceiling", sasgd.FinalTest)
	}
	if sasgd.FinalTrain < 0.95 {
		t.Errorf("SASGD NLC-F train accuracy %.3f, want ≈100%%", sasgd.FinalTrain)
	}
	if down := runs[core.AlgoDownpour].FinalTest; down >= sasgd.FinalTest {
		t.Errorf("Downpour (%.3f) not below SASGD (%.3f) on NLC-F at p=16", down, sasgd.FinalTest)
	}
}

func TestWorkloadCostProfiles(t *testing.T) {
	img := ImageWorkload()
	txt := TextWorkload()
	if img.PaperCost.Params != 506378 {
		t.Errorf("image paper params = %d", img.PaperCost.Params)
	}
	if txt.PaperCost.Params <= img.PaperCost.Params {
		t.Error("NLC-F model should be larger than CIFAR's (≈2M vs ≈0.5M)")
	}
	if img.SmallParams >= img.PaperCost.Params {
		t.Error("reduced-scale image model not smaller than paper model")
	}
	if img.Batch <= 0 || txt.Batch != 1 {
		t.Errorf("batch sizes: img %d, txt %d", img.Batch, txt.Batch)
	}
}

func TestOptDefaults(t *testing.T) {
	var o Opt
	if o.epochs(7) != 7 {
		t.Error("epochs default")
	}
	if got := o.ps([]int{1, 2}); len(got) != 2 {
		t.Error("ps default")
	}
	o.Ps = []int{4}
	if got := o.ps([]int{1, 2}); len(got) != 1 || got[0] != 4 {
		t.Error("ps override")
	}
	if o.out() == nil {
		t.Error("out() returned nil")
	}
}

func TestDerivedRateFallsBelowPractical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-batch gradient estimation: skipped in -short")
	}
	r := DerivedRate(Opt{})
	if r.Rate <= 0 {
		t.Fatalf("derived rate %g", r.Rate)
	}
	// The paper's point: the analysis-prescribed rate is far below the
	// practical one (0.005 vs 0.1 on their setup).
	if r.Rate >= ImageWorkload().Gamma/2 {
		t.Errorf("derived rate %g not well below the practical %g", r.Rate, ImageWorkload().Gamma)
	}
	if r.Constants.L <= 0 || r.Constants.Sigma2 <= 0 || r.Constants.Df <= 0 {
		t.Errorf("degenerate constants: %+v", r.Constants)
	}
}

func TestAveragingVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence experiment: skipped in -short")
	}
	rows := AveragingVariants(Opt{Epochs: 10})
	byName := map[string]AveragingRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	endAvg := byName["average-at-end (Zinkevich)"]
	everyBatch := byName["average-every-minibatch (Li)"]
	sasgd := byName["SASGD T=50"]
	// Paper: one-shot averaging gives "very poor" accuracy relative to a
	// tuned interval.
	if endAvg.FinalTest >= sasgd.FinalTest-0.05 {
		t.Errorf("average-at-end (%.3f) not clearly below SASGD T=50 (%.3f)", endAvg.FinalTest, sasgd.FinalTest)
	}
	// Paper: per-minibatch averaging converges fine but costs more time
	// per epoch than the amortized interval.
	if everyBatch.FinalTest < sasgd.FinalTest-0.08 {
		t.Errorf("average-every-minibatch accuracy %.3f unexpectedly poor", everyBatch.FinalTest)
	}
	if everyBatch.EpochSecs <= sasgd.EpochSecs {
		t.Errorf("per-minibatch averaging epoch time %.3f not above T=50's %.3f", everyBatch.EpochSecs, sasgd.EpochSecs)
	}
}

func TestFormatHelpers(t *testing.T) {
	if itoa(42) != "42" {
		t.Error("itoa")
	}
	if ftoa(1.5) != "1.5" {
		t.Error("ftoa")
	}
	if ftoa3(1.23456) != "1.235" {
		t.Error("ftoa3")
	}
}

func TestScaleSelection(t *testing.T) {
	// The paper-scale *image* dataset is 50k 32×32×3 samples — too heavy
	// to generate in a unit test — so verify the image path via its
	// config constants and exercise the full paper-scale path on the
	// cheap text workload.
	if cfg := data.PaperImageConfig(); cfg.TrainN != 50000 || cfg.Size != 32 {
		t.Errorf("paper image config %+v", cfg)
	}
	small := ImageWorkloadAt(ScaleSmall)
	if small.Problem.Train.Len() >= 50000 {
		t.Error("small scale not smaller than paper scale")
	}

	tp := TextWorkloadAt(ScalePaper)
	if tp.Problem.Train.Len() != 2500 || tp.Gamma != 0.1 {
		t.Errorf("paper-scale NLC-F: n=%d γ=%g", tp.Problem.Train.Len(), tp.Gamma)
	}
	if tp.SmallParams != tp.PaperCost.Params {
		t.Errorf("paper-scale executed model (%d params) should equal the paper model (%d)",
			tp.SmallParams, tp.PaperCost.Params)
	}
	if tp.Epochs != 200 {
		t.Errorf("paper-scale NLC-F epochs = %d", tp.Epochs)
	}
}
