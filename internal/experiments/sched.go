package experiments

import (
	"sasgd/internal/core"
	"sasgd/internal/metrics"
	"sasgd/internal/netsim"
	"sasgd/internal/obs"
)

// SchedRow is one point on the communication-scheduling frontier: a
// (T-schedule, topology, application) policy and its measured traffic,
// cross-island traffic, simulated epoch time, and accuracy.
type SchedRow struct {
	Policy       string  // e.g. "flat-eager", "hier-delayed"
	TSched       string  // static / decay / adaptive
	Hier         bool    // two-level island aggregation
	Delayed      bool    // delayed global application
	FinalT       int     // period in effect at the end of the run
	EpochSecs    float64 // simulated seconds per epoch
	FinalTest    float64 // last recorded test accuracy
	Words        int64   // float64-equivalent words on the wire
	CrossWords   int64   // words that crossed an island boundary
	CrossPerStep float64 // CrossWords / local steps per learner
	// CrossReduction is the flat-eager baseline's cross-island words
	// divided by this row's (1.0 for the baseline itself).
	CrossReduction float64
}

// SchedResult is the communication-scheduling frontier plus the
// delayed-application timing leg. Part one sweeps the composable
// policies on an uplink-constrained fabric (the shared uplink out of
// each two-rank island runs at a quarter of the peer-link rate, the
// regime the hierarchy is built for). Part two reruns the
// communication-bound T=1 column with delayed application on the
// standard fabric and measures, from the recorded timeline, how much of
// the allreduce wall-clock the one-round delay hid behind compute.
type SchedResult struct {
	Workload                  string
	P, TInner, Groups, TOuter int
	Rows                      []SchedRow

	// The T=1 delayed-application leg (standard fabric, ptree).
	SerialSecs  float64 // serial-aggregation baseline epoch time
	OverlapSecs float64 // backward-overlapped baseline epoch time
	DelayedSecs float64 // delayed-application epoch time
	// HiddenSimFraction is the fraction of the serial schedule's
	// communication seconds that the delayed schedule kept off the
	// simulated critical path: 1 − delayed.SimComm/serial.SimComm. The
	// simulator charges a learner communication time only when an
	// aggregate's arrival Syncs its clock forward — i.e. only when the
	// learner actually waited — so this is the simulated analogue of the
	// traced hidden fraction, and the meaningful one on hosts without
	// enough cores to run the learners in real parallel.
	HiddenSimFraction float64
	// OverlapHiddenSimFraction is the same quantity for the PR-4
	// backward-overlap baseline, the apples-to-apples bar the delayed
	// schedule has to clear.
	OverlapHiddenSimFraction float64
	// HiddenTraceFraction is obs.Tracer.HiddenFraction() on the delayed
	// run: wall-clock allreduce time inside the same rank's compute
	// spans. On a single-core host the learners' compute serializes, so
	// peer skew stretches every allreduce span far past any one rank's
	// compute window and this undercounts badly; it is reported for
	// completeness next to the simulated fraction.
	HiddenTraceFraction float64
}

// CommScheduleFrontier measures what the scheduling layer buys when the
// inter-island uplink — not the peer link — is the scarce resource.
// Every row runs the same local-step schedule (T_inner = 4 between
// intra-island aggregations); the policies differ only in when and how
// far gradients travel. Hierarchical rows aggregate inside each
// simulated island every boundary and cross the uplink once every
// TOuter boundaries, so their cross-island words per step must come in
// at least TOuter/2× under the flat baseline's (the outer exchange
// moves leader aggregates both ways, hence the factor-of-two slack).
func CommScheduleFrontier(opt Opt) *SchedResult {
	w := ImageWorkload()
	const p, tInner, groups, tOuter = 8, 4, 4, 4
	epochs := opt.epochs(timingEpochs)
	res := &SchedResult{Workload: w.Name, P: p, TInner: tInner, Groups: groups, TOuter: tOuter}

	// An uplink-constrained fabric: word sizes rescaled to paper scale as
	// usual, but island-crossing transfers get a quarter of the link rate.
	uplinkSim := func() *netsim.Sim {
		cfg := netsim.DefaultConfig()
		cfg.WordFactor = float64(w.PaperCost.Params) / float64(w.SmallParams)
		cfg.UplinkBandwidth = cfg.PeerBandwidth / 4
		return netsim.New(p, cfg)
	}

	policies := []struct {
		policy        string
		tsched        string
		hier, delayed bool
	}{
		{"flat-eager", core.TSchedStatic, false, false},
		{"flat-eager", core.TSchedDecay, false, false},
		{"flat-eager", core.TSchedAdaptive, false, false},
		{"flat-delayed", core.TSchedStatic, false, true},
		{"hier-eager", core.TSchedStatic, true, false},
		{"hier-delayed", core.TSchedStatic, true, true},
		{"hier-delayed", core.TSchedAdaptive, true, true},
	}
	// Local steps per learner, for the per-step traffic column (every row
	// runs the identical step schedule).
	shards := w.Problem.Train.Partition(p)
	batch := w.Batch
	if w.TimingBatch > 0 {
		batch = w.TimingBatch
	}
	steps := float64(epochs * ((shards[0].Len() + batch - 1) / batch))

	for _, pc := range policies {
		cfg := w.simCfg(core.AlgoSASGD, p, tInner, epochs, opt)
		cfg.EvalEvery = epochs
		cfg.Sim = uplinkSim()
		cfg.TSched = pc.tsched
		cfg.DelayedApply = pc.delayed
		if pc.hier {
			cfg.HierGroups = groups
			cfg.TOuter = tOuter
		}
		run := core.Train(cfg, w.Problem)
		row := SchedRow{
			Policy:       pc.policy,
			TSched:       pc.tsched,
			Hier:         pc.hier,
			Delayed:      pc.delayed,
			FinalT:       run.FinalT,
			EpochSecs:    run.EpochTime(),
			FinalTest:    run.FinalTest,
			Words:        run.WordsMoved,
			CrossWords:   run.Comm.CrossWords,
			CrossPerStep: float64(run.Comm.CrossWords) / steps,
		}
		if len(res.Rows) > 0 && row.CrossWords > 0 {
			row.CrossReduction = float64(res.Rows[0].CrossWords) / float64(row.CrossWords)
		} else if len(res.Rows) == 0 {
			row.CrossReduction = 1
		}
		res.Rows = append(res.Rows, row)
	}

	tab := metrics.Table{
		Title: "Comm-schedule frontier: SASGD p=8 T_inner=4, CIFAR-10 (uplink = peer/4, islands of 2)",
		Header: []string{"policy", "tsched", "T_end", "epoch(s)", "test", "words", "cross/step", "vs flat"},
	}
	for _, r := range res.Rows {
		red := "-"
		if r.CrossReduction > 0 {
			red = ftoa1(r.CrossReduction) + "×"
		}
		tab.AddRow(r.Policy, r.TSched, itoa(r.FinalT), ftoa3(r.EpochSecs),
			metrics.Pct(r.FinalTest), itoa64(r.Words), ftoa1(r.CrossPerStep), red)
	}
	fprintf(opt.out(), "%s\n", tab.String())

	// Part two: the communication-bound column. Delayed application
	// launches each boundary's allreduce behind the NEXT round's compute,
	// so the whole step — forward, backward, local updates — is available
	// to hide it, not just the backward tail.
	leg := func(mut func(*core.Config)) *core.Result {
		cfg := w.simCfg(core.AlgoSASGD, p, 1, timingEpochs, opt)
		cfg.EvalEvery = timingEpochs
		cfg.Allreduce = core.AllreducePTree
		mut(&cfg)
		return core.Train(cfg, w.Problem)
	}
	serial := leg(func(c *core.Config) {})
	res.SerialSecs = serial.EpochTime()
	overlap := leg(func(c *core.Config) { c.OverlapComm = true })
	res.OverlapSecs = overlap.EpochTime()
	if serial.SimComm > 0 {
		res.OverlapHiddenSimFraction = 1 - overlap.SimComm/serial.SimComm
	}

	tracer := obs.NewTracer(0)
	run := leg(func(c *core.Config) {
		c.TSched = core.TSchedStatic
		c.DelayedApply = true
		c.Tracer = tracer
	})
	res.DelayedSecs = run.EpochTime()
	if serial.SimComm > 0 {
		res.HiddenSimFraction = 1 - run.SimComm/serial.SimComm
	}
	hidden, total := tracer.HiddenFraction()
	if total > 0 {
		res.HiddenTraceFraction = float64(hidden) / float64(total)
	}

	tab = metrics.Table{
		Title:  "Delayed application: SASGD T=1 p=8 (ptree), CIFAR-10",
		Header: []string{"schedule", "epoch(s)", "surfaced comm(s)", "hidden(sim)%", "hidden(trace)%"},
	}
	tab.AddRow("serial", ftoa3(res.SerialSecs), ftoa3(serial.SimComm), "-", "-")
	tab.AddRow("overlap", ftoa3(res.OverlapSecs), ftoa3(overlap.SimComm),
		ftoa3(100*res.OverlapHiddenSimFraction), "-")
	tab.AddRow("delayed", ftoa3(res.DelayedSecs), ftoa3(run.SimComm),
		ftoa3(100*res.HiddenSimFraction), ftoa3(100*res.HiddenTraceFraction))
	fprintf(opt.out(), "%s\n", tab.String())
	return res
}
