package netsim

import (
	"math"
	"sync"
	"testing"

	"sasgd/internal/comm"
)

func TestClockAdvanceAndSyncAccounting(t *testing.T) {
	c := &Clock{}
	c.Advance(2)
	c.Sync(5) // +3 of communication
	c.Sync(1) // in the past: ignored
	if c.Now() != 5 {
		t.Errorf("Now = %g, want 5", c.Now())
	}
	cp, cm := c.Split()
	if cp != 2 || cm != 3 {
		t.Errorf("Split = (%g, %g), want (2, 3)", cp, cm)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("Reset did not zero the clock")
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	(&Clock{}).Advance(-1)
}

func TestClockConcurrentReads(t *testing.T) {
	c := &Clock{}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			c.Advance(0.001)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			c.Split()
			c.Now()
		}
	}()
	wg.Wait()
}

func TestTreeHops(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 2}, {2, 3, 2}, {0, 2, 4}, {1, 2, 4}, {0, 7, 6}, {3, 4, 6},
	}
	for _, c := range cases {
		if got := treeHops(c.a, c.b); got != c.want {
			t.Errorf("treeHops(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Symmetry.
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if treeHops(a, b) != treeHops(b, a) {
				t.Fatalf("treeHops not symmetric at (%d, %d)", a, b)
			}
		}
	}
}

func TestXferTimeScalesWithSizeAndDistance(t *testing.T) {
	s := New(8, DefaultConfig())
	cm := s.CostModel()
	near := cm.XferTime(0, 1, 1000)
	far := cm.XferTime(0, 7, 1000)
	if far <= near {
		t.Error("transfer to a distant leaf not slower")
	}
	small := cm.XferTime(0, 1, 1000)
	big := cm.XferTime(0, 1, 1_000_000)
	if big <= small {
		t.Error("bigger payload not slower")
	}
}

func TestWordFactorRescalesBytes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WordFactor = 10
	cfg.PeerLatency = 0
	s1 := New(2, DefaultConfig())
	s10 := New(2, cfg)
	base := DefaultConfig()
	base.PeerLatency = 0
	s1 = New(2, base)
	r1 := s1.CostModel().XferTime(0, 1, 1000)
	r10 := s10.CostModel().XferTime(0, 1, 1000)
	if math.Abs(r10/r1-10) > 1e-9 {
		t.Errorf("WordFactor scaling = %g, want 10", r10/r1)
	}
}

func TestServerOpTimeContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServerContention = 0.5
	s := New(4, cfg)
	cm := s.CostModel()
	one := cm.ServerOpTime(1000, 4, 1)
	four := cm.ServerOpTime(1000, 4, 4)
	want := one * (1 + 0.5*3)
	if math.Abs(four-want) > 1e-12 {
		t.Errorf("contended op = %g, want %g", four, want)
	}
}

func TestChargeBatchJitterBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ComputeJitter = 0.2
	s := New(1, cfg)
	base := 1e9/cfg.Flops + cfg.BatchOverhead
	prev := 0.0
	for i := 0; i < 200; i++ {
		s.ChargeBatch(0, 1e9)
		now := s.Clock(0).Now()
		dt := now - prev
		prev = now
		if dt < base*0.8-1e-12 || dt > base*1.2+1e-12 {
			t.Fatalf("jittered batch time %g outside ±20%% of %g", dt, base)
		}
	}
}

func TestChargeBatchDeterministicPerRank(t *testing.T) {
	a, b := New(2, DefaultConfig()), New(2, DefaultConfig())
	for i := 0; i < 50; i++ {
		a.ChargeBatch(0, 1e9)
		b.ChargeBatch(0, 1e9)
	}
	if a.Clock(0).Now() != b.Clock(0).Now() {
		t.Error("identical charge sequences produced different clocks")
	}
}

// TestBatchSpanMatchesChargeBatch: BatchSpan must consume the same jitter
// stream and advance the clock identically to ChargeBatch (the overlap
// path must not perturb the serial path's simulated times), and its
// returned span must bracket the advance exactly.
func TestBatchSpanMatchesChargeBatch(t *testing.T) {
	a, b := New(1, DefaultConfig()), New(1, DefaultConfig())
	for i := 0; i < 50; i++ {
		before := b.Clock(0).Now()
		a.ChargeBatch(0, 1e9)
		start, dt := b.BatchSpan(0, 1e9)
		if start != before {
			t.Fatalf("batch %d: span start %g, clock before was %g", i, start, before)
		}
		if got := b.Clock(0).Now(); got != start+dt {
			t.Fatalf("batch %d: clock %g, want start+dt = %g", i, got, start+dt)
		}
		if a.Clock(0).Now() != b.Clock(0).Now() {
			t.Fatalf("batch %d: ChargeBatch clock %g != BatchSpan clock %g (jitter streams diverged)",
				i, a.Clock(0).Now(), b.Clock(0).Now())
		}
	}
}

func TestMaxTime(t *testing.T) {
	s := New(3, DefaultConfig())
	s.Clock(1).Advance(5)
	s.Clock(2).Advance(3)
	if s.MaxTime() != 5 {
		t.Errorf("MaxTime = %g, want 5", s.MaxTime())
	}
}

// TestSimulatedCollectiveCostsGrowLogarithmically checks the headline
// complexity claim the figures rely on: the critical-path time of a tree
// allreduce grows like log p, not p.
func TestSimulatedCollectiveCostsGrowLogarithmically(t *testing.T) {
	epochTime := func(p int) float64 {
		cfg := DefaultConfig()
		cfg.ComputeJitter = 0
		sim := New(p, cfg)
		g := comm.NewSimGroup(p, sim.Clocks(), sim.CostModel())
		var wg sync.WaitGroup
		const words = 100000
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				buf := make([]float64, words)
				g.AllreduceTree(r, buf)
			}(r)
		}
		wg.Wait()
		return sim.MaxTime()
	}
	t2 := epochTime(2)
	t4 := epochTime(4)
	t8 := epochTime(8)
	// log₂ scaling: time(8)/time(2) ≈ 3, far below the ×4 of linear
	// scaling in p.
	ratio := t8 / t2
	if ratio > 3.6 {
		t.Errorf("allreduce cost scales too fast: t2=%g t4=%g t8=%g (t8/t2=%.2f)", t2, t4, t8, ratio)
	}
	if t8 <= t4 || t4 <= t2 {
		t.Errorf("allreduce cost not increasing: %g %g %g", t2, t4, t8)
	}
}

func TestNewPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, DefaultConfig())
}

func TestFlatTopologyUniformLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = TopologyFlat
	s := New(8, cfg)
	cm := s.CostModel()
	near := cm.XferTime(0, 1, 1000)
	far := cm.XferTime(0, 7, 1000)
	if near != far {
		t.Errorf("flat topology not uniform: %g vs %g", near, far)
	}
	if self := cm.XferTime(3, 3, 1000); self >= near {
		t.Errorf("self transfer (%g) should skip switch hops (%g)", self, near)
	}
}

func TestTreeBeatsFlatForNeighbors(t *testing.T) {
	tree := New(8, DefaultConfig())
	flat := DefaultConfig()
	flat.Topology = TopologyFlat
	f := New(8, flat)
	// Adjacent leaves share a switch in both models (2 hops), but distant
	// leaves pay more on the tree.
	if tree.CostModel().XferTime(0, 1, 10) != f.CostModel().XferTime(0, 1, 10) {
		t.Error("neighbor cost should match across topologies")
	}
	if tree.CostModel().XferTime(0, 7, 10) <= f.CostModel().XferTime(0, 7, 10) {
		t.Error("distant leaves should cost more on the tree")
	}
}

func TestIslandOfFollowsIslandSize(t *testing.T) {
	s := New(8, DefaultConfig()) // IslandSize defaults to 2
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for r, w := range want {
		if got := s.IslandOf(r); got != w {
			t.Errorf("IslandOf(%d) = %d, want %d", r, got, w)
		}
	}
	cfg := DefaultConfig()
	cfg.IslandSize = 4
	s = New(8, cfg)
	if s.IslandOf(3) != 0 || s.IslandOf(4) != 1 {
		t.Errorf("IslandSize=4: IslandOf(3)=%d IslandOf(4)=%d, want 0, 1",
			s.IslandOf(3), s.IslandOf(4))
	}
}

// TestUplinkPricesCrossIslandOnly: a constrained uplink must slow only
// transfers that cross an island boundary; intra-island transfers keep
// the peer-link rate.
func TestUplinkPricesCrossIslandOnly(t *testing.T) {
	base := DefaultConfig()
	cfg := DefaultConfig()
	cfg.UplinkBandwidth = cfg.PeerBandwidth / 4
	sBase, sUp := New(8, base), New(8, cfg)
	const words = 100000
	// Ranks 0,1 share an island (IslandSize 2): same cost either way.
	if a, b := sBase.CostModel().XferTime(0, 1, words), sUp.CostModel().XferTime(0, 1, words); a != b {
		t.Errorf("intra-island transfer repriced: %g vs %g", a, b)
	}
	// Ranks 1,2 straddle the boundary: the constrained uplink is slower.
	if a, b := sBase.CostModel().XferTime(1, 2, words), sUp.CostModel().XferTime(1, 2, words); b <= a {
		t.Errorf("cross-island transfer not repriced: base %g, uplink %g", a, b)
	}
}

// TestUplinkZeroKeepsLegacyCosts pins backward compatibility: the
// default (zero) uplink must reproduce the pre-island cost model
// exactly, so every previously published epoch time stands.
func TestUplinkZeroKeepsLegacyCosts(t *testing.T) {
	s := New(8, DefaultConfig())
	cm := s.CostModel()
	for from := 0; from < 8; from++ {
		for to := 0; to < 8; to++ {
			cfgWords := 12345
			want := float64(treeHops(from, to))*DefaultConfig().PeerLatency +
				float64(cfgWords)*DefaultConfig().WordBytes/DefaultConfig().PeerBandwidth
			if got := cm.XferTime(from, to, cfgWords); math.Abs(got-want) > 1e-15*want {
				t.Fatalf("XferTime(%d,%d) = %g, want legacy %g", from, to, got, want)
			}
		}
	}
}
