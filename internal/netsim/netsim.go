// Package netsim models the paper's hardware platform — an IBM Power8
// host with 8 NVIDIA K80 GPUs attached through a PCIe binary tree — as an
// analytic cost model attached to the real communication schedule
// produced by internal/comm. Learner goroutines carry simulated clocks;
// compute is charged from FLOP counts, point-to-point transfers from link
// bandwidth and latency, and parameter-server requests from an analytic
// host-link/shard contention model. Epoch-time figures (Figs. 1, 4, 5, 6) are
// computed in simulated seconds, so they reflect the paper's platform
// rather than the host this repository happens to run on.
//
// Because the accuracy experiments run reduced-scale models, the cost
// model supports a WordFactor that rescales the observed message sizes
// to the paper-scale model so timing stays faithful to the published
// system (DESIGN.md §2).
package netsim

import (
	"fmt"
	"math/rand"
	"sync"

	"sasgd/internal/comm"
)

// Config holds the fabric and device parameters. The defaults are
// calibrated to the paper's observations, not to vendor datasheets: the
// published figures constrain the *ratios* (communication share, T=1 vs
// T=50 speedups), and DefaultConfig reproduces those ratios.
type Config struct {
	// PeerBandwidth is the learner-to-learner (GPU-direct over the PCIe
	// tree) bandwidth in bytes/second, used by the collectives.
	PeerBandwidth float64
	// PeerLatency is the fixed per-message latency between learners in
	// seconds.
	PeerLatency float64
	// HostBandwidth is the learner-to-host bandwidth in bytes/second used
	// for parameter-server traffic, which must cross to the CPUs ("a
	// narrower channel to the host").
	HostBandwidth float64
	// HostLatency is the fixed per-request latency to the host in seconds.
	HostLatency float64
	// ServerBandwidth is the rate in bytes/second at which the server
	// shards collectively apply or serve one learner's request (the work
	// parallelizes across shards; queueing behind other learners is
	// modeled by ServerContention).
	ServerBandwidth float64
	// ServerContention is the fraction of each additional learner's
	// traffic that effectively serializes with this learner's on the
	// shared host link and the server shards: the per-operation cost is
	// multiplied by 1 + ServerContention·(p−1). Zero models perfectly
	// independent paths; 1 models one fully shared pipe (the O(m·p)
	// aggregate traffic the paper assigns to parameter servers).
	ServerContention float64
	// WordBytes is the wire size of one parameter (4: fp32 on the wire,
	// as in the Torch substrate).
	WordBytes float64
	// Flops is the effective device throughput in FLOP/s for training
	// kernels.
	Flops float64
	// BatchOverhead is the fixed per-minibatch host/kernel-launch
	// overhead in seconds; it dominates at minibatch size 1 (NLC-F).
	BatchOverhead float64
	// ComputeJitter is the half-width of the uniform relative jitter on
	// per-minibatch compute time (stragglers under bulk-synchronous
	// barriers).
	ComputeJitter float64
	// WordFactor rescales observed message word counts to paper-scale
	// words (paper model size / executed model size); 1 when the executed
	// model is paper-scale.
	WordFactor float64
	// Topology selects the peer-link latency model: TopologyTree (the
	// paper's PCIe binary tree of switches — latency grows with the tree
	// distance between leaves) or TopologyFlat (one shared switch, two
	// hops between any pair). Bandwidth is per-link in both cases.
	Topology Topology
	// IslandSize is the number of adjacent leaves sharing a first-level
	// switch (an NVLink island / PCIe switch pair): rank r belongs to
	// island r/IslandSize. Defaults to 2, matching TopologyTree's leaf
	// pairs (treeHops(2k, 2k+1) == 2). The hierarchical aggregation layer
	// partitions its groups to match these islands.
	IslandSize int
	// UplinkBandwidth is the bandwidth in bytes/second of transfers that
	// cross an island boundary (the shared uplink toward the root
	// switches). Zero prices cross-island traffic at PeerBandwidth,
	// which keeps the cost model — and every previously published epoch
	// time — unchanged unless a run opts into a constrained uplink.
	UplinkBandwidth float64
}

// Topology identifies a peer-interconnect latency model.
type Topology string

// The implemented topologies.
const (
	TopologyTree Topology = "tree" // PCIe binary tree (paper's platform)
	TopologyFlat Topology = "flat" // single crossbar switch
)

// DefaultConfig returns the calibrated platform model.
func DefaultConfig() Config {
	return Config{
		PeerBandwidth:    1.2e9,
		PeerLatency:      30e-6,
		HostBandwidth:    0.8e9,
		HostLatency:      50e-6,
		ServerBandwidth:  1.3e9,
		ServerContention: 0.2,
		WordBytes:        4,
		Flops:            0.24e12,
		BatchOverhead:    4e-3,
		ComputeJitter:    0.10,
		WordFactor:       1,
		Topology:         TopologyTree,
		IslandSize:       2,
	}
}

// Sim owns the simulated clocks for a group of learners plus the cost
// model they are charged against.
type Sim struct {
	cfg      Config
	clocks   []*Clock
	rng      []*rand.Rand
	slowdown []float64 // per-rank compute multiplier; 0 or 1 = nominal
}

// New returns a simulation for p learners.
func New(p int, cfg Config) *Sim {
	if p <= 0 {
		panic(fmt.Sprintf("netsim: New(%d): learner count must be positive", p))
	}
	if cfg.WordFactor <= 0 {
		cfg.WordFactor = 1
	}
	if cfg.IslandSize <= 0 {
		cfg.IslandSize = 2
	}
	s := &Sim{cfg: cfg}
	for i := 0; i < p; i++ {
		s.clocks = append(s.clocks, &Clock{})
		s.rng = append(s.rng, rand.New(rand.NewSource(int64(7919*i+13))))
	}
	return s
}

// Config returns the simulation's configuration.
func (s *Sim) Config() Config { return s.cfg }

// Clocks returns the per-learner clocks as comm.Clock values for
// comm.NewSimGroup.
func (s *Sim) Clocks() []comm.Clock {
	out := make([]comm.Clock, len(s.clocks))
	for i, c := range s.clocks {
		out[i] = c
	}
	return out
}

// Clock returns learner rank's clock.
func (s *Sim) Clock(rank int) *Clock { return s.clocks[rank] }

// ChargeBatch advances learner rank's clock by the compute time of one
// minibatch costing flops floating-point operations (paper-scale), with
// straggler jitter.
func (s *Sim) ChargeBatch(rank int, flops float64) {
	s.BatchSpan(rank, flops)
}

// BatchSpan is ChargeBatch returning the minibatch's simulated span: the
// clock reading when the batch started and the (jittered) duration it was
// advanced by. The bucketed, backward-overlapped aggregation uses the span
// to stamp each gradient bucket with its layer's backward-completion time
// — start + dt·fraction — while the clock itself still jumps to the end
// of the batch before any bucket launches, keeping the compute/comm
// accounting and the per-rank jitter stream identical to the serial path
// (one draw per batch, same order).
func (s *Sim) BatchSpan(rank int, flops float64) (start, dt float64) {
	dt = flops/s.cfg.Flops + s.cfg.BatchOverhead
	if j := s.cfg.ComputeJitter; j > 0 {
		dt *= 1 + (s.rng[rank].Float64()*2-1)*j
	}
	if s.slowdown != nil && s.slowdown[rank] > 1 {
		dt *= s.slowdown[rank]
	}
	start = s.clocks[rank].Now()
	s.clocks[rank].Advance(dt)
	return start, dt
}

// SetSlowdown marks learner rank as a straggler: every subsequent
// minibatch's simulated compute time is multiplied by factor (values
// ≤ 1 restore nominal speed). The fault-injection layer uses this to
// make a FaultPlan's slow=R:K clause show up in simulated epoch times
// as well as in real scheduling.
func (s *Sim) SetSlowdown(rank int, factor float64) {
	if s.slowdown == nil {
		s.slowdown = make([]float64, len(s.clocks))
	}
	s.slowdown[rank] = factor
}

// SkipBatches replays n minibatches' worth of straggler-jitter draws for
// learner rank without charging its clock. Checkpoint resume uses it so
// a restarted run's remaining batches see the same jitter stream a
// never-interrupted run would have — simulated times stay comparable.
func (s *Sim) SkipBatches(rank, n int) {
	if s.cfg.ComputeJitter <= 0 {
		return
	}
	for i := 0; i < n; i++ {
		s.rng[rank].Float64()
	}
}

// MaxTime returns the latest simulated time across all learners.
func (s *Sim) MaxTime() float64 {
	m := 0.0
	for _, c := range s.clocks {
		if t := c.Now(); t > m {
			m = t
		}
	}
	return m
}

// IslandOf returns the interconnect island (first-level switch group)
// that learner rank's leaf hangs off: rank/IslandSize. The hierarchical
// aggregation layer aligns its intra-group collectives with these
// islands so the cheap links carry the frequent traffic.
func (s *Sim) IslandOf(rank int) int { return rank / s.cfg.IslandSize }

// CostModel returns the comm.CostModel view of the fabric.
func (s *Sim) CostModel() comm.CostModel { return (*costModel)(s) }

type costModel Sim

func (c *costModel) bytes(words int) float64 {
	return float64(words) * c.cfg.WordFactor * c.cfg.WordBytes
}

// XferTime implements comm.CostModel: peer transfers over the selected
// interconnect. Latency is per switch hop (tree distance for the PCIe
// tree, a constant two hops for the flat crossbar); bandwidth is the
// link rate, except that transfers crossing an island boundary are
// priced at UplinkBandwidth when one is configured (the shared uplink
// toward the root switches is narrower than the intra-island links).
func (c *costModel) XferTime(from, to int, words int) float64 {
	hops := 0
	switch c.cfg.Topology {
	case TopologyFlat:
		if from != to {
			hops = 2
		}
	default:
		hops = treeHops(from, to)
	}
	bw := c.cfg.PeerBandwidth
	if c.cfg.UplinkBandwidth > 0 && from/c.cfg.IslandSize != to/c.cfg.IslandSize {
		bw = c.cfg.UplinkBandwidth
	}
	return float64(hops)*c.cfg.PeerLatency + c.bytes(words)/bw
}

// ServerOpTime implements comm.CostModel: one full push or pull of
// `words` parameters against a server with the given shard count, with
// `learners` peers contending. The cost has three parts — host-link
// latency, the payload transfer over the host link, and the server-side
// apply/serve work — and the whole thing is scaled by the expected
// steady-state contention 1 + ServerContention·(learners−1), capturing
// that aggregate parameter-server traffic grows as O(m·p) through a
// shared channel while shards only parallelize the server-side work.
func (c *costModel) ServerOpTime(words, shards, learners int) float64 {
	if shards <= 0 {
		shards = 1
	}
	base := c.cfg.HostLatency +
		c.bytes(words)/c.cfg.HostBandwidth +
		c.bytes(words)/c.cfg.ServerBandwidth
	contention := 1 + c.cfg.ServerContention*float64(learners-1)
	return base * contention
}

// treeHops returns the number of switch hops between leaves from and to
// of a binary tree (the OSS accelerator's PCIe switch fabric): twice the
// distance to their lowest common ancestor level.
func treeHops(from, to int) int {
	if from == to {
		return 0
	}
	a, b := from, to
	h := 0
	for a != b {
		a >>= 1
		b >>= 1
		h++
	}
	return 2 * h
}

// Clock is a simulated per-learner clock implementing comm.Clock. It
// splits elapsed time into compute (Advance) and communication (Sync
// waits), which is exactly the breakdown Fig. 1 reports. It is protected
// by a mutex so observer goroutines may read totals while a learner runs.
type Clock struct {
	mu      sync.Mutex
	now     float64
	compute float64
	comm    float64
}

// Now implements comm.Clock.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance implements comm.Clock; dt is accounted as compute.
func (c *Clock) Advance(dt float64) {
	if dt < 0 {
		panic("netsim: Clock.Advance with negative duration")
	}
	c.mu.Lock()
	c.now += dt
	c.compute += dt
	c.mu.Unlock()
}

// Sync implements comm.Clock; any forward jump is accounted as
// communication (transfer plus waiting).
func (c *Clock) Sync(t float64) {
	c.mu.Lock()
	if t > c.now {
		c.comm += t - c.now
		c.now = t
	}
	c.mu.Unlock()
}

// Split returns the accumulated (compute, communication) seconds.
func (c *Clock) Split() (compute, communication float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compute, c.comm
}

// Reset zeroes the clock and its accounting (used between measured
// epochs).
func (c *Clock) Reset() {
	c.mu.Lock()
	c.now, c.compute, c.comm = 0, 0, 0
	c.mu.Unlock()
}
