package comm

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// ---------------------------------------------------------------------
// Selection core.

// refSelect is the full-sort reference the quickselect path must match:
// indices of the k largest-magnitude entries, ties broken toward lower
// indices, returned in ascending index order.
func refSelect(dense []float64, k int) []int {
	idx := make([]int, len(dense))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ma, mb := math.Abs(dense[idx[a]]), math.Abs(dense[idx[b]])
		if ma != mb {
			return ma > mb
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	top := append([]int(nil), idx[:k]...)
	sort.Ints(top)
	return top
}

// TestSelectorMatchesSortReference: the pooled quickselect selection
// must keep exactly the entries a full (magnitude descending, index
// ascending) sort would keep, including tie-heavy inputs where the
// threshold magnitude repeats many times.
func TestSelectorMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s selector
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		dense := make([]float64, n)
		for i := range dense {
			if trial%3 == 0 {
				// Quantized values force magnitude ties on the threshold.
				dense[i] = float64(rng.Intn(7)-3) * 0.5
			} else {
				dense[i] = rng.NormFloat64()
			}
		}
		k := 1 + rng.Intn(n)
		got := s.pick(dense, k, nil)
		want := refSelect(dense, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d n=%d k=%d: selected %d entries, want %d", trial, n, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d n=%d k=%d: selection %v != reference %v", trial, n, k, got, want)
			}
		}
	}
}

func TestQuickselectKthLargest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(100)
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(10)) // duplicates exercise the equal band
		}
		k := 1 + rng.Intn(n)
		scratch := append([]float64(nil), a...)
		got := quickselectKthLargest(scratch, k)
		ref := append([]float64(nil), a...)
		sort.Sort(sort.Reverse(sort.Float64Slice(ref)))
		if got != ref[k-1] {
			t.Fatalf("trial %d: kth largest = %g, want %g (k=%d, a=%v)", trial, got, ref[k-1], k, a)
		}
	}
}

func TestSparsityKRounding(t *testing.T) {
	cases := []struct {
		ratio float64
		n     int
		want  int
	}{
		{0.05, 100, 5},
		{0.05, 130, 7}, // ceil(6.5)
		{0.01, 10, 1},  // clamps up to 1
		{0.999999, 1000, 1000},
		{1, 64, 64},
		{0.5, 1, 1},
	}
	for _, c := range cases {
		if got := SparsityK(c.ratio, c.n); got != c.want {
			t.Errorf("SparsityK(%g, %d) = %d, want %d", c.ratio, c.n, got, c.want)
		}
	}
}

// ---------------------------------------------------------------------
// Error-feedback conservation (the codec contract), p = 1: no peers, so
// the invariant is checkable coordinate by coordinate, bitwise.

func TestCodecConservationBitwise(t *testing.T) {
	for _, codec := range []string{"topk", "qint8"} {
		t.Run(codec, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			const n = 257
			g := NewGroup(1)
			comp := NewCompressor(codec)
			seg := make([]float64, n)
			res := make([]float64, n)
			for round := 0; round < 5; round++ {
				for i := range seg {
					seg[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2))
				}
				// folded is the exact quantity the codec splits: it folds res
				// into seg with the same addition, so the sum is reproducible
				// bitwise.
				folded := make([]float64, n)
				for i := range folded {
					folded[i] = seg[i] + res[i]
				}
				comp.Allreduce(g, 0, seg, res, 0.1, 0, nil, 0)
				// At p=1 the "aggregate" in seg is exactly this rank's own
				// transmitted part, so transmitted + res_after == folded must
				// hold bitwise at every coordinate — no gradient mass is ever
				// created or destroyed by the codec.
				for i := range folded {
					if got := seg[i] + res[i]; got != folded[i] {
						t.Fatalf("round %d coord %d: transmitted %g + residual %g = %g, want %g (conservation broken)",
							round, i, seg[i], res[i], got, folded[i])
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Multi-rank reference aggregates.

// refMergePairs mirrors mergePairs on (idx, val) structs — separate code
// computing the same fixed left+right association.
func refMergePairs(a, b []float64) []float64 {
	var out []float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i], a[i+1])
			i += 2
		case a[i] > b[j]:
			out = append(out, b[j], b[j+1])
			j += 2
		default:
			out = append(out, a[i], a[i+1]+b[j+1])
			i += 2
			j += 2
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// TestTopKMultiRankMatchesReference replays the codec's whole pipeline
// in independent code — fold, sort-reference selection, binomial-tree
// pair merge in the same fixed order, root re-sparsification with
// residual feedback — and requires the codec to match it bitwise on
// every rank, for power-of-two and ragged group sizes.
func TestTopKMultiRankMatchesReference(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		const n = 101
		const ratio = 0.1
		k := SparsityK(ratio, n)
		rng := rand.New(rand.NewSource(int64(100 + p)))
		segs := make([][]float64, p)
		ress := make([][]float64, p)
		wantRes := make([][]float64, p)
		enc := make([][]float64, p)
		for r := 0; r < p; r++ {
			segs[r] = make([]float64, n)
			ress[r] = make([]float64, n)
			for i := range segs[r] {
				segs[r][i] = rng.NormFloat64()
				ress[r][i] = rng.NormFloat64() * 0.01
			}
			// Reference: fold, select with the sort reference, split.
			folded := make([]float64, n)
			for i := range folded {
				folded[i] = segs[r][i] + ress[r][i]
			}
			wantRes[r] = append([]float64(nil), folded...)
			for _, j := range refSelect(folded, k) {
				enc[r] = append(enc[r], float64(j), folded[j])
				wantRes[r][j] = 0
			}
		}
		// Reference tree merge: the same (accumulated, incoming) association
		// order the codec's binomial walk uses.
		acc := make([][]float64, p)
		for r := range acc {
			acc[r] = enc[r]
		}
		for step := 1; step < p; step <<= 1 {
			for r := 0; r < p; r += 2 * step {
				if r+step < p {
					acc[r] = refMergePairs(acc[r], acc[r+step])
				}
			}
		}
		agg := acc[0]
		if len(agg) > 2*k {
			// Root re-sparsification reference: keep the k largest-magnitude
			// aggregate pairs, fold the dropped ones into rank 0's residual.
			vals := make([]float64, len(agg)/2)
			for i := range vals {
				vals[i] = agg[2*i+1]
			}
			var kept []float64
			for _, pi := range refSelect(vals, k) {
				kept = append(kept, agg[2*pi], agg[2*pi+1])
			}
			keep := make(map[int]bool, k)
			for i := 0; i < len(kept); i += 2 {
				keep[int(kept[i])] = true
			}
			for i := 0; i < len(agg); i += 2 {
				if !keep[int(agg[i])] {
					wantRes[0][int(agg[i])] += agg[i+1]
				}
			}
			agg = kept
		}
		wantSeg := make([]float64, n)
		for i := 0; i < len(agg); i += 2 {
			wantSeg[int(agg[i])] = agg[i+1]
		}

		g := NewGroup(p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				NewCompressor("topk").Allreduce(g, r, segs[r], ress[r], ratio, 0, nil, 0)
			}(r)
		}
		wg.Wait()
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if segs[r][i] != wantSeg[i] {
					t.Fatalf("p=%d rank %d: aggregate coord %d = %g, want %g (bitwise)", p, r, i, segs[r][i], wantSeg[i])
				}
				if ress[r][i] != wantRes[r][i] {
					t.Fatalf("p=%d rank %d: residual coord %d = %g, want %g (bitwise)", p, r, i, ress[r][i], wantRes[r][i])
				}
			}
		}
	}
}

// TestQInt8MultiRankExactAggregate replays qint8 independently: shared
// scale from the global absmax of the folded values, per-rank rounding,
// exact integer sums. Every rank must hold (Σ q)·s bitwise, and every
// residual must reconstruct its folded value bitwise (the Sterbenz
// property the codec's error feedback relies on).
func TestQInt8MultiRankExactAggregate(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		const n = 77
		rng := rand.New(rand.NewSource(int64(200 + p)))
		segs := make([][]float64, p)
		ress := make([][]float64, p)
		folded := make([][]float64, p)
		gmax := 0.0
		for r := 0; r < p; r++ {
			segs[r] = make([]float64, n)
			ress[r] = make([]float64, n)
			folded[r] = make([]float64, n)
			for i := range segs[r] {
				segs[r][i] = rng.NormFloat64()
				ress[r][i] = rng.NormFloat64() * 0.001
				folded[r][i] = segs[r][i] + ress[r][i]
				if a := math.Abs(folded[r][i]); a > gmax {
					gmax = a
				}
			}
		}
		scale := gmax / 127
		qsum := make([]int32, n)
		wantRes := make([][]float64, p)
		for r := 0; r < p; r++ {
			wantRes[r] = make([]float64, n)
			for i, v := range folded[r] {
				qv := int32(math.Round(v / scale))
				if qv > 127 {
					qv = 127
				} else if qv < -127 {
					qv = -127
				}
				qsum[i] += qv
				wantRes[r][i] = v - float64(qv)*scale
			}
		}

		g := NewGroup(p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				NewCompressor("qint8").Allreduce(g, r, segs[r], ress[r], 0, 0, nil, 0)
			}(r)
		}
		wg.Wait()
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if want := float64(qsum[i]) * scale; segs[r][i] != want {
					t.Fatalf("p=%d rank %d: aggregate coord %d = %g, want %g (bitwise)", p, r, i, segs[r][i], want)
				}
				if ress[r][i] != wantRes[r][i] {
					t.Fatalf("p=%d rank %d: residual coord %d = %g, want %g (bitwise)", p, r, i, ress[r][i], wantRes[r][i])
				}
			}
			// Sterbenz: each rank's transmitted value plus its residual
			// reconstructs the folded value bitwise.
			for i := 0; i < n; i++ {
				qv := int32(math.Round(folded[r][i] / scale))
				if qv > 127 {
					qv = 127
				} else if qv < -127 {
					qv = -127
				}
				if got := float64(qv)*scale + ress[r][i]; got != folded[r][i] {
					t.Fatalf("p=%d rank %d coord %d: transmitted %g + residual %g != folded %g",
						p, r, i, float64(qv)*scale, ress[r][i], folded[r][i])
				}
			}
		}
	}
}

// TestQInt8ZeroBucket: an all-zero bucket on every rank must agree on a
// zero aggregate without dividing by a zero scale.
func TestQInt8ZeroBucket(t *testing.T) {
	const p, n = 3, 16
	g := NewGroup(p)
	var wg sync.WaitGroup
	segs := make([][]float64, p)
	for r := 0; r < p; r++ {
		segs[r] = make([]float64, n)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			NewCompressor("qint8").Allreduce(g, r, segs[r], make([]float64, n), 0, 0, nil, 0)
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		for i, v := range segs[r] {
			if v != 0 {
				t.Fatalf("rank %d coord %d: %g, want 0", r, i, v)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Wire volume.

// runCodecRound drives one compressed allreduce on every rank of a fresh
// group and returns the words it put on the wire.
func runCodecRound(p int, codec string, segs, ress [][]float64, ratio float64) int64 {
	g := NewGroup(p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			NewCompressor(codec).Allreduce(g, r, segs[r], ress[r], ratio, 0, nil, 0)
		}(r)
	}
	wg.Wait()
	return g.WordsSent()
}

// TestTopKWireVolume pins the ≥5× reduction at k = 5%, p = 8 in the
// adversarial case — fully disjoint supports, where the merged aggregate
// is 8× wider than k and only the root's re-sparsification keeps the
// broadcast narrow. The reduce leg's messages are bounded by each
// subtree's union (≤ 2k·leaves words) and the broadcast leg by the
// re-sparsified 2k, so the total is capped well below dense's 2(p−1)n.
func TestTopKWireVolume(t *testing.T) {
	const p, n = 8, 4000
	const ratio = 0.05
	k := SparsityK(ratio, n)
	segs := make([][]float64, p)
	ress := make([][]float64, p)
	for r := 0; r < p; r++ {
		segs[r] = make([]float64, n)
		ress[r] = make([]float64, n)
		// Rank r's large entries live in its own n/p-wide stripe, so the
		// selections are pairwise disjoint.
		for i := 0; i < k; i++ {
			segs[r][r*(n/p)+i] = 10 + float64(i)
		}
		for i := range segs[r] {
			if segs[r][i] == 0 {
				segs[r][i] = 1e-6
			}
		}
	}
	sparse := runCodecRound(p, "topk", segs, ress, ratio)

	// Dense baseline: the same group shape moving the full buffer.
	g := NewGroup(p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]float64, n)
			g.AllreduceTree(r, buf)
		}(r)
	}
	wg.Wait()
	dense := g.WordsSent()

	if sparse*5 > dense {
		t.Fatalf("topk k=5%% moved %d words, dense %d: reduction %.2f× < 5×", sparse, dense, float64(dense)/float64(sparse))
	}
	// Structural cap: reduce ≤ Σ 2k·min(step, p−r) + broadcast ≤ (p−1)·2k.
	capWords := int64(0)
	for r := 1; r < p; r++ {
		step := r & -r
		capWords += int64(2 * k * min(step, p-r))
	}
	capWords += int64((p - 1) * 2 * k)
	if sparse > capWords {
		t.Errorf("topk moved %d words, above the structural cap %d", sparse, capWords)
	}
}

// TestQInt8WireVolumeExact pins the quantized wire volume to the word:
// every reduce message is ⌈n/8⌉ (int8 leaf) or ⌈n/4⌉ (int16 partial
// sum), every broadcast message ⌈n/4⌉, plus one word each way for the
// scale agreement — no headers, no padding beyond the last word's lanes.
func TestQInt8WireVolumeExact(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		const n = 1001
		rng := rand.New(rand.NewSource(int64(p)))
		segs := make([][]float64, p)
		ress := make([][]float64, p)
		for r := 0; r < p; r++ {
			segs[r] = make([]float64, n)
			ress[r] = make([]float64, n)
			for i := range segs[r] {
				segs[r][i] = rng.NormFloat64()
			}
		}
		got := runCodecRound(p, "qint8", segs, ress, 0)
		want := int64(0)
		for r := 1; r < p; r++ {
			step := r & -r                               // the tree step at which rank r sends
			want += int64(quantWords(n, min(step, p-r))) // packed contribution
			want += 1                                    // scale reduce
		}
		want += int64((p - 1) * (quantWords(n, p) + 1)) // broadcasts
		if got != want {
			t.Fatalf("p=%d: qint8 moved %d words, want exactly %d", p, got, want)
		}
		// The headline ratio: ~4× against the dense 2(p−1)n tree.
		denseWords := int64(2 * (p - 1) * n)
		if got*3 > denseWords {
			t.Errorf("p=%d: qint8 reduction only %.2f×, want > 3×", p, float64(denseWords)/float64(got))
		}
	}
}

// TestCompressedTrafficLabels: codec traffic lands under its own stats
// label ("sparse" for topk pairs, "quant" for packed integers), so the
// unified comm stats attribute compression wins to the right algorithm.
func TestCompressedTrafficLabels(t *testing.T) {
	const p, n = 4, 64
	for codec, label := range map[string]string{"topk": "sparse", "qint8": "quant"} {
		g := NewGroup(p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				seg := make([]float64, n)
				for i := range seg {
					seg[i] = float64(r*n + i + 1)
				}
				NewCompressor(codec).Allreduce(g, r, seg, make([]float64, n), 0.25, 0, nil, 0)
			}(r)
		}
		wg.Wait()
		st := g.Stats()
		if st.PerAlgo[label].Words == 0 {
			t.Errorf("%s: no traffic under label %q: %+v", codec, label, st.PerAlgo)
		}
		if st.PerAlgo[label].Words != st.Words {
			t.Errorf("%s: %d of %d words under label %q, want all", codec, st.PerAlgo[label].Words, st.Words, label)
		}
	}
}

// ---------------------------------------------------------------------
// Bucketed composition.

// TestBucketedCompressedMatchesSync: BeginCompressed through the async
// comm worker must produce bitwise the same aggregates and residuals as
// driving the codec synchronously bucket by bucket — the property that
// lets the serial compressed schedule and the resilient path share the
// engine with the overlap path.
func TestBucketedCompressedMatchesSync(t *testing.T) {
	for _, codec := range []string{"topk", "qint8"} {
		const p, n = 4, 300
		const ratio = 0.1
		segments := []Segment{{0, 120}, {120, 80}, {200, 100}}
		rng := rand.New(rand.NewSource(31))
		bufA := make([][]float64, p)
		resA := make([][]float64, p)
		bufB := make([][]float64, p)
		resB := make([][]float64, p)
		for r := 0; r < p; r++ {
			bufA[r] = make([]float64, n)
			resA[r] = make([]float64, n)
			for i := range bufA[r] {
				bufA[r][i] = rng.NormFloat64()
			}
			bufB[r] = append([]float64(nil), bufA[r]...)
			resB[r] = make([]float64, n)
		}

		// Async: bucketed workers, buckets launched in descending order.
		gA := NewGroup(p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				b := NewBucketedAllreduce(gA, r, segments, 0)
				comp := NewCompressor(codec)
				handles := make([]Handle, len(segments))
				for round := 0; round < 3; round++ {
					for bi := len(segments) - 1; bi >= 0; bi-- {
						handles[bi] = b.BeginCompressed(bi, bufA[r], resA[r], comp, ratio, 0)
					}
					for bi := range handles {
						handles[bi].Wait()
					}
				}
				b.Close()
			}(r)
		}
		wg.Wait()

		// Sync: the same codec collectives, driven inline.
		gB := NewGroup(p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				comp := NewCompressor(codec)
				for round := 0; round < 3; round++ {
					for bi := len(segments) - 1; bi >= 0; bi-- {
						s := segments[bi]
						comp.Allreduce(gB, r, bufB[r][s.Off:s.Off+s.Len], resB[r][s.Off:s.Off+s.Len], ratio, 0, nil, int32(bi))
					}
				}
			}(r)
		}
		wg.Wait()

		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if bufA[r][i] != bufB[r][i] {
					t.Fatalf("%s rank %d: async aggregate differs from sync at %d: %g vs %g", codec, r, i, bufA[r][i], bufB[r][i])
				}
				if resA[r][i] != resB[r][i] {
					t.Fatalf("%s rank %d: async residual differs from sync at %d: %g vs %g", codec, r, i, resA[r][i], resB[r][i])
				}
			}
		}
		if wA, wB := gA.WordsSent(), gB.WordsSent(); wA != wB {
			t.Errorf("%s: async moved %d words, sync %d", codec, wA, wB)
		}
	}
}

// TestNewCompressor covers the constructor's corners.
func TestNewCompressor(t *testing.T) {
	if NewCompressor("") != nil || NewCompressor("none") != nil {
		t.Error("dense names must return nil")
	}
	if NewCompressor("topk").Name() != "topk" || NewCompressor("qint8").Name() != "qint8" {
		t.Error("codec names")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown codec must panic")
		}
	}()
	NewCompressor("gzip")
}
