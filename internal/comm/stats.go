package comm

import (
	"fmt"
	"sync/atomic"
	"time"

	"sasgd/internal/metrics"
	"sasgd/internal/obs"
)

// Unified communication statistics. Every send is charged to the
// collective algorithm that issued it: each public collective entry
// point labels its rank with an algorithm id on entry, and sendMsgAt
// charges the message's words to that rank's (algorithm) counter. The
// counters are per-rank — each rank's label and counters are touched
// only by the goroutine currently driving that rank (its learner, or
// its comm worker; the two never run a collective concurrently) — so
// the hot path takes no locks and shares no cache lines across ranks.
// They are atomics anyway so the -debug-addr endpoint can read a
// consistent-enough live snapshot mid-run.
//
// Wire-size convention: one "word" is one float64 payload element, the
// unit the fabric cost model charges (XferTime) and the unit the
// paper's O(m log p) vs O(mp) traffic comparison counts. Sparse
// collectives ship encoded (index, value) pairs, so a k-entry sparse
// message is 2k words — SparseVec.Words — charged by the same
// len(payload) rule as the dense paths; the exact-pin tests in
// stats_test.go keep the two accountings consistent. Bytes reports
// words at the 8-byte float64 wire representation the channels carry.

// algo identifies the collective algorithm a send is charged to.
type algo uint32

const (
	algoP2P    algo = iota // bare Send/Recv outside any collective
	algoTree               // monolithic binomial tree (allreduce/reduce)
	algoPTree              // chunked pipelined binomial tree
	algoRHD                // recursive halving/doubling
	algoRing               // ring reduce-scatter + allgather
	algoSparse             // sparse (index+value) binomial tree
	algoBcast              // binomial-tree broadcast
	algoQuant              // quantized (packed int8/int16) binomial tree
	algoHIntra             // hierarchical intra-island sub-group collectives
	algoHInter             // hierarchical inter-island exchange (leader tree + island fan-out)
	numAlgos
)

var algoNames = [numAlgos]string{
	"p2p", "tree", "ptree", "rhd", "ring", "sparse", "bcast", "quant",
	"hintra", "hinter",
}

// rankStats is one rank's counters. cur is the algorithm label set by
// the collective entry points; the rest accumulate until ResetStats.
// The trailing pad keeps adjacent ranks' hot counters off one cache
// line.
type rankStats struct {
	cur   atomic.Uint32
	words [numAlgos]atomic.Int64
	msgs  [numAlgos]atomic.Int64

	crossWords atomic.Int64 // words sent across an island boundary (SetIslands)

	mailboxWaitNs atomic.Int64 // recv-side blocking time (tracer-gated)

	// Comm-worker pipeline accounting (bucketed allreduce).
	bucketOps    atomic.Int64
	queueDwellNs atomic.Int64
	workerBusyNs atomic.Int64
	firstBusyNs  atomic.Int64 // first bucket pickup (tracer clock), +1 to distinguish from unset
	lastDoneNs   atomic.Int64 // latest bucket completion (tracer clock)

	_ [40]byte
}

// setAlgo labels the rank's subsequent sends. Called on entry to every
// public collective by the goroutine driving the rank.
func (g *Group) setAlgo(rank int, a algo) { g.stats[rank].cur.Store(uint32(a)) }

// charge accounts one outgoing message from rank `from` to rank `to`
// under from's current algorithm label. Hot path: two uncontended
// atomic adds (three when an island map marks the transfer as crossing
// an island boundary).
func (g *Group) charge(from, to, words int) {
	st := &g.stats[from]
	a := st.cur.Load()
	st.words[a].Add(int64(words))
	st.msgs[a].Add(1)
	if m := g.islandOf.Load(); m != nil && (*m)[from] != (*m)[to] {
		st.crossWords.Add(int64(words))
	}
}

// SetIslands attaches a rank→island map used to account cross-island
// traffic (Stats.CrossWords). islandOf must have one entry per rank;
// nil detaches the map. The map is copied and published atomically, so
// installation may race with in-flight sends (hierarchy construction
// happens per-rank at spawn and per-survivor on a fault re-form, while
// peers are already charging traffic) — a send observes either the old
// or the new map, never a torn one.
func (g *Group) SetIslands(islandOf []int) {
	if islandOf == nil {
		g.islandOf.Store(nil)
		return
	}
	if len(islandOf) != g.p {
		panic(fmt.Sprintf("comm: SetIslands: map covers %d ranks, group has %d", len(islandOf), g.p))
	}
	m := make([]int, g.p)
	copy(m, islandOf)
	g.islandOf.Store(&m)
}

// SetTracer attaches an obs tracer to the group: bucketed comm workers
// record queue-dwell and allreduce spans on per-rank comm tracks, and
// receives measure mailbox blocking time. Call before the learner
// goroutines start; a nil tracer (the default) leaves every probe on
// its nil-check-only fast path.
func (g *Group) SetTracer(tr *obs.Tracer) {
	g.tracer = tr
	g.traceOn = tr != nil
}

// Tracer returns the attached tracer (nil when tracing is off).
func (g *Group) Tracer() *obs.Tracer { return g.tracer }

// AlgoStats is the traffic charged to one collective algorithm. The
// JSON tags fix the wire shape the live /debug/obs endpoint serves
// (obs.LiveSnapshot.Stats carries a Stats value through interface{}).
type AlgoStats struct {
	Words    int64 `json:"words"`    // float64 payload words
	Messages int64 `json:"messages"` // point-to-point messages
}

// FaultStats are the fault-injection and membership counters of a run.
// All-zero without an attached FaultPlan. Drops and Retries come from
// the link daemons (dropped delivery attempts, and ack-timeout
// retransmissions — Timeouts counts the expiries, which the
// stop-and-wait protocol maps 1:1 onto retransmissions); Evictions,
// Reforms and Crashes come from the membership ledger.
type FaultStats struct {
	Drops     int64 `json:"drops"`     // injected message-drop events (per delivery attempt)
	Retries   int64 `json:"retries"`   // retransmissions after an ack timeout
	Timeouts  int64 `json:"timeouts"`  // ack-timeout expiries
	Evictions int64 `json:"evictions"` // ranks evicted by the failure detector
	Reforms   int64 `json:"reforms"`   // survivor group re-formations
	Crashes   int64 `json:"crashes"`   // scheduled learner crashes executed
}

// Sum returns the total event count, the delta signal the metrics fleet
// collector uses to emit fault events exactly when something happened.
func (f FaultStats) Sum() int64 {
	return f.Drops + f.Retries + f.Timeouts + f.Evictions + f.Reforms + f.Crashes
}

// Active reports whether any fault or membership event occurred.
func (f FaultStats) Active() bool {
	return f.Drops != 0 || f.Retries != 0 || f.Timeouts != 0 ||
		f.Evictions != 0 || f.Reforms != 0 || f.Crashes != 0
}

// Stats is a snapshot of the group's communication counters. Safe to
// take mid-run (atomics only); exact once the learners have quiesced.
type Stats struct {
	Words    int64 `json:"words"`    // total float64 words moved, all algorithms
	Messages int64 `json:"messages"` // total point-to-point messages
	Bytes    int64 `json:"bytes"`    // Words at the 8-byte float64 wire representation

	// CrossWords is the subset of Words whose sender and receiver sit in
	// different interconnect islands (zero unless SetIslands attached a
	// map) — the traffic the hierarchical schedule tries to minimize.
	CrossWords int64 `json:"cross_words"`

	// PerAlgo is the traffic by collective algorithm (zero rows omitted);
	// the hintra/hinter rows separate the hierarchical schedule's cheap
	// intra-island sub-collectives from the uplink-crossing exchange.
	PerAlgo map[string]AlgoStats `json:"per_algo,omitempty"`

	MailboxWait time.Duration `json:"mailbox_wait_ns,omitempty"` // total recv-side blocking (tracer-gated; 0 untraced)

	// Bucketed-allreduce pipeline, summed over ranks. Occupancy is the
	// mean over active ranks of busy/(last completion − first pickup):
	// 1.0 means the worker never idled between buckets. Timings are
	// tracer-gated; BucketOps counts regardless.
	BucketOps         int64         `json:"bucket_ops,omitempty"`
	QueueDwell        time.Duration `json:"queue_dwell_ns,omitempty"`
	WorkerBusy        time.Duration `json:"worker_busy_ns,omitempty"`
	PipelineOccupancy float64       `json:"pipeline_occupancy,omitempty"`

	// Faults holds the fault-injection and membership counters (all zero
	// without an attached FaultPlan). When the membership layer re-forms
	// groups mid-run, the fabric — and so this block — spans the whole
	// run regardless of which group's Stats() is asked.
	Faults FaultStats `json:"faults"`
}

// Stats returns the current counter snapshot.
func (g *Group) Stats() Stats {
	var s Stats
	s.PerAlgo = make(map[string]AlgoStats, numAlgos)
	var occSum float64
	var occN int
	for r := range g.stats {
		st := &g.stats[r]
		for a := algo(0); a < numAlgos; a++ {
			w, m := st.words[a].Load(), st.msgs[a].Load()
			if w == 0 && m == 0 {
				continue
			}
			as := s.PerAlgo[algoNames[a]]
			as.Words += w
			as.Messages += m
			s.PerAlgo[algoNames[a]] = as
			s.Words += w
			s.Messages += m
		}
		s.CrossWords += st.crossWords.Load()
		s.MailboxWait += time.Duration(st.mailboxWaitNs.Load())
		s.BucketOps += st.bucketOps.Load()
		s.QueueDwell += time.Duration(st.queueDwellNs.Load())
		busy := st.workerBusyNs.Load()
		s.WorkerBusy += time.Duration(busy)
		if first := st.firstBusyNs.Load(); first != 0 {
			if span := st.lastDoneNs.Load() - (first - 1); span > 0 {
				occSum += float64(busy) / float64(span)
				occN++
			}
		}
	}
	if occN > 0 {
		s.PipelineOccupancy = occSum / float64(occN)
	}
	s.Bytes = 8 * s.Words
	if g.fab != nil {
		s.Faults = g.fab.faultCounts()
	}
	return s
}

// MergeTraffic folds another snapshot's traffic, wait and pipeline
// counters into s. The membership layer uses it to aggregate across the
// groups of a re-formed run; the Faults block is intentionally NOT
// merged (the fabric is shared, so each group already reports the
// run-wide counts — adding them would double-count). Occupancy merges
// as the bucket-op-weighted mean.
func (s *Stats) MergeTraffic(o Stats) {
	if s.BucketOps+o.BucketOps > 0 {
		s.PipelineOccupancy = (s.PipelineOccupancy*float64(s.BucketOps) +
			o.PipelineOccupancy*float64(o.BucketOps)) / float64(s.BucketOps+o.BucketOps)
	}
	s.Words += o.Words
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.CrossWords += o.CrossWords
	for name, as := range o.PerAlgo {
		if s.PerAlgo == nil {
			s.PerAlgo = make(map[string]AlgoStats, len(o.PerAlgo))
		}
		cur := s.PerAlgo[name]
		cur.Words += as.Words
		cur.Messages += as.Messages
		s.PerAlgo[name] = cur
	}
	s.MailboxWait += o.MailboxWait
	s.BucketOps += o.BucketOps
	s.QueueDwell += o.QueueDwell
	s.WorkerBusy += o.WorkerBusy
}

// WordsSent returns the total number of float64 words sent through the
// group so far (point-to-point only; server traffic is accounted by the
// server). Equivalent to Stats().Words; kept as the compact accessor
// the traffic-pinned tests use.
func (g *Group) WordsSent() int64 {
	var w int64
	for r := range g.stats {
		for a := algo(0); a < numAlgos; a++ {
			w += g.stats[r].words[a].Load()
		}
	}
	return w
}

// TrafficTotals sums the group's traffic counters without building the
// Stats map: total words, the cross-island subset, and the hierarchical
// intra/inter-island rows. The metrics fleet collector samples it at
// every aggregation boundary, so unlike Stats() it must not allocate.
func (g *Group) TrafficTotals() (words, cross, hintra, hinter int64) {
	for r := range g.stats {
		st := &g.stats[r]
		for a := algo(0); a < numAlgos; a++ {
			words += st.words[a].Load()
		}
		cross += st.crossWords.Load()
		hintra += st.words[algoHIntra].Load()
		hinter += st.words[algoHInter].Load()
	}
	return words, cross, hintra, hinter
}

// FaultCounts returns the fabric's fault-injection and membership
// counters (zero value when the group has no fault fabric). Alloc-free,
// boundary-rate safe, unlike the full Stats() snapshot.
func (g *Group) FaultCounts() FaultStats {
	if g.fab == nil {
		return FaultStats{}
	}
	return g.fab.faultCounts()
}

// ResetStats zeroes every counter (traffic, mailbox wait, pipeline),
// so a caller can scope accounting to a phase of a run. Must not race
// with in-flight collectives.
func (g *Group) ResetStats() {
	for r := range g.stats {
		st := &g.stats[r]
		for a := algo(0); a < numAlgos; a++ {
			st.words[a].Store(0)
			st.msgs[a].Store(0)
		}
		st.crossWords.Store(0)
		st.mailboxWaitNs.Store(0)
		st.bucketOps.Store(0)
		st.queueDwellNs.Store(0)
		st.workerBusyNs.Store(0)
		st.firstBusyNs.Store(0)
		st.lastDoneNs.Store(0)
	}
}

// String renders the snapshot as an aligned table (internal/metrics
// style), one row per algorithm plus a totals row, followed by the
// pipeline lines when the bucketed path ran.
func (s Stats) String() string {
	tab := metrics.Table{
		Title:  "comm traffic",
		Header: []string{"algo", "words", "messages", "bytes"},
	}
	for a := algo(0); a < numAlgos; a++ {
		as, ok := s.PerAlgo[algoNames[a]]
		if !ok {
			continue
		}
		tab.AddRow(algoNames[a], fmt.Sprint(as.Words), fmt.Sprint(as.Messages), fmt.Sprint(8*as.Words))
	}
	tab.AddRow("total", fmt.Sprint(s.Words), fmt.Sprint(s.Messages), fmt.Sprint(s.Bytes))
	out := tab.String()
	if s.CrossWords > 0 {
		out += fmt.Sprintf("cross-island words: %d\n", s.CrossWords)
	}
	if s.MailboxWait > 0 {
		out += fmt.Sprintf("mailbox wait: %v\n", s.MailboxWait)
	}
	if s.BucketOps > 0 {
		out += fmt.Sprintf("bucketed pipeline: %d ops, dwell %v, busy %v, occupancy %.2f\n",
			s.BucketOps, s.QueueDwell, s.WorkerBusy, s.PipelineOccupancy)
	}
	if f := s.Faults; f.Active() {
		out += fmt.Sprintf("faults: %d drops, %d retries, %d timeouts, %d crashes, %d evictions, %d re-forms\n",
			f.Drops, f.Retries, f.Timeouts, f.Crashes, f.Evictions, f.Reforms)
	}
	return out
}
