package comm

import (
	"sync"
	"testing"
)

// TestPipelinedCollectivesStress drives many back-to-back aggregations
// through the pipelined collectives under the race detector's favourite
// conditions: odd group sizes, chunk sizes far below m/p, algorithms
// alternating round to round (so pooled buffers are recycled across
// different message shapes), and several groups running concurrently in
// one process. Values are small integers, so every sum is exact in
// float64 and each round's result can be checked against a closed form:
// after k allreduce rounds buf[i] = (i+1)·p^k.
func TestPipelinedCollectivesStress(t *testing.T) {
	const rounds = 15
	run := func(t *testing.T, p int, chunks []int) {
		const m = 101
		g := NewGroup(p)
		bufs := make([][]float64, p)
		for r := range bufs {
			bufs[r] = make([]float64, m)
			for i := range bufs[r] {
				bufs[r][i] = float64(i + 1)
			}
		}
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for k := 0; k < rounds; k++ {
					switch k % 3 {
					case 0:
						g.AllreduceTreeChunked(r, bufs[r], chunks[k%len(chunks)])
					case 1:
						g.AllreduceRHD(r, bufs[r]) // tree fallback when p is odd
					default:
						g.AllreduceRing(r, bufs[r])
					}
				}
			}(r)
		}
		wg.Wait()
		// (i+1)·p^rounds, exact: p ≤ 8, rounds = 15 ⇒ ≤ 102·8^15 < 2^53.
		scale := 1.0
		for k := 0; k < rounds; k++ {
			scale *= float64(p)
		}
		for r := 0; r < p; r++ {
			for i := 0; i < m; i++ {
				if want := float64(i+1) * scale; bufs[r][i] != want {
					t.Fatalf("p=%d rank=%d[%d] = %g, want %g", p, r, i, bufs[r][i], want)
				}
			}
		}
	}
	// Chunk sizes well below m/p exercise deep pipelines; concurrent
	// subtests share the process so independent groups stress each other.
	for _, p := range []int{3, 5, 7, 8} {
		p := p
		t.Run("p"+string(rune('0'+p)), func(t *testing.T) {
			t.Parallel()
			run(t, p, []int{1, 3, 7})
		})
	}
}
