package comm

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"
)

// transportCase builds one of the two backends under test for a p-rank
// all-local group. The TCP variant routes every frame through real
// loopback sockets and the wire codec; the channel variant is the
// in-process fabric the rest of the suite exercises.
type transportCase struct {
	name string
	make func(t *testing.T, p int) *Group
}

func transportCases() []transportCase {
	return []transportCase{
		{"channel", func(t *testing.T, p int) *Group { return NewGroup(p) }},
		{"tcp-loopback", func(t *testing.T, p int) *Group {
			t.Helper()
			tr, err := NewTCPLoopback(p)
			if err != nil {
				t.Fatalf("NewTCPLoopback(%d): %v", p, err)
			}
			g := NewTransportGroup(tr, nil, nil, nil)
			t.Cleanup(g.Close)
			return g
		}},
	}
}

// TestCrossTransportAllreduceEquivalence is the equivalence matrix of
// the transport cut: every allreduce algorithm, over group sizes
// including non-powers of two, must produce bitwise-identical buffers
// AND identical traffic stats on the channel fabric and on TCP
// loopback. Float64 words survive the wire codec bit-exactly and the
// collectives never branch on the backend, so equality here is exact —
// any drift means the transport leaked into algorithm behavior.
func TestCrossTransportAllreduceEquivalence(t *testing.T) {
	algos := []struct {
		name string
		run  func(g *Group, rank int, buf []float64)
	}{
		{"tree", func(g *Group, rank int, buf []float64) { g.AllreduceTree(rank, buf) }},
		{"ptree", func(g *Group, rank int, buf []float64) { g.AllreduceTreeChunked(rank, buf, 16) }},
		{"rhd", func(g *Group, rank int, buf []float64) { g.AllreduceRHD(rank, buf) }},
		{"ring", func(g *Group, rank int, buf []float64) { g.AllreduceRing(rank, buf) }},
	}
	for _, p := range []int{1, 2, 3, 5, 8} {
		for _, m := range []int{1, 23, 129} {
			orig, _ := makeBufs(p, m, int64(7000*p+m))
			for _, algo := range algos {
				var refBufs [][]float64
				var refStats Stats
				for _, tc := range transportCases() {
					bufs := cloneBufs(orig)
					g := tc.make(t, p)
					runGroup(p, g, func(rank int) {
						algo.run(g, rank, bufs[rank])
						g.Barrier(rank)
					})
					st := g.Stats()
					if refBufs == nil {
						refBufs, refStats = bufs, st
						continue
					}
					for r := 0; r < p; r++ {
						for i := range bufs[r] {
							if bufs[r][i] != refBufs[r][i] {
								t.Fatalf("p=%d m=%d algo=%s rank=%d[%d]: %s %g != channel %g (must be bitwise)",
									p, m, algo.name, r, i, tc.name, bufs[r][i], refBufs[r][i])
							}
						}
					}
					if !reflect.DeepEqual(st, refStats) {
						t.Fatalf("p=%d m=%d algo=%s: %s stats %+v != channel stats %+v",
							p, m, algo.name, tc.name, st, refStats)
					}
				}
			}
		}
	}
}

// TestCrossTransportReliableDelivery drives the fault-injected reliable
// path (seq-stamped frames, acks, retransmits) over both backends with
// the same deterministic plan. Drops and retry delays are decided by
// the plan's hash, not the transport, so the delivered payloads must
// match; retry counts may differ (wall-clock timers race real sockets),
// so only delivery correctness is asserted.
func TestCrossTransportReliableDelivery(t *testing.T) {
	const p, rounds = 3, 20
	for _, tc := range transportCases() {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.make(t, p)
			g.InjectFaults(&FaultPlan{Seed: 11, Drop: 0.3, RetryTimeout: 40 * time.Millisecond})
			runGroup(p, g, func(rank int) {
				next := (rank + 1) % p
				prev := (rank + p - 1) % p
				for i := 0; i < rounds; i++ {
					g.Send(rank, next, []float64{float64(rank*1000 + i)})
					got := g.Recv(rank, prev)
					if want := float64(prev*1000 + i); len(got) != 1 || got[0] != want {
						t.Errorf("%s rank %d round %d: got %v, want [%g]", tc.name, rank, i, got, want)
					}
				}
			})
			if drops := g.Stats().Faults.Drops; drops == 0 {
				t.Errorf("%s: fault plan injected no drops in %d sends", tc.name, p*rounds)
			}
		})
	}
}

// TestGroupCloseIdempotent: Close must tolerate being called repeatedly
// and from many goroutines at once — re-formed survivor views sharing a
// transport each close their group, and the training loop closes again
// on the way out.
func TestGroupCloseIdempotent(t *testing.T) {
	for _, tc := range transportCases() {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.make(t, 3)
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < 4; j++ {
						g.Close()
					}
				}()
			}
			wg.Wait()
			g.Close() // and once more after the storm
		})
	}
}

// TestGroupCloseUnblocksPendingSends: senders parked on a full mailbox
// — and, with a fault plan attached, senders queued behind a link
// daemon and daemons waiting on acks — must all return once Close runs
// instead of leaking blocked goroutines.
func TestGroupCloseUnblocksPendingSends(t *testing.T) {
	for _, faults := range []bool{false, true} {
		name := "plain"
		if faults {
			name = "faulty"
		}
		t.Run(name, func(t *testing.T) {
			g := NewGroup(2)
			if faults {
				// Nothing ever receives, so the daemon blocks awaiting an
				// ack and later sends pile up in its queue.
				g.InjectFaults(&FaultPlan{Seed: 3, Drop: 0.1, RetryTimeout: 5 * time.Millisecond})
			}
			const senders = 4
			done := make(chan struct{}, senders)
			for s := 0; s < senders; s++ {
				go func() {
					for i := 0; i < mailboxCap+8; i++ {
						g.Send(0, 1, []float64{float64(i)})
					}
					done <- struct{}{}
				}()
			}
			time.Sleep(20 * time.Millisecond) // let senders hit the wall
			g.Close()
			for s := 0; s < senders; s++ {
				select {
				case <-done:
				case <-time.After(5 * time.Second):
					t.Fatal("sender still blocked after Close")
				}
			}
		})
	}
}

// TestTCPTransportGracefulTeardown: all queued frames drain to their
// receivers before the sockets close, Close is idempotent, and the
// socket counters agree end to end (every frame written was read).
func TestTCPTransportGracefulTeardown(t *testing.T) {
	const p, frames = 3, 10
	tr, err := NewTCPLoopback(p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for from := 0; from < p; from++ {
		for to := 0; to < p; to++ {
			if from == to {
				continue
			}
			wg.Add(2)
			go func(from, to int) {
				defer wg.Done()
				for i := 0; i < frames; i++ {
					tr.Send(from, to, Frame{Data: []float64{float64(i)}, Seq: int64(i)})
				}
			}(from, to)
			go func(from, to int) {
				defer wg.Done()
				for i := 0; i < frames; i++ {
					f := tr.Recv(to, from)
					if len(f.Data) != 1 || f.Data[0] != float64(i) || f.Seq != int64(i) {
						t.Errorf("link %d→%d frame %d: got %+v", from, to, i, f)
					}
				}
			}(from, to)
		}
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	ws := tr.WireStats()
	wantFrames := int64(p * (p - 1) * frames)
	if ws.FramesOut != wantFrames || ws.FramesIn != wantFrames {
		t.Errorf("wire frames out=%d in=%d, want %d each", ws.FramesOut, ws.FramesIn, wantFrames)
	}
	if ws.BytesOut != ws.BytesIn {
		t.Errorf("wire bytes out=%d != in=%d", ws.BytesOut, ws.BytesIn)
	}
}

// TestTCPMultiProcessMesh stands up the genuinely distributed shape —
// two transports in separate "processes" (here: separate mesh
// endpoints, each local to one rank) bridged by a real listener on a
// pre-claimed port — and checks the wire barrier plus a cross-process
// allreduce against the channel fabric.
func TestTCPMultiProcessMesh(t *testing.T) {
	port := freePort(t)
	addrs := []string{"127.0.0.1:0", fmt.Sprintf("127.0.0.1:%d", port)}

	var trs [2]*TCPTransport
	var errs [2]error
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = NewTCPTransport(TCPConfig{Addrs: addrs, Local: []int{r}})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("endpoint %d: %v", r, err)
		}
	}

	orig, _ := makeBufs(2, 23, 99)
	want := cloneBufs(orig)
	gc := NewGroup(2)
	runGroup(2, gc, func(rank int) { gc.AllreduceTree(rank, want[rank]) })

	got := cloneBufs(orig)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			g := NewTransportGroup(trs[r], nil, nil, nil)
			defer g.Close()
			for round := 0; round < 3; round++ {
				g.Barrier(r) // wire barrier: no shared memory between endpoints
			}
			g.AllreduceTree(r, got[r])
		}(r)
	}
	wg.Wait()
	for r := 0; r < 2; r++ {
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("multi-process rank %d[%d]: %g != channel %g", r, i, got[r][i], want[r][i])
			}
		}
	}
}

// freePort claims an ephemeral port and releases it for the test to
// re-bind. The tiny reuse race is acceptable for a loopback test.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// TestTCPAllreduceSteadyStateAllocs bounds the end-to-end allocation
// rate of an allreduce over loopback sockets after warmup. The wire
// codec itself is pinned to zero allocations in package wire; here the
// pooled receive buffers, reused reader bodies, and reused writer
// scratch must keep the whole path to a small constant per operation
// independent of the payload size (the naive bound is one allocation
// per frame per word).
func TestTCPAllreduceSteadyStateAllocs(t *testing.T) {
	const p, m = 4, 4096
	tr, err := NewTCPLoopback(p)
	if err != nil {
		t.Fatal(err)
	}
	g := NewTransportGroup(tr, nil, nil, nil)
	defer g.Close()
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, m)
	}
	op := func() {
		runGroup(p, g, func(rank int) { g.AllreduceTree(rank, bufs[rank]) })
	}
	for i := 0; i < 5; i++ {
		op() // warm the pools, reader bodies, and writer scratch
	}
	// runGroup itself spawns p goroutines (~2 allocs each) and the
	// tree moves 2(p-1) frames; budget a handful of words per frame on
	// top so pool churn under GC pressure can't flake the test, while
	// still catching any per-word regression (naive cost ≈ m per frame).
	const budget = 160.0
	if n := testing.AllocsPerRun(20, op); n > budget {
		t.Errorf("steady-state allreduce allocates %.1f/op, want ≤ %.0f", n, budget)
	}
}
