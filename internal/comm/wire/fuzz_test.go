package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzFrameDecode throws arbitrary byte streams at the decode pipeline
// exactly as the TCP reader drives it: prefix → BodyLen → PayloadWords
// → allocate → DecodeBody. The invariants under attack:
//
//   - no panic on any input (truncated, oversized, bit-flipped, garbage);
//   - no over-allocation: a frame may only make the decoder allocate
//     what its actual byte length supports (PayloadWords runs before the
//     payload buffer exists);
//   - a frame that decodes cleanly re-encodes to the identical bytes
//     (the encoding is canonical, so decode∘encode is the identity on
//     valid frames).
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(AppendFrame(nil, Header{}, nil))
	f.Add(AppendFrame(nil, Header{From: 1, To: 2, Seq: 3, Arrive: 4.5}, []float64{1, 2, 3}))
	flipped := AppendFrame(nil, Header{From: 7, To: 0, Seq: 1}, []float64{42})
	flipped[17] ^= 0x01
	f.Add(flipped)
	truncated := AppendFrame(nil, Header{}, []float64{1, 2, 3, 4})
	f.Add(truncated[:len(truncated)-5])
	huge := make([]byte, PrefixLen)
	put32(huge, ^uint32(0))
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < PrefixLen {
			if _, err := BodyLen(data); err == nil {
				t.Fatal("BodyLen accepted a short prefix")
			}
			return
		}
		n, err := BodyLen(data[:PrefixLen])
		if err != nil {
			return
		}
		if n > len(data)-PrefixLen {
			// Truncated stream: the reader would block for more bytes;
			// nothing to decode.
			return
		}
		body := data[PrefixLen : PrefixLen+n]
		w, err := PayloadWords(body)
		if err != nil {
			return
		}
		if 8*w > len(body) {
			t.Fatalf("PayloadWords let %d words through a %d-byte body", w, len(body))
		}
		dst := make([]float64, w)
		h, err := DecodeBody(body, dst)
		if err != nil {
			return
		}
		reencoded := AppendFrame(nil, h, dst)
		if !bytes.Equal(reencoded, data[:PrefixLen+n]) {
			t.Fatalf("decode∘encode not identity:\n got %x\nwant %x", reencoded, data[:PrefixLen+n])
		}
	})
}

// FuzzFrameRoundTrip is the property dual of FuzzFrameDecode: any
// header and payload encode to a frame that decodes back bit-exactly,
// and any single-bit corruption of the encoded body is detected.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint64(0), uint64(0), []byte{})
	f.Add(uint16(1), uint16(2), uint64(3), math.Float64bits(4.5), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint16(65535), uint16(65535), ^uint64(0), ^uint64(0), make([]byte, 64))

	f.Fuzz(func(t *testing.T, from, to uint16, seq, arriveBits uint64, raw []byte) {
		w := len(raw) / 8
		payload := make([]float64, w)
		for i := range payload {
			payload[i] = math.Float64frombits(get64(raw[8*i:]))
		}
		h := Header{From: int(from), To: int(to), Seq: int64(seq), Arrive: math.Float64frombits(arriveBits)}
		frame := AppendFrame(nil, h, payload)

		n, err := BodyLen(frame[:PrefixLen])
		if err != nil || n != len(frame)-PrefixLen {
			t.Fatalf("BodyLen on own encoding: n=%d err=%v (frame %d bytes)", n, err, len(frame))
		}
		body := frame[PrefixLen:]
		got, err := PayloadWords(body)
		if err != nil || got != w {
			t.Fatalf("PayloadWords on own encoding: %d, %v (want %d)", got, err, w)
		}
		dst := make([]float64, w)
		dh, err := DecodeBody(body, dst)
		if err != nil {
			t.Fatalf("DecodeBody on own encoding: %v", err)
		}
		if dh.From != h.From || dh.To != h.To || dh.Seq != h.Seq ||
			math.Float64bits(dh.Arrive) != math.Float64bits(h.Arrive) {
			t.Fatalf("header round trip: got %+v want %+v", dh, h)
		}
		for i := range payload {
			if math.Float64bits(dst[i]) != math.Float64bits(payload[i]) {
				t.Fatalf("payload[%d] bits changed", i)
			}
		}

		// Single-bit corruption anywhere in the body must be caught by
		// one of the validators (CRC at the latest). Flip position is
		// derived from the fuzz inputs so the corpus explores them all.
		pos := int((seq ^ arriveBits) % uint64(len(body)))
		bit := byte(1) << ((from ^ to) % 8)
		corrupt := append([]byte(nil), body...)
		corrupt[pos] ^= bit
		wc, err := PayloadWords(corrupt)
		if err == nil {
			if _, err = DecodeBody(corrupt, make([]float64, wc)); err == nil {
				t.Fatalf("bit flip at body[%d]&%#x went undetected", pos, bit)
			}
		}
	})
}
