package wire

import (
	"errors"
	"math"
	"testing"
)

// encode builds one standalone frame for the tests.
func encode(t *testing.T, h Header, payload []float64) []byte {
	t.Helper()
	return AppendFrame(nil, h, payload)
}

func decodeAll(frame []byte) (Header, []float64, error) {
	n, err := BodyLen(frame[:PrefixLen])
	if err != nil {
		return Header{}, nil, err
	}
	if n != len(frame)-PrefixLen {
		return Header{}, nil, errors.New("test: stream length disagrees with prefix")
	}
	body := frame[PrefixLen:]
	w, err := PayloadWords(body)
	if err != nil {
		return Header{}, nil, err
	}
	dst := make([]float64, w)
	h, err := DecodeBody(body, dst)
	return h, dst, err
}

// TestFrameRoundTrip: header and payload survive encode→decode exactly,
// including negative seq bits, NaN payload bit patterns, and the empty
// payload.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]float64{
		nil,
		{0},
		{1.5, -2.25, math.Inf(1), math.Inf(-1)},
		{math.Float64frombits(0x7ff8000000000001)}, // NaN with set mantissa bit
		make([]float64, 129),
	}
	for i := range payloads[len(payloads)-1] {
		payloads[len(payloads)-1][i] = float64(i) * 0.375
	}
	for _, pl := range payloads {
		h := Header{From: 3, To: 65535, Seq: -7, Arrive: 12.625}
		frame := encode(t, h, pl)
		if want := FrameLen(len(pl)); len(frame) != want {
			t.Fatalf("frame of %d words is %d bytes, want %d", len(pl), len(frame), want)
		}
		got, dst, err := decodeAll(frame)
		if err != nil {
			t.Fatalf("decode %d-word frame: %v", len(pl), err)
		}
		if got != h {
			t.Fatalf("header round trip: got %+v want %+v", got, h)
		}
		if len(dst) != len(pl) {
			t.Fatalf("payload length %d, want %d", len(dst), len(pl))
		}
		for i := range pl {
			if math.Float64bits(dst[i]) != math.Float64bits(pl[i]) {
				t.Fatalf("payload[%d] bits %x, want %x", i, math.Float64bits(dst[i]), math.Float64bits(pl[i]))
			}
		}
	}
}

// TestFrameLayout pins the byte-level layout so both endpoints of a
// heterogeneous deployment agree: any change here is a wire protocol
// break.
func TestFrameLayout(t *testing.T) {
	frame := encode(t, Header{From: 0x0102, To: 0x0304, Seq: 0x1122334455667788, Arrive: 1.0}, []float64{2.0})
	if len(frame) != 44 {
		t.Fatalf("1-word frame is %d bytes, want 44", len(frame))
	}
	if got := get32(frame); got != 32+8 {
		t.Errorf("length prefix %d, want 40", got)
	}
	if got := get32(frame[4:]); got != Magic {
		t.Errorf("magic %#x, want %#x", got, uint32(Magic))
	}
	if got := get16(frame[8:]); got != 0x0102 {
		t.Errorf("from %#x, want 0x0102", got)
	}
	if got := get16(frame[10:]); got != 0x0304 {
		t.Errorf("to %#x, want 0x0304", got)
	}
	if got := get64(frame[12:]); got != 0x1122334455667788 {
		t.Errorf("seq %#x", got)
	}
	if got := get64(frame[20:]); got != math.Float64bits(1.0) {
		t.Errorf("arrive bits %#x", got)
	}
	if got := get32(frame[28:]); got != 1 {
		t.Errorf("nwords %d, want 1", got)
	}
	if got := get64(frame[32:]); got != math.Float64bits(2.0) {
		t.Errorf("payload bits %#x", got)
	}
}

// TestDecodeErrors drives every validation branch with a purpose-built
// malformed frame and checks the sentinel error taxonomy.
func TestDecodeErrors(t *testing.T) {
	good := encode(t, Header{From: 1, To: 2, Seq: 5, Arrive: 0.5}, []float64{1, 2, 3})
	body := good[PrefixLen:]

	if _, err := BodyLen([]byte{1, 2}); !errors.Is(err, ErrShortPrefix) {
		t.Errorf("short prefix: %v", err)
	}
	short := make([]byte, PrefixLen)
	put32(short, 4) // below bodyOverhead
	if _, err := BodyLen(short); !errors.Is(err, ErrBadLength) {
		t.Errorf("undersized body length: %v", err)
	}
	put32(short, 32+8*MaxWords+8)
	if _, err := BodyLen(short); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("oversized body length: %v", err)
	}
	put32(short, 32+3) // not word-aligned
	if _, err := BodyLen(short); !errors.Is(err, ErrBadLength) {
		t.Errorf("unaligned body length: %v", err)
	}

	if _, err := PayloadWords(body[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated body: %v", err)
	}
	lie := append([]byte(nil), body...)
	put32(lie[24:], 7) // nwords claims more than the body holds
	if _, err := PayloadWords(lie); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("nwords mismatch: %v", err)
	}
	put32(lie[24:], MaxWords+1)
	if _, err := PayloadWords(lie); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("nwords over cap: %v", err)
	}

	bad := append([]byte(nil), body...)
	put32(bad, 0xdeadbeef)
	if _, err := DecodeBody(bad, make([]float64, 3)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	flip := append([]byte(nil), body...)
	flip[30] ^= 0x40 // payload bit
	if _, err := DecodeBody(flip, make([]float64, 3)); !errors.Is(err, ErrBadCRC) {
		t.Errorf("bit flip: %v", err)
	}
	if _, err := DecodeBody(body, make([]float64, 2)); err == nil {
		t.Error("undersized dst accepted")
	}
	if _, err := DecodeBody(body, make([]float64, 3)); err != nil {
		t.Errorf("pristine body rejected: %v", err)
	}
}

// TestAppendFrameSteadyStateAllocs: once the scratch slice has grown to
// the largest frame, encoding allocates nothing — the property the TCP
// writer's zero-alloc steady state rests on. Decoding into a fixed
// buffer is likewise allocation-free.
func TestAppendFrameSteadyStateAllocs(t *testing.T) {
	payload := make([]float64, 1000)
	for i := range payload {
		payload[i] = float64(i)
	}
	var scratch []byte
	h := Header{From: 1, To: 2, Seq: 9, Arrive: 3.5}
	scratch = AppendFrame(scratch[:0], h, payload) // warm the scratch
	body := append([]byte(nil), scratch[PrefixLen:]...)
	dst := make([]float64, len(payload))

	if n := testing.AllocsPerRun(100, func() {
		scratch = AppendFrame(scratch[:0], h, payload)
	}); n != 0 {
		t.Errorf("AppendFrame steady state allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := DecodeBody(body, dst); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeBody steady state allocates %.1f/op, want 0", n)
	}
}
