// Package wire is the binary frame codec of the TCP transport: a
// length-prefixed, CRC-protected encoding of one comm.Frame.
//
// Frame layout (all integers little-endian):
//
//	offset size field
//	     0    4 body length  n = 32 + 8·nwords (everything after this u32)
//	     4    4 magic        "SGD1" (0x31444753)
//	     8    2 from         sender transport rank
//	    10    2 to           receiver transport rank
//	    12    8 seq          reliable-delivery stamp (0 = fault-free path)
//	    20    8 arrive       simulated arrival time, IEEE-754 bits
//	    28    4 nwords       payload word count
//	    32  8·w payload      float64 words, IEEE-754 bits
//	   end    4 crc          CRC-32C (Castagnoli) over bytes [4, end-4)
//
// The decoder validates in dependency order — prefix bounds before any
// read of the body, nwords against the body length before any payload
// allocation, CRC before trusting a single field — so truncated,
// oversized, bit-flipped or garbage frames error cleanly without
// panicking or over-allocating (pinned by the fuzz targets).
package wire

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	// Magic identifies a frame body ("SGD1" little-endian).
	Magic = 0x31444753
	// PrefixLen is the size of the length prefix.
	PrefixLen = 4
	// bodyOverhead is the non-payload portion of a frame body:
	// magic(4) + from(2) + to(2) + seq(8) + arrive(8) + nwords(4) + crc(4).
	bodyOverhead = 32
	// MaxWords caps the payload a frame may declare (1 GiB of float64s);
	// a decoder rejects larger claims before allocating anything.
	MaxWords = 1 << 27
	// MaxRank is the largest transport rank the u16 from/to fields hold.
	MaxRank = 1<<16 - 1
)

// Decode errors. Wrapped with detail via %w, so errors.Is works.
var (
	ErrShortPrefix     = errors.New("wire: short length prefix")
	ErrBadLength       = errors.New("wire: invalid body length")
	ErrPayloadTooLarge = errors.New("wire: payload exceeds cap")
	ErrTruncated       = errors.New("wire: truncated body")
	ErrLengthMismatch  = errors.New("wire: nwords disagrees with body length")
	ErrBadMagic        = errors.New("wire: bad magic")
	ErrBadCRC          = errors.New("wire: CRC mismatch")
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the frame metadata around the payload.
type Header struct {
	From, To int
	Seq      int64
	Arrive   float64
}

// le{16,32,64} avoid importing encoding/binary for four fixed offsets.
func put16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func put64(b []byte, v uint64) {
	put32(b, uint32(v))
	put32(b[4:], uint32(v>>32))
}
func get16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func get64(b []byte) uint64 { return uint64(get32(b)) | uint64(get32(b[4:]))<<32 }

// FrameLen returns the encoded size of a frame carrying w payload words.
func FrameLen(w int) int { return PrefixLen + bodyOverhead + 8*w }

// AppendFrame appends one complete frame — length prefix, header,
// payload, CRC — to dst and returns the extended slice. Reusing dst
// across calls makes the steady state allocation-free once it has grown
// to the largest frame (pinned by TestAppendFrameSteadyStateAllocs).
func AppendFrame(dst []byte, h Header, payload []float64) []byte {
	w := len(payload)
	if w > MaxWords {
		panic(fmt.Sprintf("wire: payload of %d words exceeds MaxWords %d", w, MaxWords))
	}
	if uint(h.From) > MaxRank || uint(h.To) > MaxRank {
		panic(fmt.Sprintf("wire: rank %d→%d outside the u16 frame fields", h.From, h.To))
	}
	need := FrameLen(w)
	off := len(dst)
	if tot := off + need; tot > cap(dst) {
		grown := make([]byte, off, tot)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[: off+need : cap(dst)]
	b := dst[off:]
	put32(b[0:], uint32(bodyOverhead+8*w))
	put32(b[4:], Magic)
	put16(b[8:], uint16(h.From))
	put16(b[10:], uint16(h.To))
	put64(b[12:], uint64(h.Seq))
	put64(b[20:], math.Float64bits(h.Arrive))
	put32(b[28:], uint32(w))
	p := b[32:]
	for i, v := range payload {
		put64(p[8*i:], math.Float64bits(v))
	}
	put32(b[len(b)-4:], crc32.Checksum(b[PrefixLen:len(b)-4], castagnoli))
	return dst
}

// BodyLen parses the length prefix and validates it against the framing
// invariants (minimum size, payload cap, word alignment), returning the
// number of body bytes that follow the prefix. It never reads past
// PrefixLen bytes.
func BodyLen(prefix []byte) (int, error) {
	if len(prefix) < PrefixLen {
		return 0, fmt.Errorf("%w: %d bytes", ErrShortPrefix, len(prefix))
	}
	n := get32(prefix)
	if n < bodyOverhead {
		return 0, fmt.Errorf("%w: %d < minimum %d", ErrBadLength, n, bodyOverhead)
	}
	if n > bodyOverhead+8*MaxWords {
		return 0, fmt.Errorf("%w: body of %d bytes", ErrPayloadTooLarge, n)
	}
	if (n-bodyOverhead)%8 != 0 {
		return 0, fmt.Errorf("%w: %d bytes is not header + whole words", ErrBadLength, n)
	}
	return int(n), nil
}

// PayloadWords cross-checks the body's declared word count against its
// actual length — before any allocation, so a hostile nwords cannot
// force an oversized buffer.
func PayloadWords(body []byte) (int, error) {
	if len(body) < bodyOverhead {
		return 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(body))
	}
	w := get32(body[24:])
	if w > MaxWords {
		return 0, fmt.Errorf("%w: %d words", ErrPayloadTooLarge, w)
	}
	if len(body) != bodyOverhead+8*int(w) {
		return 0, fmt.Errorf("%w: %d words in %d bytes", ErrLengthMismatch, w, len(body))
	}
	return int(w), nil
}

// DecodeBody validates a frame body (magic, sizes, CRC) and decodes its
// payload into dst, which must be sized by PayloadWords. Nothing is
// trusted — not even the header fields — until the CRC has passed.
func DecodeBody(body []byte, dst []float64) (Header, error) {
	w, err := PayloadWords(body)
	if err != nil {
		return Header{}, err
	}
	if got := get32(body); got != Magic {
		return Header{}, fmt.Errorf("%w: %#08x", ErrBadMagic, got)
	}
	stored := get32(body[len(body)-4:])
	if sum := crc32.Checksum(body[:len(body)-4], castagnoli); sum != stored {
		return Header{}, fmt.Errorf("%w: computed %#08x, stored %#08x", ErrBadCRC, sum, stored)
	}
	if len(dst) != w {
		return Header{}, fmt.Errorf("wire: DecodeBody dst has %d words, frame carries %d", len(dst), w)
	}
	h := Header{
		From:   int(get16(body[4:])),
		To:     int(get16(body[6:])),
		Seq:    int64(get64(body[8:])),
		Arrive: math.Float64frombits(get64(body[16:])),
	}
	p := body[28:]
	for i := range dst {
		dst[i] = math.Float64frombits(get64(p[8*i:]))
	}
	return h, nil
}
