package comm

import (
	"math"
	"testing"
	"time"
)

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("seed=7,drop=0.05,delay=0.1~0.02,slow=3:4,crash=5@8,burst=0>1@10+5,timeout=5ms,retries=9,evict=80ms")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 || plan.Drop != 0.05 || plan.DelayMean != 0.1 || plan.DelayJitter != 0.02 {
		t.Errorf("scalar fields wrong: %+v", plan)
	}
	if plan.Slow[3] != 4 {
		t.Errorf("slow = %v, want rank 3 ×4", plan.Slow)
	}
	if plan.CrashAt[5] != 8 {
		t.Errorf("crash = %v, want rank 5 @ boundary 8", plan.CrashAt)
	}
	if len(plan.Bursts) != 1 || plan.Bursts[0] != (Burst{From: 0, To: 1, Start: 10, N: 5}) {
		t.Errorf("bursts = %v", plan.Bursts)
	}
	if plan.RetryTimeout != 5*time.Millisecond || plan.MaxRetries != 9 || plan.EvictAfter != 80*time.Millisecond {
		t.Errorf("protocol knobs wrong: %+v", plan)
	}

	// String must round-trip through the parser.
	plan2, err := ParseFaultPlan(plan.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", plan.String(), err)
	}
	if plan2.String() != plan.String() {
		t.Errorf("round trip changed the plan: %q vs %q", plan2.String(), plan.String())
	}

	if p, err := ParseFaultPlan(""); p != nil || err != nil {
		t.Errorf("empty spec should be (nil, nil), got (%v, %v)", p, err)
	}
	for _, bad := range []string{"drop", "drop=x", "drop=1.5", "slow=3", "crash=5", "burst=0>1", "nope=1"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q should fail to parse", bad)
		}
	}
}

// TestFaultyAllreduceCorrect: with per-attempt message drops active, the
// acknowledged-delivery protocol must still complete every collective
// with bitwise the fault-free result — faults cost retries, never bits.
func TestFaultyAllreduceCorrect(t *testing.T) {
	var totalDrops, totalRetries int64
	for _, p := range []int{2, 4, 5} {
		m := 37
		orig, want := makeBufs(p, m, int64(900+p))

		got := cloneBufs(orig)
		g := NewGroup(p)
		g.InjectFaults(&FaultPlan{Seed: 42, Drop: 0.3, RetryTimeout: 20 * time.Millisecond})
		runGroup(p, g, func(rank int) { g.AllreduceTreeChunked(rank, got[rank], 8) })
		g.Close()

		for r := 0; r < p; r++ {
			for i := range want {
				if got[r][i] != want[i] {
					t.Fatalf("p=%d rank=%d[%d]: faulty %g != fault-free %g (must be bitwise)",
						p, r, i, got[r][i], want[i])
				}
			}
		}
		st := g.Stats()
		totalDrops += st.Faults.Drops
		totalRetries += st.Faults.Retries
	}
	if totalDrops == 0 {
		t.Error("drop=0.3 runs recorded no drops at all")
	}
	if totalRetries == 0 {
		t.Error("dropped messages recorded no retries")
	}
}

// TestFaultyRHDCorrect covers the pairwise-exchange collective, whose
// both-directions-at-once pattern is the deadlock-sensitive one under
// stop-and-wait links.
func TestFaultyRHDCorrect(t *testing.T) {
	p, m := 4, 53
	orig, want := makeBufs(p, m, 901)
	got := cloneBufs(orig)
	g := NewGroup(p)
	g.InjectFaults(&FaultPlan{Seed: 5, Drop: 0.3, RetryTimeout: 20 * time.Millisecond})
	runGroup(p, g, func(rank int) { g.AllreduceRHD(rank, got[rank]) })
	g.Close()
	const tol = 1e-12
	for r := 0; r < p; r++ {
		for i := range want {
			if d := math.Abs(got[r][i] - want[i]); d > tol {
				t.Fatalf("rank=%d[%d]: faulty rhd %g vs tree %g (|Δ|=%g)", r, i, got[r][i], want[i], d)
			}
		}
	}
}

// TestFaultDeterminism: the fault schedule is a pure function of the
// plan, so two identical runs must record identical drop counters.
func TestFaultDeterminism(t *testing.T) {
	run := func(seed int64) FaultStats {
		p, m := 4, 64
		orig, _ := makeBufs(p, m, 77)
		got := cloneBufs(orig)
		g := NewGroup(p)
		g.InjectFaults(&FaultPlan{Seed: seed, Drop: 0.2, RetryTimeout: 20 * time.Millisecond})
		runGroup(p, g, func(rank int) { g.AllreduceTreeChunked(rank, got[rank], 16) })
		g.Close()
		return g.Stats().Faults
	}
	a, b := run(11), run(11)
	if a.Drops != b.Drops {
		t.Errorf("same plan, different drop counts: %d vs %d", a.Drops, b.Drops)
	}
	if c := run(12); c.Drops == a.Drops && c.Retries == a.Retries {
		t.Logf("note: seeds 11 and 12 coincidentally matched (%+v)", c)
	}
}

// TestRetryAccountingProperty: replaying the plan's drop hash over every
// link's consumed sequence range predicts the retransmission counters.
// Every message must survive its leading dropped attempts, so the
// replayed count is an exact lower bound; spurious ack timeouts (a
// receiver descheduled past the window) add retransmissions — and those
// extra attempts can themselves be dropped — so both counters get a
// bounded upward slack.
func TestRetryAccountingProperty(t *testing.T) {
	p, m := 4, 128
	plan := &FaultPlan{Seed: 31, Drop: 0.3, RetryTimeout: 120 * time.Millisecond}
	orig, _ := makeBufs(p, m, 13)
	got := cloneBufs(orig)
	g := NewGroup(p)
	g.InjectFaults(plan)
	for round := 0; round < 3; round++ {
		runGroup(p, g, func(rank int) { g.AllreduceTreeChunked(rank, got[rank], 16) })
	}
	g.Close()

	var wantDrops, wantRetries int64
	fab := g.fab
	for from := 0; from < p; from++ {
		for to := 0; to < p; to++ {
			li := fab.linkIdx(from, to)
			for seq := int64(0); seq < fab.seq[li]; seq++ {
				attempt := 0
				for fab.dropAttempt(from, to, seq, attempt) {
					wantDrops++
					wantRetries++
					attempt++
				}
			}
		}
	}
	st := g.Stats().Faults
	slack := wantRetries/4 + 4
	if st.Drops < wantDrops || st.Drops > wantDrops+slack {
		t.Errorf("Drops = %d, hash replay predicts %d (exact lower bound, slack %d)",
			st.Drops, wantDrops, slack)
	}
	if st.Retries < wantRetries || st.Retries > wantRetries+slack {
		t.Errorf("Retries = %d, hash replay predicts %d (exact lower bound, slack %d)",
			st.Retries, wantRetries, slack)
	}
	if st.Timeouts != st.Retries {
		t.Errorf("stop-and-wait must map timeouts 1:1 onto retries: %d timeouts, %d retries",
			st.Timeouts, st.Retries)
	}
}

// TestDropBurst: a scheduled outage drops the first attempt of each
// sequence in its window; the retry machinery rides it out.
func TestDropBurst(t *testing.T) {
	p, m := 2, 40
	orig, want := makeBufs(p, m, 14)
	got := cloneBufs(orig)
	g := NewGroup(p)
	g.InjectFaults(&FaultPlan{
		Seed:         1,
		Bursts:       []Burst{{From: 1, To: 0, Start: 0, N: 3}},
		RetryTimeout: 10 * time.Millisecond,
	})
	runGroup(p, g, func(rank int) { g.AllreduceTreeChunked(rank, got[rank], 8) })
	g.Close()
	for r := 0; r < p; r++ {
		for i := range want {
			if got[r][i] != want[i] {
				t.Fatalf("rank=%d[%d]: burst run %g != fault-free %g", r, i, got[r][i], want[i])
			}
		}
	}
	st := g.Stats().Faults
	// A burst only ever drops first attempts, so the drop count is exact;
	// retries get slack for spurious ack timeouts under a loaded scheduler.
	if st.Drops != 3 {
		t.Errorf("burst of 3 sequences recorded %d drops, want exactly 3", st.Drops)
	}
	if st.Retries < 3 || st.Retries > 6 {
		t.Errorf("burst recovery recorded %d retries, want 3 (+ spurious-timeout slack)", st.Retries)
	}
}

// TestInjectedDelayShowsInSimulatedTime: injected latency must land on
// the receiving learner's simulated clock.
func TestInjectedDelayShowsInSimulatedTime(t *testing.T) {
	run := func(plan *FaultPlan) float64 {
		p, m := 4, 32
		clocks := make([]Clock, p)
		for i := range clocks {
			clocks[i] = &simpleClock{}
		}
		g := NewSimGroup(p, clocks, wordCost{})
		if plan != nil {
			g.InjectFaults(plan)
		}
		bufs := make([][]float64, p)
		for r := range bufs {
			bufs[r] = make([]float64, m)
		}
		runGroup(p, g, func(rank int) { g.AllreduceTree(rank, bufs[rank]) })
		g.Close()
		max := 0.0
		for _, c := range clocks {
			if c.Now() > max {
				max = c.Now()
			}
		}
		return max
	}
	clean := run(nil)
	delayed := run(&FaultPlan{Seed: 3, DelayMean: 100})
	if delayed < clean+100 {
		t.Errorf("injected 100s mean delay moved completion only %.0f → %.0f simulated seconds", clean, delayed)
	}
}
