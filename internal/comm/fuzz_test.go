package comm

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzAllreduceEquivalence pins the allreduce implementations against
// each other over fuzzer-chosen (p, m, chunk, seed) shapes: the chunked
// pipelined tree must reproduce the monolithic tree bit for bit at any
// chunk size, recursive halving/doubling must agree within 1e-12 (and
// bit for bit on non-powers-of-two p, where it falls back to the tree).
// One fuzz target per package keeps `go test -fuzz=.` runnable.
func FuzzAllreduceEquivalence(f *testing.F) {
	f.Add(uint8(1), uint16(1), uint16(1), int64(1))
	f.Add(uint8(2), uint16(5), uint16(2), int64(7))
	f.Add(uint8(3), uint16(23), uint16(7), int64(11))
	f.Add(uint8(4), uint16(64), uint16(16), int64(13))
	f.Add(uint8(5), uint16(129), uint16(3), int64(17))
	f.Add(uint8(8), uint16(100), uint16(33), int64(19))
	f.Fuzz(func(t *testing.T, pRaw uint8, mRaw, chunkRaw uint16, seed int64) {
		p := int(pRaw)%8 + 1
		m := int(mRaw)%256 + 1
		chunk := int(chunkRaw)%(m+2) + 1

		rng := rand.New(rand.NewSource(seed))
		orig := make([][]float64, p)
		for r := range orig {
			orig[r] = make([]float64, m)
			for i := range orig[r] {
				orig[r][i] = rng.NormFloat64()
			}
		}

		tree := cloneBufs(orig)
		gt := NewGroup(p)
		runGroup(p, gt, func(rank int) { gt.AllreduceTree(rank, tree[rank]) })

		ptree := cloneBufs(orig)
		gp := NewGroup(p)
		runGroup(p, gp, func(rank int) { gp.AllreduceTreeChunked(rank, ptree[rank], chunk) })

		rhd := cloneBufs(orig)
		gh := NewGroup(p)
		runGroup(p, gh, func(rank int) { gh.AllreduceRHD(rank, rhd[rank]) })

		for r := 0; r < p; r++ {
			for i := 0; i < m; i++ {
				if ptree[r][i] != tree[r][i] {
					t.Fatalf("p=%d m=%d chunk=%d rank=%d[%d]: ptree %g != tree %g (must be bitwise)",
						p, m, chunk, r, i, ptree[r][i], tree[r][i])
				}
				if p&(p-1) != 0 {
					if rhd[r][i] != tree[r][i] {
						t.Fatalf("p=%d m=%d rank=%d[%d]: rhd fallback %g != tree %g (must be bitwise)",
							p, m, r, i, rhd[r][i], tree[r][i])
					}
				} else if d := math.Abs(rhd[r][i] - tree[r][i]); d > 1e-12 {
					t.Fatalf("p=%d m=%d rank=%d[%d]: rhd %g vs tree %g (|Δ|=%g)",
						p, m, r, i, rhd[r][i], tree[r][i], d)
				}
				// Every rank of every algorithm must agree with rank 0 of
				// its own algorithm exactly — allreduce leaves identical
				// buffers everywhere.
				if tree[r][i] != tree[0][i] || ptree[r][i] != ptree[0][i] || rhd[r][i] != rhd[0][i] {
					t.Fatalf("p=%d m=%d rank=%d[%d]: ranks disagree within one algorithm", p, m, r, i)
				}
			}
		}
	})
}
