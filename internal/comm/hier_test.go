package comm

import (
	"math/rand"
	"runtime/debug"
	"testing"

	"sasgd/internal/parallel"
)

func fillRankBufs(p, m int, seed int64) [][]float64 {
	bufs := make([][]float64, p)
	for r := range bufs {
		rng := rand.New(rand.NewSource(seed + int64(r)))
		bufs[r] = make([]float64, m)
		for i := range bufs[r] {
			bufs[r][i] = rng.NormFloat64()
		}
	}
	return bufs
}

func TestBlockIslands(t *testing.T) {
	cases := []struct {
		p, groups int
		want      []int
	}{
		{8, 4, []int{0, 0, 1, 1, 2, 2, 3, 3}},
		{8, 1, []int{0, 0, 0, 0, 0, 0, 0, 0}},
		{8, 8, []int{0, 1, 2, 3, 4, 5, 6, 7}},
		{5, 2, []int{0, 0, 0, 1, 1}},
		{3, 2, []int{0, 0, 1}},
		{4, 0, []int{0, 0, 0, 0}}, // groups clamps up to 1
		{2, 99, []int{0, 1}},      // groups clamps down to p
		{7, 3, []int{0, 0, 0, 1, 1, 1, 2}},
	}
	for _, tc := range cases {
		got := BlockIslands(tc.p, tc.groups)
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("BlockIslands(%d,%d) = %v, want %v", tc.p, tc.groups, got, tc.want)
			}
		}
	}
}

// TestHierSingleIslandBitwiseTree is the degenerate pin: a hierarchy
// with one island must replay the flat tree's summation order exactly,
// at every rank count and chunking, so the scheduled path with a single
// group is bitwise the flat path.
func TestHierSingleIslandBitwiseTree(t *testing.T) {
	const m = 257
	for _, p := range []int{2, 3, 5, 8} {
		for _, chunk := range []int{m, 64} {
			ref := fillRankBufs(p, m, 42)
			gRef := NewGroup(p)
			runGroup(p, gRef, func(r int) { gRef.AllreduceTreeChunkedFrom(r, ref[r], chunk, 0) })

			got := fillRankBufs(p, m, 42)
			g := NewGroup(p)
			h := NewHier(g, 1)
			if h.Islands() != 1 {
				t.Fatalf("p=%d groups=1: %d islands", p, h.Islands())
			}
			runGroup(p, g, func(r int) { h.AllreduceIntra(r, got[r], chunk, 0) })

			for r := 0; r < p; r++ {
				for i := range got[r] {
					if got[r][i] != ref[r][i] {
						t.Fatalf("p=%d chunk=%d rank=%d: hier not bitwise tree at %d: %g vs %g",
							p, chunk, r, i, got[r][i], ref[r][i])
					}
				}
			}
		}
	}
}

// TestHierIntraSumsIslandOnly checks that the intra collective sums
// exactly the members of each island and leaves other islands untouched.
func TestHierIntraSumsIslandOnly(t *testing.T) {
	const m = 100
	for _, tc := range []struct{ p, groups int }{{8, 4}, {8, 2}, {5, 2}, {3, 2}, {7, 3}} {
		bufs := fillRankBufs(tc.p, m, 7)
		want := make([][]float64, tc.p)
		isl := BlockIslands(tc.p, tc.groups)
		for r := 0; r < tc.p; r++ {
			want[r] = make([]float64, m)
			for q := 0; q < tc.p; q++ {
				if isl[q] == isl[r] {
					for i := range want[r] {
						want[r][i] += bufs[q][i]
					}
				}
			}
		}
		g := NewGroup(tc.p)
		h := NewHier(g, tc.groups)
		runGroup(tc.p, g, func(r int) { h.AllreduceIntra(r, bufs[r], 0, 0) })
		for r := 0; r < tc.p; r++ {
			for i := range bufs[r] {
				if d := bufs[r][i] - want[r][i]; d > 1e-12 || d < -1e-12 {
					t.Fatalf("p=%d groups=%d rank=%d: intra sum off at %d: %g vs %g",
						tc.p, tc.groups, r, i, bufs[r][i], want[r][i])
				}
			}
		}
	}
}

// TestHierInterGlobalSum: after an intra round, the inter exchange must
// leave the sum of the island aggregates — one contribution per island —
// on every rank, leaders and non-leaders alike.
func TestHierInterGlobalSum(t *testing.T) {
	const m = 131
	for _, tc := range []struct{ p, groups int }{{8, 4}, {8, 2}, {6, 3}, {5, 2}, {4, 4}, {7, 3}} {
		bufs := fillRankBufs(tc.p, m, 19)
		want := make([]float64, m)
		for r := 0; r < tc.p; r++ {
			for i := range want {
				want[i] += bufs[r][i]
			}
		}
		g := NewGroup(tc.p)
		h := NewHier(g, tc.groups)
		runGroup(tc.p, g, func(r int) {
			h.AllreduceIntra(r, bufs[r], 0, 0)
			h.AllreduceInter(r, bufs[r], 0, 0)
		})
		for r := 0; r < tc.p; r++ {
			for i := range bufs[r] {
				if d := bufs[r][i] - want[i]; d > 1e-9 || d < -1e-9 {
					t.Fatalf("p=%d groups=%d rank=%d: global sum off at %d: %g vs %g",
						tc.p, tc.groups, r, i, bufs[r][i], want[i])
				}
			}
		}
	}
}

// TestHierOfNormalizesIds: explicit island maps with gaps (a survivor
// group after evictions) normalize by first appearance, leaders are the
// lowest member of each island, and the group's cross-island accounting
// follows the new map.
func TestHierOfNormalizesIds(t *testing.T) {
	g := NewGroup(5)
	// Physical islands {0,1},{2,3},{4,5} with rank 2 evicted: survivors'
	// raw ids are [0,0,1,2,2] after compaction of [0,0,3,7,7].
	h := NewHierOf(g, []int{0, 0, 3, 7, 7})
	if h.Islands() != 3 {
		t.Fatalf("islands = %d, want 3", h.Islands())
	}
	wantIsland := []int{0, 0, 1, 2, 2}
	for r, w := range wantIsland {
		if h.IslandOf(r) != w {
			t.Fatalf("IslandOf(%d) = %d, want %d", r, h.IslandOf(r), w)
		}
	}
	for r, lead := range map[int]bool{0: true, 1: false, 2: true, 3: true, 4: false} {
		if h.IsLeader(r) != lead {
			t.Fatalf("IsLeader(%d) = %v, want %v", r, h.IsLeader(r), lead)
		}
	}
	if h.IslandSize(2) != 1 || h.IslandSize(4) != 2 {
		t.Fatalf("island sizes: %d, %d", h.IslandSize(2), h.IslandSize(4))
	}
}

// TestHierTrafficSplit: intra traffic must never cross islands, so
// CrossWords counts only the inter phase's leader hops, and the hintra /
// hinter per-algorithm totals split the word count accordingly.
func TestHierTrafficSplit(t *testing.T) {
	const p, groups, m = 8, 4, 200
	bufs := fillRankBufs(p, m, 3)
	g := NewGroup(p)
	h := NewHier(g, groups)

	runGroup(p, g, func(r int) { h.AllreduceIntra(r, bufs[r], 0, 0) })
	st := g.Stats()
	if st.CrossWords != 0 {
		t.Fatalf("intra phase crossed islands: %d cross words", st.CrossWords)
	}
	intra := st.Words
	if intra == 0 {
		t.Fatal("intra phase moved no words")
	}

	runGroup(p, g, func(r int) { h.AllreduceInter(r, bufs[r], 0, 0) })
	st = g.Stats()
	if st.CrossWords == 0 {
		t.Fatal("inter phase reported no cross-island words")
	}
	// The island fan-out (leader → member) stays inside each island, so
	// cross words must be strictly fewer than the inter phase's total.
	inter := st.Words - intra
	if st.CrossWords >= inter {
		t.Fatalf("cross words %d ≥ inter words %d", st.CrossWords, inter)
	}
}

// TestDeferSyncCapturesMax pins the sink semantics the delayed engine
// relies on: capture keeps the max arrival, Join folds it into a clock
// and resets the mark.
func TestDeferSyncCapturesMax(t *testing.T) {
	var d DeferSync
	d.capture(3)
	d.capture(9)
	d.capture(5)
	if d.Mark() != 9 {
		t.Fatalf("mark = %g, want 9", d.Mark())
	}
	c := &testClock{}
	d.Join(c)
	if c.synced != 9 {
		t.Fatalf("Join synced %g, want 9", c.synced)
	}
	if d.Mark() != 0 {
		t.Fatalf("mark after Join = %g, want 0", d.Mark())
	}
}

type testClock struct{ synced float64 }

func (c *testClock) Now() float64      { return c.synced }
func (c *testClock) Advance(d float64) {}
func (c *testClock) Sync(v float64) {
	if v > c.synced {
		c.synced = v
	}
}

// TestHierSteadyStateAllocs pins the hierarchical collectives to zero
// steady-state allocations, like every other collective in the fabric:
// the scheduled path runs them every boundary for the whole training
// run.
func TestHierSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocs/op is pinned in non-race builds")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	defer parallel.SetWorkers(parallel.SetWorkers(1))

	const p, groups, m = 8, 4, 1003
	g := NewGroup(p)
	h := NewHier(g, groups)
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, m)
		for i := range bufs[r] {
			bufs[r][i] = float64(r + i)
		}
	}
	start := make([]chan struct{}, p)
	done := make(chan struct{}, p)
	both := func(r int) {
		h.AllreduceIntra(r, bufs[r], 64, 0)
		h.AllreduceInter(r, bufs[r], 64, 0)
	}
	for r := 1; r < p; r++ {
		start[r] = make(chan struct{})
		go func(r int) {
			for range start[r] {
				both(r)
				done <- struct{}{}
			}
		}(r)
	}
	round := func() {
		for r := 1; r < p; r++ {
			start[r] <- struct{}{}
		}
		both(0)
		for r := 1; r < p; r++ {
			<-done
		}
	}
	for i := 0; i < 5; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(10, round); avg != 0 {
		t.Errorf("%.1f allocs per steady-state hier round, want 0", avg)
	}
	for r := 1; r < p; r++ {
		close(start[r])
	}
}
