package comm

import (
	"runtime/debug"
	"testing"

	"sasgd/internal/parallel"
)

// TestAllreduceSteadyStateAllocs pins the steady-state allocation count of
// every allreduce implementation to zero: after a few warm-up rounds have
// populated the group's buffer pool, repeated collectives must not touch
// the heap at all. The aggregation loop runs every T local steps for the
// whole training run, so a single stray allocation per round multiplies
// into GC pressure that the kernel benchmarks then pay for.
//
// Methodology: the group and its rank goroutines persist across rounds
// (per-rank start channels — a shared channel could hand two tokens to
// one goroutine and deadlock the round), GC is disabled so sync.Pool is
// not drained mid-measurement, and the parallel reduction runs with one
// worker so parallel.For stays on the inline path. AllocsPerRun counts
// mallocs process-wide, so the helper ranks' collectives are measured
// too, not just rank 0's.
func TestAllreduceSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocs/op is pinned in non-race builds")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	defer parallel.SetWorkers(parallel.SetWorkers(1))

	cases := []struct {
		name string
		p, m int
		run  func(g *Group, rank int, buf []float64)
	}{
		{"tree/p8", 8, 1003, func(g *Group, r int, b []float64) { g.AllreduceTree(r, b) }},
		{"ring/p5", 5, 1003, func(g *Group, r int, b []float64) { g.AllreduceRing(r, b) }},
		{"ptree/p8", 8, 1003, func(g *Group, r int, b []float64) { g.AllreduceTreeChunked(r, b, 64) }},
		{"ptree/p5", 5, 1003, func(g *Group, r int, b []float64) { g.AllreduceTreeChunked(r, b, 64) }},
		{"rhd/p8", 8, 1003, func(g *Group, r int, b []float64) { g.AllreduceRHD(r, b) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGroup(tc.p)
			bufs := make([][]float64, tc.p)
			for r := range bufs {
				bufs[r] = make([]float64, tc.m)
				for i := range bufs[r] {
					bufs[r][i] = float64(r + i)
				}
			}
			start := make([]chan struct{}, tc.p)
			done := make(chan struct{}, tc.p)
			for r := 1; r < tc.p; r++ {
				start[r] = make(chan struct{})
				go func(r int) {
					for range start[r] {
						tc.run(g, r, bufs[r])
						done <- struct{}{}
					}
				}(r)
			}
			round := func() {
				for r := 1; r < tc.p; r++ {
					start[r] <- struct{}{}
				}
				tc.run(g, 0, bufs[0])
				for r := 1; r < tc.p; r++ {
					<-done
				}
			}
			for i := 0; i < 5; i++ {
				round() // warm the pool and the runtime's goroutine caches
			}
			if avg := testing.AllocsPerRun(10, round); avg != 0 {
				t.Errorf("%s: %.1f allocs per steady-state allreduce round, want 0", tc.name, avg)
			}
			for r := 1; r < tc.p; r++ {
				close(start[r])
			}
		})
	}
}

// TestSelectionSteadyStateAllocs pins the top-k selection core: once the
// selector's magnitude scratch and the caller's index slice have warmed
// up, picking the k largest of n entries is O(n) expected time and zero
// allocations — the property that lets the codec run selection on every
// bucket of every aggregation without touching the heap.
func TestSelectionSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocs/op is pinned in non-race builds")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const n, k = 10000, 500
	dense := make([]float64, n)
	for i := range dense {
		dense[i] = float64((i*2654435761)%1000) - 500
	}
	var s selector
	idx := make([]int, 0, k)
	pick := func() { idx = s.pick(dense, k, idx[:0]) }
	pick() // warm the magnitude scratch
	if avg := testing.AllocsPerRun(100, pick); avg != 0 {
		t.Errorf("%.1f allocs per selection, want 0", avg)
	}
	if len(idx) != k {
		t.Fatalf("selected %d entries, want %d", len(idx), k)
	}
}

// TestCompressedSteadyStateAllocs extends the zero-alloc pin to the
// compression engine: a full compressed allreduce round — residual fold,
// selection or quantization, pooled pair/packed-integer collective,
// dense scatter — must not allocate once the codec scratch and the
// group's buffer pool have warmed up. Each round restores the gradient
// and residual from pristine copies inside the measured closure (copy
// into preallocated buffers, no heap traffic) so every round compresses
// identical data and message sizes stay fixed.
func TestCompressedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocs/op is pinned in non-race builds")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	defer parallel.SetWorkers(parallel.SetWorkers(1))

	for _, tc := range []struct {
		name  string
		codec string
		p     int
		ratio float64
	}{
		{"topk/p8", "topk", 8, 0.05},
		{"topk/p5", "topk", 5, 0.05},
		{"qint8/p8", "qint8", 8, 0},
		{"qint8/p5", "qint8", 5, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const m = 1003
			g := NewGroup(tc.p)
			comps := make([]Compressor, tc.p)
			segs := make([][]float64, tc.p)
			ress := make([][]float64, tc.p)
			seg0 := make([][]float64, tc.p)
			res0 := make([][]float64, tc.p)
			for r := 0; r < tc.p; r++ {
				comps[r] = NewCompressor(tc.codec)
				segs[r] = make([]float64, m)
				ress[r] = make([]float64, m)
				seg0[r] = make([]float64, m)
				res0[r] = make([]float64, m)
				for i := range seg0[r] {
					seg0[r][i] = float64((r+i)%67) - 33
					res0[r][i] = float64((r*3+i)%29) * 0.01
				}
			}
			one := func(r int) {
				copy(segs[r], seg0[r])
				copy(ress[r], res0[r])
				comps[r].Allreduce(g, r, segs[r], ress[r], tc.ratio, 0, nil, 0)
			}
			start := make([]chan struct{}, tc.p)
			done := make(chan struct{}, tc.p)
			for r := 1; r < tc.p; r++ {
				start[r] = make(chan struct{})
				go func(r int) {
					for range start[r] {
						one(r)
						done <- struct{}{}
					}
				}(r)
			}
			round := func() {
				for r := 1; r < tc.p; r++ {
					start[r] <- struct{}{}
				}
				one(0)
				for r := 1; r < tc.p; r++ {
					<-done
				}
			}
			for i := 0; i < 5; i++ {
				round()
			}
			if avg := testing.AllocsPerRun(10, round); avg != 0 {
				t.Errorf("%s: %.1f allocs per steady-state compressed round, want 0", tc.name, avg)
			}
			for r := 1; r < tc.p; r++ {
				close(start[r])
			}
		})
	}
}
