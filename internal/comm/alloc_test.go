package comm

import (
	"runtime/debug"
	"testing"

	"sasgd/internal/parallel"
)

// TestAllreduceSteadyStateAllocs pins the steady-state allocation count of
// every allreduce implementation to zero: after a few warm-up rounds have
// populated the group's buffer pool, repeated collectives must not touch
// the heap at all. The aggregation loop runs every T local steps for the
// whole training run, so a single stray allocation per round multiplies
// into GC pressure that the kernel benchmarks then pay for.
//
// Methodology: the group and its rank goroutines persist across rounds
// (per-rank start channels — a shared channel could hand two tokens to
// one goroutine and deadlock the round), GC is disabled so sync.Pool is
// not drained mid-measurement, and the parallel reduction runs with one
// worker so parallel.For stays on the inline path. AllocsPerRun counts
// mallocs process-wide, so the helper ranks' collectives are measured
// too, not just rank 0's.
func TestAllreduceSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocs/op is pinned in non-race builds")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	defer parallel.SetWorkers(parallel.SetWorkers(1))

	cases := []struct {
		name string
		p, m int
		run  func(g *Group, rank int, buf []float64)
	}{
		{"tree/p8", 8, 1003, func(g *Group, r int, b []float64) { g.AllreduceTree(r, b) }},
		{"ring/p5", 5, 1003, func(g *Group, r int, b []float64) { g.AllreduceRing(r, b) }},
		{"ptree/p8", 8, 1003, func(g *Group, r int, b []float64) { g.AllreduceTreeChunked(r, b, 64) }},
		{"ptree/p5", 5, 1003, func(g *Group, r int, b []float64) { g.AllreduceTreeChunked(r, b, 64) }},
		{"rhd/p8", 8, 1003, func(g *Group, r int, b []float64) { g.AllreduceRHD(r, b) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGroup(tc.p)
			bufs := make([][]float64, tc.p)
			for r := range bufs {
				bufs[r] = make([]float64, tc.m)
				for i := range bufs[r] {
					bufs[r][i] = float64(r + i)
				}
			}
			start := make([]chan struct{}, tc.p)
			done := make(chan struct{}, tc.p)
			for r := 1; r < tc.p; r++ {
				start[r] = make(chan struct{})
				go func(r int) {
					for range start[r] {
						tc.run(g, r, bufs[r])
						done <- struct{}{}
					}
				}(r)
			}
			round := func() {
				for r := 1; r < tc.p; r++ {
					start[r] <- struct{}{}
				}
				tc.run(g, 0, bufs[0])
				for r := 1; r < tc.p; r++ {
					<-done
				}
			}
			for i := 0; i < 5; i++ {
				round() // warm the pool and the runtime's goroutine caches
			}
			if avg := testing.AllocsPerRun(10, round); avg != 0 {
				t.Errorf("%s: %.1f allocs per steady-state allreduce round, want 0", tc.name, avg)
			}
			for r := 1; r < tc.p; r++ {
				close(start[r])
			}
		})
	}
}
