package comm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sasgd/internal/obs"
)

// Fault injection. A FaultPlan is a deterministic, seeded description of
// everything that goes wrong during a run: per-link message drops and
// delay distributions, learner slowdowns, and crash-at-boundary
// schedules. Determinism is the design center — every stochastic
// decision (drop this attempt? how much extra latency?) is a pure hash
// of (plan seed, physical link, message sequence, attempt), never a
// stateful RNG stream, so the injected fault pattern is identical
// across runs and independent of goroutine scheduling. That is what
// lets the chaos tests assert bitwise survivor equivalence and the
// property tests predict retry counters exactly.
//
// When a plan with link faults is attached to a Group, point-to-point
// transfers switch from direct mailbox delivery to an acknowledged
// stop-and-wait protocol run by one daemon goroutine per directed link:
// each message gets a per-link sequence number, every delivery attempt
// may be dropped by the plan, the daemon retransmits after an ack
// timeout, and the receiver deduplicates by sequence number and
// acknowledges on consumption. Acks travel out of band (the control
// plane is reliable; only the data plane is faulty). Delivery is
// exactly-once in order, so the collectives above are value-identical
// to a fault-free run — faults cost time and traffic, never bits.

// Link identifies one directed learner-to-learner link by physical rank.
type Link struct{ From, To int }

// Burst is a transient outage on one directed link: the first delivery
// attempt of every message with sequence number in [Start, Start+N) is
// dropped. Retransmissions pass, so the retry machinery recovers and
// the outage is visible as a retry burst in Stats and the trace.
type Burst struct {
	From, To int
	Start, N int64
}

// FaultPlan configures deterministic fault injection for one run. The
// zero value injects nothing; fields compose freely.
type FaultPlan struct {
	// Seed keys every stochastic decision. Two runs with equal plans see
	// the identical fault schedule.
	Seed int64

	// Drop is the per-delivery-attempt probability that a data message
	// is lost on the wire (all links). Retransmissions draw fresh
	// decisions, so a message survives with probability 1-Drop^attempts.
	Drop float64

	// Bursts are scheduled transient outages (see Burst).
	Bursts []Burst

	// DelayMean/DelayJitter add extra simulated seconds of in-network
	// latency to every delivered message: mean ± uniform jitter, drawn
	// deterministically per (link, seq). Ignored without a simulation.
	DelayMean   float64
	DelayJitter float64

	// Slow maps a physical rank to a compute slowdown factor k ≥ 1: the
	// learner's simulated minibatch time is multiplied by k and the
	// training loop sleeps (k-1)·SlowSleep of real time per minibatch so
	// straggling is real, not only simulated.
	Slow map[int]float64

	// CrashAt maps a physical rank to the aggregation boundary at which
	// it dies: the rank participates in aggregations 0..b-1 and then
	// fails silently (fail-stop — it simply never posts the boundary-b
	// heartbeat). Survivors detect the silence by timeout and evict it.
	CrashAt map[int]int

	// RetryTimeout is how long a link daemon waits for an ack before
	// retransmitting (default 2ms).
	RetryTimeout time.Duration
	// MaxRetries bounds retransmissions per message; exhausting it
	// declares the link dead and panics the daemon — with the membership
	// protocol ensuring no one transfers to a crashed rank, exhaustion
	// only ever means a pathological drop schedule (default 25).
	MaxRetries int

	// EvictAfter is the membership failure detector's timeout: a rank
	// that has not posted a sync-point heartbeat this long after a peer
	// began waiting is evicted. It must comfortably exceed the worst
	// straggler lag per boundary or slow-but-alive ranks get fenced
	// (default 250ms).
	EvictAfter time.Duration

	// SimEvictSecs is the simulated detection latency charged to every
	// survivor's clock when an eviction happens at a sync point — the
	// simulated analogue of EvictAfter (default 0.25s).
	SimEvictSecs float64

	// SlowSleep is the real-time unit of straggling: a rank slowed ×k
	// sleeps (k-1)·SlowSleep per minibatch (default 100µs).
	SlowSleep time.Duration
}

// Defaults for the zero-valued protocol knobs.
const (
	defaultRetryTimeout = 2 * time.Millisecond
	defaultMaxRetries   = 25
	defaultEvictAfter   = 250 * time.Millisecond
	defaultSimEvict     = 0.25
	defaultSlowSleep    = 100 * time.Microsecond
)

func (p *FaultPlan) retryTimeout() time.Duration {
	if p.RetryTimeout > 0 {
		return p.RetryTimeout
	}
	return defaultRetryTimeout
}

func (p *FaultPlan) maxRetries() int {
	if p.MaxRetries > 0 {
		return p.MaxRetries
	}
	return defaultMaxRetries
}

func (p *FaultPlan) evictAfter() time.Duration {
	if p.EvictAfter > 0 {
		return p.EvictAfter
	}
	return defaultEvictAfter
}

func (p *FaultPlan) simEvictSecs() float64 {
	if p.SimEvictSecs > 0 {
		return p.SimEvictSecs
	}
	return defaultSimEvict
}

// SlowFactor returns the compute slowdown for a physical rank (1 when
// the rank is not slowed). Nil-safe.
func (p *FaultPlan) SlowFactor(rank int) float64 {
	if p == nil || p.Slow == nil {
		return 1
	}
	if k, ok := p.Slow[rank]; ok && k > 1 {
		return k
	}
	return 1
}

// SlowSleepFor returns the real sleep a slowed rank owes per minibatch.
func (p *FaultPlan) SlowSleepFor(rank int) time.Duration {
	k := p.SlowFactor(rank)
	if k <= 1 {
		return 0
	}
	unit := p.SlowSleep
	if unit <= 0 {
		unit = defaultSlowSleep
	}
	return time.Duration(float64(unit) * (k - 1))
}

// CrashBoundary returns the aggregation boundary at which the rank is
// scheduled to crash, or -1. Nil-safe.
func (p *FaultPlan) CrashBoundary(rank int) int {
	if p == nil || p.CrashAt == nil {
		return -1
	}
	if b, ok := p.CrashAt[rank]; ok {
		return b
	}
	return -1
}

// linkFaultsActive reports whether the plan perturbs the data plane at
// all — only then does a group route transfers through link daemons.
func (p *FaultPlan) linkFaultsActive() bool {
	return p != nil && (p.Drop > 0 || len(p.Bursts) > 0 || p.DelayMean > 0 || p.DelayJitter > 0)
}

// ParseFaultPlan parses the compact comma-separated spec the -faults
// flag and the SASGD_FAULTS environment variable carry:
//
//	seed=N            decision seed (default 1)
//	drop=F            per-attempt drop probability on every link
//	delay=M[~J]       extra simulated seconds per message, mean M ± J
//	slow=R:K          slow rank R by factor K (repeatable)
//	crash=R@B         crash rank R at aggregation boundary B (repeatable)
//	burst=F>T@S+N     drop first attempts of seqs [S,S+N) on link F→T
//	timeout=DUR       ack timeout before retransmit (Go duration)
//	retries=N         max retransmissions per message
//	evict=DUR         membership failure-detector timeout (Go duration)
//
// Example: "seed=7,drop=0.05,slow=3:4,crash=5@8".
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	plan := &FaultPlan{Seed: 1}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("comm: fault clause %q: want key=value", clause)
		}
		var err error
		switch key {
		case "seed":
			plan.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			plan.Drop, err = strconv.ParseFloat(val, 64)
			if err == nil && (plan.Drop < 0 || plan.Drop >= 1) {
				err = fmt.Errorf("drop probability %g outside [0,1)", plan.Drop)
			}
		case "delay":
			mean, jitter, hasJ := strings.Cut(val, "~")
			plan.DelayMean, err = strconv.ParseFloat(mean, 64)
			if err == nil && hasJ {
				plan.DelayJitter, err = strconv.ParseFloat(jitter, 64)
			}
		case "slow":
			r, k, okc := strings.Cut(val, ":")
			if !okc {
				err = fmt.Errorf("want slow=RANK:FACTOR")
				break
			}
			var rank int
			var factor float64
			if rank, err = strconv.Atoi(r); err != nil {
				break
			}
			if factor, err = strconv.ParseFloat(k, 64); err != nil {
				break
			}
			if plan.Slow == nil {
				plan.Slow = map[int]float64{}
			}
			plan.Slow[rank] = factor
		case "crash":
			r, b, okc := strings.Cut(val, "@")
			if !okc {
				err = fmt.Errorf("want crash=RANK@BOUNDARY")
				break
			}
			var rank, boundary int
			if rank, err = strconv.Atoi(r); err != nil {
				break
			}
			if boundary, err = strconv.Atoi(b); err != nil {
				break
			}
			if plan.CrashAt == nil {
				plan.CrashAt = map[int]int{}
			}
			plan.CrashAt[rank] = boundary
		case "burst":
			linkPart, seqPart, okc := strings.Cut(val, "@")
			if !okc {
				err = fmt.Errorf("want burst=FROM>TO@START+N")
				break
			}
			f, t, okl := strings.Cut(linkPart, ">")
			s, n, oks := strings.Cut(seqPart, "+")
			if !okl || !oks {
				err = fmt.Errorf("want burst=FROM>TO@START+N")
				break
			}
			var b Burst
			if b.From, err = strconv.Atoi(f); err != nil {
				break
			}
			if b.To, err = strconv.Atoi(t); err != nil {
				break
			}
			if b.Start, err = strconv.ParseInt(s, 10, 64); err != nil {
				break
			}
			if b.N, err = strconv.ParseInt(n, 10, 64); err != nil {
				break
			}
			plan.Bursts = append(plan.Bursts, b)
		case "timeout":
			plan.RetryTimeout, err = time.ParseDuration(val)
		case "retries":
			plan.MaxRetries, err = strconv.Atoi(val)
		case "evict":
			plan.EvictAfter, err = time.ParseDuration(val)
		default:
			err = fmt.Errorf("unknown fault key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("comm: fault clause %q: %v", clause, err)
		}
	}
	return plan, nil
}

// String renders the plan back into the spec format ParseFaultPlan
// accepts (stable clause order, for logs and round-trip tests).
func (p *FaultPlan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	if p.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", p.Drop))
	}
	if p.DelayMean > 0 || p.DelayJitter > 0 {
		parts = append(parts, fmt.Sprintf("delay=%g~%g", p.DelayMean, p.DelayJitter))
	}
	for _, r := range sortedKeys(p.Slow) {
		parts = append(parts, fmt.Sprintf("slow=%d:%g", r, p.Slow[r]))
	}
	for _, r := range sortedKeys(p.CrashAt) {
		parts = append(parts, fmt.Sprintf("crash=%d@%d", r, p.CrashAt[r]))
	}
	for _, b := range p.Bursts {
		parts = append(parts, fmt.Sprintf("burst=%d>%d@%d+%d", b.From, b.To, b.Start, b.N))
	}
	if p.RetryTimeout > 0 {
		parts = append(parts, fmt.Sprintf("timeout=%s", p.RetryTimeout))
	}
	if p.MaxRetries > 0 {
		parts = append(parts, fmt.Sprintf("retries=%d", p.MaxRetries))
	}
	if p.EvictAfter > 0 {
		parts = append(parts, fmt.Sprintf("evict=%s", p.EvictAfter))
	}
	return strings.Join(parts, ",")
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// splitmix64 is the decision hash's mixer (Steele et al.); full-period,
// well-distributed, and cheap.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decision salts, keeping the drop and delay streams independent.
const (
	saltDrop  = 0x6472
	saltDelay = 0x646c
)

// unitHash maps (seed, link, seq, attempt, salt) to a uniform value in
// [0,1). Pure — the heart of the plan's schedule-independence.
func unitHash(seed int64, from, to int, seq int64, attempt int, salt uint64) float64 {
	h := splitmix64(uint64(seed) ^ salt)
	h = splitmix64(h ^ uint64(from)<<32 ^ uint64(to))
	h = splitmix64(h ^ uint64(seq)<<8 ^ uint64(attempt))
	return float64(h>>11) / float64(1<<53)
}

// faultFabric is the shared, physical-rank-indexed state of a faulty
// run: per-link sequence numbers and dedup cursors, the out-of-band ack
// channels, and the fault counters. It outlives any one Group — when
// the membership layer re-forms a smaller group after an eviction, the
// new group attaches to the same fabric, so sequence continuity,
// counters, and trace tracks span the whole run.
type faultFabric struct {
	plan *FaultPlan
	p    int // physical rank count

	seq    []int64      // [from*p+to] next sequence to assign (link daemon only)
	expect []int64      // [from*p+to] next sequence to accept (receiver only)
	acks   []chan int64 // [from*p+to] receiver → daemon ack stream

	drops    atomic.Int64
	retries  atomic.Int64
	timeouts atomic.Int64
	evicts   atomic.Int64
	reforms  atomic.Int64
	crashes  atomic.Int64

	tracer *obs.Tracer
	// linkTracks are the per-link fabric trace tracks, created lazily by
	// the link's daemon on its first fault event.
	ltMu       sync.Mutex
	linkTracks map[Link]*obs.Track
}

// newFaultFabric builds the shared fabric state for p physical ranks.
func newFaultFabric(p int, plan *FaultPlan, tracer *obs.Tracer) *faultFabric {
	f := &faultFabric{
		plan:   plan,
		p:      p,
		seq:    make([]int64, p*p),
		expect: make([]int64, p*p),
		acks:   make([]chan int64, p*p),
		tracer: tracer,
	}
	for i := range f.acks {
		f.acks[i] = make(chan int64, 4*mailboxCap)
	}
	return f
}

func (f *faultFabric) linkIdx(from, to int) int { return from*f.p + to }

// dropAttempt decides deterministically whether delivery attempt
// `attempt` of message `seq` on the physical link from→to is lost.
func (f *faultFabric) dropAttempt(from, to int, seq int64, attempt int) bool {
	p := f.plan
	if attempt == 0 {
		for _, b := range p.Bursts {
			if b.From == from && b.To == to && seq >= b.Start && seq < b.Start+b.N {
				return true
			}
		}
	}
	if p.Drop <= 0 {
		return false
	}
	return unitHash(p.Seed, from, to, seq, attempt, saltDrop) < p.Drop
}

// delayFor draws the message's deterministic extra in-network latency
// in simulated seconds.
func (f *faultFabric) delayFor(from, to int, seq int64) float64 {
	p := f.plan
	if p.DelayMean <= 0 && p.DelayJitter <= 0 {
		return 0
	}
	d := p.DelayMean
	if p.DelayJitter > 0 {
		d += (unitHash(p.Seed, from, to, seq, 0, saltDelay)*2 - 1) * p.DelayJitter
	}
	if d < 0 {
		d = 0
	}
	return d
}

// linkTrack returns (lazily creating) the link's fabric trace track.
// Nil without a tracer.
func (f *faultFabric) linkTrack(from, to int) *obs.Track {
	if f.tracer == nil {
		return nil
	}
	f.ltMu.Lock()
	defer f.ltMu.Unlock()
	if f.linkTracks == nil {
		f.linkTracks = map[Link]*obs.Track{}
	}
	l := Link{from, to}
	t, ok := f.linkTracks[l]
	if !ok {
		t = f.tracer.FabricTrack(fmt.Sprintf("link %d→%d", from, to), 100+f.linkIdx(from, to))
		f.linkTracks[l] = t
	}
	return t
}

// faultCounts snapshots the fabric's counters into a FaultStats.
func (f *faultFabric) faultCounts() FaultStats {
	return FaultStats{
		Drops:     f.drops.Load(),
		Retries:   f.retries.Load(),
		Timeouts:  f.timeouts.Load(),
		Evictions: f.evicts.Load(),
		Reforms:   f.reforms.Load(),
		Crashes:   f.crashes.Load(),
	}
}

// xfer is one queued transfer awaiting the link daemon.
type xfer struct {
	m     Frame
	ready float64
}

// linkDaemon runs one directed link's acknowledged stop-and-wait
// protocol: it owns the link's sequence counter, performs the
// drop-aware delivery attempts, and retransmits on ack timeout. One
// daemon per (group, directed link), spawned lazily on first use.
type linkDaemon struct {
	g        *Group
	from, to int // virtual ranks within g
	pf, pt   int // physical ranks (fabric index space)
	q        chan xfer
}

// run drains the daemon's queue. Each message: assign the link's next
// sequence number, then attempt delivery until acknowledged. Every
// attempt is charged to the sender's traffic counters (dropped packets
// consume wire bandwidth too); retransmissions beyond MaxRetries panic
// — see FaultPlan.MaxRetries.
func (d *linkDaemon) run() {
	f := d.g.fab
	done := d.g.done
	li := f.linkIdx(d.pf, d.pt)
	timeout := f.plan.retryTimeout()
	maxRetries := f.plan.maxRetries()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var x xfer
		select {
		case x = <-d.q:
		case <-done:
			// Group closed: queued transfers are dropped per the Close
			// contract.
			return
		}
		seq := f.seq[li]
		f.seq[li] = seq + 1
		delay := f.delayFor(d.pf, d.pt, seq)
		// Stage the payload once, before the first delivery attempt. The
		// sender's hand-off ends when the receiver consumes the first
		// delivered copy — the sender may legally overwrite its buffer
		// while a spurious retransmission is still pending — so no
		// retransmission may read the original. Pool-owned payloads are
		// already exclusive wire copies and become the staging buffer
		// directly; sender-owned slices are copied exactly once, which is
		// safe because anything that lets the sender overwrite them
		// happens-after the first delivery, which happens-after this copy.
		n := len(x.m.Data)
		stage := x.m.pb
		if stage == nil {
			stage = d.g.acquire(n)
			copy(stage.data, x.m.Data)
		}
		acked := false
		for attempt := 0; !acked; attempt++ {
			if attempt > maxRetries {
				panic(fmt.Sprintf("comm: link %d→%d dead: message seq %d lost after %d retries",
					d.pf, d.pt, seq, maxRetries))
			}
			if f.dropAttempt(d.pf, d.pt, seq, attempt) {
				f.drops.Add(1)
				d.g.charge(d.from, d.to, n)
				if tk := f.linkTrack(d.pf, d.pt); tk != nil {
					now := tk.Now()
					tk.Span(obs.PhaseDrop, int32(seq), now, now)
				}
			} else {
				// Every attempt ships its own pooled copy of the staging
				// buffer: the consumed copy is released by the collective,
				// duplicate copies by the receiver's dedup path — distinct
				// buffers, so no double-release and no aliasing.
				pb := d.g.acquire(n)
				copy(pb.data, stage.data[:n])
				d.g.deliver(d.from, d.to, Frame{Data: pb.data, pb: pb, Seq: seq + 1}, x.ready, delay)
			}
			// Await the ack (or a stale duplicate ack from an earlier
			// spurious retransmission, which is drained and ignored).
			sent := time.Now()
			waitStart := obs.Stamp(0)
			if tk := f.linkTrack(d.pf, d.pt); tk != nil {
				waitStart = tk.Now()
			}
			deadline := false
			timer.Reset(timeout)
			for !acked && !deadline {
				select {
				case s := <-f.acks[li]:
					if s >= seq {
						acked = true
					}
				case <-timer.C:
					deadline = true
				case <-done:
					// Group closed mid-delivery: abandon the transfer
					// (the receiver is gone) and recycle the staging
					// buffer.
					d.g.releaseMsg(Frame{pb: stage})
					return
				}
			}
			if acked {
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				break
			}
			f.timeouts.Add(1)
			f.retries.Add(1)
			if tk := f.linkTrack(d.pf, d.pt); tk != nil {
				tk.Span(obs.PhaseRetry, int32(seq), waitStart, waitStart+obs.Stamp(time.Since(sent)))
			}
		}
		// The staging buffer (which is the original payload when that was
		// pool-owned) is spent: every mailbox insertion was a fresh copy.
		d.g.releaseMsg(Frame{pb: stage})
	}
}
