package comm

import (
	"sync"
	"testing"
	"time"
)

// lockedClock is a mutex-guarded simulated clock: the membership ledger
// reads every rank's clock from whichever goroutine detects completion,
// so resilient tests need cross-goroutine-safe clocks (netsim's real
// clocks are locked the same way).
type lockedClock struct {
	mu  sync.Mutex
	now float64
}

func (c *lockedClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *lockedClock) Advance(d float64) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func (c *lockedClock) Sync(t float64) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// runResilient drives p learner goroutines against a ledger; fn returns
// when its learner is done (crashed learners return early).
func runResilient(p int, fn func(phys int)) {
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(r)
		}(r)
	}
	wg.Wait()
}

// TestEvictionAndReform: a rank that goes silent is evicted, the
// survivors re-form, and collectives on the new view produce the
// survivor-only sums.
func TestEvictionAndReform(t *testing.T) {
	const p = 3
	plan := &FaultPlan{Seed: 1, EvictAfter: 40 * time.Millisecond}
	r := NewResilient(p, plan, nil, nil, nil)
	defer r.Close()

	results := make([][]float64, p)
	oks := make([]bool, p)
	runResilient(p, func(phys int) {
		if phys == 2 {
			r.Crash(phys) // silent fail-stop before sync 0
			return
		}
		v, ok := r.Await(phys, 0)
		oks[phys] = ok
		if !ok {
			return
		}
		buf := []float64{float64(phys + 1), float64(10 * (phys + 1))}
		v.G.AllreduceTree(v.RankOf(phys), buf)
		results[phys] = buf
	})

	if !oks[0] || !oks[1] {
		t.Fatalf("survivors not ok: %v", oks)
	}
	want := []float64{3, 30} // ranks 0 and 1 only
	for _, phys := range []int{0, 1} {
		for i := range want {
			if results[phys][i] != want[i] {
				t.Errorf("phys %d sum[%d] = %g, want %g", phys, i, results[phys][i], want[i])
			}
		}
	}
	st := r.Stats()
	if st.Faults.Crashes != 1 || st.Faults.Evictions != 1 || st.Faults.Reforms != 1 {
		t.Errorf("counters = %+v, want 1 crash / 1 eviction / 1 re-form", st.Faults)
	}
	evs := r.Evictions()
	if len(evs) != 1 || evs[0].Phys != 2 || evs[0].SyncPt != 0 {
		t.Errorf("evictions = %+v, want phys 2 at sync 0", evs)
	}
}

// TestDeadRootReform: losing physical rank 0 — the root of every tree
// collective — must re-root onto the lowest survivor.
func TestDeadRootReform(t *testing.T) {
	const p = 4
	plan := &FaultPlan{Seed: 1, EvictAfter: 40 * time.Millisecond}
	r := NewResilient(p, plan, nil, nil, nil)
	defer r.Close()

	var mu sync.Mutex
	views := map[int]View{}
	runResilient(p, func(phys int) {
		if phys == 0 {
			r.Crash(phys)
			return
		}
		v, ok := r.Await(phys, 0)
		if !ok {
			t.Errorf("survivor %d evicted", phys)
			return
		}
		buf := []float64{float64(phys)}
		v.G.AllreduceTree(v.RankOf(phys), buf)
		if buf[0] != 6 { // 1+2+3
			t.Errorf("phys %d sum = %g, want 6", phys, buf[0])
		}
		mu.Lock()
		views[phys] = v
		mu.Unlock()
	})

	for phys, v := range views {
		if v.Version != 1 || v.Size() != 3 {
			t.Errorf("phys %d view = version %d size %d, want version 1 size 3", phys, v.Version, v.Size())
		}
		if v.Phys[0] != 1 {
			t.Errorf("new virtual root is phys %d, want 1", v.Phys[0])
		}
		if got := v.RankOf(phys); v.Phys[got] != phys {
			t.Errorf("RankOf(%d) = %d maps back to %d", phys, got, v.Phys[got])
		}
	}
}

// TestFencedStragglerSeesEviction: a live rank that lags past EvictAfter
// is fenced; its next Await must report the eviction so it stops
// participating.
func TestFencedStragglerSeesEviction(t *testing.T) {
	const p = 2
	plan := &FaultPlan{Seed: 1, EvictAfter: 20 * time.Millisecond}
	r := NewResilient(p, plan, nil, nil, nil)
	defer r.Close()

	var lateOK, fastOK bool
	runResilient(p, func(phys int) {
		if phys == 1 {
			time.Sleep(120 * time.Millisecond) // lag far past EvictAfter
			_, lateOK = r.Await(phys, 0)
			return
		}
		_, fastOK = r.Await(phys, 0)
	})
	if !fastOK {
		t.Error("fast rank should survive")
	}
	if lateOK {
		t.Error("fenced straggler's Await returned ok=true")
	}
}

// TestAwaitAlignsClocks: Await is a barrier for simulated time — every
// survivor leaves with the bulk-synchronous max, and an eviction charges
// the detection penalty.
func TestAwaitAlignsClocks(t *testing.T) {
	const p = 3
	plan := &FaultPlan{Seed: 1, EvictAfter: 30 * time.Millisecond, SimEvictSecs: 2.5}
	clocks := make([]Clock, p)
	for i := range clocks {
		clocks[i] = &lockedClock{}
	}
	r := NewResilient(p, plan, clocks, FreeCost{}, nil)
	defer r.Close()

	runResilient(p, func(phys int) {
		if phys == 2 {
			r.Crash(phys)
			return
		}
		clocks[phys].Advance(float64(10 * (phys + 1))) // 10s and 20s of local work
		if _, ok := r.Await(phys, 0); !ok {
			t.Errorf("survivor %d evicted", phys)
		}
	})

	// Max survivor clock 20s + 2.5s eviction penalty.
	for _, phys := range []int{0, 1} {
		if got := clocks[phys].Now(); got != 22.5 {
			t.Errorf("clock %d = %g, want 22.5 (max 20 + evict penalty 2.5)", phys, got)
		}
	}
}

// TestResilientWithLinkFaults: membership re-formation and the
// acknowledged-delivery link protocol compose — survivors complete a
// dropped-message collective on the re-formed group.
func TestResilientWithLinkFaults(t *testing.T) {
	const p = 4
	plan := &FaultPlan{
		Seed:         9,
		Drop:         0.2,
		RetryTimeout: 15 * time.Millisecond,
		EvictAfter:   60 * time.Millisecond,
	}
	r := NewResilient(p, plan, nil, nil, nil)
	defer r.Close()

	runResilient(p, func(phys int) {
		if phys == 3 {
			r.Crash(phys)
			return
		}
		v, ok := r.Await(phys, 0)
		if !ok {
			t.Errorf("survivor %d evicted", phys)
			return
		}
		buf := make([]float64, 29)
		for i := range buf {
			buf[i] = float64(phys)
		}
		v.G.AllreduceTree(v.RankOf(phys), buf)
		for i := range buf {
			if buf[i] != 3 { // 0+1+2
				t.Errorf("phys %d [%d] = %g, want 3", phys, i, buf[i])
				return
			}
		}
		if _, ok := r.Await(phys, 1); !ok {
			t.Errorf("survivor %d evicted at sync 1", phys)
		}
	})

	st := r.Stats()
	if st.Faults.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Faults.Evictions)
	}
	if st.Words == 0 {
		t.Error("merged stats lost the re-formed group's traffic")
	}
}
