package comm

import (
	"fmt"

	"sasgd/internal/parallel"
)

// Sparse aggregation support: SASGD's aggregation interval makes
// communication sparse in *time*; the natural next step (and a standard
// extension in later allreduce-based training systems) is to also make
// each aggregation sparse in *space* by shipping only the k largest-
// magnitude gradient entries. SparseVec is the wire format and
// AllreduceSparseTree the collective; internal/core adds the error-
// feedback residual that makes the compression safe for convergence.

// SparseVec is a sorted-index sparse vector: Idx is strictly increasing
// and Val[i] belongs to coordinate Idx[i].
type SparseVec struct {
	Idx []int
	Val []float64
}

// NNZ returns the number of stored entries.
func (s SparseVec) NNZ() int { return len(s.Idx) }

// Words returns the number of float64-equivalent words the vector
// occupies on the wire (one word per value plus one per index, the
// accounting the cost model charges).
func (s SparseVec) Words() int { return 2 * len(s.Idx) }

// TopK extracts the k largest-magnitude entries of dense into a
// SparseVec (all entries if k >= len(dense); k <= 0 selects none).
// Ties are broken toward lower indices so the result is deterministic —
// the same entries a full (magnitude descending, index ascending) sort
// would keep. Selection is O(n) expected (pooled threshold quickselect,
// see compress.go); the only allocations are the result slices, and the
// compression engine's codecs avoid even those by selecting into their
// own scratch.
func TopK(dense []float64, k int) SparseVec {
	if k <= 0 {
		return SparseVec{}
	}
	if k > len(dense) {
		k = len(dense)
	}
	s := selPool.Get().(*selector)
	idx := s.pick(dense, k, make([]int, 0, k))
	selPool.Put(s)
	out := SparseVec{Idx: idx, Val: make([]float64, len(idx))}
	for i, j := range idx {
		out.Val[i] = dense[j]
	}
	return out
}

// AddTo accumulates the sparse vector into dense. Idx is strictly
// increasing, so shards of the index list scatter into disjoint dense
// coordinates and the parallel split is race-free and bitwise identical
// to the serial loop at every worker count.
func (s SparseVec) AddTo(dense []float64) {
	if parallel.Shards(len(s.Idx), reduceGrain) <= 1 {
		for i := range s.Idx {
			dense[s.Idx[i]] += s.Val[i]
		}
		return
	}
	parallel.For(len(s.Idx), reduceGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dense[s.Idx[i]] += s.Val[i]
		}
	})
}

// merge returns the coordinate-wise sum of two sorted sparse vectors.
func merge(a, b SparseVec) SparseVec {
	out := SparseVec{
		Idx: make([]int, 0, len(a.Idx)+len(b.Idx)),
		Val: make([]float64, 0, len(a.Idx)+len(b.Idx)),
	}
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			out.Idx = append(out.Idx, a.Idx[i])
			out.Val = append(out.Val, a.Val[i])
			i++
		case a.Idx[i] > b.Idx[j]:
			out.Idx = append(out.Idx, b.Idx[j])
			out.Val = append(out.Val, b.Val[j])
			j++
		default:
			out.Idx = append(out.Idx, a.Idx[i])
			out.Val = append(out.Val, a.Val[i]+b.Val[j])
			i++
			j++
		}
	}
	out.Idx = append(out.Idx, a.Idx[i:]...)
	out.Val = append(out.Val, a.Val[i:]...)
	out.Idx = append(out.Idx, b.Idx[j:]...)
	out.Val = append(out.Val, b.Val[j:]...)
	return out
}

// encode flattens a sparse vector into one []float64 message (indices
// stored as floats — exact for indices below 2^53, far beyond any model
// size here) so it travels over the group's existing typed channels and
// is charged by the cost model at its true wire size.
func (s SparseVec) encode() []float64 {
	buf := make([]float64, 0, 2*len(s.Idx))
	for i := range s.Idx {
		buf = append(buf, float64(s.Idx[i]), s.Val[i])
	}
	return buf
}

func decodeSparse(buf []float64) SparseVec {
	if len(buf)%2 != 0 {
		panic(fmt.Sprintf("comm: sparse message has odd length %d", len(buf)))
	}
	n := len(buf) / 2
	out := SparseVec{Idx: make([]int, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		out.Idx[i] = int(buf[2*i])
		out.Val[i] = buf[2*i+1]
	}
	return out
}

// AllreduceSparseTree sums each learner's sparse contribution across the
// group with a binomial tree and returns the global sum (identical on
// every learner). Message sizes grow toward the root only where supports
// differ, so the wire cost is between 2k and 2kp words — the compression
// the time model rewards.
func (g *Group) AllreduceSparseTree(rank int, contrib SparseVec) SparseVec {
	g.checkRank(rank)
	g.setAlgo(rank, algoSparse)
	acc := contrib
	// Reduce to rank 0.
	for step := 1; step < g.p; step <<= 1 {
		if rank%(2*step) != 0 {
			// encode ships index+value pairs, so the message length — and
			// the words charged — is exactly acc.Words(): the sparse paths
			// are accounted by the same len(payload) rule as the dense ones.
			g.sendMsg(rank, rank-step, Frame{Data: acc.encode()})
			break
		}
		peer := rank + step
		if peer < g.p {
			acc = merge(acc, decodeSparse(g.Recv(rank, peer)))
		}
	}
	// Broadcast the merged result down the same tree.
	top := 1
	for top < g.p {
		top <<= 1
	}
	for step := top >> 1; step >= 1; step >>= 1 {
		switch {
		case rank%(2*step) == 0:
			peer := rank + step
			if peer < g.p {
				g.sendMsg(rank, peer, Frame{Data: acc.encode()})
			}
		case rank%(2*step) == step:
			acc = decodeSparse(g.Recv(rank, rank-step))
		}
	}
	return acc
}
