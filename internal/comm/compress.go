package comm

import (
	"fmt"
	"math"
	"sync"

	"sasgd/internal/obs"
)

// Gradient-compression engine. SASGD's aggregation interval makes
// communication sparse in *time*; the codecs here make each aggregation
// sparse (or narrow) in *space* as well. A Compressor owns one
// learner's codec state — selection scratch, encode buffers, capture
// statistics — and runs one bucket's complete compressed allreduce:
// fold the error-feedback residual, encode, run the codec's collective,
// and leave the dense global aggregate in the bucket. The engine plugs
// into BucketedAllreduce (BeginCompressed), so compression composes
// with backward-overlapped aggregation instead of forcing a serial
// fallback, and into the resilient path's synchronous drive, so
// compressed runs survive chaos scenarios.
//
// Error-feedback contract (Alistarh et al., "The Convergence of
// Sparsified Gradient Methods"; the param_state["memory"] pattern of
// SparsifiedSGD): on entry seg holds the interval's accumulated
// gradient for the bucket and res the residual memory — everything
// selection dropped in earlier intervals. The codec folds res into seg,
// transmits a compressed view of the folded value, and stores the
// untransmitted remainder back into res, so for every coordinate
//
//	transmitted + res_after == seg + res_before   (exactly)
//
// and no gradient mass is ever dropped permanently — coordinates too
// small to ship accumulate across intervals until they win selection.
// The conservation is pinned bitwise in compress_test.go.

// Compressor is one learner's instance of a gradient-compression codec.
// Instances carry reusable scratch and must not be shared across ranks;
// within a rank, calls must be serialized (the bucketed comm worker and
// the resilient path's learner loop both are).
type Compressor interface {
	// Name returns the codec's config name ("topk", "qint8").
	Name() string

	// Allreduce runs one bucket's compressed aggregation across the
	// group. seg is the bucket's slice of the accumulated gradient, res
	// the matching slice of the learner's error-feedback residual (see
	// the package comment for the contract); on return seg holds the
	// dense global compressed aggregate — identical on every rank — and
	// res the untransmitted remainder. ratio is the sparsity knob in
	// (0, 1] for codecs that have one (top-k fraction; ignored by
	// qint8). ready stamps the collective's first sends on a simulated
	// fabric (the layer's backward-completion time on the overlap path).
	// tk records the codec's encode work as a compress span with arg as
	// the span argument (the bucket index); nil-safe.
	//
	// Every rank of the group must call Allreduce with the same bucket
	// sequence, codec and ratio — the same discipline every collective
	// in this package requires.
	Allreduce(g *Group, rank int, seg, res []float64, ratio, ready float64, tk *obs.Track, arg int32)

	// TakeCapture returns and resets the squared norms of the
	// transmitted and untransmitted gradient parts accumulated over the
	// Allreduce calls since the last take — the adaptive-sparsity
	// controller's input signal.
	TakeCapture() (sent2, resid2 float64)

	// Totals returns the same two squared norms accumulated over the
	// codec's whole lifetime, never reset. TakeCapture consumes the
	// per-interval capture (the adaptive controller resets it every
	// boundary), so run-level telemetry — the captured-mass share on the
	// metrics fleet frame — reads this instead.
	Totals() (sent2, resid2 float64)
}

// NewCompressor returns a fresh per-learner codec instance for the
// given config name, or nil for "" / "none" (dense aggregation).
func NewCompressor(name string) Compressor {
	switch name {
	case "", "none":
		return nil
	case "topk":
		return &topkCompressor{}
	case "qint8":
		return &qint8Compressor{}
	}
	panic(fmt.Sprintf("comm: unknown compression codec %q (want topk or qint8)", name))
}

// SparsityK converts a top-k fraction into an entry count for an
// n-coordinate bucket: ⌈ratio·n⌉ clamped to [1, n]. Rounding up means
// "ship at least this fraction" — in particular ratio → 1 keeps every
// entry of every bucket, so near-lossless settings really are lossless.
// Every rank and every path (engine, legacy TopK callers, wire-volume
// pins) must use the same rounding, so it lives here.
func SparsityK(ratio float64, n int) int {
	k := int(math.Ceil(ratio * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// ---------------------------------------------------------------------
// Top-k selection core: pooled O(n)-expected threshold selection.

// selector holds the magnitude scratch of top-k selection. Zero value
// ready; the scratch grows to the largest bucket seen and is reused.
type selector struct {
	mag []float64
}

// pick appends the indices of the k largest-magnitude entries of dense
// to idx, in ascending index order, and returns the extended slice.
// Exactly k indices are appended (k must be in [1, len(dense)]), and
// ties on the threshold magnitude are broken toward lower indices — the
// same entries, in the same order, that a full (magnitude descending,
// index ascending) sort would keep, so results are deterministic. The
// cost is O(n) expected: one quickselect on a magnitude copy for the
// threshold plus two linear passes, no allocation once the scratch has
// warmed up.
func (s *selector) pick(dense []float64, k int, idx []int) []int {
	if k >= len(dense) {
		for i := range dense {
			idx = append(idx, i)
		}
		return idx
	}
	m := s.mag[:0]
	for _, v := range dense {
		m = append(m, math.Abs(v))
	}
	s.mag = m
	t := quickselectKthLargest(m, k)
	// Entries strictly above the threshold all belong to the top k; the
	// remaining quota is filled with threshold-magnitude entries in
	// ascending index order.
	above := 0
	for _, v := range dense {
		if math.Abs(v) > t {
			above++
		}
	}
	ties := k - above
	for i, v := range dense {
		mv := math.Abs(v)
		switch {
		case mv > t:
			idx = append(idx, i)
		case mv == t && ties > 0:
			ties--
			idx = append(idx, i)
		}
	}
	return idx
}

// quickselectKthLargest partially reorders a in place and returns its
// k-th largest element (1 ≤ k ≤ len(a)). Hoare partitioning with
// median-of-three pivots: O(n) expected with a deterministic schedule
// (no randomization, so every rank selecting over identical data does
// identical work and the selection threshold is reproducible).
func quickselectKthLargest(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	kk := k - 1 // target position in descending order
	for lo < hi {
		pivot := median3(a[lo], a[lo+(hi-lo)/2], a[hi])
		i, j := lo, hi
		for i <= j {
			for a[i] > pivot {
				i++
			}
			for a[j] < pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		// a[lo..j] ≥ pivot ≥ a[i..hi]; anything between equals pivot.
		switch {
		case kk <= j:
			hi = j
		case kk >= i:
			lo = i
		default:
			return a[kk]
		}
	}
	return a[lo]
}

// median3 returns the median of three values (the pivot rule).
func median3(a, b, c float64) float64 {
	if a < b {
		a, b = b, a
	}
	if b < c {
		b = c
	}
	if a < b {
		b = a
	}
	return b
}

// selPool backs the package-level TopK entry point so one-shot callers
// share warmed selection scratch.
var selPool = sync.Pool{New: func() interface{} { return new(selector) }}

// ---------------------------------------------------------------------
// topk codec: error-feedback top-k sparsification over a pair-encoded
// sparse binomial tree.

// topkCompressor is the error-feedback top-k codec. Wire format: flat
// (index, value) float64 pairs in ascending index order — 2k words for
// k entries, the same accounting SparseVec.Words uses, charged under
// the "sparse" traffic label. Messages grow toward the root only where
// supports differ; the root re-sparsifies the merged aggregate back to
// k entries before broadcast (folding the dropped remainder into its
// own residual, so conservation holds globally), which caps the
// broadcast at 2k words regardless of support overlap.
type topkCompressor struct {
	sel  selector
	idx  []int // selected coordinate scratch
	encA []float64
	encB []float64 // pair-list ping/pong merge scratch

	sent2, resid2       float64
	totSent2, totResid2 float64
}

func (c *topkCompressor) Name() string { return "topk" }

func (c *topkCompressor) TakeCapture() (sent2, resid2 float64) {
	sent2, resid2 = c.sent2, c.resid2
	c.sent2, c.resid2 = 0, 0
	return sent2, resid2
}

func (c *topkCompressor) Totals() (sent2, resid2 float64) {
	return c.totSent2, c.totResid2
}

func (c *topkCompressor) Allreduce(g *Group, rank int, seg, res []float64, ratio, ready float64, tk *obs.Track, arg int32) {
	g.checkRank(rank)
	if len(seg) != len(res) {
		panic(fmt.Sprintf("comm: topk bucket has %d gradient words but %d residual words", len(seg), len(res)))
	}
	if len(seg) == 0 {
		return
	}
	g.setAlgo(rank, algoSparse)
	cs := tk.Begin()
	// Fold the residual: every coordinate unsent in earlier intervals
	// competes for selection again with its full accumulated value.
	for i := range seg {
		seg[i] += res[i]
	}
	k := SparsityK(ratio, len(seg))
	c.idx = c.sel.pick(seg, k, c.idx[:0])
	// Encode the selection and split the folded gradient: transmitted
	// coordinates zero their residual (x − x == 0 exactly), unselected
	// ones keep their full folded value — the conservation invariant
	// selected + residual == folded gradient, bitwise.
	enc := c.encA[:0]
	var s2 float64
	for _, j := range c.idx {
		v := seg[j]
		enc = append(enc, float64(j), v)
		s2 += v * v
	}
	c.encA = enc
	copy(res, seg)
	for _, j := range c.idx {
		res[j] = 0
	}
	var r2 float64
	for _, v := range res {
		r2 += v * v
	}
	c.sent2 += s2
	c.resid2 += r2
	c.totSent2 += s2
	c.totResid2 += r2
	tk.EndArg(obs.PhaseCompress, arg, cs)
	sum := c.allreducePairs(g, rank, enc, k, res, ready)
	// Scatter the compressed global aggregate densely into seg; the
	// unselected coordinates of the aggregate are exactly zero.
	clear(seg)
	for i := 0; i < len(sum); i += 2 {
		seg[int(sum[i])] = sum[i+1]
	}
}

// allreducePairs reduces the rank's encoded pair list to rank 0 over a
// binomial tree (coordinate-wise sums, merged in fixed tree order, so
// values are bitwise deterministic), re-sparsifies the merged aggregate
// at the root, and broadcasts the result down the same tree. All
// payloads are pooled copies; acc ping-pongs between the codec's two
// scratch buffers, so steady state allocates nothing.
func (c *topkCompressor) allreducePairs(g *Group, rank int, acc []float64, k int, res []float64, ready float64) []float64 {
	cur, spare := acc, c.encB
	for step := 1; step < g.p; step <<= 1 {
		if rank%(2*step) != 0 {
			pb := g.acquire(len(cur))
			copy(pb.data, cur)
			g.sendMsgAt(rank, rank-step, Frame{Data: pb.data, pb: pb}, ready)
			break
		}
		if peer := rank + step; peer < g.p {
			in := g.recvMsg(rank, peer)
			if in.Arrive > ready {
				ready = in.Arrive
			}
			merged := mergePairs(spare[:0], cur, in.Data)
			g.releaseMsg(in)
			spare = cur
			cur = merged
		}
	}
	if rank == 0 && len(cur) > 2*k {
		// The union of the learners' supports outgrew k: keep the k
		// largest-magnitude aggregate entries and fold the dropped
		// remainder into the root's own residual, where it re-enters
		// selection next interval through rank 0's contribution. This
		// caps every broadcast message at 2k words and keeps global
		// conservation exact.
		cur = c.resparsify(cur, k, res)
	}
	top := 1
	for top < g.p {
		top <<= 1
	}
	for step := top >> 1; step >= 1; step >>= 1 {
		switch {
		case rank%(2*step) == 0:
			if peer := rank + step; peer < g.p {
				pb := g.acquire(len(cur))
				copy(pb.data, cur)
				g.sendMsgAt(rank, peer, Frame{Data: pb.data, pb: pb}, ready)
			}
		case rank%(2*step) == step:
			in := g.recvMsg(rank, rank-step)
			ready = in.Arrive
			cur = append(cur[:0], in.Data...)
			g.releaseMsg(in)
		}
	}
	c.encA, c.encB = cur, spare
	return cur
}

// mergePairs appends the coordinate-wise sum of two ascending pair
// lists to dst. The left operand is always the accumulated value and
// the right the incoming child's — the fixed association every rank's
// tree walk shares, which keeps merged values bitwise deterministic.
func mergePairs(dst, a, b []float64) []float64 {
	if len(a)%2 != 0 || len(b)%2 != 0 {
		panic(fmt.Sprintf("comm: sparse pair message has odd length %d/%d", len(a), len(b)))
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i], a[i+1])
			i += 2
		case a[i] > b[j]:
			dst = append(dst, b[j], b[j+1])
			j += 2
		default:
			dst = append(dst, a[i], a[i+1]+b[j+1])
			i += 2
			j += 2
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// resparsify keeps the k largest-magnitude pairs of acc (ties toward
// lower coordinates, matching pick's order) in place and folds every
// dropped pair's value into res at its coordinate. Only the root calls
// this, once per bucket.
func (c *topkCompressor) resparsify(acc []float64, k int, res []float64) []float64 {
	m := c.sel.mag[:0]
	for i := 1; i < len(acc); i += 2 {
		m = append(m, math.Abs(acc[i]))
	}
	c.sel.mag = m
	t := quickselectKthLargest(m, k)
	above := 0
	for i := 1; i < len(acc); i += 2 {
		if math.Abs(acc[i]) > t {
			above++
		}
	}
	ties := k - above
	w := 0
	for i := 0; i < len(acc); i += 2 {
		mv := math.Abs(acc[i+1])
		keep := mv > t
		if !keep && mv == t && ties > 0 {
			ties--
			keep = true
		}
		if keep {
			acc[w], acc[w+1] = acc[i], acc[i+1]
			w += 2
		} else {
			res[int(acc[i])] += acc[i+1]
		}
	}
	return acc[:w]
}
