package comm

import (
	"fmt"
	"sync"
)

// Frame is one point-to-point transfer between learners — the unit a
// Transport moves. Arrive is the simulated time at which the payload is
// fully received (0 when the group has no cost model). Seq is zero on
// the direct (fault-free) path; under an active fault plan the link
// daemons stamp each wire copy with the link's sequence number plus one,
// which the receiver uses to deduplicate spurious retransmissions (see
// faults.go). pb is non-nil when the payload is owned by the buffer
// pool, in which case the consumer must release it after reading the
// data — the receiving collective on a local backend, the serializer on
// a wire backend (which ships the bytes and recycles the buffer).
type Frame struct {
	Data   []float64
	Arrive float64
	Seq    int64
	pb     *poolBuf
}

// Transport is the wire fabric a Group is built over: reliable,
// per-directed-link FIFO delivery of frames between p ranks. Send
// enqueues a frame on the (from → to) link and may block for
// backpressure; every link must buffer at least mailboxCap frames, the
// budget the collectives' deadlock-freedom argument is sized against
// (see mailboxCap). Recv blocks until the next frame on the (from → to)
// link is available. Frames on one directed link arrive in send order;
// frames on different links may interleave arbitrarily.
//
// Everything above the transport is rank-space logic: the Group charges
// traffic statistics, stamps simulated arrival times, and runs the
// fault-plan link daemons (drops, delays, ack/retry) *before* handing a
// frame to Send, so FaultPlan routing and Stats accounting hold
// identically on every backend — the cross-transport equivalence suite
// pins this.
type Transport interface {
	// Size returns the number of ranks the transport connects.
	Size() int
	// Send delivers f on the directed (from → to) link, blocking while
	// the link's buffer is full. The payload is handed off: the sender
	// must not reuse f.Data until the consumer is done with it, and
	// pool-owned frames are released by the consumer.
	Send(from, to int, f Frame)
	// Recv returns the next frame on the directed (from → to) link,
	// blocking until one is available.
	Recv(to, from int) Frame
	// Close tears the fabric down. It must be idempotent and safe to
	// call concurrently with blocked Sends (which unblock and drop, per
	// the Group.Close contract that in-flight transfers are lost).
	Close() error
}

// allLocalTransport is implemented by transports that can report
// whether every rank is driven by this process. Groups use it to pick
// the in-process barrier (which also aligns simulated clocks) over the
// wire barrier; a transport that does not implement it is assumed
// multi-process.
type allLocalTransport interface{ AllLocal() bool }

// pooledTransport is implemented by transports that own a payload pool
// the groups built over them should share, so wire receive buffers
// recycle through the same size-classed pools the collectives draw
// from — without sharing, every remote receive would allocate (the
// transport's pool would drain while the group's pool filled).
type pooledTransport interface{ bufferPool() *bufPool }

// chanTransport is the default in-process backend: a matrix of buffered
// per-(sender, receiver) Go channels, giving MPI-like ordered
// point-to-point semantics with no serialization. It is the simulation
// and test fabric — all p ranks live in one process.
type chanTransport struct {
	p         int
	mail      [][]chan Frame // mail[to][from]
	done      chan struct{}  // closed by Close; unblocks senders parked on a full mailbox
	closeOnce sync.Once
}

func newChanTransport(p int) *chanTransport {
	t := &chanTransport{p: p, done: make(chan struct{})}
	t.mail = make([][]chan Frame, p)
	for to := range t.mail {
		t.mail[to] = make([]chan Frame, p)
		for from := range t.mail[to] {
			t.mail[to][from] = make(chan Frame, mailboxCap)
		}
	}
	return t
}

func (t *chanTransport) Size() int      { return t.p }
func (t *chanTransport) AllLocal() bool { return true }

func (t *chanTransport) Send(from, to int, f Frame) {
	select {
	case t.mail[to][from] <- f:
	case <-t.done:
		// Closing: the transfer is dropped, matching the documented
		// contract that frames in flight at Close are lost.
	}
}

func (t *chanTransport) Recv(to, from int) Frame { return <-t.mail[to][from] }

// Close unblocks any sender parked on a full mailbox. Idempotent and
// safe under concurrent calls.
func (t *chanTransport) Close() error {
	t.closeOnce.Do(func() { close(t.done) })
	return nil
}

// checkTransportRank panics when a transport rank is out of range.
func checkTransportRank(tr Transport, r int) {
	if r < 0 || r >= tr.Size() {
		panic(fmt.Sprintf("comm: transport rank %d out of range [0,%d)", r, tr.Size()))
	}
}
