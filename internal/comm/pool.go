package comm

import (
	"math/bits"
	"sync"
)

// Payload recycling. Every copy a collective puts on the wire is drawn
// from the pool and returned to it by the consumer once the payload has
// been used, so the steady-state allocation count of the dense
// collectives is zero: after a warmup collective or two the same few
// buffers circulate forever (pinned by the AllocsPerRun tests).
//
// The pool stores *poolBuf wrappers rather than raw slices because a
// pointer stored in an interface{} does not allocate, while a slice
// header does; the wrapper travels alongside the payload inside Frame
// so the consumer can hand the exact same object back with one
// pointer-typed Put. Buffers are segregated into power-of-two size
// classes (one sync.Pool per class): every wrapper in a class has
// exactly the class's capacity, so a pool serving mixed frame sizes
// — rhd's halving series, ring's m/p chunks, the chunked tree's short
// tail chunks — reaches zero steady-state allocations regardless of
// which goroutine happens to recycle which wrapper. A single mixed pool
// would instead keep regrowing small wrappers whenever scheduling
// shuffled them onto large requests.
//
// A bufPool is normally per-Group, but a wire transport that owns its
// own receive buffers (TCPTransport) exposes its pool for the groups
// built over it to adopt (pooledTransport): the transport's readers
// acquire, the receiving collectives release, and the serializer
// releases what the senders acquired — one circulation, no drain.
//
// sync.Pool is already safe for concurrent use, which makes the pool
// rank-safe: any learner goroutine may acquire or release from any rank.

// bufPool recycles wire payloads in power-of-two size classes.
type bufPool struct {
	classes [64]sync.Pool // *poolBuf, one pool per size class
}

// poolBuf is one recyclable wire payload; cap(data) is always exactly
// its size class's capacity.
type poolBuf struct {
	data []float64
}

// sizeClass returns the index of the smallest power-of-two class that
// holds n words.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// acquire returns a pooled buffer resliced to n words (allocating only
// when n's size class has no free wrapper — warmup).
func (p *bufPool) acquire(n int) *poolBuf {
	c := sizeClass(n)
	pb, _ := p.classes[c].Get().(*poolBuf)
	if pb == nil {
		pb = &poolBuf{data: make([]float64, 1<<c)}
	}
	pb.data = pb.data[:n]
	return pb
}

// release returns a buffer to its size class.
func (p *bufPool) release(pb *poolBuf) {
	p.classes[sizeClass(cap(pb.data))].Put(pb)
}

// acquire draws a transfer buffer from the group's (possibly
// transport-shared) pool.
func (g *Group) acquire(n int) *poolBuf { return g.pool.acquire(n) }

// releaseMsg returns a received frame's payload to the pool. Frames
// whose payload is owned by the sender (zero-copy subslice hand-offs,
// external Send callers) carry a nil pb and are left alone.
func (g *Group) releaseMsg(m Frame) {
	if m.pb != nil {
		g.pool.release(m.pb)
	}
}
