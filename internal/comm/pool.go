package comm

// Per-group payload recycling. Every copy a collective puts on the wire
// is drawn from the group's pool and returned to it by the receiver once
// the payload has been consumed, so the steady-state allocation count of
// the dense collectives is zero: after a warmup collective or two the
// same few buffers circulate forever (pinned by the AllocsPerRun tests).
//
// The pool stores *poolBuf wrappers rather than raw slices because a
// pointer stored in an interface{} does not allocate, while a slice
// header does; the wrapper travels alongside the payload inside message
// so the receiver can hand the exact same object back with one
// pointer-typed Put. Buffers only ever grow (a wrapper whose capacity is
// too small for a request is reallocated in place), so a group that
// serves mixed message sizes — rhd's halving series, ring's m/p chunks —
// converges on a stable set of max-sized buffers instead of thrashing.
//
// sync.Pool is already safe for concurrent use, which makes the pool
// rank-safe: any learner goroutine may acquire or release from any rank.

// poolBuf is one recyclable wire payload.
type poolBuf struct {
	data []float64
}

// acquire returns a pooled buffer resliced to n words (allocating only
// when the pool is empty or the recycled buffer is too small — warmup).
func (g *Group) acquire(n int) *poolBuf {
	pb, _ := g.pool.Get().(*poolBuf)
	if pb == nil {
		pb = &poolBuf{}
	}
	if cap(pb.data) < n {
		pb.data = make([]float64, n)
	}
	pb.data = pb.data[:n]
	return pb
}

// releaseMsg returns a received message's payload to the pool. Messages
// whose payload is owned by the sender (zero-copy subslice hand-offs,
// external Send callers) carry a nil pb and are left alone.
func (g *Group) releaseMsg(m message) {
	if m.pb != nil {
		g.pool.Put(m.pb)
	}
}
