package comm

import (
	"fmt"
	"math"

	"sasgd/internal/obs"
)

// qint8: int8 quantization with a shared per-bucket scale.
//
// Each bucket's aggregation runs in two phases. Phase 1 allreduces the
// bucket's absolute maximum over a binomial tree (one word per message)
// so every rank derives the identical scale s = gmax/127. Phase 2
// quantizes q_i = round(v_i/s) (math.Round — half away from zero,
// deterministic), reduces the INTEGER vectors over the same tree, and
// every rank decodes the aggregate as (Σ q)·s. Because the wire carries
// integers, partial sums are exact and order-independent: the qint8
// aggregate is bitwise identical for any reduction order, which is what
// makes the overlapped and serial compressed schedules trivially
// equivalent.
//
// Wire format: integers are packed into float64 words bit-for-bit
// (math.Float64bits; payloads are only ever copied in transit, never
// operated on, so arbitrary bit patterns survive). A leaf's values fit
// int8 — 8 lanes per word, ⌈n/8⌉ words, the 4× reduction (8× against
// the index+value sparse format) — while interior partial sums of up to
// maxQuantGroup leaves fit int16 — 4 lanes per word. The receiver knows
// the sender's subtree size from the tree step, so messages carry no
// header; the scale needs no transmission either, both sides having run
// phase 1.
//
// Error feedback: the residual keeps r_i = v_i − q_i·s. For q_i = 0 the
// subtraction is trivially exact; for |q_i| ≥ 1 rounding puts v_i/s in
// [q_i − ½, q_i + ½], so v_i lies within [a/2, 2a] of a = q_i·s and
// Sterbenz's lemma makes v_i − a exact — the transmitted value plus the
// residual reconstructs v_i bitwise (pinned in compress_test.go), so
// qint8 composes with error feedback as losslessly as top-k does.

// maxQuantGroup bounds the group size of the qint8 codec: interior
// partial sums reach |Σ q| ≤ 127·p, which must fit int16 (32767), so
// p ≤ 258; capped at the round 256.
const maxQuantGroup = 256

// qint8Compressor is the shared-scale int8 quantization codec. Traffic
// is charged under the "quant" label.
type qint8Compressor struct {
	q []int32 // own quantized contribution, then the integer aggregate

	sent2, resid2       float64
	totSent2, totResid2 float64
}

func (c *qint8Compressor) Name() string { return "qint8" }

func (c *qint8Compressor) TakeCapture() (sent2, resid2 float64) {
	sent2, resid2 = c.sent2, c.resid2
	c.sent2, c.resid2 = 0, 0
	return sent2, resid2
}

func (c *qint8Compressor) Totals() (sent2, resid2 float64) {
	return c.totSent2, c.totResid2
}

func (c *qint8Compressor) Allreduce(g *Group, rank int, seg, res []float64, ratio, ready float64, tk *obs.Track, arg int32) {
	g.checkRank(rank)
	if g.p > maxQuantGroup {
		panic(fmt.Sprintf("comm: qint8 supports at most %d learners (int16 partial sums), got %d", maxQuantGroup, g.p))
	}
	if len(seg) != len(res) {
		panic(fmt.Sprintf("comm: qint8 bucket has %d gradient words but %d residual words", len(seg), len(res)))
	}
	if len(seg) == 0 {
		return
	}
	g.setAlgo(rank, algoQuant)
	// Fold the residual, then agree on the scale of the folded values.
	local := 0.0
	for i := range seg {
		seg[i] += res[i]
		if a := math.Abs(seg[i]); a > local {
			local = a
		}
	}
	gmax, ready := g.allreduceMaxTree(rank, local, ready)
	if gmax == 0 || math.IsInf(gmax, 0) || math.IsNaN(gmax) {
		// Every rank's bucket is all-zero (or some rank's is non-finite,
		// where quantization is meaningless): the aggregate is zero and
		// the folded values stay in the residual. gmax is identical on
		// every rank, so the branch is collective-consistent.
		copy(res, seg)
		clear(seg)
		return
	}
	cs := tk.Begin()
	scale := gmax / 127
	if cap(c.q) < len(seg) {
		c.q = make([]int32, len(seg))
	}
	c.q = c.q[:len(seg)]
	for i, v := range seg {
		qv := int32(math.Round(v / scale))
		if qv > 127 {
			qv = 127
		} else if qv < -127 {
			qv = -127
		}
		c.q[i] = qv
		sent := float64(qv) * scale
		r := v - sent
		res[i] = r
		c.sent2 += sent * sent
		c.resid2 += r * r
		c.totSent2 += sent * sent
		c.totResid2 += r * r
	}
	tk.EndArg(obs.PhaseCompress, arg, cs)
	c.intTreeAllreduce(g, rank, ready)
	for i := range seg {
		seg[i] = float64(c.q[i]) * scale
	}
}

// allreduceMaxTree shares max(local) across the group over a binomial
// tree of one-word messages, returning the global maximum and the
// causal ready time after the exchange (arrival-joined, so phase 2's
// sends are stamped after the scale agreement they depend on).
func (g *Group) allreduceMaxTree(rank int, local, ready float64) (float64, float64) {
	acc := local
	for step := 1; step < g.p; step <<= 1 {
		if rank%(2*step) != 0 {
			pb := g.acquire(1)
			pb.data[0] = acc
			g.sendMsgAt(rank, rank-step, Frame{Data: pb.data, pb: pb}, ready)
			break
		}
		if peer := rank + step; peer < g.p {
			in := g.recvMsg(rank, peer)
			if in.Arrive > ready {
				ready = in.Arrive
			}
			if in.Data[0] > acc {
				acc = in.Data[0]
			}
			g.releaseMsg(in)
		}
	}
	top := 1
	for top < g.p {
		top <<= 1
	}
	for step := top >> 1; step >= 1; step >>= 1 {
		switch {
		case rank%(2*step) == 0:
			if peer := rank + step; peer < g.p {
				pb := g.acquire(1)
				pb.data[0] = acc
				g.sendMsgAt(rank, peer, Frame{Data: pb.data, pb: pb}, ready)
			}
		case rank%(2*step) == step:
			in := g.recvMsg(rank, rank-step)
			ready = in.Arrive
			acc = in.Data[0]
			g.releaseMsg(in)
		}
	}
	return acc, ready
}

// quantWords returns the packed message length in float64 words for n
// lanes from a sender whose reduce subtree spans the given number of
// leaves: int8 lanes (8 per word) for a single leaf, int16 lanes (4 per
// word) for any partial or full sum.
func quantWords(n, subtree int) int {
	if subtree == 1 {
		return (n + 7) / 8
	}
	return (n + 3) / 4
}

// intTreeAllreduce sums c.q across the group: binomial-tree reduce of
// the packed integer vectors to rank 0 and broadcast of the packed
// total back down. Integer addition is exact and associative, so the
// result is independent of every scheduling choice.
func (c *qint8Compressor) intTreeAllreduce(g *Group, rank int, ready float64) {
	n := len(c.q)
	for step := 1; step < g.p; step <<= 1 {
		if rank%(2*step) != 0 {
			sub := min(step, g.p-rank)
			pb := g.acquire(quantWords(n, sub))
			packInts(c.q, sub, pb.data)
			g.sendMsgAt(rank, rank-step, Frame{Data: pb.data, pb: pb}, ready)
			break
		}
		if peer := rank + step; peer < g.p {
			in := g.recvMsg(rank, peer)
			sub := min(step, g.p-peer)
			if len(in.Data) != quantWords(n, sub) {
				panic(fmt.Sprintf("comm: quantized message has %d words, want %d for %d lanes from a %d-leaf subtree",
					len(in.Data), quantWords(n, sub), n, sub))
			}
			if in.Arrive > ready {
				ready = in.Arrive
			}
			unpackAddInts(in.Data, sub, c.q)
			g.releaseMsg(in)
		}
	}
	top := 1
	for top < g.p {
		top <<= 1
	}
	for step := top >> 1; step >= 1; step >>= 1 {
		switch {
		case rank%(2*step) == 0:
			if peer := rank + step; peer < g.p {
				pb := g.acquire(quantWords(n, g.p))
				packInts(c.q, g.p, pb.data)
				g.sendMsgAt(rank, peer, Frame{Data: pb.data, pb: pb}, ready)
			}
		case rank%(2*step) == step:
			in := g.recvMsg(rank, rank-step)
			ready = in.Arrive
			unpackSetInts(in.Data, g.p, c.q)
			g.releaseMsg(in)
		}
	}
}

// packInts packs q into out at the subtree's lane width. out must be
// exactly quantWords(len(q), subtree) long.
func packInts(q []int32, subtree int, out []float64) {
	if subtree == 1 {
		for w := range out {
			var u uint64
			base := w * 8
			for l := 0; l < 8 && base+l < len(q); l++ {
				u |= uint64(uint8(int8(q[base+l]))) << (8 * l)
			}
			out[w] = math.Float64frombits(u)
		}
		return
	}
	for w := range out {
		var u uint64
		base := w * 4
		for l := 0; l < 4 && base+l < len(q); l++ {
			u |= uint64(uint16(int16(q[base+l]))) << (16 * l)
		}
		out[w] = math.Float64frombits(u)
	}
}

// unpackAddInts adds a packed message's lanes into q.
func unpackAddInts(in []float64, subtree int, q []int32) {
	if subtree == 1 {
		for w, f := range in {
			u := math.Float64bits(f)
			base := w * 8
			for l := 0; l < 8 && base+l < len(q); l++ {
				q[base+l] += int32(int8(uint8(u >> (8 * l))))
			}
		}
		return
	}
	for w, f := range in {
		u := math.Float64bits(f)
		base := w * 4
		for l := 0; l < 4 && base+l < len(q); l++ {
			q[base+l] += int32(int16(uint16(u >> (16 * l))))
		}
	}
}

// unpackSetInts overwrites q with a packed message's lanes (broadcast
// receive).
func unpackSetInts(in []float64, subtree int, q []int32) {
	if subtree == 1 {
		for w, f := range in {
			u := math.Float64bits(f)
			base := w * 8
			for l := 0; l < 8 && base+l < len(q); l++ {
				q[base+l] = int32(int8(uint8(u >> (8 * l))))
			}
		}
		return
	}
	for w, f := range in {
		u := math.Float64bits(f)
		base := w * 4
		for l := 0; l < 4 && base+l < len(q); l++ {
			q[base+l] = int32(int16(uint16(u >> (16 * l))))
		}
	}
}
