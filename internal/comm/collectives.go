package comm

import "fmt"

// The collectives below are the textbook message-passing algorithms —
// binomial-tree reduce/broadcast and ring reduce-scatter/allgather —
// executed by p cooperating goroutines over the group's channels. Each
// learner calls the method with its own rank; all learners must call the
// same collectives in the same order (bulk-synchronous discipline), which
// is exactly how Algorithm 1 in the paper uses them.

// AllreduceTree sums buf elementwise across all learners using a binomial
// tree (reduce to rank 0, then broadcast), leaving the global sum in
// every learner's buf. The data volume per learner is O(m log p), the
// figure the paper contrasts with the parameter server's O(mp).
func (g *Group) AllreduceTree(rank int, buf []float64) {
	g.ReduceTree(rank, buf)
	g.BroadcastTree(rank, buf)
}

// ReduceTree sums buf elementwise across learners into rank 0's buf using
// a binomial tree. Non-root buffers hold partial sums afterwards and
// should be treated as scratch.
func (g *Group) ReduceTree(rank int, buf []float64) {
	g.checkRank(rank)
	for step := 1; step < g.p; step <<= 1 {
		if rank%(2*step) != 0 {
			// This learner's subtree is complete: hand the partial sum up.
			g.Send(rank, rank-step, buf)
			return
		}
		peer := rank + step
		if peer < g.p {
			in := g.Recv(rank, peer)
			if len(in) != len(buf) {
				panic(fmt.Sprintf("comm: ReduceTree length mismatch %d vs %d", len(in), len(buf)))
			}
			for i, v := range in {
				buf[i] += v
			}
		}
	}
}

// BroadcastTree distributes rank 0's buf to every learner using a
// binomial tree. On return every learner's buf holds root's data.
func (g *Group) BroadcastTree(rank int, buf []float64) {
	g.checkRank(rank)
	// Highest power of two below p bounds the first step.
	top := 1
	for top < g.p {
		top <<= 1
	}
	for step := top >> 1; step >= 1; step >>= 1 {
		switch {
		case rank%(2*step) == 0:
			peer := rank + step
			if peer < g.p {
				// Send a copy: the receiver owns the payload.
				out := make([]float64, len(buf))
				copy(out, buf)
				g.Send(rank, peer, out)
			}
		case rank%(2*step) == step:
			in := g.Recv(rank, rank-step)
			if len(in) != len(buf) {
				panic(fmt.Sprintf("comm: BroadcastTree length mismatch %d vs %d", len(in), len(buf)))
			}
			copy(buf, in)
		}
	}
}

// AllreduceRing sums buf elementwise across all learners with the
// bandwidth-optimal ring algorithm: a reduce-scatter phase of p−1 steps
// followed by an allgather phase of p−1 steps, each moving m/p words per
// step. Provided as the ablation alternative to the tree (DESIGN.md §5).
func (g *Group) AllreduceRing(rank int, buf []float64) {
	g.checkRank(rank)
	p := g.p
	if p == 1 {
		return
	}
	m := len(buf)
	// chunk c covers [bounds[c], bounds[c+1])
	bounds := make([]int, p+1)
	for c := 0; c <= p; c++ {
		bounds[c] = c * m / p
	}
	chunk := func(c int) []float64 { return buf[bounds[c%p]:bounds[c%p+1]] }
	next := (rank + 1) % p
	prev := (rank - 1 + p) % p

	// Reduce-scatter: after step s, each learner has accumulated one more
	// chunk; after p−1 steps learner r holds the full sum of chunk (r+1)%p.
	for s := 0; s < p-1; s++ {
		sendC := (rank - s + p + p) % p
		recvC := (rank - s - 1 + p + p) % p
		out := make([]float64, len(chunk(sendC)))
		copy(out, chunk(sendC))
		g.Send(rank, next, out)
		in := g.Recv(rank, prev)
		dst := chunk(recvC)
		if len(in) != len(dst) {
			panic(fmt.Sprintf("comm: AllreduceRing length mismatch %d vs %d", len(in), len(dst)))
		}
		for i, v := range in {
			dst[i] += v
		}
	}
	// Allgather: circulate the completed chunks.
	for s := 0; s < p-1; s++ {
		sendC := (rank + 1 - s + p + p) % p
		recvC := (rank - s + p + p) % p
		out := make([]float64, len(chunk(sendC)))
		copy(out, chunk(sendC))
		g.Send(rank, next, out)
		in := g.Recv(rank, prev)
		dst := chunk(recvC)
		copy(dst, in)
	}
}
