package comm

import (
	"fmt"

	"sasgd/internal/parallel"
)

// The collectives below are the textbook message-passing algorithms —
// binomial-tree reduce/broadcast, ring reduce-scatter/allgather, and (in
// chunked.go) their chunked, pipelined and recursive-halving/doubling
// refinements — executed by p cooperating goroutines over the group's
// channels. Each learner calls the method with its own rank; all learners
// must call the same collectives in the same order (bulk-synchronous
// discipline), which is exactly how Algorithm 1 in the paper uses them.
//
// Allocation discipline: every wire copy is drawn from the group's
// buffer pool and released by its receiver (pool.go), so the dense
// collectives allocate nothing in steady state; reduction loops run
// through internal/parallel above reduceGrain, with per-element order
// unchanged from the serial loop, so results are bitwise independent of
// the worker budget.

// reduceGrain is the minimum number of elements per shard for the
// parallel reduction loops, matching the elementwise-kernel grain in
// internal/tensor: below it, dispatch overhead would dominate the ~1
// flop/element add.
const reduceGrain = 1 << 15

// addInto accumulates src into dst elementwise. Shards write disjoint
// ranges and each element keeps its serial accumulation order, so the
// result is bitwise identical at every worker count. The serial case is
// branched in the caller (parallel.Shards) so the closure only
// materializes — and only then allocates — when the loop actually
// shards, keeping single-worker steady state at zero allocs/op.
func addInto(dst, src []float64) {
	if parallel.Shards(len(dst), reduceGrain) <= 1 {
		for i := range dst {
			dst[i] += src[i]
		}
		return
	}
	parallel.For(len(dst), reduceGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += src[i]
		}
	})
}

// AllreduceTree sums buf elementwise across all learners using a binomial
// tree (reduce to rank 0, then broadcast), leaving the global sum in
// every learner's buf. The data volume per learner is O(m log p), the
// figure the paper contrasts with the parameter server's O(mp). It is
// the single-chunk case of the chunked pipelined tree, so the message
// sequence and summation order are exactly the textbook algorithm's.
func (g *Group) AllreduceTree(rank int, buf []float64) {
	g.setAlgo(rank, algoTree)
	entry := 0.0
	if g.clocks != nil {
		entry = g.clocks[rank].Now()
	}
	g.allreduceTreeChunkedFrom(rank, buf, len(buf), entry)
}

// ReduceTree sums buf elementwise across learners into rank 0's buf using
// a binomial tree. Non-root buffers hold partial sums afterwards and
// should be treated as scratch.
func (g *Group) ReduceTree(rank int, buf []float64) {
	g.checkRank(rank)
	g.setAlgo(rank, algoTree)
	for step := 1; step < g.p; step <<= 1 {
		if rank%(2*step) != 0 {
			// This learner's subtree is complete: hand the partial sum up
			// (zero-copy — the parent consumes it before this learner can
			// touch buf again).
			g.sendMsg(rank, rank-step, Frame{Data: buf})
			return
		}
		peer := rank + step
		if peer < g.p {
			in := g.recvMsg(rank, peer)
			if len(in.Data) != len(buf) {
				panic(fmt.Sprintf("comm: ReduceTree length mismatch %d vs %d", len(in.Data), len(buf)))
			}
			addInto(buf, in.Data)
			g.releaseMsg(in)
		}
	}
}

// BroadcastTree distributes rank 0's buf to every learner using a
// binomial tree. On return every learner's buf holds root's data.
func (g *Group) BroadcastTree(rank int, buf []float64) {
	g.checkRank(rank)
	g.setAlgo(rank, algoBcast)
	// Highest power of two below p bounds the first step.
	top := 1
	for top < g.p {
		top <<= 1
	}
	for step := top >> 1; step >= 1; step >>= 1 {
		switch {
		case rank%(2*step) == 0:
			peer := rank + step
			if peer < g.p {
				// Send a pooled copy: the receiver owns the payload and
				// returns it to the pool once consumed.
				pb := g.acquire(len(buf))
				copy(pb.data, buf)
				g.sendMsg(rank, peer, Frame{Data: pb.data, pb: pb})
			}
		case rank%(2*step) == step:
			in := g.recvMsg(rank, rank-step)
			if len(in.Data) != len(buf) {
				panic(fmt.Sprintf("comm: BroadcastTree length mismatch %d vs %d", len(in.Data), len(buf)))
			}
			copy(buf, in.Data)
			g.releaseMsg(in)
		}
	}
}

// AllreduceRing sums buf elementwise across all learners with the
// bandwidth-optimal ring algorithm: a reduce-scatter phase of p−1 steps
// followed by an allgather phase of p−1 steps, each moving m/p words per
// step. Provided as the ablation alternative to the tree (DESIGN.md §5).
func (g *Group) AllreduceRing(rank int, buf []float64) {
	g.checkRank(rank)
	g.setAlgo(rank, algoRing)
	p := g.p
	if p == 1 {
		return
	}
	m := len(buf)
	// chunk c covers [c·m/p, (c+1)·m/p) — computed inline so the
	// steady-state path allocates nothing.
	chunk := func(c int) []float64 {
		c %= p
		return buf[c*m/p : (c+1)*m/p]
	}
	next := (rank + 1) % p
	prev := (rank - 1 + p) % p

	// Reduce-scatter: after step s, each learner has accumulated one more
	// chunk; after p−1 steps learner r holds the full sum of chunk (r+1)%p.
	for s := 0; s < p-1; s++ {
		sendC := (rank - s + p + p) % p
		recvC := (rank - s - 1 + p + p) % p
		src := chunk(sendC)
		pb := g.acquire(len(src))
		copy(pb.data, src)
		g.sendMsg(rank, next, Frame{Data: pb.data, pb: pb})
		in := g.recvMsg(rank, prev)
		dst := chunk(recvC)
		if len(in.Data) != len(dst) {
			panic(fmt.Sprintf("comm: AllreduceRing length mismatch %d vs %d", len(in.Data), len(dst)))
		}
		addInto(dst, in.Data)
		g.releaseMsg(in)
	}
	// Allgather: circulate the completed chunks.
	for s := 0; s < p-1; s++ {
		sendC := (rank + 1 - s + p + p) % p
		recvC := (rank - s + p + p) % p
		src := chunk(sendC)
		pb := g.acquire(len(src))
		copy(pb.data, src)
		g.sendMsg(rank, next, Frame{Data: pb.data, pb: pb})
		in := g.recvMsg(rank, prev)
		dst := chunk(recvC)
		if len(in.Data) != len(dst) {
			panic(fmt.Sprintf("comm: AllreduceRing length mismatch %d vs %d", len(in.Data), len(dst)))
		}
		copy(dst, in.Data)
		g.releaseMsg(in)
	}
}
