package comm

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkCommAllreduce sweeps every allreduce implementation over group
// size and message length; scripts/bench_comm.sh turns the ns/op figures
// into words/sec in BENCH_COMM.json. The group (and therefore its buffer
// pool) persists across iterations, so after the first round the numbers
// are the zero-allocation steady state that training sees — all p ranks
// run the collective loop in lockstep, as the bulk-synchronous discipline
// requires.
func BenchmarkCommAllreduce(b *testing.B) {
	for _, algo := range []string{"tree", "ring", "ptree", "rhd"} {
		for _, p := range []int{2, 4, 8} {
			for _, m := range []int{10_000, 1_000_000} {
				b.Run(fmt.Sprintf("%s/p%d/m%d", algo, p, m), func(b *testing.B) {
					benchCommAllreduce(b, algo, p, m)
				})
			}
		}
	}
}

func benchCommAllreduce(b *testing.B, algo string, p, m int) {
	g := NewGroup(p)
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, m)
	}
	run := func(r int) {
		switch algo {
		case "tree":
			g.AllreduceTree(r, bufs[r])
		case "ring":
			g.AllreduceRing(r, bufs[r])
		case "ptree":
			g.AllreduceTreeChunked(r, bufs[r], 0)
		case "rhd":
			g.AllreduceRHD(r, bufs[r])
		}
	}
	b.SetBytes(int64(m * 8))
	b.ResetTimer()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				run(r)
			}
		}(r)
	}
	wg.Wait()
}

func benchAllreduce(b *testing.B, p, words int, ring bool) {
	b.Helper()
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, words)
	}
	b.SetBytes(int64(words * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGroup(p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if ring {
					g.AllreduceRing(r, bufs[r])
				} else {
					g.AllreduceTree(r, bufs[r])
				}
			}(r)
		}
		wg.Wait()
	}
}

func BenchmarkAllreduceTree8x100k(b *testing.B)  { benchAllreduce(b, 8, 100_000, false) }
func BenchmarkAllreduceRing8x100k(b *testing.B)  { benchAllreduce(b, 8, 100_000, true) }
func BenchmarkAllreduceTree16x100k(b *testing.B) { benchAllreduce(b, 16, 100_000, false) }

func BenchmarkParamServerPushPull(b *testing.B) {
	const m = 500_000
	srv := NewParamServer(make([]float64, m), 8, nil, nil)
	grad := make([]float64, m)
	buf := make([]float64, m)
	b.SetBytes(2 * m * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.PushGrad(0, 0.1, grad)
		srv.Pull(0, buf)
	}
}

func BenchmarkParamServerElastic(b *testing.B) {
	const m = 500_000
	srv := NewParamServer(make([]float64, m), 8, nil, nil)
	local := make([]float64, m)
	b.SetBytes(m * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := srv.Elastic(0, 0.1, local)
		_ = d
	}
}

func BenchmarkBarrier8(b *testing.B) {
	bar := NewBarrier(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < 8; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				bar.Wait()
			}()
		}
		wg.Wait()
	}
}
