package comm

import (
	"sync"
	"testing"
)

func benchAllreduce(b *testing.B, p, words int, ring bool) {
	b.Helper()
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, words)
	}
	b.SetBytes(int64(words * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGroup(p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if ring {
					g.AllreduceRing(r, bufs[r])
				} else {
					g.AllreduceTree(r, bufs[r])
				}
			}(r)
		}
		wg.Wait()
	}
}

func BenchmarkAllreduceTree8x100k(b *testing.B)  { benchAllreduce(b, 8, 100_000, false) }
func BenchmarkAllreduceRing8x100k(b *testing.B)  { benchAllreduce(b, 8, 100_000, true) }
func BenchmarkAllreduceTree16x100k(b *testing.B) { benchAllreduce(b, 16, 100_000, false) }

func BenchmarkParamServerPushPull(b *testing.B) {
	const m = 500_000
	srv := NewParamServer(make([]float64, m), 8, nil, nil)
	grad := make([]float64, m)
	buf := make([]float64, m)
	b.SetBytes(2 * m * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.PushGrad(0, 0.1, grad)
		srv.Pull(0, buf)
	}
}

func BenchmarkParamServerElastic(b *testing.B) {
	const m = 500_000
	srv := NewParamServer(make([]float64, m), 8, nil, nil)
	local := make([]float64, m)
	b.SetBytes(m * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := srv.Elastic(0, 0.1, local)
		_ = d
	}
}

func BenchmarkBarrier8(b *testing.B) {
	bar := NewBarrier(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < 8; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				bar.Wait()
			}()
		}
		wg.Wait()
	}
}
