package comm

import (
	"fmt"
	"sync"
)

// ParamServer is the (optionally sharded) central parameter store that
// Downpour and EAMSGD aggregate through. Parameters are split into
// contiguous shards; each shard applies requests under its own lock, so
// a learner's Pull is not an atomic snapshot across shards — the
// cross-shard inconsistency the paper attributes to sharded servers —
// and per-shard update generations make gradient staleness measurable.
//
// When built with clocks and a cost model, every push/pull charges the
// issuing learner one ServerOpTime: an analytic steady-state cost
// covering the host-link transfer (shared by all learners), the
// serialized per-shard aggregation work, and the expected queueing
// behind the other learners. The analytic form keeps simulated time
// deterministic per learner regardless of goroutine scheduling.
type ParamServer struct {
	shards []*shard
	m      int
	clocks []Clock
	cost   CostModel
}

type shard struct {
	mu      sync.Mutex
	lo, hi  int       // parameter range [lo, hi)
	params  []float64 // authoritative values for the range
	updates int64     // completed gradient applications
}

// NewParamServer returns a server over m parameters split into nshards
// contiguous shards, initialized from init (copied). clocks/cost may be
// nil for an un-simulated server; when set, len(clocks) defines the
// contention level of the cost model.
func NewParamServer(init []float64, nshards int, clocks []Clock, cost CostModel) *ParamServer {
	m := len(init)
	if nshards <= 0 {
		panic(fmt.Sprintf("comm: NewParamServer with %d shards", nshards))
	}
	if nshards > m {
		nshards = m
	}
	s := &ParamServer{m: m, clocks: clocks, cost: cost}
	for i := 0; i < nshards; i++ {
		lo := i * m / nshards
		hi := (i + 1) * m / nshards
		sh := &shard{lo: lo, hi: hi, params: make([]float64, hi-lo)}
		copy(sh.params, init[lo:hi])
		s.shards = append(s.shards, sh)
	}
	return s
}

// NumShards returns the shard count.
func (s *ParamServer) NumShards() int { return len(s.shards) }

// Len returns the total parameter count.
func (s *ParamServer) Len() int { return s.m }

// chargeOp bills one complete push or pull of the full model to the
// learner's clock as communication time.
func (s *ParamServer) chargeOp(learner int) {
	if s.clocks == nil || s.cost == nil {
		return
	}
	c := s.clocks[learner]
	c.Sync(c.Now() + s.cost.ServerOpTime(s.m, len(s.shards), len(s.clocks)))
}

// PushGrad applies x ← x − γ·grad to the server's parameters, shard by
// shard, on behalf of the given learner. grad must cover all m
// parameters. Returns the per-shard update generation after applying,
// which callers difference against Pull generations to measure
// staleness.
func (s *ParamServer) PushGrad(learner int, gamma float64, grad []float64) []int64 {
	if len(grad) != s.m {
		panic(fmt.Sprintf("comm: PushGrad length %d, want %d", len(grad), s.m))
	}
	gens := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		g := grad[sh.lo:sh.hi]
		for j, v := range g {
			sh.params[j] -= gamma * v
		}
		sh.updates++
		gens[i] = sh.updates
		sh.mu.Unlock()
	}
	s.chargeOp(learner)
	return gens
}

// Pull copies the server's current parameters into dst (length m) on
// behalf of the given learner and returns the per-shard update
// generations observed. Because shards are read independently, the copy
// is not an atomic snapshot — deliberately mirroring sharded-server
// inconsistency.
func (s *ParamServer) Pull(learner int, dst []float64) []int64 {
	if len(dst) != s.m {
		panic(fmt.Sprintf("comm: Pull length %d, want %d", len(dst), s.m))
	}
	gens := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		copy(dst[sh.lo:sh.hi], sh.params)
		gens[i] = sh.updates
		sh.mu.Unlock()
	}
	s.chargeOp(learner)
	return gens
}

// Elastic performs the elastic-averaging exchange of EAMSGD on behalf of
// the given learner: for each parameter, d = α·(local − center); the
// center moves by +d and the returned slice holds d so the caller applies
// local ← local − d. The exchange is atomic per shard. The returned
// generations play the same staleness-accounting role as in PushGrad.
func (s *ParamServer) Elastic(learner int, alpha float64, local []float64) (d []float64, gens []int64) {
	if len(local) != s.m {
		panic(fmt.Sprintf("comm: Elastic length %d, want %d", len(local), s.m))
	}
	d = make([]float64, s.m)
	gens = make([]int64, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		for j := 0; j < sh.hi-sh.lo; j++ {
			dj := alpha * (local[sh.lo+j] - sh.params[j])
			sh.params[j] += dj
			d[sh.lo+j] = dj
		}
		sh.updates++
		gens[i] = sh.updates
		sh.mu.Unlock()
	}
	// The elastic exchange moves the model both ways: bill it as two
	// operations (the equivalent of a push and a pull).
	s.chargeOp(learner)
	s.chargeOp(learner)
	return d, gens
}

// Snapshot returns a copy of the full parameter vector (test/eval use;
// not charged to any clock).
func (s *ParamServer) Snapshot() []float64 {
	out := make([]float64, s.m)
	for _, sh := range s.shards {
		sh.mu.Lock()
		copy(out[sh.lo:sh.hi], sh.params)
		sh.mu.Unlock()
	}
	return out
}

// Updates returns the total update generation summed over shards.
func (s *ParamServer) Updates() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.updates
		sh.mu.Unlock()
	}
	return n
}
