package comm

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sasgd/internal/comm/wire"
)

// TCP transport: the Transport interface over real sockets, one learner
// process (or several) per machine. The mesh is one full-duplex TCP
// connection per unordered rank pair — the lower rank dials the higher
// rank's listener and identifies the pair with a hello — and each
// directed link gets a dedicated writer goroutine mirroring the channel
// fabric's link daemons: it drains the link's outbox, serializes frames
// with the wire codec into a grow-once scratch buffer, and releases
// pool-owned payloads back to the shared pool after the bytes are out.
// A reader goroutine per connection endpoint decodes incoming frames
// into pooled buffers and routes them to per-(sender, receiver) inbox
// channels, so Recv is the same buffered-channel receive the channel
// fabric does — the collectives cannot tell the backends apart.
//
// Buffering: outbox (mailboxCap) + socket buffers + inbox (mailboxCap)
// give every directed link strictly more slack than the channel
// fabric's mailboxCap, so any schedule that is deadlock-free on
// channels is deadlock-free here (the mailboxCap argument, with spare
// room).
//
// Sender-reuse safety for zero-copy frames: a sender may only reuse a
// handed-off buffer after an event that (on the channel fabric) follows
// the receiver consuming it. Here the receiver can only have consumed a
// frame after this process's writer fully serialized it, so
// serialization happens-before any legal reuse — the zero-copy
// hand-offs the collectives rely on stay safe over the wire.

// TCPConfig describes a TCP mesh.
type TCPConfig struct {
	// Addrs[r] is rank r's listen address. Every process of the run
	// must pass the identical list (ephemeral ":0" ports are only valid
	// for ranks local to this process, i.e. single-process loopback).
	Addrs []string
	// Local lists the ranks hosted by this process (nil = all of them).
	Local []int
	// DialTimeout bounds connection establishment per link, retrying
	// until the deadline so peer processes may start late. Default 15s.
	DialTimeout time.Duration
}

// TCPStats is the transport-level wire accounting (bytes and frames on
// the socket, this process's share only). Word-level traffic accounting
// stays in comm.Stats, charged above the transport.
type TCPStats struct {
	BytesOut, BytesIn   int64
	FramesOut, FramesIn int64
}

// TCPTransport is a Transport over a TCP mesh. Construct with
// NewTCPTransport (multi-process) or NewTCPLoopback (tests, benches,
// single-machine runs).
type TCPTransport struct {
	p     int
	local []bool
	nLoc  int
	inbox [][]chan Frame // [to][from]; rows only for local `to`
	out   [][]chan Frame // [from][to]; wire-link outboxes for local `from`
	pool  bufPool

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	conns     []net.Conn

	bytesOut, bytesIn   atomic.Int64
	framesOut, framesIn atomic.Int64
}

// wireBufSize is the bufio buffer on each side of a connection.
const wireBufSize = 64 << 10

// helloMagic opens every dialed connection: magic, mesh size, dialer
// rank, target rank — enough for the accepting side to direction-assign
// the pair and reject mismatched runs.
const helloMagic = 0x68444753 // "SGDh"

const helloLen = 10

// NewTCPLoopback returns a p-rank TCP transport with every rank hosted
// in this process over 127.0.0.1 ephemeral ports: the full TCP backend
// — framing, CRC, per-link writers, kernel sockets — without leaving
// the machine. This is the cross-transport equivalence harness's second
// backend.
func NewTCPLoopback(p int) (*TCPTransport, error) {
	addrs := make([]string, p)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return NewTCPTransport(TCPConfig{Addrs: addrs})
}

// NewTCPTransport builds the mesh: listeners for the local ranks, then
// one connection per rank pair (lower rank dials, higher accepts, both
// with retry/deadline so processes may start in any order), then the
// per-link reader/writer goroutines. Returns only once every local
// link is connected.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	p := len(cfg.Addrs)
	if p == 0 {
		return nil, fmt.Errorf("comm: tcp: no addresses")
	}
	if p > wire.MaxRank+1 {
		return nil, fmt.Errorf("comm: tcp: %d ranks exceed the frame format's %d", p, wire.MaxRank+1)
	}
	t := &TCPTransport{p: p, local: make([]bool, p), done: make(chan struct{})}
	if cfg.Local == nil {
		for r := range t.local {
			t.local[r] = true
		}
		t.nLoc = p
	} else {
		for _, r := range cfg.Local {
			if r < 0 || r >= p {
				return nil, fmt.Errorf("comm: tcp: local rank %d out of range [0,%d)", r, p)
			}
			if t.local[r] {
				return nil, fmt.Errorf("comm: tcp: duplicate local rank %d", r)
			}
			t.local[r] = true
			t.nLoc++
		}
		if t.nLoc == 0 {
			return nil, fmt.Errorf("comm: tcp: no local ranks")
		}
	}
	dialBudget := cfg.DialTimeout
	if dialBudget <= 0 {
		dialBudget = 15 * time.Second
	}

	t.inbox = make([][]chan Frame, p)
	t.out = make([][]chan Frame, p)
	for r := 0; r < p; r++ {
		if t.local[r] {
			row := make([]chan Frame, p)
			for from := range row {
				row[from] = make(chan Frame, mailboxCap)
			}
			t.inbox[r] = row
			orow := make([]chan Frame, p)
			for to := range orow {
				if to != r {
					orow[to] = make(chan Frame, mailboxCap)
				}
			}
			t.out[r] = orow
		}
	}

	// Listeners first, so every dial target that is local resolves its
	// actual (possibly ephemeral) port.
	listeners := make([]net.Listener, p)
	resolved := append([]string(nil), cfg.Addrs...)
	fail := func(err error) (*TCPTransport, error) {
		for _, ln := range listeners {
			if ln != nil {
				ln.Close()
			}
		}
		for _, c := range t.conns {
			c.Close()
		}
		return nil, err
	}
	for r := 0; r < p; r++ {
		if !t.local[r] {
			continue
		}
		ln, err := net.Listen("tcp", cfg.Addrs[r])
		if err != nil {
			return fail(fmt.Errorf("comm: tcp: listen rank %d on %s: %w", r, cfg.Addrs[r], err))
		}
		listeners[r] = ln
		resolved[r] = ln.Addr().String()
	}

	// Establish the mesh. Pair {a,b} with a<b: a dials b's listener, so
	// rank r's listener expects exactly one connection from every lower
	// rank. Accepts run concurrently with the dial loop — a loopback
	// mesh dials itself.
	type endpoint struct {
		conn  *net.TCPConn
		wFrom int // this endpoint writes the wFrom→wTo direction
		wTo   int
	}
	var mu sync.Mutex
	var eps []endpoint
	addEndpoint := func(c *net.TCPConn, wFrom, wTo int) {
		c.SetNoDelay(true)
		mu.Lock()
		t.conns = append(t.conns, c)
		eps = append(eps, endpoint{c, wFrom, wTo})
		mu.Unlock()
	}
	deadline := time.Now().Add(dialBudget)
	var acceptWG sync.WaitGroup
	acceptErr := make(chan error, p)
	for r := 0; r < p; r++ {
		if listeners[r] == nil || r == 0 {
			continue
		}
		acceptWG.Add(1)
		go func(r int, ln net.Listener) {
			defer acceptWG.Done()
			if d, ok := ln.(*net.TCPListener); ok {
				d.SetDeadline(deadline)
			}
			for i := 0; i < r; i++ {
				c, err := ln.Accept()
				if err != nil {
					acceptErr <- fmt.Errorf("comm: tcp: rank %d accept %d/%d: %w", r, i, r, err)
					return
				}
				var hello [helloLen]byte
				c.SetReadDeadline(deadline)
				if _, err := io.ReadFull(c, hello[:]); err != nil {
					acceptErr <- fmt.Errorf("comm: tcp: rank %d hello: %w", r, err)
					c.Close()
					return
				}
				c.SetReadDeadline(time.Time{})
				magic := uint32(hello[0]) | uint32(hello[1])<<8 | uint32(hello[2])<<16 | uint32(hello[3])<<24
				hp := int(hello[4]) | int(hello[5])<<8
				da := int(hello[6]) | int(hello[7])<<8
				db := int(hello[8]) | int(hello[9])<<8
				if magic != helloMagic || hp != p || db != r || da >= r || da < 0 {
					acceptErr <- fmt.Errorf("comm: tcp: rank %d got bad hello (magic %#x p %d pair %d→%d)", r, magic, hp, da, db)
					c.Close()
					return
				}
				addEndpoint(c.(*net.TCPConn), r, da)
			}
		}(r, listeners[r])
	}
	var dialErr error
	for b := 1; b < p && dialErr == nil; b++ {
		for a := 0; a < b; a++ {
			if !t.local[a] {
				continue
			}
			addr := resolved[b]
			if !t.local[b] {
				if _, port, err := net.SplitHostPort(addr); err != nil || port == "0" {
					dialErr = fmt.Errorf("comm: tcp: rank %d address %q needs an explicit port (ephemeral ports are single-process only)", b, cfg.Addrs[b])
					break
				}
			}
			c, err := dialRetry(addr, deadline)
			if err != nil {
				dialErr = fmt.Errorf("comm: tcp: rank %d dial rank %d (%s): %w", a, b, addr, err)
				break
			}
			hm := uint32(helloMagic)
			hello := [helloLen]byte{
				byte(hm), byte(hm >> 8), byte(hm >> 16), byte(hm >> 24),
				byte(p), byte(p >> 8),
				byte(a), byte(a >> 8),
				byte(b), byte(b >> 8),
			}
			if _, err := c.Write(hello[:]); err != nil {
				dialErr = fmt.Errorf("comm: tcp: rank %d hello to rank %d: %w", a, b, err)
				c.Close()
				break
			}
			addEndpoint(c, a, b)
		}
	}
	acceptWG.Wait()
	for _, ln := range listeners {
		if ln != nil {
			ln.Close()
		}
	}
	if dialErr != nil {
		return fail(dialErr)
	}
	select {
	case err := <-acceptErr:
		return fail(err)
	default:
	}

	// Mesh complete: spawn the link goroutines. Each endpoint writes
	// one direction and reads the other.
	for _, ep := range eps {
		t.wg.Add(1)
		go t.runWriter(ep.conn, ep.wFrom, ep.wTo)
		if t.local[ep.wFrom] { // reads frames addressed wTo→wFrom
			t.wg.Add(1)
			go t.runReader(ep.conn, ep.wTo, ep.wFrom)
		}
	}
	return t, nil
}

// dialRetry dials until success or the deadline; peers of a
// multi-process run may not be listening yet.
func dialRetry(addr string, deadline time.Time) (*net.TCPConn, error) {
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("deadline exceeded")
			}
			return nil, lastErr
		}
		step := 250 * time.Millisecond
		if remain < step {
			step = remain
		}
		c, err := net.DialTimeout("tcp", addr, step)
		if err == nil {
			return c.(*net.TCPConn), nil
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
}

// Size returns the mesh's rank count.
func (t *TCPTransport) Size() int { return t.p }

// AllLocal reports whether this process hosts every rank.
func (t *TCPTransport) AllLocal() bool { return t.nLoc == t.p }

// Local reports whether rank r is hosted by this process.
func (t *TCPTransport) Local(r int) bool { return t.local[r] }

func (t *TCPTransport) bufferPool() *bufPool { return &t.pool }

// WireStats snapshots the socket-level byte/frame counters.
func (t *TCPTransport) WireStats() TCPStats {
	return TCPStats{
		BytesOut: t.bytesOut.Load(), BytesIn: t.bytesIn.Load(),
		FramesOut: t.framesOut.Load(), FramesIn: t.framesIn.Load(),
	}
}

// Send enqueues f on the (from → to) link's outbox (self-sends go
// straight to the inbox). Blocks for backpressure; unblocks and drops
// when the transport closes underneath it.
func (t *TCPTransport) Send(from, to int, f Frame) {
	if !t.local[from] {
		panic(fmt.Sprintf("comm: tcp: send from rank %d, which is not hosted by this process", from))
	}
	checkTransportRank(t, to)
	var ch chan Frame
	if from == to {
		ch = t.inbox[to][from]
	} else {
		ch = t.out[from][to]
	}
	select {
	case ch <- f:
	case <-t.done:
	}
}

// Recv returns the next frame on the (from → to) link.
func (t *TCPTransport) Recv(to, from int) Frame {
	if !t.local[to] {
		panic(fmt.Sprintf("comm: tcp: recv at rank %d, which is not hosted by this process", to))
	}
	checkTransportRank(t, from)
	return <-t.inbox[to][from]
}

// runWriter owns the (from → to) direction of one connection: drain the
// outbox, serialize into the grow-once scratch, flush when the queue is
// momentarily empty (batching consecutive frames into one syscall), and
// release pool-owned payloads once their bytes are out. On Close the
// queued frames are flushed and the write side half-closed, so the peer
// reads everything in flight before seeing EOF — graceful teardown.
func (t *TCPTransport) runWriter(conn *net.TCPConn, from, to int) {
	defer t.wg.Done()
	out := t.out[from][to]
	w := newFlushWriter(conn)
	var scratch []byte
	emit := func(f Frame) {
		scratch = wire.AppendFrame(scratch[:0], wire.Header{From: from, To: to, Seq: f.Seq, Arrive: f.Arrive}, f.Data)
		if w.write(scratch) {
			t.bytesOut.Add(int64(len(scratch)))
			t.framesOut.Add(1)
		}
		if f.pb != nil {
			t.pool.release(f.pb)
		}
	}
	for {
		select {
		case f := <-out:
			emit(f)
			if len(out) == 0 {
				w.flush()
			}
		case <-t.done:
			for {
				select {
				case f := <-out:
					emit(f)
				default:
					w.flush()
					conn.CloseWrite()
					return
				}
			}
		}
	}
}

// flushWriter is a minimal buffered writer with a sticky error: after
// the peer drops the connection, writes become cheap no-ops instead of
// panics (the run is torn down by whoever noticed first).
type flushWriter struct {
	conn net.Conn
	buf  []byte
	err  error
}

func newFlushWriter(c net.Conn) *flushWriter {
	return &flushWriter{conn: c, buf: make([]byte, 0, wireBufSize)}
}

func (w *flushWriter) write(p []byte) bool {
	if w.err != nil {
		return false
	}
	if len(w.buf)+len(p) > cap(w.buf) {
		w.flush()
		if w.err != nil {
			return false
		}
	}
	if len(p) >= cap(w.buf) {
		_, w.err = w.conn.Write(p)
		return w.err == nil
	}
	w.buf = append(w.buf, p...)
	return true
}

func (w *flushWriter) flush() {
	if w.err != nil || len(w.buf) == 0 {
		return
	}
	_, w.err = w.conn.Write(w.buf)
	w.buf = w.buf[:0]
}

// runReader owns the (from → to) direction arriving on one connection:
// length-prefixed frames are decoded into pooled buffers and routed to
// the inbox. A clean EOF at a frame boundary is normal teardown; a
// corrupt or mid-frame-truncated stream is a wire-integrity failure and
// panics (the CRC exists to make corruption loud, not survivable).
func (t *TCPTransport) runReader(conn *net.TCPConn, from, to int) {
	defer t.wg.Done()
	br := newFillReader(conn)
	var prefix [wire.PrefixLen]byte
	var body []byte
	check := func(err error, what string) {
		if err == nil {
			return
		}
		if t.closing() {
			panic(readerDone{})
		}
		panic(fmt.Sprintf("comm: tcp link %d→%d: %s: %v", from, to, what, err))
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(readerDone); ok {
				return
			}
			panic(r)
		}
	}()
	for {
		if _, err := io.ReadFull(br, prefix[:]); err != nil {
			// EOF between frames: the peer half-closed after flushing —
			// normal shutdown regardless of which side closed first.
			if err == io.EOF {
				return
			}
			check(err, "read prefix")
			return
		}
		n, err := wire.BodyLen(prefix[:])
		check(err, "length prefix")
		if cap(body) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			check(err, "read body")
		}
		w, err := wire.PayloadWords(body)
		check(err, "payload words")
		pb := t.pool.acquire(w)
		h, err := wire.DecodeBody(body, pb.data)
		if err != nil {
			t.pool.release(pb)
			check(err, "decode")
		}
		if h.From != from || h.To != to {
			t.pool.release(pb)
			check(fmt.Errorf("frame addressed %d→%d", h.From, h.To), "misrouted frame")
		}
		t.bytesIn.Add(int64(wire.PrefixLen + n))
		t.framesIn.Add(1)
		select {
		case t.inbox[to][from] <- Frame{Data: pb.data, pb: pb, Seq: h.Seq, Arrive: h.Arrive}:
		case <-t.done:
			t.pool.release(pb)
			return
		}
	}
}

// readerDone is the reader's silent-exit signal during teardown.
type readerDone struct{}

func (t *TCPTransport) closing() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// fillReader is a minimal buffered reader (io.Reader) sized for frame
// batches.
type fillReader struct {
	conn net.Conn
	buf  []byte
	r, w int
}

func newFillReader(c net.Conn) *fillReader {
	return &fillReader{conn: c, buf: make([]byte, wireBufSize)}
}

func (fr *fillReader) Read(p []byte) (int, error) {
	if fr.r == fr.w {
		n, err := fr.conn.Read(fr.buf)
		if n == 0 {
			return 0, err
		}
		fr.r, fr.w = 0, n
	}
	n := copy(p, fr.buf[fr.r:fr.w])
	fr.r += n
	return n, nil
}

// Close tears the mesh down: writers flush their queued frames and
// half-close so peers receive everything in flight, readers drain or
// exit, then the connections close. Idempotent and safe to call
// concurrently with blocked Sends (they unblock and drop).
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		finished := make(chan struct{})
		go func() {
			t.wg.Wait()
			close(finished)
		}()
		select {
		case <-finished:
		case <-time.After(5 * time.Second):
			// A peer process died without closing: hard-close below
			// unblocks whatever is left.
		}
		for _, c := range t.conns {
			c.Close()
		}
	})
	return nil
}
