package comm

import (
	"strings"
	"testing"

	"sasgd/internal/obs"
)

// Tests for the unified stats: per-algorithm attribution, the exact
// sparse index+value wire accounting, the Reset API and the
// tracer-gated pipeline counters.

// TestStatsPerAlgoAttribution runs one collective of each family on
// separate groups and checks every word lands in the right bucket.
func TestStatsPerAlgoAttribution(t *testing.T) {
	const p, n = 4, 64
	cases := []struct {
		algo string
		run  func(g *Group, rank int, buf []float64)
	}{
		{"tree", func(g *Group, r int, b []float64) { g.AllreduceTree(r, b) }},
		{"ptree", func(g *Group, r int, b []float64) { g.AllreduceTreeChunked(r, b, 16) }},
		{"rhd", func(g *Group, r int, b []float64) { g.AllreduceRHD(r, b) }},
		{"ring", func(g *Group, r int, b []float64) { g.AllreduceRing(r, b) }},
		{"bcast", func(g *Group, r int, b []float64) { g.BroadcastTree(r, b) }},
	}
	for _, tc := range cases {
		t.Run(tc.algo, func(t *testing.T) {
			g := NewGroup(p)
			bufs := make([][]float64, p)
			for r := range bufs {
				bufs[r] = make([]float64, n)
			}
			runGroup(p, g, func(rank int) { tc.run(g, rank, bufs[rank]) })
			s := g.Stats()
			if len(s.PerAlgo) != 1 {
				t.Fatalf("PerAlgo = %v, want traffic only under %q", s.PerAlgo, tc.algo)
			}
			as := s.PerAlgo[tc.algo]
			if as.Words != s.Words || as.Words != g.WordsSent() || as.Words == 0 {
				t.Errorf("%q words=%d stats total=%d WordsSent=%d; want all equal and nonzero",
					tc.algo, as.Words, s.Words, g.WordsSent())
			}
			if s.Messages != as.Messages || as.Messages == 0 {
				t.Errorf("%q messages=%d total=%d; want equal and nonzero", tc.algo, as.Messages, s.Messages)
			}
			if s.Bytes != 8*s.Words {
				t.Errorf("Bytes=%d, want 8·Words=%d", s.Bytes, 8*s.Words)
			}
		})
	}
}

// TestStatsRHDFallbackChargedToRHD pins the label of the
// non-power-of-two fallback: the caller asked for rhd, so its traffic
// is charged to rhd even though it lowers to the chunked tree.
func TestStatsRHDFallbackChargedToRHD(t *testing.T) {
	const p, n = 3, 32
	g := NewGroup(p)
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, n)
	}
	runGroup(p, g, func(rank int) { g.AllreduceRHD(rank, bufs[rank]) })
	s := g.Stats()
	if len(s.PerAlgo) != 1 || s.PerAlgo["rhd"].Words == 0 {
		t.Errorf("fallback traffic charged to %v, want all under rhd", s.PerAlgo)
	}
}

// TestStatsSparseExactWireWords pins the sparse collective's wire
// accounting exactly: every message is an encoded (index, value) pair
// stream, so the words charged are Σ SparseVec.Words() over the tree's
// messages — the same len(payload) rule as the dense paths.
func TestStatsSparseExactWireWords(t *testing.T) {
	// p=2, identical supports of k entries: rank 1 ships 2k words up,
	// the merged result (same support) ships 2k words down.
	const k = 5
	g := NewGroup(2)
	contrib := func() SparseVec {
		v := SparseVec{Idx: make([]int, k), Val: make([]float64, k)}
		for i := range v.Idx {
			v.Idx[i] = 3 * i
			v.Val[i] = float64(i + 1)
		}
		return v
	}
	runGroup(2, g, func(rank int) { g.AllreduceSparseTree(rank, contrib()) })
	s := g.Stats()
	if want := int64(2*k + 2*k); s.PerAlgo["sparse"].Words != want || s.Words != want {
		t.Errorf("identical supports: sparse words = %d (total %d), want exactly %d",
			s.PerAlgo["sparse"].Words, s.Words, want)
	}
	if want := int64(2); s.Messages != want {
		t.Errorf("identical supports: messages = %d, want %d", s.Messages, want)
	}

	// Disjoint supports: the up message is still 2k words, but the merged
	// broadcast carries both supports — 4k words.
	g2 := NewGroup(2)
	runGroup(2, g2, func(rank int) {
		v := SparseVec{Idx: make([]int, k), Val: make([]float64, k)}
		for i := range v.Idx {
			v.Idx[i] = 2*i + rank // even on rank 0, odd on rank 1
			v.Val[i] = 1
		}
		g2.AllreduceSparseTree(rank, v)
	})
	if want, got := int64(2*k+4*k), g2.Stats().PerAlgo["sparse"].Words; got != want {
		t.Errorf("disjoint supports: sparse words = %d, want exactly %d", got, want)
	}
}

// TestStatsReset pins the Reset API: counters go to zero and resume
// accumulating afterwards.
func TestStatsReset(t *testing.T) {
	const p, n = 4, 32
	g := NewGroup(p)
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, n)
	}
	runGroup(p, g, func(rank int) { g.AllreduceTree(rank, bufs[rank]) })
	if g.WordsSent() == 0 {
		t.Fatal("no traffic recorded before reset")
	}
	g.ResetStats()
	s := g.Stats()
	if s.Words != 0 || s.Messages != 0 || len(s.PerAlgo) != 0 || g.WordsSent() != 0 {
		t.Errorf("after ResetStats: %+v, WordsSent=%d; want all zero", s, g.WordsSent())
	}
	runGroup(p, g, func(rank int) { g.AllreduceRing(rank, bufs[rank]) })
	s = g.Stats()
	if s.PerAlgo["ring"].Words == 0 || s.Words != g.WordsSent() {
		t.Errorf("counters did not resume after reset: %+v", s)
	}
}

// TestStatsSendChargedToP2P keeps bare point-to-point traffic out of
// the collective buckets.
func TestStatsSendChargedToP2P(t *testing.T) {
	g := NewGroup(2)
	go g.Send(0, 1, make([]float64, 7))
	g.Recv(1, 0)
	s := g.Stats()
	if s.PerAlgo["p2p"].Words != 7 || s.Words != 7 || s.Messages != 1 {
		t.Errorf("p2p send accounted as %+v, want 7 words / 1 message under p2p", s.PerAlgo)
	}
}

// TestStatsBucketedPipelineCounters checks the tracer-gated pipeline
// accounting: with a tracer attached, the bucketed path reports its op
// count, dwell/busy times and an occupancy in (0, 1].
func TestStatsBucketedPipelineCounters(t *testing.T) {
	const p, n = 4, 1 << 12
	segs := []Segment{{0, n / 2}, {n / 2, n / 2}}
	g := NewGroup(p)
	g.SetTracer(obs.NewTracer(256))
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, n)
	}
	runGroup(p, g, func(rank int) {
		b := NewBucketedAllreduce(g, rank, segs, 0)
		defer b.Close()
		const rounds = 3
		for it := 0; it < rounds; it++ {
			h0 := b.Begin(0, bufs[rank], 0, 0)
			h1 := b.Begin(1, bufs[rank], 0, 0)
			h0.Wait()
			h1.Wait()
		}
	})
	s := g.Stats()
	if want := int64(p * 3 * len(segs)); s.BucketOps != want {
		t.Errorf("BucketOps = %d, want %d", s.BucketOps, want)
	}
	if s.WorkerBusy <= 0 {
		t.Errorf("WorkerBusy = %v, want > 0 with tracer attached", s.WorkerBusy)
	}
	if s.PipelineOccupancy <= 0 || s.PipelineOccupancy > 1 {
		t.Errorf("PipelineOccupancy = %v, want in (0, 1]", s.PipelineOccupancy)
	}
	if s.MailboxWait <= 0 {
		t.Errorf("MailboxWait = %v, want > 0 with tracer attached", s.MailboxWait)
	}
	// The worker tracks recorded queue_dwell and allreduce spans.
	var dwell, exec int
	for _, pr := range g.Tracer().Profile() {
		switch pr.Phase {
		case obs.PhaseQueueDwell:
			dwell += pr.Count
		case obs.PhaseAllreduce:
			exec += pr.Count
		}
	}
	if want := p * 3 * len(segs); dwell != want || exec != want {
		t.Errorf("traced %d dwell / %d allreduce spans, want %d each", dwell, exec, want)
	}
}

// TestStatsBucketedUntracedKeepsOpCount: without a tracer the timing
// stats stay zero (no clock reads on the hot path) but the op count is
// still maintained.
func TestStatsBucketedUntracedKeepsOpCount(t *testing.T) {
	const p, n = 2, 256
	segs := []Segment{{0, n}}
	g := NewGroup(p)
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, n)
	}
	runGroup(p, g, func(rank int) {
		b := NewBucketedAllreduce(g, rank, segs, 0)
		defer b.Close()
		b.Begin(0, bufs[rank], 0, 0).Wait()
	})
	s := g.Stats()
	if s.BucketOps != p {
		t.Errorf("BucketOps = %d, want %d", s.BucketOps, p)
	}
	if s.WorkerBusy != 0 || s.QueueDwell != 0 || s.MailboxWait != 0 || s.PipelineOccupancy != 0 {
		t.Errorf("untraced run recorded timings: %+v, want zeros", s)
	}
}

// TestStatsStringRendersTable sanity-checks the text rendering.
func TestStatsStringRendersTable(t *testing.T) {
	const p, n = 2, 16
	g := NewGroup(p)
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, n)
	}
	runGroup(p, g, func(rank int) { g.AllreduceTree(rank, bufs[rank]) })
	out := g.Stats().String()
	for _, want := range []string{"comm traffic", "tree", "total", "words"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String() missing %q:\n%s", want, out)
		}
	}
}
