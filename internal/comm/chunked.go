package comm

import (
	"fmt"
	"os"
	"strconv"
	"sync"
)

// Chunked, pipelined collectives. The monolithic binomial tree ships the
// whole m-word buffer through every tree level in one message, so each
// level's transfer strictly follows the previous one and the reduce and
// broadcast phases cannot overlap: 2·m·log p words of serialized wire
// time at the root. Splitting the buffer into fixed-size chunks and
// streaming them through the tree (Sergeev & Del Balso's Horovod does
// the same over NCCL rings) lets chunk c+1 climb the reduce tree while
// chunk c descends in broadcast, collapsing the critical path to roughly
// 2·(m + chunks·latency) — the hardware's pipe rate rather than the
// algorithm's depth. AllreduceRHD is the bandwidth-optimal alternative
// for power-of-two groups: Rabenseifner's recursive halving/doubling
// moves only 2m(p−1)/p words per learner in 2·log p steps.

// DefaultChunkWords is the built-in chunk size (float64 words) of the
// pipelined collectives: 8192 words = 64 KiB, large enough that per-chunk
// latency is amortized, small enough that paper-scale models (≈0.5–2M
// params) split into dozens of pipeline stages.
const DefaultChunkWords = 8192

var (
	chunkOnce    sync.Once
	defaultChunk int
)

// DefaultChunk returns the chunk size used when a caller passes a
// non-positive chunk: the SASGD_COMM_CHUNK environment variable when set
// to a positive integer, otherwise DefaultChunkWords.
func DefaultChunk() int {
	chunkOnce.Do(func() {
		defaultChunk = DefaultChunkWords
		if s := os.Getenv("SASGD_COMM_CHUNK"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				defaultChunk = v
			}
		}
	})
	return defaultChunk
}

// AllreduceTreeChunked sums buf elementwise across all learners with a
// chunked, pipelined binomial tree, leaving the global sum in every
// learner's buf. buf is split into ⌈m/chunkWords⌉ chunks; each chunk is
// reduced to rank 0 and broadcast back exactly as AllreduceTree would
// reduce the whole buffer, so the per-element summation order — and
// therefore the result, bit for bit — is identical to the monolithic
// tree at every chunk size.
//
// Pipelining: each learner runs its reduce stream up to PipelineDepth
// chunks ahead of its broadcast stream, so while chunk c's broadcast
// descends the tree, chunks c+1 … c+PipelineDepth's partial sums are
// already climbing it. Sends are asynchronous up to the mailbox capacity
// (sized from PipelineDepth — see mailboxCap for the deadlock-freedom
// argument); reduce hand-offs are zero-copy subslices of buf (the parent
// consumes chunk c before it forwards broadcast chunk c, so the child
// cannot observe its segment being read while overwriting it), and
// broadcast copies come from the group's pool, so the steady-state
// allocation count is zero.
//
// chunkWords ≤ 0 selects DefaultChunk (SASGD_COMM_CHUNK).
func (g *Group) AllreduceTreeChunked(rank int, buf []float64, chunkWords int) {
	// entry is the learner's simulated time when the collective starts: the
	// moment every chunk's local contribution exists.
	entry := 0.0
	if g.clocks != nil {
		entry = g.clocks[rank].Now()
	}
	g.AllreduceTreeChunkedFrom(rank, buf, chunkWords, entry)
}

// AllreduceTreeChunkedFrom is AllreduceTreeChunked with an explicit data
// entry time: the simulated instant buf's contents became ready at this
// learner. The bucketed, backward-overlapped aggregation passes the
// *layer's* backward-completion time here — which can be well before the
// learner's scalar clock (already advanced to the end of the minibatch) —
// so a late layer's bucket departs on the simulated fabric while the
// early layers are still backpropagating. Values are unaffected; entry
// only stamps the wire schedule (ignored entirely without a simulation).
func (g *Group) AllreduceTreeChunkedFrom(rank int, buf []float64, chunkWords int, entry float64) {
	g.setAlgo(rank, algoPTree)
	g.allreduceTreeChunkedFrom(rank, buf, chunkWords, entry)
}

// allreduceTreeChunkedFrom is the unlabeled implementation shared by
// the "tree" (single chunk), "ptree" and non-power-of-two "rhd"
// fallback entry points: the caller sets the rank's traffic label
// before delegating, so the accounting reflects the algorithm the user
// selected rather than the machinery it lowers to.
func (g *Group) allreduceTreeChunkedFrom(rank int, buf []float64, chunkWords int, entry float64) {
	g.checkRank(rank)
	if g.p == 1 || len(buf) == 0 {
		return
	}
	if chunkWords <= 0 {
		chunkWords = DefaultChunk()
	}
	nchunks := (len(buf) + chunkWords - 1) / chunkWords
	// Each chunk's sends are stamped with the chunk's own causal ready
	// time — entry joined with the arrivals of that chunk's inputs —
	// rather than the learner's scalar clock, which the interleaved loop
	// keeps Synced to *later* chunks' arrivals and would otherwise
	// serialize the two streams (see sendMsgAt). ready ring-buffers the
	// reduce-ready times of the at most PipelineDepth chunks in flight
	// between the two streams.
	var ready [PipelineDepth + 1]float64
	reduced := 0
	for c := 0; c < nchunks; c++ {
		for reduced < nchunks && reduced < c+PipelineDepth {
			ready[reduced%(PipelineDepth+1)] = g.reduceChunk(rank, buf, reduced, chunkWords, entry)
			reduced++
		}
		g.broadcastChunk(rank, buf, c, chunkWords, ready[c%(PipelineDepth+1)])
	}
}

// chunkSeg returns chunk c of buf at the given chunk size (the final
// chunk may be short).
func chunkSeg(buf []float64, c, chunkWords int) []float64 {
	lo := c * chunkWords
	hi := lo + chunkWords
	if hi > len(buf) {
		hi = len(buf)
	}
	return buf[lo:hi]
}

// reduceChunk runs one chunk of the binomial-tree reduce: receive each
// completed subtree's partial in ascending step order (the monolithic
// ReduceTree's order, keeping summation bitwise identical), then hand
// the accumulated segment up. It returns the chunk's causal ready time —
// entry joined with the arrivals of every partial folded into the
// segment — which stamps the upward send and, at the root, gates the
// chunk's broadcast.
func (g *Group) reduceChunk(rank int, buf []float64, c, chunkWords int, entry float64) float64 {
	seg := chunkSeg(buf, c, chunkWords)
	ready := entry
	for step := 1; step < g.p; step <<= 1 {
		if rank%(2*step) != 0 {
			// Zero-copy hand-off: the parent reads seg while reducing
			// chunk c and does so before it forwards broadcast chunk c,
			// which is what gates this learner's next write to seg.
			g.sendMsgAt(rank, rank-step, Frame{Data: seg}, ready)
			return ready
		}
		if peer := rank + step; peer < g.p {
			in := g.recvMsg(rank, peer)
			if len(in.Data) != len(seg) {
				panic(fmt.Sprintf("comm: chunked reduce length mismatch %d vs %d", len(in.Data), len(seg)))
			}
			if in.Arrive > ready {
				ready = in.Arrive
			}
			addInto(seg, in.Data)
			g.releaseMsg(in)
		}
	}
	return ready
}

// broadcastChunk runs one chunk of the binomial-tree broadcast of rank
// 0's reduced segment, with pooled transfer copies. ready is the chunk's
// causal time at this learner: the root passes the chunk's reduce-ready
// time, and interior learners overwrite it with the parent's arrival
// before their own forwards (their receiving step precedes their sending
// steps in the descent).
func (g *Group) broadcastChunk(rank int, buf []float64, c, chunkWords int, ready float64) {
	seg := chunkSeg(buf, c, chunkWords)
	top := 1
	for top < g.p {
		top <<= 1
	}
	for step := top >> 1; step >= 1; step >>= 1 {
		switch {
		case rank%(2*step) == 0:
			if peer := rank + step; peer < g.p {
				pb := g.acquire(len(seg))
				copy(pb.data, seg)
				g.sendMsgAt(rank, peer, Frame{Data: pb.data, pb: pb}, ready)
			}
		case rank%(2*step) == step:
			in := g.recvMsg(rank, rank-step)
			if len(in.Data) != len(seg) {
				panic(fmt.Sprintf("comm: chunked broadcast length mismatch %d vs %d", len(in.Data), len(seg)))
			}
			ready = in.Arrive
			copy(seg, in.Data)
			g.releaseMsg(in)
		}
	}
}

// AllreduceRHD sums buf elementwise across all learners with
// Rabenseifner's recursive halving/doubling: a reduce-scatter phase that
// halves the active segment while doubling the pair distance is mirrored
// by an allgather phase that doubles the segment back, moving 2m(p−1)/p
// words per learner — the ring's bandwidth optimum — in only 2·log₂p
// latency steps. It requires a power-of-two group and falls back to the
// (bitwise-stable) binomial tree otherwise.
//
// The pairwise exchanges associate the sum differently from the binomial
// tree, so results are value-equal within floating-point reassociation
// tolerance (≈1e-12 absolute on O(1) data) rather than bit-identical;
// callers that need bit-stability use the tree family.
func (g *Group) AllreduceRHD(rank int, buf []float64) {
	entry := 0.0
	if g.clocks != nil {
		entry = g.clocks[rank].Now()
	}
	g.AllreduceRHDFrom(rank, buf, entry)
}

// AllreduceRHDFrom is AllreduceRHD with an explicit data entry time (see
// AllreduceTreeChunkedFrom). Each exchange's send is stamped with the
// running causal time of this learner's segment — entry joined with the
// arrivals already folded into it — which equals what the scalar clock
// would read in the serial case, so the plain AllreduceRHD schedule is
// unchanged.
func (g *Group) AllreduceRHDFrom(rank int, buf []float64, entry float64) {
	g.checkRank(rank)
	g.setAlgo(rank, algoRHD)
	p := g.p
	if p == 1 {
		return
	}
	if p&(p-1) != 0 {
		// Fallback traffic stays charged to "rhd": that is the algorithm
		// the caller asked for.
		g.allreduceTreeChunkedFrom(rank, buf, len(buf), entry)
		return
	}
	ready := entry
	m := len(buf)
	// Segment bounds before each halving step, reused (in reverse) by the
	// allgather. Fixed-size stacks keep the call allocation-free; 64
	// levels covers any conceivable p.
	var loStack, hiStack [64]int
	lo, hi := 0, m
	level := 0

	// Reduce-scatter by recursive vector halving: at distance d the pair
	// (rank, rank^d) split their common segment in half, each keeping the
	// half matching its d-bit and sending the other. Sends are pooled
	// copies so neither side ever aliases the other's buffer.
	for d := p / 2; d >= 1; d >>= 1 {
		loStack[level], hiStack[level] = lo, hi
		level++
		peer := rank ^ d
		mid := lo + (hi-lo)/2
		keepLo, keepHi, sendLo, sendHi := lo, mid, mid, hi
		if rank&d != 0 {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		pb := g.acquire(sendHi - sendLo)
		copy(pb.data, buf[sendLo:sendHi])
		g.sendMsgAt(rank, peer, Frame{Data: pb.data, pb: pb}, ready)
		in := g.recvMsg(rank, peer)
		if len(in.Data) != keepHi-keepLo {
			panic(fmt.Sprintf("comm: AllreduceRHD halving length mismatch %d vs %d", len(in.Data), keepHi-keepLo))
		}
		if in.Arrive > ready {
			ready = in.Arrive
		}
		addInto(buf[keepLo:keepHi], in.Data)
		g.releaseMsg(in)
		lo, hi = keepLo, keepHi
	}

	// Allgather by recursive doubling: the halving steps replayed in
	// reverse, each pair exchanging its reduced segment so both end up
	// owning the level's full segment.
	for d := 1; d < p; d <<= 1 {
		level--
		peer := rank ^ d
		pb := g.acquire(hi - lo)
		copy(pb.data, buf[lo:hi])
		g.sendMsgAt(rank, peer, Frame{Data: pb.data, pb: pb}, ready)
		in := g.recvMsg(rank, peer)
		if in.Arrive > ready {
			ready = in.Arrive
		}
		plo, phi := loStack[level], hiStack[level]
		mid := plo + (phi-plo)/2
		rl, rh := mid, phi
		if rank&d != 0 {
			rl, rh = plo, mid
		}
		if len(in.Data) != rh-rl {
			panic(fmt.Sprintf("comm: AllreduceRHD doubling length mismatch %d vs %d", len(in.Data), rh-rl))
		}
		copy(buf[rl:rh], in.Data)
		g.releaseMsg(in)
		lo, hi = plo, phi
	}
}
