package comm

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestTopKSelectsLargestMagnitude(t *testing.T) {
	dense := []float64{0.1, -5, 2, 0, -0.5, 3}
	s := TopK(dense, 3)
	want := map[int]float64{1: -5, 5: 3, 2: 2}
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	for i, j := range s.Idx {
		if want[j] != s.Val[i] {
			t.Errorf("TopK kept (%d, %g)", j, s.Val[i])
		}
		if i > 0 && s.Idx[i-1] >= j {
			t.Error("indices not strictly increasing")
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if TopK([]float64{1, 2}, 0).NNZ() != 0 {
		t.Error("k=0 kept entries")
	}
	if TopK([]float64{1, 2}, 10).NNZ() != 2 {
		t.Error("k>len did not clamp")
	}
	if TopK(nil, 3).NNZ() != 0 {
		t.Error("empty dense")
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	dense := []float64{1, -1, 1, -1}
	a := TopK(dense, 2)
	b := TopK(dense, 2)
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] {
			t.Fatal("tie-breaking not deterministic")
		}
	}
	if a.Idx[0] != 0 || a.Idx[1] != 1 {
		t.Errorf("ties should prefer low indices, got %v", a.Idx)
	}
}

func TestSparseAddTo(t *testing.T) {
	dense := make([]float64, 5)
	SparseVec{Idx: []int{1, 4}, Val: []float64{2, -3}}.AddTo(dense)
	if dense[1] != 2 || dense[4] != -3 || dense[0] != 0 {
		t.Errorf("AddTo = %v", dense)
	}
}

func TestMergeSparse(t *testing.T) {
	a := SparseVec{Idx: []int{0, 2, 5}, Val: []float64{1, 2, 3}}
	b := SparseVec{Idx: []int{2, 3}, Val: []float64{10, 20}}
	m := merge(a, b)
	wantIdx := []int{0, 2, 3, 5}
	wantVal := []float64{1, 12, 20, 3}
	if m.NNZ() != 4 {
		t.Fatalf("merge NNZ = %d", m.NNZ())
	}
	for i := range wantIdx {
		if m.Idx[i] != wantIdx[i] || m.Val[i] != wantVal[i] {
			t.Fatalf("merge = %v/%v", m.Idx, m.Val)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := SparseVec{Idx: []int{3, 7, 100000}, Val: []float64{-1.5, 2.25, 1e-9}}
	d := decodeSparse(s.encode())
	for i := range s.Idx {
		if d.Idx[i] != s.Idx[i] || d.Val[i] != s.Val[i] {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestAllreduceSparseTreeSums(t *testing.T) {
	for p := 1; p <= 9; p++ {
		const n, k = 30, 5
		rng := rand.New(rand.NewSource(int64(p)))
		dense := make([][]float64, p)
		want := make([]float64, n)
		contribs := make([]SparseVec, p)
		for r := 0; r < p; r++ {
			dense[r] = make([]float64, n)
			for i := range dense[r] {
				dense[r][i] = rng.NormFloat64()
			}
			contribs[r] = TopK(dense[r], k)
			contribs[r].AddTo(want)
		}
		g := NewGroup(p)
		results := make([]SparseVec, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				results[r] = g.AllreduceSparseTree(r, contribs[r])
			}(r)
		}
		wg.Wait()
		for r := 0; r < p; r++ {
			got := make([]float64, n)
			results[r].AddTo(got)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Fatalf("p=%d rank=%d coord %d: %g vs %g", p, r, i, got[i], want[i])
				}
			}
		}
	}
}

// Property: the sparse allreduce of full-density contributions equals the
// dense allreduce.
func TestSparseAllreduceMatchesDenseAtFullDensity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(6)
		n := 1 + rng.Intn(20)
		denseBufs := make([][]float64, p)
		contribs := make([]SparseVec, p)
		for r := 0; r < p; r++ {
			denseBufs[r] = make([]float64, n)
			for i := range denseBufs[r] {
				denseBufs[r][i] = rng.NormFloat64()
			}
			contribs[r] = TopK(denseBufs[r], n)
		}
		gd := NewGroup(p)
		gs := NewGroup(p)
		sparseOut := make([]SparseVec, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				sparseOut[r] = gs.AllreduceSparseTree(r, contribs[r])
			}(r)
		}
		wg.Wait()
		denseCopy := make([][]float64, p)
		for r := range denseBufs {
			denseCopy[r] = append([]float64(nil), denseBufs[r]...)
		}
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				gd.AllreduceTree(r, denseCopy[r])
			}(r)
		}
		wg.Wait()
		got := make([]float64, n)
		sparseOut[0].AddTo(got)
		for i := range got {
			if math.Abs(got[i]-denseCopy[0][i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSparseAllreduceMovesFewerWords(t *testing.T) {
	const p, n, k = 8, 1000, 10
	rng := rand.New(rand.NewSource(3))
	contribs := make([]SparseVec, p)
	denseBufs := make([][]float64, p)
	for r := 0; r < p; r++ {
		d := make([]float64, n)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		denseBufs[r] = d
		contribs[r] = TopK(d, k)
	}
	gs := NewGroup(p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			gs.AllreduceSparseTree(r, contribs[r])
		}(r)
	}
	wg.Wait()
	gd := NewGroup(p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			gd.AllreduceTree(r, denseBufs[r])
		}(r)
	}
	wg.Wait()
	if gs.WordsSent() >= gd.WordsSent()/5 {
		t.Errorf("sparse allreduce moved %d words vs dense %d; expected ≥5× savings at 1%% density",
			gs.WordsSent(), gd.WordsSent())
	}
}
