package comm

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestServerPushPullRoundTrip(t *testing.T) {
	init := []float64{1, 2, 3, 4, 5}
	s := NewParamServer(init, 2, nil, nil)
	grad := []float64{1, 1, 1, 1, 1}
	s.PushGrad(0, 0.5, grad)
	got := make([]float64, 5)
	s.Pull(0, got)
	for i, want := range []float64{0.5, 1.5, 2.5, 3.5, 4.5} {
		if got[i] != want {
			t.Fatalf("after push: %v", got)
		}
	}
}

func TestServerShardRanges(t *testing.T) {
	for _, nshards := range []int{1, 2, 3, 7} {
		s := NewParamServer(make([]float64, 10), nshards, nil, nil)
		if s.NumShards() != nshards {
			t.Errorf("NumShards = %d, want %d", s.NumShards(), nshards)
		}
		// Pushing a distinct gradient must hit every index exactly once.
		grad := make([]float64, 10)
		for i := range grad {
			grad[i] = float64(i)
		}
		s.PushGrad(0, 1, grad)
		got := s.Snapshot()
		for i := range got {
			if got[i] != -float64(i) {
				t.Fatalf("nshards=%d: snapshot %v", nshards, got)
			}
		}
	}
}

func TestServerMoreShardsThanParams(t *testing.T) {
	s := NewParamServer(make([]float64, 3), 8, nil, nil)
	if s.NumShards() != 3 {
		t.Errorf("shards clamped to %d, want 3", s.NumShards())
	}
}

func TestServerGenerations(t *testing.T) {
	s := NewParamServer(make([]float64, 4), 2, nil, nil)
	buf := make([]float64, 4)
	g0 := s.Pull(0, buf)
	for _, g := range g0 {
		if g != 0 {
			t.Fatalf("initial generations %v", g0)
		}
	}
	g1 := s.PushGrad(0, 1, buf)
	g2 := s.PushGrad(1, 1, buf)
	for i := range g1 {
		if g1[i] != 1 || g2[i] != 2 {
			t.Fatalf("generations after two pushes: %v then %v", g1, g2)
		}
	}
	if s.Updates() != 4 { // 2 pushes × 2 shards
		t.Errorf("Updates = %d, want 4", s.Updates())
	}
}

func TestStalenessMeasurement(t *testing.T) {
	s := NewParamServer(make([]float64, 4), 1, nil, nil)
	buf := make([]float64, 4)
	pull := s.Pull(0, buf)
	// Two foreign updates intervene.
	s.PushGrad(1, 1, buf)
	s.PushGrad(1, 1, buf)
	push := s.PushGrad(0, 1, buf)
	// push gen − pull gen − 1 (own update) = 2 foreign updates.
	if d := push[0] - pull[0] - 1; d != 2 {
		t.Errorf("staleness = %d, want 2", d)
	}
}

func TestElasticExchange(t *testing.T) {
	init := []float64{0, 0}
	s := NewParamServer(init, 1, nil, nil)
	local := []float64{10, -10}
	d, gens := s.Elastic(0, 0.5, local)
	// d = α(local − center) = {5, −5}; center += d.
	if d[0] != 5 || d[1] != -5 {
		t.Fatalf("elastic d = %v", d)
	}
	got := s.Snapshot()
	if got[0] != 5 || got[1] != -5 {
		t.Fatalf("center after elastic = %v", got)
	}
	if gens[0] != 1 {
		t.Errorf("elastic generation = %v", gens)
	}
	// Applying local -= d moves the learner toward the old center.
	local[0] -= d[0]
	local[1] -= d[1]
	if local[0] != 5 || local[1] != 5+(-10) {
		t.Fatalf("local after elastic = %v", local)
	}
}

func TestElasticFixedPoint(t *testing.T) {
	// When local == center the exchange is a no-op.
	s := NewParamServer([]float64{3, 3}, 2, nil, nil)
	local := []float64{3, 3}
	d, _ := s.Elastic(0, 0.9, local)
	for _, v := range d {
		if v != 0 {
			t.Fatalf("elastic at fixed point moved: %v", d)
		}
	}
}

func TestServerConcurrentPushes(t *testing.T) {
	// p goroutines pushing concurrently: the final parameters must equal
	// the serial sum (addition commutes), and generations must total p
	// per shard.
	const p, m = 8, 64
	s := NewParamServer(make([]float64, m), 4, nil, nil)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			grad := make([]float64, m)
			for i := range grad {
				grad[i] = rng.NormFloat64()
			}
			s.PushGrad(r, 0.1, grad)
		}(r)
	}
	wg.Wait()
	want := make([]float64, m)
	for r := 0; r < p; r++ {
		rng := rand.New(rand.NewSource(int64(r)))
		for i := range want {
			want[i] -= 0.1 * rng.NormFloat64()
		}
	}
	got := s.Snapshot()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("concurrent pushes diverge at %d: %g vs %g", i, got[i], want[i])
		}
	}
	if s.Updates() != p*4 {
		t.Errorf("Updates = %d, want %d", s.Updates(), p*4)
	}
}

func TestServerLengthMismatchPanics(t *testing.T) {
	s := NewParamServer(make([]float64, 4), 1, nil, nil)
	for name, fn := range map[string]func(){
		"push":    func() { s.PushGrad(0, 1, make([]float64, 3)) },
		"pull":    func() { s.Pull(0, make([]float64, 5)) },
		"elastic": func() { s.Elastic(0, 0.5, make([]float64, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with wrong length did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// fixedCost charges one second per server op and nothing for transfers,
// making clock accounting easy to assert.
type fixedCost struct{}

func (fixedCost) XferTime(int, int, int) float64     { return 0 }
func (fixedCost) ServerOpTime(int, int, int) float64 { return 1 }

type recClock struct{ now, comm float64 }

func (c *recClock) Now() float64       { return c.now }
func (c *recClock) Advance(dt float64) { c.now += dt }
func (c *recClock) Sync(t float64) {
	if t > c.now {
		c.comm += t - c.now
		c.now = t
	}
}

func TestServerChargesClock(t *testing.T) {
	clk := &recClock{}
	s := NewParamServer(make([]float64, 4), 2, []Clock{clk}, fixedCost{})
	buf := make([]float64, 4)
	s.PushGrad(0, 1, buf)  // 1 op
	s.Pull(0, buf)         // 1 op
	s.Elastic(0, 0.5, buf) // 2 ops
	if clk.comm != 4 {
		t.Errorf("clock charged %g seconds, want 4", clk.comm)
	}
}
