package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sasgd/internal/obs"
)

// PipelineDepth is the pipeline window of the chunked collectives: the
// maximum number of chunks a learner's reduce stream may run ahead of its
// broadcast stream (see AllreduceTreeChunked). It also sizes the per-pair
// mailboxes, so the two must move together.
const PipelineDepth = 8

// mailboxCap is the minimum per-directed-link buffering every
// transport must provide (the channel fabric's per-(sender, receiver)
// channel capacity, the TCP backend's per-link outbox and inbox
// capacities), sized from the pipeline depth rather than a guessed
// constant.
//
// Deadlock-freedom argument: every collective is a fixed schedule of
// sends and receives that both endpoints of a pair walk in the same
// per-pair order (bulk-synchronous discipline), so a receive can only
// wait for a send that its peer has not issued yet, and the dependency
// graph of receives follows the collective's dataflow — chunk index
// major, tree level minor — which is acyclic. Sends therefore only block
// when a mailbox is full. The windowed pipelined tree bounds the number
// of undelivered messages per pair: a child may run its reduce stream at
// most PipelineDepth chunks past its last finished broadcast chunk, and
// its parent consumes reduce chunk c before forwarding broadcast chunk c,
// so at most PipelineDepth reduce messages plus the one broadcast a
// parent can publish ahead of a gating child are ever queued on one pair.
// All other collectives keep at most two messages in flight per pair.
// With capacity PipelineDepth+2 sends never block, leaving only the
// acyclic receive dependencies — no cycle, no deadlock.
const mailboxCap = PipelineDepth + 2

// Group is a fixed set of p learners that communicate through a
// Transport — by default a matrix of buffered per-(sender, receiver)
// channels — giving MPI-like ordered point-to-point semantics on which
// the collectives are built.
//
// A Group may be constructed with per-learner simulated clocks and a
// fabric cost model; every send then stamps its message with an arrival
// time and every receive synchronizes the receiver's clock, so collective
// completion times fall out of the actual message schedule rather than a
// closed-form estimate. Successive transfers on the same directed pair
// are serialized on the simulated link (a chunk cannot depart before the
// previous chunk has drained), which is what makes the chunked,
// pipelined collectives show their real overlap instead of a fictitious
// p-fold bandwidth.
type Group struct {
	p  int
	tr Transport
	// trMap maps the group's virtual ranks to transport ranks (nil =
	// identity). Re-formed survivor groups address the original
	// transport's physical rank space through it.
	trMap []int
	// allLocal is true when every transport rank is driven by this
	// process; epoch barriers then use the in-process barrier (which
	// also aligns simulated clocks). A multi-process group synchronizes
	// with a 1-word wire barrier over the transport instead.
	allLocal bool
	clocks   []Clock
	cost     CostModel
	bar      *Barrier
	pool     *bufPool // payload recycling, shared with the transport when it owns one

	// done is closed by Close: it unblocks link daemons (including their
	// ack waits) and fault-path sends still queueing behind them, making
	// Close safe against in-flight traffic. closed makes Close
	// idempotent under concurrent calls.
	done   chan struct{}
	closed atomic.Bool

	// linkFree[from][to] is the simulated time at which the directed
	// (from → to) link finishes its last accepted transfer; nil when the
	// group is unsimulated. Each row is written only by the goroutine
	// driving rank `from`, so no locking is needed.
	linkFree [][]float64

	// stats holds the per-rank traffic/timing counters behind Stats()
	// and WordsSent() — see stats.go for the accounting rules.
	stats []rankStats

	// islandOf optionally maps each rank to an interconnect island so
	// deliver can account cross-island traffic. Published atomically
	// (SetIslands, stats.go) because hierarchy construction — per-rank at
	// spawn, and per-survivor on a fault re-form — installs the map while
	// peers are already sending.
	islandOf atomic.Pointer[[]int]

	// sinks[rank], when non-nil, captures rank's receive-side clock
	// syncs instead of applying them (see DeferSync). Allocated eagerly
	// so setSink involves no shared-slice allocation; each cell is
	// written only by the goroutine currently driving that rank.
	sinks []*DeferSync

	// tracer is the optional obs tracer (SetTracer); traceOn caches its
	// presence so untraced receives skip the clock reads entirely.
	tracer  *obs.Tracer
	traceOn bool

	// Fault-injection state (nil/false without an attached FaultPlan).
	// fab is the shared fabric — sequence counters, ack channels, fault
	// counters — which outlives this group when the membership layer
	// re-forms smaller groups; phys maps the group's virtual ranks to the
	// fabric's physical ranks (nil = identity). faultRoute is true when
	// the plan actually perturbs the data plane, in which case every
	// point-to-point transfer runs through a per-directed-link daemon
	// doing acknowledged stop-and-wait delivery. The daemon for a link is
	// then the sole writer of that link's linkFree cell, preserving the
	// single-writer invariant the unfaulted path relies on.
	fab        *faultFabric
	phys       []int
	faultRoute bool
	dMu        sync.Mutex
	daemons    map[int]*linkDaemon
}

// NewGroup returns a group of p learners with no time simulation.
func NewGroup(p int) *Group { return NewSimGroup(p, nil, nil) }

// NewSimGroup returns a group of p learners over a fresh in-process
// channel fabric, with communication charged to the given clocks using
// the given cost model. clocks may be nil (no simulation); if non-nil
// it must have length p.
func NewSimGroup(p int, clocks []Clock, cost CostModel) *Group {
	if p <= 0 {
		panic(fmt.Sprintf("comm: NewGroup(%d): group size must be positive", p))
	}
	return NewTransportGroup(newChanTransport(p), nil, clocks, cost)
}

// NewTransportGroup builds a group over an existing transport. phys
// maps the group's virtual ranks to transport ranks: nil means
// identity (group size = tr.Size()); otherwise the group has len(phys)
// learners addressing the listed transport ranks, which is how
// re-formed survivor groups keep speaking over the original wire mesh.
// The transport may be shared across groups — the caller must ensure
// only one group drives a given transport rank at a time (membership
// re-forms are synchronization points, so this holds by construction
// there). clocks may be nil; simulation requires every transport rank
// local to this process.
func NewTransportGroup(tr Transport, phys []int, clocks []Clock, cost CostModel) *Group {
	p := tr.Size()
	if phys != nil {
		p = len(phys)
		for _, r := range phys {
			checkTransportRank(tr, r)
		}
	}
	if p <= 0 {
		panic(fmt.Sprintf("comm: NewTransportGroup(%d): group size must be positive", p))
	}
	if clocks != nil && len(clocks) != p {
		panic(fmt.Sprintf("comm: NewTransportGroup got %d clocks for %d learners", len(clocks), p))
	}
	g := &Group{p: p, tr: tr, trMap: phys, clocks: clocks, cost: cost,
		bar: NewBarrier(p), done: make(chan struct{}),
		stats: make([]rankStats, p), sinks: make([]*DeferSync, p)}
	if lt, ok := tr.(allLocalTransport); ok {
		g.allLocal = lt.AllLocal()
	}
	if clocks != nil && !g.allLocal {
		panic("comm: simulated clocks require an all-local transport")
	}
	if pt, ok := tr.(pooledTransport); ok {
		g.pool = pt.bufferPool()
	} else {
		g.pool = new(bufPool)
	}
	if clocks != nil && cost != nil {
		g.linkFree = make([][]float64, p)
		for from := range g.linkFree {
			g.linkFree[from] = make([]float64, p)
		}
	}
	return g
}

// Transport returns the transport the group is built over.
func (g *Group) Transport() Transport { return g.tr }

// trRank maps a virtual rank of this group to its transport rank.
func (g *Group) trRank(v int) int {
	if g.trMap == nil {
		return v
	}
	return g.trMap[v]
}

// Size returns the number of learners in the group.
func (g *Group) Size() int { return g.p }

// Clock returns learner rank's simulated clock (a no-op clock when the
// group was built without simulation).
func (g *Group) Clock(rank int) Clock {
	if g.clocks == nil {
		return nullClock{}
	}
	return g.clocks[rank]
}

// Send transfers data from learner `from` to learner `to`. The slice is
// handed off, not copied: the sender must not reuse it until the receiver
// is done (the collectives draw transfer copies from the group's pool
// where needed). Traffic is charged to the "p2p" bucket; the collectives
// use the internal sends so their own labels stick.
func (g *Group) Send(from, to int, data []float64) {
	g.setAlgo(from, algoP2P)
	g.sendMsg(from, to, Frame{Data: data})
}

// sendMsg is the internal send: the payload is ready at the sender's
// current simulated time. m.pb marks pool-owned payloads the receiver
// must release.
func (g *Group) sendMsg(from, to int, m Frame) {
	ready := 0.0
	if g.linkFree != nil {
		ready = g.clocks[from].Now()
	}
	g.sendMsgAt(from, to, m, ready)
}

// sendMsgAt is sendMsg with an explicit data-ready time: the simulated
// instant the payload's value dependencies were satisfied. The chunked
// collectives pass the causal time of the individual chunk (its inputs'
// arrivals) rather than the rank's scalar clock, because the clock also
// absorbs the rank's *other* stream — a broadcast arrival must not delay
// the departure of an independent reduce chunk, or the two pipelined
// streams would falsely serialize into half-duplex. The transfer departs
// once the data is ready and the directed link has drained its previous
// message, which is what makes chunk-level pipelining visible to the
// fabric simulation.
func (g *Group) sendMsgAt(from, to int, m Frame, ready float64) {
	g.checkRank(from)
	g.checkRank(to)
	if g.faultRoute && from != to {
		// Selecting on done keeps a sender parked behind a stopped
		// daemon's full queue from hanging (or panicking on a closed
		// channel) when Close races the send.
		select {
		case g.daemon(from, to).q <- xfer{m: m, ready: ready}:
		case <-g.done:
		}
		return
	}
	g.deliver(from, to, m, ready, 0)
}

// deliver is the transport-insertion core of sendMsgAt: stamp the
// simulated arrival (departure = data ready ∨ link drained, plus the
// transfer time and any injected extra latency), charge the sender's
// traffic counters, hand the frame to the transport. On the fault path
// it is called only by the link's daemon goroutine, which keeps
// linkFree single-writer. Running the stamping, accounting, and (via
// sendMsgAt) the fault daemons above the transport is what makes every
// backend carry identical Stats and FaultPlan behavior.
func (g *Group) deliver(from, to int, m Frame, ready, extraDelay float64) {
	if g.linkFree != nil {
		depart := ready
		if busy := g.linkFree[from][to]; busy > depart {
			depart = busy
		}
		m.Arrive = depart + g.cost.XferTime(from, to, len(m.Data)) + extraDelay
		g.linkFree[from][to] = m.Arrive
	}
	g.charge(from, to, len(m.Data))
	g.tr.Send(g.trRank(from), g.trRank(to), m)
}

// daemon returns (lazily starting) the stop-and-wait daemon for the
// directed virtual link from→to.
func (g *Group) daemon(from, to int) *linkDaemon {
	key := from*g.p + to
	g.dMu.Lock()
	defer g.dMu.Unlock()
	d, ok := g.daemons[key]
	if !ok {
		d = &linkDaemon{
			g: g, from: from, to: to,
			pf: g.physRank(from), pt: g.physRank(to),
			q: make(chan xfer, 2*mailboxCap),
		}
		g.daemons[key] = d
		go d.run()
	}
	return d
}

// physRank maps a virtual rank of this group to its physical rank in
// the fault fabric's index space (identity without a membership map).
func (g *Group) physRank(v int) int {
	if g.phys == nil {
		return v
	}
	return g.phys[v]
}

// attachFaults wires the group into a fault fabric, with phys mapping
// the group's virtual ranks to the fabric's physical ranks (nil =
// identity; otherwise len(phys) must equal the group size). Call before
// any communication.
func (g *Group) attachFaults(fab *faultFabric, phys []int) {
	if phys != nil && len(phys) != g.p {
		panic(fmt.Sprintf("comm: attachFaults got %d physical ranks for %d learners", len(phys), g.p))
	}
	g.fab = fab
	g.phys = phys
	g.faultRoute = fab != nil && fab.plan.linkFaultsActive()
	if g.faultRoute {
		g.daemons = make(map[int]*linkDaemon)
	}
}

// InjectFaults activates a fault plan on this standalone group: drops,
// delays and the acknowledged-delivery protocol per the plan, with the
// group's ranks as the physical rank space. The injected fault counters
// appear in Stats().Faults. For crash/eviction-tolerant runs use
// NewResilient, which shares one fabric across re-formed groups.
func (g *Group) InjectFaults(plan *FaultPlan) {
	if plan == nil {
		return
	}
	g.attachFaults(newFaultFabric(g.p, plan, g.tracer), nil)
}

// Close shuts the group down: stops the link daemons, unblocks any
// fault-path send still queueing behind them, and closes the group's
// transport (idempotent on every backend, so groups sharing a
// transport — re-formed survivor views — may each close it).
// Idempotent and safe to call concurrently with in-flight sends, which
// are dropped: call after all collectives have completed, or accept
// that transfers in flight at Close are lost.
func (g *Group) Close() {
	if !g.closed.CompareAndSwap(false, true) {
		return
	}
	close(g.done)
	g.tr.Close()
}

// Recv blocks until a message from learner `from` arrives at learner
// `to`, synchronizes to's clock with the arrival time, and returns the
// payload.
func (g *Group) Recv(to, from int) []float64 {
	return g.recvMsg(to, from).Data
}

// recvMsg is the internal receive; collectives use it to get the pool
// ownership marker alongside the payload. With a tracer attached the
// blocking time on the mailbox is accumulated into the receiving rank's
// mailbox-wait counter; untraced groups skip the clock reads.
func (g *Group) recvMsg(to, from int) Frame {
	g.checkRank(from)
	g.checkRank(to)
	if g.faultRoute && from != to {
		return g.recvReliable(to, from)
	}
	var m Frame
	if g.traceOn {
		t0 := time.Now()
		m = g.tr.Recv(g.trRank(to), g.trRank(from))
		g.stats[to].mailboxWaitNs.Add(time.Since(t0).Nanoseconds())
	} else {
		m = g.tr.Recv(g.trRank(to), g.trRank(from))
	}
	if g.clocks != nil {
		g.syncClock(to, m.Arrive)
	}
	return m
}

// syncClock applies a receive-side arrival time to rank to's simulated
// clock — or, when a DeferSync sink is installed for the rank (the
// delayed-application comm worker), records it into the sink instead.
// Routing through the sink is what keeps delayed-mode simulated times
// deterministic: the comm worker's arrivals would otherwise race the
// learner's own clock advances, and Sync/Advance do not commute.
func (g *Group) syncClock(to int, arrive float64) {
	if s := g.sinks[to]; s != nil {
		s.capture(arrive)
		return
	}
	g.clocks[to].Sync(arrive)
}

// setSink installs (or, with nil, removes) rank's DeferSync sink. Must
// be called by the goroutine currently driving the rank's receives,
// with no receive in flight.
func (g *Group) setSink(rank int, d *DeferSync) { g.sinks[rank] = d }

// DeferSync accumulates receive-side clock syncs that must not be
// applied to the rank's clock yet: the delayed-application engine runs
// its collectives on the comm worker while the learner's clock advances
// through the next round's compute, so arrival times are captured here
// and folded in at the next boundary (Join). Single-writer: only the
// rank's comm worker captures, and the learner reads/Joins only after
// waiting on every in-flight handle.
type DeferSync struct{ mark float64 }

func (d *DeferSync) capture(t float64) {
	if t > d.mark {
		d.mark = t
	}
}

// Mark returns the latest captured arrival time (0 if none).
func (d *DeferSync) Mark() float64 { return d.mark }

// Join folds the captured arrivals into clock — charging only the part
// of the communication that compute did not already hide — and resets
// the sink for the next round.
func (d *DeferSync) Join(c Clock) {
	c.Sync(d.mark)
	d.mark = 0
}

// recvReliable is the receive side of the acknowledged-delivery
// protocol: consume mailbox messages, discard duplicates left behind by
// spurious retransmissions (re-acknowledging them so the accounting
// stays honest), acknowledge the first copy of the expected sequence
// number on consumption, and return it. The link's dedup cursor is
// written only by the goroutine currently driving the receiving rank,
// which under bulk-synchronous collectives is never concurrent with
// itself — including across group re-formations, whose boundaries are
// synchronization points.
func (g *Group) recvReliable(to, from int) Frame {
	fab := g.fab
	li := fab.linkIdx(g.physRank(from), g.physRank(to))
	for {
		var m Frame
		if g.traceOn {
			t0 := time.Now()
			m = g.tr.Recv(g.trRank(to), g.trRank(from))
			g.stats[to].mailboxWaitNs.Add(time.Since(t0).Nanoseconds())
		} else {
			m = g.tr.Recv(g.trRank(to), g.trRank(from))
		}
		seq := m.Seq - 1 // wire stamps are seq+1 so the zero value is never a valid stamp
		if seq < fab.expect[li] {
			fab.acks[li] <- seq
			g.releaseMsg(m)
			continue
		}
		fab.expect[li] = seq + 1
		fab.acks[li] <- seq
		if g.clocks != nil {
			g.syncClock(to, m.Arrive)
		}
		return m
	}
}

func (g *Group) checkRank(r int) {
	if r < 0 || r >= g.p {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", r, g.p))
	}
}

// Barrier blocks until all p learners have called it. When the group is
// simulated, all clocks are synchronized to the latest arrival, matching
// bulk-synchronous semantics. On a multi-process transport the barrier
// runs over the wire instead (no shared memory to park on).
func (g *Group) Barrier(rank int) {
	g.checkRank(rank)
	if !g.allLocal {
		g.wireBarrier(rank)
		return
	}
	if g.clocks == nil {
		g.bar.Wait()
		return
	}
	t := g.bar.WaitMax(g.clocks[rank].Now())
	g.clocks[rank].Sync(t)
}

// wireBarrier synchronizes the group through the transport itself — a
// 1-word reduce to rank 0 followed by a broadcast — for multi-process
// groups, where no in-process barrier can exist. The 2(p−1) words it
// moves are charged to the tree/bcast buckets like any other
// collective (all-local groups, including TCP loopback, use the
// in-process barrier, so their traffic pins match the channel fabric
// exactly).
func (g *Group) wireBarrier(rank int) {
	pb := g.acquire(1)
	pb.data[0] = 0
	g.ReduceTree(rank, pb.data)
	g.BroadcastTree(rank, pb.data)
	g.pool.release(pb)
}

// Barrier is a reusable p-party synchronization point that additionally
// computes the maximum of the values its waiters contribute (used to
// align simulated clocks).
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	phase   int
	maxVal  float64
	outVal  float64
}

// NewBarrier returns a reusable barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("comm: NewBarrier(%d): party count must be positive", n))
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n parties have called Wait.
func (b *Barrier) Wait() { b.WaitMax(0) }

// WaitMax blocks until all n parties have called WaitMax and returns the
// maximum value contributed across them.
func (b *Barrier) WaitMax(v float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v > b.maxVal {
		b.maxVal = v
	}
	b.waiting++
	if b.waiting == b.n {
		b.outVal = b.maxVal
		b.maxVal = 0
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		return b.outVal
	}
	phase := b.phase
	for phase == b.phase {
		b.cond.Wait()
	}
	return b.outVal
}
