package comm

import (
	"fmt"
	"sync"
)

// message is one point-to-point transfer between learners. arrive is the
// simulated time at which the payload is fully received (0 when the group
// has no cost model).
type message struct {
	data   []float64
	arrive float64
}

// Group is a fixed set of p learners that communicate through buffered
// per-(sender, receiver) channels, giving MPI-like ordered point-to-point
// semantics on which the collectives are built.
//
// A Group may be constructed with per-learner simulated clocks and a
// fabric cost model; every send then stamps its message with an arrival
// time and every receive synchronizes the receiver's clock, so collective
// completion times fall out of the actual message schedule rather than a
// closed-form estimate.
type Group struct {
	p      int
	mail   [][]chan message // mail[to][from]
	clocks []Clock
	cost   CostModel
	bar    *Barrier

	mu        sync.Mutex
	wordsSent int64 // total float64 words moved, for the traffic accounting tests
}

// NewGroup returns a group of p learners with no time simulation.
func NewGroup(p int) *Group { return NewSimGroup(p, nil, nil) }

// NewSimGroup returns a group of p learners whose communication is
// charged to the given clocks using the given cost model. clocks may be
// nil (no simulation); if non-nil it must have length p.
func NewSimGroup(p int, clocks []Clock, cost CostModel) *Group {
	if p <= 0 {
		panic(fmt.Sprintf("comm: NewGroup(%d): group size must be positive", p))
	}
	if clocks != nil && len(clocks) != p {
		panic(fmt.Sprintf("comm: NewSimGroup got %d clocks for %d learners", len(clocks), p))
	}
	g := &Group{p: p, clocks: clocks, cost: cost, bar: NewBarrier(p)}
	g.mail = make([][]chan message, p)
	for to := range g.mail {
		g.mail[to] = make([]chan message, p)
		for from := range g.mail[to] {
			// Buffer a few messages so simple send-then-recv exchanges
			// don't deadlock; collectives never have more than one
			// outstanding message per (from, to) pair.
			g.mail[to][from] = make(chan message, 4)
		}
	}
	return g
}

// Size returns the number of learners in the group.
func (g *Group) Size() int { return g.p }

// Clock returns learner rank's simulated clock (a no-op clock when the
// group was built without simulation).
func (g *Group) Clock(rank int) Clock {
	if g.clocks == nil {
		return nullClock{}
	}
	return g.clocks[rank]
}

// WordsSent returns the total number of float64 words sent through the
// group so far (point-to-point only; server traffic is accounted by the
// server).
func (g *Group) WordsSent() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.wordsSent
}

// Send transfers data from learner `from` to learner `to`. The slice is
// handed off, not copied: the sender must not reuse it until the receiver
// is done (the collectives allocate fresh buffers where needed).
func (g *Group) Send(from, to int, data []float64) {
	g.checkRank(from)
	g.checkRank(to)
	arrive := 0.0
	if g.clocks != nil && g.cost != nil {
		arrive = g.clocks[from].Now() + g.cost.XferTime(from, to, len(data))
	}
	g.mu.Lock()
	g.wordsSent += int64(len(data))
	g.mu.Unlock()
	g.mail[to][from] <- message{data: data, arrive: arrive}
}

// Recv blocks until a message from learner `from` arrives at learner
// `to`, synchronizes to's clock with the arrival time, and returns the
// payload.
func (g *Group) Recv(to, from int) []float64 {
	g.checkRank(from)
	g.checkRank(to)
	m := <-g.mail[to][from]
	if g.clocks != nil {
		g.clocks[to].Sync(m.arrive)
	}
	return m.data
}

func (g *Group) checkRank(r int) {
	if r < 0 || r >= g.p {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", r, g.p))
	}
}

// Barrier blocks until all p learners have called it. When the group is
// simulated, all clocks are synchronized to the latest arrival, matching
// bulk-synchronous semantics.
func (g *Group) Barrier(rank int) {
	g.checkRank(rank)
	if g.clocks == nil {
		g.bar.Wait()
		return
	}
	t := g.bar.WaitMax(g.clocks[rank].Now())
	g.clocks[rank].Sync(t)
}

// Barrier is a reusable p-party synchronization point that additionally
// computes the maximum of the values its waiters contribute (used to
// align simulated clocks).
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	phase   int
	maxVal  float64
	outVal  float64
}

// NewBarrier returns a reusable barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("comm: NewBarrier(%d): party count must be positive", n))
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n parties have called Wait.
func (b *Barrier) Wait() { b.WaitMax(0) }

// WaitMax blocks until all n parties have called WaitMax and returns the
// maximum value contributed across them.
func (b *Barrier) WaitMax(v float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v > b.maxVal {
		b.maxVal = v
	}
	b.waiting++
	if b.waiting == b.n {
		b.outVal = b.maxVal
		b.maxVal = 0
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		return b.outVal
	}
	phase := b.phase
	for phase == b.phase {
		b.cond.Wait()
	}
	return b.outVal
}
