package comm

import (
	"fmt"
	"sort"
	"testing"
	"time"
)

// benchTransportGroup builds a p-rank group over the named backend;
// cleanup closes the TCP mesh.
func benchTransportGroup(b *testing.B, backend string, p int) *Group {
	b.Helper()
	switch backend {
	case "chan":
		return NewGroup(p)
	case "tcp":
		tr, err := NewTCPLoopback(p)
		if err != nil {
			b.Fatal(err)
		}
		g := NewTransportGroup(tr, nil, nil, nil)
		b.Cleanup(g.Close)
		return g
	default:
		panic("unknown backend " + backend)
	}
}

// BenchmarkTransportAllreduce compares allreduce throughput on the
// in-process channel fabric against TCP loopback — the wire tax of real
// sockets, framing and CRC at identical algorithm schedules. The name
// encodes m so bench_transport.sh can derive words/sec.
func BenchmarkTransportAllreduce(b *testing.B) {
	const p = 4
	for _, backend := range []string{"chan", "tcp"} {
		for _, m := range []int{1 << 10, 1 << 16} {
			b.Run(fmt.Sprintf("%s/p%d/m%d", backend, p, m), func(b *testing.B) {
				g := benchTransportGroup(b, backend, p)
				bufs := make([][]float64, p)
				for r := range bufs {
					bufs[r] = make([]float64, m)
					for i := range bufs[r] {
						bufs[r][i] = float64(r*m + i)
					}
				}
				b.SetBytes(int64(8 * m))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runGroup(p, g, func(rank int) { g.AllreduceTree(rank, bufs[rank]) })
				}
			})
		}
	}
}

// BenchmarkTransportFrameLatency ping-pongs one-word frames across a
// single link and reports the one-way latency distribution (rtt/2) as
// p50-ns/p99-ns metrics — the per-frame cost floor under each backend.
// ns/op is the full round trip.
func BenchmarkTransportFrameLatency(b *testing.B) {
	for _, backend := range []string{"chan", "tcp"} {
		b.Run(backend, func(b *testing.B) {
			var tr Transport
			switch backend {
			case "chan":
				tr = newChanTransport(2)
			case "tcp":
				tcp, err := NewTCPLoopback(2)
				if err != nil {
					b.Fatal(err)
				}
				tr = tcp
			}
			defer tr.Close()
			var pool *bufPool
			if pt, ok := tr.(pooledTransport); ok {
				pool = pt.bufferPool()
			}
			release := func(f Frame) {
				if pool != nil && f.pb != nil {
					pool.release(f.pb)
				}
			}
			go func() { // echo peer: bounce every ping straight back
				for {
					f := tr.Recv(1, 0)
					if f.Seq < 0 { // shutdown sentinel
						release(f)
						return
					}
					tr.Send(1, 0, f) // pooled buffer ownership moves to the writer
				}
			}()
			ping := []float64{42}
			lat := make([]time.Duration, 0, b.N)
			// Warm the path (connection buffers, pools) before timing.
			for i := 0; i < 100; i++ {
				tr.Send(0, 1, Frame{Data: ping, Seq: int64(i)})
				release(tr.Recv(0, 1))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				tr.Send(0, 1, Frame{Data: ping, Seq: int64(i)})
				f := tr.Recv(0, 1)
				lat = append(lat, time.Since(t0)/2)
				release(f)
			}
			b.StopTimer()
			tr.Send(0, 1, Frame{Data: ping, Seq: -1}) // stop the echo peer
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			if len(lat) > 0 {
				b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
				b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
			}
		})
	}
}
