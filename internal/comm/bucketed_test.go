package comm

import (
	"math"
	"math/rand"
	"runtime/debug"
	"testing"

	"sasgd/internal/parallel"
)

// bucketPartitions returns the bucket partitions the equivalence tests
// sweep for an m-word buffer: one bucket, a few uneven buckets, and a
// many-bucket split — the shapes core produces for bucket counts
// {1, 3, layers}.
func bucketPartitions(m int) [][]Segment {
	parts := [][]Segment{{{0, m}}}
	if m >= 3 {
		third := m / 3
		parts = append(parts, []Segment{
			{0, third},
			{third, third},
			{2 * third, m - 2*third},
		})
	}
	if m >= 8 {
		var many []Segment
		for off := 0; off < m; {
			n := 1 + (off*7)%5 // 1..5 words, deterministic and uneven
			if off+n > m {
				n = m - off
			}
			many = append(many, Segment{off, n})
			off += n
		}
		parts = append(parts, many)
	}
	return parts
}

// runBucketed runs one full bucketed allreduce round on every rank of g:
// buckets submitted in reverse segment order (the backward pass's layer
// finalization order), all handles waited, worker closed. ready gives the
// per-bucket entry stamp; rhd selects BeginRHD.
func runBucketed(p int, g *Group, bufs [][]float64, segs []Segment, chunk int, rhd bool, ready func(bucket int) float64) {
	runGroup(p, g, func(rank int) {
		b := NewBucketedAllreduce(g, rank, segs, 0)
		handles := make([]Handle, len(segs))
		for i := len(segs) - 1; i >= 0; i-- {
			r := 0.0
			if ready != nil {
				r = ready(i)
			}
			if rhd {
				handles[i] = b.BeginRHD(i, bufs[rank], r)
			} else {
				handles[i] = b.Begin(i, bufs[rank], chunk, r)
			}
		}
		for i := range handles {
			handles[i].Wait()
		}
		b.Close()
	})
}

// TestBucketedAllreduceBitwiseMatchesTree pins the tentpole determinism
// claim: at every bucket partition, chunk size, and group size, the
// concatenation of per-bucket tree allreduces is bitwise identical to the
// monolithic whole-buffer tree — the binomial tree's per-element summation
// order depends only on the rank tree, never on segment boundaries.
func TestBucketedAllreduceBitwiseMatchesTree(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		for _, m := range []int{1, 23, 129} {
			orig, want := makeBufs(p, m, int64(7000*p+m))
			for pi, segs := range bucketPartitions(m) {
				for _, chunk := range []int{0, 3, m + 1} {
					got := cloneBufs(orig)
					g := NewGroup(p)
					runBucketed(p, g, got, segs, chunk, false, nil)
					for r := 0; r < p; r++ {
						for i := range want {
							if got[r][i] != want[i] {
								t.Fatalf("p=%d m=%d part=%d chunk=%d rank=%d[%d]: bucketed %g != tree %g (must be bitwise)",
									p, m, pi, chunk, r, i, got[r][i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestBucketedAllreduceRHDMatchesDense: per-bucket recursive
// halving/doubling reassociates within each bucket, so it is value-equal
// to the dense tree within reassociation tolerance (and exactly equal for
// non-power-of-two groups, where each bucket falls back to the tree).
func TestBucketedAllreduceRHDMatchesDense(t *testing.T) {
	const tol = 1e-12
	for _, p := range []int{2, 3, 5, 8} {
		m := 129
		orig, want := makeBufs(p, m, int64(9000+p))
		for pi, segs := range bucketPartitions(m) {
			got := cloneBufs(orig)
			g := NewGroup(p)
			runBucketed(p, g, got, segs, 0, true, nil)
			for r := 0; r < p; r++ {
				for i := range want {
					if d := math.Abs(got[r][i] - want[i]); d > tol {
						t.Fatalf("p=%d part=%d rank=%d[%d]: bucketed rhd %g vs tree %g (|Δ|=%g)",
							p, pi, r, i, got[r][i], want[i], d)
					}
					if p&(p-1) != 0 && got[r][i] != want[i] {
						t.Fatalf("p=%d part=%d rank=%d[%d]: rhd fallback %g != tree %g (must be bitwise)",
							p, pi, r, i, got[r][i], want[i])
					}
				}
			}
		}
	}
}

// TestBucketedAllreduceMatchesMonolithicTraffic: bucketing changes the
// schedule, not the wire volume — still 2(p−1)m words group-wide for the
// tree family.
func TestBucketedAllreduceMatchesMonolithicTraffic(t *testing.T) {
	p, m := 5, 120
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, m)
	}
	g := NewGroup(p)
	runBucketed(p, g, bufs, bucketPartitions(m)[1], 16, false, nil)
	want := int64(2 * (p - 1) * m)
	if got := g.WordsSent(); got != want {
		t.Errorf("bucketed tree WordsSent = %d, want %d", got, want)
	}
}

// TestBucketedConcurrentHandleStress hammers the handle lifecycle under
// the race detector: many rounds of submit-all-then-wait with rotating
// inflight windows and fresh random data, each round's result checked
// bitwise against the monolithic tree. check.sh runs this twice with
// -race via the Overlap|Bucketed pattern.
func TestBucketedConcurrentHandleStress(t *testing.T) {
	const p, m, rounds = 5, 97, 30
	segs := bucketPartitions(m)[2] // many small uneven buckets
	rng := rand.New(rand.NewSource(11))
	g := NewGroup(p)

	for round := 0; round < rounds; round++ {
		orig := make([][]float64, p)
		for r := range orig {
			orig[r] = make([]float64, m)
			for i := range orig[r] {
				orig[r][i] = rng.NormFloat64()
			}
		}
		want := cloneBufs(orig)
		gw := NewGroup(p)
		runGroup(p, gw, func(rank int) { gw.AllreduceTree(rank, want[rank]) })

		got := cloneBufs(orig)
		inflight := 1 + round%len(segs)
		runGroup(p, g, func(rank int) {
			b := NewBucketedAllreduce(g, rank, segs, inflight)
			handles := make([]Handle, len(segs))
			for i := len(segs) - 1; i >= 0; i-- {
				handles[i] = b.Begin(i, got[rank], 4, 0)
			}
			for i := range handles {
				handles[i].Wait()
			}
			b.Close()
		})
		for r := 0; r < p; r++ {
			for i := range want[0] {
				if got[r][i] != want[0][i] {
					t.Fatalf("round %d inflight=%d rank=%d[%d]: %g != %g",
						round, inflight, r, i, got[r][i], want[0][i])
				}
			}
		}
	}
}

// TestBucketedOverlapEarlierReadyFinishesEarlier is the simulated-fabric
// payoff test: stamping each bucket with its layer's backward-completion
// time (instead of the learner's end-of-batch clock) must strictly shrink
// the fleet's completion time on a bandwidth-dominated fabric, because
// early buckets' transfers occupy the links while the rest of the
// backward pass is still "computing".
func TestBucketedOverlapEarlierReadyFinishesEarlier(t *testing.T) {
	const p, m = 8, 1 << 14
	const batchEnd = 1 << 15 // simulated seconds of backward compute
	segs := []Segment{{0, m / 4}, {m / 4, m / 4}, {m / 2, m / 4}, {3 * m / 4, m / 4}}

	run := func(ready func(bucket int) float64) float64 {
		clocks := make([]Clock, p)
		for i := range clocks {
			clocks[i] = &simpleClock{now: 0}
		}
		g := NewSimGroup(p, clocks, wordCost{})
		bufs := make([][]float64, p)
		for r := range bufs {
			bufs[r] = make([]float64, m)
		}
		runBucketed(p, g, bufs, segs, m/32, false, ready)
		max := 0.0
		for _, c := range clocks {
			if c.Now() > max {
				max = c.Now()
			}
		}
		return max
	}

	serial := run(func(int) float64 { return batchEnd })
	// Backward finalizes the last bucket first: launched first, ready
	// earliest; bucket 0 is ready only at the end of the pass.
	n := len(segs)
	overlapped := run(func(i int) float64 {
		return batchEnd * float64(n-1-i) / float64(n)
	})
	if overlapped >= serial {
		t.Errorf("overlap-stamped completion %.0f not below end-of-batch-stamped %.0f simulated seconds",
			overlapped, serial)
	}
}

// TestBucketedAllreduceSteadyStateAllocs pins the steady-state allocation
// count of a full bucketed round — Begin all buckets, Wait all handles —
// to zero: ops are preallocated per bucket, handles are values over
// long-lived channels, and the per-bucket collectives run on the group's
// pooled buffers. Methodology follows TestAllreduceSteadyStateAllocs.
func TestBucketedAllreduceSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocs/op is pinned in non-race builds")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	defer parallel.SetWorkers(parallel.SetWorkers(1))

	const p, m = 8, 1003
	segs := []Segment{{0, 400}, {400, 350}, {750, 253}}
	g := NewGroup(p)
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, m)
		for i := range bufs[r] {
			bufs[r][i] = float64(r + i)
		}
	}
	workers := make([]*BucketedAllreduce, p)
	handles := make([][]Handle, p)
	for r := 0; r < p; r++ {
		workers[r] = NewBucketedAllreduce(g, r, segs, len(segs))
		handles[r] = make([]Handle, len(segs))
	}
	rankRound := func(r int) {
		for i := len(segs) - 1; i >= 0; i-- {
			handles[r][i] = workers[r].Begin(i, bufs[r], 64, 0)
		}
		for i := range handles[r] {
			handles[r][i].Wait()
		}
	}
	start := make([]chan struct{}, p)
	done := make(chan struct{}, p)
	for r := 1; r < p; r++ {
		start[r] = make(chan struct{})
		go func(r int) {
			for range start[r] {
				rankRound(r)
				done <- struct{}{}
			}
		}(r)
	}
	round := func() {
		for r := 1; r < p; r++ {
			start[r] <- struct{}{}
		}
		rankRound(0)
		for r := 1; r < p; r++ {
			<-done
		}
	}
	for i := 0; i < 5; i++ {
		round()
	}
	// The worker overlap makes the peak number of simultaneously in-flight
	// wire buffers schedule-dependent: a measured round can discover a new
	// in-flight peak warmup never reached and allocate once to cover it.
	// Pre-provision every size class the round's messages use up to the
	// mailbox-capacity bound on in-flight messages, so supply covers any
	// schedule and the pin measures steady-state behavior, not peak
	// discovery.
	inflightBound := p*(p-1)*mailboxCap + 4*p
	for _, words := range []int{400 % 64, 350 % 64, 253 % 64, 64} {
		prefill := make([]*poolBuf, inflightBound)
		for i := range prefill {
			prefill[i] = g.acquire(words)
		}
		for _, pb := range prefill {
			g.releaseMsg(Frame{pb: pb})
		}
	}
	if avg := testing.AllocsPerRun(10, round); avg != 0 {
		t.Errorf("%.1f allocs per steady-state bucketed round, want 0", avg)
	}
	for r := 1; r < p; r++ {
		close(start[r])
	}
	for r := 0; r < p; r++ {
		workers[r].Close()
	}
}
