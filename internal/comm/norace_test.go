//go:build !race

package comm

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
