// Package comm implements the communication substrate the paper's
// algorithms run on: point-to-point messaging between learners, the
// collective operations SASGD uses (binomial-tree and ring allreduce,
// binomial broadcast, barrier), and the sharded parameter server that
// Downpour and EAMSGD use. Learners are goroutines; messages travel over
// Go channels.
//
// Every operation can optionally be charged to a simulated clock through
// the Clock and CostModel interfaces (implemented by internal/netsim), so
// the same code paths produce both real training dynamics — including
// genuine asynchronous gradient staleness — and the simulated epoch-time
// measurements behind the paper's timing figures.
package comm

// Clock is a per-learner simulated clock. Implementations must be safe
// for use from the single goroutine that owns the learner; Sync is called
// with timestamps originating from other learners' clocks.
type Clock interface {
	// Now returns the learner's current simulated time in seconds.
	Now() float64
	// Advance moves the clock forward by dt seconds of local work.
	Advance(dt float64)
	// Sync moves the clock forward to t if t is later than Now (message
	// arrival semantics); earlier timestamps are ignored.
	Sync(t float64)
}

// CostModel prices communication on the simulated fabric.
type CostModel interface {
	// XferTime returns the seconds needed to move n float64 words from
	// learner `from` to learner `to` (point-to-point, used by the
	// collectives; the topology decides whether the route is a fast peer
	// link or crosses the host).
	XferTime(from, to int, words int) float64
	// ServerOpTime returns the seconds one complete parameter-server
	// operation (a push or a pull of n float64 words) takes for one
	// learner, given the server's shard count and the number of learners
	// contending for the host link and the shards. The model is analytic
	// (expected steady-state contention) rather than queue-emergent so
	// simulated time stays independent of goroutine scheduling.
	ServerOpTime(words, shards, learners int) float64
}

// nullClock satisfies Clock with no state, used when a Group is built
// without simulation.
type nullClock struct{}

func (nullClock) Now() float64    { return 0 }
func (nullClock) Advance(float64) {}
func (nullClock) Sync(float64)    {}

// NullClock returns a Clock that ignores all updates, for callers that
// only want real training dynamics.
func NullClock() Clock { return nullClock{} }

// FreeCost is a CostModel under which all communication is instantaneous.
type FreeCost struct{}

// XferTime implements CostModel.
func (FreeCost) XferTime(int, int, int) float64 { return 0 }

// ServerOpTime implements CostModel.
func (FreeCost) ServerOpTime(int, int, int) float64 { return 0 }
