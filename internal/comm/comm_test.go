package comm

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// runGroup executes fn concurrently for every rank of a fresh group.
func runGroup(p int, g *Group, fn func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(r)
		}(r)
	}
	wg.Wait()
}

func TestSendRecvDelivers(t *testing.T) {
	g := NewGroup(2)
	done := make(chan []float64, 1)
	go func() { done <- g.Recv(1, 0) }()
	g.Send(0, 1, []float64{1, 2, 3})
	got := <-done
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("Recv got %v", got)
	}
}

func TestSendRecvOrderedPerPair(t *testing.T) {
	g := NewGroup(2)
	for i := 0; i < 4; i++ {
		g.Send(0, 1, []float64{float64(i)})
	}
	for i := 0; i < 4; i++ {
		if got := g.Recv(1, 0); got[0] != float64(i) {
			t.Fatalf("message %d out of order: got %v", i, got)
		}
	}
}

func TestRankValidationPanics(t *testing.T) {
	g := NewGroup(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Send with bad rank did not panic")
		}
	}()
	g.Send(0, 5, nil)
}

func TestBroadcastTreeAllSizes(t *testing.T) {
	for p := 1; p <= 9; p++ {
		g := NewGroup(p)
		bufs := make([][]float64, p)
		for r := range bufs {
			bufs[r] = make([]float64, 5)
			if r == 0 {
				for i := range bufs[0] {
					bufs[0][i] = float64(i) + 1
				}
			}
		}
		runGroup(p, g, func(rank int) { g.BroadcastTree(rank, bufs[rank]) })
		for r := 1; r < p; r++ {
			for i := range bufs[r] {
				if bufs[r][i] != bufs[0][i] {
					t.Fatalf("p=%d rank=%d: broadcast mismatch %v vs %v", p, r, bufs[r], bufs[0])
				}
			}
		}
	}
}

func TestAllreduceTreeSumsAllSizes(t *testing.T) {
	for p := 1; p <= 9; p++ {
		testAllreduce(t, p, func(g *Group, rank int, buf []float64) { g.AllreduceTree(rank, buf) })
	}
}

func TestAllreduceRingSumsAllSizes(t *testing.T) {
	for p := 1; p <= 9; p++ {
		testAllreduce(t, p, func(g *Group, rank int, buf []float64) { g.AllreduceRing(rank, buf) })
	}
}

func testAllreduce(t *testing.T, p int, ar func(*Group, int, []float64)) {
	t.Helper()
	const n = 23 // deliberately not divisible by typical p
	g := NewGroup(p)
	rng := rand.New(rand.NewSource(int64(p)))
	bufs := make([][]float64, p)
	want := make([]float64, n)
	for r := range bufs {
		bufs[r] = make([]float64, n)
		for i := range bufs[r] {
			bufs[r][i] = rng.NormFloat64()
			want[i] += bufs[r][i]
		}
	}
	runGroup(p, g, func(rank int) { ar(g, rank, bufs[rank]) })
	for r := 0; r < p; r++ {
		for i := range want {
			if d := bufs[r][i] - want[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("p=%d rank=%d[%d]: got %g want %g", p, r, i, bufs[r][i], want[i])
			}
		}
	}
}

// Property: tree and ring allreduce agree on random inputs.
func TestAllreduceTreeRingAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(7)
		n := 1 + rng.Intn(40)
		mk := func() [][]float64 {
			r2 := rand.New(rand.NewSource(seed + 1))
			bufs := make([][]float64, p)
			for i := range bufs {
				bufs[i] = make([]float64, n)
				for j := range bufs[i] {
					bufs[i][j] = r2.NormFloat64()
				}
			}
			return bufs
		}
		a, b := mk(), mk()
		ga, gb := NewGroup(p), NewGroup(p)
		runGroup(p, ga, func(r int) { ga.AllreduceTree(r, a[r]) })
		runGroup(p, gb, func(r int) { gb.AllreduceRing(r, b[r]) })
		for i := range a[0] {
			if d := a[0][i] - b[0][i]; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWordsSentAccounting(t *testing.T) {
	p, n := 4, 10
	g := NewGroup(p)
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, n)
	}
	runGroup(p, g, func(rank int) { g.AllreduceTree(rank, bufs[rank]) })
	// Binomial tree: reduce moves (p-1) messages of n words, broadcast the
	// same: 2(p-1)n words total.
	want := int64(2 * (p - 1) * n)
	if got := g.WordsSent(); got != want {
		t.Errorf("WordsSent = %d, want %d", got, want)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	p := 5
	g := NewGroup(p)
	var before, after sync.WaitGroup
	before.Add(p)
	after.Add(p)
	reached := make(chan int, p)
	for r := 0; r < p; r++ {
		go func(r int) {
			before.Done()
			g.Barrier(r)
			reached <- r
			after.Done()
		}(r)
	}
	before.Wait()
	after.Wait()
	if len(reached) != p {
		t.Fatalf("only %d ranks passed the barrier", len(reached))
	}
}

func TestBarrierWaitMax(t *testing.T) {
	b := NewBarrier(3)
	var wg sync.WaitGroup
	out := make([]float64, 3)
	for i, v := range []float64{1.5, 7.25, 3.0} {
		wg.Add(1)
		go func(i int, v float64) {
			defer wg.Done()
			out[i] = b.WaitMax(v)
		}(i, v)
	}
	wg.Wait()
	for i, got := range out {
		if got != 7.25 {
			t.Errorf("waiter %d got %g, want 7.25", i, got)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	b := NewBarrier(2)
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		want := float64(round * 10)
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if got := b.WaitMax(want - float64(i)); got != want {
					t.Errorf("round %d waiter %d: got %g want %g", round, i, got, want)
				}
			}(i)
		}
		wg.Wait()
	}
}

func TestNullClockIsInert(t *testing.T) {
	c := NullClock()
	c.Advance(5)
	c.Sync(10)
	if c.Now() != 0 {
		t.Errorf("NullClock.Now = %g", c.Now())
	}
}

func TestFreeCostIsZero(t *testing.T) {
	var fc FreeCost
	if fc.XferTime(0, 1, 1000) != 0 || fc.ServerOpTime(1000, 4, 8) != 0 {
		t.Error("FreeCost charged time")
	}
}

func TestGroupClockFallback(t *testing.T) {
	g := NewGroup(2)
	c := g.Clock(0)
	c.Advance(3)
	if c.Now() != 0 {
		t.Error("unsimulated group clock should be inert")
	}
}

// simpleClock for verifying collective clock synchronization.
type simpleClock struct{ now float64 }

func (c *simpleClock) Now() float64      { return c.now }
func (c *simpleClock) Advance(d float64) { c.now += d }
func (c *simpleClock) Sync(t float64) {
	if t > c.now {
		c.now = t
	}
}

// unitCost charges one second per message regardless of size.
type unitCost struct{}

func (unitCost) XferTime(int, int, int) float64     { return 1 }
func (unitCost) ServerOpTime(int, int, int) float64 { return 1 }

func TestSimulatedBroadcastSynchronizesClocks(t *testing.T) {
	p := 4
	clocks := make([]Clock, p)
	for i := range clocks {
		clocks[i] = &simpleClock{}
	}
	g := NewSimGroup(p, clocks, unitCost{})
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, 3)
	}
	runGroup(p, g, func(rank int) { g.BroadcastTree(rank, bufs[rank]) })
	// Binomial broadcast over 4 ranks: rank 1 and 2 receive at t=1 or 2,
	// rank 3 via rank 2. Root's clock never advances (senders are not
	// charged); every receiver lands at a positive integer time ≤ 2.
	if clocks[0].Now() != 0 {
		t.Errorf("root clock advanced to %g", clocks[0].Now())
	}
	for r := 1; r < p; r++ {
		if now := clocks[r].Now(); now < 1 || now > 2 {
			t.Errorf("rank %d clock = %g, want within [1,2]", r, now)
		}
	}
}

func TestSimulatedBarrierAlignsClocks(t *testing.T) {
	p := 3
	clocks := []Clock{&simpleClock{now: 1}, &simpleClock{now: 5}, &simpleClock{now: 2}}
	g := NewSimGroup(p, clocks, unitCost{})
	runGroup(p, g, func(rank int) { g.Barrier(rank) })
	for r := 0; r < p; r++ {
		if clocks[r].Now() != 5 {
			t.Errorf("rank %d clock = %g after barrier, want 5", r, clocks[r].Now())
		}
	}
}
