package comm

import (
	"math"
	"math/rand"
	"testing"
)

// makeBufs returns p random length-m buffers (deterministic in p, m) plus
// their elementwise monolithic binomial-tree allreduce result, computed
// through the real collective so it carries the tree's exact summation
// order.
func makeBufs(p, m int, seed int64) (bufs [][]float64, treeSum []float64) {
	rng := rand.New(rand.NewSource(seed))
	orig := make([][]float64, p)
	for r := range orig {
		orig[r] = make([]float64, m)
		for i := range orig[r] {
			orig[r][i] = rng.NormFloat64()
		}
	}
	ref := cloneBufs(orig)
	g := NewGroup(p)
	runGroup(p, g, func(rank int) { g.AllreduceTree(rank, ref[rank]) })
	return orig, ref[0]
}

func cloneBufs(src [][]float64) [][]float64 {
	out := make([][]float64, len(src))
	for i := range src {
		out[i] = append([]float64(nil), src[i]...)
	}
	return out
}

// TestAllreduceAlgorithmsEquivalent checks every allreduce implementation
// against the monolithic binomial tree across group sizes (including
// non-powers of two) and message lengths not divisible by p or by the
// chunk size. The chunked pipelined tree preserves the tree's summation
// order and must agree bit for bit at every chunk size; ring and rhd
// reassociate the sum and must agree within 1e-12.
func TestAllreduceAlgorithmsEquivalent(t *testing.T) {
	const tol = 1e-12
	for _, p := range []int{1, 2, 3, 5, 8} {
		for _, m := range []int{1, 5, 23, 64, 129} {
			orig, want := makeBufs(p, m, int64(1000*p+m))

			for _, chunk := range []int{1, 3, 7, 16, m + 1} {
				got := cloneBufs(orig)
				g := NewGroup(p)
				runGroup(p, g, func(rank int) { g.AllreduceTreeChunked(rank, got[rank], chunk) })
				for r := 0; r < p; r++ {
					for i := range want {
						if got[r][i] != want[i] {
							t.Fatalf("p=%d m=%d chunk=%d rank=%d[%d]: ptree %g != tree %g (must be bitwise)",
								p, m, chunk, r, i, got[r][i], want[i])
						}
					}
				}
			}

			ring := cloneBufs(orig)
			gr := NewGroup(p)
			runGroup(p, gr, func(rank int) { gr.AllreduceRing(rank, ring[rank]) })
			rhd := cloneBufs(orig)
			gh := NewGroup(p)
			runGroup(p, gh, func(rank int) { gh.AllreduceRHD(rank, rhd[rank]) })
			for r := 0; r < p; r++ {
				for i := range want {
					if d := math.Abs(ring[r][i] - want[i]); d > tol {
						t.Fatalf("p=%d m=%d rank=%d[%d]: ring %g vs tree %g (|Δ|=%g)", p, m, r, i, ring[r][i], want[i], d)
					}
					if d := math.Abs(rhd[r][i] - want[i]); d > tol {
						t.Fatalf("p=%d m=%d rank=%d[%d]: rhd %g vs tree %g (|Δ|=%g)", p, m, r, i, rhd[r][i], want[i], d)
					}
				}
			}
			// Non-power-of-two groups fall back to the tree, where rhd
			// must be bitwise identical, not merely close.
			if p&(p-1) != 0 {
				for r := 0; r < p; r++ {
					for i := range want {
						if rhd[r][i] != want[i] {
							t.Fatalf("p=%d m=%d rank=%d[%d]: rhd fallback %g != tree %g (must be bitwise)",
								p, m, r, i, rhd[r][i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestAllreduceRHDMovesRingVolume pins rhd's wire volume: for
// power-of-two p each learner sends m/2 + m/4 + … + m/p words per phase,
// 2m(p−1)/p in total — the ring's bandwidth optimum — versus the tree's
// 2(p−1)m group total concentrated through the root.
func TestAllreduceRHDMovesRingVolume(t *testing.T) {
	p, m := 8, 64
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, m)
	}
	g := NewGroup(p)
	runGroup(p, g, func(rank int) { g.AllreduceRHD(rank, bufs[rank]) })
	want := int64(2 * m * (p - 1) / p * p)
	if got := g.WordsSent(); got != want {
		t.Errorf("rhd WordsSent = %d, want %d", got, want)
	}
}

// TestChunkedTreeMatchesMonolithicTraffic: chunking changes the message
// schedule, not the volume.
func TestChunkedTreeMatchesMonolithicTraffic(t *testing.T) {
	p, m, chunk := 4, 50, 7
	bufs := make([][]float64, p)
	for r := range bufs {
		bufs[r] = make([]float64, m)
	}
	g := NewGroup(p)
	runGroup(p, g, func(rank int) { g.AllreduceTreeChunked(rank, bufs[rank], chunk) })
	want := int64(2 * (p - 1) * m)
	if got := g.WordsSent(); got != want {
		t.Errorf("chunked tree WordsSent = %d, want %d", got, want)
	}
}

// TestChunkedTreePipelinesSimulatedTime: under a simulated fabric whose
// links serialize successive chunks, the pipelined tree's completion time
// must beat the monolithic tree's strictly leveled schedule (the whole
// point of chunking) on a bandwidth-dominated transfer.
func TestChunkedTreePipelinesSimulatedTime(t *testing.T) {
	const p, m = 8, 1 << 16
	run := func(chunk int) float64 {
		clocks := make([]Clock, p)
		for i := range clocks {
			clocks[i] = &simpleClock{}
		}
		// 1 second per word, no latency: pure bandwidth pipeline.
		g := NewSimGroup(p, clocks, wordCost{})
		bufs := make([][]float64, p)
		for r := range bufs {
			bufs[r] = make([]float64, m)
		}
		runGroup(p, g, func(rank int) { g.AllreduceTreeChunked(rank, bufs[rank], chunk) })
		max := 0.0
		for _, c := range clocks {
			if c.Now() > max {
				max = c.Now()
			}
		}
		return max
	}
	mono := run(m)       // single chunk = monolithic schedule
	piped := run(m / 64) // 64-stage pipeline
	if piped >= mono*0.75 {
		t.Errorf("pipelined allreduce not faster: chunked %.0f vs monolithic %.0f simulated seconds", piped, mono)
	}
}

// wordCost charges one simulated second per word and nothing for latency.
type wordCost struct{}

func (wordCost) XferTime(_, _ int, words int) float64 { return float64(words) }
func (wordCost) ServerOpTime(int, int, int) float64   { return 0 }
