package comm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sasgd/internal/obs"
)

// Crash-tolerant membership. A Resilient wraps the run's communication
// groups with a heartbeat ledger: learners check in at numbered sync
// points (one per aggregation boundary and epoch barrier), and a rank
// that stays silent past the plan's EvictAfter while its peers wait is
// declared dead and evicted. The survivors re-form — a fresh, smaller
// Group over the sorted surviving physical ranks, sharing the original
// fabric (fault counters, sequence spaces, tracer) and the survivors'
// simulated clocks — and training continues on the new group with the
// aggregation rate rescaled by the membership layer's caller.
//
// Consistency argument. All ledger state — heartbeats, the live set,
// the current view — is guarded by one mutex, and both the eviction
// decision and the completion check run under it. A rank is evictable
// at sync point b only while its heartbeat is behind b, and Await
// returns only once every live rank's heartbeat has reached b; so after
// any survivor returns from sync point b, no rank can be evicted at b
// (everyone still live has posted), and every other survivor returns
// from b with the identical view. Collectives therefore always run over
// a membership all participants agree on. A slow-but-alive rank that
// gets fenced (evicted while merely lagging) discovers this at its next
// Await, which returns ok=false, and must stop participating — the
// classic failure-detector false positive, bounded by choosing
// EvictAfter well above the worst per-boundary straggler lag.
//
// Crashes are silent fail-stop: a crashing learner simply stops posting
// heartbeats (Crash only records the event for stats/tracing), so
// detection is an honest timeout, not a courtesy notification.

// View is one stable membership epoch: the group to run collectives on
// and the mapping from the group's virtual ranks to physical ranks.
type View struct {
	G       *Group
	Phys    []int // virtual rank → physical rank (sorted ascending)
	Version int   // increments on every re-form
}

// Size returns the view's member count.
func (v View) Size() int { return len(v.Phys) }

// RankOf returns the virtual rank of a physical rank in this view, or
// -1 when the rank is not a member.
func (v View) RankOf(phys int) int {
	for vr, pr := range v.Phys {
		if pr == phys {
			return vr
		}
	}
	return -1
}

// Eviction records one failure-detector decision.
type Eviction struct {
	Phys    int // evicted physical rank
	SyncPt  int // sync point at which the silence was detected
	Version int // view version created by the re-form
}

// Resilient is the run's membership ledger and group factory. Create
// one per training run with the full physical rank count; learners call
// Await at every synchronization point instead of Group.Barrier.
type Resilient struct {
	plan   *FaultPlan
	fab    *faultFabric
	origP  int
	tr     Transport // shared wire transport (nil = fresh channel fabric per view)
	clocks []Clock   // physical-rank indexed (nil = unsimulated)
	cost   CostModel
	tracer *obs.Tracer

	mu        sync.Mutex
	heart     []int // heart[phys] = highest sync point posted (-1 = none)
	live      []bool
	waitSince map[int]time.Time // sync point → first waiter's arrival
	view      View
	groups    []*Group // every group ever formed; closed at Close
	evictions []Eviction
	memTrack  *obs.Track // membership events (crash/evict/re-form); written only under mu
	hbTrack   *obs.Track // heartbeat spans; separate ring so the chatty
	// per-boundary heartbeats cannot overwrite the few membership events
	// a long run's timeline exists to show
}

// NewResilient builds the ledger for p physical ranks and forms the
// initial full-membership view. clocks may be nil or length p; cost may
// be nil (with clocks nil). The plan supplies EvictAfter and the link
// faults; a nil plan means no injected faults but still crash-tolerant
// membership.
func NewResilient(p int, plan *FaultPlan, clocks []Clock, cost CostModel, tracer *obs.Tracer) *Resilient {
	return newResilient(p, nil, plan, clocks, cost, tracer)
}

// NewResilientOver is NewResilient on an explicit wire transport: every
// membership view — the initial full group and each survivor re-form —
// is built over the same mesh, with the view's physical ranks
// addressing the transport's rank space directly. Stale
// retransmissions from a pre-eviction view arrive on the same wire
// links and are discarded by the fabric's per-link dedup cursors,
// exactly as on the channel fabric. The transport must host every rank
// in this process: the heartbeat ledger is shared memory.
func NewResilientOver(tr Transport, plan *FaultPlan, clocks []Clock, cost CostModel, tracer *obs.Tracer) *Resilient {
	if lt, ok := tr.(allLocalTransport); !ok || !lt.AllLocal() {
		panic("comm: NewResilientOver needs an all-local transport (the membership ledger is in-process)")
	}
	return newResilient(tr.Size(), tr, plan, clocks, cost, tracer)
}

func newResilient(p int, tr Transport, plan *FaultPlan, clocks []Clock, cost CostModel, tracer *obs.Tracer) *Resilient {
	if plan == nil {
		plan = &FaultPlan{}
	}
	if clocks != nil && len(clocks) != p {
		panic(fmt.Sprintf("comm: NewResilient got %d clocks for %d ranks", len(clocks), p))
	}
	r := &Resilient{
		plan:      plan,
		fab:       newFaultFabric(p, plan, tracer),
		origP:     p,
		tr:        tr,
		clocks:    clocks,
		cost:      cost,
		tracer:    tracer,
		heart:     make([]int, p),
		live:      make([]bool, p),
		waitSince: map[int]time.Time{},
	}
	for i := range r.heart {
		r.heart[i] = -1
		r.live[i] = true
	}
	if tracer != nil {
		r.memTrack = tracer.FabricTrack("membership", 1)
		r.hbTrack = tracer.FabricTrack("heartbeats", 2)
	}
	phys := make([]int, p)
	for i := range phys {
		phys[i] = i
	}
	r.view = View{G: r.formGroup(phys), Phys: phys, Version: 0}
	return r
}

// formGroup builds a group over the given physical ranks, wired to the
// shared fabric, the ranks' clocks, and the run's tracer. Caller holds
// mu (or is the constructor).
func (r *Resilient) formGroup(phys []int) *Group {
	var clocks []Clock
	var cost CostModel
	if r.clocks != nil {
		clocks = make([]Clock, len(phys))
		for v, p := range phys {
			clocks[v] = r.clocks[p]
		}
		if r.cost != nil {
			cost = remapCost{inner: r.cost, phys: phys}
		}
	}
	var g *Group
	if r.tr != nil {
		// Shared wire mesh: the view's virtual ranks address the
		// transport's physical rank space through the phys map.
		trMap := phys
		if len(phys) == r.origP {
			trMap = nil // identity view
		}
		g = NewTransportGroup(r.tr, trMap, clocks, cost)
	} else {
		g = NewSimGroup(len(phys), clocks, cost)
	}
	g.SetTracer(r.tracer)
	var physMap []int
	if len(phys) != r.origP {
		physMap = phys
	} else {
		identity := true
		for v, p := range phys {
			if v != p {
				identity = false
				break
			}
		}
		if !identity {
			physMap = phys
		}
	}
	g.attachFaults(r.fab, physMap)
	r.groups = append(r.groups, g)
	return g
}

// remapCost presents a physical-rank cost model in a smaller group's
// virtual rank space, so a re-formed group keeps charging the true
// underlying links.
type remapCost struct {
	inner CostModel
	phys  []int
}

func (c remapCost) XferTime(from, to, words int) float64 {
	return c.inner.XferTime(c.phys[from], c.phys[to], words)
}

func (c remapCost) ServerOpTime(words, shards, learners int) float64 {
	return c.inner.ServerOpTime(words, shards, learners)
}

// Plan returns the run's fault plan.
func (r *Resilient) Plan() *FaultPlan { return r.plan }

// OrigP returns the physical rank count the run started with.
func (r *Resilient) OrigP() int { return r.origP }

// Current returns the current membership view.
func (r *Resilient) Current() View {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view
}

// Evictions returns the failure-detector decisions made so far.
func (r *Resilient) Evictions() []Eviction {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Eviction(nil), r.evictions...)
}

// Crash records a scheduled fail-stop of the given physical rank. The
// rank's learner must return without any further communication; its
// peers are told nothing — they detect the silence at the next sync
// point and evict.
func (r *Resilient) Crash(phys int) {
	r.fab.crashes.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.memTrack != nil {
		now := r.memTrack.Now()
		r.memTrack.Span(obs.PhaseCrash, int32(phys), now, now)
	}
}

// awaitPoll is the ledger polling interval. Real time, not simulated:
// the failure detector necessarily runs on the wall clock.
const awaitPoll = 200 * time.Microsecond

// Await posts the caller's heartbeat for the given sync point and
// blocks until every live rank has posted it (evicting ranks that stay
// silent past the plan's EvictAfter). It returns the membership view to
// run the next collectives on, aligned clocks (bulk-synchronous max,
// plus the plan's SimEvictSecs detection penalty per eviction), and
// ok=false when the caller itself has been evicted — a fenced straggler
// must stop participating immediately.
func (r *Resilient) Await(phys, syncPt int) (View, bool) {
	r.mu.Lock()
	if !r.live[phys] {
		r.mu.Unlock()
		return View{}, false
	}
	r.heart[phys] = syncPt
	if _, ok := r.waitSince[syncPt]; !ok {
		r.waitSince[syncPt] = time.Now()
	}
	var hbStart obs.Stamp
	if r.hbTrack != nil {
		hbStart = r.hbTrack.Now()
	}
	for {
		if !r.live[phys] {
			r.mu.Unlock()
			return View{}, false
		}
		complete := true
		for p := 0; p < r.origP; p++ {
			if r.live[p] && r.heart[p] < syncPt {
				complete = false
				break
			}
		}
		if complete {
			// Bulk-synchronous clock alignment: every live rank is parked
			// at this sync point, so the max over their clocks is final.
			if r.clocks != nil {
				mx := 0.0
				for p := 0; p < r.origP; p++ {
					if r.live[p] {
						if t := r.clocks[p].Now(); t > mx {
							mx = t
						}
					}
				}
				r.clocks[phys].Sync(mx)
			}
			if r.hbTrack != nil {
				r.hbTrack.Span(obs.PhaseHeartbeat, int32(phys), hbStart, r.hbTrack.Now())
			}
			v := r.view
			r.mu.Unlock()
			return v, true
		}
		if wait := time.Since(r.waitSince[syncPt]); wait > r.plan.evictAfter() {
			for p := 0; p < r.origP; p++ {
				if r.live[p] && r.heart[p] < syncPt {
					r.evictLocked(p, syncPt)
				}
			}
			continue // re-check completion with the shrunken live set
		}
		r.mu.Unlock()
		time.Sleep(awaitPoll)
		r.mu.Lock()
	}
}

// evictLocked removes a dead rank and re-forms the view over the
// survivors. Caller holds mu.
func (r *Resilient) evictLocked(phys, syncPt int) {
	r.live[phys] = false
	r.fab.evicts.Add(1)
	var survivors []int
	for p := 0; p < r.origP; p++ {
		if r.live[p] {
			survivors = append(survivors, p)
		}
	}
	if len(survivors) == 0 {
		panic("comm: all ranks evicted")
	}
	sort.Ints(survivors)
	// Charge the detection latency: every survivor pays the simulated
	// analogue of the failure detector's timeout.
	if r.clocks != nil {
		mx := 0.0
		for _, p := range survivors {
			if t := r.clocks[p].Now(); t > mx {
				mx = t
			}
		}
		for _, p := range survivors {
			r.clocks[p].Sync(mx + r.plan.simEvictSecs())
		}
	}
	g := r.formGroup(survivors)
	r.view = View{G: g, Phys: survivors, Version: r.view.Version + 1}
	r.fab.reforms.Add(1)
	r.evictions = append(r.evictions, Eviction{Phys: phys, SyncPt: syncPt, Version: r.view.Version})
	if r.memTrack != nil {
		now := r.memTrack.Now()
		r.memTrack.Span(obs.PhaseEvict, int32(phys), now, now)
		r.memTrack.Span(obs.PhaseReform, int32(r.view.Version), now, now)
	}
}

// Stats aggregates communication statistics across every group the run
// has formed, with the shared fabric's fault counters attached once.
func (r *Resilient) Stats() Stats {
	r.mu.Lock()
	groups := append([]*Group(nil), r.groups...)
	r.mu.Unlock()
	var s Stats
	for i, g := range groups {
		if i == 0 {
			s = g.Stats()
			continue
		}
		s.MergeTraffic(g.Stats()) // Faults intentionally not merged: shared fabric
	}
	s.Faults = r.fab.faultCounts()
	return s
}

// Close stops every group's link daemons. Call once, after all
// learners have finished.
func (r *Resilient) Close() {
	r.mu.Lock()
	groups := r.groups
	r.groups = nil
	r.mu.Unlock()
	for _, g := range groups {
		g.Close()
	}
}
