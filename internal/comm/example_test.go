package comm_test

import (
	"fmt"
	"sync"

	"sasgd/internal/comm"
)

// Four learners sum their gradient buffers with the binomial-tree
// allreduce SASGD aggregates through; every learner ends up with the
// global sum.
func ExampleGroup_AllreduceTree() {
	const p = 4
	g := comm.NewGroup(p)
	bufs := [][]float64{{1, 0}, {2, 0}, {3, 0}, {4, 10}}
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			g.AllreduceTree(r, bufs[r])
		}(r)
	}
	wg.Wait()
	fmt.Println(bufs[0], bufs[3])
	// Output:
	// [10 10] [10 10]
}

// TopK keeps only the largest-magnitude coordinates — the payload of the
// sparse-aggregation extension.
func ExampleTopK() {
	s := comm.TopK([]float64{0.1, -5, 2, 0, -0.5, 3}, 2)
	fmt.Println(s.Idx, s.Val)
	// Output:
	// [1 5] [-5 3]
}

// The sharded parameter server Downpour aggregates through: pushes apply
// scaled gradients, pulls read the (not necessarily consistent) current
// parameters.
func ExampleParamServer() {
	srv := comm.NewParamServer([]float64{1, 1, 1, 1}, 2, nil, nil)
	srv.PushGrad(0, 0.5, []float64{2, 2, 2, 2})
	out := make([]float64, 4)
	srv.Pull(0, out)
	fmt.Println(out)
	// Output:
	// [0 0 0 0]
}
