package comm

import (
	"fmt"
	"runtime"
	"sync"

	"sasgd/internal/obs"
)

// Bucketed, asynchronous allreduce: the communication half of SASGD's
// backward-overlapped aggregation. The flat gradient buffer is split at
// fixed layer boundaries into buckets; as the backward pass finalizes a
// bucket (layers finalize in reverse order, so the buckets near the end
// of the buffer are ready while the first layers are still
// backpropagating), the learner hands it to a per-rank communication
// worker and keeps computing. Each bucket is reduced with the existing
// pooled tree machinery over the same Group, so all of PR 2's guarantees
// carry over: zero steady-state allocations, per-directed-link
// serialization in the fabric simulation, and — because every bucket
// replays the monolithic binomial tree's per-element summation order on
// its own slice — a concatenated result that is bitwise identical to a
// single whole-buffer "tree"/"ptree" allreduce at every bucket partition.
//
// Ordering discipline. A Group's collectives require every rank to walk
// the same collectives in the same order. BucketedAllreduce preserves
// that with ONE worker goroutine per rank draining a FIFO queue: callers
// must Begin buckets in the same order on every rank (SASGD's backward
// pass does — the bucket plan and the layer finalization order are
// identical across replicas), and the worker then executes them in that
// shared order. Buckets are therefore *pipelined*, not interleaved: the
// overlap is between communication and the rest of the backward pass
// (and, within a bucket, between the chunked tree's reduce and broadcast
// streams), never between two buckets' wire schedules — which also
// matches the physical platform, where one PCIe link per learner would
// serialize concurrent bucket transfers anyway, and keeps simulated
// times and mailbox matching deterministic.
//
// Deadlock freedom extends PR 2's argument unchanged: the global message
// order gains a major key (bucket index, then chunk, then tree level)
// that every rank walks identically, so the receive-dependency graph
// stays acyclic; mailboxes still see at most one collective's traffic at
// a time per pair *per position in the order*, and a rank running ahead
// into later buckets can only block on a full mailbox whose receiver is
// draining strictly earlier traffic.

// Segment is one contiguous [Off, Off+Len) range of a flat buffer — a
// bucket of the bucketed allreduce. Core builds these from
// nn.ParamSegments by grouping adjacent layers.
type Segment struct {
	Off int
	Len int
}

// Handle tracks one in-flight bucket allreduce. It is a value type so
// steady-state Begin/Wait cycles allocate nothing.
type Handle struct {
	done chan struct{}
}

// Wait blocks until the bucket's allreduce has completed. The bucket's
// slice then holds the global sum on every rank (once every rank's
// matching Wait returns).
func (h Handle) Wait() { <-h.done }

// op identifiers for the worker.
const (
	opTree = iota // chunked pipelined binomial tree (bitwise tree order)
	opRHD         // recursive halving/doubling (value-equal, reassociates)
	opComp        // compression codec collective (Compressor.Allreduce)
	opHier        // hierarchical inter-island exchange (Hier.AllreduceInter)
)

// bucketOp is one submitted bucket; ops are preallocated per bucket and
// recycled every interval, keeping steady state allocation-free.
type bucketOp struct {
	buf   []float64
	res   []float64  // compressed ops: the bucket's residual slice
	comp  Compressor // compressed ops: the learner's codec
	ratio float64    // compressed ops: sparsity knob
	hier  *Hier      // hierarchical ops: the inter-island schedule
	chunk int
	ready float64
	kind  int
	idx   int32     // bucket index, the span argument on the comm track
	subAt obs.Stamp // submission stamp (queue-dwell span start; 0 untraced)
	done  chan struct{}
}

// BucketedAllreduce runs asynchronous per-bucket allreduces for one rank
// of a group. All ranks must create workers over the same segments and
// Begin buckets in the same order.
type BucketedAllreduce struct {
	g    *Group
	rank int
	segs []Segment
	ops  []bucketOp
	// queue feeds the worker; its capacity is the inflight window, so a
	// Begin beyond it applies backpressure to the submitting (compute)
	// goroutine instead of queueing unboundedly.
	queue chan *bucketOp
	wg    sync.WaitGroup
	// tk is the rank's comm-worker trace track (nil when the group has
	// no tracer — every probe is then a nil check).
	tk *obs.Track
	// deferred, when set, routes the clock syncs of every op the worker
	// executes into a DeferSync sink instead of the rank's clock (see
	// SetDeferSync).
	deferred *DeferSync
}

// NewBucketedAllreduce returns the per-rank worker for a fixed bucket
// partition of a flat buffer. segments must be identical on every rank
// (they are a pure function of the model and the bucket knob).
// maxInflight bounds how many buckets may be pending — submitted and not
// yet finished — before Begin blocks; values < 1 select len(segments)
// (backward never stalls on communication).
func NewBucketedAllreduce(g *Group, rank int, segments []Segment, maxInflight int) *BucketedAllreduce {
	if len(segments) == 0 {
		panic("comm: NewBucketedAllreduce with no segments")
	}
	for i, s := range segments {
		if s.Len <= 0 || s.Off < 0 {
			panic(fmt.Sprintf("comm: NewBucketedAllreduce segment %d invalid: %+v", i, s))
		}
	}
	if maxInflight < 1 {
		maxInflight = len(segments)
	}
	b := &BucketedAllreduce{
		g:     g,
		rank:  rank,
		segs:  segments,
		ops:   make([]bucketOp, len(segments)),
		queue: make(chan *bucketOp, maxInflight),
		tk:    g.tracer.CommWorker(rank),
	}
	for i := range b.ops {
		b.ops[i].done = make(chan struct{}, 1)
		b.ops[i].idx = int32(i)
	}
	b.wg.Add(1)
	go b.worker()
	return b
}

// worker drains buckets in submission order — the fixed global order all
// ranks share — and signals each op's handle. With a tracer attached it
// records each bucket's queue dwell (submit → pickup) and collective
// execution as spans on the rank's comm track and feeds the group's
// pipeline-occupancy counters; the bucket-op count is kept regardless.
func (b *BucketedAllreduce) worker() {
	defer b.wg.Done()
	st := &b.g.stats[b.rank]
	for op := range b.queue {
		pick := b.tk.Now()
		b.tk.Span(obs.PhaseQueueDwell, op.idx, op.subAt, pick)
		if b.deferred != nil {
			b.g.setSink(b.rank, b.deferred)
		}
		switch op.kind {
		case opRHD:
			b.g.AllreduceRHDFrom(b.rank, op.buf, op.ready)
		case opComp:
			op.comp.Allreduce(b.g, b.rank, op.buf, op.res, op.ratio, op.ready, b.tk, op.idx)
		case opHier:
			op.hier.AllreduceInter(b.rank, op.buf, op.chunk, op.ready)
		default:
			b.g.AllreduceTreeChunkedFrom(b.rank, op.buf, op.chunk, op.ready)
		}
		if b.deferred != nil {
			b.g.setSink(b.rank, nil)
		}
		st.bucketOps.Add(1)
		if b.tk != nil {
			end := b.tk.Now()
			b.tk.Span(obs.PhaseAllreduce, op.idx, pick, end)
			st.queueDwellNs.Add(int64(pick - op.subAt))
			st.workerBusyNs.Add(int64(end - pick))
			st.firstBusyNs.CompareAndSwap(0, int64(pick)+1)
			st.lastDoneNs.Store(int64(end))
		}
		op.done <- struct{}{}
	}
}

// Begin submits bucket i of buf (the full flat buffer; the bucket's
// segment is sliced internally) for a chunked pipelined tree allreduce
// and returns its handle. chunkWords ≤ 0 selects DefaultChunk; pass the
// segment length for a monolithic per-bucket tree. ready is the
// simulated time the bucket's data became final (the layer's
// backward-completion time); it stamps the wire schedule only and is
// ignored without a simulation. A bucket must not be begun again until
// its previous handle has been waited on, and every rank must issue the
// same sequence of Begin/BeginRHD calls.
func (b *BucketedAllreduce) Begin(i int, buf []float64, chunkWords int, ready float64) Handle {
	return b.submit(i, buf, opTree, chunkWords, ready)
}

// BeginRHD is Begin with recursive halving/doubling as the per-bucket
// collective: the ring-optimal 2m(p−1)/p wire volume, value-equal to the
// tree within floating-point reassociation tolerance rather than bitwise
// (and falling back to the tree for non-power-of-two groups).
func (b *BucketedAllreduce) BeginRHD(i int, buf []float64, ready float64) Handle {
	return b.submit(i, buf, opRHD, 0, ready)
}

// BeginCompressed submits bucket i for a compressed allreduce through
// comp: the codec folds the bucket's residual slice into its gradient
// slice, ships the encoded form over its own collective, and leaves the
// dense global compressed aggregate in the bucket (see Compressor). buf
// and res are the full flat gradient and residual buffers — the
// bucket's segment is sliced internally — and ratio is the codec's
// sparsity knob. Every rank must submit the same codec type and ratio
// in the same bucket order; ready stamps the codec's first sends, as in
// Begin.
func (b *BucketedAllreduce) BeginCompressed(i int, buf, res []float64, comp Compressor, ratio, ready float64) Handle {
	s := b.segs[i]
	if s.Off+s.Len > len(res) {
		panic(fmt.Sprintf("comm: bucket %d segment %+v exceeds residual length %d", i, s, len(res)))
	}
	op := &b.ops[i]
	op.res = res[s.Off : s.Off+s.Len]
	op.comp = comp
	op.ratio = ratio
	return b.submit(i, buf, opComp, 0, ready)
}

// BeginHierInter submits bucket i for a hierarchical inter-island
// exchange (Hier.AllreduceInter): the delayed-application path uses
// this to push the outer-boundary aggregate through the worker so the
// cross-island exchange hides behind the next round's compute. Same
// ordering contract as Begin; every rank must pass the same Hier.
func (b *BucketedAllreduce) BeginHierInter(i int, buf []float64, h *Hier, chunkWords int, ready float64) Handle {
	b.ops[i].hier = h
	return b.submit(i, buf, opHier, chunkWords, ready)
}

// SetDeferSync makes the worker capture receive-side clock syncs into d
// instead of applying them to the rank's simulated clock. The
// delayed-application engine installs a sink once, before any Begin:
// its collectives run while the learner's clock is advancing through
// the NEXT round's compute, and Sync/Advance do not commute, so
// applying arrivals live would make simulated times depend on the real
// goroutine interleaving. The learner folds the sink in with
// DeferSync.Join at each boundary, after waiting on every handle.
func (b *BucketedAllreduce) SetDeferSync(d *DeferSync) { b.deferred = d }

func (b *BucketedAllreduce) submit(i int, buf []float64, kind, chunkWords int, ready float64) Handle {
	s := b.segs[i]
	if s.Off+s.Len > len(buf) {
		panic(fmt.Sprintf("comm: bucket %d segment %+v exceeds buffer length %d", i, s, len(buf)))
	}
	op := &b.ops[i]
	op.buf = buf[s.Off : s.Off+s.Len]
	op.chunk = chunkWords
	op.ready = ready
	op.kind = kind
	op.subAt = b.tk.Now()
	b.queue <- op
	// Yield so the worker (parked on the queue, now in the scheduler's
	// run-next slot) picks the bucket up and starts its collective
	// immediately. Without this, on hosts with fewer cores than
	// goroutines the submitting compute goroutine runs to its next
	// blocking point (the end of backward) before the worker ever runs,
	// and the overlap the bucketing exists for never starts. Values are
	// unaffected — scheduling never changes the summation order.
	runtime.Gosched()
	return Handle{done: op.done}
}

// Close shuts the worker down after all submitted buckets have drained.
// The BucketedAllreduce must not be used afterwards.
func (b *BucketedAllreduce) Close() {
	close(b.queue)
	b.wg.Wait()
}
