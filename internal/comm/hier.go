package comm

import "fmt"

// Two-level hierarchical collectives. Real training fabrics are not
// flat: leaves hang off first-level switches (NVLink islands, PCIe
// switch pairs, racks) whose uplinks toward the spine are shared and
// narrower. A Hier partitions a Group's ranks into islands matching
// that topology and runs two sub-collectives on the SAME group — an
// intra-island allreduce over each island's members, and an
// inter-island exchange in which island leaders tree-allreduce and then
// fan the result back out inside their islands. The SASGD scheduler
// runs the cheap intra collective at every communication boundary and
// the cross-island exchange only every T_outer boundaries, so the
// narrow uplinks carry 1/T_outer of the traffic a flat schedule would
// push through them.
//
// Running on the owning Group (subset schedules, not sub-Groups) keeps
// every property of the fabric intact: pooled zero-alloc transfer
// buffers, per-directed-link serialization in the time simulation,
// traffic accounting, and — critically — the fault-injection link
// daemons, which are keyed by the group's rank space.
//
// Determinism: both sub-collectives are the chunked, pipelined binomial
// tree of chunked.go driven by *relative* member indices, so an island
// that happens to contain every rank replays the flat tree's message
// schedule and summation order exactly — hier with one island is
// bitwise-identical to the flat ptree/tree path, which the degenerate
// pin tests rely on. (RHD's pairwise exchange cannot run on arbitrary
// subset sizes, so hierarchical runs lower rhd to the tree order — the
// same documented fallback RHD itself takes for non-power-of-two
// groups.)
type Hier struct {
	g        *Group
	islands  [][]int // island id → member ranks, ascending
	islandOf []int   // rank → island id
	member   []int   // rank → index within its island's member list
	leaders  []int   // island id → leader rank (lowest member)
}

// BlockIslands maps ranks 0..p-1 onto contiguous islands of ⌈p/groups⌉
// ranks each (the last island may be short). With groups = p/IslandSize
// this reproduces netsim's Sim.IslandOf exactly, aligning the
// hierarchy with the simulated switch fabric.
func BlockIslands(p, groups int) []int {
	if groups < 1 {
		groups = 1
	}
	if groups > p {
		groups = p
	}
	q := (p + groups - 1) / groups
	islandOf := make([]int, p)
	for r := range islandOf {
		islandOf[r] = r / q
	}
	return islandOf
}

// NewHier partitions the group into `groups` contiguous islands (see
// BlockIslands) and returns the hierarchical collective schedule.
func NewHier(g *Group, groups int) *Hier {
	return NewHierOf(g, BlockIslands(g.Size(), groups))
}

// NewHierOf builds the hierarchy from an explicit rank→island map —
// the resilient path uses this to re-partition a survivor group by the
// members' original physical islands after an eviction. Island ids are
// normalized by first appearance, so gaps left by emptied islands are
// fine; each island's leader is its lowest rank. The map is also
// installed as the group's island view for cross-island traffic
// accounting (SetIslands).
func NewHierOf(g *Group, islandOf []int) *Hier {
	p := g.Size()
	if len(islandOf) != p {
		panic(fmt.Sprintf("comm: NewHierOf: map covers %d ranks, group has %d", len(islandOf), p))
	}
	h := &Hier{g: g, islandOf: make([]int, p), member: make([]int, p)}
	remap := make(map[int]int, 8)
	for r, raw := range islandOf {
		id, ok := remap[raw]
		if !ok {
			id = len(h.islands)
			remap[raw] = id
			h.islands = append(h.islands, nil)
			h.leaders = append(h.leaders, r)
		}
		h.islandOf[r] = id
		h.member[r] = len(h.islands[id])
		h.islands[id] = append(h.islands[id], r)
	}
	g.SetIslands(h.islandOf)
	return h
}

// Islands returns the number of (non-empty) islands.
func (h *Hier) Islands() int { return len(h.islands) }

// IslandOf returns rank's island id.
func (h *Hier) IslandOf(rank int) int { return h.islandOf[rank] }

// IslandSize returns the member count of rank's island.
func (h *Hier) IslandSize(rank int) int { return len(h.islands[h.islandOf[rank]]) }

// IsLeader reports whether rank is its island's leader.
func (h *Hier) IsLeader(rank int) bool { return h.leaders[h.islandOf[rank]] == rank }

// AllreduceIntra sums buf elementwise across the members of rank's
// island only, leaving the island sum in each member's buf. The wire
// schedule is the chunked pipelined binomial tree over the island's
// member list; traffic is charged to "hintra". entry is the simulated
// instant buf became ready (see AllreduceTreeChunkedFrom); chunkWords
// ≤ 0 selects DefaultChunk.
func (h *Hier) AllreduceIntra(rank int, buf []float64, chunkWords int, entry float64) {
	isl := h.islands[h.islandOf[rank]]
	if len(isl) == 1 || len(buf) == 0 {
		return
	}
	h.g.setAlgo(rank, algoHIntra)
	h.allreduceSub(isl, h.member[rank], buf, chunkWords, entry, nil)
}

// AllreduceInter exchanges island aggregates across islands: the island
// leaders run a chunked tree allreduce of buf among themselves, and
// each chunk is fanned out inside every island as soon as its leader
// holds the global value, pipelining the downlink behind the leader
// exchange. Every rank participates (non-leaders supply no data — the
// leaders' bufs are the contributions — and receive the global result
// into buf). All traffic of the phase, leader hops and island fan-out
// alike, is charged to "hinter"; the topology-exact split lives in
// Stats.CrossWords. No-op with fewer than two islands.
func (h *Hier) AllreduceInter(rank int, buf []float64, chunkWords int, entry float64) {
	if len(h.islands) < 2 || len(buf) == 0 {
		return
	}
	if chunkWords <= 0 {
		chunkWords = DefaultChunk()
	}
	h.g.setAlgo(rank, algoHInter)
	id := h.islandOf[rank]
	isl := h.islands[id]
	if h.leaders[id] == rank {
		down := isl
		if len(isl) == 1 {
			down = nil
		}
		h.allreduceSub(h.leaders, id, buf, chunkWords, entry, down)
		return
	}
	nchunks := (len(buf) + chunkWords - 1) / chunkWords
	for c := 0; c < nchunks; c++ {
		h.broadcastChunkSub(isl, h.member[rank], buf, c, chunkWords, 0)
	}
}

// allreduceSub is allreduceTreeChunkedFrom over an explicit member
// list, driven by this rank's relative index ri. When down is non-nil
// (the inter phase's leaders), each chunk is additionally broadcast
// over the down list — rooted at this rank, which must be down[0] —
// with the chunk's causal ready time, so the island fan-out of chunk c
// overlaps the leader exchange of chunk c+1.
func (h *Hier) allreduceSub(members []int, ri int, buf []float64, chunkWords int, entry float64, down []int) {
	if len(members) == 1 && down == nil {
		return
	}
	if chunkWords <= 0 {
		chunkWords = DefaultChunk()
	}
	nchunks := (len(buf) + chunkWords - 1) / chunkWords
	var ready [PipelineDepth + 1]float64
	reduced := 0
	for c := 0; c < nchunks; c++ {
		for reduced < nchunks && reduced < c+PipelineDepth {
			ready[reduced%(PipelineDepth+1)] = h.reduceChunkSub(members, ri, buf, reduced, chunkWords, entry)
			reduced++
		}
		r := h.broadcastChunkSub(members, ri, buf, c, chunkWords, ready[c%(PipelineDepth+1)])
		if down != nil {
			h.broadcastChunkSub(down, 0, buf, c, chunkWords, r)
		}
	}
}

// reduceChunkSub is reduceChunk with relative member indexing: the
// binomial schedule runs over positions in the member list, peers are
// looked up through it, and the summation order per element is exactly
// the flat tree's at the same member count.
func (h *Hier) reduceChunkSub(members []int, ri int, buf []float64, c, chunkWords int, entry float64) float64 {
	g := h.g
	seg := chunkSeg(buf, c, chunkWords)
	ready := entry
	q := len(members)
	for step := 1; step < q; step <<= 1 {
		if ri%(2*step) != 0 {
			g.sendMsgAt(members[ri], members[ri-step], Frame{Data: seg}, ready)
			return ready
		}
		if peer := ri + step; peer < q {
			in := g.recvMsg(members[ri], members[peer])
			if len(in.Data) != len(seg) {
				panic(fmt.Sprintf("comm: hier reduce length mismatch %d vs %d", len(in.Data), len(seg)))
			}
			if in.Arrive > ready {
				ready = in.Arrive
			}
			addInto(seg, in.Data)
			g.releaseMsg(in)
		}
	}
	return ready
}

// broadcastChunkSub is broadcastChunk with relative member indexing,
// rooted at members[0]. It returns this rank's causal time for the
// chunk — the input ready at the root, the parent's arrival elsewhere —
// which the fused inter-phase fan-out uses to seed the island
// broadcast.
func (h *Hier) broadcastChunkSub(members []int, ri int, buf []float64, c, chunkWords int, ready float64) float64 {
	g := h.g
	seg := chunkSeg(buf, c, chunkWords)
	q := len(members)
	top := 1
	for top < q {
		top <<= 1
	}
	for step := top >> 1; step >= 1; step >>= 1 {
		switch {
		case ri%(2*step) == 0:
			if peer := ri + step; peer < q {
				pb := g.acquire(len(seg))
				copy(pb.data, seg)
				g.sendMsgAt(members[ri], members[peer], Frame{Data: pb.data, pb: pb}, ready)
			}
		case ri%(2*step) == step:
			in := g.recvMsg(members[ri], members[ri-step])
			if len(in.Data) != len(seg) {
				panic(fmt.Sprintf("comm: hier broadcast length mismatch %d vs %d", len(in.Data), len(seg)))
			}
			ready = in.Arrive
			copy(seg, in.Data)
			g.releaseMsg(in)
		}
	}
	return ready
}
