//go:build race

package tensor

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation allocates internally and would break the steady-state
// allocs/op assertions.
const raceEnabled = true
