// Package tensor implements the dense numeric arrays and kernels that the
// neural-network substrate is built on. Tensors are row-major, contiguous
// float64 arrays with an explicit shape. The package provides the
// elementwise operations, matrix multiplication, im2col/col2im lowering,
// and reductions needed to implement forward and backward passes of the
// networks in the paper (Tables I and II), plus seeded random fills so
// that every experiment in the repository is deterministic.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"sasgd/internal/parallel"
)

// elemGrain is the minimum number of elements per shard for the
// parallelized elementwise kernels (axpy, Scale, Mul). These loops are
// memory-bound, so only large vectors — flattened model parameters,
// whole-minibatch activations — are worth splitting; everything smaller
// runs serially with zero dispatch overhead. Elementwise kernels touch
// each index independently, so parallel results are bitwise identical to
// serial ones at any worker count.
const elemGrain = 1 << 15

// Tensor is a dense, row-major, contiguous n-dimensional array of float64.
//
// The zero value is an empty tensor with no shape; use New or one of the
// other constructors to obtain a usable tensor. Data is exposed so that
// hot loops (optimizers, collectives) can operate on the flat storage
// without per-element call overhead; Data must always have exactly
// Size() elements.
type Tensor struct {
	shape []int
	// Data is the flat row-major backing storage.
	Data []float64
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative. A tensor with no dimensions is a scalar holding
// a single element.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice returns a tensor with the given shape that adopts data as its
// backing storage (no copy). It panics if len(data) does not match the
// shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: data}
}

// Full returns a tensor with the given shape where every element is v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	t.Fill(v)
	return t
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// offset converts an n-dimensional index to a flat offset.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given n-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set stores v at the given n-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

// Reshape returns a view of t with a new shape covering the same backing
// data. It panics if the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.Data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: t.Data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's elements into t. It panics if the sizes differ
// (shapes may differ as long as the element counts agree).
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	copy(t.Data, src.Data)
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// FillRandn fills t with samples from N(mean, std²) drawn from rng.
func (t *Tensor) FillRandn(rng *rand.Rand, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()*std + mean
	}
}

// FillUniform fills t with samples from the uniform distribution on
// [lo, hi) drawn from rng.
func (t *Tensor) FillUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}

// String renders small tensors in full and large tensors as a summary.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.Data) <= 16 {
		fmt.Fprintf(&b, "%v", t.Data)
	} else {
		fmt.Fprintf(&b, "[%g %g %g ... %g] (%d elements)", t.Data[0], t.Data[1], t.Data[2], t.Data[len(t.Data)-1], len(t.Data))
	}
	return b.String()
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) mustSameSize(o *Tensor, op string) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: %s size mismatch %v vs %v", op, t.shape, o.shape))
	}
}

// Add accumulates o into t elementwise (t += o).
func (t *Tensor) Add(o *Tensor) {
	t.mustSameSize(o, "Add")
	axpy(1, o.Data, t.Data)
}

// Sub subtracts o from t elementwise (t -= o).
func (t *Tensor) Sub(o *Tensor) {
	t.mustSameSize(o, "Sub")
	axpy(-1, o.Data, t.Data)
}

// Mul multiplies t by o elementwise (t *= o).
func (t *Tensor) Mul(o *Tensor) {
	t.mustSameSize(o, "Mul")
	x, y := o.Data, t.Data
	parallel.For(len(x), elemGrain, func(lo, hi int) {
		ys := y[lo:hi]
		for i, v := range x[lo:hi] {
			ys[i] *= v
		}
	})
}

// Scale multiplies every element of t by a.
func (t *Tensor) Scale(a float64) {
	d := t.Data
	parallel.For(len(d), elemGrain, func(lo, hi int) {
		ds := d[lo:hi]
		for i := range ds {
			ds[i] *= a
		}
	})
}

// AddScaled accumulates a*o into t (t += a·o), the AXPY kernel that SGD
// parameter updates reduce to.
func (t *Tensor) AddScaled(a float64, o *Tensor) {
	t.mustSameSize(o, "AddScaled")
	axpy(a, o.Data, t.Data)
}

// axpy computes y += a*x over flat slices. It is the single hottest loop
// in training; keeping it free of bounds surprises lets the compiler
// vectorize it, and vectors the size of a flattened model are split
// across the worker pool.
func axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: axpy length mismatch")
	}
	parallel.For(len(x), elemGrain, func(lo, hi int) {
		ys := y[lo:hi]
		for i, v := range x[lo:hi] {
			ys[i] += a * v
		}
	})
}

// Axpy computes y += a*x over raw slices; exposed for the optimizer and
// collective code that works on flattened parameter vectors.
func Axpy(a float64, x, y []float64) { axpy(a, x, y) }

// Copy copies src into dst over the parallel worker pool. Equivalent to
// the builtin copy for equal-length slices, but model-sized vectors (the
// reference-parameter reset on SASGD's aggregation path is ~2M words for
// NLC-F) are split across workers like the other elementwise kernels.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: Copy length mismatch")
	}
	parallel.For(len(dst), elemGrain, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.mustSameSize(o, "Dot")
	s := 0.0
	for i, v := range t.Data {
		s += v * o.Data[i]
	}
	return s
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the maximum element (first occurrence).
// It panics on an empty tensor.
func (t *Tensor) Argmax() int {
	if len(t.Data) == 0 {
		panic("tensor: Argmax of empty tensor")
	}
	best, bi := t.Data[0], 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Norm2 returns the Euclidean norm of the tensor viewed as a flat vector.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether t and o have the same shape and all elements are
// within tol of each other.
func (t *Tensor) Equal(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}
