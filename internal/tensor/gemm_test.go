package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sasgd/internal/parallel"
)

// gemmSweepSizes exercises every routing and edge case of the two-tier
// GEMM dispatch: 1 (degenerate), 3 and 7 (below every tile size, odd),
// 17 (odd, above MR/NR), 64 (exact multiples of MR/NR/MC), 65 (one past
// the aligned case, forcing the odd-row and padded-panel edges).
var gemmSweepSizes = []int{1, 3, 7, 17, 64, 65}

// TestGemmShapeSweepAllVariants sweeps m,k,n over gemmSweepSizes for
// every GEMM variant, checking (a) correctness against the naive triple
// loop and (b) bitwise identity across worker counts 1–8.
func TestGemmShapeSweepAllVariants(t *testing.T) {
	for _, m := range gemmSweepSizes {
		for _, k := range gemmSweepSizes {
			for _, n := range gemmSweepSizes {
				rng := rand.New(rand.NewSource(int64(m*100000 + k*1000 + n)))
				a := randMat(rng, m, k)
				b := randMat(rng, k, n)
				at := Transpose2D(a) // k×m
				bt := Transpose2D(b) // n×k
				want := naiveMatMul(a, b)
				label := fmt.Sprintf("%dx%dx%d", m, k, n)
				dst := New(m, n)

				MatMul(dst, a, b)
				if !dst.Equal(want, 1e-10) {
					t.Fatalf("MatMul %s: mismatch vs naive", label)
				}
				assertBitwise(t, "MatMul "+label, func() *Tensor {
					MatMul(dst, a, b)
					return dst
				})

				MatMulTransA(dst, at, b)
				if !dst.Equal(want, 1e-10) {
					t.Fatalf("MatMulTransA %s: mismatch vs naive", label)
				}
				assertBitwise(t, "MatMulTransA "+label, func() *Tensor {
					MatMulTransA(dst, at, b)
					return dst
				})

				MatMulTransB(dst, a, bt)
				if !dst.Equal(want, 1e-10) {
					t.Fatalf("MatMulTransB %s: mismatch vs naive", label)
				}
				assertBitwise(t, "MatMulTransB "+label, func() *Tensor {
					MatMulTransB(dst, a, bt)
					return dst
				})

				init := randMat(rng, m, n)
				wantAcc := init.Clone()
				for i := range wantAcc.Data {
					wantAcc.Data[i] += want.Data[i]
				}
				acc := init.Clone()
				MatMulAcc(acc, a, b)
				if !acc.Equal(wantAcc, 1e-10) {
					t.Fatalf("MatMulAcc %s: mismatch vs naive", label)
				}
				assertBitwise(t, "MatMulAcc "+label, func() *Tensor {
					acc.CopyFrom(init)
					MatMulAcc(acc, a, b)
					return acc
				})

				acc.CopyFrom(init)
				MatMulAccTransB(acc, a, bt)
				if !acc.Equal(wantAcc, 1e-10) {
					t.Fatalf("MatMulAccTransB %s: mismatch vs naive", label)
				}
				assertBitwise(t, "MatMulAccTransB "+label, func() *Tensor {
					acc.CopyFrom(init)
					MatMulAccTransB(acc, a, bt)
					return acc
				})
			}
		}
	}
}

// withFastKernels runs fn with the fast-kernel gate in the given state,
// restoring the previous state afterwards.
func withFastKernels(on bool, fn func()) {
	prev := SetFastKernels(on)
	defer SetFastKernels(prev)
	fn()
}

// TestFastKernelsEquivalence pins the FastKernels contract: the
// reordered kernels agree with the default ones within 1e-12 relative
// tolerance on every shape class (packed tier, small tier, raw Dot).
func TestFastKernelsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, s := range []struct{ m, k, n int }{
		{4, 9, 5},     // small tier
		{64, 64, 64},  // packed tier, aligned
		{65, 129, 33}, // packed tier, odd edges
		{1, 257, 1},   // dot-shaped
		{17, 1000, 3}, // long k small tier
	} {
		a := randMat(rng, s.m, s.k)
		bt := randMat(rng, s.n, s.k)
		slow := New(s.m, s.n)
		fast := New(s.m, s.n)
		withFastKernels(false, func() { MatMulTransB(slow, a, bt) })
		withFastKernels(true, func() { MatMulTransB(fast, a, bt) })
		for i := range slow.Data {
			d := math.Abs(fast.Data[i] - slow.Data[i])
			if scale := math.Abs(slow.Data[i]); scale > 1 {
				d /= scale
			}
			if d > 1e-12 {
				t.Fatalf("MatMulTransB %dx%dx%d: fast/default relative difference %g > 1e-12 at %d",
					s.m, s.k, s.n, d, i)
			}
		}
	}
	x := make([]float64, 1023)
	y := make([]float64, 1023)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	var slow, fast float64
	withFastKernels(false, func() { slow = Dot(x, y) })
	withFastKernels(true, func() { fast = Dot(x, y) })
	if d := math.Abs(fast-slow) / math.Max(1, math.Abs(slow)); d > 1e-12 {
		t.Fatalf("Dot: fast/default relative difference %g > 1e-12", d)
	}
}

// TestFastKernelsBitwiseAcrossWorkers verifies the fast mode keeps the
// cross-worker bitwise guarantee (it reorders within a dot product, not
// across shards).
func TestFastKernelsBitwiseAcrossWorkers(t *testing.T) {
	withFastKernels(true, func() {
		for _, s := range []struct{ m, k, n int }{{17, 9, 13}, {65, 64, 33}} {
			rng := rand.New(rand.NewSource(int64(s.m + s.k + s.n)))
			a := randMat(rng, s.m, s.k)
			bt := randMat(rng, s.n, s.k)
			dst := New(s.m, s.n)
			assertBitwise(t, fmt.Sprintf("fast MatMulTransB %dx%dx%d", s.m, s.k, s.n), func() *Tensor {
				MatMulTransB(dst, a, bt)
				return dst
			})
		}
	})
}

// applyActRef applies an epilogue activation the way the nn layers do —
// the reference the fused kernels must match bitwise.
func applyActRef(data []float64, act EpilogueAct) {
	for i, v := range data {
		switch act {
		case ActReLU:
			if !(v > 0) {
				data[i] = 0
			}
		case ActTanh:
			data[i] = ScalarTanh(v)
		case ActSigmoid:
			data[i] = ScalarSigmoid(v)
		}
	}
}

var allActs = []EpilogueAct{ActNone, ActReLU, ActTanh, ActSigmoid}

// TestLinearForwardMatchesUnfused checks the fused linear forward is
// bitwise identical to MatMulTransB + bias pass + activation, on both
// dispatch tiers and across worker counts.
func TestLinearForwardMatchesUnfused(t *testing.T) {
	for _, s := range []struct{ m, k, n int }{
		{3, 5, 7},    // small tier
		{64, 64, 64}, // packed tier
		{33, 65, 17}, // packed tier, odd edges
	} {
		rng := rand.New(rand.NewSource(int64(s.m*31 + s.k*7 + s.n)))
		x := randMat(rng, s.m, s.k)
		w := randMat(rng, s.n, s.k)
		bias := make([]float64, s.n)
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		for _, act := range allActs {
			want := New(s.m, s.n)
			MatMulTransB(want, x, w)
			for i := 0; i < s.m; i++ {
				row := want.Data[i*s.n : (i+1)*s.n]
				for j, bv := range bias {
					row[j] += bv
				}
			}
			applyActRef(want.Data, act)
			got := New(s.m, s.n)
			label := fmt.Sprintf("LinearForward %dx%dx%d act=%d", s.m, s.k, s.n, act)
			assertBitwise(t, label, func() *Tensor {
				LinearForward(got, x, w, bias, act)
				return got
			})
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s: differs from unfused at %d", label, i)
				}
			}
		}
	}
}

// TestConvGemmMatchesIm2ColGemm checks the fused conv forward (both the
// serial and the column-parallel form) against the materialized
// Im2Col + MatMul + bias + activation pipeline, bitwise, over assorted
// geometries including padding, stride, and rectangular kernels.
func TestConvGemmMatchesIm2ColGemm(t *testing.T) {
	cases := []struct {
		c, h, w, outC int
		g             ConvGeom
	}{
		{1, 5, 5, 2, ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1}},
		{3, 13, 11, 8, ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}},
		{2, 12, 9, 5, ConvGeom{KH: 2, KW: 5, SH: 2, SW: 1, PH: 0, PW: 2}},
		{4, 16, 16, 16, ConvGeom{KH: 5, KW: 5, SH: 1, SW: 1, PH: 2, PW: 2}},
	}
	for ci, tc := range cases {
		rng := rand.New(rand.NewSource(int64(100 + ci)))
		img := New(tc.c, tc.h, tc.w)
		img.FillRandn(rng, 0, 1)
		kr := tc.c * tc.g.KH * tc.g.KW
		wmat := randMat(rng, tc.outC, kr)
		bias := make([]float64, tc.outC)
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		oh, ow := tc.g.OutSize(tc.h, tc.w)
		p := oh * ow
		cols := New(kr, p)
		Im2Col(cols, img, tc.g)
		for _, act := range allActs {
			want := New(tc.outC, p)
			MatMul(want, wmat, cols)
			for r := 0; r < tc.outC; r++ {
				row := want.Data[r*p : (r+1)*p]
				for j := range row {
					row[j] += bias[r]
				}
			}
			applyActRef(want.Data, act)

			got := make([]float64, tc.outC*p)
			ConvGemmBiasActInto(got, wmat.Data, img.Data, tc.c, tc.h, tc.w, tc.g, tc.outC, bias, act)
			label := fmt.Sprintf("ConvGemm case=%d act=%d", ci, act)
			for i := range want.Data {
				if got[i] != want.Data[i] {
					t.Fatalf("%s: serial fused differs from im2col pipeline at %d", label, i)
				}
			}

			// Column-parallel form: bitwise equal to the serial form at
			// every worker count.
			par := New(tc.outC, p)
			assertBitwise(t, label+" parallel", func() *Tensor {
				ConvGemmBiasAct(par.Data, wmat.Data, img.Data, tc.c, tc.h, tc.w, tc.g, tc.outC, bias, act)
				return par
			})
			for i := range want.Data {
				if par.Data[i] != want.Data[i] {
					t.Fatalf("%s: parallel fused differs from im2col pipeline at %d", label, i)
				}
			}
		}
	}
}

// TestGemmSteadyStateAllocs pins the pooled-scratch guarantee: after
// warmup, the packed-tier entry points allocate nothing on the serial
// path (the path every conv sample shard and every workers=1 run takes).
func TestGemmSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocs/op is pinned in non-race builds")
	}
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	rng := rand.New(rand.NewSource(9))
	a := randMat(rng, 64, 64)
	b := randMat(rng, 64, 64)
	dst := New(64, 64)
	bias := make([]float64, 64)

	cases := []struct {
		name string
		fn   func()
	}{
		{"MatMul", func() { MatMul(dst, a, b) }},
		{"MatMulTransB", func() { MatMulTransB(dst, a, b) }},
		{"LinearForward", func() { LinearForward(dst, a, b, bias, ActReLU) }},
	}
	img := New(3, 16, 16)
	img.FillRandn(rng, 0, 1)
	g := ConvGeom{KH: 5, KW: 5, SH: 1, SW: 1, PH: 2, PW: 2}
	wmat := randMat(rng, 16, 3*25)
	convDst := make([]float64, 16*16*16)
	convBias := make([]float64, 16)
	cases = append(cases, struct {
		name string
		fn   func()
	}{"ConvGemmBiasActInto", func() {
		ConvGemmBiasActInto(convDst, wmat.Data, img.Data, 3, 16, 16, g, 16, convBias, ActReLU)
	}})

	for _, tc := range cases {
		tc.fn() // warm the scratch pool
		if allocs := testing.AllocsPerRun(10, tc.fn); allocs > 0 {
			t.Errorf("%s: %v allocs/op in steady state, want 0", tc.name, allocs)
		}
	}
}
