package tensor

import (
	"flag"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"sasgd/internal/parallel"
)

// benchWorkers selects the worker counts the kernel sweep benchmarks run
// at, e.g. go test -bench KernelMatMul ./internal/tensor -workers 1,2,4,8
// (the package path must precede -workers: go test stops reading
// package arguments at the first flag it does not recognise itself).
var benchWorkers = flag.String("workers", "1,2,4,8", "comma-separated worker counts for kernel benchmark sweeps")

func workerCounts(b *testing.B) []int {
	b.Helper()
	var ws []int
	for _, f := range strings.Split(*benchWorkers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			b.Fatalf("bad -workers entry %q", f)
		}
		ws = append(ws, w)
	}
	return ws
}

func benchMat(b *testing.B, n int) (*Tensor, *Tensor, *Tensor) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	a, bb, c := New(n, n), New(n, n), New(n, n)
	a.FillRandn(rng, 0, 1)
	bb.FillRandn(rng, 0, 1)
	return a, bb, c
}

func BenchmarkMatMul64(b *testing.B) {
	a, x, c := benchMat(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, x)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	a, x, c := benchMat(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, x)
	}
}

func BenchmarkMatMulTransA128(b *testing.B) {
	a, x, c := benchMat(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransA(c, a, x)
	}
}

func BenchmarkMatMulTransB128(b *testing.B) {
	a, x, c := benchMat(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(c, a, x)
	}
}

// BenchmarkKernelMatMulWorkers sweeps the GEMM kernel across matrix
// sizes and worker counts; scripts/bench_kernels.sh records the results
// in BENCH_KERNELS.json to track the perf trajectory across PRs.
func BenchmarkKernelMatMulWorkers(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		a, x, c := benchMat(b, n)
		for _, w := range workerCounts(b) {
			b.Run(fmt.Sprintf("n%d/w%d", n, w), func(b *testing.B) {
				defer parallel.SetWorkers(parallel.SetWorkers(w))
				b.SetBytes(int64(3 * n * n * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMul(c, a, x)
				}
			})
		}
	}
}

// BenchmarkAxpyWorkers sweeps the AXPY kernel (the SGD update hot loop)
// across worker counts at flattened-model scale.
func BenchmarkAxpyWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 21
	x, y := New(n), New(n)
	x.FillRandn(rng, 0, 1)
	for _, w := range workerCounts(b) {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			defer parallel.SetWorkers(parallel.SetWorkers(w))
			b.SetBytes(2 * n * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Axpy(0.5, x.Data, y.Data)
			}
		})
	}
}

func BenchmarkAxpy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := New(1_000_000), New(1_000_000)
	x.FillRandn(rng, 0, 1)
	b.SetBytes(2 * 1_000_000 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(0.5, x.Data, y.Data)
	}
}

func BenchmarkIm2ColCIFARFirstLayer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	img := New(3, 32, 32)
	img.FillRandn(rng, 0, 1)
	g := ConvGeom{KH: 5, KW: 5, SH: 1, SW: 1}
	oh, ow := g.OutSize(32, 32)
	cols := New(3*25, oh*ow)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(cols, img, g)
	}
}

func BenchmarkCol2ImCIFARFirstLayer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := ConvGeom{KH: 5, KW: 5, SH: 1, SW: 1}
	oh, ow := g.OutSize(32, 32)
	cols := New(3*25, oh*ow)
	cols.FillRandn(rng, 0, 1)
	dst := New(3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Col2Im(dst, cols, g)
	}
}

// matmulAccRangeZeroSkip is the pre-packed-engine small-tier loop body,
// retained verbatim (including its data-dependent `av == 0` skip) so
// BenchmarkMatMulZeroSkip can measure what the skip costs on dense data.
// It is not called by any kernel.
func matmulAccRangeZeroSkip(c, a, b []float64, k, n, lo, hi int) {
	lb := lBlock(k, n)
	for l0 := 0; l0 < k; l0 += lb {
		l1 := l0 + lb
		if l1 > k {
			l1 = k
		}
		for i := lo; i < hi; i++ {
			ci := c[i*n : i*n+n]
			ai := a[i*k : i*k+k]
			for l := l0; l < l1; l++ {
				av := ai[l]
				if av == 0 {
					continue
				}
				bl := b[l*n : l*n+n]
				for j, bv := range bl {
					ci[j] += av * bv
				}
			}
		}
	}
}

// BenchmarkMatMulZeroSkip pins the satellite decision to drop the
// `av == 0` skip from the dense small-tier loop. On dense Gaussian data
// the branch never fires and is perfectly predicted, so the two loops
// measure within noise of each other — the skip was dead weight, not a
// win, and removing it makes the small tier's ±0/NaN propagation match
// the packed tier, which always multiplies. Run both sub-benchmarks to
// see the (null) delta.
func BenchmarkMatMulZeroSkip(b *testing.B) {
	const n = 96 // below the packed-tier threshold shape class this loop serves
	a, x, c := benchMat(b, n)
	b.Run("skip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matmulAccRangeZeroSkip(c.Data, a.Data, x.Data, n, n, 0, n)
		}
	})
	b.Run("noskip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matmulAccRange(c.Data, a.Data, x.Data, n, n, 0, n)
		}
	})
}

// BenchmarkKernelMatMulTransWorkers sweeps the transposed-operand GEMM
// kernels (backward-pass shapes) the same way BenchmarkKernelMatMulWorkers
// does, for BENCH_KERNELS.json.
func BenchmarkKernelMatMulTransWorkers(b *testing.B) {
	for _, n := range []int{128, 256} {
		a, x, c := benchMat(b, n)
		for _, w := range workerCounts(b) {
			b.Run(fmt.Sprintf("transA/n%d/w%d", n, w), func(b *testing.B) {
				defer parallel.SetWorkers(parallel.SetWorkers(w))
				b.SetBytes(int64(3 * n * n * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMulTransA(c, a, x)
				}
			})
			b.Run(fmt.Sprintf("transB/n%d/w%d", n, w), func(b *testing.B) {
				defer parallel.SetWorkers(parallel.SetWorkers(w))
				b.SetBytes(int64(3 * n * n * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMulTransB(c, a, x)
				}
			})
		}
	}
}

// BenchmarkKernelMatMulOdd measures the packed engine on shapes that
// exercise the odd-row and padded-panel edges (worst case for tiling
// overhead).
func BenchmarkKernelMatMulOdd(b *testing.B) {
	for _, n := range []int{65, 129, 257} {
		a, x, c := benchMat(b, n)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			defer parallel.SetWorkers(parallel.SetWorkers(1))
			b.SetBytes(int64(3 * n * n * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(c, a, x)
			}
		})
	}
}

// BenchmarkKernelConvFused measures the fused conv forward (panels
// packed straight from the image) on the CIFAR first-layer shape.
func BenchmarkKernelConvFused(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	img := New(3, 32, 32)
	img.FillRandn(rng, 0, 1)
	g := ConvGeom{KH: 5, KW: 5, SH: 1, SW: 1}
	oh, ow := g.OutSize(32, 32)
	const outC = 64
	w := New(outC, 3*25)
	w.FillRandn(rng, 0, 1)
	bias := make([]float64, outC)
	dst := make([]float64, outC*oh*ow)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ConvGemmBiasActInto(dst, w.Data, img.Data, 3, 32, 32, g, outC, bias, ActReLU)
		}
	})
	for _, wk := range workerCounts(b) {
		b.Run(fmt.Sprintf("cols/w%d", wk), func(b *testing.B) {
			defer parallel.SetWorkers(parallel.SetWorkers(wk))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ConvGemmBiasAct(dst, w.Data, img.Data, 3, 32, 32, g, outC, bias, ActReLU)
			}
		})
	}
}
