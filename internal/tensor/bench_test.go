package tensor

import (
	"math/rand"
	"testing"
)

func benchMat(b *testing.B, n int) (*Tensor, *Tensor, *Tensor) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	a, bb, c := New(n, n), New(n, n), New(n, n)
	a.FillRandn(rng, 0, 1)
	bb.FillRandn(rng, 0, 1)
	return a, bb, c
}

func BenchmarkMatMul64(b *testing.B) {
	a, x, c := benchMat(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, x)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	a, x, c := benchMat(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, x)
	}
}

func BenchmarkMatMulTransA128(b *testing.B) {
	a, x, c := benchMat(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransA(c, a, x)
	}
}

func BenchmarkMatMulTransB128(b *testing.B) {
	a, x, c := benchMat(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(c, a, x)
	}
}

func BenchmarkAxpy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := New(1_000_000), New(1_000_000)
	x.FillRandn(rng, 0, 1)
	b.SetBytes(2 * 1_000_000 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(0.5, x.Data, y.Data)
	}
}

func BenchmarkIm2ColCIFARFirstLayer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	img := New(3, 32, 32)
	img.FillRandn(rng, 0, 1)
	g := ConvGeom{KH: 5, KW: 5, SH: 1, SW: 1}
	oh, ow := g.OutSize(32, 32)
	cols := New(3*25, oh*ow)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(cols, img, g)
	}
}

func BenchmarkCol2ImCIFARFirstLayer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := ConvGeom{KH: 5, KW: 5, SH: 1, SW: 1}
	oh, ow := g.OutSize(32, 32)
	cols := New(3*25, oh*ow)
	cols.FillRandn(rng, 0, 1)
	dst := New(3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Col2Im(dst, cols, g)
	}
}
