package tensor

import (
	"flag"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"sasgd/internal/parallel"
)

// benchWorkers selects the worker counts the kernel sweep benchmarks run
// at, e.g. go test -bench KernelMatMul ./internal/tensor -workers 1,2,4,8
// (the package path must precede -workers: go test stops reading
// package arguments at the first flag it does not recognise itself).
var benchWorkers = flag.String("workers", "1,2,4,8", "comma-separated worker counts for kernel benchmark sweeps")

func workerCounts(b *testing.B) []int {
	b.Helper()
	var ws []int
	for _, f := range strings.Split(*benchWorkers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			b.Fatalf("bad -workers entry %q", f)
		}
		ws = append(ws, w)
	}
	return ws
}

func benchMat(b *testing.B, n int) (*Tensor, *Tensor, *Tensor) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	a, bb, c := New(n, n), New(n, n), New(n, n)
	a.FillRandn(rng, 0, 1)
	bb.FillRandn(rng, 0, 1)
	return a, bb, c
}

func BenchmarkMatMul64(b *testing.B) {
	a, x, c := benchMat(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, x)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	a, x, c := benchMat(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, x)
	}
}

func BenchmarkMatMulTransA128(b *testing.B) {
	a, x, c := benchMat(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransA(c, a, x)
	}
}

func BenchmarkMatMulTransB128(b *testing.B) {
	a, x, c := benchMat(b, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(c, a, x)
	}
}

// BenchmarkKernelMatMulWorkers sweeps the GEMM kernel across matrix
// sizes and worker counts; scripts/bench_kernels.sh records the results
// in BENCH_KERNELS.json to track the perf trajectory across PRs.
func BenchmarkKernelMatMulWorkers(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		a, x, c := benchMat(b, n)
		for _, w := range workerCounts(b) {
			b.Run(fmt.Sprintf("n%d/w%d", n, w), func(b *testing.B) {
				defer parallel.SetWorkers(parallel.SetWorkers(w))
				b.SetBytes(int64(3 * n * n * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMul(c, a, x)
				}
			})
		}
	}
}

// BenchmarkAxpyWorkers sweeps the AXPY kernel (the SGD update hot loop)
// across worker counts at flattened-model scale.
func BenchmarkAxpyWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 21
	x, y := New(n), New(n)
	x.FillRandn(rng, 0, 1)
	for _, w := range workerCounts(b) {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			defer parallel.SetWorkers(parallel.SetWorkers(w))
			b.SetBytes(2 * n * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Axpy(0.5, x.Data, y.Data)
			}
		})
	}
}

func BenchmarkAxpy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := New(1_000_000), New(1_000_000)
	x.FillRandn(rng, 0, 1)
	b.SetBytes(2 * 1_000_000 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(0.5, x.Data, y.Data)
	}
}

func BenchmarkIm2ColCIFARFirstLayer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	img := New(3, 32, 32)
	img.FillRandn(rng, 0, 1)
	g := ConvGeom{KH: 5, KW: 5, SH: 1, SW: 1}
	oh, ow := g.OutSize(32, 32)
	cols := New(3*25, oh*ow)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(cols, img, g)
	}
}

func BenchmarkCol2ImCIFARFirstLayer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := ConvGeom{KH: 5, KW: 5, SH: 1, SW: 1}
	oh, ow := g.OutSize(32, 32)
	cols := New(3*25, oh*ow)
	cols.FillRandn(rng, 0, 1)
	dst := New(3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Col2Im(dst, cols, g)
	}
}
