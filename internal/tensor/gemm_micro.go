package tensor

// The register-tiled microkernels of the packed GEMM engine. Everything
// in this file is written in a bounds-check-free idiom the compiler can
// prove: loop conditions test len() of the packed operand slices
// directly, operand indices stay below the tested lengths, and C tiles
// arrive as array pointers. scripts/check.sh builds this package with
// -d=ssa/check_bce and fails if a bounds check ever reappears here, so
// keep new code to the same idiom.
//
// Determinism contract: micro2x4 and micro1x4 add each product into its
// C accumulator in strictly ascending l order — the k-unrolling issues
// more independent add CHAINS (one per C element), never reorders the
// adds within a chain — so together with ascending KC blocks in the
// driver they are bitwise identical to the serial ikj loop at any
// blocking and any worker count. dotUnroll4 deliberately breaks this
// (four interleaved partial sums) and is only reachable behind the
// FastKernels gate.

// micro2x4 computes a 2×4 tile: c[r][j] += Σ_l ap[l*2+r] * bp[l*4+j],
// with l unrolled by four. ap is an A pair-panel (2 rows, l-major), bp a
// B column panel (4 columns, l-major); both must have the same l extent.
func micro2x4(c0, c1 *[4]float64, ap, bp []float64) {
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	for len(ap) >= 8 && len(bp) >= 16 {
		a0, a1 := ap[0], ap[1]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = ap[2], ap[3]
		b0, b1, b2, b3 = bp[4], bp[5], bp[6], bp[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = ap[4], ap[5]
		b0, b1, b2, b3 = bp[8], bp[9], bp[10], bp[11]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = ap[6], ap[7]
		b0, b1, b2, b3 = bp[12], bp[13], bp[14], bp[15]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		ap = ap[8:]
		bp = bp[16:]
	}
	for len(ap) >= 2 && len(bp) >= 4 {
		a0, a1 := ap[0], ap[1]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		ap = ap[2:]
		bp = bp[4:]
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
}

// micro1x4 is the single-row edge kernel: c[j] += Σ_l ap[l] * bp[l*4+j].
func micro1x4(c0 *[4]float64, ap, bp []float64) {
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	for len(ap) >= 4 && len(bp) >= 16 {
		a0 := ap[0]
		c00 += a0 * bp[0]
		c01 += a0 * bp[1]
		c02 += a0 * bp[2]
		c03 += a0 * bp[3]
		a0 = ap[1]
		c00 += a0 * bp[4]
		c01 += a0 * bp[5]
		c02 += a0 * bp[6]
		c03 += a0 * bp[7]
		a0 = ap[2]
		c00 += a0 * bp[8]
		c01 += a0 * bp[9]
		c02 += a0 * bp[10]
		c03 += a0 * bp[11]
		a0 = ap[3]
		c00 += a0 * bp[12]
		c01 += a0 * bp[13]
		c02 += a0 * bp[14]
		c03 += a0 * bp[15]
		ap = ap[4:]
		bp = bp[16:]
	}
	for len(ap) >= 1 && len(bp) >= 4 {
		a0 := ap[0]
		c00 += a0 * bp[0]
		c01 += a0 * bp[1]
		c02 += a0 * bp[2]
		c03 += a0 * bp[3]
		ap = ap[1:]
		bp = bp[4:]
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
}

// dotSerial is the bitwise-reference dot product: one accumulator,
// strictly ascending index order.
func dotSerial(a, b []float64) float64 {
	s := 0.0
	for len(a) >= 1 && len(b) >= 1 {
		s += a[0] * b[0]
		a = a[1:]
		b = b[1:]
	}
	return s
}

// dotUnroll4 computes a·b with four interleaved partial sums, breaking
// the single-accumulator add-latency chain that bounds dotSerial (~4
// cycles per element on scalar amd64). It reassociates the summation and
// is therefore only value-equal to dotSerial within rounding; callers
// must keep it behind the FastKernels gate.
func dotUnroll4(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	for len(a) >= 4 && len(b) >= 4 {
		s0 += a[0] * b[0]
		s1 += a[1] * b[1]
		s2 += a[2] * b[2]
		s3 += a[3] * b[3]
		a = a[4:]
		b = b[4:]
	}
	for len(a) >= 1 && len(b) >= 1 {
		s0 += a[0] * b[0]
		a = a[1:]
		b = b[1:]
	}
	return (s0 + s1) + (s2 + s3)
}
