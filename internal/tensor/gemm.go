package tensor

import (
	"math"
	"sync"
	"sync/atomic"

	"sasgd/internal/parallel"
)

// This file is the cache-blocked, register-tiled GEMM engine behind the
// MatMul family in matmul.go and the fused layer-forward entry points
// (LinearForward, ConvGemmBiasAct). The structure is the classic packed
// formulation:
//
//   - B is packed once per call into column panels: panel j0 holds
//     columns [j0, j0+NR) in l-major order (bp[j0*k + l*NR + jj]), the
//     exact access order of the microkernel. The last panel is
//     zero-padded to NR columns so every panel has the same stride; the
//     padded lanes are computed into a stack temporary and discarded.
//   - A is packed per (row pair × KC block) into a pair-panel
//     (ap[l*MR + r]) living in a stack array — 4 KiB, no heap.
//   - The driver walks MC row blocks; within a block, KC slabs in
//     ascending-l order; within a slab, row pairs × B panels through the
//     2×4 microkernel. After a row block's last KC slab, the fused
//     epilogue (bias add + activation) runs over the block's rows while
//     they are still cache-hot.
//
// Determinism contract: every C element accumulates its k products in
// strictly ascending l order into a single accumulator chain — the KC
// slabs are visited in ascending order and the float64 store/reload of C
// between slabs is exact — so the packed engine is bitwise identical to
// the serial ikj loop, at any blocking and any worker count. Row shards
// (ForAligned over MR pairs) and column shards (fused conv) only change
// which goroutine computes an element, never its summation order. The
// only reordered summations in this package (dotUnroll4's four-way
// partial sums) sit behind the FastKernels gate below.

// fastKernels gates the reordered-summation kernels. Default off: every
// default-path kernel is bitwise reproducible against the serial loops.
var fastKernels atomic.Bool

// SetFastKernels toggles the fast (reordered-summation) kernel variants
// and returns the previous setting. When enabled, dot-product-shaped
// kernels (the A·Bᵀ small path and Dot) use four-way partial-sum
// unrolling: value-equal to the default kernels within ≤1e-12 relative
// tolerance (see TestFastKernelsEquivalence) but not bitwise identical.
// Results remain bitwise reproducible across worker counts in both
// modes; the gate trades cross-mode reproducibility for dot-product
// throughput. Training drivers plumb Config.FastKernels /
// SASGD_FAST_KERNELS through here.
func SetFastKernels(on bool) (prev bool) { return fastKernels.Swap(on) }

// FastKernelsEnabled reports whether the reordered-summation kernels are
// selected.
func FastKernelsEnabled() bool { return fastKernels.Load() }

// Dot returns the dot product of two equal-length slices: the bitwise
// ascending-order sum by default, the four-accumulator unrolled version
// under FastKernels. Layers use it for reduction loops (e.g. Conv2D's
// weight-gradient accumulation) so the gate reaches training backward
// passes too.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot needs equal-length slices")
	}
	if fastKernels.Load() {
		return dotUnroll4(a, b)
	}
	return dotSerial(a, b)
}

// EpilogueAct selects the activation a fused GEMM applies to each output
// element as its row block leaves the microkernel.
type EpilogueAct uint8

// The fusable activations. Values match the nn layers bit-for-bit: a
// fused forward is bitwise identical to the unfused layer sequence.
const (
	ActNone EpilogueAct = iota
	ActReLU
	ActTanh
	ActSigmoid
)

// ScalarTanh is the clamped exponential tanh shared by the nn.Tanh layer
// and the fused GEMM epilogue, so the fused and unfused paths are
// bitwise identical. (math.Tanh is accurate but measurably slower; the
// clamp keeps the exp in range.)
func ScalarTanh(v float64) float64 {
	if v > 20 {
		return 1
	}
	if v < -20 {
		return -1
	}
	e := math.Exp(2 * v)
	return (e - 1) / (e + 1)
}

// ScalarSigmoid is the logistic function shared by nn.Sigmoid and the
// fused epilogue.
func ScalarSigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// epilogue is the fused bias+activation pass a GEMM applies per MC row
// block. rowBias[i] is added to every element of (absolute) row i — the
// conv layout, one bias per output channel. colBias[jOff+j] is added to
// column j — the linear layout, one bias per output feature. The bias
// lands after the full dot product and before the activation, the exact
// order of the unfused layer sequence, so fusion is bitwise invisible.
type epilogue struct {
	rowBias []float64
	colBias []float64
	act     EpilogueAct
}

// Value receivers throughout: taking an epilogue's address inside the
// GEMM entry points would force it (and everything captured alongside
// it) onto the heap and break the zero-alloc steady state.
func (e epilogue) active() bool {
	return e.rowBias != nil || e.colBias != nil || e.act != ActNone
}

// apply runs the epilogue over rows [lo, hi) of the n columns starting
// at column jOff of a matrix with row stride ldc.
func (e epilogue) apply(c []float64, ldc, jOff, n, lo, hi int) {
	if !e.active() {
		return
	}
	for i := lo; i < hi; i++ {
		row := c[i*ldc+jOff : i*ldc+jOff+n : i*ldc+jOff+n]
		if e.rowBias != nil {
			rb := e.rowBias[i]
			for j := range row {
				row[j] += rb
			}
		}
		if e.colBias != nil {
			cb := e.colBias[jOff : jOff+n]
			for j, bv := range cb {
				row[j] += bv
			}
		}
		switch e.act {
		case ActReLU:
			for j, v := range row {
				if !(v > 0) {
					row[j] = 0
				}
			}
		case ActTanh:
			for j, v := range row {
				row[j] = ScalarTanh(v)
			}
		case ActSigmoid:
			for j, v := range row {
				row[j] = ScalarSigmoid(v)
			}
		}
	}
}

// aSource describes where the engine reads logical A rows from: a plain
// m×k row-major matrix (trans=false, ld=k) or a k×m matrix holding Aᵀ
// (trans=true, ld=m), so MatMulTransA packs the transpose on the fly
// instead of materializing it.
type aSource struct {
	data  []float64
	ld    int
	trans bool
}

// pack copies `rows` (1 or 2) logical rows starting at r0, columns
// [l0, l1), into the pair-panel layout ap[(l-l0)*rows + r].
func (s aSource) pack(ap []float64, r0, rows, l0, l1 int) {
	kcb := l1 - l0
	if !s.trans {
		if rows == 2 {
			p0 := s.data[r0*s.ld+l0 : r0*s.ld+l1]
			p1 := s.data[(r0+1)*s.ld+l0 : (r0+1)*s.ld+l1]
			for l, v := range p0 {
				ap[2*l] = v
				ap[2*l+1] = p1[l]
			}
		} else {
			copy(ap[:kcb], s.data[r0*s.ld+l0:r0*s.ld+l1])
		}
		return
	}
	if rows == 2 {
		for l := 0; l < kcb; l++ {
			base := (l0+l)*s.ld + r0
			ap[2*l] = s.data[base]
			ap[2*l+1] = s.data[base+1]
		}
	} else {
		for l := 0; l < kcb; l++ {
			ap[l] = s.data[(l0+l)*s.ld+r0]
		}
	}
}

// packedBLen returns the packed-panel buffer length for a k×n B: full
// NR-wide panels, the last zero-padded.
func packedBLen(k, n int) int {
	return (n + gemmNR - 1) / gemmNR * gemmNR * k
}

// packBPanels packs a k×n row-major B into NR-wide column panels.
func packBPanels(bp, b []float64, k, n int) {
	for j0 := 0; j0 < n; j0 += gemmNR {
		w := n - j0
		if w > gemmNR {
			w = gemmNR
		}
		base := j0 * k
		if w == gemmNR {
			for l := 0; l < k; l++ {
				src := b[l*n+j0 : l*n+j0+gemmNR : l*n+j0+gemmNR]
				dst := bp[base+l*gemmNR : base+l*gemmNR+gemmNR : base+l*gemmNR+gemmNR]
				dst[0], dst[1], dst[2], dst[3] = src[0], src[1], src[2], src[3]
			}
			continue
		}
		for l := 0; l < k; l++ {
			dst := bp[base+l*gemmNR : base+l*gemmNR+gemmNR]
			jj := copy(dst, b[l*n+j0:l*n+j0+w])
			for ; jj < gemmNR; jj++ {
				dst[jj] = 0
			}
		}
	}
}

// packBTransPanels packs an n×k row-major matrix holding Bᵀ into the
// same panel layout (logical B[l,j] = b[j*k+l]). Iterating source rows
// keeps the reads contiguous; the writes stride by NR.
func packBTransPanels(bp, b []float64, k, n int) {
	for j0 := 0; j0 < n; j0 += gemmNR {
		w := n - j0
		if w > gemmNR {
			w = gemmNR
		}
		base := j0 * k
		for jj := 0; jj < w; jj++ {
			src := b[(j0+jj)*k : (j0+jj)*k+k]
			for l, v := range src {
				bp[base+l*gemmNR+jj] = v
			}
		}
		for jj := w; jj < gemmNR; jj++ {
			for l := 0; l < k; l++ {
				bp[base+l*gemmNR+jj] = 0
			}
		}
	}
}

// packConvPanels packs columns [jLo, jHi) of the implicit im2col matrix
// of a (c,h,w) image directly into panel layout — the fused conv
// forward's replacement for Im2Col + packBPanels, so the full column
// matrix is never materialized. Row l of the implicit matrix decodes to
// (channel, ky, kx) and column j to the output pixel (j/ow, j%ow);
// padding reads as zero. jLo must be NR-aligned (the column shards of
// ConvGemmBiasAct are); bp is indexed relative to jLo.
func packConvPanels(bp, img []float64, c, h, w int, g ConvGeom, ow, jLo, jHi int) {
	k := c * g.KH * g.KW
	var iy0, ix0 [gemmNR]int
	for j0 := jLo; j0 < jHi; j0 += gemmNR {
		pw := jHi - j0
		if pw > gemmNR {
			pw = gemmNR
		}
		for jj := 0; jj < pw; jj++ {
			j := j0 + jj
			iy0[jj] = (j/ow)*g.SH - g.PH
			ix0[jj] = (j%ow)*g.SW - g.PW
		}
		base := (j0 - jLo) * k
		l := 0
		for ch := 0; ch < c; ch++ {
			chBase := ch * h * w
			for ky := 0; ky < g.KH; ky++ {
				for kx := 0; kx < g.KW; kx++ {
					dst := bp[base+l*gemmNR : base+l*gemmNR+gemmNR]
					for jj := 0; jj < pw; jj++ {
						iy := iy0[jj] + ky
						ix := ix0[jj] + kx
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							dst[jj] = img[chBase+iy*w+ix]
						} else {
							dst[jj] = 0
						}
					}
					for jj := pw; jj < gemmNR; jj++ {
						dst[jj] = 0
					}
					l++
				}
			}
		}
	}
}

// gemmScratch recycles packed-B panel buffers across calls; the pool
// holds pointers so steady-state Get/Put never allocates.
type gemmScratch struct{ buf []float64 }

var gemmPool sync.Pool

func getGemmScratch(n int) *gemmScratch {
	if v := gemmPool.Get(); v != nil {
		s := v.(*gemmScratch)
		if cap(s.buf) >= n {
			s.buf = s.buf[:n]
			return s
		}
	}
	return &gemmScratch{buf: make([]float64, n)}
}

func putGemmScratch(s *gemmScratch) { gemmPool.Put(s) }

// gemmPackedRange runs the packed engine over output rows [lo, hi) and
// the n columns starting at column jOff of a destination with row
// stride ldc. bp holds those n columns of B in panel layout; a supplies
// logical A rows. With acc the products accumulate into the existing C
// values (seeding each element's chain), otherwise the rows are zeroed
// first. The epilogue runs per MC row block, after the block's last KC
// slab.
func gemmPackedRange(c []float64, a aSource, bp []float64, k, n, ldc, jOff, lo, hi int, acc bool, epi epilogue) {
	if !acc {
		for i := lo; i < hi; i++ {
			row := c[i*ldc+jOff : i*ldc+jOff+n]
			for j := range row {
				row[j] = 0
			}
		}
	}
	var ap [gemmMR * gemmKC]float64
	nFull := n &^ (gemmNR - 1)
	nTail := n - nFull
	mc, kc := tileParams(hi-lo, k, n)
	for i0 := lo; i0 < hi; i0 += mc {
		iEnd := i0 + mc
		if iEnd > hi {
			iEnd = hi
		}
		for l0 := 0; l0 < k; l0 += kc {
			l1 := l0 + kc
			if l1 > k {
				l1 = k
			}
			kcb := l1 - l0
			for r0 := i0; r0 < iEnd; r0 += gemmMR {
				if r0+gemmMR <= iEnd {
					a.pack(ap[:], r0, 2, l0, l1)
					apb := ap[: kcb*2 : kcb*2]
					cr0 := c[r0*ldc+jOff:]
					cr1 := c[(r0+1)*ldc+jOff:]
					for j0 := 0; j0 < nFull; j0 += gemmNR {
						boff := j0*k + l0*gemmNR
						bpb := bp[boff : boff+kcb*gemmNR : boff+kcb*gemmNR]
						micro2x4((*[4]float64)(cr0[j0:]), (*[4]float64)(cr1[j0:]), apb, bpb)
					}
					if nTail > 0 {
						// Padded last panel: run the full-width kernel on a
						// stack tile seeded from C and keep only the real
						// columns. The pad lanes multiply packed zeros.
						var t0, t1 [gemmNR]float64
						copy(t0[:nTail], cr0[nFull:nFull+nTail])
						copy(t1[:nTail], cr1[nFull:nFull+nTail])
						boff := nFull*k + l0*gemmNR
						bpb := bp[boff : boff+kcb*gemmNR : boff+kcb*gemmNR]
						micro2x4(&t0, &t1, apb, bpb)
						copy(cr0[nFull:nFull+nTail], t0[:nTail])
						copy(cr1[nFull:nFull+nTail], t1[:nTail])
					}
				} else {
					a.pack(ap[:], r0, 1, l0, l1)
					apb := ap[:kcb:kcb]
					cr0 := c[r0*ldc+jOff:]
					for j0 := 0; j0 < nFull; j0 += gemmNR {
						boff := j0*k + l0*gemmNR
						bpb := bp[boff : boff+kcb*gemmNR : boff+kcb*gemmNR]
						micro1x4((*[4]float64)(cr0[j0:]), apb, bpb)
					}
					if nTail > 0 {
						var t0 [gemmNR]float64
						copy(t0[:nTail], cr0[nFull:nFull+nTail])
						boff := nFull*k + l0*gemmNR
						bpb := bp[boff : boff+kcb*gemmNR : boff+kcb*gemmNR]
						micro1x4(&t0, apb, bpb)
						copy(cr0[nFull:nFull+nTail], t0[:nTail])
					}
				}
			}
		}
		epi.apply(c, ldc, jOff, n, i0, iEnd)
	}
}

// gemmPackedSerial packs B into pooled scratch and runs the engine over
// all m rows on the calling goroutine — the packed tier behind the
// *Into entry points, whose callers manage their own parallelism.
func gemmPackedSerial(c []float64, a aSource, b []float64, bTrans bool, m, k, n int, acc bool, epi epilogue) {
	s := getGemmScratch(packedBLen(k, n))
	if bTrans {
		packBTransPanels(s.buf, b, k, n)
	} else {
		packBPanels(s.buf, b, k, n)
	}
	gemmPackedRange(c, a, s.buf, k, n, n, 0, 0, m, acc, epi)
	putGemmScratch(s)
}

// gemmPackedParallel packs B once (pooled scratch) and shards the output
// rows across the worker pool at MR-pair-aligned boundaries, so shards
// carry whole microkernel tiles. Serial calls skip the closure entirely
// to stay allocation-free.
func gemmPackedParallel(c []float64, a aSource, b []float64, bTrans bool, m, k, n int, acc bool, epi epilogue) {
	grain := matmulGrain(k, n)
	if parallel.ShardsAligned(m, gemmMR, grain) <= 1 {
		gemmPackedSerial(c, a, b, bTrans, m, k, n, acc, epi)
		return
	}
	s := getGemmScratch(packedBLen(k, n))
	if bTrans {
		packBTransPanels(s.buf, b, k, n)
	} else {
		packBPanels(s.buf, b, k, n)
	}
	bp := s.buf
	parallel.ForAligned(m, gemmMR, grain, func(lo, hi int) {
		gemmPackedRange(c, a, bp, k, n, n, 0, lo, hi, acc, epi)
	})
	putGemmScratch(s)
}

// LinearForward computes dst = x·Wᵀ + bias with an optional fused
// activation: x is n×in, w is out×in (the Torch nn.Linear layout), bias
// has length out (nil for none), dst is n×out. Bias and activation are
// applied in the epilogue as each row block leaves the microkernel —
// bitwise identical to MatMulTransB followed by a bias pass and the
// activation layer, with two full passes over dst saved.
func LinearForward(dst, x, w *Tensor, bias []float64, act EpilogueAct) {
	m, k, n := checkTransBShapes(dst, x, w, "LinearForward")
	if bias != nil && len(bias) != n {
		panic("tensor: LinearForward bias length mismatch")
	}
	epi := epilogue{colBias: bias, act: act}
	if usePacked(m, k, n) {
		gemmPackedParallel(dst.Data, aSource{data: x.Data, ld: k}, w.Data, true, m, k, n, false, epi)
		return
	}
	c, a, b := dst.Data, x.Data, w.Data
	if parallel.Shards(m, matmulGrain(k, n)) <= 1 {
		matMulTransBRange(c, a, b, k, n, 0, m, false)
		epi.apply(c, n, 0, n, 0, m)
		return
	}
	parallel.For(m, matmulGrain(k, n), func(lo, hi int) {
		matMulTransBRange(c, a, b, k, n, lo, hi, false)
		epi.apply(c, n, 0, n, lo, hi)
	})
}

// ConvGemmBiasActInto is the serial fused conv forward for one sample:
// dst (outC × oh·ow) = wmat (outC × c·KH·KW) times the implicit im2col
// matrix of img (c,h,w), with per-channel bias (nil for none) and an
// optional activation fused into the epilogue. Column panels are packed
// directly from the image, so the im2col matrix is never materialized.
// Always serial — the batched conv layer calls it from sample shards.
func ConvGemmBiasActInto(dst, wmat, img []float64, c, h, w int, g ConvGeom, outC int, bias []float64, act EpilogueAct) {
	oh, ow := g.OutSize(h, w)
	k := c * g.KH * g.KW
	p := oh * ow
	s := getGemmScratch(packedBLen(k, p))
	packConvPanels(s.buf, img, c, h, w, g, ow, 0, p)
	gemmPackedRange(dst, aSource{data: wmat, ld: k}, s.buf, k, p, p, 0, 0, outC, false, epilogue{rowBias: bias, act: act})
	putGemmScratch(s)
}

// ConvGemmBiasAct is ConvGemmBiasActInto parallelized over output
// pixels: column shards at NR-aligned boundaries, each packing its own
// panels straight from the image. Every output element accumulates in
// the same ascending-l order regardless of the shard plan, so results
// are bitwise identical to the serial form at any worker count. Used
// when the batch is too small to occupy the pool with sample shards.
func ConvGemmBiasAct(dst, wmat, img []float64, c, h, w int, g ConvGeom, outC int, bias []float64, act EpilogueAct) {
	oh, ow := g.OutSize(h, w)
	k := c * g.KH * g.KW
	p := oh * ow
	grain := gemmNR
	if rowWork := outC * k; rowWork > 0 && parRowFlops/rowWork > grain {
		grain = parRowFlops / rowWork
	}
	if parallel.ShardsAligned(p, gemmNR, grain) <= 1 {
		ConvGemmBiasActInto(dst, wmat, img, c, h, w, g, outC, bias, act)
		return
	}
	epi := epilogue{rowBias: bias, act: act}
	parallel.ForAligned(p, gemmNR, grain, func(jLo, jHi int) {
		nCols := jHi - jLo
		s := getGemmScratch(packedBLen(k, nCols))
		packConvPanels(s.buf, img, c, h, w, g, ow, jLo, jHi)
		gemmPackedRange(dst, aSource{data: wmat, ld: k}, s.buf, k, nCols, p, jLo, 0, outC, false, epi)
		putGemmScratch(s)
	})
}
