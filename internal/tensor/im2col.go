package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window:
// kernel size, stride, and zero padding. The same geometry type is shared
// by the convolution and pooling layers so that output-size arithmetic
// lives in one place.
type ConvGeom struct {
	KH, KW int // kernel height and width
	SH, SW int // stride
	PH, PW int // zero padding on each side
}

// OutSize returns the spatial output size for an input of h×w, or panics
// if the geometry does not fit.
func (g ConvGeom) OutSize(h, w int) (oh, ow int) {
	if g.KH <= 0 || g.KW <= 0 || g.SH <= 0 || g.SW <= 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry %+v", g))
	}
	oh = (h+2*g.PH-g.KH)/g.SH + 1
	ow = (w+2*g.PW-g.KW)/g.SW + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v does not fit input %dx%d", g, h, w))
	}
	return oh, ow
}

// Im2Col lowers a (C,H,W) image into a (C*KH*KW, OH*OW) column matrix so
// that convolution becomes a single matrix multiplication. dst must be
// preallocated with that shape. Padding reads as zero.
func Im2Col(dst, img *Tensor, g ConvGeom) {
	if img.Dims() != 3 {
		panic("tensor: Im2Col needs a (C,H,W) input")
	}
	c, h, w := img.shape[0], img.shape[1], img.shape[2]
	oh, ow := g.OutSize(h, w)
	rows := c * g.KH * g.KW
	cols := oh * ow
	if dst.Dims() != 2 || dst.shape[0] != rows || dst.shape[1] != cols {
		panic(fmt.Sprintf("tensor: Im2Col destination shape %v, want [%d %d]", dst.shape, rows, cols))
	}
	Im2ColInto(dst.Data, img.Data, c, h, w, g)
}

// Im2ColInto is the raw-slice core of Im2Col for callers (the batched
// convolution layer) that shard a minibatch across workers and cannot
// afford per-sample tensor headers. src is a (c,h,w) image flattened
// row-major; dst must hold c*KH*KW*OH*OW elements.
func Im2ColInto(d, src []float64, c, h, w int, g ConvGeom) {
	oh, ow := g.OutSize(h, w)
	cols := oh * ow
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < g.KH; ky++ {
			for kx := 0; kx < g.KW; kx++ {
				out := d[row*cols : row*cols+cols]
				i := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.SH - g.PH + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							out[i] = 0
							i++
						}
						continue
					}
					rowBase := chBase + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.SW - g.PW + kx
						if ix < 0 || ix >= w {
							out[i] = 0
						} else {
							out[i] = src[rowBase+ix]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Col2Im scatters a (C*KH*KW, OH*OW) column-gradient matrix back into a
// (C,H,W) image gradient, accumulating where windows overlap. dst is
// overwritten (zeroed first).
func Col2Im(dst, cols *Tensor, g ConvGeom) {
	if dst.Dims() != 3 {
		panic("tensor: Col2Im needs a (C,H,W) destination")
	}
	c, h, w := dst.shape[0], dst.shape[1], dst.shape[2]
	oh, ow := g.OutSize(h, w)
	rows := c * g.KH * g.KW
	nc := oh * ow
	if cols.Dims() != 2 || cols.shape[0] != rows || cols.shape[1] != nc {
		panic(fmt.Sprintf("tensor: Col2Im source shape %v, want [%d %d]", cols.shape, rows, nc))
	}
	Col2ImInto(dst.Data, cols.Data, c, h, w, g)
}

// Col2ImInto is the raw-slice core of Col2Im, the scatter counterpart of
// Im2ColInto. d is a (c,h,w) image gradient flattened row-major and is
// overwritten (zeroed first); src must hold c*KH*KW*OH*OW elements.
func Col2ImInto(d, src []float64, c, h, w int, g ConvGeom) {
	oh, ow := g.OutSize(h, w)
	nc := oh * ow
	for i := range d[:c*h*w] {
		d[i] = 0
	}
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < g.KH; ky++ {
			for kx := 0; kx < g.KW; kx++ {
				in := src[row*nc : row*nc+nc]
				i := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.SH - g.PH + ky
					if iy < 0 || iy >= h {
						i += ow
						continue
					}
					rowBase := chBase + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.SW - g.PW + kx
						if ix >= 0 && ix < w {
							d[rowBase+ix] += in[i]
						}
						i++
					}
				}
				row++
			}
		}
	}
}
