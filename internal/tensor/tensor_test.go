package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	cases := []struct {
		shape []int
		size  int
	}{
		{[]int{}, 1},
		{[]int{4}, 4},
		{[]int{2, 3}, 6},
		{[]int{2, 3, 4}, 24},
		{[]int{0, 5}, 0},
	}
	for _, c := range cases {
		tt := New(c.shape...)
		if tt.Size() != c.size {
			t.Errorf("New(%v).Size() = %d, want %d", c.shape, tt.Size(), c.size)
		}
		if tt.Dims() != len(c.shape) {
			t.Errorf("New(%v).Dims() = %d, want %d", c.shape, tt.Dims(), len(c.shape))
		}
	}
}

func TestNewNegativeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFromSlice(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(d, 2, 3)
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %g, want 6", m.At(1, 2))
	}
	m.Set(42, 0, 1)
	if d[1] != 42 {
		t.Error("FromSlice did not adopt backing storage")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	m := New(3, 4, 5)
	m.Set(7.5, 2, 1, 3)
	if got := m.At(2, 1, 3); got != 7.5 {
		t.Errorf("At after Set = %g, want 7.5", got)
	}
	// row-major offset: ((2*4)+1)*5+3 = 48
	if m.Data[48] != 7.5 {
		t.Errorf("flat layout wrong: Data[48] = %g", m.Data[48])
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0, 2}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) did not panic", idx)
				}
			}()
			m.At(idx...)
		}()
	}
}

func TestReshapeSharesData(t *testing.T) {
	m := New(2, 6)
	r := m.Reshape(3, 4)
	r.Set(9, 2, 3)
	if m.At(1, 5) != 9 {
		t.Error("Reshape does not share backing data")
	}
}

func TestReshapeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad Reshape did not panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIsDeep(t *testing.T) {
	m := Full(3, 2, 2)
	c := m.Clone()
	c.Set(0, 0, 0)
	if m.At(0, 0) != 3 {
		t.Error("Clone shares storage with original")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	a.Add(b)
	want := []float64{5, 7, 9}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("Add: got %v, want %v", a.Data, want)
		}
	}
	a.Sub(b)
	for i, w := range []float64{1, 2, 3} {
		if a.Data[i] != w {
			t.Fatalf("Sub: got %v", a.Data)
		}
		_ = i
	}
	a.Mul(b)
	for i, w := range []float64{4, 10, 18} {
		if a.Data[i] != w {
			t.Fatalf("Mul: got %v", a.Data)
		}
		_ = i
	}
	a.Scale(0.5)
	if a.Data[0] != 2 || a.Data[2] != 9 {
		t.Fatalf("Scale: got %v", a.Data)
	}
}

func TestAddScaled(t *testing.T) {
	a := FromSlice([]float64{1, 1}, 2)
	b := FromSlice([]float64{2, 4}, 2)
	a.AddScaled(-0.5, b)
	if a.Data[0] != 0 || a.Data[1] != -1 {
		t.Fatalf("AddScaled: got %v", a.Data)
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	a, b := New(3), New(4)
	for name, fn := range map[string]func(){
		"Add": func() { a.Add(b) },
		"Sub": func() { a.Sub(b) },
		"Mul": func() { a.Mul(b) },
		"Dot": func() { a.Dot(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched sizes did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReductions(t *testing.T) {
	m := FromSlice([]float64{3, -1, 4, 1, -5, 9}, 6)
	if m.Sum() != 11 {
		t.Errorf("Sum = %g, want 11", m.Sum())
	}
	if math.Abs(m.Mean()-11.0/6) > 1e-12 {
		t.Errorf("Mean = %g", m.Mean())
	}
	if m.Max() != 9 {
		t.Errorf("Max = %g, want 9", m.Max())
	}
	if m.Argmax() != 5 {
		t.Errorf("Argmax = %d, want 5", m.Argmax())
	}
	if math.Abs(m.Norm2()-math.Sqrt(9+1+16+1+25+81)) > 1e-12 {
		t.Errorf("Norm2 = %g", m.Norm2())
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, -5, 6}, 3)
	if got := a.Dot(b); got != 12 {
		t.Errorf("Dot = %g, want 12", got)
	}
}

func TestFillRandnMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(20000)
	m.FillRandn(rng, 2, 3)
	mean := m.Mean()
	if math.Abs(mean-2) > 0.1 {
		t.Errorf("FillRandn mean = %g, want ≈2", mean)
	}
	variance := 0.0
	for _, v := range m.Data {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(m.Size())
	if math.Abs(math.Sqrt(variance)-3) > 0.15 {
		t.Errorf("FillRandn std = %g, want ≈3", math.Sqrt(variance))
	}
}

func TestFillUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New(1000)
	m.FillUniform(rng, -0.25, 0.75)
	for _, v := range m.Data {
		if v < -0.25 || v >= 0.75 {
			t.Fatalf("FillUniform value %g out of range", v)
		}
	}
}

func TestEqualTolerance(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1.0005, 2}, 2)
	if !a.Equal(b, 1e-3) {
		t.Error("Equal within tolerance returned false")
	}
	if a.Equal(b, 1e-6) {
		t.Error("Equal outside tolerance returned true")
	}
	c := FromSlice([]float64{1, 2}, 1, 2)
	if a.Equal(c, 1) {
		t.Error("Equal with different shapes returned true")
	}
}

// Property: axpy is linear — axpy(a, x, y) then axpy(-a, x, y) restores y.
func TestAxpyInverseProperty(t *testing.T) {
	f := func(seed int64, a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		x, y := New(37), New(37)
		x.FillRandn(rng, 0, 1)
		y.FillRandn(rng, 0, 1)
		orig := y.Clone()
		Axpy(a, x.Data, y.Data)
		Axpy(-a, x.Data, y.Data)
		return y.Equal(orig, 1e-9*(1+math.Abs(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Sum is invariant under Reshape.
func TestSumReshapeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(6, 4)
		m.FillRandn(rng, 0, 1)
		return math.Abs(m.Sum()-m.Reshape(3, 8).Sum()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if s := small.String(); s == "" {
		t.Error("String of small tensor empty")
	}
	big := New(100)
	if s := big.String(); s == "" {
		t.Error("String of big tensor empty")
	}
}
