package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference implementation all kernels are tested
// against.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += a.At(i, l) * b.At(l, j)
			}
			c.Set(s, i, j)
		}
	}
	return c
}

func randMat(rng *rand.Rand, m, n int) *Tensor {
	t := New(m, n)
	t.FillRandn(rng, 0, 1)
	return t
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {8, 8, 8}, {1, 10, 1}, {13, 1, 6}} {
		a := randMat(rng, dims[0], dims[1])
		b := randMat(rng, dims[1], dims[2])
		got := New(dims[0], dims[2])
		MatMul(got, a, b)
		want := naiveMatMul(a, b)
		if !got.Equal(want, 1e-10) {
			t.Errorf("MatMul %v: mismatch", dims)
		}
	}
}

func TestMatMulOverwritesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randMat(rng, 3, 3), randMat(rng, 3, 3)
	got := Full(99, 3, 3)
	MatMul(got, a, b)
	if !got.Equal(naiveMatMul(a, b), 1e-10) {
		t.Error("MatMul did not overwrite destination")
	}
}

func TestMatMulAcc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := randMat(rng, 4, 2), randMat(rng, 2, 5)
	got := Full(1, 4, 5)
	MatMulAcc(got, a, b)
	want := naiveMatMul(a, b)
	for i := range want.Data {
		want.Data[i]++
	}
	if !got.Equal(want, 1e-10) {
		t.Error("MatMulAcc did not accumulate")
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, dims := range [][3]int{{3, 4, 5}, {1, 2, 3}, {7, 7, 7}} {
		k, m, n := dims[0], dims[1], dims[2]
		a := randMat(rng, k, m) // Aᵀ is m×k
		b := randMat(rng, k, n)
		got := New(m, n)
		MatMulTransA(got, a, b)
		want := naiveMatMul(Transpose2D(a), b)
		if !got.Equal(want, 1e-10) {
			t.Errorf("MatMulTransA %v: mismatch", dims)
		}
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{3, 4, 5}, {2, 1, 2}, {6, 8, 4}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randMat(rng, m, k)
		b := randMat(rng, n, k) // Bᵀ is k×n
		got := New(m, n)
		MatMulTransB(got, a, b)
		want := naiveMatMul(a, Transpose2D(b))
		if !got.Equal(want, 1e-10) {
			t.Errorf("MatMulTransB %v: mismatch", dims)
		}
	}
}

func TestMatMulAccTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 3, 4)
	b := randMat(rng, 5, 4)
	got := Full(2, 3, 5)
	MatMulAccTransB(got, a, b)
	want := naiveMatMul(a, Transpose2D(b))
	for i := range want.Data {
		want.Data[i] += 2
	}
	if !got.Equal(want, 1e-10) {
		t.Error("MatMulAccTransB mismatch")
	}
}

func TestTranspose2D(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	tr := Transpose2D(m)
	if tr.Dim(0) != 3 || tr.Dim(1) != 2 {
		t.Fatalf("Transpose2D shape %v", tr.Shape())
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("Transpose2D values wrong: %v", tr.Data)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a, b := New(2, 3), New(4, 5)
	dst := New(2, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched inner dims did not panic")
		}
	}()
	MatMul(dst, a, b)
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ, relating all the kernels.
func TestMatMulTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		ab := New(m, n)
		MatMul(ab, a, b)
		btat := naiveMatMul(Transpose2D(b), Transpose2D(a))
		return Transpose2D(ab).Equal(btat, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
