package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvGeomOutSize(t *testing.T) {
	cases := []struct {
		g      ConvGeom
		h, w   int
		oh, ow int
	}{
		{ConvGeom{KH: 5, KW: 5, SH: 1, SW: 1}, 32, 32, 28, 28},
		{ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1}, 14, 14, 12, 12},
		{ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2}, 8, 8, 4, 4},
		{ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}, 8, 8, 8, 8},
	}
	for _, c := range cases {
		oh, ow := c.g.OutSize(c.h, c.w)
		if oh != c.oh || ow != c.ow {
			t.Errorf("OutSize(%+v, %d, %d) = (%d, %d), want (%d, %d)", c.g, c.h, c.w, oh, ow, c.oh, c.ow)
		}
	}
}

func TestConvGeomDoesNotFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OutSize for oversized kernel did not panic")
		}
	}()
	ConvGeom{KH: 5, KW: 5, SH: 1, SW: 1}.OutSize(3, 3)
}

func TestIm2ColKnownValues(t *testing.T) {
	// 1 channel, 3x3 image, 2x2 kernel, stride 1: 4 output positions.
	img := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	g := ConvGeom{KH: 2, KW: 2, SH: 1, SW: 1}
	cols := New(4, 4)
	Im2Col(cols, img, g)
	// Row r corresponds to kernel offset (ky,kx); column c to output (oy,ox).
	want := [][]float64{
		{1, 2, 4, 5}, // ky=0,kx=0
		{2, 3, 5, 6}, // ky=0,kx=1
		{4, 5, 7, 8}, // ky=1,kx=0
		{5, 6, 8, 9}, // ky=1,kx=1
	}
	for r := range want {
		for c := range want[r] {
			if cols.At(r, c) != want[r][c] {
				t.Fatalf("Im2Col[%d][%d] = %g, want %g\n%v", r, c, cols.At(r, c), want[r][c], cols.Data)
			}
		}
	}
}

func TestIm2ColPaddingReadsZero(t *testing.T) {
	img := Full(1, 1, 2, 2)
	g := ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}
	oh, ow := g.OutSize(2, 2)
	cols := New(9, oh*ow)
	Im2Col(cols, img, g)
	// Top-left output position, kernel offset (0,0) reads padding.
	if cols.At(0, 0) != 0 {
		t.Error("padding position not zero")
	}
	// Center of the kernel at output (0,0) reads img(0,0)=1.
	if cols.At(4, 0) != 1 {
		t.Error("center position wrong")
	}
}

// Property: Col2Im(Im2Col(x)) with non-overlapping windows (stride ==
// kernel) reconstructs x exactly where windows cover it.
func TestIm2ColCol2ImRoundTripNonOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	img := New(2, 4, 4)
	img.FillRandn(rng, 0, 1)
	g := ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2}
	cols := New(2*2*2, 4)
	Im2Col(cols, img, g)
	back := New(2, 4, 4)
	Col2Im(back, cols, g)
	if !back.Equal(img, 1e-12) {
		t.Error("non-overlapping Im2Col/Col2Im round trip failed")
	}
}

// Property: Col2Im accumulates overlap counts — scattering an all-ones
// column matrix yields each pixel's window membership count.
func TestCol2ImOverlapCounts(t *testing.T) {
	g := ConvGeom{KH: 2, KW: 2, SH: 1, SW: 1}
	oh, ow := g.OutSize(3, 3)
	cols := Full(1, 4, oh*ow)
	dst := New(1, 3, 3)
	Col2Im(dst, cols, g)
	want := []float64{
		1, 2, 1,
		2, 4, 2,
		1, 2, 1,
	}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("overlap counts = %v, want %v", dst.Data, want)
		}
	}
}

// Property: <Im2Col(x), w-cols> == <x, Col2Im(w-cols)> (adjointness),
// which is exactly what conv backward relies on.
func TestIm2ColCol2ImAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, h, w := 1+rng.Intn(3), 3+rng.Intn(4), 3+rng.Intn(4)
		g := ConvGeom{KH: 1 + rng.Intn(3), KW: 1 + rng.Intn(3), SH: 1, SW: 1}
		oh, ow := g.OutSize(h, w)
		rows := c * g.KH * g.KW

		x := New(c, h, w)
		x.FillRandn(rng, 0, 1)
		y := New(rows, oh*ow)
		y.FillRandn(rng, 0, 1)

		ax := New(rows, oh*ow)
		Im2Col(ax, x, g)
		aty := New(c, h, w)
		Col2Im(aty, y, g)

		lhs := ax.Dot(y)
		rhs := x.Dot(aty)
		return abs(lhs-rhs) < 1e-9*(1+abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
