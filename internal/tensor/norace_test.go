//go:build !race

package tensor

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
