package tensor

// Blocking parameters for the packed GEMM engine (gemm.go). All kernel
// tiling in this package derives from the four constants below, so cache
// sizing lives in exactly one place.
//
// The hierarchy, innermost out:
//
//   - The microkernel computes a gemmMR × gemmNR tile of C with all
//     gemmMR*gemmNR accumulators held in registers (gemm_micro.go).
//     2×4 = 8 accumulators is the sweet spot for scalar amd64: each
//     accumulator is an independent add chain, enough to saturate the
//     FP ports, while 4×4 = 16 spills (exactly the XMM register count,
//     leaving nothing for the a/b operands).
//   - gemmKC bounds the k-extent of one packed pass: an A pair-panel is
//     gemmMR×gemmKC = 4 KiB and a B panel gemmKC×gemmNR = 8 KiB, so the
//     operands of one microkernel call sit comfortably in a 32 KiB L1d
//     beside the C tile.
//   - gemmMC groups output rows so one KC×NC slab of packed B is reused
//     across a whole block of rows while the block's C rows
//     (gemmMC × n ≤ 256 KiB at n = 512) stay L2-resident; the fused
//     bias/activation epilogue runs per MC block, while its rows are
//     still cache-hot.
const (
	gemmMR = 2   // microkernel rows
	gemmNR = 4   // microkernel columns (one B panel width)
	gemmKC = 256 // k-block: bounds packed-panel height
	gemmMC = 64  // row-block: epilogue + B-slab reuse granularity
)

// tileParams returns the (mc, kc) blocking for an m×k · k×n product,
// clamped to the problem so degenerate shapes never over-allocate
// scratch. Every kernel — packed engine, fused conv, and the small-shape
// loops via lBlock — sizes its blocking through this helper.
func tileParams(m, k, n int) (mc, kc int) {
	mc, kc = gemmMC, gemmKC
	if mc > m {
		mc = m
	}
	if kc > k {
		kc = k
	}
	return mc, kc
}

// packedMinFlops is the smallest m*k*n product routed to the packed
// engine. Packing copies m*k + k*n words to save ~2× on the 2*m*k*n
// multiply-adds, so it has to amortize: below this threshold (one
// 32×32×32 product) the plain loops win.
const packedMinFlops = 1 << 15

// usePacked reports whether an m×k·k×n product should go through the
// packed, register-tiled engine. Small or degenerate shapes (a single
// row, a short k) stay on the straightforward loops in matmul.go. The
// choice is a pure function of the shape, never of the worker budget, so
// it cannot break bitwise determinism across worker counts.
func usePacked(m, k, n int) bool {
	return m >= gemmMR && n >= gemmNR && k >= 8 && m*k*n >= packedMinFlops
}

// lBlock sizes the l-blocking of the small-shape kernels so a block of B
// spans at most gemmKC² elements (512 KiB of float64, the same L2
// footprint the packed engine's KC slab targets); small B is processed
// in one pass.
func lBlock(k, n int) int {
	const blockElems = gemmKC * gemmKC
	if n <= 0 || k*n <= blockElems {
		return k
	}
	lb := blockElems / n
	if lb < 8 {
		lb = 8
	}
	return lb
}
