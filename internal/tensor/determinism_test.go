package tensor

import (
	"fmt"
	"math/rand"
	"testing"

	"sasgd/internal/parallel"
)

// The convergence experiments and EXPERIMENTS.md numbers rely on the
// parallel kernels being bitwise-identical to the serial ones: shard
// boundaries are fixed and per-element accumulation order is unchanged,
// so a worker-count change must never change a single bit of output.
// Shapes deliberately include m=1, n=1, k=1 and sizes that do not divide
// evenly into any shard count.

var oddMatShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{1, 5, 9},
	{5, 1, 3},
	{3, 9, 1},
	{7, 3, 5},
	{17, 9, 13},
	{31, 64, 33},
	{64, 64, 64},
	{101, 67, 129},
}

// runAtWorkers evaluates fn at the given worker budget and returns the
// flat output it produced.
func runAtWorkers(w int, fn func() *Tensor) []float64 {
	defer parallel.SetWorkers(parallel.SetWorkers(w))
	return append([]float64(nil), fn().Data...)
}

func assertBitwise(t *testing.T, label string, fn func() *Tensor) {
	t.Helper()
	ref := runAtWorkers(1, fn)
	for w := 2; w <= 8; w++ {
		got := runAtWorkers(w, fn)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: workers=%d differs from serial at index %d: %x vs %x",
					label, w, i, got[i], ref[i])
			}
		}
	}
}

func TestMatMulBitwiseAcrossWorkers(t *testing.T) {
	for _, s := range oddMatShapes {
		rng := rand.New(rand.NewSource(int64(s.m*1000 + s.k*10 + s.n)))
		a := randMat(rng, s.m, s.k)
		b := randMat(rng, s.k, s.n)
		dst := New(s.m, s.n)
		assertBitwise(t, fmt.Sprintf("MatMul %dx%dx%d", s.m, s.k, s.n), func() *Tensor {
			MatMul(dst, a, b)
			return dst
		})
		acc := New(s.m, s.n)
		acc.FillRandn(rng, 0, 1)
		init := acc.Clone()
		assertBitwise(t, fmt.Sprintf("MatMulAcc %dx%dx%d", s.m, s.k, s.n), func() *Tensor {
			acc.CopyFrom(init)
			MatMulAcc(acc, a, b)
			return acc
		})
	}
}

func TestMatMulTransABitwiseAcrossWorkers(t *testing.T) {
	for _, s := range oddMatShapes {
		rng := rand.New(rand.NewSource(int64(s.m*999 + s.k*7 + s.n)))
		a := randMat(rng, s.k, s.m) // Aᵀ·B: A is k×m
		b := randMat(rng, s.k, s.n)
		dst := New(s.m, s.n)
		assertBitwise(t, fmt.Sprintf("MatMulTransA %dx%dx%d", s.m, s.k, s.n), func() *Tensor {
			MatMulTransA(dst, a, b)
			return dst
		})
	}
}

func TestMatMulTransBBitwiseAcrossWorkers(t *testing.T) {
	for _, s := range oddMatShapes {
		rng := rand.New(rand.NewSource(int64(s.m*37 + s.k*11 + s.n)))
		a := randMat(rng, s.m, s.k)
		b := randMat(rng, s.n, s.k) // A·Bᵀ: B is n×k
		dst := New(s.m, s.n)
		assertBitwise(t, fmt.Sprintf("MatMulTransB %dx%dx%d", s.m, s.k, s.n), func() *Tensor {
			MatMulTransB(dst, a, b)
			return dst
		})
		acc := New(s.m, s.n)
		acc.FillRandn(rng, 0, 1)
		init := acc.Clone()
		assertBitwise(t, fmt.Sprintf("MatMulAccTransB %dx%dx%d", s.m, s.k, s.n), func() *Tensor {
			acc.CopyFrom(init)
			MatMulAccTransB(acc, a, b)
			return acc
		})
	}
}

func TestElementwiseBitwiseAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Above elemGrain so the parallel path actually engages.
	n := elemGrain*3 + 17
	x := New(n)
	x.FillRandn(rng, 0, 1)
	y := New(n)
	y.FillRandn(rng, 0, 1)
	init := y.Clone()
	assertBitwise(t, "Axpy", func() *Tensor {
		y.CopyFrom(init)
		Axpy(0.37, x.Data, y.Data)
		return y
	})
	assertBitwise(t, "Scale", func() *Tensor {
		y.CopyFrom(init)
		y.Scale(1.000003)
		return y
	})
	assertBitwise(t, "Mul", func() *Tensor {
		y.CopyFrom(init)
		y.Mul(x)
		return y
	})
}

func TestIm2ColIntoMatchesTensorForm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	img := New(3, 13, 11)
	img.FillRandn(rng, 0, 1)
	g := ConvGeom{KH: 3, KW: 3, SH: 2, SW: 1, PH: 1, PW: 1}
	oh, ow := g.OutSize(13, 11)
	want := New(3*9, oh*ow)
	Im2Col(want, img, g)
	got := make([]float64, 3*9*oh*ow)
	Im2ColInto(got, img.Data, 3, 13, 11, g)
	for i := range got {
		if got[i] != want.Data[i] {
			t.Fatalf("Im2ColInto differs at %d", i)
		}
	}
	back := New(3, 13, 11)
	Col2Im(back, want, g)
	got2 := make([]float64, 3*13*11)
	Col2ImInto(got2, got, 3, 13, 11, g)
	for i := range got2 {
		if got2[i] != back.Data[i] {
			t.Fatalf("Col2ImInto differs at %d", i)
		}
	}
}
