package tensor

import "fmt"

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n), writing
// into dst (m×n) which must be preallocated with the right shape. dst is
// overwritten, not accumulated into. The kernel is a cache-friendly
// ikj-ordered triple loop: the inner loop runs over contiguous rows of B
// and C so it vectorizes.
func MatMul(dst, a, b *Tensor) {
	m, k, n := checkMatMulShapes(dst, a, b)
	c := dst.Data
	for i := range c {
		c[i] = 0
	}
	matmulAcc(c, a.Data, b.Data, m, k, n)
}

// MatMulAcc computes C += A·B with the same shape rules as MatMul.
func MatMulAcc(dst, a, b *Tensor) {
	m, k, n := checkMatMulShapes(dst, a, b)
	matmulAcc(dst.Data, a.Data, b.Data, m, k, n)
}

func checkMatMulShapes(dst, a, b *Tensor) (m, k, n int) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v·%v -> %v", a.shape, b.shape, dst.shape))
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v · %v", a.shape, b.shape))
	}
	n = b.shape[1]
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul destination shape %v, want [%d %d]", dst.shape, m, n))
	}
	return m, k, n
}

func matmulAcc(c, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		ci := c[i*n : i*n+n]
		ai := a[i*k : i*k+k]
		for l := 0; l < k; l++ {
			av := ai[l]
			if av == 0 {
				continue
			}
			bl := b[l*n : l*n+n]
			for j, bv := range bl {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ·B where A is k×m, B is k×n, C is m×n.
// Used in backward passes to form weight gradients without materializing
// the transpose.
func MatMulTransA(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic("tensor: MatMulTransA needs 2-D operands")
	}
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %v ᵀ· %v", a.shape, b.shape))
	}
	n := b.shape[1]
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransA destination shape %v, want [%d %d]", dst.shape, m, n))
	}
	c := dst.Data
	for i := range c {
		c[i] = 0
	}
	// C[i,j] = sum_l A[l,i] * B[l,j]; iterate l outermost so both B and C
	// rows stream contiguously.
	for l := 0; l < k; l++ {
		al := a.Data[l*m : l*m+m]
		bl := b.Data[l*n : l*n+n]
		for i, av := range al {
			if av == 0 {
				continue
			}
			ci := c[i*n : i*n+n]
			for j, bv := range bl {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A·Bᵀ where A is m×k, B is n×k, C is m×n.
// Used in backward passes to propagate gradients through linear layers.
func MatMulTransB(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic("tensor: MatMulTransB needs 2-D operands")
	}
	m, k := a.shape[0], a.shape[1]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v · %v ᵀ", a.shape, b.shape))
	}
	n := b.shape[0]
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransB destination shape %v, want [%d %d]", dst.shape, m, n))
	}
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : i*k+k]
		ci := dst.Data[i*n : i*n+n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : j*k+k]
			s := 0.0
			for l, av := range ai {
				s += av * bj[l]
			}
			ci[j] = s
		}
	}
}

// MatMulAccTransB computes C += A·Bᵀ where A is m×k, B is n×k, C is m×n.
// Used by Conv2D backward to accumulate weight gradients across a batch.
func MatMulAccTransB(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic("tensor: MatMulAccTransB needs 2-D operands")
	}
	m, k := a.shape[0], a.shape[1]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulAccTransB inner dimension mismatch %v · %v ᵀ", a.shape, b.shape))
	}
	n := b.shape[0]
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAccTransB destination shape %v, want [%d %d]", dst.shape, m, n))
	}
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : i*k+k]
		ci := dst.Data[i*n : i*n+n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : j*k+k]
			s := 0.0
			for l, av := range ai {
				s += av * bj[l]
			}
			ci[j] += s
		}
	}
}

// Transpose2D returns a new tensor holding the transpose of the 2-D
// tensor t.
func Transpose2D(t *Tensor) *Tensor {
	if t.Dims() != 2 {
		panic("tensor: Transpose2D needs a 2-D tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}
