package tensor

import (
	"fmt"

	"sasgd/internal/parallel"
)

// The matrix kernels below pick between two tiers by shape alone
// (usePacked in tile.go — never by worker count, so the tier choice
// cannot affect cross-worker determinism):
//
//   - Large products run the cache-blocked, register-tiled packed engine
//     in gemm.go: A and B are repacked into panel layouts, and a 2×4
//     microkernel with register accumulators does the arithmetic.
//   - Small products run the plain loops in this file, whose dispatch
//     cost is just a shape check.
//
// Both tiers are parallelized over output rows through parallel.For /
// ForAligned: fixed contiguous shards, each writing a disjoint slice of
// the destination. Every C[i,j] accumulates its k products in strictly
// ascending-l order into one accumulator chain in both tiers, so results
// are bitwise identical at every worker count and across the tier
// boundary's blocking choices (determinism the convergence experiments
// rely on). The only exception is behind the FastKernels gate (gemm.go),
// which swaps the small A·Bᵀ tier's dot product for a reordered
// four-accumulator version.

// parRowFlops is the minimum number of multiply-adds a shard must amortize
// for parallel dispatch to pay off; rows are grouped until each shard
// carries at least this much work.
const parRowFlops = 1 << 15

// matmulGrain returns the row grain for an m×k·k×n product: the smallest
// row count whose work exceeds parRowFlops.
func matmulGrain(k, n int) int {
	rowWork := k * n
	if rowWork <= 0 {
		return 1
	}
	g := parRowFlops / rowWork
	if g < 1 {
		return 1
	}
	return g
}

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n), writing
// into dst (m×n) which must be preallocated with the right shape. dst is
// overwritten, not accumulated into.
func MatMul(dst, a, b *Tensor) {
	m, k, n := checkMatMulShapes(dst, a, b)
	if usePacked(m, k, n) {
		gemmPackedParallel(dst.Data, aSource{data: a.Data, ld: k}, b.Data, false, m, k, n, false, epilogue{})
		return
	}
	c := dst.Data
	parallel.For(m, matmulGrain(k, n), func(lo, hi int) {
		cs := c[lo*n : hi*n]
		for i := range cs {
			cs[i] = 0
		}
		matmulAccRange(c, a.Data, b.Data, k, n, lo, hi)
	})
}

// MatMulAcc computes C += A·B with the same shape rules as MatMul.
func MatMulAcc(dst, a, b *Tensor) {
	m, k, n := checkMatMulShapes(dst, a, b)
	if usePacked(m, k, n) {
		gemmPackedParallel(dst.Data, aSource{data: a.Data, ld: k}, b.Data, false, m, k, n, true, epilogue{})
		return
	}
	parallel.For(m, matmulGrain(k, n), func(lo, hi int) {
		matmulAccRange(dst.Data, a.Data, b.Data, k, n, lo, hi)
	})
}

// MatMulInto is the raw-slice form of MatMul for callers that manage
// their own parallelism (it always runs serially on the calling
// goroutine). a is m×k, b is k×n, c is m×n and is overwritten.
func MatMulInto(c, a, b []float64, m, k, n int) {
	if usePacked(m, k, n) {
		gemmPackedSerial(c, aSource{data: a, ld: k}, b, false, m, k, n, false, epilogue{})
		return
	}
	for i := range c[:m*n] {
		c[i] = 0
	}
	matmulAccRange(c, a, b, k, n, 0, m)
}

func checkMatMulShapes(dst, a, b *Tensor) (m, k, n int) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v·%v -> %v", a.shape, b.shape, dst.shape))
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v · %v", a.shape, b.shape))
	}
	n = b.shape[1]
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul destination shape %v, want [%d %d]", dst.shape, m, n))
	}
	return m, k, n
}

// matmulAccRange computes C[lo:hi,:] += A[lo:hi,:]·B with the ikj loop,
// blocked over l so the slab of B in flight stays L2-resident and is
// reused across the shard's rows. Blocking only regroups the l loop into
// ascending runs; every C[i,j] still accumulates its products in strictly
// ascending l order, so the result is bitwise identical to the unblocked
// serial loop. The inner loop multiplies unconditionally: the old
// data-dependent skip of zero A elements never fires on dense data and
// buys nothing there (BenchmarkMatMulZeroSkip measures the two loops
// within noise of each other), while skipping a row of B changes ±0/NaN
// propagation relative to the packed tier, which always multiplies.
// Dropping the skip keeps both tiers on the same arithmetic and the
// inner loop branch-free.
func matmulAccRange(c, a, b []float64, k, n, lo, hi int) {
	lb := lBlock(k, n)
	for l0 := 0; l0 < k; l0 += lb {
		l1 := l0 + lb
		if l1 > k {
			l1 = k
		}
		for i := lo; i < hi; i++ {
			ci := c[i*n : i*n+n]
			ai := a[i*k : i*k+k]
			for l := l0; l < l1; l++ {
				av := ai[l]
				bl := b[l*n : l*n+n]
				for j, bv := range bl {
					ci[j] += av * bv
				}
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ·B where A is k×m, B is k×n, C is m×n.
// Used in backward passes to form weight gradients without materializing
// the transpose; the packed tier reads the transpose directly out of A's
// columns while packing pair-panels.
func MatMulTransA(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic("tensor: MatMulTransA needs 2-D operands")
	}
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %v ᵀ· %v", a.shape, b.shape))
	}
	n := b.shape[1]
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransA destination shape %v, want [%d %d]", dst.shape, m, n))
	}
	if usePacked(m, k, n) {
		gemmPackedParallel(dst.Data, aSource{data: a.Data, ld: m, trans: true}, b.Data, false, m, k, n, false, epilogue{})
		return
	}
	parallel.For(m, matmulGrain(k, n), func(lo, hi int) {
		matMulTransARange(dst.Data, a.Data, b.Data, k, m, n, lo, hi)
	})
}

// MatMulTransAInto is the raw-slice, always-serial form of MatMulTransA:
// c (m×n) = aᵀ (k×m transposed) · b (k×n), c overwritten.
func MatMulTransAInto(c, a, b []float64, k, m, n int) {
	if usePacked(m, k, n) {
		gemmPackedSerial(c, aSource{data: a, ld: m, trans: true}, b, false, m, k, n, false, epilogue{})
		return
	}
	matMulTransARange(c, a, b, k, m, n, 0, m)
}

// matMulTransARange computes C[lo:hi,:] = (Aᵀ·B)[lo:hi,:]. l runs
// outermost exactly as in the serial kernel, so each C[i,j] accumulates
// in ascending l order; only rows [lo, hi) are touched.
func matMulTransARange(c, a, b []float64, k, m, n, lo, hi int) {
	cs := c[lo*n : hi*n]
	for i := range cs {
		cs[i] = 0
	}
	for l := 0; l < k; l++ {
		al := a[l*m+lo : l*m+hi]
		bl := b[l*n : l*n+n]
		for i, av := range al {
			ci := c[(lo+i)*n : (lo+i)*n+n]
			for j, bv := range bl {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A·Bᵀ where A is m×k, B is n×k, C is m×n.
// Used in forward and backward passes of linear layers.
func MatMulTransB(dst, a, b *Tensor) {
	m, k, n := checkTransBShapes(dst, a, b, "MatMulTransB")
	if usePacked(m, k, n) {
		gemmPackedParallel(dst.Data, aSource{data: a.Data, ld: k}, b.Data, true, m, k, n, false, epilogue{})
		return
	}
	parallel.For(m, matmulGrain(k, n), func(lo, hi int) {
		matMulTransBRange(dst.Data, a.Data, b.Data, k, n, lo, hi, false)
	})
}

// MatMulAccTransB computes C += A·Bᵀ where A is m×k, B is n×k, C is m×n.
// The packed tier seeds each element's accumulation chain with the
// existing C value (c + a₀b₀ + a₁b₁ + …) where the small tier computes
// the dot product first and adds it once (c + Σaᵢbᵢ); the two round
// differently, but the tier is a pure function of the shape, so any
// given call site is still bitwise reproducible.
func MatMulAccTransB(dst, a, b *Tensor) {
	m, k, n := checkTransBShapes(dst, a, b, "MatMulAccTransB")
	if usePacked(m, k, n) {
		gemmPackedParallel(dst.Data, aSource{data: a.Data, ld: k}, b.Data, true, m, k, n, true, epilogue{})
		return
	}
	parallel.For(m, matmulGrain(k, n), func(lo, hi int) {
		matMulTransBRange(dst.Data, a.Data, b.Data, k, n, lo, hi, true)
	})
}

func checkTransBShapes(dst, a, b *Tensor, op string) (m, k, n int) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic(fmt.Sprintf("tensor: %s needs 2-D operands", op))
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v · %v ᵀ", op, a.shape, b.shape))
	}
	n = b.shape[0]
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want [%d %d]", op, dst.shape, m, n))
	}
	return m, k, n
}

// matMulTransBRange computes C[lo:hi,:] (+)= A[lo:hi,:]·Bᵀ. Each C[i,j]
// is one dot product: the ascending-order serial kernel by default, the
// four-accumulator unrolled kernel under FastKernels.
func matMulTransBRange(c, a, b []float64, k, n, lo, hi int, acc bool) {
	fast := FastKernelsEnabled()
	for i := lo; i < hi; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			bj := b[j*k : j*k+k]
			var s float64
			if fast {
				s = dotUnroll4(ai, bj)
			} else {
				s = dotSerial(ai, bj)
			}
			if acc {
				ci[j] += s
			} else {
				ci[j] = s
			}
		}
	}
}

// Transpose2D returns a new tensor holding the transpose of the 2-D
// tensor t.
func Transpose2D(t *Tensor) *Tensor {
	if t.Dims() != 2 {
		panic("tensor: Transpose2D needs a 2-D tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}
