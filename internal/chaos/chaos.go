// Package chaos is the deterministic fault-injection test harness: it
// runs small SASGD training scenarios under seeded comm.FaultPlans
// (stragglers, message drops, scheduled crashes) and exposes the
// observables the chaos tests assert on — per-boundary aggregated
// gradients (via core.Config.AggHook), fault counters, and checkpoint
// files for survivor-equivalence reference runs. Everything is
// reproducible from the plan's seed: a scenario either always passes or
// always fails, which is what makes failure-handling testable at all.
//
// The harness's central assertion pattern is survivor equivalence:
// because drops, delays and slowdowns never change values (acknowledged
// delivery is value-transparent, slowdowns only move time), and because
// a crash at boundary b leaves the survivors exactly in the state a
// fault-free run over the same ranks resumed from the boundary-b
// checkpoint would be in, the degraded run's post-eviction aggregated
// gradients — and its final parameters — must be bitwise identical to
// that reference run's. The chaos tests enforce exactly that.
package chaos

import (
	"math/rand"
	"sort"
	"sync"

	"sasgd/internal/comm"
	"sasgd/internal/core"
	"sasgd/internal/data"
	"sasgd/internal/nn"
	"sasgd/internal/obs"
	"sasgd/internal/tensor"
)

// GradLog records every aggregation boundary's post-allreduce
// aggregated gradient. Wire its Hook into core.Config.AggHook; the
// mutex makes it safe across the view changes that move virtual rank 0
// between goroutines.
type GradLog struct {
	mu  sync.Mutex
	agg map[int][]float64
}

// NewGradLog returns an empty log.
func NewGradLog() *GradLog { return &GradLog{agg: map[int][]float64{}} }

// Hook is the core.Config.AggHook adapter: it copies and stores the
// boundary's aggregated gradient.
func (l *GradLog) Hook(boundary int, gs []float64) {
	cp := append([]float64(nil), gs...)
	l.mu.Lock()
	l.agg[boundary] = cp
	l.mu.Unlock()
}

// At returns the aggregated gradient recorded for a boundary (nil when
// the boundary never aggregated).
func (l *GradLog) At(boundary int) []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.agg[boundary]
}

// Boundaries returns the recorded boundary indices in ascending order.
func (l *GradLog) Boundaries() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int, 0, len(l.agg))
	for b := range l.agg {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// Scenario is one chaos experiment: a SASGD run shape plus a fault
// plan, with optional checkpointing, resume, and tracing.
type Scenario struct {
	Name   string
	Spec   string // comm.ParseFaultPlan grammar; "" = fault-free
	P      int    // learners
	T      int    // aggregation interval
	Batch  int
	Epochs int
	Seed   int64

	Checkpoint  string // checkpoint path ("%d" keeps one file per boundary)
	Resume      string // checkpoint to resume from
	ResumeRanks []int  // data-physical ranks this run's learners play
	Tracer      *obs.Tracer

	// TCP routes the run's frames through a loopback TCP mesh instead
	// of the in-process channel fabric: every drop, retry, crash and
	// re-form plays out over real sockets and the wire codec. The
	// scenario's observables must not change — that is the
	// cross-transport guarantee the chaos tests replay.
	TCP bool
}

// Run executes the scenario against prob and returns the training
// result plus the per-boundary aggregated-gradient log.
func (s Scenario) Run(prob *core.Problem) (*core.Result, *GradLog) {
	var plan *comm.FaultPlan
	if s.Spec != "" {
		var err error
		if plan, err = comm.ParseFaultPlan(s.Spec); err != nil {
			panic(err)
		}
	}
	log := NewGradLog()
	var tr comm.Transport
	if s.TCP {
		tcp, err := comm.NewTCPLoopback(s.P)
		if err != nil {
			panic(err)
		}
		defer tcp.Close() // idempotent; the resilient path closes it first
		tr = tcp
	}
	cfg := core.Config{
		Algo:      core.AlgoSASGD,
		Learners:  s.P,
		Interval:  s.T,
		Batch:     s.Batch,
		Epochs:    s.Epochs,
		Gamma:     0.05,
		Seed:      s.Seed,
		Faults:    plan,
		Transport: tr,

		CheckpointPath: s.Checkpoint,
		ResumeFrom:     s.Resume,
		ResumeRanks:    s.ResumeRanks,
		AggHook:        log.Hook,
		Tracer:         s.Tracer,
	}
	return core.Train(cfg, prob), log
}

// Synthetic builds a fast, separable 4-feature 3-class problem with a
// small two-layer model — deterministic in seed, cheap enough that a
// whole scenario table runs under the race detector in seconds.
func Synthetic(nTrain, nTest int, seed int64) *core.Problem {
	gen := func(n int, seed int64) *data.Dataset {
		rng := rand.New(rand.NewSource(seed))
		d := &data.Dataset{
			X:           tensor.New(n, 4),
			Y:           make([]int, n),
			SampleShape: []int{4},
			Classes:     3,
		}
		for i := 0; i < n; i++ {
			k := rng.Intn(3)
			d.Y[i] = k
			for j := 0; j < 4; j++ {
				v := rng.NormFloat64() * 0.4
				if j == k {
					v += 2
				}
				d.X.Data[i*4+j] = v
			}
		}
		return d
	}
	return &core.Problem{
		Name: "chaos-synthetic",
		Model: func(seed int64) *nn.Network {
			rng := rand.New(rand.NewSource(seed))
			return nn.NewNetwork([]int{4},
				nn.NewLinear(rng, 4, 8),
				nn.NewTanh(),
				nn.NewLinear(rng, 8, 3),
			)
		},
		Train: gen(nTrain, seed),
		Test:  gen(nTest, seed+1),
	}
}
