package chaos

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"sasgd/internal/obs"
)

// Scenario geometry shared by the whole table: 48 training samples,
// batch 4, T=2, 4 epochs. With p=4 (shards of 12, 3 batches/epoch) and
// p=5 (max shard 10, 3 batches/epoch) alike, that is 12 local steps and
// 6 aggregation boundaries (indices 0..5) per run.
const (
	chaosT          = 2
	chaosBatch      = 4
	chaosEpochs     = 4
	chaosSeed       = 21
	chaosBoundaries = 6
)

func chaosScenario(name, spec string, p int) Scenario {
	return Scenario{
		Name: name, Spec: spec, P: p,
		T: chaosT, Batch: chaosBatch, Epochs: chaosEpochs, Seed: chaosSeed,
	}
}

// mustEqualGrads asserts two runs' aggregated gradients are bitwise
// identical over boundaries [from, chaosBoundaries).
func mustEqualGrads(t *testing.T, got, want *GradLog, from int) {
	t.Helper()
	for b := from; b < chaosBoundaries; b++ {
		g, w := got.At(b), want.At(b)
		if g == nil || w == nil {
			t.Fatalf("boundary %d: missing aggregated gradient (got %v, want %v; recorded %v vs %v)",
				b, g != nil, w != nil, got.Boundaries(), want.Boundaries())
		}
		if len(g) != len(w) {
			t.Fatalf("boundary %d: gradient lengths %d vs %d", b, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("boundary %d: aggregated gradient differs at %d: %g vs %g (must be bitwise identical)",
					b, i, g[i], w[i])
			}
		}
	}
}

func mustEqualParams(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("final parameter lengths %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("final parameters differ at %d: %g vs %g (must be bitwise identical)", i, got[i], want[i])
		}
	}
}

// TestChaosScenarios is the deterministic chaos table. Two compare
// modes:
//
//   - "clean": the degraded run (straggler, drops — no membership
//     change) must be bitwise identical to the same run with no fault
//     plan at all, at every aggregation boundary and in its final
//     parameters. Fault handling must be value-transparent.
//
//   - "survivors": a run that crashes rank R at boundary B must, from B
//     on, be bitwise identical to a fault-free run over the surviving
//     ranks resumed from the crashed run's own boundary-B checkpoint —
//     the strongest statement that eviction + re-form + γp rescaling
//     degrade gracefully rather than changing the algorithm.
func TestChaosScenarios(t *testing.T) { runChaosTable(t, false) }

// TestChaosScenariosTCP replays the whole chaos table with the degraded
// run's frames carried over a loopback TCP mesh — drops, retries,
// crashes, evictions and survivor re-forms all play out over real
// sockets and the wire codec — while every reference run stays on the
// in-process channel fabric. The assertions are unchanged: that IS the
// cross-transport guarantee. The retry timeout is widened from the 2ms
// default so real socket latency cannot fire spurious retransmissions
// (deduped, but they would distort the fault counters).
func TestChaosScenariosTCP(t *testing.T) { runChaosTable(t, true) }

func runChaosTable(t *testing.T, tcp bool) {
	cases := []struct {
		name      string
		spec      string
		p         int
		mode      string // "clean" | "survivors"
		crashRank int    // survivors mode
		crashB    int    // survivors mode
		minDrops  int64
		traced    bool
	}{
		{
			name: "slow rank",
			spec: "seed=3,slow=1:4,evict=2s",
			p:    4, mode: "clean",
		},
		{
			name: "drop burst",
			spec: "seed=5,drop=0.2,burst=0>1@0+3,evict=2s",
			p:    4, mode: "clean", minDrops: 3,
		},
		{
			name: "dead rank",
			spec: "seed=7,crash=2@3,evict=500ms",
			p:    4, mode: "survivors", crashRank: 2, crashB: 3,
		},
		{
			name: "dead root",
			spec: "seed=9,crash=0@2,evict=500ms",
			p:    4, mode: "survivors", crashRank: 0, crashB: 2,
		},
		{
			name: "combined",
			spec: "seed=11,drop=0.1,burst=0>1@0+2,slow=3:3,crash=4@2,evict=800ms",
			p:    5, mode: "survivors", crashRank: 4, crashB: 2,
			minDrops: 2, traced: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prob := Synthetic(48, 24, 101)
			dir := t.TempDir()
			spec := tc.spec
			if tcp {
				spec += ",timeout=80ms"
			}
			degraded := chaosScenario(tc.name, spec, tc.p)
			degraded.TCP = tcp
			if tc.mode == "survivors" {
				degraded.Checkpoint = filepath.Join(dir, "ck-%d.ckpt")
			}
			var tr *obs.Tracer
			if tc.traced {
				tr = obs.NewTracer(1 << 12)
				degraded.Tracer = tr
			}
			res, log := degraded.Run(prob)

			// Completion: the run must finish with a recorded curve and
			// final parameters no matter what the plan injected.
			if len(res.Curve) == 0 || len(res.FinalParams) == 0 {
				t.Fatalf("degraded run did not complete: %d curve points, %d params",
					len(res.Curve), len(res.FinalParams))
			}
			if tc.minDrops > 0 {
				f := res.Comm.Faults
				if f.Drops < tc.minDrops || f.Retries == 0 || f.Timeouts != f.Retries {
					t.Fatalf("fault counters: %+v, want ≥%d drops, retries > 0, timeouts == retries",
						f, tc.minDrops)
				}
			}

			switch tc.mode {
			case "clean":
				ref := chaosScenario(tc.name+" reference", "", tc.p)
				refRes, refLog := ref.Run(prob)
				mustEqualGrads(t, log, refLog, 0)
				mustEqualParams(t, res.FinalParams, refRes.FinalParams)
				if res.LiveP != tc.p {
					t.Fatalf("LiveP = %d, want %d (no evictions expected)", res.LiveP, tc.p)
				}
			case "survivors":
				f := res.Comm.Faults
				if f.Crashes != 1 || f.Evictions != 1 || f.Reforms != 1 {
					t.Fatalf("membership counters: %+v, want exactly 1 crash/eviction/re-form", f)
				}
				if res.LiveP != tc.p-1 {
					t.Fatalf("LiveP = %d, want %d", res.LiveP, tc.p-1)
				}
				var survivors []int
				for r := 0; r < tc.p; r++ {
					if r != tc.crashRank {
						survivors = append(survivors, r)
					}
				}
				ref := chaosScenario(tc.name+" reference", "", tc.p-1)
				ref.Resume = filepath.Join(dir, fmt.Sprintf("ck-%d.ckpt", tc.crashB))
				ref.ResumeRanks = survivors
				refRes, refLog := ref.Run(prob)
				mustEqualGrads(t, log, refLog, tc.crashB)
				mustEqualParams(t, res.FinalParams, refRes.FinalParams)
			}

			if tc.traced {
				var buf bytes.Buffer
				if err := tr.WriteTrace(&buf); err != nil {
					t.Fatal(err)
				}
				if _, err := obs.ValidateTrace(buf.Bytes()); err != nil {
					t.Fatalf("degraded-run trace failed schema validation: %v", err)
				}
				for _, name := range []string{"heartbeat", "evict", "reform", "crash", "retry", "drop"} {
					if !strings.Contains(buf.String(), `"`+name+`"`) {
						t.Errorf("trace export missing %q spans", name)
					}
				}
			}
		})
	}
}

// TestChaosDeterminism: the same scenario executed twice must reproduce
// final parameters and fault counters exactly — the property that makes
// chaos failures debuggable.
func TestChaosDeterminism(t *testing.T) {
	prob := Synthetic(48, 24, 101)
	run := func() ([]float64, int64) {
		dir := t.TempDir()
		// The generous retry timeout keeps attempt counts schedule-free
		// (no spurious retransmissions), so the drop tally is exact.
		s := chaosScenario("det", "seed=13,drop=0.15,crash=1@2,timeout=60ms,evict=500ms", 4)
		s.Checkpoint = filepath.Join(dir, "ck-%d.ckpt")
		res, _ := s.Run(prob)
		return res.FinalParams, res.Comm.Faults.Drops
	}
	p1, d1 := run()
	p2, d2 := run()
	if d1 != d2 {
		t.Fatalf("drop counts differ across identical runs: %d vs %d", d1, d2)
	}
	mustEqualParams(t, p1, p2)
}
