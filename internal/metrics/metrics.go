// Package metrics holds the accuracy/timing records the experiment
// drivers produce and the plain-text renderers that print them in the
// shape of the paper's tables and figures (one series per line, one row
// per epoch or per configuration).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one recorded measurement of a training run.
type Point struct {
	Epoch    int     // collective epochs completed (all learners together)
	Train    float64 // training accuracy in [0,1]
	Test     float64 // test accuracy in [0,1]
	Loss     float64 // most recent training minibatch loss at record time
	SimTime  float64 // simulated seconds elapsed (0 when not simulated)
	WallSecs float64 // wall-clock seconds elapsed
}

// Curve is a training trajectory.
type Curve []Point

// Final returns the last point (zero Point for an empty curve).
func (c Curve) Final() Point {
	if len(c) == 0 {
		return Point{}
	}
	return c[len(c)-1]
}

// TestAt returns the test accuracy at the first point with Epoch >= e,
// or the final test accuracy if the curve ends earlier.
func (c Curve) TestAt(e int) float64 {
	for _, p := range c {
		if p.Epoch >= e {
			return p.Test
		}
	}
	return c.Final().Test
}

// BestTest returns the maximum test accuracy over the curve.
func (c Curve) BestTest() float64 {
	best := 0.0
	for _, p := range c {
		if p.Test > best {
			best = p.Test
		}
	}
	return best
}

// AUC returns the mean test accuracy across points, a crude
// area-under-curve summary used by shape assertions in tests.
func (c Curve) AUC() float64 {
	if len(c) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range c {
		s += p.Test
	}
	return s / float64(len(c))
}

// Series is a labelled curve for figure-style output.
type Series struct {
	Label string
	Curve Curve
}

// Table is a simple column-aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// FormatFigure renders labelled accuracy-vs-epoch series the way the
// paper's figures tabulate them: one column per series, one row per
// recorded epoch, using test accuracy in percent.
func FormatFigure(title string, series []Series) string {
	return formatFigure(title, series, func(p Point) float64 { return p.Test })
}

// FormatTrainFigure renders training-accuracy series.
func FormatTrainFigure(title string, series []Series) string {
	return formatFigure(title, series, func(p Point) float64 { return p.Train })
}

func formatFigure(title string, series []Series, pick func(Point) float64) string {
	// Collect the union of epochs.
	epochSet := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Curve {
			epochSet[p.Epoch] = true
		}
	}
	epochs := make([]int, 0, len(epochSet))
	for e := range epochSet {
		epochs = append(epochs, e)
	}
	sort.Ints(epochs)

	t := Table{Title: title, Header: []string{"epoch"}}
	for _, s := range series {
		t.Header = append(t.Header, s.Label)
	}
	for _, e := range epochs {
		row := []string{fmt.Sprintf("%d", e)}
		for _, s := range series {
			v := math.NaN()
			for _, p := range s.Curve {
				if p.Epoch == e {
					v = pick(p)
					break
				}
			}
			if math.IsNaN(v) {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.2f%%", 100*v))
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Pct formats a [0,1] fraction as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// Secs formats seconds with millisecond resolution.
func Secs(v float64) string { return fmt.Sprintf("%.3fs", v) }

// SamplesToTarget returns the number of training samples that had been
// processed when the curve first reached the target test accuracy, and
// whether it ever did. samplesPerEpoch is the collective per-epoch
// sample count. This is the paper's sample-complexity measure: "the
// number of data samples required to reach certain training quality".
func SamplesToTarget(c Curve, target float64, samplesPerEpoch int) (int64, bool) {
	for _, p := range c {
		if p.Test >= target {
			return int64(p.Epoch) * int64(samplesPerEpoch), true
		}
	}
	return 0, false
}
