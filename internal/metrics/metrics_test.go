package metrics

import (
	"strings"
	"testing"
)

func curve(vals ...float64) Curve {
	var c Curve
	for i, v := range vals {
		c = append(c, Point{Epoch: i + 1, Train: v, Test: v})
	}
	return c
}

func TestCurveFinal(t *testing.T) {
	c := curve(0.1, 0.5, 0.8)
	if c.Final().Test != 0.8 {
		t.Errorf("Final = %v", c.Final())
	}
	var empty Curve
	if empty.Final().Test != 0 {
		t.Error("empty Final not zero")
	}
}

func TestCurveTestAt(t *testing.T) {
	c := curve(0.1, 0.5, 0.8)
	if got := c.TestAt(2); got != 0.5 {
		t.Errorf("TestAt(2) = %g", got)
	}
	if got := c.TestAt(99); got != 0.8 {
		t.Errorf("TestAt beyond end = %g", got)
	}
}

func TestCurveBestAndAUC(t *testing.T) {
	c := curve(0.2, 0.9, 0.4)
	if c.BestTest() != 0.9 {
		t.Errorf("BestTest = %g", c.BestTest())
	}
	if auc := c.AUC(); auc < 0.49 || auc > 0.51 {
		t.Errorf("AUC = %g, want 0.5", auc)
	}
	var empty Curve
	if empty.AUC() != 0 || empty.BestTest() != 0 {
		t.Error("empty curve summaries not zero")
	}
}

func TestTableAlignment(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a", "long-header"}}
	tab.AddRow("xxxxxx", "1")
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[1], "long-header") || !strings.Contains(lines[2], "xxxxxx") {
		t.Errorf("table content wrong:\n%s", s)
	}
}

func TestFormatFigure(t *testing.T) {
	s := FormatFigure("fig", []Series{
		{Label: "p=1", Curve: curve(0.5)},
		{Label: "p=2", Curve: Curve{{Epoch: 2, Test: 0.25}}},
	})
	if !strings.Contains(s, "p=1") || !strings.Contains(s, "p=2") {
		t.Fatalf("missing labels:\n%s", s)
	}
	if !strings.Contains(s, "50.00%") || !strings.Contains(s, "25.00%") {
		t.Errorf("missing values:\n%s", s)
	}
	// Epoch 2 has no p=1 point: rendered as "-".
	if !strings.Contains(s, "-") {
		t.Errorf("missing placeholder for absent point:\n%s", s)
	}
}

func TestFormatTrainFigureUsesTrain(t *testing.T) {
	c := Curve{{Epoch: 1, Train: 0.75, Test: 0.10}}
	s := FormatTrainFigure("fig", []Series{{Label: "x", Curve: c}})
	if !strings.Contains(s, "75.00%") || strings.Contains(s, "10.00%") {
		t.Errorf("train figure used wrong field:\n%s", s)
	}
}

func TestPctAndSecs(t *testing.T) {
	if Pct(0.1234) != "12.34%" {
		t.Errorf("Pct = %q", Pct(0.1234))
	}
	if Secs(1.5) != "1.500s" {
		t.Errorf("Secs = %q", Secs(1.5))
	}
}

func TestSamplesToTarget(t *testing.T) {
	c := curve(0.2, 0.5, 0.9)
	got, ok := SamplesToTarget(c, 0.5, 100)
	if !ok || got != 200 {
		t.Errorf("SamplesToTarget = %d, %v; want 200, true", got, ok)
	}
	if _, ok := SamplesToTarget(c, 0.95, 100); ok {
		t.Error("unreached target reported as reached")
	}
	if _, ok := SamplesToTarget(nil, 0.1, 100); ok {
		t.Error("empty curve reported as reached")
	}
}
