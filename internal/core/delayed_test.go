package core

import (
	"math"
	"testing"

	"sasgd/internal/comm"
	"sasgd/internal/netsim"
)

// TestDelayedSingleBoundaryBitwiseEager: with exactly one communication
// boundary in the whole run, delayed application degenerates to eager —
// the only aggregate is launched at the last step and flushed before the
// final evaluation, which is precisely when the eager run applies it.
func TestDelayedSingleBoundaryBitwiseEager(t *testing.T) {
	prob := tinyProblem(32, 16, 4)
	for _, p := range []int{2, 3, 5} {
		// 32 samples / p learners, batch 4: bpe × 2 epochs = total steps;
		// Interval = total steps ⇒ one boundary at the very last step.
		shards := prob.Train.Partition(p)
		total := 2 * batchesPerEpoch(shards, 4)
		base := Config{
			Algo: AlgoSASGD, Learners: p, Interval: total, Gamma: 0.05,
			Batch: 4, Epochs: 2, Seed: 31, TSched: TSchedStatic,
		}
		eager := Train(base, prob)
		cfg := base
		cfg.DelayedApply = true
		delayed := Train(cfg, prob)
		for i := range eager.FinalParams {
			if eager.FinalParams[i] != delayed.FinalParams[i] {
				t.Fatalf("p=%d: single-boundary delayed not bitwise eager at %d: %g vs %g",
					p, i, eager.FinalParams[i], delayed.FinalParams[i])
			}
		}
		if eager.WordsMoved != delayed.WordsMoved {
			t.Errorf("p=%d: eager moved %d words, delayed %d", p, eager.WordsMoved, delayed.WordsMoved)
		}
	}
}

// TestDelayedOneRoundShiftHooks pins the delay semantics through
// AggHook: the delayed run fires the hook at APPLICATION time with the
// aggregate's ORIGIN boundary index, so origins arrive in order, the
// hook count matches the eager run's (the final pending aggregate is
// flushed), and the FIRST aggregate — computed from the shared prefix of
// the trajectory, before delay skews it — is bitwise identical.
func TestDelayedOneRoundShiftHooks(t *testing.T) {
	prob := tinyProblem(48, 16, 3)
	type hook struct {
		boundary int
		gs       []float64
	}
	collect := func(delayed bool) []hook {
		var hooks []hook
		cfg := Config{
			Algo: AlgoSASGD, Learners: 4, Interval: 2, Gamma: 0.05,
			Batch: 4, Epochs: 2, Seed: 33, TSched: TSchedStatic,
			DelayedApply: delayed,
			AggHook: func(b int, gs []float64) {
				hooks = append(hooks, hook{b, append([]float64(nil), gs...)})
			},
		}
		Train(cfg, prob)
		return hooks
	}
	eager := collect(false)
	delayed := collect(true)
	if len(eager) == 0 || len(eager) != len(delayed) {
		t.Fatalf("hook counts: eager %d, delayed %d", len(eager), len(delayed))
	}
	for i := range delayed {
		if delayed[i].boundary != i {
			t.Fatalf("delayed hook %d has origin boundary %d, want %d (in order)", i, delayed[i].boundary, i)
		}
	}
	for i := range eager[0].gs {
		if eager[0].gs[i] != delayed[0].gs[i] {
			t.Fatalf("first aggregate differs at %d: %g vs %g — the shared-prefix round must be bitwise",
				i, eager[0].gs[i], delayed[0].gs[i])
		}
	}
}

// TestHierSingletonIslandsBitwiseFlat: with one island per rank the
// intra phase is a no-op, every rank is a leader, and the outer exchange
// at TOuter=1 is the flat tree over all ranks every boundary — so the
// hierarchical path must be bitwise the flat eager path.
func TestHierSingletonIslandsBitwiseFlat(t *testing.T) {
	prob := tinyProblem(48, 16, 2)
	for _, p := range []int{2, 3, 5, 8} {
		base := Config{
			Algo: AlgoSASGD, Learners: p, Interval: 2, Gamma: 0.05,
			Batch: 4, Epochs: 2, Seed: 35, TSched: TSchedStatic,
		}
		flat := Train(base, prob)
		cfg := base
		cfg.HierGroups = p
		cfg.TOuter = 1
		hier := Train(cfg, prob)
		for i := range flat.FinalParams {
			if flat.FinalParams[i] != hier.FinalParams[i] {
				t.Fatalf("p=%d: singleton-island hier not bitwise flat at %d: %g vs %g",
					p, i, flat.FinalParams[i], hier.FinalParams[i])
			}
		}
		if flat.WordsMoved != hier.WordsMoved {
			t.Errorf("p=%d: flat moved %d words, hier %d", p, flat.WordsMoved, hier.WordsMoved)
		}
	}
}

// TestHierDelayedDegenerateEqualsEager: delay touches only the OUTER
// exchange; with TOuter larger than the run's boundary count the outer
// never fires, so delayed and eager hierarchical runs are identical.
func TestHierDelayedDegenerateEqualsEager(t *testing.T) {
	prob := tinyProblem(48, 16, 1)
	base := Config{
		Algo: AlgoSASGD, Learners: 6, Interval: 2, Gamma: 0.05,
		Batch: 4, Epochs: 2, Seed: 37,
		HierGroups: 3, TOuter: 1000,
	}
	eager := Train(base, prob)
	cfg := base
	cfg.DelayedApply = true
	delayed := Train(cfg, prob)
	for i := range eager.FinalParams {
		if eager.FinalParams[i] != delayed.FinalParams[i] {
			t.Fatalf("outer-never-fires: delayed differs from eager at %d", i)
		}
	}
	if eager.WordsMoved != delayed.WordsMoved {
		t.Errorf("eager moved %d words, delayed %d", eager.WordsMoved, delayed.WordsMoved)
	}
}

// TestHierReducesCrossIslandTraffic: the hierarchy's reason to exist —
// at equal inner period, the two-level schedule must push several times
// fewer words across island boundaries than the flat schedule, without
// giving up convergence entirely (sanity floor, not a tight bound).
func TestHierReducesCrossIslandTraffic(t *testing.T) {
	prob := tinyProblem(64, 24, 6)
	simCfg := netsim.DefaultConfig() // IslandSize 2 ⇒ 4 islands at p=8
	base := Config{
		Algo: AlgoSASGD, Learners: 8, Interval: 2, Gamma: 0.05,
		Batch: 4, Epochs: 3, Seed: 39, TSched: TSchedStatic,
		Sim: netsim.New(8, simCfg), FlopsPerSample: 1e7,
	}
	flat := Train(base, prob)
	cfg := base
	cfg.Sim = netsim.New(8, simCfg)
	cfg.HierGroups = 4 // block islands of 2 = the simulated topology
	cfg.TOuter = 4
	hier := Train(cfg, prob)
	if flat.Comm.CrossWords == 0 || hier.Comm.CrossWords == 0 {
		t.Fatalf("cross-island accounting missing: flat %d, hier %d",
			flat.Comm.CrossWords, hier.Comm.CrossWords)
	}
	if hier.Comm.CrossWords*2 > flat.Comm.CrossWords {
		t.Errorf("hier crossed %d words, flat %d — want ≥2× reduction",
			hier.Comm.CrossWords, flat.Comm.CrossWords)
	}
	if hier.FinalTest < 0.5 {
		t.Errorf("hier run collapsed: final test accuracy %.3f", hier.FinalTest)
	}
}

// TestDelayedDeterministicUnderSim: the DeferSync discipline must make
// the delayed run's simulated time independent of goroutine
// interleaving — two identical runs agree on values AND clocks — and
// the hidden transfer must not make the run slower than eager.
func TestDelayedDeterministicUnderSim(t *testing.T) {
	prob := tinyProblem(48, 16, 8)
	mk := func(delayed bool) *Result {
		return Train(Config{
			Algo: AlgoSASGD, Learners: 4, Interval: 2, Gamma: 0.05,
			Batch: 4, Epochs: 3, Seed: 41, TSched: TSchedStatic,
			DelayedApply: delayed,
			Sim:          netsim.New(4, netsim.DefaultConfig()), FlopsPerSample: 1e8,
		}, prob)
	}
	a, b := mk(true), mk(true)
	if a.SimTime != b.SimTime {
		t.Fatalf("delayed sim time not reproducible: %g vs %g", a.SimTime, b.SimTime)
	}
	for i := range a.FinalParams {
		if a.FinalParams[i] != b.FinalParams[i] {
			t.Fatalf("delayed run not reproducible at %d", i)
		}
	}
	eager := mk(false)
	if a.SimTime > eager.SimTime {
		t.Errorf("delayed sim time %g exceeds eager %g — the hidden transfer made it slower", a.SimTime, eager.SimTime)
	}
}

// TestScheduledComposesCodecs: every policy × codec combination must be
// run-to-run deterministic (bitwise) — the composition contract.
func TestScheduledComposesCodecs(t *testing.T) {
	prob := tinyProblem(48, 16, 9)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"delayed+topk", func(c *Config) { c.DelayedApply = true; c.Compress = CodecTopK; c.CompressK = 0.2 }},
		{"delayed+qint8", func(c *Config) { c.DelayedApply = true; c.Compress = CodecQInt8 }},
		{"delayed+topk+adapt", func(c *Config) {
			c.DelayedApply = true
			c.Compress = CodecTopK
			c.CompressK = 0.2
			c.CompressAdapt = true
		}},
		{"hier+topk", func(c *Config) { c.HierGroups = 2; c.TOuter = 2; c.Compress = CodecTopK; c.CompressK = 0.2 }},
		{"hier+qint8", func(c *Config) { c.HierGroups = 2; c.TOuter = 2; c.Compress = CodecQInt8 }},
		{"hier+delayed", func(c *Config) { c.HierGroups = 2; c.TOuter = 2; c.DelayedApply = true }},
		{"hier+delayed+topk", func(c *Config) {
			c.HierGroups = 2
			c.TOuter = 2
			c.DelayedApply = true
			c.Compress = CodecTopK
			c.CompressK = 0.2
		}},
		{"adaptive+hier+delayed", func(c *Config) {
			c.TSched = TSchedAdaptive
			c.HierGroups = 2
			c.TOuter = 2
			c.DelayedApply = true
		}},
	} {
		cfg := Config{
			Algo: AlgoSASGD, Learners: 4, Interval: 2, Gamma: 0.05,
			Batch: 4, Epochs: 2, Seed: 43,
		}
		tc.mut(&cfg)
		a := Train(cfg, prob)
		b := Train(cfg, prob)
		if len(a.FinalParams) == 0 {
			t.Fatalf("%s: no final params", tc.name)
		}
		for i := range a.FinalParams {
			if a.FinalParams[i] != b.FinalParams[i] {
				t.Fatalf("%s: not run-to-run deterministic at %d", tc.name, i)
			}
		}
	}
}

// TestChaosHierCrashReformsIslands: a crash inside an island must
// re-partition the survivor group by the members' physical islands and
// leave the run bitwise reproducible — the hierarchical leg of the chaos
// contract.
func TestChaosHierCrashReformsIslands(t *testing.T) {
	prob := tinyProblem(48, 24, 11)
	for _, delayed := range []bool{false, true} {
		cfg := Config{
			Algo: AlgoSASGD, Learners: 6, Interval: 2, Gamma: 0.05,
			Batch: 4, Epochs: 6, Seed: 47,
			HierGroups: 3, TOuter: 2, DelayedApply: delayed,
			// Rank 2 (island 1's leader) dies at boundary 1.
			Faults: &comm.FaultPlan{CrashAt: map[int]int{2: 1}, EvictAfter: 3e8},
		}
		a := Train(cfg, prob)
		b := Train(cfg, prob)
		if a.LiveP != 5 {
			t.Fatalf("delayed=%v: LiveP = %d, want 5", delayed, a.LiveP)
		}
		for i := range a.FinalParams {
			if a.FinalParams[i] != b.FinalParams[i] {
				t.Fatalf("delayed=%v: crashed hier run not reproducible at %d", delayed, i)
			}
		}
		for i, v := range a.FinalParams {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("delayed=%v: non-finite param %g at %d after re-form", delayed, v, i)
			}
		}
	}
}
