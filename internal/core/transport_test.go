package core

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"sasgd/internal/comm"
)

// transportCfg is the shared run shape for the transport tests: small
// enough to train in milliseconds, several aggregation boundaries and
// two epochs of barriers deep.
func transportCfg(p int) Config {
	return Config{
		Algo: AlgoSASGD, Learners: p, Interval: 2, Batch: 4,
		Gamma: 0.05, Epochs: 2, Seed: 9,
	}
}

// TestTrainTCPLoopbackMatchesChannel: a whole training run whose frames
// ride loopback sockets must be bitwise identical to the channel-fabric
// run — curve, final parameters, and traffic counters alike.
func TestTrainTCPLoopbackMatchesChannel(t *testing.T) {
	const p = 3
	prob := tinyProblem(48, 24, 5)
	want := Train(transportCfg(p), prob)

	tr, err := comm.NewTCPLoopback(p)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := transportCfg(p)
	cfg.Transport = tr
	got := Train(cfg, prob)

	if len(got.FinalParams) == 0 || len(got.FinalParams) != len(want.FinalParams) {
		t.Fatalf("final parameter lengths %d vs %d", len(got.FinalParams), len(want.FinalParams))
	}
	for i := range want.FinalParams {
		if got.FinalParams[i] != want.FinalParams[i] {
			t.Fatalf("final parameters differ at %d: %g vs %g (must be bitwise identical)",
				i, got.FinalParams[i], want.FinalParams[i])
		}
	}
	if got.WordsMoved != want.WordsMoved {
		t.Errorf("words moved: tcp %d vs channel %d", got.WordsMoved, want.WordsMoved)
	}
	if len(got.Curve) != len(want.Curve) {
		t.Fatalf("curve lengths %d vs %d", len(got.Curve), len(want.Curve))
	}
	for i, w := range want.Curve {
		// WallSecs is real time and legitimately differs; everything the
		// algorithm computes must not.
		g := got.Curve[i]
		if g.Epoch != w.Epoch || g.Train != w.Train || g.Test != w.Test || g.Loss != w.Loss {
			t.Errorf("curve point %d differs: %+v vs %+v", i, g, w)
		}
	}
}

// TestTrainMultiEndpointMatchesChannel runs the genuinely distributed
// shape inside one test process: two TCP mesh endpoints, each hosting
// one learner via LocalRanks, train concurrently and meet only on the
// wire (collectives, barriers, epoch evaluation). The rank-0 endpoint's
// final parameters must match the single-process channel run bitwise.
func TestTrainMultiEndpointMatchesChannel(t *testing.T) {
	const p = 2
	prob := tinyProblem(48, 24, 5)
	want := Train(transportCfg(p), prob)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	addrs := []string{"127.0.0.1:0", fmt.Sprintf("127.0.0.1:%d", port)}

	var trs [p]*comm.TCPTransport
	var errs [p]error
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = comm.NewTCPTransport(comm.TCPConfig{Addrs: addrs, Local: []int{r}})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("endpoint %d: %v", r, err)
		}
	}

	results := make([]*Result, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer trs[r].Close()
			cfg := transportCfg(p)
			cfg.Transport = trs[r]
			cfg.LocalRanks = []int{r}
			cfg.Workers = 1 // both endpoints share this process's budget
			results[r] = Train(cfg, prob)
		}(r)
	}
	wg.Wait()

	got := results[0]
	if len(got.FinalParams) != len(want.FinalParams) || len(got.FinalParams) == 0 {
		t.Fatalf("rank-0 endpoint parameters: %d words, want %d", len(got.FinalParams), len(want.FinalParams))
	}
	for i := range want.FinalParams {
		if got.FinalParams[i] != want.FinalParams[i] {
			t.Fatalf("multi-endpoint parameters differ at %d: %g vs %g (must be bitwise identical)",
				i, got.FinalParams[i], want.FinalParams[i])
		}
	}
	if len(results[1].FinalParams) != 0 {
		t.Errorf("rank-1 endpoint reported %d final parameters; only rank 0 records them", len(results[1].FinalParams))
	}
}
