package core

import (
	"os"
	"path/filepath"
	"testing"

	"sasgd/internal/comm"
)

// TestCheckpointRoundTrip: the meta header and the parameter frame
// survive a write/read cycle exactly, and corruption is detected.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.ckpt")
	meta := checkpointMeta{
		OrigP: 4, Interval: 3, Batch: 8, Seed: 99, GammaP: 0.0125,
		Step: 42, Boundary: 14, Live: []int{0, 1, 3},
	}
	params := []float64{1.5, -2.25, 0, 3.125e-9}
	if err := writeCheckpoint(path, meta, params); err != nil {
		t.Fatal(err)
	}
	got, gp, err := readCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.OrigP != meta.OrigP || got.Interval != meta.Interval || got.Batch != meta.Batch ||
		got.Seed != meta.Seed || got.GammaP != meta.GammaP || got.Step != meta.Step ||
		got.Boundary != meta.Boundary || len(got.Live) != 3 || got.Live[2] != 3 {
		t.Fatalf("meta round-trip mismatch: %+v vs %+v", got, meta)
	}
	if len(gp) != len(params) {
		t.Fatalf("got %d params, want %d", len(gp), len(params))
	}
	for i := range params {
		if gp[i] != params[i] {
			t.Fatalf("param %d: %g != %g", i, gp[i], params[i])
		}
	}
	// No stray temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// Flip a payload byte: the CRC must catch it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readCheckpoint(path); err == nil {
		t.Fatal("corrupted checkpoint read back without error")
	}
}

// TestResilientPathMatchesPlain: the membership-aware training path with
// an empty fault plan is the same algorithm as trainSASGD — final
// parameters and accuracy curves must be bitwise identical.
func TestResilientPathMatchesPlain(t *testing.T) {
	prob := tinyProblem(48, 24, 11)
	base := Config{
		Algo: AlgoSASGD, Learners: 3, Interval: 2, Gamma: 0.05,
		Batch: 4, Epochs: 3, Seed: 7,
	}
	plain := Train(base, prob)
	resil := base
	resil.Faults = &comm.FaultPlan{EvictAfter: 5e9} // empty plan, patient detector
	got := Train(resil, prob)
	if len(got.FinalParams) != len(plain.FinalParams) {
		t.Fatalf("param lengths differ: %d vs %d", len(got.FinalParams), len(plain.FinalParams))
	}
	for i := range plain.FinalParams {
		if got.FinalParams[i] != plain.FinalParams[i] {
			t.Fatalf("resilient path diverged at parameter %d: %g vs %g",
				i, got.FinalParams[i], plain.FinalParams[i])
		}
	}
	if len(got.Curve) != len(plain.Curve) {
		t.Fatalf("curve lengths differ: %d vs %d", len(got.Curve), len(plain.Curve))
	}
	for i := range plain.Curve {
		if got.Curve[i].Train != plain.Curve[i].Train || got.Curve[i].Test != plain.Curve[i].Test {
			t.Fatalf("curve point %d differs: %+v vs %+v", i, got.Curve[i], plain.Curve[i])
		}
	}
	if got.LiveP != base.Learners {
		t.Fatalf("LiveP = %d, want %d (nothing crashed)", got.LiveP, base.Learners)
	}
}

// TestCheckpointResumeBitwise: interrupt-and-resume is exact replay. A
// run that checkpoints every boundary, truncated by resuming a second
// run from a mid-run checkpoint, must land on bitwise the same final
// parameters as the original uninterrupted run.
func TestCheckpointResumeBitwise(t *testing.T) {
	prob := tinyProblem(48, 24, 13)
	dir := t.TempDir()
	base := Config{
		Algo: AlgoSASGD, Learners: 3, Interval: 2, Gamma: 0.05,
		Batch: 4, Epochs: 4, Seed: 21,
	}
	full := base
	full.CheckpointPath = filepath.Join(dir, "ck-%d.ckpt")
	ref := Train(full, prob)

	// Pick a mid-run, mid-epoch boundary checkpoint and resume from it
	// (8 boundaries total: 4 epochs × 4 batches / T=2).
	mid := filepath.Join(dir, "ck-5.ckpt")
	if _, err := os.Stat(mid); err != nil {
		t.Fatalf("expected per-boundary checkpoint %s: %v", mid, err)
	}
	resume := base
	resume.ResumeFrom = mid
	got := Train(resume, prob)

	for i := range ref.FinalParams {
		if got.FinalParams[i] != ref.FinalParams[i] {
			t.Fatalf("resumed run diverged at parameter %d: %g vs %g",
				i, got.FinalParams[i], ref.FinalParams[i])
		}
	}
	// The resumed run replays only the remaining epochs' evaluations.
	if len(got.Curve) == 0 || len(got.Curve) >= len(ref.Curve) {
		t.Fatalf("resumed curve has %d points, reference %d; want a non-empty strict subset",
			len(got.Curve), len(ref.Curve))
	}
	last := got.Curve[len(got.Curve)-1]
	refLast := ref.Curve[len(ref.Curve)-1]
	if last.Epoch != refLast.Epoch || last.Test != refLast.Test {
		t.Fatalf("final curve point differs: %+v vs %+v", last, refLast)
	}
}

// TestResumeSurvivorsOnly: resuming a subset of the original ranks
// trains on the survivors' own shards with γp rescaled by OrigP/p′, and
// the mechanics (partitioning, seeds, boundary counters) hold together.
func TestResumeSurvivorsOnly(t *testing.T) {
	prob := tinyProblem(48, 24, 17)
	dir := t.TempDir()
	base := Config{
		Algo: AlgoSASGD, Learners: 3, Interval: 2, Gamma: 0.05,
		Batch: 4, Epochs: 4, Seed: 33,
	}
	full := base
	full.CheckpointPath = filepath.Join(dir, "ck-%d.ckpt")
	Train(full, prob)

	resume := base
	resume.Learners = 2
	resume.ResumeFrom = filepath.Join(dir, "ck-6.ckpt")
	resume.ResumeRanks = []int{0, 2}
	got := Train(resume, prob)
	if len(got.FinalParams) == 0 {
		t.Fatal("survivors-only resume produced no final parameters")
	}
	if got.P != 2 || got.LiveP != 2 {
		t.Fatalf("P=%d LiveP=%d, want 2/2", got.P, got.LiveP)
	}
	if got.FinalTest == 0 {
		t.Fatal("survivors-only resume recorded no accuracy")
	}
}

// TestLoadResumeValidation: mismatched schedules and malformed rank
// lists are rejected up front.
func TestLoadResumeValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.ckpt")
	meta := checkpointMeta{OrigP: 4, Interval: 2, Batch: 4, Seed: 5, GammaP: 0.01, Step: 8, Boundary: 4}
	if err := writeCheckpoint(path, meta, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	ok := Config{Algo: AlgoSASGD, Learners: 4, Interval: 2, Batch: 4, Seed: 5, Gamma: 0.1, ResumeFrom: path}
	if _, err := loadResume(ok.withDefaults()); err != nil {
		t.Fatalf("valid resume rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"interval", func(c *Config) { c.Interval = 3 }},
		{"batch", func(c *Config) { c.Batch = 8 }},
		{"seed", func(c *Config) { c.Seed = 6 }},
		{"rank count", func(c *Config) { c.Learners = 2; c.ResumeRanks = []int{0, 1, 2} }},
		{"rank range", func(c *Config) { c.Learners = 2; c.ResumeRanks = []int{0, 4} }},
		{"rank order", func(c *Config) { c.Learners = 2; c.ResumeRanks = []int{2, 1} }},
		{"learners without ranks", func(c *Config) { c.Learners = 2 }},
	}
	for _, tc := range cases {
		cfg := ok
		tc.mut(&cfg)
		if _, err := loadResume(cfg.withDefaults()); err == nil {
			t.Errorf("%s mismatch accepted", tc.name)
		}
	}
}

// TestCheckpointFileTemplating pins the %d-per-boundary vs fixed-path
// behaviors of checkpointFile.
func TestCheckpointFileTemplating(t *testing.T) {
	if got := checkpointFile("ck-%d.ckpt", 7); got != "ck-7.ckpt" {
		t.Fatalf("templated path: got %q", got)
	}
	if got := checkpointFile("ck.ckpt", 7); got != "ck.ckpt" {
		t.Fatalf("fixed path: got %q", got)
	}
}
