package core

import (
	"sync/atomic"

	"sasgd/internal/comm"
	"sasgd/internal/data"
	"sasgd/internal/tensor"
)

// trainDownpour implements Downpour ASGD (Dean et al., the paper's first
// baseline). Each learner keeps a local replica; every T minibatches it
// pushes its accumulated gradient to the sharded parameter server (which
// applies x̃ ← x̃ − γ·gs) and pulls fresh parameters. Between syncs the
// learner also applies its gradients locally so it keeps learning within
// the interval, matching the Downpour variant the paper describes that
// "processes multiple minibatches before sending gradients
// asynchronously".
//
// There is no synchronization between learners: gradient staleness —
// how many other updates the server absorbed between this learner's pull
// and its push — is determined by goroutine scheduling, exactly the
// scheduler- and topology-dependent staleness the paper contrasts with
// SASGD's explicit bound. The run measures it (Result.StalenessMean/Max).
func trainDownpour(cfg Config, prob *Problem) *Result {
	p := cfg.Learners
	shards := prob.Train.Partition(p)
	bpe := batchesPerEpoch(shards, cfg.Batch)

	// The server is initialized from learner 0's replica; learners then
	// pull, which stands in for the initial broadcast.
	init := prob.newReplica(cfg.Seed)
	var clocks []comm.Clock
	var cost comm.CostModel
	if cfg.Sim != nil {
		clocks, cost = cfg.Sim.Clocks(), cfg.Sim.CostModel()
	}
	server := comm.NewParamServer(init.ParamData(), cfg.Shards, clocks, cost)

	rec := newRecorder(prob)
	var samples atomic.Int64
	var stats stalenessStats
	var finalParams []float64
	var gate *virtualGate
	if cfg.VirtualTime {
		gate = newVirtualGate(p)
	}

	runLearners(p, func(rank int) {
		pacer := newPacer(gate, rank, &cfg)
		defer pacer.finish()
		net := prob.newReplica(cfg.Seed + int64(rank))
		params := net.ParamData()
		grads := net.GradData()
		m := net.NumParams()
		gs := make([]float64, m)

		// The initial pull is learners' step 0: gated so the starting
		// parameters are deterministic under virtual time.
		pacer.begin()
		pullGens := server.Pull(rank, params)
		pacer.end()
		sampler := data.NewEpochSampler(shards[rank].Len(), cfg.Batch, cfg.Seed+int64(rank)*31+7)
		var lastLoss float64
		step := 0
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for b := 0; b < bpe; b++ {
				pacer.begin()
				idx := sampler.Next()
				x, y := shards[rank].Batch(idx)
				lastLoss = net.Step(x, y)
				tensor.Axpy(-cfg.Gamma, grads, params)
				tensor.Axpy(1, grads, gs)
				samples.Add(int64(len(idx)))
				if cfg.Sim != nil {
					cfg.Sim.ChargeBatch(rank, cfg.FlopsPerSample*float64(len(idx)))
				}
				step++
				if step%cfg.Interval == 0 {
					pushGens := server.PushGrad(rank, cfg.Gamma, gs)
					stats.observe(staleness(pullGens, pushGens))
					for i := range gs {
						gs[i] = 0
					}
					pullGens = server.Pull(rank, params)
				}
				pacer.end()
			}
			// Learner 0's pass over its shard marks one collective epoch
			// (the paper's accounting: Downpour reports accuracy from one
			// learner after each of its full passes).
			if rank == 0 && (epoch+1)%cfg.EvalEvery == 0 {
				simNow := 0.0
				if cfg.Sim != nil {
					simNow = cfg.Sim.MaxTime()
				}
				rec.record(epoch+1, params, lastLoss, simNow)
			}
		}
		if rank == 0 {
			finalParams = append([]float64(nil), params...)
		}
	})

	simTime, compute, communication := cfg.simSplits()
	return &Result{
		Algo:          AlgoDownpour,
		P:             p,
		T:             cfg.Interval,
		Curve:         rec.points(),
		Samples:       samples.Load(),
		SimTime:       simTime,
		SimCompute:    compute,
		SimComm:       communication,
		StalenessMean: stats.mean(),
		StalenessMax:  atomic.LoadInt64(&stats.max),
		FinalParams:   finalParams,
	}
}

// staleness counts the server updates by other learners that intervened
// between a pull and the following push: each shard advanced by one for
// our own push, so anything beyond that is foreign.
func staleness(pullGens, pushGens []int64) int64 {
	var s int64
	for i := range pushGens {
		d := pushGens[i] - pullGens[i] - 1
		if d > 0 {
			s += d
		}
	}
	return s / int64(len(pushGens))
}
