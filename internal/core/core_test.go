package core

import (
	"math"
	"math/rand"
	"testing"

	"runtime"
	"sync"

	"sasgd/internal/data"
	"sasgd/internal/metrics"
	"sasgd/internal/model"
	"sasgd/internal/netsim"
	"sasgd/internal/nn"
	"sasgd/internal/tensor"
)

// tinyProblem builds a fast, easily separable 4-feature, 3-class problem
// with a one-layer linear model — enough structure for every algorithm
// to reach high accuracy in a few epochs, small enough that the whole
// core test suite runs in well under a second.
func tinyProblem(nTrain, nTest int, seed int64) *Problem {
	gen := func(n int, seed int64) *data.Dataset {
		rng := rand.New(rand.NewSource(seed))
		d := &data.Dataset{
			X:           tensor.New(n, 4),
			Y:           make([]int, n),
			SampleShape: []int{4},
			Classes:     3,
		}
		for i := 0; i < n; i++ {
			k := rng.Intn(3)
			d.Y[i] = k
			for j := 0; j < 4; j++ {
				v := rng.NormFloat64() * 0.4
				if j == k {
					v += 2
				}
				d.X.Data[i*4+j] = v
			}
		}
		return d
	}
	return &Problem{
		Name: "tiny",
		Model: func(seed int64) *nn.Network {
			rng := rand.New(rand.NewSource(seed))
			return nn.NewNetwork([]int{4},
				nn.NewLinear(rng, 4, 8),
				nn.NewTanh(),
				nn.NewLinear(rng, 8, 3),
			)
		},
		Train: gen(nTrain, seed),
		Test:  gen(nTest, seed+1),
	}
}

func TestSGDLearnsTinyProblem(t *testing.T) {
	prob := tinyProblem(300, 100, 1)
	res := Train(Config{Algo: AlgoSGD, Gamma: 0.2, Batch: 10, Epochs: 15, Seed: 1}, prob)
	if res.FinalTest < 0.9 {
		t.Errorf("SGD final test accuracy %.3f, want > 0.9", res.FinalTest)
	}
	if res.Samples != 15*300 {
		t.Errorf("Samples = %d, want %d", res.Samples, 15*300)
	}
	if len(res.Curve) != 15 {
		t.Errorf("curve has %d points, want 15", len(res.Curve))
	}
	if res.P != 1 {
		t.Errorf("P = %d", res.P)
	}
}

func TestAllAlgorithmsLearn(t *testing.T) {
	prob := tinyProblem(300, 100, 2)
	for _, algo := range []Algorithm{AlgoSGD, AlgoSASGD, AlgoDownpour, AlgoEAMSGD} {
		res := Train(Config{Algo: algo, Learners: 4, Interval: 3, Gamma: 0.1, Batch: 10, Epochs: 15, Seed: 1}, prob)
		if res.FinalTest < 0.85 {
			t.Errorf("%s: final test accuracy %.3f, want > 0.85", algo, res.FinalTest)
		}
		if res.FinalParams == nil {
			t.Errorf("%s: FinalParams not captured", algo)
		}
	}
}

func TestSGDDeterministic(t *testing.T) {
	prob := tinyProblem(100, 50, 3)
	cfg := Config{Algo: AlgoSGD, Gamma: 0.2, Batch: 10, Epochs: 5, Seed: 7}
	a := Train(cfg, prob)
	b := Train(cfg, prob)
	for i := range a.FinalParams {
		if a.FinalParams[i] != b.FinalParams[i] {
			t.Fatal("identical SGD configs produced different parameters")
		}
	}
	for i := range a.Curve {
		if a.Curve[i].Train != b.Curve[i].Train || a.Curve[i].Test != b.Curve[i].Test {
			t.Fatal("identical SGD configs produced different curves")
		}
	}
}

func TestSASGDDeterministic(t *testing.T) {
	// SASGD is bulk-synchronous: unlike the asynchronous baselines its
	// result must not depend on goroutine scheduling.
	prob := tinyProblem(120, 50, 4)
	cfg := Config{Algo: AlgoSASGD, Learners: 4, Interval: 2, Gamma: 0.1, Batch: 10, Epochs: 4, Seed: 5}
	a := Train(cfg, prob)
	b := Train(cfg, prob)
	for i := range a.FinalParams {
		if a.FinalParams[i] != b.FinalParams[i] {
			t.Fatal("SASGD result depends on scheduling")
		}
	}
}

func TestSASGDReplicasConsistentAfterFullRun(t *testing.T) {
	// When T divides the total batch count, the run ends right after an
	// aggregation, so learner 0's replica must equal the reference
	// parameters — and a re-run with the ring collective must agree
	// exactly with the tree (both compute the same sums, modulo
	// floating-point association; tolerance covers that).
	prob := tinyProblem(160, 50, 6)
	base := Config{Algo: AlgoSASGD, Learners: 4, Interval: 2, Gamma: 0.1, Batch: 10, Epochs: 4, Seed: 5}
	tree := Train(base, prob)
	ring := base
	ring.Allreduce = AllreduceRing
	rr := Train(ring, prob)
	for i := range tree.FinalParams {
		if math.Abs(tree.FinalParams[i]-rr.FinalParams[i]) > 1e-9 {
			t.Fatalf("tree and ring allreduce diverge at %d: %g vs %g", i, tree.FinalParams[i], rr.FinalParams[i])
		}
	}
}

func TestSASGDPipelinedTreeBitIdenticalToTree(t *testing.T) {
	// The chunked pipelined tree replays the monolithic tree's summation
	// order chunk by chunk, so a whole training run must agree *bitwise*
	// with the default tree — at any chunk size, including ones that
	// split the gradient vector unevenly. rhd reassociates, so it only
	// gets the ring's tolerance.
	prob := tinyProblem(160, 50, 6)
	base := Config{Algo: AlgoSASGD, Learners: 4, Interval: 2, Gamma: 0.1, Batch: 10, Epochs: 4, Seed: 5}
	tree := Train(base, prob)
	for _, chunk := range []int{0, 1, 37} {
		cfg := base
		cfg.Allreduce = AllreducePTree
		cfg.CommChunk = chunk
		pt := Train(cfg, prob)
		for i := range tree.FinalParams {
			if tree.FinalParams[i] != pt.FinalParams[i] {
				t.Fatalf("chunk=%d: ptree diverges from tree at %d: %g vs %g",
					chunk, i, tree.FinalParams[i], pt.FinalParams[i])
			}
		}
	}
	cfg := base
	cfg.Allreduce = AllreduceRHD
	rhd := Train(cfg, prob)
	for i := range tree.FinalParams {
		if math.Abs(tree.FinalParams[i]-rhd.FinalParams[i]) > 1e-9 {
			t.Fatalf("tree and rhd allreduce diverge at %d: %g vs %g", i, tree.FinalParams[i], rhd.FinalParams[i])
		}
	}
}

func TestSASGDStalenessIsZeroByConstruction(t *testing.T) {
	prob := tinyProblem(120, 40, 7)
	res := Train(Config{Algo: AlgoSASGD, Learners: 4, Interval: 5, Gamma: 0.1, Batch: 10, Epochs: 3, Seed: 1}, prob)
	if res.StalenessMean != 0 || res.StalenessMax != 0 {
		t.Errorf("SASGD reported staleness %.2f/%d", res.StalenessMean, res.StalenessMax)
	}
}

func TestDownpourObservesStaleness(t *testing.T) {
	// 8 learners each pushing after every 2-sample batch: thousands of
	// concurrent server updates. If not a single one observes a foreign
	// update in between, the staleness accounting is broken — unless the
	// host runs goroutines on a single core, where short learner bodies
	// legitimately serialize (the semantics themselves are covered
	// deterministically in comm's server tests).
	if runtime.GOMAXPROCS(0) == 1 {
		t.Skip("single-core host: learner goroutines serialize, no staleness to observe")
	}
	prob := tinyProblem(1600, 40, 8)
	res := Train(Config{Algo: AlgoDownpour, Learners: 8, Interval: 1, Gamma: 0.01, Batch: 2, Epochs: 5, Seed: 1}, prob)
	if res.StalenessMax == 0 {
		t.Error("8 concurrent Downpour learners observed no staleness at all")
	}
}

func TestSASGDWordsMovedMatchesCollectiveCount(t *testing.T) {
	prob := tinyProblem(80, 40, 9)
	p, T, batch, epochs := 4, 2, 10, 3
	res := Train(Config{Algo: AlgoSASGD, Learners: p, Interval: T, Gamma: 0.1, Batch: batch, Epochs: epochs, Seed: 1}, prob)
	m := len(res.FinalParams)
	// Per aggregation, the binomial allreduce moves 2(p−1)m words; the
	// initial broadcast moves (p−1)m.
	batchesPer := (80/p + batch - 1) / batch
	aggs := epochs * batchesPer / T
	want := int64((p - 1) * m * (2*aggs + 1))
	if res.WordsMoved != want {
		t.Errorf("WordsMoved = %d, want %d (%d aggregations)", res.WordsMoved, want, aggs)
	}
}

func TestGammaPDefaultIsModelAveraging(t *testing.T) {
	// With γp = γ/p (the default) and a single aggregation covering the
	// whole run, SASGD's final parameters must equal the average of what
	// p independent SGD runs over the same shards would produce. We
	// verify the arithmetic identity on a run with exactly one
	// aggregation interval spanning all batches.
	prob := tinyProblem(80, 40, 10)
	p, batch := 2, 10
	batchesPer := 80 / p / batch // 4
	cfg := Config{Algo: AlgoSASGD, Learners: p, Interval: batchesPer, Gamma: 0.1, Batch: batch, Epochs: 1, Seed: 3}
	res := Train(cfg, prob)

	// Replay: each learner trains alone (plain SGD) on its shard from the
	// broadcast initialization; average the displacements.
	shards := prob.Train.Partition(p)
	net0 := prob.Model(cfg.Seed + 0) // learner 0's replica (broadcast source)
	init := append([]float64(nil), net0.ParamData()...)
	avg := make([]float64, len(init))
	for rank := 0; rank < p; rank++ {
		net := prob.Model(cfg.Seed + int64(rank))
		net.SetParamData(init)
		sampler := data.NewEpochSampler(shards[rank].Len(), batch, cfg.Seed+int64(rank)*31+7)
		for b := 0; b < batchesPer; b++ {
			idx := sampler.Next()
			x, y := shards[rank].Batch(idx)
			net.Step(x, y)
			tensor.Axpy(-cfg.Gamma, net.GradData(), net.ParamData())
		}
		for i, v := range net.ParamData() {
			avg[i] += v / float64(p)
		}
	}
	for i := range avg {
		if math.Abs(res.FinalParams[i]-avg[i]) > 1e-9 {
			t.Fatalf("SASGD with default γp is not model averaging at %d: %g vs %g", i, res.FinalParams[i], avg[i])
		}
	}
}

func TestEvalEveryStridesCurve(t *testing.T) {
	prob := tinyProblem(100, 40, 11)
	res := Train(Config{Algo: AlgoSASGD, Learners: 2, Interval: 1, Gamma: 0.1, Batch: 10, Epochs: 6, Seed: 1, EvalEvery: 3}, prob)
	if len(res.Curve) != 2 {
		t.Fatalf("curve has %d points, want 2", len(res.Curve))
	}
	if res.Curve[0].Epoch != 3 || res.Curve[1].Epoch != 6 {
		t.Errorf("curve epochs %d, %d; want 3, 6", res.Curve[0].Epoch, res.Curve[1].Epoch)
	}
}

func TestSGDForcesSingleLearner(t *testing.T) {
	prob := tinyProblem(60, 20, 12)
	res := Train(Config{Algo: AlgoSGD, Learners: 8, Gamma: 0.1, Batch: 10, Epochs: 2, Seed: 1}, prob)
	if res.P != 1 {
		t.Errorf("SGD ran with P = %d", res.P)
	}
}

func TestSimulatedRunProducesTimings(t *testing.T) {
	prob := tinyProblem(100, 40, 13)
	sim := netsim.New(2, netsim.DefaultConfig())
	res := Train(Config{
		Algo: AlgoSASGD, Learners: 2, Interval: 2, Gamma: 0.1, Batch: 10,
		Epochs: 3, Seed: 1, Sim: sim, FlopsPerSample: 1e8,
	}, prob)
	if res.SimTime <= 0 || res.SimCompute <= 0 {
		t.Errorf("simulated run reported SimTime=%g SimCompute=%g", res.SimTime, res.SimCompute)
	}
	if res.SimComm <= 0 {
		t.Errorf("SASGD with 2 learners reported zero communication time")
	}
	if res.EpochTime() <= 0 {
		t.Error("EpochTime not positive")
	}
}

func TestUnknownAlgorithmPanics(t *testing.T) {
	prob := tinyProblem(20, 10, 14)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown algorithm did not panic")
		}
	}()
	Train(Config{Algo: "adamw", Gamma: 0.1}, prob)
}

func TestMissingDataPanics(t *testing.T) {
	prob := tinyProblem(20, 10, 15)
	prob.Train = nil
	defer func() {
		if recover() == nil {
			t.Fatal("nil training data did not panic")
		}
	}()
	Train(Config{Algo: AlgoSGD, Gamma: 0.1}, prob)
}

func TestZeroGammaPanics(t *testing.T) {
	prob := tinyProblem(20, 10, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("zero learning rate did not panic")
		}
	}()
	Train(Config{Algo: AlgoSGD}, prob)
}

func TestEAMSGDMomentumDisable(t *testing.T) {
	prob := tinyProblem(200, 60, 17)
	// Momentum < 0 disables momentum; the run must still learn.
	res := Train(Config{Algo: AlgoEAMSGD, Learners: 2, Interval: 2, Gamma: 0.1, Batch: 10, Epochs: 10, Seed: 1, Momentum: -1}, prob)
	if res.FinalTest < 0.8 {
		t.Errorf("momentum-free EAMSGD test accuracy %.3f", res.FinalTest)
	}
}

func TestLearnerPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("learner panic was swallowed")
		}
	}()
	runLearners(3, func(rank int) {
		if rank == 1 {
			panic("boom")
		}
	})
}

// TestSASGDInterval1EqualsSynchronousSGD: with p=1 and T=1, SASGD reduces
// to plain SGD up to the γp application: local step −γg then reference
// update −γp·g from the same point... the composition is −(γ+... — the
// final parameters must match an SGD run with learning rate γp, because
// the local −γ·g step is discarded at each aggregation (x ← x′).
func TestSASGDInterval1SingleLearnerMatchesSGDAtGammaP(t *testing.T) {
	prob := tinyProblem(100, 40, 18)
	gammaP := 0.07
	sasgd := Train(Config{Algo: AlgoSASGD, Learners: 1, Interval: 1, Gamma: 0.1, GammaP: gammaP, Batch: 10, Epochs: 3, Seed: 2}, prob)
	// An SGD run whose per-batch step is −γp·g over the same sample
	// stream. SGD's sampler seed differs from learner 0's, so replay
	// manually instead of calling Train.
	net := prob.Model(2)
	sampler := data.NewEpochSampler(prob.Train.Len(), 10, 2*31*0+2+0*31+7) // matches learner 0's seed formula: cfg.Seed + rank*31 + 7 = 2+7
	_ = sampler
	replay := prob.Model(2)
	s2 := data.NewEpochSampler(prob.Train.Len(), 10, 9)
	bpe := s2.BatchesPerEpoch()
	for e := 0; e < 3; e++ {
		for b := 0; b < bpe; b++ {
			idx := s2.Next()
			x, y := prob.Train.Batch(idx)
			replay.Step(x, y)
			tensor.Axpy(-gammaP, replay.GradData(), replay.ParamData())
		}
	}
	_ = net
	for i := range sasgd.FinalParams {
		if math.Abs(sasgd.FinalParams[i]-replay.ParamData()[i]) > 1e-9 {
			t.Fatalf("SASGD(p=1,T=1) != SGD at γp: index %d, %g vs %g", i, sasgd.FinalParams[i], replay.ParamData()[i])
		}
	}
}

func TestSASGDCompressionStillLearns(t *testing.T) {
	prob := tinyProblem(300, 100, 20)
	res := Train(Config{
		Algo: AlgoSASGD, Learners: 4, Interval: 3, Gamma: 0.1,
		Batch: 10, Epochs: 15, Seed: 1, CompressTopK: 0.1,
	}, prob)
	if res.FinalTest < 0.85 {
		t.Errorf("top-10%% compressed SASGD test accuracy %.3f, want > 0.85", res.FinalTest)
	}
}

func TestSASGDCompressionReducesTraffic(t *testing.T) {
	prob := tinyProblem(160, 40, 21)
	base := Config{Algo: AlgoSASGD, Learners: 4, Interval: 2, Gamma: 0.1, Batch: 10, Epochs: 4, Seed: 1}
	dense := Train(base, prob)
	compressed := base
	compressed.CompressTopK = 0.05
	sparse := Train(compressed, prob)
	// Sparse messages carry index+value pairs, so at 5% density traffic
	// should drop by well over 2×. (The initial dense broadcast is common
	// to both.)
	if sparse.WordsMoved*2 >= dense.WordsMoved {
		t.Errorf("compressed run moved %d words vs dense %d", sparse.WordsMoved, dense.WordsMoved)
	}
}

func TestSASGDCompressionDeterministic(t *testing.T) {
	prob := tinyProblem(120, 40, 22)
	cfg := Config{Algo: AlgoSASGD, Learners: 4, Interval: 2, Gamma: 0.1, Batch: 10, Epochs: 3, Seed: 9, CompressTopK: 0.2}
	a := Train(cfg, prob)
	b := Train(cfg, prob)
	for i := range a.FinalParams {
		if a.FinalParams[i] != b.FinalParams[i] {
			t.Fatal("compressed SASGD not deterministic")
		}
	}
}

func TestSASGDErrorFeedbackPreservesGradientMass(t *testing.T) {
	// With T covering the whole (tiny) run and k = 100%, compression is a
	// no-op: results must match the dense path bit-for-bit modulo
	// summation order. Use a single learner so the allreduce is trivial
	// and the comparison exact.
	prob := tinyProblem(40, 20, 23)
	base := Config{Algo: AlgoSASGD, Learners: 1, Interval: 2, Gamma: 0.1, Batch: 10, Epochs: 2, Seed: 4}
	dense := Train(base, prob)
	c := base
	c.CompressTopK = 0.999999 // k = ⌈0.999999·n⌉ = n: keeps every entry
	full := Train(c, prob)
	// SparsityK rounds up, so a near-1 fraction keeps every entry of
	// every bucket; with p = 1 the codec's select→encode→decode round
	// trip is exact and the trajectories must match bitwise.
	for i := range dense.FinalParams {
		if dense.FinalParams[i] != full.FinalParams[i] {
			t.Fatalf("near-lossless compression diverged at %d: %g vs %g",
				i, dense.FinalParams[i], full.FinalParams[i])
		}
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{
		Algo: AlgoSASGD, P: 4, T: 50,
		SimTime: 10,
		Curve:   metrics.Curve{{Epoch: 2}, {Epoch: 5}},
	}
	if got := r.EpochTime(); got != 2 {
		t.Errorf("EpochTime = %g, want 2", got)
	}
	if s := r.String(); s == "" {
		t.Error("empty String")
	}
	if (&Result{}).EpochTime() != 0 {
		t.Error("EpochTime of empty result not zero")
	}
}

func TestEvaluatorAccuracy(t *testing.T) {
	prob := tinyProblem(50, 30, 30)
	e := newEvaluator(prob, prob.Test)
	net := prob.Model(1)
	acc := e.accuracy(net.ParamData())
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %g out of range", acc)
	}
	// Accuracy must be a deterministic function of the parameters.
	if acc2 := e.accuracy(net.ParamData()); acc2 != acc {
		t.Error("evaluator not deterministic")
	}
}

func TestHogwildLearns(t *testing.T) {
	prob := tinyProblem(300, 100, 31)
	res := Train(Config{Algo: AlgoHogwild, Learners: 4, Gamma: 0.1, Batch: 10, Epochs: 15, Seed: 1}, prob)
	if res.FinalTest < 0.85 {
		t.Errorf("Hogwild test accuracy %.3f, want > 0.85", res.FinalTest)
	}
	if res.FinalParams == nil {
		t.Error("FinalParams not captured")
	}
}

func TestHogwildSingleLearnerMatchesSGDShape(t *testing.T) {
	// With one learner there are no races: Hogwild is plain SGD over the
	// same sample stream and must reach comparable accuracy.
	prob := tinyProblem(200, 80, 32)
	hog := Train(Config{Algo: AlgoHogwild, Learners: 1, Gamma: 0.1, Batch: 10, Epochs: 10, Seed: 1}, prob)
	sgd := Train(Config{Algo: AlgoSGD, Gamma: 0.1, Batch: 10, Epochs: 10, Seed: 1}, prob)
	if diff := hog.FinalTest - sgd.FinalTest; diff < -0.1 || diff > 0.1 {
		t.Errorf("Hogwild p=1 (%.3f) far from SGD (%.3f)", hog.FinalTest, sgd.FinalTest)
	}
}

func TestPaperScaleModelsTrainUnderHarness(t *testing.T) {
	// One SASGD epoch over a tiny sample set with the exact Table-I and
	// Table-II networks: verifies the full-scale architectures run under
	// the distributed harness (the figure suite uses reduced models).
	if testing.Short() {
		t.Skip("paper-scale step: skipped in -short")
	}
	imgCfg := data.SmallImageConfig()
	imgCfg.TrainN, imgCfg.TestN, imgCfg.Size = 16, 8, 32
	train, test := data.GenImages(imgCfg)
	prob := &Problem{
		Name: "paper-cifar",
		Model: func(seed int64) *nn.Network {
			return model.NewCIFARNet(rand.New(rand.NewSource(seed)), model.PaperCIFARConfig())
		},
		Train: train, Test: test,
	}
	res := Train(Config{Algo: AlgoSASGD, Learners: 2, Interval: 2, Gamma: 0.01, Batch: 4, Epochs: 1, Seed: 1}, prob)
	if res.Samples != 16 {
		t.Errorf("processed %d samples", res.Samples)
	}
	if len(res.FinalParams) != 506378 {
		t.Errorf("paper model has %d params", len(res.FinalParams))
	}

	txtCfg := data.SmallTextConfig()
	txtCfg.TrainN, txtCfg.TestN, txtCfg.EmbedDim, txtCfg.Classes = 16, 8, 100, 311
	ttrain, ttest := data.GenText(txtCfg)
	tprob := &Problem{
		Name: "paper-nlcf",
		Model: func(seed int64) *nn.Network {
			return model.NewNLCFNet(rand.New(rand.NewSource(seed)), model.PaperNLCFConfig())
		},
		Train: ttrain, Test: ttest,
	}
	tres := Train(Config{Algo: AlgoSASGD, Learners: 2, Interval: 4, Gamma: 0.01, Batch: 1, Epochs: 1, Seed: 1}, tprob)
	if len(tres.FinalParams) != 1733511 {
		t.Errorf("paper NLC-F model has %d params", len(tres.FinalParams))
	}
}

func TestVirtualTimeMakesDownpourDeterministic(t *testing.T) {
	prob := tinyProblem(160, 40, 40)
	cfg := Config{Algo: AlgoDownpour, Learners: 4, Interval: 1, Gamma: 0.05, Batch: 5, Epochs: 3, Seed: 2, VirtualTime: true}
	a := Train(cfg, prob)
	b := Train(cfg, prob)
	for i := range a.FinalParams {
		if a.FinalParams[i] != b.FinalParams[i] {
			t.Fatal("virtual-time Downpour not deterministic")
		}
	}
	if a.StalenessMean != b.StalenessMean || a.StalenessMax != b.StalenessMax {
		t.Errorf("staleness not deterministic: %.3f/%d vs %.3f/%d",
			a.StalenessMean, a.StalenessMax, b.StalenessMean, b.StalenessMax)
	}
}

func TestVirtualTimeStalenessEmergesRoundRobin(t *testing.T) {
	// With equal step-counter clocks the gate runs learners round-robin:
	// at T=1 every push observes the other p−1 learners' updates.
	prob := tinyProblem(160, 40, 41)
	p := 4
	res := Train(Config{Algo: AlgoDownpour, Learners: p, Interval: 1, Gamma: 0.05, Batch: 5, Epochs: 3, Seed: 2, VirtualTime: true}, prob)
	if res.StalenessMax == 0 {
		t.Fatal("virtual-time Downpour observed no staleness")
	}
	// Round-robin steady state: staleness ≈ p−1 (the first few steps see
	// less; the mean must land between 1 and p−1).
	if res.StalenessMean < 1 || res.StalenessMean > float64(p-1)+0.01 {
		t.Errorf("virtual-time staleness mean %.3f, want within [1, %d]", res.StalenessMean, p-1)
	}
}

func TestVirtualTimeAllAsyncAlgorithmsLearn(t *testing.T) {
	prob := tinyProblem(300, 100, 42)
	for _, algo := range []Algorithm{AlgoDownpour, AlgoEAMSGD, AlgoHogwild} {
		res := Train(Config{Algo: algo, Learners: 4, Interval: 3, Gamma: 0.1, Batch: 10, Epochs: 15, Seed: 1, VirtualTime: true}, prob)
		if res.FinalTest < 0.85 {
			t.Errorf("%s under virtual time: final test %.3f", algo, res.FinalTest)
		}
	}
}

func TestVirtualGateOrdersByClock(t *testing.T) {
	g := newVirtualGate(3)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	// Learner r performs 3 steps, each advancing its clock by (r+1): the
	// gate must always admit the minimum-clock learner, giving a fully
	// determined admission order.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			clock := 0.0
			for s := 0; s < 3; s++ {
				g.Acquire(r)
				mu.Lock()
				order = append(order, r)
				mu.Unlock()
				clock += float64(r + 1)
				g.Release(r, clock)
			}
			g.Done(r)
		}(r)
	}
	wg.Wait()
	// Replay the expected min-clock schedule.
	clocks := []float64{0, 0, 0}
	steps := []int{0, 0, 0}
	var want []int
	for len(want) < 9 {
		best := -1
		for r := 0; r < 3; r++ {
			if steps[r] >= 3 {
				continue
			}
			if best == -1 || clocks[r] < clocks[best] || (clocks[r] == clocks[best] && r < best) {
				best = r
			}
		}
		want = append(want, best)
		clocks[best] += float64(best + 1)
		steps[best]++
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want %v", order, want)
		}
	}
}

func TestVirtualGateMisusePanics(t *testing.T) {
	g := newVirtualGate(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Release by non-holder did not panic")
		}
	}()
	g.Release(0, 1)
}
