package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sasgd/internal/comm"
	"sasgd/internal/data"
	"sasgd/internal/parallel"
	"sasgd/internal/tensor"
)

// Train runs one training experiment and returns its result. It
// dispatches on cfg.Algo; every algorithm shares the same data
// partitioning, per-learner replicas, epoch accounting, and (optional)
// fabric simulation.
func Train(cfg Config, prob *Problem) *Result {
	cfg = cfg.withDefaults()
	if prob.Train == nil || prob.Test == nil || prob.Train.Len() == 0 {
		panic("core: Train needs non-empty train and test datasets")
	}
	// Make the metrics registry reachable from the tracer's live debug
	// endpoint (/debug/metrics and the /debug/obs snapshot). Both sides
	// are nil-safe, so this is a no-op unless both are attached.
	cfg.Tracer.SetMetrics(cfg.Metrics)
	// Divide the intra-op worker budget across the p learner goroutines
	// for the duration of the run, so p learners × w kernel workers never
	// oversubscribe the machine. Restored on exit because callers (tests,
	// benchmark sweeps) may have set an explicit budget.
	defer parallel.SetWorkers(parallel.SetWorkers(workersPerLearner(cfg)))
	// Select the kernel flavour for the run, restoring the previous
	// setting on exit for the same reason as the worker budget.
	defer tensor.SetFastKernels(tensor.SetFastKernels(cfg.FastKernels))
	start := time.Now()
	var res *Result
	switch cfg.Algo {
	case AlgoSGD:
		res = trainSGD(cfg, prob)
	case AlgoSASGD:
		// Fault injection, crash tolerance and checkpoint-restart live on
		// their own path: same algorithm, membership-aware sync points.
		if cfg.Faults != nil || cfg.ResumeFrom != "" || cfg.CheckpointPath != "" {
			res = trainSASGDResilient(cfg, prob)
		} else if cfg.schedActive() {
			// Any communication-schedule policy (adaptive T, hierarchy,
			// delayed application) routes through the scheduled loop.
			res = trainSASGDScheduled(cfg, prob)
		} else {
			res = trainSASGD(cfg, prob)
		}
	case AlgoDownpour:
		res = trainDownpour(cfg, prob)
	case AlgoEAMSGD:
		res = trainEAMSGD(cfg, prob)
	case AlgoHogwild:
		res = trainHogwild(cfg, prob)
	default:
		panic(fmt.Sprintf("core: unknown algorithm %q", cfg.Algo))
	}
	res.Wall = time.Since(start)
	if res.LiveP == 0 {
		res.LiveP = res.P
	}
	if len(res.Curve) > 0 {
		last := res.Curve[len(res.Curve)-1]
		res.FinalTrain, res.FinalTest = last.Train, last.Test
	}
	return res
}

// workersPerLearner resolves cfg.Workers: an explicit value wins;
// otherwise the current process-wide budget is split evenly across the
// learners this process actually hosts, never below 1.
func workersPerLearner(cfg Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	n := cfg.Learners
	if len(cfg.LocalRanks) > 0 {
		n = len(cfg.LocalRanks)
	}
	w := parallel.Workers() / n
	if w < 1 {
		w = 1
	}
	return w
}

// newTrainGroup builds the comm group for a SASGD-family run: over the
// caller's wire transport when one is configured, else the in-process
// fabric (simulated when cfg.Sim is attached). The simulator's clocks
// require an all-local transport; comm.NewTransportGroup enforces that.
func newTrainGroup(cfg Config, p int) *comm.Group {
	var clocks []comm.Clock
	var cost comm.CostModel
	if cfg.Sim != nil {
		clocks, cost = cfg.Sim.Clocks(), cfg.Sim.CostModel()
	}
	if cfg.Transport != nil {
		return comm.NewTransportGroup(cfg.Transport, nil, clocks, cost)
	}
	return comm.NewSimGroup(p, clocks, cost)
}

// localRanks returns the learner ranks this process drives: LocalRanks
// when a multi-process run set it, else all p of them.
func (c Config) localRanks(p int) []int {
	if len(c.LocalRanks) > 0 {
		return c.LocalRanks
	}
	all := make([]int, p)
	for i := range all {
		all[i] = i
	}
	return all
}

// runLearners starts p learner goroutines and waits for all of them.
func runLearners(p int, fn func(rank int)) {
	all := make([]int, p)
	for i := range all {
		all[i] = i
	}
	runLearnersOn(all, fn)
}

// runLearnersOn starts one learner goroutine per rank in ranks and
// waits for all of them. A panic in any learner is rethrown on the
// caller's goroutine with the learner's rank attached.
func runLearnersOn(ranks []int, fn func(rank int)) {
	var wg sync.WaitGroup
	panics := make(chan interface{}, len(ranks))
	for _, rank := range ranks {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- fmt.Sprintf("learner %d: %v", rank, r)
				}
			}()
			fn(rank)
		}(rank)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// batchesPerEpoch returns the uniform per-learner batch count per
// collective epoch: every learner executes the same number of minibatches
// so bulk-synchronous collectives stay aligned even when the data does
// not split evenly.
func batchesPerEpoch(shards []*data.Dataset, batch int) int {
	maxLen := 0
	for _, s := range shards {
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	return (maxLen + batch - 1) / batch
}

// simSplits averages the per-learner compute/communication seconds.
func (c Config) simSplits() (simTime, compute, communication float64) {
	if c.Sim == nil {
		return 0, 0, 0
	}
	p := c.Learners
	for rank := 0; rank < p; rank++ {
		cp, cm := c.Sim.Clock(rank).Split()
		compute += cp
		communication += cm
	}
	return c.Sim.MaxTime(), compute / float64(p), communication / float64(p)
}

// stalenessStats accumulates staleness observations from asynchronous
// learners.
type stalenessStats struct {
	count int64
	sum   int64
	max   int64
}

func (s *stalenessStats) observe(v int64) {
	atomic.AddInt64(&s.count, 1)
	atomic.AddInt64(&s.sum, v)
	for {
		cur := atomic.LoadInt64(&s.max)
		if v <= cur || atomic.CompareAndSwapInt64(&s.max, cur, v) {
			return
		}
	}
}

func (s *stalenessStats) mean() float64 {
	n := atomic.LoadInt64(&s.count)
	if n == 0 {
		return 0
	}
	return float64(atomic.LoadInt64(&s.sum)) / float64(n)
}
