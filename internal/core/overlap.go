package core

import (
	"sasgd/internal/comm"
	"sasgd/internal/model"
	"sasgd/internal/nn"
	"sasgd/internal/obs"
	"sasgd/internal/tensor"
)

// Backward-overlapped aggregation (Config.OverlapComm). The serial SASGD
// loop pays the full O(m log p) allreduce after the T-th backward pass
// has completely finished; but backprop finalizes layer gradients in
// reverse order, so the tail of the flat gradient buffer is final while
// the early convolutions are still running. This file hooks
// nn.StepEach's per-layer callback to accumulate each finalized bucket
// into gs and hand it to comm.BucketedAllreduce immediately, then waits
// on every handle before applying γp. Values are bitwise identical to
// the serial path for the tree family: bucket boundaries are fixed layer
// boundaries, per-bucket accumulation is the same elementwise gs += g,
// and the bucketed tree replays the monolithic tree's per-element
// summation order (pinned in comm and again at core level in
// overlap_test.go). Under the fabric simulation each bucket's send is
// stamped with its layers' backward-completion time — start +
// dt·fraction from model.BackwardDoneFractions — which is what makes the
// overlap show up in simulated epoch time.

// overlapActive reports whether a SASGD run launches buckets from
// inside the backward pass: opted in, and a collective the bucketed
// worker implements — the tree family for dense aggregation, or any
// compression codec (codecs bring their own per-bucket collective, so
// only the dense ring still falls back to the serial schedule). Note
// that compression uses the bucketed engine even when this is false;
// OverlapComm only decides whether buckets launch as backprop finalizes
// them or all at once at the boundary.
func (c Config) overlapActive() bool {
	if !c.OverlapComm {
		return false
	}
	return c.compressionActive() || c.Allreduce != AllreduceRing
}

// overlapAggregator is one learner's bucketed-aggregation state,
// long-lived across the run (the comm worker and handle storage are
// reused every interval).
type overlapAggregator struct {
	b    *comm.BucketedAllreduce
	segs []comm.Segment
	// bucketAt[layer] is the bucket whose gradients become final when
	// that layer's backward completes (the bucket's earliest layer), or
	// -1. Backward visits layers in reverse, so buckets launch in
	// descending index order — identically on every rank.
	bucketAt []int
	// fracs[layer] is the fraction of the batch's simulated duration
	// elapsed when that layer's backward completes; nil without a
	// simulation.
	fracs     []float64
	handles   []comm.Handle
	gs, grads []float64
	chunk     int
	rhd       bool
	// start/dt is the current aggregation batch's simulated span, set by
	// the training loop from Sim.BatchSpan before the step runs.
	start, dt float64
	// Compression-engine state (Config.Compress): comp is the learner's
	// codec and res its error-feedback residual; both nil for dense
	// runs. ratio is the working top-k fraction — k0 until CompressAdapt
	// moves it — updated in lockstep on every learner by adaptK.
	comp     comm.Compressor
	res      []float64
	ratio    float64
	k0       float64
	adaptOn  bool
	adaptBuf [2]float64
	// overlap records whether buckets launch from inside backward
	// (overlapActive) or all at once at the boundary via launchAll (the
	// compressed serial schedule — same engine, same values).
	overlap bool
	// tk is the learner's trace track: each bucket's accumulate+submit is
	// recorded as a bucket_begin span, which nests inside the backward
	// span on the exported timeline. Nil when untraced.
	tk *obs.Track
}

// newOverlapAggregator builds the learner's bucket plan and starts its
// comm worker. Returns nil for a network with no parameters (the serial
// path handles the degenerate case).
func newOverlapAggregator(group *comm.Group, rank int, cfg Config, net *nn.Network, gs []float64, tk *obs.Track) *overlapAggregator {
	psegs := net.ParamSegments()
	if len(psegs) == 0 {
		return nil
	}
	segs, minLayer := planBuckets(psegs, cfg.CommBuckets)
	ov := &overlapAggregator{
		segs:     segs,
		bucketAt: make([]int, len(net.Layers())),
		handles:  make([]comm.Handle, len(segs)),
		gs:       gs,
		grads:    net.GradData(),
		chunk:    cfg.CommChunk,
		rhd:      cfg.Allreduce == AllreduceRHD,
		tk:       tk,
		overlap:  cfg.overlapActive(),
	}
	if cfg.compressionActive() {
		ov.comp = cfg.newCompressor()
		ov.res = make([]float64, len(gs))
		ov.ratio = cfg.CompressK
		ov.k0 = cfg.CompressK
		ov.adaptOn = cfg.adaptActive()
	}
	for i := range ov.bucketAt {
		ov.bucketAt[i] = -1
	}
	for b, l := range minLayer {
		ov.bucketAt[l] = b
	}
	if cfg.Allreduce != AllreducePTree {
		// The monolithic tree is the chunked tree with one chunk per
		// bucket (bitwise identical either way; this matches its
		// unchunked wire schedule).
		for _, s := range segs {
			if s.Len > ov.chunk {
				ov.chunk = s.Len
			}
		}
	}
	ov.b = comm.NewBucketedAllreduce(group, rank, segs, 0)
	ov.fracs = nil
	if cfg.Sim != nil {
		ov.fracs = model.BackwardDoneFractions(net)
	}
	return ov
}

// onLayerDone is the nn.BackwardEach hook for the T-th minibatch: when
// layer's completion finalizes a bucket, fold its gradient segment into
// gs (elementwise, so gs ends bitwise equal to the serial whole-vector
// accumulation) and launch its allreduce, stamped with the layer's
// backward-completion time.
func (ov *overlapAggregator) onLayerDone(layer int) {
	bi := ov.bucketAt[layer]
	if bi < 0 {
		return
	}
	bs := ov.tk.Begin()
	s := ov.segs[bi]
	tensor.Axpy(1, ov.grads[s.Off:s.Off+s.Len], ov.gs[s.Off:s.Off+s.Len])
	ready := 0.0
	if ov.fracs != nil {
		ready = ov.start + ov.dt*ov.fracs[layer]
	}
	switch {
	case ov.comp != nil:
		ov.handles[bi] = ov.b.BeginCompressed(bi, ov.gs, ov.res, ov.comp, ov.ratio, ready)
	case ov.rhd:
		ov.handles[bi] = ov.b.BeginRHD(bi, ov.gs, ready)
	default:
		ov.handles[bi] = ov.b.Begin(bi, ov.gs, ov.chunk, ready)
	}
	ov.tk.EndArg(obs.PhaseBucketBegin, int32(bi), bs)
}

// launchAll submits every bucket at once, in descending index order —
// the same global order the backward hooks produce — for the
// compressed serial schedule (OverlapComm off). gs must already hold
// the interval's fully accumulated gradient; ready is the learner's
// current simulated time.
func (ov *overlapAggregator) launchAll(ready float64) {
	for bi := len(ov.segs) - 1; bi >= 0; bi-- {
		ov.handles[bi] = ov.b.BeginCompressed(bi, ov.gs, ov.res, ov.comp, ov.ratio, ready)
	}
}

// adaptK runs one adaptive-sparsity controller step after an
// aggregation has been applied: allreduce the codec's capture stats so
// every learner computes the identical next working fraction. No-op
// unless CompressAdapt is on for a top-k run.
func (ov *overlapAggregator) adaptK(group *comm.Group, rank int) {
	if !ov.adaptOn {
		return
	}
	ov.adaptBuf[0], ov.adaptBuf[1] = ov.comp.TakeCapture()
	group.AllreduceTree(rank, ov.adaptBuf[:])
	ov.ratio = nextRatio(ov.ratio, ov.k0, ov.adaptBuf[0], ov.adaptBuf[1])
}

// wait blocks until every bucket launched this interval has completed;
// gs then holds the global sum on every rank.
func (ov *overlapAggregator) wait() {
	for i := range ov.handles {
		ov.handles[i].Wait()
	}
}

// close shuts down the comm worker at the end of the run.
func (ov *overlapAggregator) close() {
	ov.b.Close()
}

// planBuckets groups the network's per-layer segments into at most n
// contiguous, word-balanced buckets (n ≤ 0 or n ≥ len(psegs) selects one
// bucket per parameterized layer). It returns the comm segments plus each
// bucket's earliest layer — the last of its layers to finalize during
// backward, which gates the bucket's launch. The plan is a pure function
// of the model and n, so every rank computes identical buckets.
func planBuckets(psegs []nn.ParamSegment, n int) (segs []comm.Segment, minLayer []int) {
	if n <= 0 || n > len(psegs) {
		n = len(psegs)
	}
	total := 0
	for _, s := range psegs {
		total += s.Len
	}
	si := 0
	for b := 0; b < n; b++ {
		first := psegs[si]
		off, words := first.Off, first.Len
		si++
		// Grow the bucket toward the cumulative word target, keeping at
		// least one segment for each remaining bucket.
		target := (total*(b+1) + n - 1) / n
		for si < len(psegs) && len(psegs)-si > n-b-1 && off+words < target {
			words += psegs[si].Len
			si++
		}
		segs = append(segs, comm.Segment{Off: off, Len: words})
		minLayer = append(minLayer, first.Layer)
	}
	return segs, minLayer
}
