package core

import (
	"math"

	"sasgd/internal/comm"
)

// The T-scheduler: a per-learner state machine deciding how many local
// steps separate communication boundaries. All learners run identical
// scheduler state — the static and decay modes are pure functions of
// the boundary count, and the adaptive mode bases every decision on
// allreduced (hence globally identical) quantities — so the schedule
// never needs to be negotiated and runs stay deterministic, mirroring
// the PR-7 adaptive-k controller.
//
// Adaptive mode measures the replica-drift norm the ROADMAP calls for:
// at a boundary, after the reference has absorbed the global aggregate
// but before the replicas reset to it, x̄ = ref exactly (with γp = γ/p
// the aggregation step IS model averaging), so d_i = ‖x_i − x̄‖² is
// computable locally. The learners allreduce [Σd_i, Σ‖ref‖²] — two
// words piggybacked on the boundary — and form the relative RMS drift
//
//	rel = sqrt(Σd_i / p) / (1 + sqrt(Σ‖ref‖² / p))
//
// (the reference norm enters as an RMS across ranks because under the
// hierarchical schedule each island's working reference differs; the
// RMS is globally identical where a local norm would not be). Low
// drift means the replicas agree and communication is wasted — widen
// T; high drift means the replicas are separating — narrow it.
const (
	// tDecayEvery is the decay mode's doubling period: T_b = min(T0,
	// 2^⌊b/tDecayEvery⌋) after b boundaries, starting communication-heavy
	// as in Stich's Local SGD analysis.
	tDecayEvery = 2
	// driftLow/driftHigh bound the adaptive controller's dead band on
	// the relative RMS drift; outside it T doubles or halves.
	driftLow  = 0.02
	driftHigh = 0.10
	// tAdaptSpan clamps adaptive T to [max(1, T0/span), T0·span].
	tAdaptSpan = 8
)

// tScheduler owns one learner's communication-period state. Not
// concurrency-safe; each learner holds its own and they stay in
// lockstep by construction.
type tScheduler struct {
	mode  string // TSchedStatic/TSchedDecay/TSchedAdaptive ("" = static)
	t     int    // current period in local steps
	t0    int    // configured Interval: decay's cap, adaptive's start
	bound int    // boundaries completed
	buf   [2]float64
}

func newTScheduler(cfg Config) *tScheduler {
	s := &tScheduler{mode: cfg.TSched, t: cfg.Interval, t0: cfg.Interval}
	if s.mode == TSchedDecay {
		s.t = 1
	}
	return s
}

// decayT is the decay schedule as a pure function of the boundary
// count: 1 for the first tDecayEvery boundaries, doubling every
// tDecayEvery after that, capped at t0.
func decayT(bound, t0 int) int {
	t := 1
	for i := 0; i < bound/tDecayEvery && t < t0; i++ {
		t <<= 1
	}
	if t > t0 {
		t = t0
	}
	return t
}

// restore rewinds the scheduler to a checkpointed position: boundaries
// completed and the period then in effect. Decay recomputes from the
// boundary count alone; adaptive takes the checkpointed period (curT 0
// — a checkpoint from before the scheduler existed — keeps the start
// period).
func (s *tScheduler) restore(boundaries, curT int) {
	s.bound = boundaries
	switch s.mode {
	case TSchedDecay:
		s.t = decayT(s.bound, s.t0)
	case TSchedAdaptive:
		if curT > 0 {
			s.t = curT
		}
	}
}

// T returns the current communication period (local steps until the
// next boundary).
func (s *tScheduler) T() int { return s.t }

// advance runs one controller step at a communication boundary. params
// is the local replica BEFORE its reset, ref the reference it is about
// to reset to (the island working reference under a hierarchical
// schedule, the global reference otherwise), and p the live learner
// count. Static and decay modes touch no wire; adaptive mode allreduces
// its two-word drift statistic over group — a learner-driven collective
// every rank must reach in the same order relative to the boundary's
// other collectives.
func (s *tScheduler) advance(group *comm.Group, rank, p int, params, ref []float64) {
	s.bound++
	switch s.mode {
	case TSchedDecay:
		s.t = decayT(s.bound, s.t0)
	case TSchedAdaptive:
		d, r := 0.0, 0.0
		for i, v := range params {
			dv := v - ref[i]
			d += dv * dv
			r += ref[i] * ref[i]
		}
		s.buf[0], s.buf[1] = d, r
		group.AllreduceTree(rank, s.buf[:])
		fp := float64(p)
		rel := math.Sqrt(s.buf[0]/fp) / (1 + math.Sqrt(s.buf[1]/fp))
		lo := s.t0 / tAdaptSpan
		if lo < 1 {
			lo = 1
		}
		hi := s.t0 * tAdaptSpan
		switch {
		case rel < driftLow && s.t*2 <= hi:
			s.t *= 2
		case rel > driftHigh && s.t/2 >= lo:
			s.t /= 2
		}
	}
}
