package core

import (
	"strconv"

	"sasgd/internal/comm"
	"sasgd/internal/netsim"
	"sasgd/internal/nn"
	obsmetrics "sasgd/internal/obs/metrics"
)

// Fleet-health collection for the SASGD trainers. Each learner owns one
// fleetCollector; at every aggregation boundary it encodes its slot of a
// fixed-size health frame — drift, effective T, phase timings, the
// simulated compute/communication split, compression capture — and the
// group sums the frames with one extra tree allreduce (disjoint slots,
// so the sum IS the concatenation; see metrics/frame.go). Whichever rank
// is virtual rank 0 of the current group then holds every live rank's
// frame and ingests the fleet view: gauges, the drift time series, the
// NDJSON event log, the straggler detector, and the comm-layer traffic
// and fault gauges sampled through the group's alloc-free accessors.
//
// The frame rides its own buffer and never touches gradient state, so
// enabling metrics cannot change training values (pinned bitwise in
// metrics_test.go). It does add traffic — exactly FrameTrafficWords(p)
// words per fault-free boundary, also pinned — and on a simulated fabric
// that traffic is charged to the clocks like any other collective, so
// simulated times shift while results do not.
//
// A nil collector (metrics off) makes every method a nil-check no-op,
// the same contract as the obs tracer's disabled path.
type fleetCollector struct {
	reg   *obsmetrics.Registry
	fleet *obsmetrics.Fleet
	sim   *netsim.Sim
	rank  int // run-physical rank: this collector's frame slot
	p     int // run-physical rank count: the frame's slot count

	buf []float64 // FrameBuf(p), reused every boundary

	// Per-phase latency histograms, attached to the learner's network;
	// their summed ns double as the frame's compute signal on real-time
	// runs (the simulated split is the signal when a fabric is attached).
	hFwd, hBwd *obsmetrics.Histogram

	boundary    int
	driftSq     float64 // captured at boundaryStart, shipped at boundaryEnd
	lastWallNs  int64
	lastStepNs  float64 // hFwd+hBwd sum at the previous boundary
	lastSimComp float64
	lastSimComm float64
	lastFaults  int64
}

// newFleetCollector builds rank's collector, or nil when the run has no
// metrics registry. fleet is the shared fleet view (built once per run,
// before the learners start).
func newFleetCollector(cfg Config, rank, p int, fleet *obsmetrics.Fleet) *fleetCollector {
	if cfg.Metrics == nil {
		return nil
	}
	return &fleetCollector{
		reg:        cfg.Metrics,
		fleet:      fleet,
		sim:        cfg.Sim,
		rank:       rank,
		p:          p,
		buf:        obsmetrics.FrameBuf(p),
		lastWallNs: cfg.Metrics.Now(),
	}
}

// attach registers the learner's per-rank phase histograms and wires
// them into the network's step hooks.
func (c *fleetCollector) attach(net *nn.Network) {
	if c == nil {
		return
	}
	r := strconv.Itoa(c.rank)
	c.hFwd = c.reg.Histogram("sasgd_forward_ns", nil, "rank", r)
	c.hBwd = c.reg.Histogram("sasgd_backward_ns", nil, "rank", r)
	net.SetMetrics(c.hFwd, c.hBwd)
}

// boundaryStart captures the interval's replica drift ‖x − ref‖². Called
// at boundary entry, BEFORE any of the boundary's collectives: ref (the
// global reference x′, or the island working reference w under a
// hierarchy) still holds the value params was reset to at the previous
// boundary, so the difference is exactly the drift the interval's local
// steps accumulated. Pure reads — the training state is untouched.
func (c *fleetCollector) boundaryStart(params, ref []float64) {
	if c == nil {
		return
	}
	var d float64
	for i, v := range params {
		dv := v - ref[i]
		d += dv * dv
	}
	c.driftSq = d
}

// boundaryEnd encodes the rank's health frame, sums frames across the
// group (one tree allreduce on the frame buffer — the only collective
// metrics adds), and, on the group's virtual rank 0, ingests the fleet
// view and samples the comm-layer gauges. Call it where a learner-driven
// collective is legal for the current path: after the boundary's own
// exchanges, and on the delayed paths BEFORE the next launch goes into
// flight (the worker and the learner must not share mailboxes).
//
// g and grank are the CURRENT group and the rank's virtual rank in it —
// under fault handling the membership view's survivor group, so dead
// ranks simply stop contributing and their frame slots stay zero.
func (c *fleetCollector) boundaryEnd(g *comm.Group, grank, t int, ratio, sent2, resid2 float64) {
	if c == nil {
		return
	}
	now := c.reg.Now()
	wallNs := float64(now - c.lastWallNs)
	c.lastWallNs = now
	stepNs := c.hFwd.Sum() + c.hBwd.Sum()
	computeNs := stepNs - c.lastStepNs
	c.lastStepNs = stepNs
	var dComp, dComm float64
	if c.sim != nil {
		sc, sm := c.sim.Clock(c.rank).Split()
		dComp, dComm = sc-c.lastSimComp, sm-c.lastSimComm
		c.lastSimComp, c.lastSimComm = sc, sm
	}
	clear(c.buf)
	obsmetrics.Frame{
		Rank:       c.rank,
		Live:       true,
		Boundary:   c.boundary,
		T:          t,
		DriftSq:    c.driftSq,
		ComputeNs:  computeNs,
		WallNs:     wallNs,
		SimCompute: dComp,
		SimComm:    dComm,
		Ratio:      ratio,
		Sent2:      sent2,
		Resid2:     resid2,
	}.Encode(c.buf)
	g.AllreduceTree(grank, c.buf)
	c.boundary++
	if grank != 0 {
		return
	}
	c.fleet.Ingest(now, c.buf)
	c.sampleComm(g, now)
}

// sampleComm publishes the group's traffic and fault counters into
// gauges and emits a fault event when the fault counters moved since the
// previous boundary. Registry lookups here are boundary-rate, not
// hot-path, so going through the interning front door is fine.
func (c *fleetCollector) sampleComm(g *comm.Group, now int64) {
	words, cross, hintra, hinter := g.TrafficTotals()
	c.reg.Gauge("sasgd_comm_words").SetInt(words)
	c.reg.Gauge("sasgd_comm_cross_words").SetInt(cross)
	c.reg.Gauge("sasgd_comm_hintra_words").SetInt(hintra)
	c.reg.Gauge("sasgd_comm_hinter_words").SetInt(hinter)
	f := g.FaultCounts()
	if sum := f.Sum(); sum != c.lastFaults {
		c.reg.Gauge("sasgd_fault_drops").SetInt(f.Drops)
		c.reg.Gauge("sasgd_fault_retries").SetInt(f.Retries)
		c.reg.Gauge("sasgd_fault_timeouts").SetInt(f.Timeouts)
		c.reg.Gauge("sasgd_fault_evictions").SetInt(f.Evictions)
		c.reg.Gauge("sasgd_fault_reforms").SetInt(f.Reforms)
		c.reg.Gauge("sasgd_fault_crashes").SetInt(f.Crashes)
		c.reg.Emit(obsmetrics.Event{
			TNs:      now,
			Type:     obsmetrics.EventFault,
			Boundary: c.boundary - 1,
			Value:    float64(sum - c.lastFaults),
			Note:     "fault counters moved",
		})
		c.lastFaults = sum
	}
}

// newFleet builds the run's shared fleet view on the registry, or nil
// when metrics are off.
func newFleet(cfg Config, p int) *obsmetrics.Fleet {
	if cfg.Metrics == nil {
		return nil
	}
	return obsmetrics.NewFleet(cfg.Metrics, p)
}
