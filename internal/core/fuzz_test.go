package core

import (
	"math/rand"
	"testing"

	"sasgd/internal/nn"
)

// FuzzPlanBuckets pins the bucket planner's invariants over
// fuzzer-chosen layer layouts: whatever the segment sizes and requested
// bucket count, the buckets must partition the flat parameter buffer
// exactly once (contiguous, back-to-back, aligned to segment
// boundaries), every bucket must carry the gating layer of its first
// segment, and the plan must be a pure function of its inputs (every
// rank computes it independently; divergent plans would deadlock the
// collective). One fuzz target per package keeps `go test -fuzz=.`
// runnable.
func FuzzPlanBuckets(f *testing.F) {
	f.Add(uint8(1), uint8(1), int64(1))
	f.Add(uint8(4), uint8(2), int64(3))
	f.Add(uint8(7), uint8(0), int64(5))   // n ≤ 0: one bucket per layer
	f.Add(uint8(3), uint8(11), int64(7))  // n > layers: one bucket per layer
	f.Add(uint8(12), uint8(5), int64(11)) // many small layers, few buckets
	f.Fuzz(func(t *testing.T, nSegsRaw, nRaw uint8, seed int64) {
		nSegs := int(nSegsRaw)%12 + 1
		n := int(nRaw)%15 - 1 // -1..13: covers ≤0, in-range and > nSegs

		rng := rand.New(rand.NewSource(seed))
		psegs := make([]nn.ParamSegment, nSegs)
		off := 0
		for i := range psegs {
			sz := 1 + rng.Intn(64)
			psegs[i] = nn.ParamSegment{Layer: i * 2, Off: off, Len: sz}
			off += sz
		}
		total := off

		segs, minLayer := planBuckets(psegs, n)

		want := n
		if n <= 0 || n > nSegs {
			want = nSegs
		}
		if len(segs) != want || len(minLayer) != want {
			t.Fatalf("nSegs=%d n=%d: got %d buckets / %d minLayers, want %d",
				nSegs, n, len(segs), len(minLayer), want)
		}
		// Exactly-once coverage: contiguous from 0 to total, every bucket
		// boundary on a segment boundary, gating layer = first segment's.
		starts := make(map[int]int, nSegs) // segment Off → index
		for i, s := range psegs {
			starts[s.Off] = i
		}
		next := 0
		for b, s := range segs {
			if s.Off != next {
				t.Fatalf("bucket %d starts at %d, want %d (gap or overlap)", b, s.Off, next)
			}
			if s.Len <= 0 {
				t.Fatalf("bucket %d empty (len %d)", b, s.Len)
			}
			si, ok := starts[s.Off]
			if !ok {
				t.Fatalf("bucket %d start %d is not a segment boundary", b, s.Off)
			}
			if minLayer[b] != psegs[si].Layer {
				t.Fatalf("bucket %d gating layer %d, want first segment's %d", b, minLayer[b], psegs[si].Layer)
			}
			next = s.Off + s.Len
			if _, ok := starts[next]; !ok && next != total {
				t.Fatalf("bucket %d ends at %d, not a segment boundary", b, next)
			}
		}
		if next != total {
			t.Fatalf("buckets cover [0,%d), want [0,%d)", next, total)
		}
		// Purity: recomputing the plan must reproduce it exactly.
		segs2, minLayer2 := planBuckets(psegs, n)
		for b := range segs {
			if segs2[b] != segs[b] || minLayer2[b] != minLayer[b] {
				t.Fatalf("plan not deterministic at bucket %d", b)
			}
		}
	})
}
