package core

import (
	"testing"

	"sasgd/internal/comm"
	"sasgd/internal/netsim"
)

// TestDecayT pins the decay schedule: T_b = min(T0, 2^⌊b/tDecayEvery⌋),
// communication-heavy at the start.
func TestDecayT(t *testing.T) {
	want := []int{1, 1, 2, 2, 4, 4, 8, 8, 8, 8} // t0 = 8, tDecayEvery = 2
	for b, w := range want {
		if got := decayT(b, 8); got != w {
			t.Fatalf("decayT(%d, 8) = %d, want %d", b, got, w)
		}
	}
	if got := decayT(100, 6); got != 6 {
		t.Fatalf("decayT(100, 6) = %d, want cap 6", got)
	}
}

// TestStaticSchedBitwiseLegacy is the tentpole's central degenerate pin:
// TSchedStatic routes the run through the scheduled path but computes
// the identical schedule, so final parameters, accuracy curve, words on
// the wire and simulated time must all be bitwise/exactly what the
// legacy loop produces — dense, compressed, and under the fabric
// simulation.
func TestStaticSchedBitwiseLegacy(t *testing.T) {
	prob := tinyProblem(48, 24, 5)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"dense", func(c *Config) {}},
		{"ptree", func(c *Config) { c.Allreduce = AllreducePTree; c.CommChunk = 16 }},
		{"rhd", func(c *Config) { c.Allreduce = AllreduceRHD }},
		{"topk", func(c *Config) { c.Compress = CodecTopK; c.CompressK = 0.1 }},
		{"qint8", func(c *Config) { c.Compress = CodecQInt8 }},
		{"adaptk", func(c *Config) { c.Compress = CodecTopK; c.CompressK = 0.1; c.CompressAdapt = true }},
	} {
		for _, p := range []int{1, 2, 3, 5, 8} {
			base := Config{
				Algo: AlgoSASGD, Learners: p, Interval: 2, Gamma: 0.05,
				Batch: 4, Epochs: 2, Seed: 9,
			}
			tc.mut(&base)
			legacy := Train(base, prob)

			cfg := base
			cfg.TSched = TSchedStatic
			sched := Train(cfg, prob)

			if len(sched.FinalParams) != len(legacy.FinalParams) {
				t.Fatalf("%s p=%d: param count mismatch", tc.name, p)
			}
			for i := range legacy.FinalParams {
				if legacy.FinalParams[i] != sched.FinalParams[i] {
					t.Fatalf("%s p=%d: scheduled path not bitwise at %d: %g vs %g",
						tc.name, p, i, legacy.FinalParams[i], sched.FinalParams[i])
				}
			}
			if legacy.WordsMoved != sched.WordsMoved {
				t.Errorf("%s p=%d: legacy moved %d words, scheduled %d",
					tc.name, p, legacy.WordsMoved, sched.WordsMoved)
			}
			if sched.FinalT != base.Interval {
				t.Errorf("%s p=%d: FinalT = %d, want %d", tc.name, p, sched.FinalT, base.Interval)
			}
		}
	}
}

// TestStaticSchedBitwiseLegacySim repeats the pin under the fabric
// simulation: the scheduled path must reproduce the legacy simulated
// time exactly, not just the values.
func TestStaticSchedBitwiseLegacySim(t *testing.T) {
	prob := tinyProblem(48, 24, 6)
	base := Config{
		Algo: AlgoSASGD, Learners: 4, Interval: 2, Gamma: 0.05,
		Batch: 4, Epochs: 2, Seed: 10,
		Sim: netsim.New(4, netsim.DefaultConfig()), FlopsPerSample: 1e8,
	}
	legacy := Train(base, prob)
	cfg := base
	cfg.Sim = netsim.New(4, netsim.DefaultConfig())
	cfg.TSched = TSchedStatic
	sched := Train(cfg, prob)
	for i := range legacy.FinalParams {
		if legacy.FinalParams[i] != sched.FinalParams[i] {
			t.Fatalf("sim: scheduled path not bitwise at %d", i)
		}
	}
	if legacy.SimTime != sched.SimTime {
		t.Errorf("sim time: legacy %g, scheduled %g", legacy.SimTime, sched.SimTime)
	}
}

// TestAdaptiveTDeterminism: the adaptive controller bases every decision
// on allreduced quantities, so two identical runs must agree bitwise —
// across learner counts and worker budgets (goroutine interleaving must
// not leak into the schedule).
func TestAdaptiveTDeterminism(t *testing.T) {
	prob := tinyProblem(48, 24, 7)
	for _, p := range []int{1, 2, 3, 5, 8} {
		for _, workers := range []int{1, 2} {
			cfg := Config{
				Algo: AlgoSASGD, Learners: p, Interval: 4, Gamma: 0.05,
				Batch: 4, Epochs: 3, Seed: 13,
				TSched: TSchedAdaptive, Workers: workers,
			}
			a := Train(cfg, prob)
			b := Train(cfg, prob)
			if a.FinalT != b.FinalT {
				t.Fatalf("p=%d w=%d: FinalT %d vs %d across identical runs", p, workers, a.FinalT, b.FinalT)
			}
			for i := range a.FinalParams {
				if a.FinalParams[i] != b.FinalParams[i] {
					t.Fatalf("p=%d w=%d: adaptive run not reproducible at %d", p, workers, i)
				}
			}
			lo, hi := 1, cfg.Interval*tAdaptSpan
			if cfg.Interval/tAdaptSpan > lo {
				lo = cfg.Interval / tAdaptSpan
			}
			if a.FinalT < lo || a.FinalT > hi {
				t.Errorf("p=%d: FinalT %d outside [%d, %d]", p, a.FinalT, lo, hi)
			}
		}
	}
}

// TestDecaySchedCommunicatesMore: decay starts at T=1, so it must hit
// strictly more boundaries (and move strictly more words) than the
// static schedule at the same Interval.
func TestDecaySchedCommunicatesMore(t *testing.T) {
	prob := tinyProblem(64, 24, 8)
	base := Config{
		Algo: AlgoSASGD, Learners: 4, Interval: 8, Gamma: 0.05,
		Batch: 4, Epochs: 4, Seed: 17,
	}
	static := Train(base, prob)
	cfg := base
	cfg.TSched = TSchedDecay
	decay := Train(cfg, prob)
	if decay.WordsMoved <= static.WordsMoved {
		t.Errorf("decay moved %d words, static %d — decay should communicate more early",
			decay.WordsMoved, static.WordsMoved)
	}
	if decay.FinalT != base.Interval {
		t.Errorf("decay FinalT = %d, want cap %d", decay.FinalT, base.Interval)
	}
}

// TestSchedulerRestore pins checkpoint-resume semantics for the
// scheduler state.
func TestSchedulerRestore(t *testing.T) {
	s := newTScheduler(Config{Interval: 8, TSched: TSchedDecay})
	s.restore(5, 0)
	if s.T() != 4 {
		t.Errorf("decay restore(5): T = %d, want 4", s.T())
	}
	s = newTScheduler(Config{Interval: 8, TSched: TSchedAdaptive})
	s.restore(3, 16)
	if s.T() != 16 {
		t.Errorf("adaptive restore(3, 16): T = %d, want 16", s.T())
	}
	s = newTScheduler(Config{Interval: 8, TSched: TSchedAdaptive})
	s.restore(3, 0) // pre-scheduler checkpoint: keep the start period
	if s.T() != 8 {
		t.Errorf("adaptive restore(3, 0): T = %d, want 8", s.T())
	}
}

// TestAdaptiveTWithFaultsDeterministic: the scheduler under the
// resilient path (live-view allreduces, crash mid-run) must stay
// reproducible run to run.
func TestAdaptiveTWithFaultsDeterministic(t *testing.T) {
	prob := tinyProblem(48, 24, 9)
	cfg := Config{
		Algo: AlgoSASGD, Learners: 4, Interval: 4, Gamma: 0.05,
		Batch: 4, Epochs: 3, Seed: 21,
		TSched: TSchedAdaptive,
		Faults: &comm.FaultPlan{CrashAt: map[int]int{2: 1}, EvictAfter: 3e8},
	}
	a := Train(cfg, prob)
	b := Train(cfg, prob)
	if a.LiveP != 3 || b.LiveP != 3 {
		t.Fatalf("LiveP = %d/%d, want 3 (one crash)", a.LiveP, b.LiveP)
	}
	if a.FinalT != b.FinalT {
		t.Fatalf("FinalT %d vs %d across identical faulty runs", a.FinalT, b.FinalT)
	}
	for i := range a.FinalParams {
		if a.FinalParams[i] != b.FinalParams[i] {
			t.Fatalf("faulty adaptive run not reproducible at %d", i)
		}
	}
}
