package core

import (
	"testing"

	"sasgd/internal/comm"
)

// TestCompressedOverlapMatchesSerialSweep is the compression engine's
// composition acceptance: a backward-overlapped compressed run must be
// *bitwise* identical to the serial compressed run for both codecs at
// every learner count and bucket count. The per-bucket codec collectives
// are independent and deterministic, so launching them early (as each
// bucket's layers finish backward) instead of all at the boundary cannot
// change a single bit — only the simulated schedule. Serial and overlap
// must share the bucket plan: compression is per-bucket, so different
// partitions legitimately select different coordinates.
func TestCompressedOverlapMatchesSerialSweep(t *testing.T) {
	prob := cifarProblem(24, 12)
	for _, codec := range []struct {
		name string
		k    float64
	}{
		{CodecTopK, 0.05},
		{CodecQInt8, 0},
	} {
		for _, p := range []int{1, 2, 3, 5, 8} {
			// {1, 3, per-layer} buckets; 0 selects per-layer.
			for _, buckets := range []int{1, 3, 0} {
				base := Config{
					Algo: AlgoSASGD, Learners: p, Interval: 2, Gamma: 0.05,
					Batch: 4, Epochs: 2, Seed: 11,
					Compress: codec.name, CompressK: codec.k,
					CommBuckets: buckets,
				}
				serial := Train(base, prob)
				cfg := base
				cfg.OverlapComm = true
				ov := Train(cfg, prob)
				if len(ov.FinalParams) != len(serial.FinalParams) {
					t.Fatalf("%s p=%d buckets=%d: param count mismatch", codec.name, p, buckets)
				}
				for i := range serial.FinalParams {
					if serial.FinalParams[i] != ov.FinalParams[i] {
						t.Fatalf("%s p=%d buckets=%d: overlap not bitwise at %d: %g vs %g",
							codec.name, p, buckets, i, serial.FinalParams[i], ov.FinalParams[i])
					}
				}
				// Same collectives either way — same words on the wire.
				if serial.WordsMoved != ov.WordsMoved {
					t.Errorf("%s p=%d buckets=%d: serial moved %d words, overlap %d",
						codec.name, p, buckets, serial.WordsMoved, ov.WordsMoved)
				}
			}
		}
	}
}

// TestCompressedOverlapMatchesSerialNLCF spot-checks the sweep's
// invariant on the temporal-conv model family (different layer shapes,
// so different per-layer bucket plans).
func TestCompressedOverlapMatchesSerialNLCF(t *testing.T) {
	prob := nlcfProblem(24, 12)
	for _, codec := range []struct {
		name string
		k    float64
	}{
		{CodecTopK, 0.05},
		{CodecQInt8, 0},
	} {
		base := Config{
			Algo: AlgoSASGD, Learners: 3, Interval: 2, Gamma: 0.05,
			Batch: 4, Epochs: 2, Seed: 12,
			Compress: codec.name, CompressK: codec.k,
		}
		serial := Train(base, prob)
		cfg := base
		cfg.OverlapComm = true
		ov := Train(cfg, prob)
		for i := range serial.FinalParams {
			if serial.FinalParams[i] != ov.FinalParams[i] {
				t.Fatalf("%s: overlap not bitwise at %d", codec.name, i)
			}
		}
	}
}

// TestFaultyCompressedMatchesPlain routes the resilient path through the
// same compression engine: under an empty fault plan (nothing injected,
// nobody crashes) the fault-capable run must reproduce the plain
// compressed run bit for bit — same codecs, same per-bucket collectives,
// same adaptive-k trajectory.
func TestFaultyCompressedMatchesPlain(t *testing.T) {
	prob := cifarProblem(24, 12)
	for _, tc := range []struct {
		name  string
		codec string
		k     float64
		adapt bool
	}{
		{"topk", CodecTopK, 0.05, false},
		{"topk-adapt", CodecTopK, 0.05, true},
		{"qint8", CodecQInt8, 0, false},
	} {
		base := Config{
			Algo: AlgoSASGD, Learners: 5, Interval: 2, Gamma: 0.05,
			Batch: 4, Epochs: 2, Seed: 13,
			Compress: tc.codec, CompressK: tc.k, CompressAdapt: tc.adapt,
		}
		plain := Train(base, prob)
		cfg := base
		cfg.Faults = &comm.FaultPlan{} // zero value: injects nothing
		faulty := Train(cfg, prob)
		if len(faulty.FinalParams) != len(plain.FinalParams) {
			t.Fatalf("%s: param count mismatch", tc.name)
		}
		for i := range plain.FinalParams {
			if plain.FinalParams[i] != faulty.FinalParams[i] {
				t.Fatalf("%s: resilient compressed run diverges at %d: %g vs %g",
					tc.name, i, plain.FinalParams[i], faulty.FinalParams[i])
			}
		}
	}
}

// TestAdaptiveCompressionDeterministicAndBounded pins the adaptive-k
// controller: the capture ratio is allreduced so every learner moves k
// in lockstep, which makes the whole run a deterministic function of the
// seed — two identical runs must agree bitwise on parameters and on the
// final working fraction, and that fraction must stay inside the
// controller's clamp [k0/8, min(1, 8·k0)].
func TestAdaptiveCompressionDeterministicAndBounded(t *testing.T) {
	prob := cifarProblem(24, 12)
	cfg := Config{
		Algo: AlgoSASGD, Learners: 4, Interval: 1, Gamma: 0.05,
		Batch: 4, Epochs: 3, Seed: 14,
		Compress: CodecTopK, CompressK: 0.05, CompressAdapt: true,
		OverlapComm: true,
	}
	a := Train(cfg, prob)
	b := Train(cfg, prob)
	for i := range a.FinalParams {
		if a.FinalParams[i] != b.FinalParams[i] {
			t.Fatalf("adaptive run not deterministic: params differ at %d", i)
		}
	}
	if a.CompressK != b.CompressK {
		t.Fatalf("adaptive run not deterministic: final k %v vs %v", a.CompressK, b.CompressK)
	}
	const k0 = 0.05
	if a.CompressK < k0/8 || a.CompressK > 8*k0 {
		t.Errorf("final working fraction %v outside clamp [%v, %v]", a.CompressK, k0/8, 8*k0)
	}

	// Dense and qint8 runs report no working fraction.
	dense := cfg
	dense.Compress, dense.CompressK, dense.CompressAdapt = "", 0, false
	if r := Train(dense, prob); r.CompressK != 0 {
		t.Errorf("dense run reports CompressK=%v, want 0", r.CompressK)
	}
}
