package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sasgd/internal/data"
	"sasgd/internal/model"
	"sasgd/internal/netsim"
	"sasgd/internal/nn"
)

// cifarProblem and nlcfProblem build reduced-scale instances of the
// paper's two model families (Tables I and II shapes, shrunk) over tiny
// synthetic datasets — the overlap equivalence sweep needs real
// multi-layer conv and temporal-conv stacks, not the single-segment tiny
// linear model.
func cifarProblem(nTrain, nTest int) *Problem {
	cfg := data.SmallImageConfig()
	cfg.TrainN, cfg.TestN = nTrain, nTest
	train, test := data.GenImages(cfg)
	return &Problem{
		Name: "small-cifar",
		Model: func(seed int64) *nn.Network {
			return model.NewCIFARNet(rand.New(rand.NewSource(seed)), model.SmallCIFARConfig())
		},
		Train: train, Test: test,
	}
}

func nlcfProblem(nTrain, nTest int) *Problem {
	cfg := data.SmallTextConfig()
	cfg.TrainN, cfg.TestN = nTrain, nTest
	train, test := data.GenText(cfg)
	return &Problem{
		Name: "small-nlcf",
		Model: func(seed int64) *nn.Network {
			return model.NewNLCFNet(rand.New(rand.NewSource(seed)), model.SmallNLCFConfig())
		},
		Train: train, Test: test,
	}
}

// TestOverlapBitwiseEquivalenceSweep is the tentpole acceptance sweep:
// backward-overlapped bucketed aggregation must be *bitwise* identical to
// the serial path for the tree family (tree and ptree — fixed bucket
// boundaries plus the tree's segmentation-independent per-element
// summation order) at every learner count and bucket count, on both model
// families. rhd reassociates within buckets, so overlap matches serial
// within reassociation tolerance instead.
func TestOverlapBitwiseEquivalenceSweep(t *testing.T) {
	for _, prob := range []*Problem{cifarProblem(24, 12), nlcfProblem(24, 12)} {
		for _, alg := range []AllreduceAlgo{AllreduceTree, AllreducePTree, AllreduceRHD} {
			for _, p := range []int{1, 2, 3, 5, 8} {
				base := Config{
					Algo: AlgoSASGD, Learners: p, Interval: 2, Gamma: 0.05,
					Batch: 4, Epochs: 3, Seed: 3, Allreduce: alg, CommChunk: 64,
				}
				serial := Train(base, prob)
				// {1, 3, per-layer} buckets; 0 selects per-layer.
				for _, buckets := range []int{1, 3, 0} {
					cfg := base
					cfg.OverlapComm = true
					cfg.CommBuckets = buckets
					ov := Train(cfg, prob)
					if len(ov.FinalParams) != len(serial.FinalParams) {
						t.Fatalf("%s/%s p=%d: param count mismatch", prob.Name, alg, p)
					}
					for i := range serial.FinalParams {
						s, o := serial.FinalParams[i], ov.FinalParams[i]
						if alg == AllreduceRHD {
							if math.Abs(s-o) > 1e-12 {
								t.Fatalf("%s/%s p=%d buckets=%d: overlap diverges at %d: %g vs %g",
									prob.Name, alg, p, buckets, i, s, o)
							}
						} else if s != o {
							t.Fatalf("%s/%s p=%d buckets=%d: overlap not bitwise at %d: %g vs %g",
								prob.Name, alg, p, buckets, i, s, o)
						}
					}
				}
			}
		}
	}
}

// TestOverlapUnsupportedAndLegacyConfigsMatchSerial: the dense ring is
// the one algorithm the bucketed worker does not implement — with
// OverlapComm set it must silently take the serial path and produce its
// exact result. The legacy CompressTopK knob normalizes into the
// compression engine (Compress="topk"), which runs through the bucketed
// worker both ways, so it too must be bitwise stable under the flag.
func TestOverlapUnsupportedAndLegacyConfigsMatchSerial(t *testing.T) {
	prob := cifarProblem(24, 12)
	for _, variant := range []func(*Config){
		func(c *Config) { c.Allreduce = AllreduceRing },
		func(c *Config) { c.CompressTopK = 0.2 },
	} {
		base := Config{Algo: AlgoSASGD, Learners: 3, Interval: 2, Gamma: 0.05, Batch: 4, Epochs: 2, Seed: 4}
		variant(&base)
		serial := Train(base, prob)
		cfg := base
		cfg.OverlapComm = true
		ov := Train(cfg, prob)
		for i := range serial.FinalParams {
			if serial.FinalParams[i] != ov.FinalParams[i] {
				t.Fatalf("fallback config diverged at %d", i)
			}
		}
	}
}

// TestCompressTopKFullMatchesDense pins the degenerate "ship everything"
// compression: CompressTopK = 1.0 normalizes to no codec at all, so it
// must take the dense path (honoring cfg.Allreduce) and reproduce an
// uncompressed run bit for bit.
func TestCompressTopKFullMatchesDense(t *testing.T) {
	prob := cifarProblem(24, 12)
	for _, alg := range []AllreduceAlgo{AllreduceTree, AllreducePTree, AllreduceRHD} {
		base := Config{Algo: AlgoSASGD, Learners: 4, Interval: 2, Gamma: 0.05, Batch: 4, Epochs: 2, Seed: 5, Allreduce: alg}
		dense := Train(base, prob)
		full := base
		full.CompressTopK = 1.0
		fr := Train(full, prob)
		for i := range dense.FinalParams {
			if dense.FinalParams[i] != fr.FinalParams[i] {
				t.Fatalf("%s: CompressTopK=1.0 not bitwise vs dense at %d: %g vs %g",
					alg, i, dense.FinalParams[i], fr.FinalParams[i])
			}
		}
		// Traffic must also be dense-shaped: the degenerate compression
		// must not route through the sparse index+value collective.
		if fr.WordsMoved != dense.WordsMoved {
			t.Errorf("%s: CompressTopK=1.0 moved %d words, dense moved %d", alg, fr.WordsMoved, dense.WordsMoved)
		}
	}
}

// TestOverlapSimFasterAtT1 is the simulated-fabric acceptance criterion:
// at T=1 and p=8 — the regime Fig. 6 shows is communication-dominated —
// stamping buckets with their layers' backward-completion times must
// yield strictly lower simulated epoch time than the serial
// end-of-backward schedule, with bitwise identical parameters.
func TestOverlapSimFasterAtT1(t *testing.T) {
	run := func(overlap bool) *Result {
		simCfg := netsim.DefaultConfig()
		// Rescale the reduced model's messages to paper scale so the
		// aggregation dominates the way Fig. 6 reports for T=1.
		simCfg.WordFactor = 100
		prob := nlcfProblem(64, 16)
		cfg := Config{
			Algo: AlgoSASGD, Learners: 8, Interval: 1, Gamma: 0.05,
			Batch: 4, Epochs: 1, Seed: 6,
			Sim: netsim.New(8, simCfg), FlopsPerSample: 1e8,
			OverlapComm: overlap,
		}
		return Train(cfg, prob)
	}
	serial := run(false)
	ov := run(true)
	for i := range serial.FinalParams {
		if serial.FinalParams[i] != ov.FinalParams[i] {
			t.Fatalf("simulated overlap run diverges at %d", i)
		}
	}
	if ov.SimTime >= serial.SimTime {
		t.Errorf("overlapped T=1 epoch time %.4fs not strictly below serial %.4fs", ov.SimTime, serial.SimTime)
	}
}

// TestPlanBucketsPartitions: plans are contiguous, cover the whole
// buffer, respect the requested count, and key each bucket to its
// earliest layer.
func TestPlanBucketsPartitions(t *testing.T) {
	net := model.NewCIFARNet(rand.New(rand.NewSource(7)), model.SmallCIFARConfig())
	psegs := net.ParamSegments()
	for _, n := range []int{0, 1, 2, 3, len(psegs), len(psegs) + 5} {
		segs, minLayer := planBuckets(psegs, n)
		wantN := n
		if n <= 0 || n > len(psegs) {
			wantN = len(psegs)
		}
		if len(segs) != wantN || len(minLayer) != wantN {
			t.Fatalf("n=%d: got %d buckets, want %d", n, len(segs), wantN)
		}
		off := 0
		for i, s := range segs {
			if s.Off != off || s.Len <= 0 {
				t.Fatalf("n=%d: bucket %d not contiguous: %+v at offset %d", n, i, s, off)
			}
			if i > 0 && minLayer[i] <= minLayer[i-1] {
				t.Fatalf("n=%d: bucket minLayers not increasing: %v", n, minLayer)
			}
			off += s.Len
		}
		if off != net.NumParams() {
			t.Fatalf("n=%d: buckets cover %d words, want %d", n, off, net.NumParams())
		}
	}
}

// BenchmarkOverlapAggregation sweeps the overlap knobs at T=1 (every
// batch aggregates — the maximum-communication regime) over the
// reduced-scale CIFAR family: the serial baseline against bucketed
// overlap at 1, 4, and per-layer buckets. Single-core caveat: on a
// 1-CPU host the overlap cannot reduce wall-clock time (compute and
// comm share the core); these numbers measure overhead there, and the
// simulated-time win is pinned by TestOverlapSimFasterAtT1 instead.
func BenchmarkOverlapAggregation(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		for _, mode := range []struct {
			name    string
			overlap bool
			buckets int
		}{
			{"serial", false, 0},
			{"buckets=1", true, 1},
			{"buckets=4", true, 4},
			{"buckets=layers", true, 0},
		} {
			b.Run(fmt.Sprintf("p=%d/%s", p, mode.name), func(b *testing.B) {
				prob := cifarProblem(8*p, 8)
				cfg := Config{
					Algo: AlgoSASGD, Learners: p, Interval: 1, Gamma: 0.05,
					Batch: 8, Epochs: 1, Seed: 1,
					OverlapComm: mode.overlap, CommBuckets: mode.buckets,
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					Train(cfg, prob)
				}
			})
		}
	}
}
