package core

import (
	"sasgd/internal/data"
	"sasgd/internal/tensor"
)

// trainSGD is the sequential baseline: one learner, one pass of shuffled
// minibatches per epoch, x ← x − γ·g. All speedup numbers in the paper's
// timing figures are relative to this run.
func trainSGD(cfg Config, prob *Problem) *Result {
	rec := newRecorder(prob)
	net := prob.newReplica(cfg.Seed)
	params := net.ParamData()
	grads := net.GradData()
	sampler := data.NewEpochSampler(prob.Train.Len(), cfg.Batch, cfg.Seed+7)
	bpe := sampler.BatchesPerEpoch()

	var samples int64
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for b := 0; b < bpe; b++ {
			idx := sampler.Next()
			x, y := prob.Train.Batch(idx)
			lastLoss = net.Step(x, y)
			tensor.Axpy(-cfg.Gamma, grads, params)
			samples += int64(len(idx))
			if cfg.Sim != nil {
				cfg.Sim.ChargeBatch(0, cfg.FlopsPerSample*float64(len(idx)))
			}
		}
		if (epoch+1)%cfg.EvalEvery == 0 {
			simNow := 0.0
			if cfg.Sim != nil {
				simNow = cfg.Sim.MaxTime()
			}
			rec.record(epoch+1, params, lastLoss, simNow)
		}
	}

	simTime, compute, communication := cfg.simSplits()
	return &Result{
		Algo:        AlgoSGD,
		FinalParams: append([]float64(nil), params...),
		P:           1,
		T:           cfg.Interval,
		Curve:       rec.points(),
		Samples:     samples,
		SimTime:     simTime,
		SimCompute:  compute,
		SimComm:     communication,
	}
}
