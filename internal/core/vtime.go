package core

import (
	"fmt"
	"sync"
)

// Virtual-time execution for the asynchronous algorithms.
//
// Downpour, EAMSGD and Hogwild are genuinely asynchronous: by default
// their gradient staleness comes from the host's goroutine scheduling,
// like the paper's (whose staleness came from the testbed's relative
// learner speeds). That realism costs reproducibility — two runs of the
// same configuration interleave differently. Config.VirtualTime trades
// the realism back: a gate serializes learner steps in virtual-clock
// order (the fabric simulator's clocks when Config.Sim is set, otherwise
// a per-learner step counter), so the interleaving — and therefore the
// entire run — is a deterministic function of the configuration.
// Staleness still emerges (at T = 1 with balanced clocks every learner
// sees the other p−1 updates between its pull and push); it is just the
// same staleness every run.

// virtualGate admits one learner at a time, always the one with the
// smallest virtual clock (ties broken by rank). Learners call Acquire
// before a step, Release with their advanced clock after it, and Done
// when they finish so the others stop waiting on them.
type virtualGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	clock  []float64
	done   []bool
	holder int
}

func newVirtualGate(p int) *virtualGate {
	g := &virtualGate{clock: make([]float64, p), done: make([]bool, p), holder: -1}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// isMinLocked reports whether rank has the smallest clock among learners
// that are not done (ties to the lower rank). Caller holds g.mu.
func (g *virtualGate) isMinLocked(rank int) bool {
	for r := range g.clock {
		if r == rank || g.done[r] {
			continue
		}
		if g.clock[r] < g.clock[rank] || (g.clock[r] == g.clock[rank] && r < rank) {
			return false
		}
	}
	return true
}

// Acquire blocks until rank is the next learner in virtual-time order
// and the gate is free.
func (g *virtualGate) Acquire(rank int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.done[rank] {
		panic(fmt.Sprintf("core: virtual gate Acquire after Done (rank %d)", rank))
	}
	for g.holder != -1 || !g.isMinLocked(rank) {
		g.cond.Wait()
	}
	g.holder = rank
}

// Release ends rank's step, recording its advanced clock.
func (g *virtualGate) Release(rank int, clock float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.holder != rank {
		panic(fmt.Sprintf("core: virtual gate Release by non-holder (rank %d, holder %d)", rank, g.holder))
	}
	if clock < g.clock[rank] {
		panic(fmt.Sprintf("core: virtual clock moved backwards (rank %d: %g -> %g)", rank, g.clock[rank], clock))
	}
	g.clock[rank] = clock
	g.holder = -1
	g.cond.Broadcast()
}

// Done removes rank from scheduling; the remaining learners no longer
// wait on it. Safe to call whether or not rank holds the gate.
func (g *virtualGate) Done(rank int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.done[rank] = true
	if g.holder == rank {
		g.holder = -1
	}
	g.cond.Broadcast()
}

// stepPacer is each learner's handle on the gate: it tracks the virtual
// clock source (fabric clock or step counter) and wraps one batch step.
type stepPacer struct {
	gate  *virtualGate
	rank  int
	cfg   *Config
	steps float64
}

// newPacer returns a pacer, or nil when virtual time is off.
func newPacer(gate *virtualGate, rank int, cfg *Config) *stepPacer {
	if gate == nil {
		return nil
	}
	return &stepPacer{gate: gate, rank: rank, cfg: cfg}
}

func (p *stepPacer) now() float64 {
	if p.cfg.Sim != nil {
		return p.cfg.Sim.Clock(p.rank).Now()
	}
	return p.steps
}

// begin must be called before each batch step.
func (p *stepPacer) begin() {
	if p == nil {
		return
	}
	p.gate.Acquire(p.rank)
}

// end must be called after each batch step (including its communication).
func (p *stepPacer) end() {
	if p == nil {
		return
	}
	p.steps++
	p.gate.Release(p.rank, p.now())
}

// finish must be called when the learner exits.
func (p *stepPacer) finish() {
	if p == nil {
		return
	}
	p.gate.Done(p.rank)
}
