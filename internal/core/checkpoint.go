package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"os"

	"sasgd/internal/nn"
)

// Checkpoint-restart. SASGD's aggregation boundaries are the natural
// checkpoint points: immediately after an aggregation every replica
// equals the reference parameters x′ and the accumulated gradient gs is
// zero, so the entire distributed optimizer state collapses to one
// parameter vector plus a handful of counters. A checkpoint is a gob
// header (the counters and run shape) followed by one nn parameter
// frame (magic, version, count, float64s, CRC — the same format model
// checkpoints use), written atomically via a temp file and rename by
// whichever live rank is virtual rank 0 at the boundary.
//
// Restart semantics are exact replay: the sampler streams are seeded
// per data-physical rank and fast-forwarded Step batches, the epoch and
// batch offsets are derived from Step, and γp is restored from the
// header, so a resumed run consumes the identical sample sequence — and
// therefore produces bitwise-identical aggregated gradients — that a
// never-interrupted run over the same ranks would have. (Models whose
// forward pass draws randomness per step, i.e. dropout, would
// additionally need their per-replica RNG state captured; the
// checkpoint format does not carry it, so exact replay holds for
// deterministic-forward models.) A crashed learner — or a fault-free
// reference run over the survivors — rejoins by Config.ResumeFrom plus
// Config.ResumeRanks naming which original ranks the new run's learners
// play.

// checkpointMeta is the gob header of a core checkpoint.
type checkpointMeta struct {
	OrigP    int   // learner count of the original run (γ rescale base, shard partition)
	Interval int   // T
	Batch    int   // minibatch size
	Seed     int64 // run seed (sampler/replica seeds derive from it)
	GammaP   float64
	Step     int   // local steps (= sampler draws) completed per learner
	Boundary int   // aggregation boundaries completed
	CurT     int   // T-scheduler period in effect (0 in pre-scheduler checkpoints)
	Live     []int // data-physical ranks live when the checkpoint was written
}

// writeCheckpoint atomically writes meta + params to path.
func writeCheckpoint(path string, meta checkpointMeta, params []float64) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: creating checkpoint: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := gob.NewEncoder(bw).Encode(meta); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: writing checkpoint header: %w", err)
	}
	if err := nn.WriteParams(bw, params); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: flushing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: committing checkpoint: %w", err)
	}
	return nil
}

// readCheckpoint loads a checkpoint written by writeCheckpoint. The
// reader is buffered once and shared between the gob header and the
// parameter frame so no bytes are lost between the two decoders.
func readCheckpoint(path string) (checkpointMeta, []float64, error) {
	var meta checkpointMeta
	f, err := os.Open(path)
	if err != nil {
		return meta, nil, fmt.Errorf("core: opening checkpoint: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if err := gob.NewDecoder(br).Decode(&meta); err != nil {
		return meta, nil, fmt.Errorf("core: reading checkpoint header: %w", err)
	}
	params, err := nn.ReadParams(br)
	if err != nil {
		return meta, nil, err
	}
	return meta, params, nil
}

// resumeState is the validated resume plan for one run: the checkpoint
// contents plus the data-physical rank each of the new run's learners
// plays.
type resumeState struct {
	meta   checkpointMeta
	params []float64
	ranks  []int // learner index → data-physical rank (sorted ascending)
}

// loadResume validates cfg against a checkpoint and builds the resume
// plan. cfg.ResumeRanks names which original data-physical ranks this
// run's learners play (sorted; nil means all OrigP ranks, requiring
// cfg.Learners == OrigP). The run must match the checkpoint's
// aggregation interval, batch size and seed — resuming under a
// different schedule would silently break exact replay.
func loadResume(cfg Config) (*resumeState, error) {
	meta, params, err := readCheckpoint(cfg.ResumeFrom)
	if err != nil {
		return nil, err
	}
	if meta.Interval != cfg.Interval {
		return nil, fmt.Errorf("core: resume interval T=%d, checkpoint has T=%d", cfg.Interval, meta.Interval)
	}
	if meta.Batch != cfg.Batch {
		return nil, fmt.Errorf("core: resume batch %d, checkpoint has %d", cfg.Batch, meta.Batch)
	}
	if meta.Seed != cfg.Seed {
		return nil, fmt.Errorf("core: resume seed %d, checkpoint has %d", cfg.Seed, meta.Seed)
	}
	rs := &resumeState{meta: meta, params: params}
	if cfg.ResumeRanks != nil {
		if len(cfg.ResumeRanks) != cfg.Learners {
			return nil, fmt.Errorf("core: %d resume ranks for %d learners", len(cfg.ResumeRanks), cfg.Learners)
		}
		rs.ranks = append([]int(nil), cfg.ResumeRanks...)
		for i, r := range rs.ranks {
			if r < 0 || r >= meta.OrigP {
				return nil, fmt.Errorf("core: resume rank %d outside the original run's [0,%d)", r, meta.OrigP)
			}
			if i > 0 && rs.ranks[i] <= rs.ranks[i-1] {
				return nil, fmt.Errorf("core: resume ranks must be strictly ascending, got %v", cfg.ResumeRanks)
			}
		}
	} else {
		if cfg.Learners != meta.OrigP {
			return nil, fmt.Errorf("core: resuming %d learners from a %d-learner checkpoint needs ResumeRanks",
				cfg.Learners, meta.OrigP)
		}
		rs.ranks = make([]int, meta.OrigP)
		for i := range rs.ranks {
			rs.ranks[i] = i
		}
	}
	return rs, nil
}
