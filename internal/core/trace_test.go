package core

import (
	"bytes"
	"strings"
	"testing"

	"sasgd/internal/obs"
)

// End-to-end tracing: an overlapped SASGD run with a tracer attached
// must export a schema-valid Chrome trace whose comm-worker allreduce
// spans visibly overlap the learners' backward spans, with every
// instrumented phase present in the profile and the unified comm stats
// populated on the result.
func TestTraceExportFromRun(t *testing.T) {
	prob := cifarProblem(24, 12)
	tr := obs.NewTracer(1 << 12)
	cfg := Config{
		Algo: AlgoSASGD, Learners: 4, Interval: 2, Gamma: 0.05,
		Batch: 4, Epochs: 2, Seed: 5, Allreduce: AllreducePTree,
		CommChunk: 64, OverlapComm: true, Tracer: tr,
	}
	res := Train(cfg, prob)

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("run trace failed schema validation: %v", err)
	}
	if spans == 0 {
		t.Fatal("run trace has no spans")
	}

	// Every instrumented phase fires in this configuration: forward/
	// backward/local step on serial batches, bucket begins + agg wait/
	// apply on aggregation batches, queue dwell + allreduce on the comm
	// workers, and the initial broadcast. The fault-injection phases
	// (retry, drop, heartbeat, evict, reform, crash) only fire under a
	// FaultPlan — the chaos tests cover their presence — and compress
	// only fires in compressed runs (TestTraceSparsePathPhases).
	elsewhere := map[obs.Phase]bool{
		obs.PhaseRetry: true, obs.PhaseDrop: true, obs.PhaseHeartbeat: true,
		obs.PhaseEvict: true, obs.PhaseReform: true, obs.PhaseCrash: true,
		obs.PhaseCompress: true,
	}
	table := tr.ProfileTable("phases")
	for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
		if elsewhere[ph] {
			continue
		}
		if !strings.Contains(table, ph.String()) {
			t.Errorf("profile missing phase %q:\n%s", ph, table)
		}
	}

	// The overlap must be visible in the timeline: comm-worker allreduce
	// time intersecting the same rank's backward spans.
	overlapped, total := tr.OverlapFraction()
	if total <= 0 {
		t.Fatal("no allreduce time recorded on the comm tracks")
	}
	if overlapped <= 0 {
		t.Errorf("no allreduce time overlapped backward (total %v)", total)
	}

	// Result carries the unified comm stats.
	if res.Comm.Words != res.WordsMoved || res.Comm.Words == 0 {
		t.Errorf("Result.Comm.Words = %d, WordsMoved = %d; want equal and nonzero", res.Comm.Words, res.WordsMoved)
	}
	for _, algo := range []string{"bcast", "ptree"} {
		if res.Comm.PerAlgo[algo].Words == 0 {
			t.Errorf("Result.Comm.PerAlgo[%q] empty: %+v", algo, res.Comm.PerAlgo)
		}
	}
	if res.Comm.BucketOps == 0 {
		t.Error("Result.Comm.BucketOps = 0, want bucketed ops recorded")
	}
	if o := res.Comm.PipelineOccupancy; o <= 0 || o > 1 {
		t.Errorf("Result.Comm.PipelineOccupancy = %v, want in (0, 1]", o)
	}

	// The tracer's live stats source was registered by the run.
	if tr.Stats() == nil {
		t.Error("tracer has no live stats source after the run")
	}
}

// TestTraceDoesNotChangeResults pins that attaching a tracer is purely
// observational: the trained parameters are bitwise identical with and
// without it, on both the serial and the overlapped path.
func TestTraceDoesNotChangeResults(t *testing.T) {
	prob := cifarProblem(24, 12)
	for _, overlap := range []bool{false, true} {
		base := Config{
			Algo: AlgoSASGD, Learners: 3, Interval: 2, Gamma: 0.05,
			Batch: 4, Epochs: 2, Seed: 7, OverlapComm: overlap,
		}
		plain := Train(base, prob)
		traced := base
		traced.Tracer = obs.NewTracer(256)
		got := Train(traced, prob)
		for i := range plain.FinalParams {
			if plain.FinalParams[i] != got.FinalParams[i] {
				t.Fatalf("overlap=%v: tracing changed parameter %d: %g vs %g",
					overlap, i, plain.FinalParams[i], got.FinalParams[i])
			}
		}
	}
}

// TestTraceSparsePathPhases covers the top-k sparse aggregation path:
// agg_wait/agg_apply spans fire around the sparse collective and the
// traffic lands under the "sparse" label.
func TestTraceSparsePathPhases(t *testing.T) {
	prob := cifarProblem(24, 12)
	tr := obs.NewTracer(256)
	res := Train(Config{
		Algo: AlgoSASGD, Learners: 2, Interval: 2, Gamma: 0.05,
		Batch: 4, Epochs: 1, Seed: 9, CompressTopK: 0.1, Tracer: tr,
	}, prob)
	table := tr.ProfileTable("phases")
	for _, ph := range []obs.Phase{obs.PhaseAggWait, obs.PhaseAggApply, obs.PhaseCompress} {
		if !strings.Contains(table, ph.String()) {
			t.Errorf("sparse path missing %q spans:\n%s", ph, table)
		}
	}
	if res.Comm.PerAlgo["sparse"].Words == 0 {
		t.Errorf("sparse traffic not attributed: %+v", res.Comm.PerAlgo)
	}
}

// TestTraceExportScheduledPaths covers Chrome-trace export under the
// communication-scheduling paths: adaptive-T boundaries, hierarchical
// two-level collectives, and delayed application (flat and hierarchical)
// must each produce a schema-valid trace with the aggregation spans
// present, and the hierarchical runs must attribute traffic to the
// hintra/hinter labels. The scripts/check.sh race leg runs this test
// under -race, which exercises the comm-worker/learner span handoff on
// the delayed paths.
func TestTraceExportScheduledPaths(t *testing.T) {
	prob := cifarProblem(24, 12)
	for _, tc := range []struct {
		name  string
		mut   func(*Config)
		algos []string
	}{
		{"adaptive-t", func(c *Config) { c.TSched = TSchedAdaptive }, []string{"tree"}},
		{"hier", func(c *Config) { c.HierGroups = 2; c.TOuter = 2 }, []string{"hintra", "hinter"}},
		// Delayed launches run through the bucketed comm worker's chunked
		// tree, so the traffic lands under "ptree".
		{"delayed", func(c *Config) { c.DelayedApply = true }, []string{"ptree"}},
		{"hier-delayed", func(c *Config) {
			c.HierGroups = 2
			c.TOuter = 2
			c.DelayedApply = true
		}, []string{"hintra", "hinter"}},
	} {
		tr := obs.NewTracer(1 << 12)
		cfg := Config{
			Algo: AlgoSASGD, Learners: 4, Interval: 2, Gamma: 0.05,
			Batch: 4, Epochs: 2, Seed: 5, Tracer: tr,
		}
		tc.mut(&cfg)
		res := Train(cfg, prob)

		var buf bytes.Buffer
		if err := tr.WriteTrace(&buf); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		spans, err := obs.ValidateTrace(buf.Bytes())
		if err != nil {
			t.Fatalf("%s: trace failed schema validation: %v", tc.name, err)
		}
		if spans == 0 {
			t.Fatalf("%s: trace has no spans", tc.name)
		}
		table := tr.ProfileTable("phases")
		for _, ph := range []obs.Phase{obs.PhaseAggWait, obs.PhaseAggApply, obs.PhaseLocalStep} {
			if !strings.Contains(table, ph.String()) {
				t.Errorf("%s: profile missing %q spans:\n%s", tc.name, ph, table)
			}
		}
		for _, algo := range tc.algos {
			if res.Comm.PerAlgo[algo].Words == 0 {
				t.Errorf("%s: no traffic under %q: %+v", tc.name, algo, res.Comm.PerAlgo)
			}
		}
	}
}

// BenchmarkTraceOverhead measures a full overlapped training run with
// tracing off (the nil-check-only disabled path) vs on; the two must be
// within noise of each other, which scripts/bench_obs.sh records.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			prob := cifarProblem(32, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := Config{
					Algo: AlgoSASGD, Learners: 4, Interval: 1, Gamma: 0.05,
					Batch: 4, Epochs: 1, Seed: 1, OverlapComm: true, EvalEvery: 2,
				}
				if mode == "on" {
					cfg.Tracer = obs.NewTracer(0)
				}
				Train(cfg, prob)
			}
		})
	}
}
