package core

import (
	"sync/atomic"

	"sasgd/internal/comm"
	"sasgd/internal/data"
	"sasgd/internal/tensor"
)

// trainEAMSGD implements EAMSGD (Zhang, Choromanska & LeCun — the
// paper's second baseline): asynchronous SGD with momentum where, every T
// local updates, each learner performs an elastic exchange with a center
// variable x̃ held by the parameter server:
//
//	d  = α·(xᵢ − x̃)
//	xᵢ ← xᵢ − d
//	x̃  ← x̃ + d
//
// The elastic force links the learners' parameters with the center, which
// is what lets EAMSGD tolerate larger update intervals than Downpour; the
// paper's figures show it sitting between Downpour and SASGD. The default
// α is 0.9/p as in the EASGD paper, and local updates use momentum μ
// (the "M" in EAMSGD).
func trainEAMSGD(cfg Config, prob *Problem) *Result {
	p := cfg.Learners
	shards := prob.Train.Partition(p)
	bpe := batchesPerEpoch(shards, cfg.Batch)

	init := prob.newReplica(cfg.Seed)
	var clocks []comm.Clock
	var cost comm.CostModel
	if cfg.Sim != nil {
		clocks, cost = cfg.Sim.Clocks(), cfg.Sim.CostModel()
	}
	server := comm.NewParamServer(init.ParamData(), cfg.Shards, clocks, cost)

	rec := newRecorder(prob)
	var samples atomic.Int64
	var stats stalenessStats
	var finalParams []float64
	var gate *virtualGate
	if cfg.VirtualTime {
		gate = newVirtualGate(p)
	}

	runLearners(p, func(rank int) {
		pacer := newPacer(gate, rank, &cfg)
		defer pacer.finish()
		net := prob.newReplica(cfg.Seed + int64(rank))
		params := net.ParamData()
		grads := net.GradData()
		m := net.NumParams()
		vel := make([]float64, m)

		// The initial pull is learners' step 0: gated so the starting
		// parameters are deterministic under virtual time.
		pacer.begin()
		pullGens := server.Pull(rank, params)
		pacer.end()
		sampler := data.NewEpochSampler(shards[rank].Len(), cfg.Batch, cfg.Seed+int64(rank)*31+7)
		var lastLoss float64
		step := 0
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for b := 0; b < bpe; b++ {
				pacer.begin()
				idx := sampler.Next()
				x, y := shards[rank].Batch(idx)
				lastLoss = net.Step(x, y)
				// Momentum update: v ← μ·v − γ·g ; x ← x + v.
				for i, g := range grads {
					vel[i] = cfg.Momentum*vel[i] - cfg.Gamma*g
				}
				tensor.Axpy(1, vel, params)
				samples.Add(int64(len(idx)))
				if cfg.Sim != nil {
					cfg.Sim.ChargeBatch(rank, cfg.FlopsPerSample*float64(len(idx)))
				}
				step++
				if step%cfg.Interval == 0 {
					// The elastic exchange both reads and writes the
					// center, so its generations support the same
					// staleness accounting as Downpour's push.
					d, gens := server.Elastic(rank, cfg.Alpha, params)
					tensor.Axpy(-1, d, params)
					stats.observe(staleness(pullGens, gens))
					pullGens = gens
				}
				pacer.end()
			}
			if rank == 0 && (epoch+1)%cfg.EvalEvery == 0 {
				simNow := 0.0
				if cfg.Sim != nil {
					simNow = cfg.Sim.MaxTime()
				}
				rec.record(epoch+1, params, lastLoss, simNow)
			}
		}
		if rank == 0 {
			finalParams = append([]float64(nil), params...)
		}
	})

	simTime, compute, communication := cfg.simSplits()
	return &Result{
		Algo:          AlgoEAMSGD,
		P:             p,
		T:             cfg.Interval,
		Curve:         rec.points(),
		Samples:       samples.Load(),
		SimTime:       simTime,
		SimCompute:    compute,
		SimComm:       communication,
		StalenessMean: stats.mean(),
		StalenessMax:  atomic.LoadInt64(&stats.max),
		FinalParams:   finalParams,
	}
}
