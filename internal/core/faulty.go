package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"sasgd/internal/comm"
	"sasgd/internal/data"
	"sasgd/internal/obs"
	"sasgd/internal/tensor"
)

// trainSASGDResilient is Algorithm 1 under failures: the same local
// loop and aggregation as trainSASGD, but every synchronization point —
// each aggregation boundary and each epoch barrier — goes through a
// comm.Resilient membership ledger instead of a bare barrier, so the
// run survives message drops and delays (acknowledged delivery with
// retry below), stragglers (real per-batch sleeps plus simulated
// slowdown; evicted only if they fall behind the failure detector's
// EvictAfter), and scheduled crashes (the rank goes silent at its
// boundary, the survivors detect, evict, re-form a smaller group and
// continue with the aggregation rate rescaled to γp·OrigP/|live| —
// preserving the per-gradient step size the original γp encoded).
//
// The path also owns checkpoint-restart. Two rank spaces keep resume
// orthogonal to fault handling: run-physical ranks 0..p−1 name this
// run's goroutines, clocks and fault-plan entries, while data-physical
// ranks (Config.ResumeRanks, identity when not resuming) name the
// original run's shards and seed streams. A resumed run therefore
// replays exactly the sample sequence the original ranks would have
// consumed — with a survivors-only mapping, exactly what the survivors
// would have consumed — which is what makes post-eviction aggregated
// gradients bitwise-comparable between a degraded run and a fault-free
// resume over the survivors (the chaos harness's core assertion).
//
// Trainer-level differences from trainSASGD: overlapped aggregation
// falls back to the serial path (bucketed sends assume a fixed group),
// and evaluation/recording is done by the current view's virtual rank 0
// (which moves if rank 0 crashes).
func trainSASGDResilient(cfg Config, prob *Problem) *Result {
	p := cfg.Learners
	plan := cfg.Faults

	var rs *resumeState
	if cfg.ResumeFrom != "" {
		var err error
		if rs, err = loadResume(cfg); err != nil {
			panic(err)
		}
		// γp belongs to the original run's shape; restore it so rescaling
		// by OrigP/|live| lands on the same effective rate the original
		// run's survivors would use.
		cfg.GammaP = rs.meta.GammaP
	}
	origP := p
	dataRanks := make([]int, p)
	for i := range dataRanks {
		dataRanks[i] = i
	}
	startStep, startBoundary := 0, 0
	if rs != nil {
		origP = rs.meta.OrigP
		dataRanks = rs.ranks
		startStep, startBoundary = rs.meta.Step, rs.meta.Boundary
	}

	// Shards are partitioned by the ORIGINAL learner count so a
	// survivors-only resume trains on the survivors' own shards, not a
	// repartition of the whole set.
	shards := prob.Train.Partition(origP)
	bpe := batchesPerEpoch(shards, cfg.Batch)

	var clocks []comm.Clock
	var cost comm.CostModel
	if cfg.Sim != nil {
		clocks = cfg.Sim.Clocks()
		cost = cfg.Sim.CostModel()
	}
	res := comm.NewResilient(p, plan, clocks, cost, cfg.Tracer)
	cfg.Tracer.SetStats(func() interface{} { return res.Stats() })
	rec := newRecorder(prob)
	var samples atomic.Int64
	var finalParams []float64

	runLearners(p, func(runPhys int) {
		dataPhys := dataRanks[runPhys]
		net := prob.newReplica(cfg.Seed + int64(dataPhys))
		m := net.NumParams()
		params := net.ParamData()
		grads := net.GradData()
		tk := cfg.Tracer.Learner(runPhys)
		net.SetTrack(tk)

		if rs != nil {
			if len(rs.params) != m {
				panic(fmt.Sprintf("core: checkpoint has %d parameters, model has %d", len(rs.params), m))
			}
			copy(params, rs.params)
		}
		view := res.Current()
		// x ← broadcast(x, p, id); x′ ← x. On resume all replicas already
		// carry the checkpoint parameters and the broadcast is a no-op in
		// values; it still runs so the wire schedule matches a cold start.
		bs := tk.Begin()
		view.G.BroadcastTree(runPhys, params)
		tk.End(obs.PhaseBcast, bs)
		xref := append([]float64(nil), params...)
		gs := make([]float64, m)
		// Compression engine state (see compress.go). The resilient path
		// drives the codec synchronously per bucket instead of through the
		// bucketed worker because group membership can change between
		// boundaries; values are identical to the engine's async path.
		var (
			comp  comm.Compressor
			csegs []comm.Segment
			cres  []float64
			ratio float64
			acomp [2]float64
		)
		if cfg.compressionActive() {
			comp = cfg.newCompressor()
			csegs, _ = planBuckets(net.ParamSegments(), cfg.CommBuckets)
			cres = make([]float64, m)
			ratio = cfg.CompressK
		}

		sampler := data.NewEpochSampler(shards[dataPhys].Len(), cfg.Batch, cfg.Seed+int64(dataPhys)*31+7)
		sampler.Skip(startStep)
		if cfg.Sim != nil {
			cfg.Sim.SkipBatches(runPhys, startStep)
			if k := plan.SlowFactor(runPhys); k > 1 {
				cfg.Sim.SetSlowdown(runPhys, k)
			}
		}
		slowSleep := plan.SlowSleepFor(runPhys)
		crashAt := plan.CrashBoundary(runPhys)

		var lastLoss float64
		step := startStep
		boundary := startBoundary
		sync := 0
		startEpoch := startStep / bpe
		for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
			b0 := 0
			if epoch == startEpoch {
				b0 = startStep % bpe
			}
			for b := b0; b < bpe; b++ {
				idx := sampler.Next()
				x, y := shards[dataPhys].Batch(idx)
				lastLoss = net.Step(x, y)
				// x ← x − γ·g ; gs ← gs + g
				ls := tk.Begin()
				tensor.Axpy(-cfg.Gamma, grads, params)
				tensor.Axpy(1, grads, gs)
				tk.End(obs.PhaseLocalStep, ls)
				samples.Add(int64(len(idx)))
				if cfg.Sim != nil {
					cfg.Sim.ChargeBatch(runPhys, cfg.FlopsPerSample*float64(len(idx)))
				}
				if slowSleep > 0 {
					time.Sleep(slowSleep)
				}
				step++
				if step%cfg.Interval != 0 {
					continue
				}
				if crashAt >= 0 && boundary == crashAt {
					// Fail-stop: go silent without posting the boundary's
					// heartbeat. The peers detect and evict.
					res.Crash(runPhys)
					return
				}
				v, ok := res.Await(runPhys, sync)
				sync++
				if !ok {
					return // fenced: evicted as a presumed-dead straggler
				}
				view = v
				// γp rescale: the aggregated gs now sums |live| learners'
				// gradients instead of OrigP, so the per-learner weight γp
				// is scaled by OrigP/|live| to keep the effective
				// per-gradient step unchanged.
				acfg := cfg
				acfg.GammaP = cfg.GammaP * float64(origP) / float64(view.Size())
				if comp != nil {
					aggregateCompressedSync(view.G, view.RankOf(runPhys), acfg, csegs, comp, ratio, gs, cres, xref, params, tk)
					if cfg.adaptActive() {
						acomp[0], acomp[1] = comp.TakeCapture()
						view.G.AllreduceTree(view.RankOf(runPhys), acomp[:])
						ratio = nextRatio(ratio, cfg.CompressK, acomp[0], acomp[1])
					}
				} else {
					aggregate(view.G, view.RankOf(runPhys), acfg, boundary, gs, xref, params, tk)
				}
				boundary++
				if cfg.CheckpointPath != "" && view.RankOf(runPhys) == 0 && boundary%cfg.CheckpointEvery == 0 {
					live := make([]int, view.Size())
					for vr, pr := range view.Phys {
						live[vr] = dataRanks[pr]
					}
					meta := checkpointMeta{
						OrigP:    origP,
						Interval: cfg.Interval,
						Batch:    cfg.Batch,
						Seed:     cfg.Seed,
						GammaP:   cfg.GammaP,
						Step:     step,
						Boundary: boundary,
						Live:     live,
					}
					if err := writeCheckpoint(checkpointFile(cfg.CheckpointPath, boundary), meta, xref); err != nil {
						panic(err)
					}
				}
			}
			// Collective epoch boundary: synchronize, let the current
			// view's virtual rank 0 record accuracy, synchronize again so
			// nobody races ahead into the next epoch during evaluation.
			v, ok := res.Await(runPhys, sync)
			sync++
			if !ok {
				return
			}
			view = v
			if view.RankOf(runPhys) == 0 && (epoch+1)%cfg.EvalEvery == 0 {
				simNow := 0.0
				if cfg.Sim != nil {
					simNow = cfg.Sim.MaxTime()
				}
				rec.record(epoch+1, params, lastLoss, simNow)
			}
			v, ok = res.Await(runPhys, sync)
			sync++
			if !ok {
				return
			}
			view = v
		}
		if view.RankOf(runPhys) == 0 {
			finalParams = append([]float64(nil), params...)
		}
	})

	stats := res.Stats()
	res.Close()
	simTime, compute, communication := cfg.simSplits()
	return &Result{
		Algo:        AlgoSASGD,
		P:           p,
		T:           cfg.Interval,
		Curve:       rec.points(),
		Samples:     samples.Load(),
		SimTime:     simTime,
		SimCompute:  compute,
		SimComm:     communication,
		WordsMoved:  stats.Words,
		Comm:        stats,
		LiveP:       res.Current().Size(),
		FinalParams: finalParams,
	}
}

// checkpointFile resolves the configured checkpoint path for a
// boundary: a "%d" verb keeps one file per boundary (the chaos harness
// resumes from the boundary before a crash), a plain path is
// overwritten in place (normal operation keeps only the latest).
func checkpointFile(path string, boundary int) string {
	if strings.Contains(path, "%d") {
		return fmt.Sprintf(path, boundary)
	}
	return path
}
