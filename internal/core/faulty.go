package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"sasgd/internal/comm"
	"sasgd/internal/data"
	"sasgd/internal/obs"
	"sasgd/internal/tensor"
)

// trainSASGDResilient is Algorithm 1 under failures: the same local
// loop and aggregation as trainSASGD, but every synchronization point —
// each aggregation boundary and each epoch barrier — goes through a
// comm.Resilient membership ledger instead of a bare barrier, so the
// run survives message drops and delays (acknowledged delivery with
// retry below), stragglers (real per-batch sleeps plus simulated
// slowdown; evicted only if they fall behind the failure detector's
// EvictAfter), and scheduled crashes (the rank goes silent at its
// boundary, the survivors detect, evict, re-form a smaller group and
// continue with the aggregation rate rescaled to γp·OrigP/|live| —
// preserving the per-gradient step size the original γp encoded).
//
// The path also owns checkpoint-restart. Two rank spaces keep resume
// orthogonal to fault handling: run-physical ranks 0..p−1 name this
// run's goroutines, clocks and fault-plan entries, while data-physical
// ranks (Config.ResumeRanks, identity when not resuming) name the
// original run's shards and seed streams. A resumed run therefore
// replays exactly the sample sequence the original ranks would have
// consumed — with a survivors-only mapping, exactly what the survivors
// would have consumed — which is what makes post-eviction aggregated
// gradients bitwise-comparable between a degraded run and a fault-free
// resume over the survivors (the chaos harness's core assertion).
//
// Trainer-level differences from trainSASGD: overlapped aggregation
// falls back to the serial path (bucketed sends assume a fixed group),
// and evaluation/recording is done by the current view's virtual rank 0
// (which moves if rank 0 crashes).
//
// The communication-schedule policies (schedule.go, delayed.go) compose
// with fault handling as follows. The T-scheduler runs on the live view
// — its adaptive drift statistic is allreduced over the survivors — and
// the current period is checkpointed (CurT) so an adaptive resume
// continues the schedule. The hierarchy is defined on run-physical
// ranks (the simulated topology does not change when a rank dies) and
// re-partitioned over the survivors on every view change: the island
// working references w are averaged over the new view — every applied
// gradient is carried by some island's w, so the average IS the global
// mean model — the un-exchanged island accumulator and any pending
// outer aggregate (whose gradients w already carries island-locally)
// are dropped, and the global reference rebases onto the average.
// Delayed application under faults defers only the APPLICATION: the
// exchange itself runs synchronously at its boundary, because a launch
// left in flight across a membership change would address a dead group.
func trainSASGDResilient(cfg Config, prob *Problem) *Result {
	p := cfg.Learners
	plan := cfg.Faults

	var rs *resumeState
	if cfg.ResumeFrom != "" {
		var err error
		if rs, err = loadResume(cfg); err != nil {
			panic(err)
		}
		// γp belongs to the original run's shape; restore it so rescaling
		// by OrigP/|live| lands on the same effective rate the original
		// run's survivors would use.
		cfg.GammaP = rs.meta.GammaP
	}
	origP := p
	dataRanks := make([]int, p)
	for i := range dataRanks {
		dataRanks[i] = i
	}
	startStep, startBoundary := 0, 0
	if rs != nil {
		origP = rs.meta.OrigP
		dataRanks = rs.ranks
		startStep, startBoundary = rs.meta.Step, rs.meta.Boundary
	}

	// Shards are partitioned by the ORIGINAL learner count so a
	// survivors-only resume trains on the survivors' own shards, not a
	// repartition of the whole set.
	shards := prob.Train.Partition(origP)
	bpe := batchesPerEpoch(shards, cfg.Batch)

	var clocks []comm.Clock
	var cost comm.CostModel
	if cfg.Sim != nil {
		clocks = cfg.Sim.Clocks()
		cost = cfg.Sim.CostModel()
	}
	var res *comm.Resilient
	if cfg.Transport != nil {
		// The same wire mesh carries every membership view (initial and
		// survivor re-forms); NewResilientOver insists it is all-local.
		res = comm.NewResilientOver(cfg.Transport, plan, clocks, cost, cfg.Tracer)
	} else {
		res = comm.NewResilient(p, plan, clocks, cost, cfg.Tracer)
	}
	cfg.Tracer.SetStats(func() interface{} { return res.Stats() })
	rec := newRecorder(prob)
	fleet := newFleet(cfg, p)
	var samples atomic.Int64
	var finalParams []float64
	var finalT int

	runLearners(p, func(runPhys int) {
		dataPhys := dataRanks[runPhys]
		net := prob.newReplica(cfg.Seed + int64(dataPhys))
		m := net.NumParams()
		params := net.ParamData()
		grads := net.GradData()
		tk := cfg.Tracer.Learner(runPhys)
		net.SetTrack(tk)
		fc := newFleetCollector(cfg, runPhys, p, fleet)
		fc.attach(net)

		if rs != nil {
			if len(rs.params) != m {
				panic(fmt.Sprintf("core: checkpoint has %d parameters, model has %d", len(rs.params), m))
			}
			copy(params, rs.params)
		}
		view := res.Current()
		// x ← broadcast(x, p, id); x′ ← x. On resume all replicas already
		// carry the checkpoint parameters and the broadcast is a no-op in
		// values; it still runs so the wire schedule matches a cold start.
		bs := tk.Begin()
		view.G.BroadcastTree(runPhys, params)
		tk.End(obs.PhaseBcast, bs)
		xref := append([]float64(nil), params...)
		gs := make([]float64, m)
		// Compression engine state (see compress.go). The resilient path
		// drives the codec synchronously per bucket instead of through the
		// bucketed worker because group membership can change between
		// boundaries; values are identical to the engine's async path.
		var (
			comp  comm.Compressor
			csegs []comm.Segment
			cres  []float64
			ratio float64
			acomp [2]float64
		)
		if cfg.compressionActive() {
			comp = cfg.newCompressor()
			csegs, _ = planBuckets(net.ParamSegments(), cfg.CommBuckets)
			cres = make([]float64, m)
			ratio = cfg.CompressK
		}

		sched := newTScheduler(cfg)
		if rs != nil {
			sched.restore(startBoundary, rs.meta.CurT)
		}
		// Hierarchical state: islands keyed by run-physical rank, the
		// working reference w and island accumulator hacc (see delayed.go
		// for the ledger discipline), re-partitioned on view changes.
		var (
			baseIsl   []int
			hier      *comm.Hier
			hierVer   int
			w, hacc   []float64
			outerLeft int
			hchunk    int
		)
		if cfg.HierGroups >= 2 {
			baseIsl = comm.BlockIslands(p, cfg.HierGroups)
			hier = hierForView(view, baseIsl)
			hierVer = view.Version
			w = append([]float64(nil), xref...)
			hacc = make([]float64, m)
			outerLeft = cfg.TOuter
			hchunk = cfg.CommChunk
			if cfg.Allreduce != AllreducePTree {
				hchunk = m
			}
		}
		// Delayed-application state: pend holds a completed global
		// aggregate awaiting its next-boundary application, with the
		// effective rate frozen at exchange time (membership may shrink
		// before it lands).
		var (
			pend   []float64
			pendG  float64
			pendOn bool
		)
		if cfg.DelayedApply {
			pend = make([]float64, m)
		}

		sampler := data.NewEpochSampler(shards[dataPhys].Len(), cfg.Batch, cfg.Seed+int64(dataPhys)*31+7)
		sampler.Skip(startStep)
		if cfg.Sim != nil {
			cfg.Sim.SkipBatches(runPhys, startStep)
			if k := plan.SlowFactor(runPhys); k > 1 {
				cfg.Sim.SetSlowdown(runPhys, k)
			}
		}
		slowSleep := plan.SlowSleepFor(runPhys)
		crashAt := plan.CrashBoundary(runPhys)

		var lastLoss float64
		step := startStep
		boundary := startBoundary
		next := startStep + sched.T()
		sync := 0
		startEpoch := startStep / bpe
		for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
			b0 := 0
			if epoch == startEpoch {
				b0 = startStep % bpe
			}
			for b := b0; b < bpe; b++ {
				idx := sampler.Next()
				x, y := shards[dataPhys].Batch(idx)
				lastLoss = net.Step(x, y)
				// x ← x − γ·g ; gs ← gs + g
				ls := tk.Begin()
				tensor.Axpy(-cfg.Gamma, grads, params)
				tensor.Axpy(1, grads, gs)
				tk.End(obs.PhaseLocalStep, ls)
				samples.Add(int64(len(idx)))
				if cfg.Sim != nil {
					cfg.Sim.ChargeBatch(runPhys, cfg.FlopsPerSample*float64(len(idx)))
				}
				if slowSleep > 0 {
					time.Sleep(slowSleep)
				}
				step++
				if step != next {
					continue
				}
				if crashAt >= 0 && boundary == crashAt {
					// Fail-stop: go silent without posting the boundary's
					// heartbeat. The peers detect and evict.
					res.Crash(runPhys)
					return
				}
				if fc != nil {
					// Drift against the reference the replica was reset to
					// at the last boundary (w under a hierarchy). Measured
					// before the membership sync: pure local reads.
					ref := xref
					if w != nil {
						ref = w
					}
					fc.boundaryStart(params, ref)
				}
				v, ok := res.Await(runPhys, sync)
				sync++
				if !ok {
					return // fenced: evicted as a presumed-dead straggler
				}
				view = v
				vr := view.RankOf(runPhys)
				// γp rescale: the aggregated gs now sums |live| learners'
				// gradients instead of OrigP, so the per-learner weight γp
				// is scaled by OrigP/|live| to keep the effective
				// per-gradient step unchanged.
				acfg := cfg
				acfg.GammaP = cfg.GammaP * float64(origP) / float64(view.Size())
				if hier != nil && view.Version != hierVer {
					// Membership changed: globalize the island ledgers
					// before re-partitioning. Averaging the survivors' w
					// yields the global mean model (every applied gradient
					// lives in some w); hacc and a pending outer aggregate
					// duplicate information w already carries and drop.
					view.G.AllreduceTree(vr, w)
					inv := 1.0 / float64(view.Size())
					for i := range w {
						w[i] *= inv
					}
					copy(xref, w)
					clear(hacc)
					pendOn = false
					outerLeft = cfg.TOuter
					hier = hierForView(view, baseIsl)
					hierVer = view.Version
				}
				switch {
				case hier != nil:
					ws := tk.Begin()
					hier.AllreduceIntra(vr, gs, hchunk, view.G.Clock(vr).Now())
					tk.End(obs.PhaseAggWait, ws)
					as := tk.Begin()
					tensor.Axpy(1, gs, hacc)
					// Island-local model averaging over the island's LIVE
					// members, at the original per-gradient weight.
					tensor.Axpy(-cfg.GammaP*float64(origP)/float64(hier.IslandSize(vr)), gs, w)
					tk.End(obs.PhaseAggApply, as)
					outerLeft--
					if outerLeft == 0 {
						outerLeft = cfg.TOuter
						ws = tk.Begin()
						if cfg.DelayedApply {
							// Deferred application: fold in the PREVIOUS
							// outer aggregate, rebase w, then exchange this
							// round's — synchronously, but applied only at
							// the next outer boundary.
							tk.End(obs.PhaseAggWait, ws)
							as = tk.Begin()
							if pendOn {
								tensor.Axpy(-pendG, pend, xref)
							}
							tensor.Copy(w, xref)
							tensor.Copy(pend, hacc)
							tk.End(obs.PhaseAggApply, as)
							ws = tk.Begin()
							hier.AllreduceInter(vr, pend, hchunk, view.G.Clock(vr).Now())
							tk.End(obs.PhaseAggWait, ws)
							pendG = acfg.GammaP
							pendOn = true
						} else {
							hier.AllreduceInter(vr, hacc, hchunk, view.G.Clock(vr).Now())
							tk.End(obs.PhaseAggWait, ws)
							as = tk.Begin()
							tensor.Axpy(-acfg.GammaP, hacc, xref)
							tensor.Copy(w, xref)
							tk.End(obs.PhaseAggApply, as)
						}
						clear(hacc)
					}
					as = tk.Begin()
					sched.advance(view.G, vr, view.Size(), params, w)
					tensor.Copy(params, w)
					clear(gs)
					tk.End(obs.PhaseAggApply, as)
				case comp != nil:
					if cfg.schedActive() {
						// Inline aggregateCompressedSync with the drift step
						// spliced between apply and reset, as in flatEager.
						ws := tk.Begin()
						ready := view.G.Clock(vr).Now()
						for bi := len(csegs) - 1; bi >= 0; bi-- {
							s := csegs[bi]
							comp.Allreduce(view.G, vr, gs[s.Off:s.Off+s.Len], cres[s.Off:s.Off+s.Len], ratio, ready, tk, int32(bi))
						}
						tk.End(obs.PhaseAggWait, ws)
						as := tk.Begin()
						tensor.Axpy(-acfg.GammaP, gs, xref)
						sched.advance(view.G, vr, view.Size(), params, xref)
						tensor.Copy(params, xref)
						clear(gs)
						tk.End(obs.PhaseAggApply, as)
					} else {
						aggregateCompressedSync(view.G, vr, acfg, csegs, comp, ratio, gs, cres, xref, params, tk)
					}
					if cfg.adaptActive() {
						acomp[0], acomp[1] = comp.TakeCapture()
						view.G.AllreduceTree(vr, acomp[:])
						ratio = nextRatio(ratio, cfg.CompressK, acomp[0], acomp[1])
					}
				case cfg.DelayedApply:
					// Flat delayed under faults: exchange now, apply at the
					// next boundary with the rate frozen at exchange time.
					ws := tk.Begin()
					switch cfg.Allreduce {
					case AllreduceRing:
						view.G.AllreduceRing(vr, gs)
					case AllreducePTree:
						view.G.AllreduceTreeChunked(vr, gs, cfg.CommChunk)
					case AllreduceRHD:
						view.G.AllreduceRHD(vr, gs)
					default:
						view.G.AllreduceTree(vr, gs)
					}
					tk.End(obs.PhaseAggWait, ws)
					as := tk.Begin()
					if pendOn {
						tensor.Axpy(-pendG, pend, xref)
					}
					sched.advance(view.G, vr, view.Size(), params, xref)
					tensor.Copy(params, xref)
					gs, pend = pend, gs
					pendG = acfg.GammaP
					pendOn = true
					clear(gs)
					tk.End(obs.PhaseAggApply, as)
				case cfg.schedActive():
					// Dense eager with the drift step spliced in, exactly
					// flatEager's operation order.
					ws := tk.Begin()
					switch cfg.Allreduce {
					case AllreduceRing:
						view.G.AllreduceRing(vr, gs)
					case AllreducePTree:
						view.G.AllreduceTreeChunked(vr, gs, cfg.CommChunk)
					case AllreduceRHD:
						view.G.AllreduceRHD(vr, gs)
					default:
						view.G.AllreduceTree(vr, gs)
					}
					tk.End(obs.PhaseAggWait, ws)
					if cfg.AggHook != nil && vr == 0 {
						cfg.AggHook(boundary, gs)
					}
					as := tk.Begin()
					tensor.Axpy(-acfg.GammaP, gs, xref)
					sched.advance(view.G, vr, view.Size(), params, xref)
					tensor.Copy(params, xref)
					clear(gs)
					tk.End(obs.PhaseAggApply, as)
				default:
					aggregate(view.G, vr, acfg, boundary, gs, xref, params, tk)
				}
				if fc != nil {
					var cratio, s2, r2 float64
					if comp != nil {
						cratio = ratio
						s2, r2 = comp.Totals()
					}
					fc.boundaryEnd(view.G, vr, sched.T(), cratio, s2, r2)
				}
				boundary++
				next = step + sched.T()
				if cfg.CheckpointPath != "" && view.RankOf(runPhys) == 0 && boundary%cfg.CheckpointEvery == 0 {
					live := make([]int, view.Size())
					for vr, pr := range view.Phys {
						live[vr] = dataRanks[pr]
					}
					meta := checkpointMeta{
						OrigP:    origP,
						Interval: cfg.Interval,
						Batch:    cfg.Batch,
						Seed:     cfg.Seed,
						GammaP:   cfg.GammaP,
						Step:     step,
						Boundary: boundary,
						CurT:     sched.T(),
						Live:     live,
					}
					if err := writeCheckpoint(checkpointFile(cfg.CheckpointPath, boundary), meta, xref); err != nil {
						panic(err)
					}
				}
			}
			if epoch == cfg.Epochs-1 && pendOn {
				// Flush the pending delayed aggregate before the final
				// evaluation; it is already complete (the exchange was
				// synchronous), so this is pure local arithmetic.
				as := tk.Begin()
				tensor.Axpy(-pendG, pend, xref)
				if hier != nil {
					tensor.Copy(w, xref)
					tensor.Copy(params, w)
				} else {
					tensor.Copy(params, xref)
				}
				pendOn = false
				tk.End(obs.PhaseAggApply, as)
			}
			// Collective epoch boundary: synchronize, let the current
			// view's virtual rank 0 record accuracy, synchronize again so
			// nobody races ahead into the next epoch during evaluation.
			v, ok := res.Await(runPhys, sync)
			sync++
			if !ok {
				return
			}
			view = v
			if view.RankOf(runPhys) == 0 && (epoch+1)%cfg.EvalEvery == 0 {
				simNow := 0.0
				if cfg.Sim != nil {
					simNow = cfg.Sim.MaxTime()
				}
				rec.record(epoch+1, params, lastLoss, simNow)
			}
			v, ok = res.Await(runPhys, sync)
			sync++
			if !ok {
				return
			}
			view = v
		}
		if view.RankOf(runPhys) == 0 {
			finalParams = append([]float64(nil), params...)
			finalT = sched.T()
		}
	})

	stats := res.Stats()
	res.Close()
	simTime, compute, communication := cfg.simSplits()
	return &Result{
		Algo:        AlgoSASGD,
		P:           p,
		T:           cfg.Interval,
		FinalT:      finalT,
		Curve:       rec.points(),
		Samples:     samples.Load(),
		SimTime:     simTime,
		SimCompute:  compute,
		SimComm:     communication,
		WordsMoved:  stats.Words,
		Comm:        stats,
		LiveP:       res.Current().Size(),
		FinalParams: finalParams,
	}
}

// hierForView re-partitions the hierarchy onto a membership view: each
// virtual rank keeps the island its run-physical rank belongs to in the
// base (topology-derived) partition, so survivors regroup with their
// physical neighbors and emptied islands disappear (NewHierOf
// normalizes island ids by first appearance).
func hierForView(v comm.View, baseIslandOf []int) *comm.Hier {
	isl := make([]int, v.Size())
	for vr, pr := range v.Phys {
		isl[vr] = baseIslandOf[pr]
	}
	return comm.NewHierOf(v.G, isl)
}

// checkpointFile resolves the configured checkpoint path for a
// boundary: a "%d" verb keeps one file per boundary (the chaos harness
// resumes from the boundary before a crash), a plain path is
// overwritten in place (normal operation keeps only the latest).
func checkpointFile(path string, boundary int) string {
	if strings.Contains(path, "%d") {
		return fmt.Sprintf(path, boundary)
	}
	return path
}
