package core

import (
	"sync/atomic"

	"sasgd/internal/comm"
	"sasgd/internal/data"
	"sasgd/internal/obs"
	"sasgd/internal/tensor"
)

// trainSASGD implements Algorithm 1 of the paper.
//
// Each of the p learners runs T local minibatch updates (x ← x − γ·g),
// accumulating every gradient it applied into gs. At the end of the
// interval the learners allreduce gs, apply the aggregated gradient to
// the shared reference parameters with the global rate γp
// (x′ ← x′ − γp·gs), reset their local replica to x′, and clear gs.
// Initial parameters are broadcast from learner 0. With γp = γ/p the
// aggregation step is exactly model averaging of the p local replicas,
// the heuristic the paper notes Algorithm 1 simulates.
//
// Gradient staleness is bounded by T by construction: no gradient is
// applied to the global parameters more than T local updates after it
// was computed, which is the property the paper contrasts with ASGD's
// scheduler-dependent staleness.
func trainSASGD(cfg Config, prob *Problem) *Result {
	p := cfg.Learners
	shards := prob.Train.Partition(p)
	bpe := batchesPerEpoch(shards, cfg.Batch)

	group := newTrainGroup(cfg, p)
	// Attach the tracer before the learner goroutines start: comm workers
	// pick up their trace tracks at creation, and the tracer's live stats
	// source serves the group's counters to the debug endpoint.
	group.SetTracer(cfg.Tracer)
	cfg.Tracer.SetStats(func() interface{} { return group.Stats() })
	rec := newRecorder(prob)
	fleet := newFleet(cfg, p)
	var samples atomic.Int64
	var finalParams []float64
	var finalRatio float64

	runLearnersOn(cfg.localRanks(p), func(rank int) {
		net := prob.newReplica(cfg.Seed + int64(rank))
		m := net.NumParams()
		params := net.ParamData()
		grads := net.GradData()
		tk := cfg.Tracer.Learner(rank)
		net.SetTrack(tk)
		fc := newFleetCollector(cfg, rank, p, fleet)
		fc.attach(net)

		// x ← broadcast(x, p, id); x′ ← x
		bs := tk.Begin()
		group.BroadcastTree(rank, params)
		tk.End(obs.PhaseBcast, bs)
		xref := append([]float64(nil), params...)
		gs := make([]float64, m)

		// Bucketed aggregation engine (see overlap.go): created for
		// backward-overlapped runs AND for every compressed run — the
		// codecs own the error-feedback residual and run one collective
		// per bucket, launched either from inside backward (overlap) or
		// all at once at the boundary (launchAll).
		var ov *overlapAggregator
		if cfg.overlapActive() || cfg.compressionActive() {
			ov = newOverlapAggregator(group, rank, cfg, net, gs, tk)
		}
		// Codec telemetry for the boundary health frame: the working
		// ratio and the cumulative captured/residual mass (Totals, not
		// TakeCapture — the adaptive controller consumes the capture).
		compTotals := func() (ratio, s2, r2 float64) {
			if ov != nil && ov.comp != nil {
				ratio = ov.ratio
				s2, r2 = ov.comp.Totals()
			}
			return
		}

		sampler := data.NewEpochSampler(shards[rank].Len(), cfg.Batch, cfg.Seed+int64(rank)*31+7)
		var lastLoss float64
		step := 0
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for b := 0; b < bpe; b++ {
				idx := sampler.Next()
				x, y := shards[rank].Batch(idx)
				if ov != nil && ov.overlap && (step+1)%cfg.Interval == 0 {
					// Overlapped aggregation batch. The batch's simulated
					// span is drawn up front (same single jitter draw per
					// batch as ChargeBatch, so the streams stay identical)
					// and the clock jumps to the batch's end before any
					// bucket launches; each bucket's send is then stamped
					// analytically with its layers' backward-completion
					// time inside the span.
					ov.start, ov.dt = 0, 0
					if cfg.Sim != nil {
						ov.start, ov.dt = cfg.Sim.BatchSpan(rank, cfg.FlopsPerSample*float64(len(idx)))
					}
					lastLoss = net.StepEach(x, y, ov.onLayerDone)
					ws := tk.Begin()
					ov.wait()
					tk.End(obs.PhaseAggWait, ws)
					fc.boundaryStart(params, xref)
					if cfg.AggHook != nil && rank == 0 && ov.comp == nil {
						cfg.AggHook((step+1)/cfg.Interval-1, gs)
					}
					// The serial path's local update x ← x − γ·g on this
					// batch is overwritten by x ← x′ below, so it is
					// skipped. x′ ← x′ − γp·gs ; x ← x′ ; gs ← 0.
					as := tk.Begin()
					tensor.Axpy(-cfg.GammaP, gs, xref)
					tensor.Copy(params, xref)
					clear(gs)
					tk.End(obs.PhaseAggApply, as)
					ov.adaptK(group, rank)
					ratio, s2, r2 := compTotals()
					fc.boundaryEnd(group, rank, cfg.Interval, ratio, s2, r2)
					samples.Add(int64(len(idx)))
					step++
					continue
				}
				lastLoss = net.Step(x, y)
				// x ← x − γ·g ; gs ← gs + g
				ls := tk.Begin()
				tensor.Axpy(-cfg.Gamma, grads, params)
				tensor.Axpy(1, grads, gs)
				tk.End(obs.PhaseLocalStep, ls)
				samples.Add(int64(len(idx)))
				if cfg.Sim != nil {
					cfg.Sim.ChargeBatch(rank, cfg.FlopsPerSample*float64(len(idx)))
				}
				step++
				if step%cfg.Interval == 0 {
					fc.boundaryStart(params, xref)
					if ov != nil && ov.comp != nil {
						// Compressed serial schedule: the same bucketed
						// engine as the overlap path, every bucket launched
						// at the boundary (values bitwise identical — each
						// bucket's codec collective is independent).
						ws := tk.Begin()
						ov.launchAll(group.Clock(rank).Now())
						ov.wait()
						tk.End(obs.PhaseAggWait, ws)
						as := tk.Begin()
						tensor.Axpy(-cfg.GammaP, gs, xref)
						tensor.Copy(params, xref)
						clear(gs)
						tk.End(obs.PhaseAggApply, as)
						ov.adaptK(group, rank)
					} else {
						aggregate(group, rank, cfg, step/cfg.Interval-1, gs, xref, params, tk)
					}
					ratio, s2, r2 := compTotals()
					fc.boundaryEnd(group, rank, cfg.Interval, ratio, s2, r2)
				}
			}
			// Collective epoch boundary: synchronize and let learner 0
			// record accuracy from its own replica (the paper collects
			// accuracy from one learner after each full pass).
			group.Barrier(rank)
			if rank == 0 && (epoch+1)%cfg.EvalEvery == 0 {
				simNow := 0.0
				if cfg.Sim != nil {
					simNow = cfg.Sim.MaxTime()
				}
				rec.record(epoch+1, params, lastLoss, simNow)
			}
			group.Barrier(rank)
		}
		if ov != nil {
			ov.close()
		}
		if rank == 0 {
			finalParams = append([]float64(nil), params...)
			if ov != nil && ov.comp != nil && cfg.Compress == CodecTopK {
				finalRatio = ov.ratio
			}
		}
	})

	simTime, compute, communication := cfg.simSplits()
	return &Result{
		Algo:        AlgoSASGD,
		P:           p,
		T:           cfg.Interval,
		Curve:       rec.points(),
		Samples:     samples.Load(),
		SimTime:     simTime,
		SimCompute:  compute,
		SimComm:     communication,
		WordsMoved:  group.WordsSent(),
		Comm:        group.Stats(),
		CompressK:   finalRatio,
		FinalParams: finalParams,
	}
}

// aggregate performs one dense global aggregation: allreduce gs with the
// configured collective, apply the aggregate to the reference parameters
// with γp, reset the local replica, clear gs. Compressed runs never come
// here — they go through the compression engine's bucketed path (see
// overlap.go and compress.go). On the serial path the blocking
// collective is recorded as the agg_wait span and the γp application as
// agg_apply, mirroring the overlapped path's spans so profiles compare
// like with like.
func aggregate(group *comm.Group, rank int, cfg Config, boundary int, gs, xref, params []float64, tk *obs.Track) {
	ws := tk.Begin()
	switch cfg.Allreduce {
	case AllreduceRing:
		group.AllreduceRing(rank, gs)
	case AllreducePTree:
		group.AllreduceTreeChunked(rank, gs, cfg.CommChunk)
	case AllreduceRHD:
		group.AllreduceRHD(rank, gs)
	default:
		group.AllreduceTree(rank, gs)
	}
	tk.End(obs.PhaseAggWait, ws)
	if cfg.AggHook != nil && rank == 0 {
		cfg.AggHook(boundary, gs)
	}
	// x′ ← x′ − γp·gs ; x ← x′ ; gs ← 0
	as := tk.Begin()
	tensor.Axpy(-cfg.GammaP, gs, xref)
	tensor.Copy(params, xref)
	clear(gs)
	tk.End(obs.PhaseAggApply, as)
}
