// Package core implements the paper's contribution and its baselines:
// SASGD (Algorithm 1 — bulk-synchronous SGD with a gradient-aggregation
// interval T and allreduce-based sparse aggregation), sequential SGD,
// Downpour (asynchronous SGD through a sharded parameter server), and
// EAMSGD (elastic-averaging asynchronous SGD with momentum). All four
// share the same learner harness, model replicas, data partitioning,
// epoch accounting, and optional fabric simulation, so their measured
// differences come from the algorithms alone.
package core

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"sasgd/internal/comm"
	"sasgd/internal/data"
	"sasgd/internal/netsim"
	"sasgd/internal/nn"
	"sasgd/internal/obs"
	obsmetrics "sasgd/internal/obs/metrics"
)

var (
	overlapOnce    sync.Once
	defaultOverlap bool
)

// DefaultOverlap reports whether the SASGD_OVERLAP environment variable
// requests backward-overlapped aggregation by default ("1" or "true";
// anything else, including unset, leaves the Config.OverlapComm zero
// value in charge). Mirrors comm.DefaultChunk's SASGD_COMM_CHUNK pattern
// so the experiment drivers pick the knob up without plumbing.
func DefaultOverlap() bool {
	overlapOnce.Do(func() {
		s := os.Getenv("SASGD_OVERLAP")
		defaultOverlap = s == "1" || s == "true"
	})
	return defaultOverlap
}

var (
	fastKernelsOnce    sync.Once
	defaultFastKernels bool
)

// DefaultFastKernels reports whether the SASGD_FAST_KERNELS environment
// variable requests the reordered-summation fast kernels by default ("1"
// or "true"; anything else, including unset, leaves the
// Config.FastKernels zero value in charge). Mirrors the SASGD_OVERLAP
// pattern so the experiment drivers pick the knob up without plumbing.
func DefaultFastKernels() bool {
	fastKernelsOnce.Do(func() {
		s := os.Getenv("SASGD_FAST_KERNELS")
		defaultFastKernels = s == "1" || s == "true"
	})
	return defaultFastKernels
}

var (
	compressOnce         sync.Once
	defaultCompressCodec string
	defaultCompressK     float64
)

// DefaultCompress returns the gradient-compression codec and top-k
// fraction requested by the SASGD_COMPRESS environment variable —
// "topk", "topk:0.05" or "qint8"; empty (the default) leaves
// compression off, and a malformed fraction is ignored (the codec's
// default applies). Config.withDefaults consults it when no codec was
// set explicitly, mirroring the -overlap/SASGD_OVERLAP precedence.
func DefaultCompress() (codec string, k float64) {
	compressOnce.Do(func() {
		s := os.Getenv("SASGD_COMPRESS")
		if s == "" {
			return
		}
		name, frac, ok := strings.Cut(s, ":")
		defaultCompressCodec = name
		if ok {
			if v, err := strconv.ParseFloat(frac, 64); err == nil && v > 0 {
				defaultCompressK = v
			}
		}
	})
	return defaultCompressCodec, defaultCompressK
}

var (
	schedOnce           sync.Once
	defaultTSched       string
	defaultHierGroups   int
	defaultDelayedApply bool
)

// DefaultSched returns the communication-schedule defaults requested by
// the SASGD_TSCHED, SASGD_HIER_GROUPS and SASGD_DELAYED environment
// variables: a T-scheduler mode ("static", "decay" or "adaptive"), a
// hierarchical group count, and whether the global gradient is applied
// one boundary late. Empty/unset leaves each Config zero value in
// charge, mirroring the SASGD_OVERLAP precedence.
func DefaultSched() (tsched string, hierGroups int, delayed bool) {
	schedOnce.Do(func() {
		defaultTSched = os.Getenv("SASGD_TSCHED")
		if s := os.Getenv("SASGD_HIER_GROUPS"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				defaultHierGroups = v
			}
		}
		s := os.Getenv("SASGD_DELAYED")
		defaultDelayedApply = s == "1" || s == "true"
	})
	return defaultTSched, defaultHierGroups, defaultDelayedApply
}

var (
	faultOnce        sync.Once
	defaultFaultSpec string
)

// DefaultFaultSpec returns the fault-plan spec requested by the
// SASGD_FAULTS environment variable (comm.ParseFaultPlan grammar, e.g.
// "seed=1,drop=0.05,slow=2:4,crash=3@10"); empty (the default) leaves
// fault injection off. Commands consult it when their -faults flag is
// unset, mirroring the -trace/SASGD_TRACE precedence.
func DefaultFaultSpec() string {
	faultOnce.Do(func() {
		defaultFaultSpec = os.Getenv("SASGD_FAULTS")
	})
	return defaultFaultSpec
}

var (
	transportOnce    sync.Once
	defaultTransport string
	defaultRank      = -1
	defaultPeers     string
)

// DefaultTransport returns the wire-transport defaults requested by the
// SASGD_TRANSPORT ("chan" or "tcp"), SASGD_RANK and SASGD_PEERS
// environment variables: the backend name, the single rank this
// process hosts (-1 = all ranks, TCP loopback), and the comma-separated
// rank→address list. Empty/unset leaves each command flag's zero value
// in charge, mirroring the -trace/SASGD_TRACE precedence.
func DefaultTransport() (transport string, rank int, peers string) {
	transportOnce.Do(func() {
		defaultTransport = os.Getenv("SASGD_TRANSPORT")
		if s := os.Getenv("SASGD_RANK"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v >= 0 {
				defaultRank = v
			}
		}
		defaultPeers = os.Getenv("SASGD_PEERS")
	})
	return defaultTransport, defaultRank, defaultPeers
}

var (
	metricsOnce    sync.Once
	defaultMetrics bool
)

// DefaultMetrics reports whether the SASGD_METRICS environment variable
// requests a metrics registry by default ("1" or "true"; anything else,
// including unset, leaves metrics off unless a -metrics flag asks).
// Commands consult it when their -metrics flag is unset, mirroring the
// -trace/SASGD_TRACE precedence.
func DefaultMetrics() bool {
	metricsOnce.Do(func() {
		s := os.Getenv("SASGD_METRICS")
		defaultMetrics = s == "1" || s == "true"
	})
	return defaultMetrics
}

var (
	traceOnce        sync.Once
	defaultTracePath string
)

// DefaultTracePath returns the Chrome-trace output path requested by
// the SASGD_TRACE environment variable: "1" or "true" select
// "trace.json", any other non-empty value is used as the path itself,
// and empty (the default) leaves tracing off. Commands consult it when
// their -trace flag is unset, mirroring the -overlap/SASGD_OVERLAP
// precedence.
func DefaultTracePath() string {
	traceOnce.Do(func() {
		switch s := os.Getenv("SASGD_TRACE"); s {
		case "":
		case "1", "true":
			defaultTracePath = "trace.json"
		default:
			defaultTracePath = s
		}
	})
	return defaultTracePath
}

// Algorithm identifies one of the implemented training algorithms.
type Algorithm string

// The implemented algorithms.
const (
	AlgoSGD      Algorithm = "sgd"      // sequential baseline (p = 1)
	AlgoSASGD    Algorithm = "sasgd"    // the paper's Algorithm 1
	AlgoDownpour Algorithm = "downpour" // parameter-server ASGD (Dean et al.)
	AlgoEAMSGD   Algorithm = "eamsgd"   // elastic averaging ASGD (Zhang et al.)
	AlgoHogwild  Algorithm = "hogwild"  // lock-free shared-memory ASGD (Niu et al.)
)

// AllreduceAlgo selects the collective implementation SASGD aggregates
// with.
type AllreduceAlgo string

// The implemented allreduce algorithms. The default stays "tree" so
// default-config results are bit-stable across releases; "ptree" is
// bitwise identical to "tree" (same summation order, chunked wire
// schedule), while "rhd" reassociates the sum and is value-equal within
// floating-point tolerance only.
const (
	AllreduceTree  AllreduceAlgo = "tree"  // binomial tree (paper's O(m log p))
	AllreduceRing  AllreduceAlgo = "ring"  // bandwidth-optimal ring (ablation)
	AllreducePTree AllreduceAlgo = "ptree" // chunked, pipelined binomial tree
	AllreduceRHD   AllreduceAlgo = "rhd"   // recursive halving/doubling (Rabenseifner); power-of-two p, tree fallback
)

// Gradient-compression codec names for Config.Compress.
const (
	CodecTopK  = "topk"  // error-feedback top-k sparsification
	CodecQInt8 = "qint8" // int8 quantization with a shared per-bucket scale
)

// T-scheduler modes for Config.TSched (see schedule.go).
const (
	TSchedStatic   = "static"   // fixed T = Interval (the paper's schedule, via the scheduled path)
	TSchedDecay    = "decay"    // T starts at 1 and doubles every tDecayEvery boundaries up to Interval
	TSchedAdaptive = "adaptive" // T widens/narrows in lockstep from the allreduced replica-drift norm
)

// Config parameterizes a training run. The field names follow the
// paper's notation (Table III): p learners, aggregation interval T,
// minibatch size M, local learning rate γ and global rate γp.
type Config struct {
	Algo     Algorithm
	Learners int     // p: number of learners
	Interval int     // T: local updates between aggregations
	Batch    int     // M: minibatch size
	Gamma    float64 // γ: local learning rate
	// GammaP is SASGD's global aggregation rate γp. Zero selects γ/p,
	// which makes the aggregation step exactly model averaging of the
	// local replicas (the heuristic the paper says Algorithm 1 simulates
	// with its "1/p" choice).
	GammaP float64
	Epochs int // collective passes over the training data
	Seed   int64

	// Parameter-server settings (Downpour, EAMSGD).
	Shards int // sharded-server shard count (default: min(8, p))

	// EAMSGD settings.
	Alpha float64 // elastic rate α (default 0.9/p, as in Zhang et al.)
	// Momentum is EAMSGD's local momentum μ. Zero selects the default
	// 0.3 (calibrated to the reduced-scale workloads; the original
	// paper's 0.9 assumes far smaller effective learning rates); any
	// negative value disables momentum.
	Momentum float64

	// SASGD collective selection (default tree).
	Allreduce AllreduceAlgo

	// CommChunk is the pipelined collective's chunk size in float64
	// words (AllreducePTree only). Zero selects the comm package default
	// (the SASGD_COMM_CHUNK environment variable, else 8192).
	CommChunk int

	// OverlapComm enables bucketed, backward-overlapped aggregation: on
	// the T-th minibatch of each interval, the gradient buffer is split
	// into CommBuckets contiguous buckets at layer boundaries and each
	// bucket's allreduce is launched the moment the backward pass has
	// finalized its layers' gradients, overlapping communication with the
	// remainder of backprop. Results are bitwise identical to the serial
	// path for the tree family ("tree"/"ptree"; "rhd" is value-equal as
	// always) and for every compression codec (per-bucket codec
	// collectives are independent and deterministic, so the launch
	// schedule cannot change values). Only the ring collective falls
	// back to the serial path. The SASGD_OVERLAP environment variable
	// ("1"/"true") turns it on by default for every run, which is how
	// the experiment drivers pick it up.
	OverlapComm bool

	// CommBuckets is the number of gradient buckets for OverlapComm:
	// per-layer segments are grouped into this many contiguous,
	// word-balanced buckets. Values ≤ 0 (or above the parameterized layer
	// count) select one bucket per parameterized layer.
	CommBuckets int

	// Compress selects the gradient-compression codec for SASGD
	// aggregation: "" (dense — the paper's Algorithm 1), CodecTopK
	// (error-feedback top-k sparsification) or CodecQInt8 (int8
	// quantization with a shared per-bucket scale, residual-fed so it
	// composes with error feedback). Compressed aggregation always runs
	// through the bucketed engine — each bucket's codec collective is
	// launched per bucket, composing with OverlapComm — and ignores
	// Allreduce (the codec brings its own collective). The
	// SASGD_COMPRESS environment variable ("topk", "topk:0.05",
	// "qint8") supplies the default when neither Compress nor
	// CompressTopK is set.
	Compress string

	// CompressK is the top-k sparsity fraction for CodecTopK: each
	// bucket ships its ⌊CompressK·len⌋ (at least 1) largest-magnitude
	// entries, and the unsent remainder accumulates in a per-learner
	// error-feedback residual that is folded back before the next
	// selection. Zero selects 0.05; values ≥ 1 ship everything, which
	// is dense aggregation and runs the true dense path (bitwise
	// identical to Compress == ""). Ignored by CodecQInt8.
	CompressK float64

	// CompressAdapt enables the adaptive-sparsity controller for
	// CodecTopK: after each aggregation, the learners allreduce the
	// squared norms of the sent and unsent gradient parts and grow or
	// shrink the working fraction to hold the globally captured
	// gradient-mass share inside a target band (see nextRatio in
	// compress.go). Deterministic — every learner sees identical global
	// stats and applies the identical update. The final fraction is
	// reported in Result.CompressK.
	CompressAdapt bool

	// CompressTopK is the original name of the top-k knob, kept for
	// compatibility: a value in (0, 1) is equivalent to Compress =
	// CodecTopK with CompressK set to it, and values ≥ 1 run the dense
	// path. Ignored when Compress is set explicitly.
	CompressTopK float64

	// TSched selects the communication-period scheduler for SASGD (see
	// schedule.go): "" runs the legacy fixed-T loop untouched;
	// TSchedStatic runs the same fixed T through the scheduled path
	// (bitwise identical — the degenerate pin); TSchedDecay starts at
	// T = 1 and doubles the period every tDecayEvery boundaries up to
	// Interval (Stich's communicate-early schedule); TSchedAdaptive
	// starts at Interval and widens/narrows the period from the
	// allreduced replica-drift norm ‖x_i − x̄‖, in lockstep, so runs
	// stay deterministic. The SASGD_TSCHED environment variable supplies
	// the default. The scheduled path ignores OverlapComm (delayed
	// application is its stronger replacement: it hides communication
	// behind the whole next round, not one backward pass).
	TSched string

	// HierGroups ≥ 2 partitions the learners into that many contiguous
	// islands (comm.BlockIslands — matching netsim's switch islands) and
	// runs two-level aggregation: an intra-island allreduce at every
	// communication boundary, and the cross-island exchange only every
	// TOuter boundaries. Inside an island the reference moves at the
	// island-local model-averaging rate γp·p/q (q = island size); the
	// globally consistent reference absorbs every island's accumulated
	// aggregate at each outer exchange, so each gradient's final weight
	// in the global model is exactly γp. 0/1 (default) is flat
	// aggregation. The SASGD_HIER_GROUPS environment variable supplies
	// the default.
	HierGroups int

	// TOuter is the number of communication boundaries between
	// cross-island exchanges when HierGroups ≥ 2 (default 4).
	TOuter int

	// DelayedApply applies each boundary's global aggregate one boundary
	// LATE (DaSGD): the allreduce is launched through the bucketed comm
	// worker at boundary k and its result applied at boundary k+1, so
	// the entire exchange hides behind the next round's compute instead
	// of one backward pass. The one-round shift changes the trajectory
	// (the k-th aggregate reflects boundary k's gradients but lands at
	// k+1); a run with a single boundary, and the first aggregate of any
	// run, are bitwise identical to eager application. Under a
	// hierarchical schedule only the outer (cross-island) exchange is
	// delayed — the intra-island allreduce is cheap and stays eager.
	// Requires a tree-family or compressed collective (ring has no
	// bucketed form; configuring both panics rather than silently
	// un-delaying). The SASGD_DELAYED environment variable ("1"/"true")
	// supplies the default.
	DelayedApply bool

	// VirtualTime serializes the asynchronous algorithms' learner steps
	// in virtual-clock order (see vtime.go), making Downpour, EAMSGD and
	// Hogwild runs deterministic at the cost of scheduler realism. It has
	// no effect on the bulk-synchronous algorithms, which are
	// deterministic already.
	VirtualTime bool

	// Workers is the per-learner intra-op worker budget for the parallel
	// tensor kernels. Zero selects the automatic split ⌊W/p⌋ (at least
	// 1), where W is the process-wide budget from SASGD_WORKERS or
	// GOMAXPROCS, so p learners × w workers never oversubscribe the
	// machine. Parallel kernels are bitwise identical to serial ones, so
	// this setting affects wall-clock time only, never results.
	Workers int

	// FastKernels selects the reordered-summation tensor kernels
	// (four-accumulator dot products) for the duration of the run. They
	// are value-equal to the default kernels within ≤1e-12 relative
	// tolerance but not bitwise identical to them, so runs flip this only
	// when throughput matters more than bit-stability against the
	// default-path reference results. Either setting is itself bitwise
	// reproducible across worker counts. The SASGD_FAST_KERNELS
	// environment variable ("1"/"true") turns it on by default.
	FastKernels bool

	// EvalEvery records accuracy every this many collective epochs
	// (default 1). Evaluation itself is never charged to simulated time.
	EvalEvery int

	// Tracer, when non-nil, records per-learner phase spans (forward,
	// backward, local step, bucket begins, aggregation wait/apply) and
	// per-rank comm-worker spans into obs ring buffers, for Chrome-trace
	// export and phase-latency profiles after the run. It also attaches
	// to the comm group, enabling mailbox-wait and pipeline-occupancy
	// accounting in the group's Stats. Applies to the collective
	// (SASGD/SGD) path; nil (the default) keeps every probe on its
	// nil-check-only fast path.
	Tracer *obs.Tracer

	// Metrics, when non-nil, attaches the time-series metrics registry
	// (internal/obs/metrics) to the run: learners record per-rank phase
	// latencies and boundary health frames, every aggregation boundary
	// piggybacks a fixed-size fleet frame on an extra allreduce over the
	// training group (traffic-pinned: boundaries × FrameTrafficWords(p)
	// words), and rank 0 ingests the fleet view — live ranks, effective
	// T, replica-drift RMS, compression capture, straggler anomalies —
	// into the registry's gauges, event log and anomaly detector. The
	// frame rides its own buffer, so enabling metrics never changes
	// training values: FinalParams is bitwise identical with metrics on
	// or off (simulated times do shift — the frame exchange is charged to
	// the fabric like any other traffic). Nil (the default) keeps every
	// probe on its nil-check-only fast path. SASGD collective paths only;
	// the other algorithms ignore it.
	Metrics *obsmetrics.Registry

	// Sim, when non-nil, attaches the fabric simulator: compute and
	// communication are charged to per-learner clocks and the result
	// carries simulated epoch times and compute/communication splits.
	Sim *netsim.Sim
	// FlopsPerSample is the paper-scale training cost per sample charged
	// to the simulator (ignored when Sim is nil).
	FlopsPerSample float64

	// Faults, when non-nil, injects the plan's failures (message drops,
	// link delays, learner slowdowns, crash schedules) into the run and
	// routes SASGD through the crash-tolerant path: acknowledged
	// point-to-point delivery with timeout/retry, heartbeat-based
	// straggler eviction, survivor re-formation with γp rescaled by
	// OrigP/live, and fault counters in Result.Comm.Faults. SASGD only —
	// the other algorithms panic. Overlapped aggregation falls back to
	// the serial path under faults.
	Faults *comm.FaultPlan

	// CheckpointPath, when non-empty, makes the run write a training
	// checkpoint (reference parameters + step counters, see
	// checkpoint.go) atomically to this path at aggregation boundaries.
	CheckpointPath string
	// CheckpointEvery writes the checkpoint every this many aggregation
	// boundaries (default 1 = every boundary).
	CheckpointEvery int
	// ResumeFrom, when non-empty, resumes a run from the named
	// checkpoint: parameters are restored, γp is taken from the
	// checkpoint, and each learner's sample stream is fast-forwarded to
	// the recorded step. The run must match the checkpoint's T, batch
	// size and seed. SASGD only.
	ResumeFrom string
	// ResumeRanks names which of the original run's data-physical ranks
	// this run's learners play (strictly ascending, one per learner), for
	// resuming with only the survivors of a crash. Nil means all ranks,
	// requiring Learners == the checkpoint's OrigP.
	ResumeRanks []int

	// Transport, when non-nil, carries the run's point-to-point frames
	// instead of the default in-process channel fabric:
	// comm.NewTCPLoopback for socket-backed single-process runs, or a
	// comm.NewTCPTransport mesh endpoint for genuinely multi-process
	// training (see LocalRanks). Its Size must equal Learners. SASGD
	// collective paths only. Train leaves closing the transport to the
	// caller, with one exception: a fault-injected (resilient) run's
	// membership layer closes its mesh on exit, since re-formed views
	// share it. Transport Close is idempotent either way.
	Transport comm.Transport

	// LocalRanks names the learner ranks THIS process drives (strictly
	// ascending), for multi-process training over a partial Transport
	// mesh: every process runs the same Config apart from LocalRanks,
	// hosts only its own learners, and the collectives meet on the
	// wire. Nil (the default) drives all of them in-process. Requires
	// Transport; composes with neither the simulator (per-rank clocks
	// are shared memory) nor fault injection/checkpoint-resume (the
	// membership ledger is in-process). The accuracy curve and
	// FinalParams are recorded by rank 0, so only the process hosting
	// rank 0 reports them.
	LocalRanks []int

	// AggHook, when non-nil, is called by virtual rank 0 synchronously
	// after each dense aggregation allreduce with the boundary index and
	// the post-allreduce aggregated gradient (before γp is applied). The
	// hook must copy the slice if it retains it. Test instrumentation —
	// the chaos harness uses it to compare aggregated gradients bitwise
	// across fault-free and degraded runs. Dense aggregation only; the
	// compression engine (Compress/CompressTopK) does not invoke it.
	AggHook func(boundary int, gs []float64)
}

// withDefaults validates cfg and fills defaulted fields.
func (c Config) withDefaults() Config {
	if c.Learners <= 0 || c.Algo == AlgoSGD {
		c.Learners = 1
	}
	if c.Interval <= 0 {
		c.Interval = 1
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Gamma <= 0 {
		panic(fmt.Sprintf("core: config needs a positive learning rate, got %g", c.Gamma))
	}
	if c.GammaP == 0 {
		c.GammaP = c.Gamma / float64(c.Learners)
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.Shards <= 0 {
		c.Shards = c.Learners
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.Alpha == 0 {
		c.Alpha = 0.9 / float64(c.Learners)
	}
	// Momentum: zero selects the default; pass any negative value for
	// plain (momentum-free) local SGD.
	if c.Momentum == 0 {
		c.Momentum = 0.3
	}
	if c.Momentum < 0 {
		c.Momentum = 0
	}
	if c.Allreduce == "" {
		c.Allreduce = AllreduceTree
	}
	// Compression-codec normalization: the legacy CompressTopK knob maps
	// onto the engine, the SASGD_COMPRESS env supplies a default when
	// nothing was set explicitly, and "ship everything" degenerates to
	// the true dense path (bitwise identical to Algorithm 1).
	if c.Compress == "" && c.CompressTopK > 0 && c.CompressTopK < 1 {
		c.Compress, c.CompressK = CodecTopK, c.CompressTopK
	}
	if c.Compress == "" && c.CompressTopK == 0 {
		if codec, k := DefaultCompress(); codec != "" {
			c.Compress = codec
			if c.CompressK == 0 {
				c.CompressK = k
			}
		}
	}
	if c.Compress == "none" {
		c.Compress = ""
	}
	switch c.Compress {
	case "", CodecQInt8:
	case CodecTopK:
		if c.CompressK < 0 {
			panic(fmt.Sprintf("core: CompressK must be non-negative, got %g", c.CompressK))
		}
		if c.CompressK == 0 {
			c.CompressK = 0.05
		}
		if c.CompressK >= 1 {
			c.Compress = ""
		}
	default:
		panic(fmt.Sprintf("core: unknown compression codec %q (want %q or %q)", c.Compress, CodecTopK, CodecQInt8))
	}
	if !c.OverlapComm && DefaultOverlap() {
		c.OverlapComm = true
	}
	if !c.FastKernels && DefaultFastKernels() {
		c.FastKernels = true
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if (c.Faults != nil || c.ResumeFrom != "") && c.Algo != AlgoSASGD && c.Algo != "" {
		panic(fmt.Sprintf("core: fault injection and checkpoint resume support SASGD only, got algo %q", c.Algo))
	}
	if c.Transport != nil {
		if c.Algo != AlgoSASGD && c.Algo != "" {
			panic(fmt.Sprintf("core: an explicit wire transport supports SASGD only, got algo %q", c.Algo))
		}
		if n := c.Transport.Size(); n != c.Learners {
			panic(fmt.Sprintf("core: transport spans %d ranks, run has %d learners", n, c.Learners))
		}
	}
	if len(c.LocalRanks) > 0 {
		if c.Transport == nil {
			panic("core: LocalRanks needs an explicit Transport (the omitted ranks live in other processes)")
		}
		if c.Sim != nil || c.Faults != nil || c.ResumeFrom != "" || c.CheckpointPath != "" {
			panic("core: LocalRanks composes with neither the fabric simulator nor fault injection/checkpointing (both keep per-rank state in process memory)")
		}
		prev := -1
		for _, r := range c.LocalRanks {
			if r <= prev || r >= c.Learners {
				panic(fmt.Sprintf("core: LocalRanks %v must be strictly ascending ranks below Learners %d", c.LocalRanks, c.Learners))
			}
			prev = r
		}
	}
	// Communication-schedule knobs: env defaults, then validation.
	envT, envG, envD := DefaultSched()
	if c.TSched == "" {
		c.TSched = envT
	}
	if c.HierGroups == 0 {
		c.HierGroups = envG
	}
	if !c.DelayedApply && envD {
		c.DelayedApply = true
	}
	switch c.TSched {
	case "", TSchedStatic, TSchedDecay, TSchedAdaptive:
	default:
		panic(fmt.Sprintf("core: unknown T-scheduler %q (want %q, %q or %q)",
			c.TSched, TSchedStatic, TSchedDecay, TSchedAdaptive))
	}
	if c.HierGroups < 0 {
		c.HierGroups = 0
	}
	if c.HierGroups > c.Learners {
		c.HierGroups = c.Learners
	}
	if c.TOuter <= 0 {
		c.TOuter = 4
	}
	if c.schedActive() {
		if c.Algo != AlgoSASGD && c.Algo != "" {
			panic(fmt.Sprintf("core: the communication scheduler supports SASGD only, got algo %q", c.Algo))
		}
		if c.DelayedApply && c.Allreduce == AllreduceRing {
			// Delay changes the algorithm, so it must never be silently
			// dropped the way overlap falls back for ring.
			panic("core: DelayedApply needs a bucketed collective (tree/ptree/rhd or a codec); ring has none")
		}
		if (c.DelayedApply || c.HierGroups >= 2) && (c.CheckpointPath != "" || c.ResumeFrom != "") {
			// A boundary checkpoint relies on the replica==reference,
			// gs==0 invariant, which a pending delayed aggregate or a
			// mid-outer-round island reference breaks.
			panic("core: checkpointing composes with the T-scheduler but not with DelayedApply or HierGroups")
		}
		if c.Faults != nil && c.Compress != "" && (c.DelayedApply || c.HierGroups >= 2) {
			// Under fault injection the codecs compose with the
			// T-scheduler only; the membership-aware hierarchical and
			// delayed boundaries run dense.
			panic("core: under fault injection, compression composes with TSched but not with DelayedApply or HierGroups")
		}
	}
	return c
}

// schedActive reports whether the run uses the scheduled SASGD path
// (any of the three communication-schedule policies). An explicit
// TSchedStatic forces the scheduled path even though it computes the
// same schedule as the legacy loop — that is the degenerate pin.
func (c Config) schedActive() bool {
	return c.TSched != "" || c.HierGroups >= 2 || c.DelayedApply
}

// ModelFactory builds one learner's model replica. Each learner calls it
// with a distinct seed (for dropout masks); initial parameters are then
// overwritten by a broadcast from learner 0, as in Algorithm 1.
type ModelFactory func(seed int64) *nn.Network

// Problem bundles a workload: the model factory and the train/test data.
type Problem struct {
	Name  string
	Model ModelFactory
	Train *data.Dataset
	Test  *data.Dataset
}

// newReplica builds and seeds a learner's model.
func (p *Problem) newReplica(seed int64) *nn.Network {
	net := p.Model(seed)
	if net == nil {
		panic("core: model factory returned nil")
	}
	return net
}
