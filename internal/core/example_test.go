package core_test

import (
	"fmt"
	"math/rand"

	"sasgd/internal/core"
	"sasgd/internal/data"
	"sasgd/internal/nn"
	"sasgd/internal/tensor"
)

// Train SASGD on a toy two-class problem with two learners. SASGD is
// bulk-synchronous, so — unlike the asynchronous baselines — the result
// is fully deterministic and its measured gradient staleness is zero.
func ExampleTrain() {
	gen := func(n int, seed int64) *data.Dataset {
		rng := rand.New(rand.NewSource(seed))
		d := &data.Dataset{X: tensor.New(n, 2), Y: make([]int, n), SampleShape: []int{2}, Classes: 2}
		for i := 0; i < n; i++ {
			k := rng.Intn(2)
			d.Y[i] = k
			d.X.Data[i*2+k] = 1 + rng.NormFloat64()*0.1
		}
		return d
	}
	prob := &core.Problem{
		Name: "toy",
		Model: func(seed int64) *nn.Network {
			return nn.NewNetwork([]int{2}, nn.NewLinear(rand.New(rand.NewSource(seed)), 2, 2))
		},
		Train: gen(64, 1),
		Test:  gen(32, 2),
	}
	res := core.Train(core.Config{
		Algo: core.AlgoSASGD, Learners: 2, Interval: 4,
		Gamma: 0.5, Batch: 8, Epochs: 8, Seed: 1,
	}, prob)
	fmt.Printf("test accuracy = %.0f%%, staleness = %d\n", 100*res.FinalTest, res.StalenessMax)
	// Output:
	// test accuracy = 100%, staleness = 0
}
