package core

import "testing"

func benchTrain(b *testing.B, algo Algorithm, p int) {
	b.Helper()
	prob := tinyProblem(512, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(Config{
			Algo: algo, Learners: p, Interval: 5, Gamma: 0.1,
			Batch: 16, Epochs: 2, Seed: 1, EvalEvery: 2,
		}, prob)
	}
}

func BenchmarkTrainSGD(b *testing.B)       { benchTrain(b, AlgoSGD, 1) }
func BenchmarkTrainSASGD4(b *testing.B)    { benchTrain(b, AlgoSASGD, 4) }
func BenchmarkTrainSASGD16(b *testing.B)   { benchTrain(b, AlgoSASGD, 16) }
func BenchmarkTrainDownpour4(b *testing.B) { benchTrain(b, AlgoDownpour, 4) }
func BenchmarkTrainEAMSGD4(b *testing.B)   { benchTrain(b, AlgoEAMSGD, 4) }
