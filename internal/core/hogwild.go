package core

import (
	"math"
	"sync/atomic"

	"sasgd/internal/data"
)

// trainHogwild implements Hogwild (Niu et al., cited by the paper as the
// lock-free ASGD whose linear-speedup analysis started the line of work
// SASGD responds to): all learners share ONE parameter vector with no
// locks and no server. Each learner snapshots the shared parameters,
// computes a minibatch gradient against the (possibly torn) snapshot,
// and applies it coordinate-by-coordinate with atomic compare-and-swap —
// the Go-safe rendering of Hogwild's racy in-place updates. The original
// analysis assumes sparse gradients; with dense deep-learning gradients
// the algorithm is "dense Hogwild", which is exactly the regime where
// the paper argues asynchrony starts to hurt.
func trainHogwild(cfg Config, prob *Problem) *Result {
	p := cfg.Learners
	shards := prob.Train.Partition(p)
	bpe := batchesPerEpoch(shards, cfg.Batch)

	init := prob.newReplica(cfg.Seed)
	m := init.NumParams()
	shared := make([]uint64, m)
	for i, v := range init.ParamData() {
		shared[i] = math.Float64bits(v)
	}

	rec := newRecorder(prob)
	var samples atomic.Int64
	var finalParams []float64
	var gate *virtualGate
	if cfg.VirtualTime {
		gate = newVirtualGate(p)
	}

	runLearners(p, func(rank int) {
		pacer := newPacer(gate, rank, &cfg)
		defer pacer.finish()
		net := prob.newReplica(cfg.Seed + int64(rank))
		params := net.ParamData()
		grads := net.GradData()
		sampler := data.NewEpochSampler(shards[rank].Len(), cfg.Batch, cfg.Seed+int64(rank)*31+7)
		var lastLoss float64
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for b := 0; b < bpe; b++ {
				pacer.begin()
				// Snapshot the shared vector (per-word atomic loads; the
				// vector as a whole may be torn across concurrent writers,
				// which is Hogwild's defining property).
				for i := range params {
					params[i] = math.Float64frombits(atomic.LoadUint64(&shared[i]))
				}
				idx := sampler.Next()
				x, y := shards[rank].Batch(idx)
				lastLoss = net.Step(x, y)
				samples.Add(int64(len(idx)))
				if cfg.Sim != nil {
					cfg.Sim.ChargeBatch(rank, cfg.FlopsPerSample*float64(len(idx)))
				}
				// Lock-free coordinate updates: x[i] ← x[i] − γ·g[i].
				for i, g := range grads {
					if g == 0 {
						continue
					}
					delta := cfg.Gamma * g
					for {
						old := atomic.LoadUint64(&shared[i])
						nw := math.Float64bits(math.Float64frombits(old) - delta)
						if atomic.CompareAndSwapUint64(&shared[i], old, nw) {
							break
						}
					}
				}
				pacer.end()
			}
			if rank == 0 && (epoch+1)%cfg.EvalEvery == 0 {
				snap := make([]float64, m)
				for i := range snap {
					snap[i] = math.Float64frombits(atomic.LoadUint64(&shared[i]))
				}
				simNow := 0.0
				if cfg.Sim != nil {
					simNow = cfg.Sim.MaxTime()
				}
				rec.record(epoch+1, snap, lastLoss, simNow)
			}
		}
		if rank == 0 {
			finalParams = make([]float64, m)
			for i := range finalParams {
				finalParams[i] = math.Float64frombits(atomic.LoadUint64(&shared[i]))
			}
		}
	})

	simTime, compute, communication := cfg.simSplits()
	return &Result{
		Algo:        AlgoHogwild,
		P:           p,
		T:           cfg.Interval,
		Curve:       rec.points(),
		Samples:     samples.Load(),
		SimTime:     simTime,
		SimCompute:  compute,
		SimComm:     communication,
		FinalParams: finalParams,
	}
}
