package core

import (
	"bytes"
	"strings"
	"testing"

	"sasgd/internal/comm"
	"sasgd/internal/netsim"
	obsmetrics "sasgd/internal/obs/metrics"
)

// TestMetricsBitwiseIdentical pins the observability contract: attaching
// a metrics registry must not change a single bit of the training
// result. The fleet frame rides its own buffer and its allreduce touches
// no gradient state, so FinalParams is bitwise equal with metrics on or
// off across every SASGD path — legacy, overlapped, compressed,
// scheduled (adaptive T, hierarchical, delayed), and fault-handling.
func TestMetricsBitwiseIdentical(t *testing.T) {
	prob := tinyProblem(48, 24, 5)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"legacy-dense", func(c *Config) {}},
		{"legacy-overlap-topk", func(c *Config) {
			c.OverlapComm = true
			c.Compress = CodecTopK
			c.CompressK = 0.1
		}},
		{"sched-adaptive", func(c *Config) { c.TSched = TSchedAdaptive }},
		{"hier-delayed", func(c *Config) {
			c.Learners = 4
			c.HierGroups = 2
			c.TOuter = 2
			c.DelayedApply = true
		}},
		{"faults", func(c *Config) {
			c.Faults = mustPlan(t, "seed=3,crash=3@2")
		}},
	} {
		base := Config{
			Algo: AlgoSASGD, Learners: 4, Interval: 2, Gamma: 0.05,
			Batch: 4, Epochs: 2, Seed: 9,
		}
		tc.mut(&base)
		plain := Train(base, prob)

		cfg := base
		if cfg.Faults != nil {
			cfg.Faults = mustPlan(t, "seed=3,crash=3@2")
		}
		cfg.Metrics = obsmetrics.New()
		metered := Train(cfg, prob)

		if len(plain.FinalParams) == 0 || len(plain.FinalParams) != len(metered.FinalParams) {
			t.Fatalf("%s: param count mismatch (%d vs %d)", tc.name,
				len(plain.FinalParams), len(metered.FinalParams))
		}
		for i := range plain.FinalParams {
			if plain.FinalParams[i] != metered.FinalParams[i] {
				t.Fatalf("%s: metrics changed training at param %d: %g vs %g",
					tc.name, i, plain.FinalParams[i], metered.FinalParams[i])
			}
		}
		// The run must actually have produced a fleet view, not silently
		// skipped collection.
		snap := cfg.Metrics.Fleet().Snapshot()
		if snap == nil || snap.Boundaries == 0 {
			t.Fatalf("%s: no fleet boundaries ingested", tc.name)
		}
		if snap.DriftRMS < 0 {
			t.Fatalf("%s: negative drift RMS", tc.name)
		}
	}
}

// TestMetricsFrameTrafficPinned pins the frame's wire cost exactly: the
// only traffic metrics adds is one p·FrameWords tree allreduce per
// boundary, FrameTrafficWords(p) words each.
func TestMetricsFrameTrafficPinned(t *testing.T) {
	prob := tinyProblem(48, 24, 5)
	const p = 4
	base := Config{
		Algo: AlgoSASGD, Learners: p, Interval: 2, Gamma: 0.05,
		Batch: 4, Epochs: 2, Seed: 9,
	}
	plain := Train(base, prob)

	cfg := base
	cfg.Metrics = obsmetrics.New()
	metered := Train(cfg, prob)

	snap := cfg.Metrics.Fleet().Snapshot()
	if snap.Boundaries == 0 {
		t.Fatal("no boundaries ingested")
	}
	wantExtra := int64(snap.Boundaries) * obsmetrics.FrameTrafficWords(p)
	if got := metered.WordsMoved - plain.WordsMoved; got != wantExtra {
		t.Fatalf("metrics added %d words over %d boundaries, want exactly %d",
			got, snap.Boundaries, wantExtra)
	}
}

// TestMetricsFlagsSeededStraggler seeds a deterministic 4× straggler
// (fault-plan slow=2:4 on a simulated fabric) and requires the anomaly
// detector to flag exactly that rank: its simulated compute per boundary
// sits far outside the peers' z-score band for every boundary, so the
// streak trips after DefaultStreak boundaries.
func TestMetricsFlagsSeededStraggler(t *testing.T) {
	prob := tinyProblem(64, 24, 6)
	const p, slow = 8, 2
	reg := obsmetrics.New()
	var events bytes.Buffer
	reg.SetEvents(obsmetrics.NewEventLog(&events))
	cfg := Config{
		Algo: AlgoSASGD, Learners: p, Interval: 1, Gamma: 0.05,
		Batch: 4, Epochs: 3, Seed: 11,
		Sim: netsim.New(p, netsim.DefaultConfig()), FlopsPerSample: 1e7,
		Faults:  mustPlan(t, "seed=1,slow=2:4"),
		Metrics: reg,
	}
	res := Train(cfg, prob)
	if res.LiveP != p {
		t.Fatalf("straggler was evicted (live %d of %d); the test wants it slow but alive", res.LiveP, p)
	}
	fleet := reg.Fleet()
	snap := fleet.Snapshot()
	if snap.Boundaries < obsmetrics.DefaultStreak+1 {
		t.Fatalf("only %d boundaries — not enough to trip the streak", snap.Boundaries)
	}
	got := fleet.Anomalies()
	if len(got) != 1 || got[0] != slow {
		t.Fatalf("anomalies = %v, want [%d] (per-rank z: %v)", got, slow, rankZs(snap))
	}
	if !snap.Ranks[slow].Flagged || snap.Ranks[slow].Z < obsmetrics.DefaultZ {
		t.Fatalf("straggler health = %+v", snap.Ranks[slow])
	}
	if !strings.Contains(events.String(), `"type":"anomaly"`) {
		t.Fatal("no anomaly event in the NDJSON log")
	}
}

func rankZs(s *obsmetrics.FleetSnap) []float64 {
	zs := make([]float64, len(s.Ranks))
	for i, r := range s.Ranks {
		zs[i] = r.Z
	}
	return zs
}

func mustPlan(t *testing.T, spec string) *comm.FaultPlan {
	t.Helper()
	plan, err := comm.ParseFaultPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}
