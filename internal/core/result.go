package core

import (
	"fmt"
	"sync"
	"time"

	"sasgd/internal/comm"
	"sasgd/internal/data"
	"sasgd/internal/metrics"
	"sasgd/internal/nn"
)

// Result summarizes one training run.
type Result struct {
	Algo  Algorithm
	P     int // learners
	T     int // aggregation interval (configured; the T-scheduler's start)
	// FinalT is the communication period in effect when a scheduled run
	// finished — equal to T unless a decay or adaptive T-scheduler moved
	// it. Zero for runs outside the scheduled path.
	FinalT int
	Curve  metrics.Curve
	// FinalTrain/FinalTest are the last recorded accuracies.
	FinalTrain float64
	FinalTest  float64
	// Samples is the total number of training samples processed across
	// all learners.
	Samples int64
	// Wall is the real elapsed time of the run.
	Wall time.Duration

	// Simulated-fabric measurements (zero when Config.Sim was nil).
	SimTime    float64 // simulated seconds, max across learners
	SimCompute float64 // mean per-learner compute seconds
	SimComm    float64 // mean per-learner communication seconds

	// Staleness statistics for the asynchronous algorithms: the number
	// of server updates that intervened between a learner's pull and its
	// push (0 for SASGD/SGD, whose staleness is bounded by construction).
	StalenessMean float64
	StalenessMax  int64

	// WordsMoved is the number of parameter words transferred through
	// the group collectives (SASGD) during the run.
	WordsMoved int64

	// Comm is the group's full communication-stats snapshot (traffic per
	// collective algorithm, mailbox wait, bucketed-pipeline occupancy,
	// fault counters) for the collective algorithms; zero value for the
	// server-based ones.
	Comm comm.Stats

	// CompressK is the final working top-k fraction of a compressed run:
	// the configured CompressK unless CompressAdapt moved it. Zero for
	// dense and qint8 runs.
	CompressK float64

	// LiveP is the number of learners still live when the run finished:
	// P minus crashes and evictions. Equal to P except on the
	// crash-tolerant path.
	LiveP int

	// FinalParams is learner 0's parameter vector when it finished its
	// run (the parameters the final accuracies were evaluated at for the
	// synchronous algorithms; for the asynchronous ones, learner 0's
	// replica at its own completion).
	FinalParams []float64
}

// EpochTime returns the mean simulated seconds per epoch (0 when the run
// was not simulated).
func (r *Result) EpochTime() float64 {
	if len(r.Curve) == 0 || r.SimTime == 0 {
		return 0
	}
	last := r.Curve[len(r.Curve)-1].Epoch
	if last == 0 {
		return 0
	}
	return r.SimTime / float64(last)
}

// String summarizes the run on one line.
func (r *Result) String() string {
	return fmt.Sprintf("%s p=%d T=%d: train %s test %s (%d samples, sim %.3fs)",
		r.Algo, r.P, r.T, metrics.Pct(r.FinalTrain), metrics.Pct(r.FinalTest), r.Samples, r.SimTime)
}

// evaluator measures accuracy of a flat parameter vector against a
// dataset using its own model replica (inference mode, no dropout).
// It is used from exactly one goroutine at a time.
type evaluator struct {
	net   *nn.Network
	ds    *data.Dataset
	batch int
	idx   []int
}

func newEvaluator(p *Problem, ds *data.Dataset) *evaluator {
	return &evaluator{net: p.newReplica(1<<40 + 1), ds: ds, batch: 256}
}

// accuracy evaluates the fraction of correct argmax predictions under
// the given parameters.
func (e *evaluator) accuracy(params []float64) float64 {
	e.net.SetParamData(params)
	n := e.ds.Len()
	if n == 0 {
		return 0
	}
	correct := 0
	for lo := 0; lo < n; lo += e.batch {
		hi := lo + e.batch
		if hi > n {
			hi = n
		}
		if cap(e.idx) < hi-lo {
			e.idx = make([]int, hi-lo)
		}
		e.idx = e.idx[:hi-lo]
		for i := range e.idx {
			e.idx[i] = lo + i
		}
		x, y := e.ds.Batch(e.idx)
		pred := e.net.Predict(x)
		for i, p := range pred {
			if p == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}

// recorder collects the accuracy curve during a run. Evaluations are
// requested by learner 0 at collective-epoch boundaries; the recorder is
// internally locked because asynchronous runs may race a final record
// against run teardown.
type recorder struct {
	mu        sync.Mutex
	trainEval *evaluator
	testEval  *evaluator
	start     time.Time
	curve     metrics.Curve
}

func newRecorder(p *Problem) *recorder {
	return &recorder{
		trainEval: newEvaluator(p, p.Train),
		testEval:  newEvaluator(p, p.Test),
		start:     time.Now(),
	}
}

// record evaluates params and appends a point for the given epoch.
func (r *recorder) record(epoch int, params []float64, loss, simTime float64) {
	tr := r.trainEval.accuracy(params)
	te := r.testEval.accuracy(params)
	r.mu.Lock()
	r.curve = append(r.curve, metrics.Point{
		Epoch:    epoch,
		Train:    tr,
		Test:     te,
		Loss:     loss,
		SimTime:  simTime,
		WallSecs: time.Since(r.start).Seconds(),
	})
	r.mu.Unlock()
}

func (r *recorder) points() metrics.Curve {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(metrics.Curve(nil), r.curve...)
}
