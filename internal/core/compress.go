package core

import (
	"sasgd/internal/comm"
	"sasgd/internal/obs"
	"sasgd/internal/tensor"
)

// Core-side wiring of the gradient-compression engine (comm.Compressor):
// codec construction from the Config, the adaptive-sparsity controller,
// and the synchronous per-bucket drive the resilient path uses.
//
// Compressed aggregation never takes a serial whole-vector fallback:
// both SASGD paths split the gradient with the same planBuckets plan
// the overlap path uses and run one codec collective per bucket, in
// descending bucket order — from inside backward when OverlapComm is
// set, all at once at the boundary otherwise. Per-bucket codec
// collectives are independent and deterministic (the top-k tree merges
// in fixed order, the qint8 integer sums are exact), so the two
// schedules are bitwise identical — pinned in compress_test.go.

// compressionActive reports whether SASGD aggregation runs through the
// compression engine rather than a dense allreduce. Only meaningful
// after withDefaults has normalized the legacy CompressTopK knob.
func (c Config) compressionActive() bool { return c.Compress != "" }

// adaptActive reports whether the adaptive-sparsity controller runs
// (top-k only: qint8 has no sparsity knob to steer).
func (c Config) adaptActive() bool { return c.CompressAdapt && c.Compress == CodecTopK }

// newCompressor builds one learner's private codec instance. Codecs
// carry selection scratch, encode buffers and capture statistics, so
// they are per-learner and never shared across ranks.
func (c Config) newCompressor() comm.Compressor { return comm.NewCompressor(c.Compress) }

// Adaptive sparsity (the Deng et al. adaptive-sparse direction): hold
// the globally captured gradient-mass fraction sent²/(sent²+resid²)
// inside [adaptLowCapture, adaptHighCapture]. Below the band the
// selection is missing too much mass — grow k; above it the selection
// is paying for mass the residual would have carried fine — shrink k.
// The working fraction is clamped to [k0/adaptSpan, k0·adaptSpan]
// (and ≤ 1) around the configured k0, so one noisy interval can never
// collapse the wire or blow it open.
const (
	adaptLowCapture  = 0.50
	adaptHighCapture = 0.90
	adaptGrow        = 4.0 / 3
	adaptShrink      = 3.0 / 4
	adaptSpan        = 8.0
)

// nextRatio is one controller step. Pure and deterministic: every
// learner feeds it the identical allreduced stats and the identical
// current ratio, so the working fraction stays in lockstep across the
// group without any extra coordination.
func nextRatio(ratio, k0, sent2, resid2 float64) float64 {
	total := sent2 + resid2
	if total <= 0 {
		return ratio
	}
	switch frac := sent2 / total; {
	case frac < adaptLowCapture:
		ratio *= adaptGrow
	case frac > adaptHighCapture:
		ratio *= adaptShrink
	}
	lo, hi := k0/adaptSpan, k0*adaptSpan
	if hi > 1 {
		hi = 1
	}
	if ratio < lo {
		ratio = lo
	} else if ratio > hi {
		ratio = hi
	}
	return ratio
}

// aggregateCompressedSync drives the compression engine synchronously —
// bucket by bucket in the same descending order the bucketed worker
// executes — and applies the aggregate. The resilient path uses this
// instead of comm.BucketedAllreduce because its group membership can
// change between boundaries (the bucketed worker assumes a fixed
// group); values are identical to the engine's async path, since each
// bucket's codec collective is independent and deterministic.
func aggregateCompressedSync(g *comm.Group, rank int, cfg Config, segs []comm.Segment, comp comm.Compressor, ratio float64, gs, res, xref, params []float64, tk *obs.Track) {
	ready := g.Clock(rank).Now()
	ws := tk.Begin()
	for bi := len(segs) - 1; bi >= 0; bi-- {
		s := segs[bi]
		comp.Allreduce(g, rank, gs[s.Off:s.Off+s.Len], res[s.Off:s.Off+s.Len], ratio, ready, tk, int32(bi))
	}
	tk.End(obs.PhaseAggWait, ws)
	// x′ ← x′ − γp·gs ; x ← x′ ; gs ← 0 — the same dense apply as the
	// uncompressed path: gs holds the dense (zero-filled) aggregate.
	as := tk.Begin()
	tensor.Axpy(-cfg.GammaP, gs, xref)
	tensor.Copy(params, xref)
	clear(gs)
	tk.End(obs.PhaseAggApply, as)
}
